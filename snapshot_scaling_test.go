package servdisc

// The O(churn) merged-snapshot gate. BenchmarkSnapshotUnderLoad/entries=2M
// shows the property at scale in the CI bench archive; this test enforces
// it on every `go test` run, cheaply: snapshot an engine after a fixed
// batch of re-observations and count allocations with AllocsPerRun at two
// inventory sizes an order of magnitude apart. If merging the frozen shard
// views into the published inventory ever regresses to cloning or
// rescanning the resident records (the pre-persistent-map behavior), the
// large engine's count blows up by roughly the size ratio and both bounds
// below fail loudly.

import (
	"testing"
	"time"

	"servdisc/internal/core"
)

func TestSnapshotMergeCostScalesWithChurn(t *testing.T) {
	const churn = 2048
	const smallEntries = 50_000
	const largeEntries = 400_000
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)

	measure := func(entries int) float64 {
		pfx := synthPrefix(t)
		sp := core.NewShardedPassive(pfx, nil, 4)
		defer sp.Close()
		feedSyntheticServices(sp, pfx, entries, t0)
		if got := sp.Snapshot().Len(); got != entries {
			t.Fatalf("synthetic load produced %d services, want %d", got, entries)
		}
		churnPkts := synthChurn(pfx, churn)
		round := 0
		step := func() {
			round++
			retimeChurn(churnPkts, t0.Add(time.Duration(round)*time.Minute))
			sp.HandleBatch(churnPkts)
			if sp.Snapshot() == nil {
				t.Fatal("nil snapshot")
			}
		}
		// Warm rounds let the engine's internal buffers reach steady-state
		// capacity so growth noise is not charged to the measured rounds
		// (AllocsPerRun adds one more warm-up call of its own).
		for i := 0; i < 3; i++ {
			step()
		}
		return testing.AllocsPerRun(8, step)
	}

	small := measure(smallEntries)
	large := measure(largeEntries)
	t.Logf("allocs per churn-%d snapshot: %d entries → %.0f, %d entries → %.0f",
		churn, smallEntries, small, largeEntries, large)

	// Absolute bound: a churned record costs a bounded handful of
	// allocations (dirty-seal copy plus a path-copied trie spine), nowhere
	// near one per resident record. 64 per churned record is ~5x headroom
	// over observed cost while staying ~400x below O(inventory) behavior.
	const maxPerChurned = 64
	if small > maxPerChurned*churn {
		t.Errorf("%d-entry engine: %.0f allocs for %d churned records (> %d per record)",
			smallEntries, small, churn, maxPerChurned)
	}
	if large > maxPerChurned*churn {
		t.Errorf("%d-entry engine: %.0f allocs for %d churned records (> %d per record)",
			largeEntries, large, churn, maxPerChurned)
	}

	// Scaling bound: 8x the inventory may deepen the trie spine by at most
	// a level or so — identical churn must not cost more than ~2x the
	// allocations. O(inventory) merging would make this ratio ~8x.
	if large > 2*small+64 {
		t.Errorf("identical churn cost %.0f allocs at %d entries vs %.0f at %d: merge cost is scaling with inventory size",
			large, largeEntries, small, smallEntries)
	}
}
