// Command activescan performs active service discovery against real
// networks using the library's connect-scan backend. Only scan networks
// you are authorized to probe.
//
//	activescan -targets 127.0.0.1/32 -ports 22,80,443
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/probe"
)

func main() {
	targets := flag.String("targets", "", "CIDR block to scan (required)")
	ports := flag.String("ports", "21,22,80,443,3306", "comma-separated TCP ports")
	timeout := flag.Duration("timeout", 2*time.Second, "per-probe timeout")
	parallel := flag.Int("parallel", 32, "concurrent probes")
	flag.Parse()

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "activescan: -targets is required")
		os.Exit(2)
	}
	if err := run(*targets, *ports, *timeout, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "activescan:", err)
		os.Exit(1)
	}
}

func run(targets, ports string, timeout time.Duration, parallel int) error {
	pfx, err := netaddr.ParsePrefix(targets)
	if err != nil {
		return err
	}
	if pfx.Size() > 1<<16 {
		return fmt.Errorf("refusing to scan %d addresses; narrow the block", pfx.Size())
	}
	var portList []uint16
	for _, tok := range strings.Split(ports, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 16)
		if err != nil {
			return fmt.Errorf("bad port %q", tok)
		}
		portList = append(portList, uint16(n))
	}

	backend := &probe.NetBackend{Timeout: timeout}
	type job struct {
		addr netaddr.V4
		port uint16
	}
	jobs := make(chan job)
	type finding struct {
		addr  netaddr.V4
		port  uint16
		state probe.TCPState
	}
	results := make(chan finding)

	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				state := backend.ProbeTCP(time.Now(), j.addr, j.port)
				results <- finding{addr: j.addr, port: j.port, state: state}
			}
		}()
	}
	go func() {
		for _, a := range pfx.Addrs() {
			for _, p := range portList {
				jobs <- job{addr: a, port: p}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	open, closed, filtered := 0, 0, 0
	for f := range results {
		switch f.state {
		case probe.StateOpen:
			open++
			fmt.Printf("%s:%d open\n", f.addr, f.port)
		case probe.StateClosed:
			closed++
		default:
			filtered++
		}
	}
	fmt.Printf("\nscanned %d probes: %d open, %d closed, %d filtered\n",
		open+closed+filtered, open, closed, filtered)
	return nil
}
