// Command activescan performs active service discovery against real
// networks using the library's concurrent, rate-limited scan scheduler
// (probe.Scheduler) over the connect-scan backend.
//
// WARNING: only scan networks you are authorized to probe. Unsolicited
// scanning is abuse (and in many jurisdictions illegal); the default rate
// matches the paper's deliberately gentle 15 probes/second.
//
//	activescan -targets 127.0.0.1/32 -ports 22,80,443
//	activescan -targets 10.0.0.0/24 -rate 15 -every 12h -sweeps 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/probe"
)

func main() {
	fs := flag.NewFlagSet("activescan", flag.ExitOnError)
	targets := fs.String("targets", "", "CIDR block to scan (required)")
	ports := fs.String("ports", "21,22,80,443,3306", "comma-separated TCP ports")
	udpPorts := fs.String("udpports", "", "comma-separated UDP ports for generic probes")
	timeout := fs.Duration("timeout", 2*time.Second, "per-probe timeout")
	workers := fs.Int("workers", 32, "concurrent probe workers")
	rate := fs.Float64("rate", 15, "aggregate probes per second (<= 0: unlimited)")
	burst := fs.Int("burst", 1, "rate-limiter burst depth")
	sweepTimeout := fs.Duration("sweep-timeout", 0, "per-sweep deadline (0: none)")
	every := fs.Duration("every", 0, "interval between sweep starts (0: back-to-back)")
	sweeps := fs.Int("sweeps", 1, "number of sweeps to run")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `activescan: concurrent rate-limited active service discovery.

AUTHORIZATION WARNING: probing hosts you do not own or operate without
written permission is network abuse and may be illegal. Only scan address
space you are authorized to scan, and keep -rate low on shared networks.

Usage:
  activescan -targets CIDR [flags]

Flags:
`)
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "activescan: -targets is required")
		fs.Usage()
		os.Exit(2)
	}
	if err := run(*targets, *ports, *udpPorts, *timeout, *workers, *rate, *burst, *sweepTimeout, *every, *sweeps); err != nil {
		fmt.Fprintln(os.Stderr, "activescan:", err)
		os.Exit(1)
	}
}

// parsePorts turns "21,22,80" into a port list (nil for the empty string).
func parsePorts(s string) ([]uint16, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []uint16
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad port %q", tok)
		}
		out = append(out, uint16(n))
	}
	return out, nil
}

func run(targets, ports, udpPorts string, timeout time.Duration, workers int, rate float64, burst int, sweepTimeout, every time.Duration, sweeps int) error {
	pfx, err := netaddr.ParsePrefix(targets)
	if err != nil {
		return err
	}
	if pfx.Size() > 1<<16 {
		return fmt.Errorf("refusing to scan %d addresses; narrow the block", pfx.Size())
	}
	tcpList, err := parsePorts(ports)
	if err != nil {
		return err
	}
	udpList, err := parsePorts(udpPorts)
	if err != nil {
		return err
	}

	sched := probe.NewScheduler(&probe.NetBackend{Timeout: timeout}, probe.SchedulerConfig{
		Targets:      pfx.Addrs(),
		TCPPorts:     tcpList,
		UDPPorts:     udpList,
		Rate:         rate,
		Burst:        burst,
		Workers:      workers,
		SweepTimeout: sweepTimeout,
		// The scheduler's sweep observer prints each sweep the moment it
		// completes (including deadline-truncated ones), before the report
		// is reconciled — the command-line face of the engine's
		// ScanCompleted events.
		OnSweep: func(rep *probe.ScanReport, _ error) { printReport(rep) },
	})

	// Ctrl-C cancels the run; a truncated sweep still prints its partials.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	active := core.NewActiveDiscoverer(tcpList)
	err = sched.Run(ctx, every, sweeps, probe.ReportFunc(active.AddReport))
	// Services() covers TCP; UDP opens live in the per-port outcome table.
	openUDP := 0
	for _, a := range active.UDPAddrs() {
		for _, port := range udpList {
			if s, ok := active.UDPOutcome(a, port); ok && s == probe.UDPOpen {
				openUDP++
			}
		}
	}
	fmt.Printf("\ndiscovered %d open services across %d sweeps\n",
		len(active.Services())+openUDP, len(active.Scans()))
	if err != nil && ctx.Err() != nil {
		return fmt.Errorf("interrupted: %w", err)
	}
	return err
}

// printReport lists open findings and per-state totals for one sweep.
func printReport(rep *probe.ScanReport) {
	open, closed, filtered := 0, 0, 0
	for _, r := range rep.TCP {
		switch r.State {
		case probe.StateOpen:
			open++
			fmt.Printf("%s:%d open\n", r.Addr, r.Port)
		case probe.StateClosed:
			closed++
		default:
			filtered++
		}
	}
	for _, r := range rep.UDP {
		if r.State == probe.UDPOpen {
			fmt.Printf("%s:%d open/udp\n", r.Addr, r.Port)
		}
	}
	note := ""
	if rep.Truncated {
		note = " (truncated)"
	}
	fmt.Printf("sweep %d%s: %d probes in %s: %d open, %d closed, %d filtered\n",
		rep.ID, note, open+closed+filtered+len(rep.UDP),
		rep.Finished.Sub(rep.Started).Round(time.Millisecond), open, closed, filtered)
}
