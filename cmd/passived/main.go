// Command passived runs the passive service-discovery pipeline over a pcap
// trace (e.g. one produced by cmd/campussim, or a real header trace) and
// prints the resulting inventory; with -http it also serves the inventory
// and detected scanners as JSON. The replay feeds a live engine: while the
// sharded workers chew through the trace, passived takes periodic
// point-in-time snapshots (-snap) and streams discovery events — scanner
// detections are logged the moment the detection threshold is crossed, not
// at the end of the run. The HTTP endpoints always serve the latest
// snapshot, so a long replay (or a live feed) is queryable from the first
// second.
//
//	passived -trace campus.pcap -net 128.125.0.0/16
//	passived -trace campus.pcap -net 128.125.0.0/16 -shards 8 -snap 500ms -http :8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"servdisc"
)

func main() {
	tracePath := flag.String("trace", "", "pcap trace to analyze (required)")
	netFlag := flag.String("net", "128.125.0.0/16", "monitored campus prefix")
	httpAddr := flag.String("http", "", "serve inventory as JSON on this address")
	top := flag.Int("top", 20, "show the N busiest services")
	shards := flag.Int("shards", 0, "discoverer shards (0 = hardware default)")
	snapEvery := flag.Duration("snap", time.Second, "live snapshot interval during replay (0 = final only)")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "passived: -trace is required")
		os.Exit(2)
	}
	if err := run(*tracePath, *netFlag, *httpAddr, *top, *shards, *snapEvery); err != nil {
		fmt.Fprintln(os.Stderr, "passived:", err)
		os.Exit(1)
	}
}

func run(tracePath, netFlag, httpAddr string, top, shards int, snapEvery time.Duration) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()

	pl, err := servdisc.NewPipeline(servdisc.Config{
		Campus: netFlag,
		Shards: shards,
		// The taps are bypassed by Replay (a recorded trace was already
		// filtered at capture time), so no link or filter setup matters
		// here beyond the campus prefix.
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl.Run(ctx)

	// Stream discovery events while the replay runs: scanner detections
	// are worth a log line the moment they happen. The subscription is
	// bounded — if we lag, we lose log lines, never ingest throughput.
	sub := pl.Subscribe(4096)
	eventsDone := make(chan struct{})
	var discovered, upgraded atomic.Int64
	go func() {
		defer close(eventsDone)
		for ev := range sub.Events() {
			switch ev.Kind {
			case servdisc.EventServiceDiscovered:
				discovered.Add(1)
			case servdisc.EventProvenanceUpgraded:
				upgraded.Add(1)
			case servdisc.EventScannerDetected:
				fmt.Printf("event: %s\n", ev)
			}
		}
	}()

	// The latest point-in-time snapshot, shared with the HTTP handlers.
	var latest atomic.Pointer[servdisc.Inventory]
	latest.Store(pl.Snapshot())
	httpErr := make(chan error, 1)
	if httpAddr != "" {
		go func() { httpErr <- serveHTTP(httpAddr, &latest) }()
		fmt.Printf("serving live inventory on %s (/services, /scanners, /stats)\n", httpAddr)
	}

	// Replay on its own goroutine; snapshot on a ticker until it finishes.
	type replayResult struct {
		packets int
		err     error
	}
	replayDone := make(chan replayResult, 1)
	start := time.Now()
	go func() {
		n, err := pl.Replay(ctx, f)
		replayDone <- replayResult{n, err}
	}()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if snapEvery > 0 {
		ticker = time.NewTicker(snapEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	var res replayResult
loop:
	for {
		select {
		case res = <-replayDone:
			break loop
		case err := <-httpErr:
			return fmt.Errorf("http: %w", err)
		case <-tick:
			// Live snapshot: consistent, non-blocking for the replay.
			inv := pl.Snapshot()
			latest.Store(inv)
			fmt.Printf("live: %d packets, %d services, %d scanners (%.1fs)\n",
				inv.Packets(), inv.Len(), len(inv.Scanners()), time.Since(start).Seconds())
		}
	}
	if res.err != nil {
		return fmt.Errorf("replay: %w", res.err)
	}
	pl.Close() // ends the event stream; snapshots remain available
	<-eventsDone

	inv := pl.Snapshot()
	latest.Store(inv)
	fmt.Printf("replayed %d packets; %d services on %d addresses; %d scanners detected\n",
		inv.Packets(), inv.Len(), len(inv.AddrFirstSeen(nil)), len(inv.Scanners()))
	fmt.Printf("events: %d discoveries, %d upgrades, %d dropped by the log subscriber\n",
		discovered.Load(), upgraded.Load(), sub.Dropped())

	rows := serviceRows(inv)
	limit := top
	if limit > len(rows) {
		limit = len(rows)
	}
	fmt.Printf("\n%-28s %-25s %8s %8s\n", "service", "first seen", "flows", "clients")
	for _, r := range rows[:limit] {
		fmt.Printf("%-28s %-25s %8d %8d\n", r.Key, r.First.Format(time.RFC3339), r.Flows, r.Clients)
	}

	if httpAddr == "" {
		return nil
	}
	fmt.Println("\nreplay finished; still serving the final inventory (^C to quit)")
	return <-httpErr // serve until the server fails or the process is killed
}

type row struct {
	Key     string    `json:"service"`
	First   time.Time `json:"first_seen"`
	Flows   int       `json:"flows"`
	Clients int       `json:"clients"`
}

// serviceRows flattens an inventory into JSON-ready rows, busiest first.
func serviceRows(inv *servdisc.Inventory) []row {
	var rows []row
	for _, key := range inv.Keys() {
		rec, _ := inv.Record(key)
		rows = append(rows, row{
			Key: key.String(), First: rec.FirstSeen,
			Flows: rec.Flows, Clients: rec.Clients(),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Flows > rows[j].Flows })
	return rows
}

// serveHTTP serves the latest snapshot; every request reads the freshest
// inventory the snapshot loop has published. It blocks until the server
// fails (including a failed listen).
func serveHTTP(addr string, latest *atomic.Pointer[servdisc.Inventory]) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/services", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(serviceRows(latest.Load()))
	})
	mux.HandleFunc("/scanners", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(latest.Load().Scanners())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		inv := latest.Load()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{
			"packets":  inv.Packets(),
			"services": inv.Len(),
			"scanners": len(inv.Scanners()),
		})
	})
	return http.ListenAndServe(addr, mux)
}
