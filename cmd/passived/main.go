// Command passived runs the passive service-discovery pipeline over a pcap
// trace (e.g. one produced by cmd/campussim, or a real header trace) and
// prints the resulting inventory; with -http it also serves the inventory
// and detected scanners as JSON. Replay ingests through the sharded
// discovery pipeline (servdisc.Discover), so multi-core machines chew
// through large traces at full speed with results identical to a
// single-threaded run.
//
//	passived -trace campus.pcap -net 128.125.0.0/16
//	passived -trace campus.pcap -net 128.125.0.0/16 -shards 8 -http :8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"servdisc"
)

func main() {
	tracePath := flag.String("trace", "", "pcap trace to analyze (required)")
	netFlag := flag.String("net", "128.125.0.0/16", "monitored campus prefix")
	httpAddr := flag.String("http", "", "serve inventory as JSON on this address")
	top := flag.Int("top", 20, "show the N busiest services")
	shards := flag.Int("shards", 0, "discoverer shards (0 = hardware default)")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "passived: -trace is required")
		os.Exit(2)
	}
	if err := run(*tracePath, *netFlag, *httpAddr, *top, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "passived:", err)
		os.Exit(1)
	}
}

func run(tracePath, netFlag, httpAddr string, top, shards int) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()

	inv, err := servdisc.Discover(context.Background(), f, servdisc.Config{
		Campus: netFlag,
		Shards: shards,
	})
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	fmt.Printf("replayed %d packets; %d services on %d addresses; %d scanners detected\n",
		inv.Packets(), inv.Len(), len(inv.AddrFirstSeen(nil)), len(inv.Scanners()))

	type row struct {
		Key     string    `json:"service"`
		First   time.Time `json:"first_seen"`
		Flows   int       `json:"flows"`
		Clients int       `json:"clients"`
	}
	var rows []row
	for _, key := range inv.Keys() {
		rec, _ := inv.Record(key)
		rows = append(rows, row{
			Key: key.String(), First: rec.FirstSeen,
			Flows: rec.Flows, Clients: rec.Clients(),
		})
	}
	// Show the busiest services first.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Flows > rows[j].Flows })
	limit := top
	if limit > len(rows) {
		limit = len(rows)
	}
	fmt.Printf("\n%-28s %-25s %8s %8s\n", "service", "first seen", "flows", "clients")
	for _, r := range rows[:limit] {
		fmt.Printf("%-28s %-25s %8d %8d\n", r.Key, r.First.Format(time.RFC3339), r.Flows, r.Clients)
	}

	if httpAddr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/services", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rows)
	})
	mux.HandleFunc("/scanners", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(inv.Scanners())
	})
	fmt.Printf("\nserving inventory on %s (/services, /scanners)\n", httpAddr)
	return http.ListenAndServe(httpAddr, mux)
}
