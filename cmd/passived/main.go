// Command passived runs the passive service-discovery pipeline over a pcap
// trace (e.g. one produced by cmd/campussim, or a real header trace) and
// prints the resulting inventory; with -http it also serves the inventory
// and detected scanners as JSON. The replay feeds a live engine: while the
// sharded workers chew through the trace, passived takes periodic
// point-in-time snapshots (-snap) and streams discovery events — scanner
// detections are logged the moment the detection threshold is crossed, not
// at the end of the run. The HTTP endpoints always serve the latest
// snapshot, so a long replay (or a live feed) is queryable from the first
// second.
//
// Event-stream consumers: /events streams the typed discovery events as
// JSONL (one JSON event per line, SSE-friendly flushing) and accepts
// push-down filters (?filter=port:443,prefix:10.0.0.0/8) so narrow
// consumers neither receive nor pay drop budget for the rest of the
// stream; /query answers typed indexed queries (?port=&prefix=&category=
// &prov=&since=&limit=&page=) against the latest snapshot's index epoch;
// /metrics exposes the stage counters, checkpoint effort, and
// per-subscriber event-hub drop counts in Prometheus text format,
// /healthz answers liveness probes.
//
// With -publish the engine becomes one site of a federation: its event
// stream, tagged -site, is served on a TCP listener in the wire format
// that cmd/federated aggregates (see internal/federate). Reconnecting
// aggregators present a resume cursor and get just the frames they
// missed when the -replay-ring still covers them (a full snapshot
// otherwise), idle connections carry -feed-heartbeat keepalives, and
// -feed-auth demands a shared token in every client hello.
//
// With -checkpoint-dir the engine state is durable: checkpoints are taken
// every -checkpoint-every during the replay and once more on shutdown
// (SIGINT/SIGTERM stop the replay at a batch boundary, checkpoint, and
// exit cleanly). On the next start the engine restores from the directory
// and resumes the trace from the exact packet the checkpoint covered, so
// a killed and restarted run converges on the same inventory as one that
// was never interrupted.
//
//	passived -trace campus.pcap -net 128.125.0.0/16
//	passived -trace campus.pcap -net 128.125.0.0/16 -shards 8 -snap 500ms -http :8080
//	passived -trace east.pcap -net 128.125.0.0/16 -site east -publish :9000
//	passived -trace campus.pcap -checkpoint-dir /var/lib/servdisc -checkpoint-every 30s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"servdisc"
	"servdisc/internal/federate"
	"servdisc/internal/obs"
	"servdisc/internal/query"
)

// options collects the flag set; run takes it whole rather than a dozen
// positional parameters.
type options struct {
	tracePath   string
	campus      string
	httpAddr    string
	debugAddr   string
	publishAddr string
	site        string
	feedAuth    string
	replayRing  int
	heartbeat   time.Duration
	top         int
	shards      int
	snapEvery   time.Duration
	ckptDir     string
	ckptEvery   time.Duration
	dumpPath    string
	haltAfter   int
	retTTL      time.Duration
	retActive   time.Duration
	retSweep    time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.tracePath, "trace", "", "pcap trace to analyze (required)")
	flag.StringVar(&o.campus, "net", "128.125.0.0/16", "monitored campus prefix")
	flag.StringVar(&o.httpAddr, "http", "", "serve inventory as JSON on this address")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof, /metrics and /debug/flight on this extra address")
	flag.IntVar(&o.top, "top", 20, "show the N busiest services")
	flag.IntVar(&o.shards, "shards", 0, "discoverer shards (0 = hardware default)")
	flag.DurationVar(&o.snapEvery, "snap", time.Second, "live snapshot interval during replay (0 = final only)")
	flag.StringVar(&o.publishAddr, "publish", "", "serve the federation feed (snapshot + live events) on this TCP address")
	flag.StringVar(&o.site, "site", "", "site identity for the federation feed (defaults to the trace name)")
	flag.StringVar(&o.feedAuth, "feed-auth", "", "shared token feed clients must present in their hello (empty = no auth)")
	flag.IntVar(&o.replayRing, "replay-ring", 0, "frames of recent history kept for delta resync of reconnecting aggregators (0 = default 16384, negative = disabled)")
	flag.DurationVar(&o.heartbeat, "feed-heartbeat", 0, "wire heartbeat interval on idle feed connections (0 = default 10s, negative = disabled)")
	flag.StringVar(&o.ckptDir, "checkpoint-dir", "", "durable checkpoint directory (restore on start, checkpoint periodically and on shutdown)")
	flag.DurationVar(&o.ckptEvery, "checkpoint-every", 30*time.Second, "checkpoint interval while the replay runs (requires -checkpoint-dir)")
	flag.StringVar(&o.dumpPath, "dump", "", "write the final inventory dump to this file when the replay completes")
	flag.IntVar(&o.haltAfter, "halt-after", 0, "stop the replay once at least N packets are applied, checkpoint, and exit — simulates a mid-trace kill for restart testing")
	flag.DurationVar(&o.retTTL, "retention-ttl", 0, "expire a passively-discovered service this long after its last observed flow, on the trace clock (0 = keep forever)")
	flag.DurationVar(&o.retActive, "retention-active-ttl", 0, "expire active (probe) evidence this long after the last successful probe (0 = same as -retention-ttl)")
	flag.DurationVar(&o.retSweep, "retention-sweep", 0, "background expiry sweep interval; snapshots already expire lazily, this bounds staleness between them (0 = lazy only)")
	flag.Parse()

	if o.tracePath == "" {
		fmt.Fprintln(os.Stderr, "passived: -trace is required")
		os.Exit(2)
	}
	if o.site == "" {
		// The trace's base name, not its path: the site identity goes out
		// on the wire and into the aggregator's reports.
		o.site = filepath.Base(o.tracePath)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "passived:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	f, err := os.Open(o.tracePath)
	if err != nil {
		return err
	}
	defer f.Close()

	cfg := servdisc.Config{
		Campus: o.campus,
		Shards: o.shards,
		// The taps are bypassed by Replay (a recorded trace was already
		// filtered at capture time), so no link or filter setup matters
		// here beyond the campus prefix.

		// The indexed query layer rides the snapshot ticker: every live
		// snapshot advances the index epoch from the same O(churn) deltas,
		// so /query serves from it at any client fan-out.
		QueryIndex: true,
	}
	if o.ckptDir != "" {
		cfg.Checkpoint = &servdisc.CheckpointOptions{Dir: o.ckptDir, Every: o.ckptEvery}
	}
	if o.retTTL > 0 || o.retActive > 0 {
		active := o.retActive
		if active == 0 {
			active = o.retTTL
		}
		cfg.Retention = servdisc.RetentionPolicy{
			PassiveTTL: o.retTTL,
			ActiveTTL:  active,
			SweepEvery: o.retSweep,
		}
	}
	pl, err := servdisc.NewPipeline(cfg)
	if err != nil {
		return err
	}
	// Telemetry: the pipeline instruments itself into its registry; the
	// daemon adds its own series below (registerDaemonSeries) and serves
	// everything from the same scrape. SIGQUIT dumps the flight recorder
	// to stderr at any time without stopping the process.
	reg := pl.Metrics()
	reg.Flight().DumpOnSIGQUIT()

	// Restore before Run and before the first packet: the engine must be
	// untouched for the import. A cold start (no checkpoint yet) restores
	// nothing; skip stays zero and the whole trace replays.
	skip := 0
	if o.ckptDir != "" {
		man, err := pl.RestoreFromCheckpoint()
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		if man != nil {
			skip = pl.Snapshot().Packets()
			fmt.Printf("restored checkpoint from %s: %d chunks, resuming at packet %d\n",
				o.ckptDir, len(man.Chunks), skip)
		}
	}

	// The engine runs on a background context, on purpose: a signal must
	// stop the *replay* at a batch boundary and leave the workers healthy
	// for the final checkpoint. Cancelling the engine's own context would
	// abort workers mid-state — an abort lever, not a shutdown lever.
	pl.Run(context.Background())

	// sigCtx ends on SIGINT/SIGTERM; the replay also ends when -halt-after
	// trips. Everything interruptible hangs off these two.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	replayCtx, cancelReplay := context.WithCancel(sigCtx)
	defer cancelReplay()

	subs := newSubRegistry(reg)

	// Stream discovery events while the replay runs: scanner detections
	// are worth a log line the moment they happen. The subscription is
	// bounded — if we lag, we lose log lines, never ingest throughput.
	sub := pl.Subscribe(4096)
	subs.add("log", sub.Dropped)
	eventsDone := make(chan struct{})
	var discovered, upgraded, expired atomic.Int64
	go func() {
		defer close(eventsDone)
		for ev := range sub.Events() {
			switch ev.Kind {
			case servdisc.EventServiceDiscovered:
				discovered.Add(1)
			case servdisc.EventProvenanceUpgraded:
				upgraded.Add(1)
			case servdisc.EventServiceExpired:
				expired.Add(1)
			case servdisc.EventScannerDetected:
				fmt.Printf("event: %s\n", ev)
			}
		}
	}()

	// Federation feed: publish this engine's stream, site-tagged, to any
	// connecting aggregator (snapshot catch-up + live events per
	// connection). A restored process resumes the stored cursor so its
	// feed continues the old epoch and sequence instead of restarting
	// them; every later checkpoint samples the cursor back.
	if o.publishAddr != "" {
		var cursor federate.PublisherState
		if st := pl.RestoredPublisherCursor(); st != nil {
			cursor = *st
		}
		pub := federate.NewPublisherOpts(federate.SiteID(o.site), pl, cursor, federate.PublisherOptions{
			AuthToken:  o.feedAuth,
			ReplayRing: o.replayRing,
			Heartbeat:  o.heartbeat,
		})
		pub.SetMetrics(&federate.PublisherMetrics{
			Encode: reg.Histogram("servdisc_federation_encode_seconds",
				"Federation frame encode+write latency per frame served."),
		})
		pl.SetPublisherCursor(pub.State)
		subs.add("publisher-pump", pub.Dropped)
		// Resilience counters: how reconnecting aggregators re-enter the
		// stream (delta replay vs snapshot), hello hygiene, and evictions
		// of stalled readers.
		reg.CounterFunc("servdisc_federation_resume_hits_total",
			"Feed connections resumed with a delta replay from the ring.",
			func() float64 { return float64(pub.Stats().ResumeHits) })
		reg.CounterFunc("servdisc_federation_snapshot_fallbacks_total",
			"Feed connections bootstrapped with a full snapshot.",
			func() float64 { return float64(pub.Stats().SnapshotFallbacks) })
		reg.CounterFunc("servdisc_federation_auth_failures_total",
			"Feed hellos rejected for a missing or wrong auth token.",
			func() float64 { return float64(pub.Stats().AuthFailures) })
		reg.CounterFunc("servdisc_federation_hellos_rejected_total",
			"Feed hellos rejected as malformed (bad frame, wrong type, timeout).",
			func() float64 { return float64(pub.Stats().HellosRejected) })
		reg.CounterFunc("servdisc_federation_evictions_total",
			"Feed connections evicted for stalling past the write deadline.",
			func() float64 { return float64(pub.Stats().Evictions) })
		reg.CounterFunc("servdisc_federation_heartbeats_total",
			"Wire heartbeat frames sent on idle feed connections.",
			func() float64 { return float64(pub.Stats().HeartbeatsSent) })
		ln, err := net.Listen("tcp", o.publishAddr)
		if err != nil {
			return fmt.Errorf("publish: %w", err)
		}
		defer ln.Close()
		go func() { _ = pub.Serve(sigCtx, ln) }()
		fmt.Printf("publishing federation feed for site %q on %s\n", o.site, o.publishAddr)
	}

	// The latest point-in-time snapshot, shared with the HTTP handlers.
	var latest atomic.Pointer[servdisc.Inventory]
	latest.Store(pl.Snapshot())
	registerDaemonSeries(reg, &latest, pl)
	if o.debugAddr != "" {
		// The debug surface (pprof profiles, the flight-recorder dump and
		// a second /metrics) lives on its own listener so it can stay
		// unexposed while the main API is public.
		go func() {
			if err := http.ListenAndServe(o.debugAddr, reg.DebugHandler()); err != nil {
				fmt.Fprintf(os.Stderr, "passived: debug server: %v\n", err)
			}
		}()
		fmt.Printf("serving debug surface on %s (/debug/pprof, /debug/flight, /metrics)\n", o.debugAddr)
	}
	httpErr := make(chan error, 1)
	var srv *http.Server
	if o.httpAddr != "" {
		srv = &http.Server{Addr: o.httpAddr, Handler: newMux(&latest, pl, subs)}
		go func() {
			if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				httpErr <- err
			}
		}()
		fmt.Printf("serving live inventory on %s (/services, /query, /scanners, /stats, /events, /metrics, /healthz)\n", o.httpAddr)
	}
	// shutdownHTTP drains in-flight requests (including /events streams,
	// which end when their clients notice the close) with a short grace.
	shutdownHTTP := func() {
		if srv == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}

	// -halt-after: watch the applied-packet count and stop the replay once
	// it passes the mark. The cut lands wherever the next batch boundary
	// falls — restart equivalence holds from any cut, which is the point.
	if o.haltAfter > 0 {
		go func() {
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-replayCtx.Done():
					return
				case <-tick.C:
					if pl.Snapshot().Packets() >= skip+o.haltAfter {
						cancelReplay()
						return
					}
				}
			}
		}()
	}

	// Replay on its own goroutine; snapshot and checkpoint on tickers
	// until it finishes.
	type replayResult struct {
		packets int
		err     error
	}
	replayDone := make(chan replayResult, 1)
	start := time.Now()
	go func() {
		n, err := pl.ResumeReplay(replayCtx, f, skip)
		replayDone <- replayResult{n, err}
	}()

	var snapTick, ckptTick <-chan time.Time
	if o.snapEvery > 0 {
		t := time.NewTicker(o.snapEvery)
		defer t.Stop()
		snapTick = t.C
	}
	if o.ckptDir != "" && o.ckptEvery > 0 {
		t := time.NewTicker(o.ckptEvery)
		defer t.Stop()
		ckptTick = t.C
	}
	var res replayResult
loop:
	for {
		select {
		case res = <-replayDone:
			break loop
		case err := <-httpErr:
			return fmt.Errorf("http: %w", err)
		case <-snapTick:
			// Live snapshot: consistent, non-blocking for the replay.
			inv := pl.Snapshot()
			latest.Store(inv)
			fmt.Printf("live: %d packets, %d services, %d scanners (%.1fs)\n",
				inv.Packets(), inv.Len(), len(inv.Scanners()), time.Since(start).Seconds())
		case <-ckptTick:
			cr, err := pl.Checkpoint(context.Background())
			if err != nil {
				fmt.Fprintf(os.Stderr, "passived: checkpoint: %v\n", err)
				continue
			}
			logCheckpoint(cr)
		}
	}
	interrupted := errors.Is(res.err, context.Canceled)
	if res.err != nil && !interrupted {
		shutdownHTTP()
		return fmt.Errorf("replay: %w", res.err)
	}

	// Final checkpoint, interrupted or not, before the engine closes: the
	// marker drains behind every batch the replay delivered, so the chunk
	// covers an exact prefix of the trace and a restart resumes from it.
	if o.ckptDir != "" {
		cr, err := pl.Checkpoint(context.Background())
		if err != nil {
			fmt.Fprintf(os.Stderr, "passived: final checkpoint: %v\n", err)
		} else {
			logCheckpoint(cr)
		}
	}
	// One last freeze while the event stream is still open: expiry
	// decisions made since the previous snapshot publish their
	// EventServiceExpired at a freeze, and Close ends the stream.
	latest.Store(pl.Snapshot())
	pl.Close() // ends the event stream; snapshots remain available
	<-eventsDone

	inv := pl.Snapshot()
	latest.Store(inv)
	if interrupted {
		shutdownHTTP()
		fmt.Printf("interrupted at %d packets (%d services, %d scanners); state checkpointed to %s\n",
			inv.Packets(), inv.Len(), len(inv.Scanners()), o.ckptDir)
		return nil
	}
	fmt.Printf("replayed %d packets (%d this run); %d services on %d addresses; %d scanners detected\n",
		inv.Packets(), res.packets-skip, inv.Len(), len(inv.AddrFirstSeen(nil)), len(inv.Scanners()))
	fmt.Printf("events: %d discoveries, %d upgrades, %d expiries, %d dropped by the log subscriber\n",
		discovered.Load(), upgraded.Load(), expired.Load(), sub.Dropped())

	if o.dumpPath != "" {
		if err := os.WriteFile(o.dumpPath, inv.Dump(), 0o644); err != nil {
			shutdownHTTP()
			return fmt.Errorf("dump: %w", err)
		}
		fmt.Printf("wrote inventory dump to %s\n", o.dumpPath)
	}

	rows := serviceRows(inv)
	limit := min(o.top, len(rows))
	fmt.Printf("\n%-28s %-25s %8s %8s\n", "service", "first seen", "flows", "clients")
	for _, r := range rows[:limit] {
		fmt.Printf("%-28s %-25s %8d %8d\n", r.Key, r.First.Format(time.RFC3339), r.Flows, r.Clients)
	}

	if o.httpAddr == "" && o.publishAddr == "" {
		return nil
	}
	fmt.Println("\nreplay finished; still serving the final inventory (^C to quit)")
	select {
	case <-sigCtx.Done():
		shutdownHTTP()
		return nil
	case err := <-httpErr:
		return fmt.Errorf("http: %w", err)
	}
}

func logCheckpoint(cr servdisc.CheckpointResult) {
	switch {
	case cr.Skipped:
		fmt.Printf("checkpoint: unchanged, skipped (%d shards clean)\n", cr.ShardsSkipped)
	case cr.Full:
		kind := "baseline"
		if cr.Compacted {
			kind = "compacted baseline"
		}
		fmt.Printf("checkpoint: %s, %d services, %d bytes in %s\n",
			kind, cr.Services, cr.Bytes, cr.Duration.Round(time.Microsecond))
	default:
		fmt.Printf("checkpoint: delta, %d services changed, %d bytes in %s (%d/%d shards clean)\n",
			cr.Services, cr.Bytes, cr.Duration.Round(time.Microsecond),
			cr.ShardsSkipped, cr.ShardsSkipped+cr.ShardsChanged)
	}
}

type row struct {
	Key     string    `json:"service"`
	First   time.Time `json:"first_seen"`
	Flows   int       `json:"flows"`
	Clients int       `json:"clients"`
}

// serviceRows flattens an inventory into JSON-ready rows, busiest first.
func serviceRows(inv *servdisc.Inventory) []row {
	var rows []row
	for _, key := range inv.Keys() {
		rec, _ := inv.Record(key)
		rows = append(rows, row{
			Key: key.String(), First: rec.FirstSeen,
			Flows: rec.Flows, Clients: rec.Clients(),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Flows > rows[j].Flows })
	return rows
}

// pagedRows serves /services?limit=&page=: canonical key order (the only
// order a cursor can resume deterministically across snapshots), with the
// last emitted key as the next-page token.
func pagedRows(inv *servdisc.Inventory, limitStr, page string) ([]row, string, error) {
	limit := 1000
	if limitStr != "" {
		n, err := strconv.Atoi(limitStr)
		if err != nil || n <= 0 {
			return nil, "", fmt.Errorf("bad limit %q", limitStr)
		}
		limit = n
	}
	var after servdisc.ServiceKey
	haveAfter := false
	if page != "" {
		k, err := query.ParseKey(page)
		if err != nil {
			return nil, "", fmt.Errorf("bad page token %q", page)
		}
		after, haveAfter = k, true
	}
	rows := make([]row, 0, limit)
	next := ""
	for _, key := range inv.Keys() {
		if haveAfter && !after.Before(key) {
			continue
		}
		if len(rows) == limit {
			next = rows[len(rows)-1].Key
			break
		}
		rec, _ := inv.Record(key)
		rows = append(rows, row{
			Key: key.String(), First: rec.FirstSeen,
			Flows: rec.Flows, Clients: rec.Clients(),
		})
	}
	return rows, next, nil
}

// dumpCache holds one encoded /services body per snapshot generation:
// re-encoding happens only when the published inventory pointer moves, so
// any number of full-dump pollers cost one marshal per snapshot.
type dumpCache struct {
	mu   sync.Mutex
	inv  *servdisc.Inventory
	gen  uint64
	body []byte
	etag string
}

func newDumpCache() *dumpCache { return &dumpCache{} }

func (c *dumpCache) get(inv *servdisc.Inventory, build func() []byte) ([]byte, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if inv != c.inv {
		c.gen++
		c.inv = inv
		c.body = build()
		c.etag = fmt.Sprintf("\"inv-%d\"", c.gen)
	}
	return c.body, c.etag
}

// serveCached writes a cached JSON body with its ETag, answering 304 to a
// matching If-None-Match.
func serveCached(w http.ResponseWriter, r *http.Request, etag string, body []byte) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/json")
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	_, _ = w.Write(body)
}

// subRegistry tracks every named event-hub subscriber so /metrics can
// report per-subscriber drop counts — the signal that a consumer's buffer
// is undersized. Each subscriber owns one series of
// servdisc_subscriber_dropped_total, refreshed at scrape time; an ended
// subscriber folds its tally into the cumulative "departed" series (its
// own series keeps its final value — registry series never unregister).
type subRegistry struct {
	vec       *obs.CounterVec
	departedC *obs.Counter

	mu       sync.Mutex
	live     map[string]*subEntry
	departed int64
}

type subEntry struct {
	dropped func() int
	c       *obs.Counter
}

func newSubRegistry(reg *servdisc.Telemetry) *subRegistry {
	r := &subRegistry{
		vec: reg.CounterVec("servdisc_subscriber_dropped_total",
			"Events missed by one named subscriber.", "subscriber"),
		live: make(map[string]*subEntry),
	}
	r.departedC = r.vec.With("departed")
	// The hook runs under the registry lock, so it may only Set
	// pre-resolved counters — calling With there would deadlock.
	reg.OnScrape(r.scrape)
	return r
}

func (r *subRegistry) add(name string, dropped func() int) {
	c := r.vec.With(name) // before r.mu: lock order is registry, then r.mu
	r.mu.Lock()
	defer r.mu.Unlock()
	r.live[name] = &subEntry{dropped: dropped, c: c}
}

func (r *subRegistry) remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.live[name]; ok {
		n := e.dropped()
		r.departed += int64(n)
		e.c.Set(uint64(n))
		delete(r.live, name)
	}
}

// scrape mirrors the live drop counts into the registry series; it runs
// under the registry lock at every exposition.
func (r *subRegistry) scrape() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.live {
		e.c.Set(uint64(e.dropped()))
	}
	r.departedC.Set(uint64(r.departed))
}

// registerDaemonSeries adds passived's own series to the pipeline's
// registry: flow counters mirrored from the engine's stage counters,
// inventory gauges read from the latest published snapshot, and
// checkpoint effort. All are scrape-time callbacks — nothing has to tick
// between scrapes — and the names are unchanged from the daemon's
// pre-registry /metrics emitter.
func registerDaemonSeries(reg *servdisc.Telemetry, latest *atomic.Pointer[servdisc.Inventory], pl *servdisc.Pipeline) {
	ingest, events := pl.IngestCounters(), pl.EventCounters()
	reg.CounterFunc("servdisc_packets_total",
		"Packets offered to the discovery engine.",
		func() float64 { return float64(ingest.In()) })
	reg.CounterFunc("servdisc_packets_dispatched_total",
		"Packets dispatched to shard workers.",
		func() float64 { return float64(ingest.Out()) })
	reg.CounterFunc("servdisc_packets_dropped_total",
		"Packets discarded (engine closed).",
		func() float64 { return float64(ingest.Dropped()) })
	reg.GaugeFunc("servdisc_services",
		"Services in the latest snapshot.",
		func() float64 { return float64(latest.Load().Len()) })
	reg.GaugeFunc("servdisc_scanners",
		"Scanners detected in the latest snapshot.",
		func() float64 { return float64(len(latest.Load().Scanners())) })
	reg.CounterFunc("servdisc_events_published_total",
		"Events published on the discovery stream.",
		func() float64 { return float64(events.In()) })
	reg.CounterFunc("servdisc_events_delivered_total",
		"Per-subscriber event deliveries.",
		func() float64 { return float64(events.Out()) })
	reg.CounterFunc("servdisc_events_dropped_total",
		"Per-subscriber event drops (all subscribers).",
		func() float64 { return float64(events.Dropped()) })
	if _, ok := pl.QueryIndexLen(); ok {
		reg.GaugeFunc("servdisc_query_index_services",
			"Services in the current query-index epoch.",
			func() float64 { n, _ := pl.QueryIndexLen(); return float64(n) })
	}
	if _, ok := pl.CheckpointStats(); ok {
		stat := func(sel func(servdisc.CheckpointStats) float64) func() float64 {
			return func() float64 { cs, _ := pl.CheckpointStats(); return sel(cs) }
		}
		reg.CounterFunc("servdisc_checkpoints_total",
			"Checkpoints completed (skipped ones included).",
			stat(func(cs servdisc.CheckpointStats) float64 { return float64(cs.Checkpoints) }))
		reg.CounterFunc("servdisc_checkpoint_baselines_total",
			"Checkpoints that wrote a full baseline.",
			stat(func(cs servdisc.CheckpointStats) float64 { return float64(cs.Baselines) }))
		reg.CounterFunc("servdisc_checkpoint_failures_total",
			"Checkpoint attempts that failed.",
			stat(func(cs servdisc.CheckpointStats) float64 { return float64(cs.Failures) }))
		reg.CounterFunc("servdisc_checkpoint_bytes_written_total",
			"Chunk bytes made durable.",
			stat(func(cs servdisc.CheckpointStats) float64 { return float64(cs.BytesWritten) }))
		reg.CounterFunc("servdisc_checkpoint_chunks_skipped_total",
			"Shard exports skipped because the shard was unchanged.",
			stat(func(cs servdisc.CheckpointStats) float64 { return float64(cs.ChunksSkipped) }))
		reg.GaugeFunc("servdisc_checkpoint_last_bytes",
			"Bytes written by the most recent checkpoint.",
			stat(func(cs servdisc.CheckpointStats) float64 { return float64(cs.LastBytes) }))
		reg.GaugeFunc("servdisc_checkpoint_last_duration_seconds",
			"Duration of the most recent checkpoint.",
			stat(func(cs servdisc.CheckpointStats) float64 { return cs.LastDuration.Seconds() }))
	}
}

// newMux builds the HTTP surface: the latest snapshot as JSON, the live
// event feed, Prometheus metrics, and a liveness probe. Every request
// reads the freshest inventory the snapshot loop has published.
func newMux(latest *atomic.Pointer[servdisc.Inventory], pl *servdisc.Pipeline, subs *subRegistry) *http.ServeMux {
	var eventsSeq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":  "ok",
			"packets": latest.Load().Packets(),
		})
	})
	// /services serves the full dump (busiest-first) from a body encoded
	// once per snapshot generation, with ETag/If-None-Match so unchanged
	// polls cost a 304 and no marshal; ?limit=/&page= switches to
	// deterministic canonical-key-order pagination.
	dump := newDumpCache()
	mux.HandleFunc("/services", func(w http.ResponseWriter, r *http.Request) {
		inv := latest.Load()
		params := r.URL.Query()
		if params.Get("limit") == "" && params.Get("page") == "" {
			body, etag := dump.get(inv, func() []byte {
				b, _ := json.Marshal(serviceRows(inv))
				return b
			})
			serveCached(w, r, etag, body)
			return
		}
		rows, next, err := pagedRows(inv, params.Get("limit"), params.Get("page"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"services":        rows,
			"next_page_token": next,
		})
	})
	// /query answers typed indexed queries (port, prefix, category,
	// provenance, freshness; paginated) from the latest index epoch —
	// lock-free reads sized for arbitrary client fan-out.
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := query.ParseHTTP(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := pl.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/scanners", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(latest.Load().Scanners())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		inv := latest.Load()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{
			"packets":  inv.Packets(),
			"services": inv.Len(),
			"scanners": len(inv.Scanners()),
		})
	})
	// /events streams the typed discovery event stream as JSONL: one JSON
	// event per line, flushed per event so curl and EventSource-style
	// consumers see discoveries as they happen. Delivery is bounded and
	// lossy (the drop count appears in /metrics); the stream ends when the
	// engine closes or the client disconnects. Filter parameters (?filter=
	// port:443,prefix:10.0.0.0/8 or kind=/port=/proto=/prefix=/prov=) are
	// pushed down into the event hub: rejected events are never delivered
	// and never consume this subscriber's drop budget.
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		f, err := query.ParseEventFilter(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		name := fmt.Sprintf("events-%d", eventsSeq.Add(1))
		sub := pl.SubscribeFiltered(4096, f)
		subs.add(name, sub.Dropped)
		defer subs.remove(name)
		defer sub.Cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		done := r.Context().Done()
		for {
			select {
			case <-done:
				return
			case ev, ok := <-sub.Events():
				if !ok {
					return
				}
				if err := enc.Encode(ev); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
	})
	// /metrics serves the whole telemetry registry in Prometheus text
	// exposition format: the daemon-level series registered above, the
	// pipeline's latency histograms, and the per-subscriber hub drops.
	// /debug/flight dumps the always-on flight recorder (the full debug
	// surface, pprof included, lives on -debug-addr).
	mux.Handle("/metrics", pl.Metrics().Handler())
	mux.Handle("/debug/flight", pl.Metrics().Flight().Handler())
	return mux
}
