// Command passived runs the passive service-discovery pipeline over a pcap
// trace (e.g. one produced by cmd/campussim, or a real header trace) and
// prints the resulting inventory; with -http it also serves the inventory
// and detected scanners as JSON. The replay feeds a live engine: while the
// sharded workers chew through the trace, passived takes periodic
// point-in-time snapshots (-snap) and streams discovery events — scanner
// detections are logged the moment the detection threshold is crossed, not
// at the end of the run. The HTTP endpoints always serve the latest
// snapshot, so a long replay (or a live feed) is queryable from the first
// second.
//
// Event-stream consumers: /events streams the typed discovery events as
// JSONL (one JSON event per line, SSE-friendly flushing), /metrics exposes
// the stage counters and per-subscriber event-hub drop counts in
// Prometheus text format.
//
// With -publish the engine becomes one site of a federation: its event
// stream, tagged -site, is served on a TCP listener in the snapshot-then-
// live wire format that cmd/federated aggregates (see internal/federate).
//
//	passived -trace campus.pcap -net 128.125.0.0/16
//	passived -trace campus.pcap -net 128.125.0.0/16 -shards 8 -snap 500ms -http :8080
//	passived -trace east.pcap -net 128.125.0.0/16 -site east -publish :9000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"servdisc"
	"servdisc/internal/federate"
)

func main() {
	tracePath := flag.String("trace", "", "pcap trace to analyze (required)")
	netFlag := flag.String("net", "128.125.0.0/16", "monitored campus prefix")
	httpAddr := flag.String("http", "", "serve inventory as JSON on this address")
	top := flag.Int("top", 20, "show the N busiest services")
	shards := flag.Int("shards", 0, "discoverer shards (0 = hardware default)")
	snapEvery := flag.Duration("snap", time.Second, "live snapshot interval during replay (0 = final only)")
	publishAddr := flag.String("publish", "", "serve the federation feed (snapshot + live events) on this TCP address")
	site := flag.String("site", "", "site identity for the federation feed (defaults to the trace name)")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "passived: -trace is required")
		os.Exit(2)
	}
	if *site == "" {
		// The trace's base name, not its path: the site identity goes out
		// on the wire and into the aggregator's reports.
		*site = filepath.Base(*tracePath)
	}
	if err := run(*tracePath, *netFlag, *httpAddr, *publishAddr, *site, *top, *shards, *snapEvery); err != nil {
		fmt.Fprintln(os.Stderr, "passived:", err)
		os.Exit(1)
	}
}

func run(tracePath, netFlag, httpAddr, publishAddr, site string, top, shards int, snapEvery time.Duration) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()

	pl, err := servdisc.NewPipeline(servdisc.Config{
		Campus: netFlag,
		Shards: shards,
		// The taps are bypassed by Replay (a recorded trace was already
		// filtered at capture time), so no link or filter setup matters
		// here beyond the campus prefix.
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl.Run(ctx)

	subs := newSubRegistry()

	// Stream discovery events while the replay runs: scanner detections
	// are worth a log line the moment they happen. The subscription is
	// bounded — if we lag, we lose log lines, never ingest throughput.
	sub := pl.Subscribe(4096)
	subs.add("log", sub.Dropped)
	eventsDone := make(chan struct{})
	var discovered, upgraded atomic.Int64
	go func() {
		defer close(eventsDone)
		for ev := range sub.Events() {
			switch ev.Kind {
			case servdisc.EventServiceDiscovered:
				discovered.Add(1)
			case servdisc.EventProvenanceUpgraded:
				upgraded.Add(1)
			case servdisc.EventScannerDetected:
				fmt.Printf("event: %s\n", ev)
			}
		}
	}()

	// Federation feed: publish this engine's stream, site-tagged, to any
	// connecting aggregator (snapshot catch-up + live events per
	// connection). The publisher outlives the replay — late aggregators
	// still get the final snapshot.
	if publishAddr != "" {
		pub := federate.NewPublisher(federate.SiteID(site), pl)
		subs.add("publisher-pump", pub.Dropped)
		ln, err := net.Listen("tcp", publishAddr)
		if err != nil {
			return fmt.Errorf("publish: %w", err)
		}
		defer ln.Close()
		go func() { _ = pub.Serve(ctx, ln) }()
		fmt.Printf("publishing federation feed for site %q on %s\n", site, publishAddr)
	}

	// The latest point-in-time snapshot, shared with the HTTP handlers.
	var latest atomic.Pointer[servdisc.Inventory]
	latest.Store(pl.Snapshot())
	httpErr := make(chan error, 1)
	if httpAddr != "" {
		go func() { httpErr <- serveHTTP(httpAddr, &latest, pl, subs) }()
		fmt.Printf("serving live inventory on %s (/services, /scanners, /stats, /events, /metrics)\n", httpAddr)
	}

	// Replay on its own goroutine; snapshot on a ticker until it finishes.
	type replayResult struct {
		packets int
		err     error
	}
	replayDone := make(chan replayResult, 1)
	start := time.Now()
	go func() {
		n, err := pl.Replay(ctx, f)
		replayDone <- replayResult{n, err}
	}()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if snapEvery > 0 {
		ticker = time.NewTicker(snapEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	var res replayResult
loop:
	for {
		select {
		case res = <-replayDone:
			break loop
		case err := <-httpErr:
			return fmt.Errorf("http: %w", err)
		case <-tick:
			// Live snapshot: consistent, non-blocking for the replay.
			inv := pl.Snapshot()
			latest.Store(inv)
			fmt.Printf("live: %d packets, %d services, %d scanners (%.1fs)\n",
				inv.Packets(), inv.Len(), len(inv.Scanners()), time.Since(start).Seconds())
		}
	}
	if res.err != nil {
		return fmt.Errorf("replay: %w", res.err)
	}
	pl.Close() // ends the event stream; snapshots remain available
	<-eventsDone

	inv := pl.Snapshot()
	latest.Store(inv)
	fmt.Printf("replayed %d packets; %d services on %d addresses; %d scanners detected\n",
		inv.Packets(), inv.Len(), len(inv.AddrFirstSeen(nil)), len(inv.Scanners()))
	fmt.Printf("events: %d discoveries, %d upgrades, %d dropped by the log subscriber\n",
		discovered.Load(), upgraded.Load(), sub.Dropped())

	rows := serviceRows(inv)
	limit := top
	if limit > len(rows) {
		limit = len(rows)
	}
	fmt.Printf("\n%-28s %-25s %8s %8s\n", "service", "first seen", "flows", "clients")
	for _, r := range rows[:limit] {
		fmt.Printf("%-28s %-25s %8d %8d\n", r.Key, r.First.Format(time.RFC3339), r.Flows, r.Clients)
	}

	if httpAddr == "" && publishAddr == "" {
		return nil
	}
	fmt.Println("\nreplay finished; still serving the final inventory (^C to quit)")
	if httpAddr == "" {
		select {} // publish-only: serve snapshot catch-ups until killed
	}
	return <-httpErr // serve until the server fails or the process is killed
}

type row struct {
	Key     string    `json:"service"`
	First   time.Time `json:"first_seen"`
	Flows   int       `json:"flows"`
	Clients int       `json:"clients"`
}

// serviceRows flattens an inventory into JSON-ready rows, busiest first.
func serviceRows(inv *servdisc.Inventory) []row {
	var rows []row
	for _, key := range inv.Keys() {
		rec, _ := inv.Record(key)
		rows = append(rows, row{
			Key: key.String(), First: rec.FirstSeen,
			Flows: rec.Flows, Clients: rec.Clients(),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Flows > rows[j].Flows })
	return rows
}

// subRegistry tracks every named event-hub subscriber so /metrics can
// report per-subscriber drop counts — the signal that a consumer's buffer
// is undersized. Ended subscribers fold into a cumulative tally.
type subRegistry struct {
	mu       sync.Mutex
	live     map[string]func() int
	departed int64
}

func newSubRegistry() *subRegistry {
	return &subRegistry{live: make(map[string]func() int)}
}

func (r *subRegistry) add(name string, dropped func() int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.live[name] = dropped
}

func (r *subRegistry) remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if dropped, ok := r.live[name]; ok {
		r.departed += int64(dropped())
		delete(r.live, name)
	}
}

// snapshot returns the live subscriber drop counts (sorted by name) plus
// the departed-subscriber tally.
func (r *subRegistry) snapshot() (names []string, drops []int, departed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.live {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		drops = append(drops, r.live[name]())
	}
	return names, drops, r.departed
}

// serveHTTP serves the latest snapshot plus the live event feed and
// metrics; every request reads the freshest inventory the snapshot loop
// has published. It blocks until the server fails (including a failed
// listen).
func serveHTTP(addr string, latest *atomic.Pointer[servdisc.Inventory], pl *servdisc.Pipeline, subs *subRegistry) error {
	var eventsSeq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/services", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(serviceRows(latest.Load()))
	})
	mux.HandleFunc("/scanners", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(latest.Load().Scanners())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		inv := latest.Load()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{
			"packets":  inv.Packets(),
			"services": inv.Len(),
			"scanners": len(inv.Scanners()),
		})
	})
	// /events streams the typed discovery event stream as JSONL: one JSON
	// event per line, flushed per event so curl and EventSource-style
	// consumers see discoveries as they happen. Delivery is bounded and
	// lossy (the drop count appears in /metrics); the stream ends when the
	// engine closes or the client disconnects.
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		name := fmt.Sprintf("events-%d", eventsSeq.Add(1))
		sub := pl.Subscribe(4096)
		subs.add(name, sub.Dropped)
		defer subs.remove(name)
		defer sub.Cancel()
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		done := r.Context().Done()
		for {
			select {
			case <-done:
				return
			case ev, ok := <-sub.Events():
				if !ok {
					return
				}
				if err := enc.Encode(ev); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
	})
	// /metrics exposes the stage counters and per-subscriber hub drops in
	// Prometheus text exposition format.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		inv := latest.Load()
		ingest, events := pl.IngestCounters(), pl.EventCounters()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
		p("# HELP servdisc_packets_total Packets offered to the discovery engine.\n")
		p("# TYPE servdisc_packets_total counter\n")
		p("servdisc_packets_total %d\n", ingest.In())
		p("# HELP servdisc_packets_dispatched_total Packets dispatched to shard workers.\n")
		p("# TYPE servdisc_packets_dispatched_total counter\n")
		p("servdisc_packets_dispatched_total %d\n", ingest.Out())
		p("# HELP servdisc_packets_dropped_total Packets discarded (engine closed).\n")
		p("# TYPE servdisc_packets_dropped_total counter\n")
		p("servdisc_packets_dropped_total %d\n", ingest.Dropped())
		p("# HELP servdisc_services Services in the latest snapshot.\n")
		p("# TYPE servdisc_services gauge\n")
		p("servdisc_services %d\n", inv.Len())
		p("# HELP servdisc_scanners Scanners detected in the latest snapshot.\n")
		p("# TYPE servdisc_scanners gauge\n")
		p("servdisc_scanners %d\n", len(inv.Scanners()))
		p("# HELP servdisc_events_published_total Events published on the discovery stream.\n")
		p("# TYPE servdisc_events_published_total counter\n")
		p("servdisc_events_published_total %d\n", events.In())
		p("# HELP servdisc_events_delivered_total Per-subscriber event deliveries.\n")
		p("# TYPE servdisc_events_delivered_total counter\n")
		p("servdisc_events_delivered_total %d\n", events.Out())
		p("# HELP servdisc_events_dropped_total Per-subscriber event drops (all subscribers).\n")
		p("# TYPE servdisc_events_dropped_total counter\n")
		p("servdisc_events_dropped_total %d\n", events.Dropped())
		names, drops, departed := subs.snapshot()
		p("# HELP servdisc_subscriber_dropped_total Events missed by one named subscriber.\n")
		p("# TYPE servdisc_subscriber_dropped_total counter\n")
		for i, name := range names {
			p("servdisc_subscriber_dropped_total{subscriber=%q} %d\n", name, drops[i])
		}
		p("servdisc_subscriber_dropped_total{subscriber=\"departed\"} %d\n", departed)
	})
	return http.ListenAndServe(addr, mux)
}
