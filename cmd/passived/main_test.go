package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"servdisc"
	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/packet"
)

// newTestServer assembles the daemon's HTTP surface over a small live
// pipeline: a few packets ingested, one checkpoint cut, one query served
// — enough traffic that every instrument has observations when the
// scrape-shape assertions run.
func newTestServer(t *testing.T) (*httptest.Server, *servdisc.Pipeline) {
	t.Helper()
	cfg := servdisc.Config{
		Campus:     "128.125.0.0/16",
		QueryIndex: true,
		Checkpoint: &servdisc.CheckpointOptions{Dir: t.TempDir()},
	}
	pl, err := servdisc.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pl.Close)

	bld := packet.NewBuilder(0)
	client := packet.Endpoint{Addr: netaddr.MustParseV4("64.9.0.1"), Port: 40000}
	at := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	var batch []packet.Packet
	for i := 0; i < 16; i++ {
		server := packet.Endpoint{Addr: netaddr.MustParseV4("128.125.1.1") + netaddr.V4(i), Port: 80}
		batch = append(batch, *bld.SynAck(at.Add(time.Duration(i)*time.Second), server, client, 1, 1))
	}
	pl.HandleBatch(batch)
	if _, err := pl.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}

	var latest atomic.Pointer[servdisc.Inventory]
	latest.Store(pl.Snapshot())
	if _, err := pl.Query(servdisc.Query{Port: 80}); err != nil {
		t.Fatal(err)
	}

	reg := pl.Metrics()
	subs := newSubRegistry(reg)
	sub := pl.Subscribe(16)
	subs.add("test", sub.Dropped)
	registerDaemonSeries(reg, &latest, pl)
	srv := httptest.NewServer(newMux(&latest, pl, subs))
	t.Cleanup(srv.Close)
	return srv, pl
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsExposition scrapes the live daemon mux and checks the body
// against the strict exposition grammar plus the presence of every series
// family the pre-registry emitter served and the new latency histograms.
func TestMetricsExposition(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails strict lint: %v\nbody:\n%s", err, body)
	}
	for _, want := range []string{
		// flow counters and inventory gauges (pre-registry names, kept)
		"servdisc_packets_total ",
		"servdisc_packets_dispatched_total ",
		"servdisc_packets_dropped_total ",
		"servdisc_services ",
		"servdisc_scanners ",
		"servdisc_events_published_total ",
		"servdisc_events_delivered_total ",
		"servdisc_events_dropped_total ",
		"servdisc_query_index_services ",
		"servdisc_checkpoints_total ",
		"servdisc_checkpoint_baselines_total ",
		"servdisc_checkpoint_failures_total ",
		"servdisc_checkpoint_bytes_written_total ",
		"servdisc_checkpoint_chunks_skipped_total ",
		"servdisc_checkpoint_last_bytes ",
		"servdisc_checkpoint_last_duration_seconds ",
		`servdisc_subscriber_dropped_total{subscriber="departed"}`,
		`servdisc_subscriber_dropped_total{subscriber="test"}`,
		// latency histograms from the pipeline's own instrumentation
		"servdisc_ingest_batch_seconds_bucket",
		"servdisc_ingest_dispatch_seconds_bucket",
		"servdisc_snapshot_merge_seconds_bucket",
		"servdisc_checkpoint_write_seconds_bucket",
		`servdisc_query_seconds_bucket{dim="port"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestFlightEndpoint checks the /debug/flight dump carries the trace
// events the pipeline recorded (a sealed snapshot and a checkpoint cut at
// minimum).
func TestFlightEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/debug/flight")
	if code != 200 {
		t.Fatalf("GET /debug/flight: status %d", code)
	}
	for _, want := range []string{"snapshot-sealed", "checkpoint-cut"} {
		if !strings.Contains(body, want) {
			t.Errorf("flight dump missing %q event:\n%s", want, body)
		}
	}
}

// TestHealthz keeps the liveness probe answering 200 with the packet
// position.
func TestHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != 200 {
		t.Fatalf("GET /healthz: status %d", code)
	}
	if !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthz body = %q, want status ok", body)
	}
}
