// Command federated is the multi-campus aggregation daemon: it dials N
// site feeds published by `passived -publish` (or anything speaking the
// internal/federate wire format), reconciles them into one global
// inventory with per-site provenance and cross-site dedup, and serves the
// result over HTTP.
//
// Each feed connection opens with a resume hello carrying the
// aggregator's cursor for that site: the publisher answers with just the
// frames past the cursor when its replay ring still covers them (delta
// resync — O(churn) bytes, not O(inventory)) and a full snapshot
// bootstrap otherwise; either way the per-site sequence dedup guarantees
// the overlap is never double-counted. Broken connections redial under
// exponential backoff with full jitter (-retry is the base, -retry-cap
// the ceiling), dials are bounded by -dial-timeout, silence beyond
// -feed-idle (the publisher heartbeats inside it) drops the connection,
// and -max-frames-per-sec/-max-bytes-per-sec cap each feed's ingest
// rate. -feed-auth presents a shared token the publisher may require.
//
// With -checkpoint-dir the global inventory is durable: the aggregator
// state (services, per-site dedup cursors, scan reports) is written
// atomically every -checkpoint-every and once more on SIGINT/SIGTERM,
// and reloaded on the next start — so a restarted aggregator keeps its
// history instead of waiting for every site to reconnect and re-bootstrap.
//
// Endpoints: /dump (canonical text inventory), /services (global JSON
// rows; cached-encoded with ETag, ?limit=/&page= paginates), /query
// (typed indexed queries over the global inventory), /sites (per-feed
// statistics, ?limit= truncates), /metrics (Prometheus text: per-feed
// event/dedup/reconnect counters, state-write effort), /healthz.
//
//	federated -feed east:9000 -feed west:9001 -http :8090
//	federated -feed east:9000 -checkpoint-dir /var/lib/servdisc-global
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"servdisc/internal/checkpoint"
	"servdisc/internal/federate"
	"servdisc/internal/obs"
	"servdisc/internal/query"
)

// StateFileName is the aggregator checkpoint inside -checkpoint-dir.
const StateFileName = "aggregator.state"

// feedList collects repeated -feed flags.
type feedList []string

func (f *feedList) String() string { return fmt.Sprint(*f) }
func (f *feedList) Set(s string) error {
	*f = append(*f, s)
	return nil
}

type options struct {
	feeds       feedList
	httpAddr    string
	debugAddr   string
	retry       time.Duration
	retryCap    time.Duration
	dialTimeout time.Duration
	feedIdle    time.Duration
	feedAuth    string
	maxFrames   float64
	maxBytes    float64
	logEvents   bool
	ckptDir     string
	ckptEvery   time.Duration
	tombGC      time.Duration
}

func main() {
	var o options
	flag.Var(&o.feeds, "feed", "site feed address to aggregate (repeatable)")
	flag.StringVar(&o.httpAddr, "http", ":8090", "serve the global inventory on this address")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof, /metrics and /debug/flight on this extra address")
	flag.DurationVar(&o.retry, "retry", 2*time.Second, "reconnect backoff base after a feed drops (grows exponentially with full jitter; was the fixed retry interval before delta resync)")
	flag.DurationVar(&o.retryCap, "retry-cap", time.Minute, "reconnect backoff ceiling")
	flag.DurationVar(&o.dialTimeout, "dial-timeout", 10*time.Second, "bound on each feed dial attempt")
	flag.DurationVar(&o.feedIdle, "feed-idle", 45*time.Second, "drop a feed silent for this long (publisher heartbeats keep a healthy feed inside it)")
	flag.StringVar(&o.feedAuth, "feed-auth", "", "shared token presented in the feed hello (publishers started with -feed-auth require it)")
	flag.Float64Var(&o.maxFrames, "max-frames-per-sec", 0, "per-feed ingest cap in frames/s (0 = uncapped)")
	flag.Float64Var(&o.maxBytes, "max-bytes-per-sec", 0, "per-feed ingest cap in bytes/s (0 = uncapped)")
	flag.BoolVar(&o.logEvents, "log", true, "log global discoveries and scanner detections")
	flag.StringVar(&o.ckptDir, "checkpoint-dir", "", "durable aggregator-state directory (restore on start, write periodically and on shutdown)")
	flag.DurationVar(&o.ckptEvery, "checkpoint-every", 30*time.Second, "aggregator-state write interval (requires -checkpoint-dir)")
	flag.DurationVar(&o.tombGC, "tombstone-gc", 0, "drop retraction tombstones older than this (wall clock); 0 keeps them forever, which is always safe")
	flag.Parse()

	if len(o.feeds) == 0 {
		fmt.Fprintln(os.Stderr, "federated: at least one -feed is required")
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "federated:", err)
		os.Exit(1)
	}
}

// feedHealth pairs one -feed address with its resilient client and the
// live connection state /healthz reads. All churn counters (connects,
// dial errors, resume hits, throttle stalls, ...) come from the client's
// own stats; connected is mirrored here by the lifecycle callbacks so
// tests can assemble the HTTP surface without running real connections.
type feedHealth struct {
	addr      string
	fc        *federate.FeedClient
	connected atomic.Bool
}

// newFeedHealth builds the client for one feed address with the daemon's
// resilience options and lifecycle logging; run() starts fc.Run.
func newFeedHealth(o options, agg *federate.Aggregator, addr string, flight *obs.Recorder) *feedHealth {
	h := &feedHealth{addr: addr}
	h.fc = federate.NewFeedClient(agg, addr, federate.FeedOptions{
		AuthToken:       o.feedAuth,
		DialTimeout:     o.dialTimeout,
		IdleTimeout:     o.feedIdle,
		Backoff:         federate.BackoffConfig{Base: o.retry, Cap: o.retryCap},
		MaxFramesPerSec: o.maxFrames,
		MaxBytesPerSec:  o.maxBytes,
		OnConnect: func() {
			h.connected.Store(true)
			st := h.fc.Stats()
			flight.Record(obs.TraceFeedConnected, addr, int64(st.Connects), 0)
			fmt.Printf("feed %s: connected\n", addr)
		},
		OnDisconnect: func(err error) {
			h.connected.Store(false)
			st := h.fc.Stats()
			flight.Record(obs.TraceFeedDisconnected, addr, int64(st.Disconnects), 0)
			if err != nil {
				fmt.Printf("feed %s: %v (backoff ceiling %s)\n", addr, err, h.fc.NextBackoff())
			} else {
				fmt.Printf("feed %s: stream ended (backoff ceiling %s)\n", addr, h.fc.NextBackoff())
			}
		},
	})
	return h
}

func run(o options) error {
	// A signal ends everything: the feed loops stop dialing, the HTTP
	// server drains, and the final state write makes the inventory
	// survive the restart.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	agg := federate.NewAggregator()

	// Telemetry: one registry for the whole daemon — frame decode/apply
	// histograms from the aggregator, feed churn and per-site freshness
	// mirrored in at scrape time, feed connect/disconnect trace events in
	// the flight recorder (dumped by /debug/flight or SIGQUIT).
	reg := obs.NewRegistry()
	reg.Flight().DumpOnSIGQUIT()
	agg.SetMetrics(&federate.AggregatorMetrics{
		Decode: reg.Histogram("federated_frame_decode_seconds",
			"Feed frame decode latency, socket wait included (time from bytes pending to frame in hand)."),
		Apply: reg.Histogram("federated_frame_apply_seconds",
			"Feed frame merge latency into the global inventory."),
	})

	statePath := ""
	if o.ckptDir != "" {
		if err := os.MkdirAll(o.ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
		statePath = filepath.Join(o.ckptDir, StateFileName)
		var st federate.AggregatorState
		ok, err := checkpoint.ReadStateFile(statePath, &st)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		if ok {
			if err := agg.ImportState(&st); err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			fmt.Printf("restored aggregator state from %s: %d sites, %d services\n",
				statePath, len(st.Sites), len(st.Services))
		}
	}
	var stateWrites, stateWriteFails atomic.Int64
	writeState := func() {
		if statePath == "" {
			return
		}
		if err := checkpoint.WriteStateFile(statePath, agg.ExportState()); err != nil {
			stateWriteFails.Add(1)
			fmt.Fprintf(os.Stderr, "federated: state write: %v\n", err)
			return
		}
		stateWrites.Add(1)
	}

	// The global event stream: every first-anywhere discovery, site-tagged.
	if o.logEvents {
		sub := agg.Subscribe(8192)
		go func() {
			for ge := range sub.Events() {
				fmt.Printf("global: [%s] %s\n", ge.Site, ge.Event)
			}
		}()
	}

	health := make([]*feedHealth, len(o.feeds))
	for i, addr := range o.feeds {
		health[i] = newFeedHealth(o, agg, addr, reg.Flight())
		go func(h *feedHealth) { _ = h.fc.Run(sigCtx) }(health[i])
	}

	registerDaemonSeries(reg, agg, &stateWrites, &stateWriteFails)
	mirror := newSiteMirror(reg, agg, health)
	srv := &http.Server{Addr: o.httpAddr, Handler: newMux(agg, health, reg, mirror)}
	httpErr := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	if o.debugAddr != "" {
		// The debug surface keeps pprof and the flight dump off the public
		// API address; its /metrics is the same mirrored scrape.
		dbg := http.NewServeMux()
		dbg.Handle("/metrics", mirror.handler())
		dbg.Handle("/", reg.DebugHandler())
		go func() {
			if err := http.ListenAndServe(o.debugAddr, dbg); err != nil {
				fmt.Fprintf(os.Stderr, "federated: debug server: %v\n", err)
			}
		}()
		fmt.Printf("serving debug surface on %s (/debug/pprof, /debug/flight, /metrics)\n", o.debugAddr)
	}
	fmt.Printf("aggregating %d feeds; serving global inventory on %s (/dump, /services, /query, /sites, /metrics, /healthz)\n",
		len(o.feeds), o.httpAddr)

	var stateTick <-chan time.Time
	if statePath != "" && o.ckptEvery > 0 {
		t := time.NewTicker(o.ckptEvery)
		defer t.Stop()
		stateTick = t.C
	}
	// Tombstone GC: retractions must outlive any stale snapshot a site
	// might replay (see Aggregator.CollapseTombstones), so the horizon is
	// an operator call — typically hours to days.
	var gcTick <-chan time.Time
	if o.tombGC > 0 {
		t := time.NewTicker(o.tombGC)
		defer t.Stop()
		gcTick = t.C
	}
	for {
		select {
		case <-gcTick:
			if n := agg.CollapseTombstones(time.Now().Add(-o.tombGC)); n > 0 {
				fmt.Printf("tombstone gc: collapsed %d retracted cells older than %s\n", n, o.tombGC)
			}
		case <-sigCtx.Done():
			writeState()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			if statePath != "" {
				fmt.Printf("shutting down; aggregator state saved to %s\n", statePath)
			}
			return nil
		case err := <-httpErr:
			writeState()
			return err
		case <-stateTick:
			writeState()
		}
	}
}

// dumpCache holds one encoded /services body per aggregator generation:
// re-encoding happens only when a feed frame actually changed the service
// table, so any number of full-dump pollers cost one marshal per change.
type dumpCache struct {
	mu   sync.Mutex
	gen  uint64
	has  bool
	body []byte
	etag string
}

func (c *dumpCache) get(gen uint64, build func() []byte) ([]byte, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.has || gen != c.gen {
		c.gen, c.has = gen, true
		c.body = build()
		c.etag = fmt.Sprintf("\"agg-%d\"", gen)
	}
	return c.body, c.etag
}

// pagedServices serves /services?limit=&page=: global services in
// canonical key order, the last emitted key as the next-page token.
func pagedServices(agg *federate.Aggregator, limitStr, page string) ([]federate.GlobalService, string, error) {
	limit := 1000
	if limitStr != "" {
		n, err := strconv.Atoi(limitStr)
		if err != nil || n <= 0 {
			return nil, "", fmt.Errorf("bad limit %q", limitStr)
		}
		limit = n
	}
	all := agg.Services()
	if page != "" {
		after, err := query.ParseKey(page)
		if err != nil {
			return nil, "", fmt.Errorf("bad page token %q", page)
		}
		for len(all) > 0 && !after.Before(all[0].Key) {
			all = all[1:]
		}
	}
	next := ""
	if len(all) > limit {
		all = all[:limit]
		next = all[limit-1].Key.String()
	}
	return all, next, nil
}

// registerDaemonSeries adds the aggregator-global series: everything here
// is a scrape-time callback over state the daemon maintains anyway, and
// the names are unchanged from the pre-registry /metrics emitter.
func registerDaemonSeries(reg *obs.Registry, agg *federate.Aggregator, stateWrites, stateWriteFails *atomic.Int64) {
	events := agg.EventCounters()
	reg.GaugeFunc("federated_sites",
		"Sites currently known to the aggregator.",
		func() float64 { return float64(len(agg.Sites())) })
	reg.GaugeFunc("federated_services",
		"Globally deduplicated services.",
		func() float64 { return float64(agg.NumServices()) })
	reg.CounterFunc("federated_global_events_published_total",
		"Global events published to subscribers.",
		func() float64 { return float64(events.In()) })
	reg.CounterFunc("federated_global_events_dropped_total",
		"Global events dropped by lagging subscribers.",
		func() float64 { return float64(events.Dropped()) })
	reg.CounterFunc("federated_state_writes_total",
		"Aggregator-state checkpoints written.",
		func() float64 { return float64(stateWrites.Load()) })
	reg.CounterFunc("federated_state_write_failures_total",
		"Aggregator-state checkpoint failures.",
		func() float64 { return float64(stateWriteFails.Load()) })
}

// siteSeries is the mirrored registry series for one site (or, for the
// last three fields, one feed address).
type siteSeries struct {
	events, dups, packets    *obs.Counter
	lastSeq, services, scans *obs.Gauge
	staleness                *obs.Gauge
}

// siteMirror copies the aggregator's per-site statistics (dynamic label
// set — sites appear as feeds deliver their hello frames) and the static
// per-feed churn counters into registry series right before each scrape.
// It runs outside the registry lock, so it can mint new series freely;
// OnScrape hooks cannot (they run under the lock).
type siteMirror struct {
	reg *obs.Registry
	agg *federate.Aggregator

	siteEvents, sitePackets, siteDups    *obs.CounterVec
	siteLastSeq, siteServices, siteScans *obs.GaugeVec
	siteStaleness                        *obs.GaugeVec

	feedConnects, feedDisconnects, feedDialErrors []*obs.Counter
	feedResumes, feedFallbacks, feedStalls        []*obs.Counter
	feedBackoff                                   []*obs.Gauge
	health                                        []*feedHealth

	mu    sync.Mutex
	sites map[federate.SiteID]*siteSeries
}

func newSiteMirror(reg *obs.Registry, agg *federate.Aggregator, health []*feedHealth) *siteMirror {
	m := &siteMirror{
		reg: reg, agg: agg, health: health,
		sites: make(map[federate.SiteID]*siteSeries),
		siteEvents: reg.CounterVec("federated_site_events_total",
			"Event frames applied from one site.", "site"),
		siteDups: reg.CounterVec("federated_site_dup_events_total",
			"Event frames skipped as duplicates (reconnect overlap).", "site"),
		sitePackets: reg.CounterVec("federated_site_packets_total",
			"Passive packet volume reported by one site.", "site"),
		siteLastSeq: reg.GaugeVec("federated_site_last_seq",
			"Per-site event-sequence high-water mark.", "site"),
		siteServices: reg.GaugeVec("federated_site_services",
			"Services one site contributes to the global inventory.", "site"),
		siteScans: reg.GaugeVec("federated_site_scans",
			"Completed active sweeps reported by one site.", "site"),
		siteStaleness: reg.GaugeVec("federated_feed_staleness_seconds",
			"Discovery staleness: the global observation watermark minus this site's watermark.", "site"),
	}
	connects := reg.CounterVec("federated_feed_connects_total",
		"Successful feed connections (first connect + reconnects).", "feed")
	disconnects := reg.CounterVec("federated_feed_disconnects_total",
		"Feed connections that ended (each one triggers a redial).", "feed")
	dialErrs := reg.CounterVec("federated_feed_dial_errors_total",
		"Failed dial attempts.", "feed")
	resumes := reg.CounterVec("federated_feed_resume_hits_total",
		"Connections the publisher answered with a delta replay (resume cursor still in its ring).", "feed")
	fallbacks := reg.CounterVec("federated_feed_snapshot_fallbacks_total",
		"Connections that re-bootstrapped from a full snapshot (cursor too old, epoch changed, or first contact).", "feed")
	stalls := reg.CounterVec("federated_feed_throttle_stalls_total",
		"Frames the per-feed rate caps made wait.", "feed")
	backoff := reg.GaugeVec("federated_feed_backoff_seconds",
		"Un-jittered ceiling of the feed's next reconnect delay: the base while healthy, climbing toward the cap while failing.", "feed")
	for _, h := range health {
		m.feedConnects = append(m.feedConnects, connects.With(h.addr))
		m.feedDisconnects = append(m.feedDisconnects, disconnects.With(h.addr))
		m.feedDialErrors = append(m.feedDialErrors, dialErrs.With(h.addr))
		m.feedResumes = append(m.feedResumes, resumes.With(h.addr))
		m.feedFallbacks = append(m.feedFallbacks, fallbacks.With(h.addr))
		m.feedStalls = append(m.feedStalls, stalls.With(h.addr))
		m.feedBackoff = append(m.feedBackoff, backoff.With(h.addr))
	}
	return m
}

// refresh mirrors the current aggregator and feed state into the registry
// series. Concurrent scrapes may interleave refreshes; each Set is atomic
// and every value is monotone or a point-in-time gauge, so interleaving
// is harmless.
func (m *siteMirror) refresh() {
	stats := m.agg.Stats()
	stale := m.agg.Staleness()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range stats {
		s := m.sites[st.Site]
		if s == nil {
			name := string(st.Site)
			s = &siteSeries{
				events:    m.siteEvents.With(name),
				dups:      m.siteDups.With(name),
				packets:   m.sitePackets.With(name),
				lastSeq:   m.siteLastSeq.With(name),
				services:  m.siteServices.With(name),
				scans:     m.siteScans.With(name),
				staleness: m.siteStaleness.With(name),
			}
			m.sites[st.Site] = s
		}
		s.events.Set(st.Events)
		s.dups.Set(st.DupEvents)
		s.packets.Set(uint64(st.Packets))
		s.lastSeq.Set(float64(st.LastSeq))
		s.services.Set(float64(st.Services))
		s.scans.Set(float64(st.Scans))
		if d, ok := stale[st.Site]; ok {
			s.staleness.Set(d.Seconds())
		}
	}
	for i, h := range m.health {
		st := h.fc.Stats()
		m.feedConnects[i].Set(st.Connects)
		m.feedDisconnects[i].Set(st.Disconnects)
		m.feedDialErrors[i].Set(st.DialErrors)
		m.feedResumes[i].Set(st.ResumeHits)
		m.feedFallbacks[i].Set(st.SnapshotFallbacks)
		m.feedStalls[i].Set(st.ThrottleStalls)
		m.feedBackoff[i].Set(h.fc.NextBackoff().Seconds())
	}
}

// handler is the /metrics endpoint: refresh the mirrored series, then
// serve the whole registry in text exposition format.
func (m *siteMirror) handler() http.Handler {
	h := m.reg.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.refresh()
		h.ServeHTTP(w, r)
	})
}

func newMux(agg *federate.Aggregator, health []*feedHealth, reg *obs.Registry, mirror *siteMirror) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/dump", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(agg.Dump())
	})
	// /services serves the global dump from a body encoded once per
	// aggregator generation (ETag/If-None-Match answers unchanged polls
	// with a 304); ?limit=/&page= switches to canonical-key-order
	// pagination.
	dump := &dumpCache{}
	mux.HandleFunc("/services", func(w http.ResponseWriter, r *http.Request) {
		params := r.URL.Query()
		if params.Get("limit") == "" && params.Get("page") == "" {
			body, etag := dump.get(agg.Gen(), func() []byte {
				b, _ := json.Marshal(agg.Services())
				return b
			})
			w.Header().Set("ETag", etag)
			w.Header().Set("Content-Type", "application/json")
			if r.Header.Get("If-None-Match") == etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			_, _ = w.Write(body)
			return
		}
		page, next, err := pagedServices(agg, params.Get("limit"), params.Get("page"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"services":        page,
			"next_page_token": next,
		})
	})
	// /query answers typed indexed queries over the global cross-site
	// inventory; the index refreshes lazily from the keys feed frames
	// touched since the last query.
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := query.ParseHTTP(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := agg.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/sites", func(w http.ResponseWriter, r *http.Request) {
		stats := agg.Stats()
		if ls := r.URL.Query().Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n <= 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", ls), http.StatusBadRequest)
				return
			}
			if n < len(stats) {
				stats = stats[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(stats)
	})
	// /healthz distinguishes "alive" from "useful", with a middle state
	// for partial partitions: every feed up is "ok", some feeds down is
	// "partial" (still 200 — the inventory is live, just missing vantage
	// points; the per-feed detail names the culprits and their backoff
	// state), and every feed down is "degraded" with a 503
	// (readiness-probe semantics: the aggregator serves only history).
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		type feedStatus struct {
			Addr              string  `json:"addr"`
			Site              string  `json:"site,omitempty"`
			Connected         bool    `json:"connected"`
			Connects          uint64  `json:"connects"`
			Disconnects       uint64  `json:"disconnects"`
			DialErrors        uint64  `json:"dial_errors"`
			ResumeHits        uint64  `json:"resume_hits"`
			SnapshotFallbacks uint64  `json:"snapshot_fallbacks"`
			BackoffSeconds    float64 `json:"backoff_seconds"`
		}
		feeds := make([]feedStatus, len(health))
		up := 0
		for i, h := range health {
			connected := h.connected.Load()
			if connected {
				up++
			}
			st := h.fc.Stats()
			feeds[i] = feedStatus{
				Addr: h.addr, Site: string(h.fc.Site()), Connected: connected,
				Connects:          st.Connects,
				Disconnects:       st.Disconnects,
				DialErrors:        st.DialErrors,
				ResumeHits:        st.ResumeHits,
				SnapshotFallbacks: st.SnapshotFallbacks,
				BackoffSeconds:    h.fc.NextBackoff().Seconds(),
			}
		}
		status, code := "ok", http.StatusOK
		switch {
		case up == 0:
			status, code = "degraded", http.StatusServiceUnavailable
		case up < len(health):
			status = "partial"
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":   status,
			"sites":    len(agg.Sites()),
			"services": agg.NumServices(),
			"feeds":    feeds,
		})
	})
	// /metrics: the registry-backed exposition — aggregator histograms,
	// per-site counters and the discovery-staleness gauge mirrored in by
	// the refresh, feed churn, state-write effort. /debug/flight dumps
	// the always-on trace ring (the full pprof surface is -debug-addr).
	mux.Handle("/metrics", mirror.handler())
	mux.Handle("/debug/flight", reg.Flight().Handler())
	return mux
}
