// Command federated is the multi-campus aggregation daemon: it dials N
// site feeds published by `passived -publish` (or anything speaking the
// internal/federate wire format), reconciles them into one global
// inventory with per-site provenance and cross-site dedup, and serves the
// result over HTTP.
//
// Each feed connection bootstraps with the site's latest frozen snapshot
// and then streams live events; on a broken connection federated backs
// off, redials, and resumes from a fresh snapshot — the aggregator's
// generation cursor guarantees the overlap is never double-counted.
//
// With -checkpoint-dir the global inventory is durable: the aggregator
// state (services, per-site dedup cursors, scan reports) is written
// atomically every -checkpoint-every and once more on SIGINT/SIGTERM,
// and reloaded on the next start — so a restarted aggregator keeps its
// history instead of waiting for every site to reconnect and re-bootstrap.
//
// Endpoints: /dump (canonical text inventory), /services (global JSON
// rows; cached-encoded with ETag, ?limit=/&page= paginates), /query
// (typed indexed queries over the global inventory), /sites (per-feed
// statistics, ?limit= truncates), /metrics (Prometheus text: per-feed
// event/dedup/reconnect counters, state-write effort), /healthz.
//
//	federated -feed east:9000 -feed west:9001 -http :8090
//	federated -feed east:9000 -checkpoint-dir /var/lib/servdisc-global
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"servdisc/internal/checkpoint"
	"servdisc/internal/federate"
	"servdisc/internal/query"
)

// StateFileName is the aggregator checkpoint inside -checkpoint-dir.
const StateFileName = "aggregator.state"

// feedList collects repeated -feed flags.
type feedList []string

func (f *feedList) String() string { return fmt.Sprint(*f) }
func (f *feedList) Set(s string) error {
	*f = append(*f, s)
	return nil
}

type options struct {
	feeds     feedList
	httpAddr  string
	retry     time.Duration
	logEvents bool
	ckptDir   string
	ckptEvery time.Duration
	tombGC    time.Duration
}

func main() {
	var o options
	flag.Var(&o.feeds, "feed", "site feed address to aggregate (repeatable)")
	flag.StringVar(&o.httpAddr, "http", ":8090", "serve the global inventory on this address")
	flag.DurationVar(&o.retry, "retry", 2*time.Second, "reconnect backoff after a feed drops")
	flag.BoolVar(&o.logEvents, "log", true, "log global discoveries and scanner detections")
	flag.StringVar(&o.ckptDir, "checkpoint-dir", "", "durable aggregator-state directory (restore on start, write periodically and on shutdown)")
	flag.DurationVar(&o.ckptEvery, "checkpoint-every", 30*time.Second, "aggregator-state write interval (requires -checkpoint-dir)")
	flag.DurationVar(&o.tombGC, "tombstone-gc", 0, "drop retraction tombstones older than this (wall clock); 0 keeps them forever, which is always safe")
	flag.Parse()

	if len(o.feeds) == 0 {
		fmt.Fprintln(os.Stderr, "federated: at least one -feed is required")
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "federated:", err)
		os.Exit(1)
	}
}

// feedHealth counts one feed's connection churn for /metrics: dial
// failures and completed connections (each completed connection is a
// reconnect-to-come, so `connects - 1` is the reconnect count once the
// feed has been up at all).
type feedHealth struct {
	addr      string
	connects  atomic.Int64
	dialFails atomic.Int64
	drops     atomic.Int64
}

func run(o options) error {
	// A signal ends everything: the feed loops stop dialing, the HTTP
	// server drains, and the final state write makes the inventory
	// survive the restart.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	agg := federate.NewAggregator()

	statePath := ""
	if o.ckptDir != "" {
		if err := os.MkdirAll(o.ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
		statePath = filepath.Join(o.ckptDir, StateFileName)
		var st federate.AggregatorState
		ok, err := checkpoint.ReadStateFile(statePath, &st)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		if ok {
			if err := agg.ImportState(&st); err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			fmt.Printf("restored aggregator state from %s: %d sites, %d services\n",
				statePath, len(st.Sites), len(st.Services))
		}
	}
	var stateWrites, stateWriteFails atomic.Int64
	writeState := func() {
		if statePath == "" {
			return
		}
		if err := checkpoint.WriteStateFile(statePath, agg.ExportState()); err != nil {
			stateWriteFails.Add(1)
			fmt.Fprintf(os.Stderr, "federated: state write: %v\n", err)
			return
		}
		stateWrites.Add(1)
	}

	// The global event stream: every first-anywhere discovery, site-tagged.
	if o.logEvents {
		sub := agg.Subscribe(8192)
		go func() {
			for ge := range sub.Events() {
				fmt.Printf("global: [%s] %s\n", ge.Site, ge.Event)
			}
		}()
	}

	health := make([]*feedHealth, len(o.feeds))
	for i, addr := range o.feeds {
		health[i] = &feedHealth{addr: addr}
		go feedLoop(sigCtx, agg, health[i], o.retry)
	}

	srv := &http.Server{Addr: o.httpAddr, Handler: newMux(agg, health, &stateWrites, &stateWriteFails)}
	httpErr := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	fmt.Printf("aggregating %d feeds; serving global inventory on %s (/dump, /services, /query, /sites, /metrics, /healthz)\n",
		len(o.feeds), o.httpAddr)

	var stateTick <-chan time.Time
	if statePath != "" && o.ckptEvery > 0 {
		t := time.NewTicker(o.ckptEvery)
		defer t.Stop()
		stateTick = t.C
	}
	// Tombstone GC: retractions must outlive any stale snapshot a site
	// might replay (see Aggregator.CollapseTombstones), so the horizon is
	// an operator call — typically hours to days.
	var gcTick <-chan time.Time
	if o.tombGC > 0 {
		t := time.NewTicker(o.tombGC)
		defer t.Stop()
		gcTick = t.C
	}
	for {
		select {
		case <-gcTick:
			if n := agg.CollapseTombstones(time.Now().Add(-o.tombGC)); n > 0 {
				fmt.Printf("tombstone gc: collapsed %d retracted cells older than %s\n", n, o.tombGC)
			}
		case <-sigCtx.Done():
			writeState()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			if statePath != "" {
				fmt.Printf("shutting down; aggregator state saved to %s\n", statePath)
			}
			return nil
		case err := <-httpErr:
			writeState()
			return err
		case <-stateTick:
			writeState()
		}
	}
}

// feedLoop keeps one site feed alive: dial, consume until the connection
// ends, back off, redial. Every reconnect re-bootstraps from the site's
// newest snapshot; the aggregator dedups the overlap by generation.
func feedLoop(ctx context.Context, agg *federate.Aggregator, h *feedHealth, retry time.Duration) {
	for ctx.Err() == nil {
		conn, err := net.Dial("tcp", h.addr)
		if err != nil {
			h.dialFails.Add(1)
			fmt.Printf("feed %s: dial: %v (retrying in %s)\n", h.addr, err, retry)
		} else {
			h.connects.Add(1)
			fmt.Printf("feed %s: connected\n", h.addr)
			err = agg.ReadFeed(ctx, conn)
			conn.Close()
			h.drops.Add(1)
			if err != nil {
				fmt.Printf("feed %s: %v (reconnecting in %s)\n", h.addr, err, retry)
			} else {
				fmt.Printf("feed %s: stream ended (reconnecting in %s)\n", h.addr, retry)
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(retry):
		}
	}
}

// dumpCache holds one encoded /services body per aggregator generation:
// re-encoding happens only when a feed frame actually changed the service
// table, so any number of full-dump pollers cost one marshal per change.
type dumpCache struct {
	mu   sync.Mutex
	gen  uint64
	has  bool
	body []byte
	etag string
}

func (c *dumpCache) get(gen uint64, build func() []byte) ([]byte, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.has || gen != c.gen {
		c.gen, c.has = gen, true
		c.body = build()
		c.etag = fmt.Sprintf("\"agg-%d\"", gen)
	}
	return c.body, c.etag
}

// pagedServices serves /services?limit=&page=: global services in
// canonical key order, the last emitted key as the next-page token.
func pagedServices(agg *federate.Aggregator, limitStr, page string) ([]federate.GlobalService, string, error) {
	limit := 1000
	if limitStr != "" {
		n, err := strconv.Atoi(limitStr)
		if err != nil || n <= 0 {
			return nil, "", fmt.Errorf("bad limit %q", limitStr)
		}
		limit = n
	}
	all := agg.Services()
	if page != "" {
		after, err := query.ParseKey(page)
		if err != nil {
			return nil, "", fmt.Errorf("bad page token %q", page)
		}
		for len(all) > 0 && !after.Before(all[0].Key) {
			all = all[1:]
		}
	}
	next := ""
	if len(all) > limit {
		all = all[:limit]
		next = all[limit-1].Key.String()
	}
	return all, next, nil
}

func newMux(agg *federate.Aggregator, health []*feedHealth, stateWrites, stateWriteFails *atomic.Int64) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/dump", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(agg.Dump())
	})
	// /services serves the global dump from a body encoded once per
	// aggregator generation (ETag/If-None-Match answers unchanged polls
	// with a 304); ?limit=/&page= switches to canonical-key-order
	// pagination.
	dump := &dumpCache{}
	mux.HandleFunc("/services", func(w http.ResponseWriter, r *http.Request) {
		params := r.URL.Query()
		if params.Get("limit") == "" && params.Get("page") == "" {
			body, etag := dump.get(agg.Gen(), func() []byte {
				b, _ := json.Marshal(agg.Services())
				return b
			})
			w.Header().Set("ETag", etag)
			w.Header().Set("Content-Type", "application/json")
			if r.Header.Get("If-None-Match") == etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			_, _ = w.Write(body)
			return
		}
		page, next, err := pagedServices(agg, params.Get("limit"), params.Get("page"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"services":        page,
			"next_page_token": next,
		})
	})
	// /query answers typed indexed queries over the global cross-site
	// inventory; the index refreshes lazily from the keys feed frames
	// touched since the last query.
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := query.ParseHTTP(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := agg.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/sites", func(w http.ResponseWriter, r *http.Request) {
		stats := agg.Stats()
		if ls := r.URL.Query().Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n <= 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", ls), http.StatusBadRequest)
				return
			}
			if n < len(stats) {
				stats = stats[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(stats)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "ok sites=%d services=%d\n", len(agg.Sites()), agg.NumServices())
	})
	// /metrics: the global inventory plus one row per site feed (event
	// and dedup counters keyed by site identity, connection churn keyed
	// by feed address) in Prometheus text exposition format.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
		stats := agg.Stats()
		events := agg.EventCounters()
		p("# HELP federated_sites Sites currently known to the aggregator.\n")
		p("# TYPE federated_sites gauge\n")
		p("federated_sites %d\n", len(stats))
		p("# HELP federated_services Globally deduplicated services.\n")
		p("# TYPE federated_services gauge\n")
		p("federated_services %d\n", agg.NumServices())
		p("# HELP federated_site_events_total Event frames applied from one site.\n")
		p("# TYPE federated_site_events_total counter\n")
		for _, st := range stats {
			p("federated_site_events_total{site=%q} %d\n", string(st.Site), st.Events)
		}
		p("# HELP federated_site_dup_events_total Event frames skipped as duplicates (reconnect overlap).\n")
		p("# TYPE federated_site_dup_events_total counter\n")
		for _, st := range stats {
			p("federated_site_dup_events_total{site=%q} %d\n", string(st.Site), st.DupEvents)
		}
		p("# HELP federated_site_last_seq Per-site event-sequence high-water mark.\n")
		p("# TYPE federated_site_last_seq gauge\n")
		for _, st := range stats {
			p("federated_site_last_seq{site=%q} %d\n", string(st.Site), st.LastSeq)
		}
		p("# HELP federated_site_packets_total Passive packet volume reported by one site.\n")
		p("# TYPE federated_site_packets_total counter\n")
		for _, st := range stats {
			p("federated_site_packets_total{site=%q} %d\n", string(st.Site), st.Packets)
		}
		p("# HELP federated_site_services Services one site contributes to the global inventory.\n")
		p("# TYPE federated_site_services gauge\n")
		for _, st := range stats {
			p("federated_site_services{site=%q} %d\n", string(st.Site), st.Services)
		}
		p("# HELP federated_site_scans Completed active sweeps reported by one site.\n")
		p("# TYPE federated_site_scans gauge\n")
		for _, st := range stats {
			p("federated_site_scans{site=%q} %d\n", string(st.Site), st.Scans)
		}
		p("# HELP federated_feed_connects_total Successful feed connections (first connect + reconnects).\n")
		p("# TYPE federated_feed_connects_total counter\n")
		for _, h := range health {
			p("federated_feed_connects_total{feed=%q} %d\n", h.addr, h.connects.Load())
		}
		p("# HELP federated_feed_disconnects_total Feed connections that ended (each one triggers a redial).\n")
		p("# TYPE federated_feed_disconnects_total counter\n")
		for _, h := range health {
			p("federated_feed_disconnects_total{feed=%q} %d\n", h.addr, h.drops.Load())
		}
		p("# HELP federated_feed_dial_errors_total Failed dial attempts.\n")
		p("# TYPE federated_feed_dial_errors_total counter\n")
		for _, h := range health {
			p("federated_feed_dial_errors_total{feed=%q} %d\n", h.addr, h.dialFails.Load())
		}
		p("# HELP federated_global_events_published_total Global events published to subscribers.\n")
		p("# TYPE federated_global_events_published_total counter\n")
		p("federated_global_events_published_total %d\n", events.In())
		p("# HELP federated_global_events_dropped_total Global events dropped by lagging subscribers.\n")
		p("# TYPE federated_global_events_dropped_total counter\n")
		p("federated_global_events_dropped_total %d\n", events.Dropped())
		p("# HELP federated_state_writes_total Aggregator-state checkpoints written.\n")
		p("# TYPE federated_state_writes_total counter\n")
		p("federated_state_writes_total %d\n", stateWrites.Load())
		p("# HELP federated_state_write_failures_total Aggregator-state checkpoint failures.\n")
		p("# TYPE federated_state_write_failures_total counter\n")
		p("federated_state_write_failures_total %d\n", stateWriteFails.Load())
	})
	return mux
}
