// Command federated is the multi-campus aggregation daemon: it dials N
// site feeds published by `passived -publish` (or anything speaking the
// internal/federate wire format), reconciles them into one global
// inventory with per-site provenance and cross-site dedup, and serves the
// result over HTTP.
//
// Each feed connection bootstraps with the site's latest frozen snapshot
// and then streams live events; on a broken connection federated backs
// off, redials, and resumes from a fresh snapshot — the aggregator's
// generation cursor guarantees the overlap is never double-counted.
//
// Endpoints: /dump (canonical text inventory), /services (global JSON
// rows), /sites (per-feed statistics), /healthz.
//
//	federated -feed east:9000 -feed west:9001 -http :8090
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"servdisc/internal/federate"
)

// feedList collects repeated -feed flags.
type feedList []string

func (f *feedList) String() string { return fmt.Sprint(*f) }
func (f *feedList) Set(s string) error {
	*f = append(*f, s)
	return nil
}

func main() {
	var feeds feedList
	flag.Var(&feeds, "feed", "site feed address to aggregate (repeatable)")
	httpAddr := flag.String("http", ":8090", "serve the global inventory on this address")
	retry := flag.Duration("retry", 2*time.Second, "reconnect backoff after a feed drops")
	logEvents := flag.Bool("log", true, "log global discoveries and scanner detections")
	flag.Parse()

	if len(feeds) == 0 {
		fmt.Fprintln(os.Stderr, "federated: at least one -feed is required")
		os.Exit(2)
	}
	if err := run(feeds, *httpAddr, *retry, *logEvents); err != nil {
		fmt.Fprintln(os.Stderr, "federated:", err)
		os.Exit(1)
	}
}

func run(feeds []string, httpAddr string, retry time.Duration, logEvents bool) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agg := federate.NewAggregator()

	// The global event stream: every first-anywhere discovery, site-tagged.
	if logEvents {
		sub := agg.Subscribe(8192)
		go func() {
			for ge := range sub.Events() {
				fmt.Printf("global: [%s] %s\n", ge.Site, ge.Event)
			}
		}()
	}

	for _, addr := range feeds {
		go feedLoop(ctx, agg, addr, retry)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/dump", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(agg.Dump())
	})
	mux.HandleFunc("/services", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(agg.Services())
	})
	mux.HandleFunc("/sites", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(agg.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "ok sites=%d services=%d\n", len(agg.Sites()), agg.NumServices())
	})
	fmt.Printf("aggregating %d feeds; serving global inventory on %s (/dump, /services, /sites)\n",
		len(feeds), httpAddr)
	return http.ListenAndServe(httpAddr, mux)
}

// feedLoop keeps one site feed alive: dial, consume until the connection
// ends, back off, redial. Every reconnect re-bootstraps from the site's
// newest snapshot; the aggregator dedups the overlap by generation.
func feedLoop(ctx context.Context, agg *federate.Aggregator, addr string, retry time.Duration) {
	for ctx.Err() == nil {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			fmt.Printf("feed %s: dial: %v (retrying in %s)\n", addr, err, retry)
		} else {
			fmt.Printf("feed %s: connected\n", addr)
			err = agg.ReadFeed(ctx, conn)
			conn.Close()
			if err != nil {
				fmt.Printf("feed %s: %v (reconnecting in %s)\n", addr, err, retry)
			} else {
				fmt.Printf("feed %s: stream ended (reconnecting in %s)\n", addr, retry)
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(retry):
		}
	}
}
