package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/federate"
	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/packet"
)

// newTestServer assembles the aggregator's HTTP surface exactly as run()
// does — registry, frame-latency histograms, daemon series, site mirror —
// over an aggregator fed two sites' worth of frames, so the scrape
// assertions see populated per-site series.
func newTestServer(t *testing.T) (*httptest.Server, []*feedHealth, *federate.Aggregator) {
	t.Helper()
	agg := federate.NewAggregator()
	reg := obs.NewRegistry()
	agg.SetMetrics(&federate.AggregatorMetrics{
		Decode: reg.Histogram("federated_frame_decode_seconds", "Feed frame decode latency."),
		Apply:  reg.Histogram("federated_frame_apply_seconds", "Feed frame merge latency."),
	})

	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	for i, site := range []federate.SiteID{"east", "west"} {
		key := core.ServiceKey{
			Addr:  netaddr.MustParseV4("128.125.1.1") + netaddr.V4(i),
			Proto: packet.ProtoTCP,
			Port:  80,
		}
		ev := core.Event{
			Kind: core.EventServiceDiscovered,
			// Staggered watermarks make the staleness gauge nonzero for one
			// of the two sites.
			Time:       base.Add(time.Duration(i) * time.Minute),
			Key:        key,
			Provenance: core.PassiveOnly,
		}
		if err := agg.Apply(&federate.Frame{
			V: federate.WireVersion, Type: federate.FrameEvent,
			Site: site, Epoch: 1, Seq: 1, Event: &ev,
		}); err != nil {
			t.Fatal(err)
		}
	}

	health := []*feedHealth{
		newFeedHealth(options{}, agg, "127.0.0.1:9101", reg.Flight()),
		newFeedHealth(options{}, agg, "127.0.0.1:9102", reg.Flight()),
	}
	var stateWrites, stateWriteFails atomic.Int64
	registerDaemonSeries(reg, agg, &stateWrites, &stateWriteFails)
	mirror := newSiteMirror(reg, agg, health)
	srv := httptest.NewServer(newMux(agg, health, reg, mirror))
	t.Cleanup(srv.Close)
	return srv, health, agg
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsExposition scrapes the aggregator mux and checks the body
// against the strict exposition grammar plus the aggregate, per-site, and
// per-feed series the registry must now serve.
func TestMetricsExposition(t *testing.T) {
	srv, _, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails strict lint: %v\nbody:\n%s", err, body)
	}
	for _, want := range []string{
		"federated_sites 2",
		"federated_services 2",
		"federated_global_events_published_total ",
		"federated_state_writes_total ",
		"federated_frame_decode_seconds_bucket",
		"federated_frame_apply_seconds_bucket",
		`federated_site_events_total{site="east"} 1`,
		`federated_site_events_total{site="west"} 1`,
		`federated_site_services{site="east"} 1`,
		`federated_site_last_seq{site="west"} 1`,
		// The tentpole gauge: global watermark minus this site's watermark.
		// East's event is one minute older than west's.
		`federated_feed_staleness_seconds{site="east"} 60`,
		`federated_feed_staleness_seconds{site="west"} 0`,
		`federated_feed_connects_total{feed="127.0.0.1:9101"}`,
		`federated_feed_disconnects_total{feed="127.0.0.1:9102"}`,
		// The resilience series: resume-vs-snapshot split, rate-cap
		// stalls, and the backoff-state gauge (2 = the default base, no
		// failures yet).
		`federated_feed_resume_hits_total{feed="127.0.0.1:9101"}`,
		`federated_feed_snapshot_fallbacks_total{feed="127.0.0.1:9102"}`,
		`federated_feed_throttle_stalls_total{feed="127.0.0.1:9101"}`,
		`federated_feed_backoff_seconds{feed="127.0.0.1:9101"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestHealthzDegraded pins the three-state liveness/usefulness split:
// every feed down is 503 + "degraded", a partial partition (some feeds
// down) is 200 + "partial" with per-feed detail naming the culprits, and
// every feed up is 200 + "ok" — walked in both directions so recovery
// and re-partition transitions are both covered.
func TestHealthzDegraded(t *testing.T) {
	srv, health, _ := newTestServer(t)

	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all feeds down: /healthz status %d, want 503", code)
	}
	if !strings.Contains(body, `"status":"degraded"`) {
		t.Errorf("degraded body = %q, want status degraded", body)
	}
	if !strings.Contains(body, `"addr":"127.0.0.1:9101"`) || !strings.Contains(body, `"connected":false`) {
		t.Errorf("degraded body lacks per-feed detail: %q", body)
	}
	if !strings.Contains(body, `"backoff_seconds":`) {
		t.Errorf("degraded body lacks backoff state: %q", body)
	}

	// One of two feeds recovers: useful but partially partitioned.
	health[0].connected.Store(true)
	code, body = get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("one feed up: /healthz status %d, want 200", code)
	}
	if !strings.Contains(body, `"status":"partial"`) {
		t.Errorf("partial body = %q, want status partial", body)
	}
	if !strings.Contains(body, `"connected":true`) || !strings.Contains(body, `"connected":false`) {
		t.Errorf("partial body should name both the live and the dead feed: %q", body)
	}

	// Full recovery.
	health[1].connected.Store(true)
	code, body = get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("all feeds up: /healthz status %d, want 200", code)
	}
	if !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthy body = %q, want status ok", body)
	}

	// Re-partition: one feed drops again.
	health[0].connected.Store(false)
	if code, body = get(t, srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, `"status":"partial"`) {
		t.Errorf("re-partition: status %d body %q, want 200 partial", code, body)
	}
}

// TestStalenessGaugeMidResync watches the staleness gauge while a
// lagging site catches up: east starts one minute behind the global
// watermark, then replays events that close the gap — each scrape shows
// the gauge shrinking monotonically to zero without touching west's.
func TestStalenessGaugeMidResync(t *testing.T) {
	srv, _, agg := newTestServer(t)

	_, body := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, `federated_feed_staleness_seconds{site="east"} 60`) {
		t.Fatalf("east not 60s stale before resync:\n%s", body)
	}

	// East replays its backlog in two steps (30s behind, then level with
	// the global watermark) — the mid-resync scrapes must track it.
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	step := func(seq uint64, at time.Time) {
		ev := core.Event{
			Kind: core.EventServiceDiscovered, Time: at,
			Key: core.ServiceKey{
				Addr:  netaddr.MustParseV4("128.125.2.2") + netaddr.V4(seq),
				Proto: packet.ProtoTCP, Port: 443,
			},
			Provenance: core.PassiveOnly,
		}
		if err := agg.Apply(&federate.Frame{
			V: federate.WireVersion, Type: federate.FrameEvent,
			Site: "east", Epoch: 1, Seq: seq, Event: &ev,
		}); err != nil {
			t.Fatal(err)
		}
	}

	step(2, base.Add(30*time.Second))
	_, body = get(t, srv.URL+"/metrics")
	if !strings.Contains(body, `federated_feed_staleness_seconds{site="east"} 30`) {
		t.Fatalf("east gauge did not shrink to 30s mid-resync:\n%s", body)
	}

	step(3, base.Add(time.Minute))
	_, body = get(t, srv.URL+"/metrics")
	if !strings.Contains(body, `federated_feed_staleness_seconds{site="east"} 0`) {
		t.Fatalf("east gauge not zero after catching up:\n%s", body)
	}
	if !strings.Contains(body, `federated_feed_staleness_seconds{site="west"} 0`) {
		t.Fatalf("west gauge perturbed by east's resync:\n%s", body)
	}
}

// TestFlightEndpoint keeps /debug/flight mounted on the public mux.
func TestFlightEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	if code, _ := get(t, srv.URL+"/debug/flight"); code != 200 {
		t.Fatalf("GET /debug/flight: status %d", code)
	}
}
