package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/federate"
	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/packet"
)

// newTestServer assembles the aggregator's HTTP surface exactly as run()
// does — registry, frame-latency histograms, daemon series, site mirror —
// over an aggregator fed two sites' worth of frames, so the scrape
// assertions see populated per-site series.
func newTestServer(t *testing.T) (*httptest.Server, []*feedHealth) {
	t.Helper()
	agg := federate.NewAggregator()
	reg := obs.NewRegistry()
	agg.SetMetrics(&federate.AggregatorMetrics{
		Decode: reg.Histogram("federated_frame_decode_seconds", "Feed frame decode latency."),
		Apply:  reg.Histogram("federated_frame_apply_seconds", "Feed frame merge latency."),
	})

	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	for i, site := range []federate.SiteID{"east", "west"} {
		key := core.ServiceKey{
			Addr:  netaddr.MustParseV4("128.125.1.1") + netaddr.V4(i),
			Proto: packet.ProtoTCP,
			Port:  80,
		}
		ev := core.Event{
			Kind: core.EventServiceDiscovered,
			// Staggered watermarks make the staleness gauge nonzero for one
			// of the two sites.
			Time:       base.Add(time.Duration(i) * time.Minute),
			Key:        key,
			Provenance: core.PassiveOnly,
		}
		if err := agg.Apply(&federate.Frame{
			V: federate.WireVersion, Type: federate.FrameEvent,
			Site: site, Epoch: 1, Seq: 1, Event: &ev,
		}); err != nil {
			t.Fatal(err)
		}
	}

	health := []*feedHealth{{addr: "127.0.0.1:9101"}, {addr: "127.0.0.1:9102"}}
	var stateWrites, stateWriteFails atomic.Int64
	registerDaemonSeries(reg, agg, &stateWrites, &stateWriteFails)
	mirror := newSiteMirror(reg, agg, health)
	srv := httptest.NewServer(newMux(agg, health, reg, mirror))
	t.Cleanup(srv.Close)
	return srv, health
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsExposition scrapes the aggregator mux and checks the body
// against the strict exposition grammar plus the aggregate, per-site, and
// per-feed series the registry must now serve.
func TestMetricsExposition(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if err := obs.Lint(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition fails strict lint: %v\nbody:\n%s", err, body)
	}
	for _, want := range []string{
		"federated_sites 2",
		"federated_services 2",
		"federated_global_events_published_total ",
		"federated_state_writes_total ",
		"federated_frame_decode_seconds_bucket",
		"federated_frame_apply_seconds_bucket",
		`federated_site_events_total{site="east"} 1`,
		`federated_site_events_total{site="west"} 1`,
		`federated_site_services{site="east"} 1`,
		`federated_site_last_seq{site="west"} 1`,
		// The tentpole gauge: global watermark minus this site's watermark.
		// East's event is one minute older than west's.
		`federated_feed_staleness_seconds{site="east"} 60`,
		`federated_feed_staleness_seconds{site="west"} 0`,
		`federated_feed_connects_total{feed="127.0.0.1:9101"}`,
		`federated_feed_disconnects_total{feed="127.0.0.1:9102"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestHealthzDegraded pins the liveness/usefulness split: every feed down
// means 503 + "degraded" with per-feed detail; one live feed restores 200.
func TestHealthzDegraded(t *testing.T) {
	srv, health := newTestServer(t)

	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("all feeds down: /healthz status %d, want 503", code)
	}
	if !strings.Contains(body, `"status":"degraded"`) {
		t.Errorf("degraded body = %q, want status degraded", body)
	}
	if !strings.Contains(body, `"addr":"127.0.0.1:9101"`) || !strings.Contains(body, `"connected":false`) {
		t.Errorf("degraded body lacks per-feed detail: %q", body)
	}

	health[0].connected.Store(true)
	code, body = get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("one feed up: /healthz status %d, want 200", code)
	}
	if !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthy body = %q, want status ok", body)
	}
}

// TestFlightEndpoint keeps /debug/flight mounted on the public mux.
func TestFlightEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	if code, _ := get(t, srv.URL+"/debug/flight"); code != 200 {
		t.Fatalf("GET /debug/flight: status %d", code)
	}
}
