// Command repro regenerates the paper's tables and figures from the
// calibrated campus simulation and prints them in the paper's style.
//
//	repro -exp all            # everything (simulates all five datasets)
//	repro -exp table2         # one artifact
//	repro -exp hybrid         # hybrid-engine provenance reconciliation
//	repro -exp fig4 -csv out/ # also write figure series as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"servdisc/internal/experiments"
	"servdisc/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table8, fig1..fig12, hybrid, all)")
	csvDir := flag.String("csv", "", "directory for figure CSV series (optional)")
	flag.Parse()

	if err := run(*exp, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

type artifact struct {
	id    string
	table func() (*report.Table, error)
	fig   func() (*report.Figure, error)
}

func artifacts() []artifact {
	s := experiments.Shared
	sem := func() (*experiments.Dataset, error) { return s.Semester18d() }
	return []artifact{
		{id: "table1", table: func() (*report.Table, error) { return experiments.Table1(), nil }},
		{id: "table2", table: func() (*report.Table, error) {
			ds, err := sem()
			if err != nil {
				return nil, err
			}
			return experiments.Table2(ds), nil
		}},
		{id: "table3", table: func() (*report.Table, error) {
			ds, err := sem()
			if err != nil {
				return nil, err
			}
			return experiments.Table3(ds), nil
		}},
		{id: "table4", table: func() (*report.Table, error) {
			ds, err := sem()
			if err != nil {
				return nil, err
			}
			return experiments.Table4(ds), nil
		}},
		{id: "table5", table: func() (*report.Table, error) {
			ds, err := sem()
			if err != nil {
				return nil, err
			}
			return experiments.Table5(ds), nil
		}},
		{id: "table6", table: func() (*report.Table, error) {
			ds, err := sem()
			if err != nil {
				return nil, err
			}
			return experiments.Table6(ds), nil
		}},
		{id: "table7", table: func() (*report.Table, error) {
			ds, err := s.UDP1d()
			if err != nil {
				return nil, err
			}
			return experiments.Table7(ds), nil
		}},
		{id: "table8", table: func() (*report.Table, error) {
			ds, err := sem()
			if err != nil {
				return nil, err
			}
			return experiments.Table8(ds, "Table 8: servers per monitored link (DTCP1-18d)"), nil
		}},
		{id: "table8break", table: func() (*report.Table, error) {
			ds, err := s.Break11d()
			if err != nil {
				return nil, err
			}
			return experiments.Table8(ds, "Table 8: servers per monitored link (DTCPbreak)"), nil
		}},
		{id: "hybrid", table: func() (*report.Table, error) {
			ds, err := sem()
			if err != nil {
				return nil, err
			}
			return experiments.HybridTable(ds), nil
		}},
		{id: "fig1", fig: figOf(sem, experiments.Figure1)},
		{id: "fig2", fig: figOf(sem, experiments.Figure2)},
		{id: "fig3", fig: func() (*report.Figure, error) {
			ds90, err := s.Semester90d()
			if err != nil {
				return nil, err
			}
			ds18, err := sem()
			if err != nil {
				return nil, err
			}
			return experiments.Figure3(ds90, ds18), nil
		}},
		{id: "fig4", fig: figOf(sem, experiments.Figure4)},
		{id: "fig5", fig: figOf(sem, experiments.Figure5)},
		{id: "fig6", fig: figOf(sem, experiments.Figure6)},
		{id: "fig7", fig: figOf(sem, experiments.Figure7)},
		{id: "fig8", fig: figOf(sem, experiments.Figure8)},
		{id: "fig9", fig: figOf(s.Lab10d, experiments.Figure9)},
		{id: "fig10", fig: figOf(s.Lab10d, experiments.Figure10)},
		{id: "fig11", table: func() (*report.Table, error) {
			lab, err := s.Lab10d()
			if err != nil {
				return nil, err
			}
			return experiments.Figure11(lab), nil
		}},
		{id: "fig12", fig: figOf(s.Break11d, experiments.Figure12)},
	}
}

func figOf(get func() (*experiments.Dataset, error), f func(*experiments.Dataset) *report.Figure) func() (*report.Figure, error) {
	return func() (*report.Figure, error) {
		ds, err := get()
		if err != nil {
			return nil, err
		}
		return f(ds), nil
	}
}

func run(exp, csvDir string) error {
	exp = strings.ToLower(exp)
	matched := false
	for _, a := range artifacts() {
		if exp != "all" && a.id != exp {
			continue
		}
		matched = true
		switch {
		case a.table != nil:
			t, err := a.table()
			if err != nil {
				return fmt.Errorf("%s: %w", a.id, err)
			}
			fmt.Println(t.Render())
		case a.fig != nil:
			f, err := a.fig()
			if err != nil {
				return fmt.Errorf("%s: %w", a.id, err)
			}
			fmt.Println(f.Render())
			if csvDir != "" {
				if err := os.MkdirAll(csvDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(csvDir, a.id+".csv")
				out, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := f.WriteCSV(out); err != nil {
					out.Close()
					return err
				}
				if err := out.Close(); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
