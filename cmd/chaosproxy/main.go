// chaosproxy is a TCP fault-injection proxy for resilience drills: it
// relays connections to a target while killing the first -kills of them
// mid-stream at seeded random byte offsets (mean -cut-bytes), then passes
// everything after that through clean. Pointed between cmd/federated and
// a passived -publish port it forces the feed client through its full
// reconnect-and-resume path; the CI chaos smoke asserts the aggregator's
// dump still converges with the unproxied run's.
//
//	chaosproxy -listen 127.0.0.1:9200 -target 127.0.0.1:9100 -seed 1 -kills 3
//
// The schedule is deterministic for a given -seed, so a failing drill
// replays exactly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"servdisc/internal/faultnet"
	"servdisc/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaosproxy: ")

	var (
		listen   = flag.String("listen", "127.0.0.1:9200", "address to accept feed connections on")
		target   = flag.String("target", "", "address to relay to (required)")
		seed     = flag.Uint64("seed", 1, "seed for the kill-offset schedule")
		kills    = flag.Int("kills", 3, "number of leading connections to cut mid-stream (later ones relay clean)")
		cutBytes = flag.Int64("cut-bytes", 32<<10, "mean relayed bytes before a doomed connection is cut")
	)
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "chaosproxy: -target is required")
		flag.Usage()
		os.Exit(2)
	}

	rng := stats.NewRNG(*seed).Derive("chaosproxy")
	plan := func(conn int) (clientSend, serverSend faultnet.Faults) {
		if conn >= *kills {
			log.Printf("conn %d: clean relay", conn)
			return faultnet.Faults{}, faultnet.Faults{}
		}
		// Kill the feed direction (target -> client) mid-stream; the
		// client sees a truncated frame and must resync on redial.
		cut := 1 + int64(rng.Exp(float64(*cutBytes)))
		log.Printf("conn %d: will cut after %d bytes", conn, cut)
		return faultnet.Faults{}, faultnet.Faults{CutAt: cut}
	}

	p, err := faultnet.Listen(*listen, *target, plan)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("relaying %s -> %s (killing first %d connections, seed %d)", p.Addr(), *target, *kills, *seed)
	if err := p.Run(context.Background()); err != nil && err != context.Canceled {
		log.Fatal(err)
	}
}
