// Command campussim generates a synthetic campus border trace in pcap
// format, suitable for replay through cmd/passived or external tooling
// (tcpdump/Wireshark read it directly).
//
//	campussim -days 2 -out campus.pcap
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/netaddr"
	"servdisc/internal/sim"
	"servdisc/internal/trace"
	"servdisc/internal/traffic"
)

func main() {
	days := flag.Float64("days", 1, "simulated days of traffic")
	out := flag.String("out", "campus.pcap", "output pcap path")
	seed := flag.Uint64("seed", 0, "override simulation seed (0 = default)")
	snaplen := flag.Int("snaplen", trace.DefaultSnapLen, "pcap snap length")
	flag.Parse()

	if err := run(*days, *out, *seed, *snaplen); err != nil {
		fmt.Fprintln(os.Stderr, "campussim:", err)
		os.Exit(1)
	}
}

func run(days float64, out string, seed uint64, snaplen int) error {
	cfg := campus.DefaultSemesterConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	net, err := campus.NewNetwork(cfg)
	if err != nil {
		return err
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net, eng)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f, trace.LinkTypeRaw, snaplen)
	rec := capture.NewRecorder(w)

	// Record exactly what the paper's monitor would keep: TCP control
	// packets plus UDP, on the monitored commercial links.
	campusPfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
	if err != nil {
		return err
	}
	assigner := capture.NewAssigner(campusPfx, net.AcademicClients())
	tap1, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter, nil, rec)
	if err != nil {
		return err
	}
	tap2, err := capture.NewTap(capture.LinkCommercial2, capture.PaperFilter, nil, rec)
	if err != nil {
		return err
	}
	mon := capture.NewMonitor(assigner, tap1, tap2)
	traffic.NewGenerator(net, eng, mon)

	eng.RunUntil(cfg.Start.Add(time.Duration(days * 24 * float64(time.Hour))))
	if err := rec.Err(); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets (%.1f simulated days) to %s\n", rec.Written, days, out)
	return nil
}
