// Command promlint validates Prometheus text exposition read from stdin
// against the strict line grammar in internal/obs: metric-name charset,
// HELP/TYPE placement, family contiguity, duplicate series, histogram
// bucket monotonicity. Exit status 0 means the exposition parses clean;
// 1 reports the first violation. CI pipes a running daemon's /metrics
// through it:
//
//	curl -s localhost:8080/metrics | promlint
package main

import (
	"fmt"
	"os"

	"servdisc/internal/obs"
)

func main() {
	if err := obs.Lint(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}
