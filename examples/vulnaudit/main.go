// Vulnaudit: the "vulnerability disclosure" workflow from the paper's
// introduction — a flaw drops for a service, and the operator must find
// every instance fast. Active probing wins this race (one sweep finds 98%
// of servers in ~2 hours), but the passive inventory contributes the
// firewalled servers probes cannot see, so the audit unions both.
package main

import (
	"fmt"
	"log"
	"time"

	"servdisc"
	"servdisc/internal/campus"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
	"servdisc/internal/sim"
	"servdisc/internal/traffic"
)

func main() {
	cfg := campus.DefaultSemesterConfig()
	cfg.StaticAddrs, cfg.StaticSubnets = 4096, 8
	cfg.DHCPAddrs, cfg.WirelessAddrs, cfg.PPPAddrs, cfg.VPNAddrs = 256, 128, 128, 64
	cfg.StaticLiveHosts, cfg.StaticServers, cfg.PopularServers = 900, 500, 10
	cfg.StealthFirewalled = 12
	cfg.DHCPHosts, cfg.PPPHosts, cfg.VPNHosts, cfg.WirelessHosts = 150, 60, 40, 50
	cfg.FlowsPerDay = 25000

	net, err := campus.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net, eng)

	campusPfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := servdisc.NewPipeline(servdisc.Config{
		Campus:   campusPfx.String(),
		UDPPorts: []uint16{},
		Academic: net.AcademicClients(),
	})
	if err != nil {
		log.Fatal(err)
	}
	traffic.NewGenerator(net, eng, pl)

	// Day 1-3: passive monitoring runs as part of normal operation.
	eng.RunUntil(cfg.Start.Add(72 * time.Hour))

	// Day 3, 09:00: an SSH vulnerability is disclosed. Sweep port 22 NOW.
	disclosure := eng.Now()
	active := core.NewActiveDiscoverer([]uint16{campus.PortSSH})
	scanner := probe.NewSimScanner(&probe.SimBackend{Net: net}, eng, probe.ScanConfig{
		Targets:  net.Plan().ProbeTargets(),
		TCPPorts: []uint16{campus.PortSSH},
		Rate:     25,
		Shards:   2,
	})
	var sweep *probe.ScanReport
	scanner.Schedule(disclosure, func(rep *probe.ScanReport) { sweep = rep })
	eng.RunUntil(disclosure.Add(6 * time.Hour))
	if sweep == nil {
		log.Fatal("sweep did not finish")
	}
	active.AddReport(sweep)

	keepSSH := func(k core.ServiceKey) bool {
		return k.Proto == packet.ProtoTCP && k.Port == campus.PortSSH
	}
	an := &core.Analysis{Passive: pl.Passive(), Active: active, Keep: keepSSH}

	probed := an.ActiveAddrs()
	heard := an.PassiveAddrs()
	fmt.Printf("sweep finished in %v\n", sweep.Finished.Sub(sweep.Started).Round(time.Minute))
	fmt.Printf("ssh servers answering probes now: %d\n", len(probed))
	fmt.Printf("ssh servers in the passive inventory: %d\n", len(heard))

	// The audit list = union; passive-only entries are the servers a
	// probe-only audit would have missed entirely.
	missed := 0
	for addr := range heard {
		if _, ok := probed[addr]; !ok {
			missed++
			fmt.Printf("  probe-invisible ssh server: %s (firewalled or offline at sweep time)\n", addr)
		}
	}
	fmt.Printf("audit list: %d hosts (%d contributed only by passive monitoring)\n",
		len(probed)+missed, missed)
}
