// Sampling: a deployment study for constrained monitors (paper Section
// 5.3) — how much discovery do you lose if the capture hardware can only
// keep the first N minutes of each hour? The paper's answer: 30 of 60
// minutes costs only ~5% of servers; even 10 minutes costs ~11%.
package main

import (
	"fmt"
	"log"
	"time"

	"servdisc"
	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/sim"
	"servdisc/internal/traffic"
)

func main() {
	cfg := campus.DefaultSemesterConfig()
	cfg.StaticAddrs, cfg.StaticSubnets = 4096, 8
	cfg.DHCPAddrs, cfg.WirelessAddrs, cfg.PPPAddrs, cfg.VPNAddrs = 256, 128, 128, 64
	cfg.StaticLiveHosts, cfg.StaticServers, cfg.PopularServers = 900, 450, 10
	cfg.DHCPHosts, cfg.PPPHosts, cfg.VPNHosts, cfg.WirelessHosts = 150, 60, 40, 50
	cfg.FlowsPerDay = 20000

	net, err := campus.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net, eng)

	campusPfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
	if err != nil {
		log.Fatal(err)
	}

	// One continuous pipeline (the facade's standard assembly) plus one
	// reduced capture per sampling window, mirrored off the same monitor
	// so every variant observes identical traffic.
	pl, err := servdisc.NewPipeline(servdisc.Config{
		Campus:   campusPfx.String(),
		UDPPorts: []uint16{},
		Academic: net.AcademicClients(),
	})
	if err != nil {
		log.Fatal(err)
	}
	windows := []time.Duration{
		2 * time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute,
	}
	discoverers := map[string]*core.PassiveDiscoverer{}
	for _, w := range windows {
		pd := core.NewPassiveDiscoverer(campusPfx, nil)
		discoverers[fmt.Sprintf("%v/hour", w)] = pd
		tap, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter,
			capture.NewFixedWindowSampler(cfg.Start, w), pd)
		if err != nil {
			log.Fatal(err)
		}
		pl.Monitor().AddMirror(tap)
	}
	traffic.NewGenerator(net, eng, pl)

	eng.RunUntil(cfg.Start.Add(5 * 24 * time.Hour))

	base := len(pl.Passive().AddrFirstSeen(nil))
	fmt.Printf("continuous monitoring over 5 days found %d server addresses\n\n", base)
	fmt.Printf("%-14s %10s %10s\n", "capture", "servers", "of full")
	for _, w := range windows {
		pd := discoverers[fmt.Sprintf("%v/hour", w)]
		n := len(pd.AddrFirstSeen(nil))
		fmt.Printf("%-14s %10d %9.1f%%\n",
			fmt.Sprintf("%dmin/hour", int(w.Minutes())), n, 100*float64(n)/float64(base))
	}
	fmt.Println("\nthe relationship is sublinear: half the capture loses only a few")
	fmt.Println("percent, because what matters is whether a scan or a rare flow")
	fmt.Println("happens to land inside a sampled window.")
}
