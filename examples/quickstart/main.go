// Quickstart: simulate a small campus for one day, run passive monitoring
// and one active sweep side by side, and compare what each method found —
// the paper's core experiment in fifty lines. The passive side is the
// servdisc facade's standard pipeline: link assigner → filtered taps →
// sharded discoverer.
package main

import (
	"fmt"
	"log"
	"time"

	"servdisc"
	"servdisc/internal/campus"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/probe"
	"servdisc/internal/sim"
	"servdisc/internal/traffic"
)

func main() {
	// A small campus: ~2k addresses, a few hundred servers.
	cfg := campus.DefaultSemesterConfig()
	cfg.StaticAddrs, cfg.StaticSubnets = 2048, 8
	cfg.DHCPAddrs, cfg.WirelessAddrs, cfg.PPPAddrs, cfg.VPNAddrs = 256, 128, 128, 64
	cfg.StaticLiveHosts, cfg.StaticServers, cfg.PopularServers = 500, 250, 8
	cfg.StealthFirewalled, cfg.ServerDeaths = 5, 0
	cfg.DHCPHosts, cfg.PPPHosts, cfg.VPNHosts, cfg.WirelessHosts = 120, 50, 30, 40
	cfg.FlowsPerDay = 20000

	net, err := campus.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net, eng)

	// Passive side: the facade pipeline with the paper's filter on both
	// commercial links.
	campusPfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := servdisc.NewPipeline(servdisc.Config{
		Campus:   campusPfx.String(),
		Academic: net.AcademicClients(),
	})
	if err != nil {
		log.Fatal(err)
	}
	traffic.NewGenerator(net, eng, pl)

	// Active side: one half-open sweep of the five selected ports.
	active := core.NewActiveDiscoverer(campus.SelectedTCPPorts)
	scanner := probe.NewSimScanner(&probe.SimBackend{Net: net}, eng, probe.ScanConfig{
		Targets:  net.Plan().ProbeTargets(),
		TCPPorts: campus.SelectedTCPPorts,
		Rate:     10,
		Shards:   2,
	})
	scanner.Schedule(cfg.Start.Add(time.Hour), func(rep *probe.ScanReport) {
		active.AddReport(rep)
	})

	// Run one simulated day.
	eng.RunUntil(cfg.Start.Add(24 * time.Hour))

	an := &core.Analysis{Passive: pl.Passive(), Active: active}
	row := an.Completeness(cfg.Start.Add(24*time.Hour), 1)
	fmt.Printf("union of both methods:  %4d server addresses\n", row.Union)
	fmt.Printf("found by active sweep:  %4d (%d only by active)\n", row.Active, row.ActiveOnly)
	fmt.Printf("found passively (24h):  %4d (%d only passively)\n", row.Passive, row.PassiveOnly)
	fmt.Printf("found by both:          %4d\n", row.Both)

	// The passive-only finds are the interesting ones: firewalled or
	// newborn services active probing cannot see.
	for _, fw := range an.FirewallCandidates() {
		fmt.Printf("possible firewall at %s (mixed response: %v, active during scan: %v)\n",
			fw.Addr, fw.MixedResponse, fw.ActiveDuringScan)
	}
}
