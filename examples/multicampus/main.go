// Multicampus: the federation demo — one simulated campaign split across
// two vantage points, reunited into a global inventory.
//
// The paper's campus had two commercial peerings; border traffic splits
// deterministically between them. Here each link is monitored by its own
// independent discovery engine (as if the taps lived in different
// buildings, or different campuses of one university system), and each
// engine publishes its site-tagged stream over the internal/federate wire
// format. A single aggregator consumes both feeds — snapshot bootstrap
// plus live events, exactly what `passived -publish` serves to
// cmd/federated over TCP — and reconciles them: a server whose clients
// arrive over both links becomes one global record credited to two sites,
// and the final dump is byte-identical no matter which feed arrived
// first.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"servdisc"
	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/federate"
	"servdisc/internal/netaddr"
	"servdisc/internal/probe"
	"servdisc/internal/sim"
	"servdisc/internal/traffic"
)

func main() {
	// A small campus: ~2k addresses, a few hundred servers (see
	// examples/quickstart for the baseline single-vantage version).
	cfg := campus.DefaultSemesterConfig()
	cfg.StaticAddrs, cfg.StaticSubnets = 2048, 8
	cfg.DHCPAddrs, cfg.WirelessAddrs, cfg.PPPAddrs, cfg.VPNAddrs = 256, 128, 128, 64
	cfg.StaticLiveHosts, cfg.StaticServers, cfg.PopularServers = 500, 250, 8
	cfg.StealthFirewalled, cfg.ServerDeaths = 5, 0
	cfg.DHCPHosts, cfg.PPPHosts, cfg.VPNHosts, cfg.WirelessHosts = 120, 50, 30, 40
	cfg.FlowsPerDay = 20000

	net_, err := campus.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net_, eng)

	campusPfx, err := netaddr.NewPrefix(net_.Plan().Base(), 16)
	if err != nil {
		log.Fatal(err)
	}

	// One engine per vantage point: each monitors a single commercial
	// peering, so each sees only the traffic the border router happens to
	// route over its link.
	sites := []struct {
		id   federate.SiteID
		link capture.LinkID
	}{
		{"commercial-1", capture.LinkCommercial1},
		{"commercial-2", capture.LinkCommercial2},
	}
	ctx := context.Background()
	pipelines := make([]*servdisc.Pipeline, len(sites))
	pubs := make([]*federate.Publisher, len(sites))
	for i, s := range sites {
		pl, err := servdisc.NewPipeline(servdisc.Config{
			Campus:   campusPfx.String(),
			Academic: net_.AcademicClients(),
			Links:    []capture.LinkID{s.link},
		})
		if err != nil {
			log.Fatal(err)
		}
		pipelines[i] = pl
		pubs[i] = federate.NewPublisher(s.id, pl)
	}
	traffic.NewGenerator(net_, eng, pipelines[0], pipelines[1])

	// Site 1 also runs an active sweep an hour in; its report reconciles
	// into that site's engine, so the federation carries provenance
	// upgrades from one vantage point and passive-only evidence from the
	// other.
	scanner := probe.NewSimScanner(&probe.SimBackend{Net: net_}, eng, probe.ScanConfig{
		Targets:  net_.Plan().ProbeTargets(),
		TCPPorts: campus.SelectedTCPPorts,
		Rate:     10,
		Shards:   2,
	})
	scanner.Schedule(cfg.Start.Add(time.Hour), func(rep *probe.ScanReport) {
		pipelines[0].AddReport(rep)
	})

	// The aggregator consumes both feeds over the wire format (in-memory
	// pipes standing in for the TCP connections cmd/federated dials).
	agg := federate.NewAggregator()
	feedDone := make([]chan error, len(pubs))
	for i, pub := range pubs {
		feedDone[i] = connectFeed(ctx, agg, pub)
	}

	// Run one simulated day with everything attached: the aggregator's
	// feeds race the live generator, exactly like production.
	eng.RunUntil(cfg.Start.Add(24 * time.Hour))

	// Sites quiesce: close the engines (ending the live feeds), then let
	// the aggregator reconnect once per site for the final snapshot — the
	// same catch-up a restarted cmd/federated performs.
	for i, pl := range pipelines {
		pl.Close()
		if err := <-feedDone[i]; err != nil {
			log.Fatalf("feed %s: %v", sites[i].id, err)
		}
		if err := <-connectFeed(ctx, agg, pubs[i]); err != nil {
			log.Fatalf("reconnect %s: %v", sites[i].id, err)
		}
	}

	// The global picture: cross-site dedup in action.
	var bothSites, oneSite int
	for _, g := range agg.Services() {
		if len(g.Sites) > 1 {
			bothSites++
		} else {
			oneSite++
		}
	}
	fmt.Printf("global inventory: %d services across %d sites\n",
		agg.NumServices(), len(agg.Sites()))
	fmt.Printf("  seen from both vantage points: %4d (one record, two site entries)\n", bothSites)
	fmt.Printf("  seen from a single link only:  %4d\n", oneSite)
	// Live-event counts vary with scheduling (a feed that subscribes late
	// recovers the head of the stream from its bootstrap snapshot); the
	// feed drop counters are the health signal that matters.
	for i, st := range agg.Stats() {
		fmt.Printf("site %-13s services=%-4d scans=%d packets=%d feed-dropped=%d pump-dropped=%d\n",
			st.Site, st.Services, st.Scans, st.Packets,
			pubs[i].FrameCounters().Dropped(), pubs[i].Dropped())
	}

	// The determinism contract: re-aggregating the final snapshots in the
	// opposite feed order reproduces the dump byte for byte.
	reversed := federate.NewAggregator()
	for i := len(pubs) - 1; i >= 0; i-- {
		if err := <-connectFeed(ctx, reversed, pubs[i]); err != nil {
			log.Fatalf("re-aggregate %s: %v", sites[i].id, err)
		}
	}
	if string(agg.Dump()) != string(reversed.Dump()) {
		log.Fatal("federation dumps diverge across feed orders")
	}
	fmt.Println("convergence: dump is byte-identical with feed order reversed")
}

// connectFeed wires one publisher to the aggregator through an in-memory
// connection speaking the federation wire format — the client-speaks-
// first resume protocol FeedClient runs over TCP; the returned channel
// yields the feed's terminal error (nil on clean end-of-stream).
func connectFeed(ctx context.Context, agg *federate.Aggregator, pub *federate.Publisher) chan error {
	c1, c2 := net.Pipe()
	go func() {
		_ = pub.ServeConn(ctx, c1)
		c1.Close()
	}()
	fc := federate.NewFeedClient(agg, "pipe", federate.FeedOptions{})
	done := make(chan error, 1)
	go func() {
		err := fc.RunConn(ctx, c2)
		c2.Close()
		done <- err
	}()
	return done
}
