// Trendmon: the trend-monitoring workflow (paper Section 4.1.2) — passive
// monitoring finds the servers that matter almost immediately. This example
// measures how fast the passive inventory covers 99% of flow-weighted and
// client-weighted servers, reproducing Figure 1's headline numbers
// ("99% of flow-weighted servers in 5 minutes, client-weighted in 14").
//
// Unlike the batch version of this example, coverage is tracked
// event-driven: a subscriber on the pipeline's discovery event stream
// records every ServiceDiscovered as it happens, and hourly live
// snapshots show the inventory growing while the engine keeps ingesting —
// no freeze, no post-hoc replay of state.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"servdisc"
	"servdisc/internal/campus"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/sim"
	"servdisc/internal/stats"
	"servdisc/internal/traffic"
)

func main() {
	cfg := campus.DefaultSemesterConfig()
	cfg.StaticAddrs, cfg.StaticSubnets = 4096, 8
	cfg.DHCPAddrs, cfg.WirelessAddrs, cfg.PPPAddrs, cfg.VPNAddrs = 256, 128, 128, 64
	cfg.StaticLiveHosts, cfg.StaticServers, cfg.PopularServers = 900, 500, 12
	cfg.DHCPHosts, cfg.PPPHosts, cfg.VPNHosts, cfg.WirelessHosts = 150, 60, 40, 50
	cfg.FlowsPerDay = 40000

	net, err := campus.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net, eng)

	campusPfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := servdisc.NewPipeline(servdisc.Config{
		Campus:   campusPfx.String(),
		UDPPorts: []uint16{},
		Academic: net.AcademicClients(),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Subscribe before the first packet so no discovery is missed. The
	// buffer is sized for the whole campaign: this consumer drains only
	// between simulation steps, and a dropped event here would mean a
	// hole in the coverage curve.
	sub := pl.Subscribe(1 << 16)
	traffic.NewGenerator(net, eng, pl)

	// Drive the simulation in hourly steps, snapshotting live at each
	// step: Snapshot is non-terminal, so the engine keeps discovering
	// straight through.
	end := cfg.Start.Add(12 * time.Hour)
	for at := cfg.Start.Add(time.Hour); !at.After(end); at = at.Add(time.Hour) {
		eng.RunUntil(at)
		inv := pl.Snapshot()
		fmt.Printf("t+%2dh: %5d services on %4d addresses (live snapshot, %d packets)\n",
			int(at.Sub(cfg.Start).Hours()), inv.Len(), len(inv.AddrFirstSeen(nil)), inv.Packets())
	}
	final := pl.Snapshot()
	pl.Close() // ends the event stream; the snapshot stays valid

	// Event-driven coverage: per-address first discovery straight from the
	// ServiceDiscovered stream.
	first := make(map[netaddr.V4]time.Time)
	events := 0
	for ev := range sub.Events() {
		if ev.Kind != servdisc.EventServiceDiscovered {
			continue
		}
		events++
		if cur, ok := first[ev.Key.Addr]; !ok || ev.Time.Before(cur) {
			first[ev.Key.Addr] = ev.Time
		}
	}
	if sub.Dropped() > 0 {
		log.Fatalf("coverage subscriber dropped %d events; raise its buffer", sub.Dropped())
	}

	// Weight each address by its final flow/client totals and compute the
	// time-to-coverage curve from the event timestamps.
	flows, clients := final.AddrWeights()
	for _, kind := range []struct {
		name   string
		weight map[netaddr.V4]int
	}{{"flow-weighted", flows}, {"client-weighted", clients}, {"unweighted", nil}} {
		s := coverageSeries(first, kind.weight, cfg.Start, end)
		for _, pct := range []float64{90, 99} {
			d, ok := core.TimeTo(s, cfg.Start, pct)
			if !ok {
				fmt.Printf("%-16s never reached %.0f%% of final coverage\n", kind.name, pct)
				continue
			}
			fmt.Printf("%-16s reached %.0f%% of its final coverage after %v\n",
				kind.name, pct, d.Round(time.Second))
		}
	}
	fmt.Printf("\nservers discovered passively in 12h: %d (%d discovery events, 0 dropped)\n",
		len(first), events)
	fmt.Println("flow-weighted coverage converges in minutes: the busy servers")
	fmt.Println("announce themselves; the long tail is what takes weeks.")
}

// coverageSeries builds the cumulative weighted-coverage curve from
// per-address first-discovery timestamps (weight nil counts every address
// as 1), the event-stream analogue of core.Analysis.WeightedSeries.
func coverageSeries(first map[netaddr.V4]time.Time, weight map[netaddr.V4]int, from, to time.Time) *stats.Series {
	type disc struct {
		t time.Time
		w float64
	}
	var events []disc
	for addr, at := range first {
		if at.After(to) {
			continue
		}
		if at.Before(from) {
			at = from
		}
		w := 1.0
		if weight != nil {
			w = float64(weight[addr])
		}
		events = append(events, disc{t: at, w: w})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t.Before(events[j].t) })
	s := stats.NewSeries("coverage")
	s.Add(from, 0)
	cum := 0.0
	for _, e := range events {
		cum += e.w
		s.Add(e.t, cum)
	}
	return s
}
