// Trendmon: the trend-monitoring workflow (paper Section 4.1.2) — passive
// monitoring finds the servers that matter almost immediately. This example
// measures how fast the passive inventory covers 99% of flow-weighted and
// client-weighted servers, reproducing Figure 1's headline numbers
// ("99% of flow-weighted servers in 5 minutes, client-weighted in 14").
package main

import (
	"fmt"
	"log"
	"time"

	"servdisc"
	"servdisc/internal/campus"
	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/sim"
	"servdisc/internal/traffic"
)

func main() {
	cfg := campus.DefaultSemesterConfig()
	cfg.StaticAddrs, cfg.StaticSubnets = 4096, 8
	cfg.DHCPAddrs, cfg.WirelessAddrs, cfg.PPPAddrs, cfg.VPNAddrs = 256, 128, 128, 64
	cfg.StaticLiveHosts, cfg.StaticServers, cfg.PopularServers = 900, 500, 12
	cfg.DHCPHosts, cfg.PPPHosts, cfg.VPNHosts, cfg.WirelessHosts = 150, 60, 40, 50
	cfg.FlowsPerDay = 40000

	net, err := campus.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net, eng)

	campusPfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := servdisc.NewPipeline(servdisc.Config{
		Campus:   campusPfx.String(),
		UDPPorts: []uint16{},
		Academic: net.AcademicClients(),
	})
	if err != nil {
		log.Fatal(err)
	}
	traffic.NewGenerator(net, eng, pl)

	end := cfg.Start.Add(12 * time.Hour)
	eng.RunUntil(end)

	an := &core.Analysis{Passive: pl.Passive(), Active: core.NewActiveDiscoverer(nil)}
	first := an.PassiveAddrs()

	for _, kind := range []core.WeightKind{core.WeightFlows, core.WeightClients, core.WeightNone} {
		s := an.WeightedSeries(first, kind, cfg.Start, end)
		final := s.Last()
		for _, pct := range []float64{90, 99} {
			d, ok := core.TimeTo(s, cfg.Start, pct)
			if !ok {
				fmt.Printf("%-16s never reached %.0f%% of final (%.1f%%)\n", kind, pct, final)
				continue
			}
			fmt.Printf("%-16s reached %.0f%% of its final coverage after %v\n",
				kind, pct, d.Round(time.Second))
		}
	}
	fmt.Printf("\nservers discovered passively in 12h: %d\n", len(first))
	fmt.Println("flow-weighted coverage converges in minutes: the busy servers")
	fmt.Println("announce themselves; the long tail is what takes weeks.")
}
