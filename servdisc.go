package servdisc

// This file is the public facade over the internal wiring: NewPipeline
// assembles the standard passive-monitoring pipeline (link assigner →
// per-link taps → sharded discoverer), NewHybrid attaches the concurrent
// active-scan scheduler to the same engine, and Discover replays a pcap
// trace through it. cmd/ and examples/ build on these instead of
// assembling internal packages by hand. See doc.go for the package
// overview and DESIGN.md for the architecture.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/checkpoint"
	"servdisc/internal/core"
	"servdisc/internal/federate"
	"servdisc/internal/filter"
	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/probe"
	"servdisc/internal/query"
	"servdisc/internal/trace"
)

// Re-exported result types, so facade users consume inventories without
// importing internal packages directly.
type (
	// Inventory is a frozen, read-only discovery result.
	Inventory = core.Inventory
	// ServiceKey identifies one discovered service (addr, proto, port).
	ServiceKey = core.ServiceKey
	// PassiveRecord is the per-service evidence accumulated passively.
	PassiveRecord = core.PassiveRecord
	// ScannerInfo describes one detected external scanner.
	ScannerInfo = core.ScannerInfo
	// Provenance classifies how a hybrid inventory found a service
	// (passive-only, active-only, passive-first, active-first).
	Provenance = core.Provenance
	// ScanReport is one active sweep's observations.
	ScanReport = probe.ScanReport
	// Event is one entry of the typed discovery event stream (see Watch).
	Event = core.Event
	// EventKind classifies a discovery event.
	EventKind = core.EventKind
	// EventSub is a bounded subscription to the event stream (see
	// Pipeline.Subscribe): Events yields the channel, Dropped the events
	// this subscriber missed, Cancel unsubscribes.
	EventSub = core.EventSub
	// StageCounters are concurrency-safe flow counters (In/Out/Dropped),
	// the form the monitoring endpoints read (see Pipeline.IngestCounters
	// and Pipeline.EventCounters).
	StageCounters = pipeline.StageCounters
	// CheckpointResult reports one checkpoint's effort (see
	// Pipeline.Checkpoint).
	CheckpointResult = checkpoint.Result
	// CheckpointStats aggregates a pipeline's lifetime checkpoint effort —
	// the numbers behind the /metrics checkpoint series.
	CheckpointStats = checkpoint.Stats
	// CheckpointManifest indexes a checkpoint directory (returned by
	// Pipeline.RestoreFromCheckpoint).
	CheckpointManifest = checkpoint.Manifest
	// PublisherState is the federation stream cursor stored with a
	// checkpoint, so a restored site resumes publishing where it left off.
	PublisherState = federate.PublisherState
	// RetentionPolicy configures TTL-based expiry of idle services (see
	// Config.Retention): per-evidence-kind TTLs on the observation clock,
	// plus the background sweep cadence.
	RetentionPolicy = core.RetentionPolicy
	// Query is a typed inventory query served by the secondary indexes
	// (see Pipeline.Query; requires Config.QueryIndex).
	Query = query.Query
	// QueryResult is one query answer: hits in canonical key order plus
	// the pagination cursor and the index epoch that served it.
	QueryResult = query.Result
	// QueryDoc is one indexed service as queries return it.
	QueryDoc = query.Doc
	// EventFilter is the predicate pushed down into the event hub by
	// SubscribeFiltered: a filtered subscriber neither receives nor pays
	// drop budget for events outside its slice.
	EventFilter = query.Filter
	// QueryCache is the client-side query cache (passive fill from
	// subscription events, preemptive Warm, expiry-driven purge).
	QueryCache = query.Cache
	// Telemetry is the typed metrics registry every pipeline carries
	// (internal/obs): counters, gauges, latency histograms and the
	// flight recorder, all scraped through WritePrometheus or served by
	// Handler / DebugHandler. Share one registry across a pipeline and
	// its daemon-level series by passing it in Config.Telemetry.
	Telemetry = obs.Registry
)

// Event kinds, re-exported from core: see core.EventKind for semantics.
const (
	// EventServiceDiscovered: first evidence for a service from either
	// technique — exactly once per service.
	EventServiceDiscovered = core.EventServiceDiscovered
	// EventProvenanceUpgraded: the other technique confirmed an
	// already-discovered service.
	EventProvenanceUpgraded = core.EventProvenanceUpgraded
	// EventScannerDetected: an external source crossed the scan-detection
	// thresholds.
	EventScannerDetected = core.EventScannerDetected
	// EventScanCompleted: an active sweep reconciled into the engine.
	EventScanCompleted = core.EventScanCompleted
	// EventServiceExpired: a service's evidence aged past its retention
	// TTL and left the inventory — exactly once per expiry, timestamped
	// with the retention deadline on the observation clock. Rediscovery
	// after expiry announces ServiceDiscovered again.
	EventServiceExpired = core.EventServiceExpired
)

// ScanOptions configure the active-scan side of a hybrid engine: what to
// probe, how fast, and on what schedule. Zero values pick conservative
// defaults; only Targets is required.
type ScanOptions struct {
	// Targets are the addresses to sweep, in canonical report order
	// (required).
	Targets []netaddr.V4
	// TCPPorts are probed per target. Defaults to the paper's five
	// selected TCP service ports when UDPPorts is empty.
	TCPPorts []uint16
	// UDPPorts are probed with generic UDP probes (optional).
	UDPPorts []uint16
	// Rate is the aggregate probes-per-second budget across all workers
	// (the paper ran 12–15). <= 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket depth (default 1).
	Burst int
	// Workers sizes the probe worker pool; <= 0 picks GOMAXPROCS.
	Workers int
	// Interval is the start-to-start sweep spacing for RunScans (the
	// paper swept every 12 hours). <= 0 runs sweeps back-to-back.
	Interval time.Duration
	// Sweeps bounds how many sweeps RunScans launches (<= 0: until the
	// context is cancelled).
	Sweeps int
	// SweepTimeout is the per-sweep deadline; an overrunning sweep is
	// truncated and reported partial. Zero means none.
	SweepTimeout time.Duration
	// ProbeTimeout bounds each real-network probe (NetBackend default 2s).
	ProbeTimeout time.Duration
	// Backend overrides the probe backend. Nil selects the real-network
	// connect-scan backend; inject a probe.SimBackend to scan a simulated
	// campus.
	Backend probe.Backend
	// Compact aggregates TCP results into per-address summaries — required
	// for all-ports sweeps, where full per-probe records would not fit.
	Compact bool
	// OnSweep, when set, observes every completed sweep on the scheduler's
	// goroutine (see probe.SchedulerConfig.OnSweep). Sweeps also surface
	// on the event stream as ScanCompleted once their report reconciles
	// into the engine; OnSweep is the raw scheduler-side signal.
	OnSweep func(rep *ScanReport, err error)
}

func (o *ScanOptions) tcpPorts() []uint16 {
	if o.TCPPorts == nil && len(o.UDPPorts) == 0 {
		return campus.SelectedTCPPorts
	}
	return o.TCPPorts
}

func (o *ScanOptions) backend() probe.Backend {
	if o.Backend != nil {
		return o.Backend
	}
	return &probe.NetBackend{Timeout: o.ProbeTimeout}
}

// Config shapes a discovery pipeline.
type Config struct {
	// Campus is the monitored address space in CIDR form (required),
	// e.g. "128.125.0.0/16".
	Campus string
	// UDPPorts lists the well-known UDP service ports considered server
	// evidence. Defaults to the paper's selected UDP services.
	UDPPorts []uint16
	// Filter is the tap capture filter. Empty means the paper's collection
	// filter for NewPipeline, and no filtering for Discover (a recorded
	// trace normally went through the filter when it was captured).
	Filter string
	// Shards is the passive-discoverer shard count; <= 0 picks a
	// hardware-sized default. Results are deterministic and identical for
	// every shard count (shard-then-merge, see DESIGN.md).
	Shards int
	// BatchSize is the replay batch granularity for Discover
	// (pipeline.DefaultBatchSize if <= 0).
	BatchSize int
	// Links lists the monitored peerings for NewPipeline. Defaults to the
	// paper's two commercial links.
	Links []capture.LinkID
	// Academic lists external addresses routed via the Internet2 peering
	// (relevant only when LinkInternet2 is monitored).
	Academic []netaddr.V4
	// Scan configures the active-scan side. NewHybrid requires it;
	// NewPipeline accepts it too, attaching the scheduler so scan reports
	// reconcile into the same engine as the passive stream.
	Scan *ScanOptions
	// Checkpoint, when set, gives the pipeline durable state: call
	// RestoreFromCheckpoint before ingest to resume a previous run, and
	// Checkpoint periodically (Every is the suggested cadence for the
	// command-level ticker) to persist incremental deltas.
	Checkpoint *CheckpointOptions
	// QueryIndex, when true, maintains secondary indexes (port, prefix,
	// provenance, service category, freshness bucket) over the live
	// inventory and enables Pipeline.Query. The indexes advance at each
	// Snapshot from the same O(churn) deltas that patch the snapshot
	// itself — never a full rescan — and each index epoch is an immutable
	// value read lock-free by any number of concurrent queries.
	QueryIndex bool
	// Telemetry, when set, is the metrics registry the pipeline
	// instruments itself into; nil makes NewPipeline create a private
	// one (read it back with Pipeline.Metrics). Either way the pipeline
	// registers its latency histograms (ingest dispatch/apply, snapshot
	// merge, probe RTTs and sweeps, checkpoint write/restore, query
	// execution) and records trace events into the registry's flight
	// recorder. Instrumentation is zero-allocation on the hot paths.
	Telemetry *Telemetry
	// Retention, when enabled (any TTL > 0), expires services whose
	// evidence ages past its TTL, measured on the observation clock (the
	// newest packet timestamp ingested). Expired services leave Snapshot
	// inventories, emit EventServiceExpired on the event stream, and are
	// retracted from federation aggregators. Expiry is evaluated lazily
	// at each Snapshot; set SweepEvery to bound staleness between
	// explicit snapshots (Run starts the background sweep ticker).
	Retention RetentionPolicy
}

// CheckpointOptions configure the pipeline's durable-state subsystem
// (internal/checkpoint): where checkpoints live and how the delta chain
// is bounded.
type CheckpointOptions struct {
	// Dir is the checkpoint directory (required; created if absent).
	Dir string
	// Every is the checkpoint cadence hint consumed by the commands'
	// tickers (the library itself checkpoints only when told to).
	Every time.Duration
	// MaxDeltas caps the incremental chain before it is folded into a
	// fresh baseline (checkpoint.DefaultMaxDeltas when zero).
	MaxDeltas int
}

func (c Config) campusPrefix() (netaddr.Prefix, error) {
	if c.Campus == "" {
		return netaddr.Prefix{}, fmt.Errorf("servdisc: Config.Campus is required")
	}
	return netaddr.ParsePrefix(c.Campus)
}

func (c Config) udpPorts() []uint16 {
	if c.UDPPorts == nil {
		return campus.SelectedUDPPorts
	}
	return c.UDPPorts
}

func (c Config) shardCount() int {
	if c.Shards > 0 {
		return c.Shards
	}
	if n := runtime.GOMAXPROCS(0); n < 8 {
		return n
	}
	return 8
}

// Pipeline is the standard discovery assembly: a link assigner routing
// border packets to per-link taps (filter + optional sampler), all feeding
// one hybrid engine whose passive side is sharded. Feed it batches (it
// implements pipeline.BatchSink — hand it to traffic.NewGenerator or a
// replay loop), feed it scan reports (it implements probe.ReportSink), and
// Snapshot the inventory.
type Pipeline struct {
	monitor   *capture.Monitor
	engine    *core.Hybrid
	sched     *probe.Scheduler // nil unless Config.Scan was set
	scan      *ScanOptions
	batchSize int

	ckpt        *checkpoint.Writer // nil unless Config.Checkpoint was set
	ckptDir     string
	ckptEvery   time.Duration
	restoredPub *PublisherState // from the last RestoreFromCheckpoint

	// retention sweep ticker (started by Run when Retention.SweepEvery is
	// set, stopped by Close).
	retention RetentionPolicy
	sweepMu   sync.Mutex
	sweepStop chan struct{}

	qix *queryIndex // nil unless Config.QueryIndex was set

	// telemetry: the registry plus the facade-level instruments that are
	// observed from Pipeline methods (layer-internal instruments are
	// wired directly into their layers by NewPipeline).
	reg        *Telemetry
	ingestLat  *obs.Histogram // whole ingest path, per HandleBatch call
	restoreLat *obs.Histogram // RestoreFromCheckpoint wall time
	// queryLat maps query dimension → its latency histogram, pre-resolved
	// at construction so the query path never touches the registry lock.
	queryLat map[string]*obs.Histogram
}

// queryDimensions are the values Query.Dimension can return — the label
// space of servdisc_query_seconds, pre-registered so every dimension's
// series exists from the first scrape.
var queryDimensions = []string{
	"key", "prefix24", "port", "category", "prefix", "provenance", "freshness", "scan",
}

// queryIndex keeps the secondary indexes in lockstep with the snapshot
// stream. Both the passive and the hybrid snapshot paths notify it (the
// facade serves whichever fits the configuration), so it tracks inventory
// lineage itself: a delta only applies when its prev is the inventory the
// catalog last absorbed — any break (mode switch, full seal) rebuilds.
// The observer runs under the engine's snapshot lock, which serializes
// inv/catalog updates; Epoch() readers are lock-free.
type queryIndex struct {
	cat *query.Catalog
	inv *core.Inventory
}

func (x *queryIndex) observe(prev, inv *core.Inventory, d core.SnapshotDelta) {
	if d.Full || prev != x.inv {
		x.cat.RebuildFromInventory(inv)
	} else {
		x.cat.ApplyDelta(inv, d)
	}
	x.inv = inv
}

// NewPipeline assembles a pipeline from the config. With cfg.Scan set, the
// concurrent scan scheduler is attached (see Hybrid for the scan-side
// methods); without it the pipeline is passive-only.
func NewPipeline(cfg Config) (*Pipeline, error) {
	pfx, err := cfg.campusPrefix()
	if err != nil {
		return nil, err
	}
	var scanTCP []uint16
	if cfg.Scan != nil {
		if len(cfg.Scan.Targets) == 0 {
			return nil, fmt.Errorf("servdisc: Config.Scan.Targets is required")
		}
		scanTCP = cfg.Scan.tcpPorts()
	}
	engine := core.NewHybrid(pfx, cfg.udpPorts(), cfg.shardCount(), scanTCP)
	if cfg.Retention.Enabled() {
		engine.SetRetention(cfg.Retention)
	}
	links := cfg.Links
	if len(links) == 0 {
		links = []capture.LinkID{capture.LinkCommercial1, capture.LinkCommercial2}
	}
	filterExpr := cfg.Filter
	if filterExpr == "" {
		filterExpr = capture.PaperFilter
	}
	taps := make([]*capture.Tap, 0, len(links))
	for _, link := range links {
		tap, err := capture.NewTap(link, filterExpr, nil, engine)
		if err != nil {
			return nil, err
		}
		taps = append(taps, tap)
	}
	p := &Pipeline{
		monitor:   capture.NewMonitor(capture.NewAssigner(pfx, cfg.Academic), taps...),
		engine:    engine,
		scan:      cfg.Scan,
		batchSize: cfg.BatchSize,
		retention: cfg.Retention,
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p.reg = reg
	p.ingestLat = reg.Histogram("servdisc_ingest_batch_seconds",
		"Whole ingest-path latency per packet batch: link assignment, taps and engine dispatch.")
	engine.SetMetrics(&core.EngineMetrics{
		Dispatch: reg.Histogram("servdisc_ingest_dispatch_seconds",
			"Engine batch partition+scatter latency (inline mode includes shard applies)."),
		Apply: reg.Histogram("servdisc_ingest_apply_seconds",
			"Per-shard sub-batch apply latency on the shard workers."),
		Snapshot: reg.Histogram("servdisc_snapshot_merge_seconds",
			"Snapshot freeze+merge latency per snapshot actually built (cache hits untimed)."),
		Flight: reg.Flight(),
	})
	if cfg.QueryIndex {
		qix := &queryIndex{cat: query.NewCatalog(0)}
		p.qix = qix
		engine.OnSnapshot(qix.observe)
		engine.Passive().OnSnapshot(qix.observe)
		qv := reg.HistogramVec("servdisc_query_seconds",
			"Query execution latency by the index dimension that served it.", "dim")
		p.queryLat = make(map[string]*obs.Histogram, len(queryDimensions))
		for _, d := range queryDimensions {
			p.queryLat[d] = qv.With(d)
		}
	}
	if cfg.Checkpoint != nil {
		if cfg.Checkpoint.Dir == "" {
			return nil, fmt.Errorf("servdisc: Config.Checkpoint.Dir is required")
		}
		w, err := checkpoint.NewWriter(engine, cfg.Checkpoint.Dir,
			checkpoint.Options{MaxDeltas: cfg.Checkpoint.MaxDeltas})
		if err != nil {
			return nil, fmt.Errorf("servdisc: checkpoint dir: %w", err)
		}
		p.ckpt = w
		p.ckptDir = cfg.Checkpoint.Dir
		p.ckptEvery = cfg.Checkpoint.Every
		w.SetMetrics(&checkpoint.Metrics{
			Write: reg.Histogram("servdisc_checkpoint_write_seconds",
				"Checkpoint cut latency per chunk written (skipped checkpoints untimed)."),
			Flight: reg.Flight(),
		})
		p.restoreLat = reg.Histogram("servdisc_checkpoint_restore_seconds",
			"RestoreFromCheckpoint wall time per successful restore.")
	}
	if cfg.Scan != nil {
		p.sched = probe.NewScheduler(cfg.Scan.backend(), probe.SchedulerConfig{
			Targets:      cfg.Scan.Targets,
			TCPPorts:     cfg.Scan.tcpPorts(),
			UDPPorts:     cfg.Scan.UDPPorts,
			Rate:         cfg.Scan.Rate,
			Burst:        cfg.Scan.Burst,
			Workers:      cfg.Scan.Workers,
			SweepTimeout: cfg.Scan.SweepTimeout,
			Compact:      cfg.Scan.Compact,
			OnSweep:      cfg.Scan.OnSweep,
		})
		p.sched.SetMetrics(&probe.Metrics{
			RTT: reg.Histogram("servdisc_probe_rtt_seconds",
				"Per-probe wall-clock round trip (TCP connect and UDP probes)."),
			Sweep: reg.Histogram("servdisc_scan_sweep_seconds",
				"Whole active-scan sweep wall duration."),
			Flight: reg.Flight(),
		})
	}
	return p, nil
}

// Metrics returns the pipeline's telemetry registry — the one passed in
// Config.Telemetry, or the private one NewPipeline created. Serve it with
// Telemetry.Handler (Prometheus text exposition) or DebugHandler (adds
// /debug/pprof and the /debug/flight trace dump), and register
// daemon-level series directly on it.
func (p *Pipeline) Metrics() *Telemetry { return p.reg }

// Monitor exposes the link monitor — the pipeline's ingest point, and the
// place to AddMirror secondary consumers (recorders, sampling studies).
func (p *Pipeline) Monitor() *capture.Monitor { return p.monitor }

// HandleBatch implements pipeline.BatchSink by feeding the monitor. The
// whole-path latency (assignment, taps, engine dispatch) lands in the
// servdisc_ingest_batch_seconds histogram.
func (p *Pipeline) HandleBatch(batch []packet.Packet) {
	t0 := time.Now()
	p.monitor.HandleBatch(batch)
	p.ingestLat.Observe(time.Since(t0))
}

// AddReport implements probe.ReportSink: scan reports reconcile into the
// engine alongside the passive stream.
func (p *Pipeline) AddReport(rep *ScanReport) { p.engine.AddReport(rep) }

// Run starts the engine's workers (passive shard workers plus the report
// reconciler); without it ingest runs synchronously on the producer's
// goroutine (the deterministic mode the simulator uses — results are
// identical either way). With Config.Retention.SweepEvery set, Run also
// starts the background retention sweeper, which snapshots on that
// cadence so expiry (and its events and federation retractions) happens
// even when nobody polls Snapshot.
func (p *Pipeline) Run(ctx context.Context) {
	p.engine.Run(ctx)
	p.startSweeper()
}

// startSweeper launches the retention sweep ticker once; no-op without a
// sweep cadence or with retention disabled.
func (p *Pipeline) startSweeper() {
	if !p.retention.Enabled() || p.retention.SweepEvery <= 0 {
		return
	}
	p.sweepMu.Lock()
	defer p.sweepMu.Unlock()
	if p.sweepStop != nil {
		return
	}
	stop := make(chan struct{})
	p.sweepStop = stop
	go func() {
		t := time.NewTicker(p.retention.SweepEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.Snapshot()
			case <-stop:
				return
			}
		}
	}()
}

// Flush waits until everything ingested so far has reached engine state.
func (p *Pipeline) Flush() { p.engine.Flush() }

// Close stops the retention sweeper and the engine's workers (idempotent).
func (p *Pipeline) Close() {
	p.sweepMu.Lock()
	if p.sweepStop != nil {
		close(p.sweepStop)
		p.sweepStop = nil
	}
	p.sweepMu.Unlock()
	p.engine.Close()
}

// Snapshot freezes a consistent point-in-time inventory: hybrid (with
// provenance) when scan options were configured or any scan report was
// ingested via AddReport, passive-only otherwise. It is non-terminal,
// concurrent-safe and cheap to repeat — producers keep running, unchanged
// shards reuse their frozen views, and an unchanged engine returns the
// previous Inventory — so a live deployment can poll it at any frequency
// (see core.Hybrid.Snapshot for the consistency contract).
func (p *Pipeline) Snapshot() *Inventory {
	if p.scan == nil && !p.engine.SeenReports() {
		return p.engine.Passive().Snapshot()
	}
	return p.engine.Snapshot()
}

// watchBuffer is Watch's default subscriber buffer: deep enough to absorb
// multi-second consumer lag at realistic discovery rates.
const watchBuffer = 1024

// Watch subscribes to the engine's typed discovery event stream:
// ServiceDiscovered (exactly once per service, across both techniques),
// ProvenanceUpgraded, ScannerDetected and ScanCompleted, each timestamped
// with the observation clock and provenance-tagged. The channel closes
// when the engine closes or ctx is cancelled. Delivery is bounded and
// lossy by design: events beyond the subscriber's buffer are dropped
// (counted) rather than stalling ingest — use Subscribe to size the
// buffer explicitly and read the drop count.
func (p *Pipeline) Watch(ctx context.Context) <-chan Event {
	sub := p.engine.Subscribe(watchBuffer)
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			go func() {
				select {
				case <-done:
					sub.Cancel()
				case <-sub.Done(): // engine closed first
				}
			}()
		}
	}
	return sub.Events()
}

// Subscribe attaches a bounded subscriber (buffer capacity buf) to the
// same event stream as Watch, returning the subscription itself so the
// caller can inspect its drop count and cancel explicitly.
func (p *Pipeline) Subscribe(buf int) *EventSub { return p.engine.Subscribe(buf) }

// SubscribeFiltered is Subscribe with the filter pushed down into the
// event hub's publish path: events the filter rejects are never delivered
// and never consume this subscriber's drop budget, so a consumer watching
// one port (or prefix, kind, provenance class) does not pay for the whole
// stream. The subscription's Filtered count tallies the rejects.
func (p *Pipeline) SubscribeFiltered(buf int, f EventFilter) *EventSub {
	return p.engine.SubscribeFiltered(buf, f.Keep())
}

// Query answers a typed inventory query (port, prefix, category,
// provenance, freshness; paginated, deterministic canonical key order)
// from the secondary indexes. Reads are lock-free against an immutable
// index epoch; the epoch advances at each Snapshot, so results reflect
// the latest snapshot taken, not un-snapshotted ingest. Requires
// Config.QueryIndex.
func (p *Pipeline) Query(q Query) (QueryResult, error) {
	if p.qix == nil {
		return QueryResult{}, fmt.Errorf("servdisc: Config.QueryIndex not enabled")
	}
	t0 := time.Now()
	res, err := p.qix.cat.Epoch().Query(q)
	p.queryLat[q.Dimension()].Observe(time.Since(t0))
	return res, err
}

// QueryIndexLen returns the number of services the query index currently
// holds (0 and false when Config.QueryIndex is off) — a cheap freshness
// probe for monitoring endpoints.
func (p *Pipeline) QueryIndexLen() (int, bool) {
	if p.qix == nil {
		return 0, false
	}
	return p.qix.cat.Len(), true
}

// IngestCounters exposes the engine's packet-flow counters (In = packets
// offered, Out = packets dispatched to shards, Dropped = packets discarded
// after Close), safe for concurrent readers — the numbers behind a
// metrics endpoint.
func (p *Pipeline) IngestCounters() *StageCounters { return p.engine.Passive().Counters() }

// EventCounters exposes the event stream's flow counters (In = events
// published, Out = per-subscriber deliveries, Dropped = per-subscriber
// drops), safe for concurrent readers.
func (p *Pipeline) EventCounters() *StageCounters { return p.engine.EventCounters() }

// Replay streams a pcap trace into the engine in batches, bypassing the
// link taps exactly as Discover does (a recorded trace normally went
// through the capture filter when it was captured). It returns the packet
// count. Unlike Discover it feeds this pipeline's live engine, so
// Snapshot and Watch observe the replay as it happens; cancelling ctx
// abandons the replay mid-stream.
func (p *Pipeline) Replay(ctx context.Context, r io.Reader) (int, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return 0, err
	}
	return capture.ReplayBatched(ctx, tr, p.engine, p.batchSize)
}

// skipSink drops the first n packets of a replayed stream before feeding
// the wrapped sink — how a restored pipeline resumes a trace from its
// checkpointed packet position. State equivalence needs only packet
// order, so the resumed run's batch boundaries need not reproduce the
// original's.
type skipSink struct {
	sink pipeline.BatchSink
	left int
}

func (s *skipSink) HandleBatch(batch []packet.Packet) {
	if s.left > 0 {
		if s.left >= len(batch) {
			s.left -= len(batch)
			return
		}
		batch = batch[s.left:]
		s.left = 0
	}
	s.sink.HandleBatch(batch)
}

// ResumeReplay replays a pcap trace like Replay but skips the first skip
// packets — pass the restored engine's packet position (Snapshot().
// Packets() right after RestoreFromCheckpoint): the checkpoint counted
// every packet it covered, so position N means "resume at trace offset
// N". Returns the total packets read, skipped ones included.
func (p *Pipeline) ResumeReplay(ctx context.Context, r io.Reader, skip int) (int, error) {
	if skip <= 0 {
		return p.Replay(ctx, r)
	}
	tr, err := trace.NewReader(r)
	if err != nil {
		return 0, err
	}
	return capture.ReplayBatched(ctx, tr, &skipSink{sink: p.engine, left: skip}, p.batchSize)
}

// RestoreFromCheckpoint rebuilds the engine from Config.Checkpoint.Dir.
// Call it on a fresh pipeline, before Run and before any ingest. It
// returns (nil, nil) on a cold start (no checkpoint yet); on success the
// engine holds the checkpointed state, Snapshot().Packets() is the trace
// position to resume from (see ResumeReplay), and RestoredPublisherCursor
// exposes the stored federation cursor, if any. A corrupt checkpoint
// fails loudly with the engine untouched.
func (p *Pipeline) RestoreFromCheckpoint() (*CheckpointManifest, error) {
	if p.ckpt == nil {
		return nil, fmt.Errorf("servdisc: no Config.Checkpoint configured")
	}
	t0 := time.Now()
	man, err := checkpoint.Restore(p.checkpointDir(), p.engine)
	if err != nil || man == nil {
		return man, err
	}
	el := time.Since(t0)
	p.restoreLat.Observe(el)
	restored := 0
	for i := range man.Chunks {
		restored += man.Chunks[i].Services
	}
	p.reg.Flight().Record(obs.TraceCheckpointRestored, "",
		int64(restored), el.Microseconds())
	p.restoredPub = man.Publisher
	return man, nil
}

// checkpointDir recovers the writer's directory for Restore. The writer
// itself keeps it; stored here to avoid widening the checkpoint API.
func (p *Pipeline) checkpointDir() string { return p.ckptDir }

// Checkpoint persists the engine's changes since the last checkpoint
// (a full baseline the first time, incremental afterwards). Safe to call
// concurrently with ingest — the cut lands on a whole-batch boundary —
// and from a ticker and a shutdown path at once.
func (p *Pipeline) Checkpoint(ctx context.Context) (CheckpointResult, error) {
	if p.ckpt == nil {
		return CheckpointResult{}, fmt.Errorf("servdisc: no Config.Checkpoint configured")
	}
	return p.ckpt.Checkpoint(ctx)
}

// CheckpointStats returns the lifetime checkpoint counters; ok is false
// when no Config.Checkpoint was configured.
func (p *Pipeline) CheckpointStats() (st CheckpointStats, ok bool) {
	if p.ckpt == nil {
		return CheckpointStats{}, false
	}
	return p.ckpt.Stats(), true
}

// CheckpointEvery returns the configured checkpoint cadence hint (zero
// when unset or unconfigured).
func (p *Pipeline) CheckpointEvery() time.Duration { return p.ckptEvery }

// SetPublisherCursor installs the federation publisher's cursor sampler,
// so every later checkpoint stores the stream position alongside the
// engine state (pass federate.Publisher.State). No-op without
// Config.Checkpoint.
func (p *Pipeline) SetPublisherCursor(fn func() PublisherState) {
	if p.ckpt != nil {
		p.ckpt.SetPublisher(fn)
	}
}

// RestoredPublisherCursor returns the federation cursor recovered by the
// last RestoreFromCheckpoint, nil when none was stored — hand it to
// federate.NewPublisherResumed so the restored site keeps its epoch and
// sequence instead of reshipping history.
func (p *Pipeline) RestoredPublisherCursor() *PublisherState { return p.restoredPub }

// Passive merges the shards into a single PassiveDiscoverer for the
// analysis layer (core.Analysis). The merge is a live view sharing shard
// state: stop feeding the pipeline first (Snapshot has no such
// restriction).
func (p *Pipeline) Passive() *core.PassiveDiscoverer { return p.engine.Passive().Merge() }

// Active exposes the active-side discoverer for the analysis layer as a
// live read-only view; stop feeding the pipeline first (Snapshot has no
// such restriction).
func (p *Pipeline) Active() *core.ActiveDiscoverer { return p.engine.Active() }

// Scheduler returns the attached scan scheduler, nil without Config.Scan.
func (p *Pipeline) Scheduler() *probe.Scheduler { return p.sched }

// Hybrid is a Pipeline with the active-scan side attached: the same
// passive assembly plus a concurrent, rate-limited scan scheduler whose
// reports reconcile into the shared engine. Construct with NewHybrid.
type Hybrid struct {
	*Pipeline
}

// NewHybrid assembles a hybrid discovery engine: the passive pipeline of
// NewPipeline plus the concurrent scan scheduler, reconciled into one
// inventory with per-service provenance. cfg.Scan is required.
func NewHybrid(cfg Config) (*Hybrid, error) {
	if cfg.Scan == nil {
		return nil, fmt.Errorf("servdisc: NewHybrid requires Config.Scan")
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return &Hybrid{Pipeline: p}, nil
}

// Scan runs one sweep and reconciles its report into the engine. It blocks
// until the sweep completes (or is cut short by cancellation / the
// per-sweep deadline, returning the cause alongside the partial report).
func (h *Hybrid) Scan(ctx context.Context) (*ScanReport, error) {
	rep, err := h.sched.Sweep(ctx)
	if rep != nil {
		h.engine.AddReport(rep)
	}
	return rep, err
}

// RunScans executes the configured sweep schedule (Scan.Interval between
// starts, Scan.Sweeps total), reconciling every report into the engine.
// It blocks until the schedule completes or ctx is cancelled; run it from
// its own goroutine alongside live capture.
func (h *Hybrid) RunScans(ctx context.Context) error {
	return h.sched.Run(ctx, h.scan.Interval, h.scan.Sweeps, h.engine)
}

// Discover replays a pcap trace through a sharded passive discoverer and
// returns the frozen inventory. The trace is consumed in batches; with
// cfg.Shards > 1 the shards ingest concurrently, and the result is
// identical to a single-threaded replay. Cancelling ctx abandons the
// replay and returns the context's error with no inventory.
func Discover(ctx context.Context, r io.Reader, cfg Config) (*Inventory, error) {
	pfx, err := cfg.campusPrefix()
	if err != nil {
		return nil, err
	}
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	sharded := core.NewShardedPassive(pfx, cfg.udpPorts(), cfg.shardCount())
	sharded.Run(ctx)
	defer sharded.Close()

	var sink pipeline.BatchSink = sharded
	if cfg.Filter != "" {
		f, err := filter.Compile(cfg.Filter)
		if err != nil {
			return nil, err
		}
		sink = pipeline.NewPipeline(sharded, pipeline.FilterStage("filter", f.Match))
	}
	if _, err := capture.ReplayBatched(ctx, tr, sink, cfg.BatchSize); err != nil {
		return nil, err
	}
	sharded.Close()
	return sharded.Snapshot(), nil
}
