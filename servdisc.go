package servdisc

// This file is the public facade over the internal wiring: NewPipeline
// assembles the standard passive-monitoring pipeline (link assigner →
// per-link taps → sharded discoverer), and Discover replays a pcap trace
// through it. cmd/ and examples/ build on these instead of assembling
// internal packages by hand. See doc.go for the package overview and
// DESIGN.md for the architecture.

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/core"
	"servdisc/internal/filter"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/trace"
)

// Re-exported result types, so facade users consume inventories without
// importing internal packages directly.
type (
	// Inventory is a frozen, read-only discovery result.
	Inventory = core.Inventory
	// ServiceKey identifies one discovered service (addr, proto, port).
	ServiceKey = core.ServiceKey
	// PassiveRecord is the per-service evidence accumulated passively.
	PassiveRecord = core.PassiveRecord
	// ScannerInfo describes one detected external scanner.
	ScannerInfo = core.ScannerInfo
)

// Config shapes a discovery pipeline.
type Config struct {
	// Campus is the monitored address space in CIDR form (required),
	// e.g. "128.125.0.0/16".
	Campus string
	// UDPPorts lists the well-known UDP service ports considered server
	// evidence. Defaults to the paper's selected UDP services.
	UDPPorts []uint16
	// Filter is the tap capture filter. Empty means the paper's collection
	// filter for NewPipeline, and no filtering for Discover (a recorded
	// trace normally went through the filter when it was captured).
	Filter string
	// Shards is the passive-discoverer shard count; <= 0 picks a
	// hardware-sized default. Results are deterministic and identical for
	// every shard count (shard-then-merge, see DESIGN.md).
	Shards int
	// BatchSize is the replay batch granularity for Discover
	// (pipeline.DefaultBatchSize if <= 0).
	BatchSize int
	// Links lists the monitored peerings for NewPipeline. Defaults to the
	// paper's two commercial links.
	Links []capture.LinkID
	// Academic lists external addresses routed via the Internet2 peering
	// (relevant only when LinkInternet2 is monitored).
	Academic []netaddr.V4
}

func (c Config) campusPrefix() (netaddr.Prefix, error) {
	if c.Campus == "" {
		return netaddr.Prefix{}, fmt.Errorf("servdisc: Config.Campus is required")
	}
	return netaddr.ParsePrefix(c.Campus)
}

func (c Config) udpPorts() []uint16 {
	if c.UDPPorts == nil {
		return campus.SelectedUDPPorts
	}
	return c.UDPPorts
}

func (c Config) shardCount() int {
	if c.Shards > 0 {
		return c.Shards
	}
	if n := runtime.GOMAXPROCS(0); n < 8 {
		return n
	}
	return 8
}

// Pipeline is the standard passive-monitoring assembly: a link assigner
// routing border packets to per-link taps (filter + optional sampler),
// all feeding one sharded passive discoverer. Feed it batches (it
// implements pipeline.BatchSink — hand it to traffic.NewGenerator or a
// replay loop), then Snapshot the inventory.
type Pipeline struct {
	monitor *capture.Monitor
	sharded *core.ShardedPassive
}

// NewPipeline assembles a pipeline from the config.
func NewPipeline(cfg Config) (*Pipeline, error) {
	pfx, err := cfg.campusPrefix()
	if err != nil {
		return nil, err
	}
	sharded := core.NewShardedPassive(pfx, cfg.udpPorts(), cfg.shardCount())
	links := cfg.Links
	if len(links) == 0 {
		links = []capture.LinkID{capture.LinkCommercial1, capture.LinkCommercial2}
	}
	filterExpr := cfg.Filter
	if filterExpr == "" {
		filterExpr = capture.PaperFilter
	}
	taps := make([]*capture.Tap, 0, len(links))
	for _, link := range links {
		tap, err := capture.NewTap(link, filterExpr, nil, sharded)
		if err != nil {
			return nil, err
		}
		taps = append(taps, tap)
	}
	return &Pipeline{
		monitor: capture.NewMonitor(capture.NewAssigner(pfx, cfg.Academic), taps...),
		sharded: sharded,
	}, nil
}

// Monitor exposes the link monitor — the pipeline's ingest point, and the
// place to AddMirror secondary consumers (recorders, sampling studies).
func (p *Pipeline) Monitor() *capture.Monitor { return p.monitor }

// HandleBatch implements pipeline.BatchSink by feeding the monitor.
func (p *Pipeline) HandleBatch(batch []packet.Packet) { p.monitor.HandleBatch(batch) }

// Run starts the discoverer's shard workers; without it ingest runs
// synchronously on the producer's goroutine (the deterministic mode the
// simulator uses — results are identical either way).
func (p *Pipeline) Run(ctx context.Context) { p.sharded.Run(ctx) }

// Flush waits until everything ingested so far has reached shard state.
func (p *Pipeline) Flush() { p.sharded.Flush() }

// Close stops the shard workers (idempotent).
func (p *Pipeline) Close() { p.sharded.Close() }

// Snapshot flushes and freezes the current inventory.
func (p *Pipeline) Snapshot() *Inventory { return p.sharded.Snapshot() }

// Passive merges the shards into a single PassiveDiscoverer for the
// analysis layer (core.Analysis). Stop feeding the pipeline first.
func (p *Pipeline) Passive() *core.PassiveDiscoverer { return p.sharded.Merge() }

// Discover replays a pcap trace through a sharded passive discoverer and
// returns the frozen inventory. The trace is consumed in batches; with
// cfg.Shards > 1 the shards ingest concurrently, and the result is
// identical to a single-threaded replay. Cancelling ctx abandons the
// replay and returns the context's error with no inventory.
func Discover(ctx context.Context, r io.Reader, cfg Config) (*Inventory, error) {
	pfx, err := cfg.campusPrefix()
	if err != nil {
		return nil, err
	}
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	sharded := core.NewShardedPassive(pfx, cfg.udpPorts(), cfg.shardCount())
	sharded.Run(ctx)
	defer sharded.Close()

	var sink pipeline.BatchSink = sharded
	if cfg.Filter != "" {
		f, err := filter.Compile(cfg.Filter)
		if err != nil {
			return nil, err
		}
		sink = pipeline.NewPipeline(sharded, pipeline.FilterStage("filter", f.Match))
	}
	if _, err := capture.ReplayBatched(ctx, tr, sink, cfg.BatchSize); err != nil {
		return nil, err
	}
	sharded.Close()
	return sharded.Snapshot(), nil
}
