package servdisc_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"servdisc"
	"servdisc/internal/netaddr"
)

// ExampleDiscover replays a recorded pcap trace through the sharded
// passive pipeline and prints the discovered inventory.
func ExampleDiscover() {
	f, err := os.Open("border.pcap")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	inv, err := servdisc.Discover(context.Background(), f, servdisc.Config{
		Campus: "128.125.0.0/16",
		Shards: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, key := range inv.Keys() {
		rec, _ := inv.Record(key)
		fmt.Printf("%v first seen %v (%d flows)\n", key, rec.FirstSeen, rec.Flows)
	}
}

// ExampleNewPipeline assembles the live passive-monitoring pipeline and
// feeds it packet batches from a capture loop.
func ExampleNewPipeline() {
	pl, err := servdisc.NewPipeline(servdisc.Config{
		Campus: "128.125.0.0/16",
		Shards: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	pl.Run(context.Background())
	defer pl.Close()

	// Feed batches from your capture source: pl.HandleBatch(batch).
	// Then freeze the result:
	inv := pl.Snapshot()
	fmt.Println(inv.Len(), "services,", len(inv.Scanners()), "scanners detected")
}

// ExampleNewHybrid runs both discovery techniques at once: live passive
// monitoring plus a 15 probes/second scan sweep every 12 hours, reconciled
// into one inventory with per-service provenance.
func ExampleNewHybrid() {
	targets := netaddr.MustParsePrefix("128.125.1.0/24").Addrs()
	h, err := servdisc.NewHybrid(servdisc.Config{
		Campus: "128.125.0.0/16",
		Scan: &servdisc.ScanOptions{
			Targets:  targets,
			Rate:     15, // the paper's gentle sweep budget
			Workers:  32,
			Interval: 12 * time.Hour,
			Sweeps:   2,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	h.Run(ctx)
	go func() {
		if err := h.RunScans(ctx); err != nil {
			log.Print(err)
		}
	}()
	// ... feed h.HandleBatch from the capture loop, then:
	h.Close()
	inv := h.Snapshot()
	counts := inv.ProvenanceCounts()
	for p, n := range counts {
		fmt.Printf("%v: %d services\n", servdisc.Provenance(p), n)
	}
}
