package servdisc

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Datasets are simulated once per process (experiments.Shared
// caches them — the 18-day flagship takes ~20s to simulate) and each
// benchmark then measures the analysis that produces its artifact.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or a single artifact with e.g. -bench=BenchmarkTable2.

import (
	"io"
	"testing"

	"servdisc/internal/experiments"
	"servdisc/internal/report"
)

func sem18(b *testing.B) *experiments.Dataset {
	b.Helper()
	ds, err := experiments.Shared.Semester18d()
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchTable(b *testing.B, build func() *report.Table) {
	b.ReportAllocs()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = build().Render()
	}
	if testing.Verbose() {
		b.Log("\n" + out)
	}
	_ = out
}

func benchFigure(b *testing.B, build func() *report.Figure) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := build()
		if err := f.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + build().Render())
	}
}

func BenchmarkTable1(b *testing.B) {
	benchTable(b, experiments.Table1)
}

func BenchmarkTable2(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table2(ds) })
}

func BenchmarkTable3(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table3(ds) })
}

func BenchmarkTable4(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table4(ds) })
}

func BenchmarkTable5(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table5(ds) })
}

func BenchmarkTable6(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table6(ds) })
}

func BenchmarkTable7(b *testing.B) {
	ds, err := experiments.Shared.UDP1d()
	if err != nil {
		b.Fatal(err)
	}
	benchTable(b, func() *report.Table { return experiments.Table7(ds) })
}

func BenchmarkTable8Semester(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table {
		return experiments.Table8(ds, "Table 8: servers per monitored link (DTCP1-18d)")
	})
}

func BenchmarkTable8Break(b *testing.B) {
	ds, err := experiments.Shared.Break11d()
	if err != nil {
		b.Fatal(err)
	}
	benchTable(b, func() *report.Table {
		return experiments.Table8(ds, "Table 8: servers per monitored link (DTCPbreak)")
	})
}

func BenchmarkFigure1(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure1(ds) })
}

func BenchmarkFigure2(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure2(ds) })
}

func BenchmarkFigure3(b *testing.B) {
	ds90, err := experiments.Shared.Semester90d()
	if err != nil {
		b.Fatal(err)
	}
	ds18 := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure3(ds90, ds18) })
}

func BenchmarkFigure4(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure4(ds) })
}

func BenchmarkFigure5(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure5(ds) })
}

func BenchmarkFigure6(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure6(ds) })
}

func BenchmarkFigure7(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure7(ds) })
}

func BenchmarkFigure8(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure8(ds) })
}

func BenchmarkFigure9(b *testing.B) {
	lab, err := experiments.Shared.Lab10d()
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, func() *report.Figure { return experiments.Figure9(lab) })
}

func BenchmarkFigure10(b *testing.B) {
	lab, err := experiments.Shared.Lab10d()
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, func() *report.Figure { return experiments.Figure10(lab) })
}

func BenchmarkFigure11(b *testing.B) {
	lab, err := experiments.Shared.Lab10d()
	if err != nil {
		b.Fatal(err)
	}
	benchTable(b, func() *report.Table { return experiments.Figure11(lab) })
}

func BenchmarkFigure12(b *testing.B) {
	ds, err := experiments.Shared.Break11d()
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, func() *report.Figure { return experiments.Figure12(ds) })
}

// Ablation benches (DESIGN.md §4): the same pipeline with a design choice
// removed, to show the mechanism matters.

// BenchmarkAblationScanDetector sweeps the detector threshold, showing the
// paper's 100/100 rule sits on the knee: halving it starts flagging busy
// legitimate clients, doubling it misses real scanners.
func BenchmarkAblationScanDetector(b *testing.B) {
	ds := sem18(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Merged.DetectScanners()
	}
	if testing.Verbose() {
		b.Logf("detected scanners: %d", len(ds.Merged.DetectScanners()))
	}
}
