package servdisc

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Datasets are simulated once per process (experiments.Shared
// caches them — the 18-day flagship takes ~20s to simulate) and each
// benchmark then measures the analysis that produces its artifact.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or a single artifact with e.g. -bench=BenchmarkTable2.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/capture"
	"servdisc/internal/checkpoint"
	"servdisc/internal/core"
	"servdisc/internal/experiments"
	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/query"
	"servdisc/internal/report"
	"servdisc/internal/sim"
	"servdisc/internal/traffic"
)

func sem18(b *testing.B) *experiments.Dataset {
	b.Helper()
	ds, err := experiments.Shared.Semester18d()
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchTable(b *testing.B, build func() *report.Table) {
	b.ReportAllocs()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = build().Render()
	}
	if testing.Verbose() {
		b.Log("\n" + out)
	}
	_ = out
}

func benchFigure(b *testing.B, build func() *report.Figure) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := build()
		if err := f.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	if testing.Verbose() {
		b.Log("\n" + build().Render())
	}
}

func BenchmarkTable1(b *testing.B) {
	benchTable(b, experiments.Table1)
}

func BenchmarkTable2(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table2(ds) })
}

func BenchmarkTable3(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table3(ds) })
}

func BenchmarkTable4(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table4(ds) })
}

func BenchmarkTable5(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table5(ds) })
}

func BenchmarkTable6(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table { return experiments.Table6(ds) })
}

func BenchmarkTable7(b *testing.B) {
	ds, err := experiments.Shared.UDP1d()
	if err != nil {
		b.Fatal(err)
	}
	benchTable(b, func() *report.Table { return experiments.Table7(ds) })
}

func BenchmarkTable8Semester(b *testing.B) {
	ds := sem18(b)
	benchTable(b, func() *report.Table {
		return experiments.Table8(ds, "Table 8: servers per monitored link (DTCP1-18d)")
	})
}

func BenchmarkTable8Break(b *testing.B) {
	ds, err := experiments.Shared.Break11d()
	if err != nil {
		b.Fatal(err)
	}
	benchTable(b, func() *report.Table {
		return experiments.Table8(ds, "Table 8: servers per monitored link (DTCPbreak)")
	})
}

func BenchmarkFigure1(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure1(ds) })
}

func BenchmarkFigure2(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure2(ds) })
}

func BenchmarkFigure3(b *testing.B) {
	ds90, err := experiments.Shared.Semester90d()
	if err != nil {
		b.Fatal(err)
	}
	ds18 := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure3(ds90, ds18) })
}

func BenchmarkFigure4(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure4(ds) })
}

func BenchmarkFigure5(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure5(ds) })
}

func BenchmarkFigure6(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure6(ds) })
}

func BenchmarkFigure7(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure7(ds) })
}

func BenchmarkFigure8(b *testing.B) {
	ds := sem18(b)
	benchFigure(b, func() *report.Figure { return experiments.Figure8(ds) })
}

func BenchmarkFigure9(b *testing.B) {
	lab, err := experiments.Shared.Lab10d()
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, func() *report.Figure { return experiments.Figure9(lab) })
}

func BenchmarkFigure10(b *testing.B) {
	lab, err := experiments.Shared.Lab10d()
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, func() *report.Figure { return experiments.Figure10(lab) })
}

func BenchmarkFigure11(b *testing.B) {
	lab, err := experiments.Shared.Lab10d()
	if err != nil {
		b.Fatal(err)
	}
	benchTable(b, func() *report.Table { return experiments.Figure11(lab) })
}

func BenchmarkFigure12(b *testing.B) {
	ds, err := experiments.Shared.Break11d()
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, func() *report.Figure { return experiments.Figure12(ds) })
}

// Ingest benches: the same border stream pushed through the three ingest
// paths — the legacy per-packet adapter, batched flow, and the sharded
// discoverer with concurrent workers. Each reports packets/sec so the
// batching and sharding wins are measured, not asserted.

var (
	ingestOnce   sync.Once
	ingestCorpus []packet.Packet
	ingestPfx    netaddr.Prefix
)

// ingestStream simulates two days of a mid-sized campus and captures the
// monitored, paper-filtered border stream as one in-memory corpus.
func ingestStream(b *testing.B) ([]packet.Packet, netaddr.Prefix) {
	b.Helper()
	ingestOnce.Do(func() {
		cfg := campus.DefaultSemesterConfig()
		cfg.FlowsPerDay = 100000
		// Flow-dominated mix: with the address-space scans left in, the
		// scan detector's per-scanner map growth dominates every variant
		// equally and the dispatch-path difference disappears into it.
		cfg.BigScans = nil
		cfg.SmallScannersPerDay = 0
		net, err := campus.NewNetwork(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.New(cfg.Start)
		campus.NewDynamics(net, eng)
		pfx, err := netaddr.NewPrefix(net.Plan().Base(), 16)
		if err != nil {
			b.Fatal(err)
		}
		ingestPfx = pfx
		collect := pipeline.BatchFunc(func(batch []packet.Packet) {
			ingestCorpus = append(ingestCorpus, batch...)
		})
		tap1, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter, nil, collect)
		if err != nil {
			b.Fatal(err)
		}
		tap2, err := capture.NewTap(capture.LinkCommercial2, capture.PaperFilter, nil, collect)
		if err != nil {
			b.Fatal(err)
		}
		mon := capture.NewMonitor(capture.NewAssigner(pfx, net.AcademicClients()), tap1, tap2)
		traffic.NewGenerator(net, eng, mon)
		eng.RunUntil(cfg.Start.Add(48 * time.Hour))
	})
	return ingestCorpus, ingestPfx
}

// benchBatchSize is the batch granularity of the ingest benchmarks.
const benchBatchSize = pipeline.DefaultBatchSize

func reportPacketsPerSec(b *testing.B, pkts int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(pkts*b.N)/s, "pkts/s")
	}
}

// resetIngestTimer stabilizes the heap so earlier benchmarks' garbage does
// not tax later ones, then starts the clock.
func resetIngestTimer(b *testing.B) {
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
}

// benchEngineMetrics attaches a live telemetry bundle to the engine, so
// the hot-path benchmarks measure the instrumented pipeline — the same
// configuration the facade wires up for production. The CI gates (ingest
// throughput within 3%, zero-churn snapshot allocs == 0) therefore hold
// with telemetry enabled, not just with it absent.
func benchEngineMetrics(sp *core.ShardedPassive) {
	reg := obs.NewRegistry()
	sp.SetMetrics(&core.EngineMetrics{
		Dispatch: reg.Histogram("bench_ingest_dispatch_seconds", "bench instrumentation"),
		Apply:    reg.Histogram("bench_ingest_apply_seconds", "bench instrumentation"),
		Snapshot: reg.Histogram("bench_snapshot_merge_seconds", "bench instrumentation"),
		Flight:   reg.Flight(),
	})
}

// ingestChain wires the standard monitor → tap → sink assembly over both
// commercial links.
func ingestChain(b *testing.B, pfx netaddr.Prefix, sink pipeline.BatchSink) *capture.Monitor {
	b.Helper()
	tap1, err := capture.NewTap(capture.LinkCommercial1, capture.PaperFilter, nil, sink)
	if err != nil {
		b.Fatal(err)
	}
	tap2, err := capture.NewTap(capture.LinkCommercial2, capture.PaperFilter, nil, sink)
	if err != nil {
		b.Fatal(err)
	}
	return capture.NewMonitor(capture.NewAssigner(pfx, nil), tap1, tap2)
}

// BenchmarkIngestPerPacket is the legacy arrival model: every border
// packet enters the monitor chain as its own HandlePacket call.
func BenchmarkIngestPerPacket(b *testing.B) {
	pkts, pfx := ingestStream(b)
	resetIngestTimer(b)
	for i := 0; i < b.N; i++ {
		disc := core.NewPassiveDiscoverer(pfx, campus.SelectedUDPPorts)
		mon := ingestChain(b, pfx, disc)
		for j := range pkts {
			mon.HandlePacket(&pkts[j])
		}
	}
	reportPacketsPerSec(b, len(pkts))
}

// BenchmarkIngestBatched pushes the same stream through the same chain in
// DefaultBatchSize batches, still single-threaded.
func BenchmarkIngestBatched(b *testing.B) {
	pkts, pfx := ingestStream(b)
	resetIngestTimer(b)
	for i := 0; i < b.N; i++ {
		disc := core.NewPassiveDiscoverer(pfx, campus.SelectedUDPPorts)
		mon := ingestChain(b, pfx, disc)
		for off := 0; off < len(pkts); off += benchBatchSize {
			end := off + benchBatchSize
			if end > len(pkts) {
				end = len(pkts)
			}
			mon.HandleBatch(pkts[off:end])
		}
	}
	reportPacketsPerSec(b, len(pkts))
}

// BenchmarkIngestSharded feeds the batched chain into the 8-shard
// discoverer with concurrent workers, including the final merge. The win
// over Batched scales with cores (on a single-core host the extra queue
// hop makes it a wash); equivalence of the result is tested, not assumed.
func BenchmarkIngestSharded(b *testing.B) {
	pkts, pfx := ingestStream(b)
	resetIngestTimer(b)
	for i := 0; i < b.N; i++ {
		sp := core.NewShardedPassive(pfx, campus.SelectedUDPPorts, 8)
		benchEngineMetrics(sp)
		sp.Run(context.Background())
		mon := ingestChain(b, pfx, sp)
		for off := 0; off < len(pkts); off += benchBatchSize {
			end := off + benchBatchSize
			if end > len(pkts) {
				end = len(pkts)
			}
			mon.HandleBatch(pkts[off:end])
		}
		sp.Close()
		_ = sp.Merge()
	}
	reportPacketsPerSec(b, len(pkts))
}

// Synthetic inventory-scale harness: the two-day campus corpus tops out
// around 10^4 services, far too small to show whether merged-snapshot cost
// really tracks churn rather than inventory size. These helpers fabricate
// an arbitrary number of distinct services (addresses × ports fanned out
// inside one campus prefix) via synthesized accept responses, with a
// monotone microsecond-spaced observation clock.

const synthPortsPerAddr = 32

func synthPrefix(tb testing.TB) netaddr.Prefix {
	tb.Helper()
	pfx, err := netaddr.NewPrefix(netaddr.MustParseV4("10.16.0.0"), 16)
	if err != nil {
		tb.Fatal(err)
	}
	return pfx
}

func synthEndpoint(pfx netaddr.Prefix, i int) packet.Endpoint {
	return packet.Endpoint{
		Addr: pfx.Base() + netaddr.V4(1+i/synthPortsPerAddr),
		Port: uint16(9000 + i%synthPortsPerAddr),
	}
}

// feedSyntheticServices populates the engine with n distinct services, in
// ingest-sized batches so dispatch follows the production path.
func feedSyntheticServices(sp *core.ShardedPassive, pfx netaddr.Prefix, n int, t0 time.Time) {
	bld := packet.NewBuilder(0)
	client := packet.Endpoint{Addr: netaddr.MustParseV4("64.9.0.1"), Port: 33000}
	batch := make([]packet.Packet, 0, benchBatchSize)
	for i := 0; i < n; i++ {
		at := t0.Add(time.Duration(i) * time.Microsecond)
		batch = append(batch, *bld.SynAck(at, synthEndpoint(pfx, i), client, 1, 1))
		if len(batch) == cap(batch) {
			sp.HandleBatch(batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		sp.HandleBatch(batch)
	}
}

// synthChurn prebuilds one batch of re-observations of the first n
// synthetic services. Timestamps are rewritten per round by retimeChurn,
// so a measurement loop reuses the slice without allocating.
func synthChurn(pfx netaddr.Prefix, n int) []packet.Packet {
	bld := packet.NewBuilder(0)
	client := packet.Endpoint{Addr: netaddr.MustParseV4("64.9.0.2"), Port: 41000}
	out := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, *bld.SynAck(time.Time{}, synthEndpoint(pfx, i), client, 7, 7))
	}
	return out
}

// retimeChurn moves a prebuilt churn batch past the engine's watermark so
// every packet is a genuine re-observation (LastSeen advances, the record
// goes dirty). Field mutation only — no allocation charged to the caller.
func retimeChurn(pkts []packet.Packet, at time.Time) {
	for j := range pkts {
		pkts[j].Timestamp = at.Add(time.Duration(j) * time.Microsecond)
	}
}

// BenchmarkSnapshotUnderLoad measures the live engine: ingest throughput
// through the 8-shard discoverer while a second goroutine snapshots the
// running engine at 1 to 1000 Hz, plus the latency of those snapshots.
// The point of the copy-on-write view machinery is that pkts/s should
// barely move across the Hz ladder: a snapshot seals only the records
// touched since the last freeze and patches the merged inventory forward,
// and the producer is paused only for marker insertion, never for clone
// or merge work.
func BenchmarkSnapshotUnderLoad(b *testing.B) {
	for _, hz := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("hz=%d", hz), func(b *testing.B) {
			pkts, pfx := ingestStream(b)
			sp := core.NewShardedPassive(pfx, campus.SelectedUDPPorts, 8)
			benchEngineMetrics(sp)
			sp.Run(context.Background())
			mon := ingestChain(b, pfx, sp)

			stop := make(chan struct{})
			var snapDone sync.WaitGroup
			var snaps int64
			var snapNanos int64
			snapDone.Add(1)
			go func() {
				defer snapDone.Done()
				tick := time.NewTicker(time.Second / time.Duration(hz))
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						t0 := time.Now()
						_ = sp.Snapshot()
						atomic.AddInt64(&snapNanos, int64(time.Since(t0)))
						atomic.AddInt64(&snaps, 1)
					}
				}
			}()

			resetIngestTimer(b)
			for i := 0; i < b.N; i++ {
				for off := 0; off < len(pkts); off += benchBatchSize {
					end := off + benchBatchSize
					if end > len(pkts) {
						end = len(pkts)
					}
					mon.HandleBatch(pkts[off:end])
				}
			}
			b.StopTimer()
			close(stop)
			snapDone.Wait()
			sp.Close()
			reportPacketsPerSec(b, len(pkts))
			if n := atomic.LoadInt64(&snaps); n > 0 {
				b.ReportMetric(float64(atomic.LoadInt64(&snapNanos))/float64(n)/1e6, "ms/snap")
				b.ReportMetric(float64(n)/float64(b.N), "snaps/op")
			}
		})
	}

	// entries=2M is the inventory-scale rung: two million resident
	// services, ten thousand re-observed per op. With the persistent-map
	// merge, ms/snap and allocs/op here should sit in the same band as
	// the two-day-corpus rungs — the snapshot pays for the 10k records
	// that moved, not the 2M it holds. Any O(inventory) step (a map clone,
	// a full rescan) shows up as a ~200x blowout, which is why the CI
	// bench archive carries this rung at real iteration counts.
	b.Run("entries=2M", func(b *testing.B) {
		const entries = 2_000_000
		const churn = 10_000
		pfx := synthPrefix(b)
		sp := core.NewShardedPassive(pfx, nil, 8)
		benchEngineMetrics(sp)
		t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
		feedSyntheticServices(sp, pfx, entries, t0)
		if got := sp.Snapshot().Len(); got != entries {
			b.Fatalf("synthetic load produced %d services, want %d", got, entries)
		}
		churnPkts := synthChurn(pfx, churn)
		var snapNanos int64
		resetIngestTimer(b)
		for i := 0; i < b.N; i++ {
			retimeChurn(churnPkts, t0.Add(time.Duration(i+1)*time.Hour))
			for off := 0; off < len(churnPkts); off += benchBatchSize {
				end := min(off+benchBatchSize, len(churnPkts))
				sp.HandleBatch(churnPkts[off:end])
			}
			s0 := time.Now()
			if sp.Snapshot() == nil {
				b.Fatal("nil snapshot")
			}
			snapNanos += int64(time.Since(s0))
		}
		b.StopTimer()
		b.ReportMetric(float64(snapNanos)/float64(b.N)/1e6, "ms/snap")
		reportPacketsPerSec(b, churn)
	})
}

// BenchmarkSnapshotZeroChurn measures Snapshot on an engine with nothing
// dispatched since the previous freeze — the fast path a high-frequency
// poller rides between bursts. The CI bench gate fails if allocs/op here
// is not 0: a regression means every idle poll is paying for clones again.
func BenchmarkSnapshotZeroChurn(b *testing.B) {
	pkts, pfx := ingestStream(b)
	sp := core.NewShardedPassive(pfx, campus.SelectedUDPPorts, 8)
	benchEngineMetrics(sp)
	sp.HandleBatch(pkts)
	if sp.Snapshot() == nil {
		b.Fatal("nil snapshot")
	}
	resetIngestTimer(b)
	for i := 0; i < b.N; i++ {
		_ = sp.Snapshot()
	}
}

// BenchmarkSnapshotChurn1pct measures the incremental freeze: each
// iteration ingests ~1% of the corpus into an already-hot engine and
// snapshots, so ns/op and allocs/op track the cost of a freeze whose
// churn is small relative to inventory size — the case the dirty-set
// seal machinery exists for (cost proportional to records touched, not
// records held).
func BenchmarkSnapshotChurn1pct(b *testing.B) {
	pkts, pfx := ingestStream(b)
	sp := core.NewShardedPassive(pfx, campus.SelectedUDPPorts, 8)
	sp.HandleBatch(pkts)
	step := len(pkts) / 100
	off := 0
	resetIngestTimer(b)
	for i := 0; i < b.N; i++ {
		end := off + step
		if end > len(pkts) {
			off, end = 0, step
		}
		sp.HandleBatch(pkts[off:end])
		off = end
		_ = sp.Snapshot()
	}
	reportPacketsPerSec(b, step)
}

// BenchmarkCheckpointUnderLoad measures durable checkpoints against a hot
// engine holding the full two-day inventory. "baseline" forces a full
// chunk every op — the O(inventory) floor. "delta" ingests ~1% of the
// corpus between checkpoints, so each op persists only the churn: its
// bytes/op and ns/op should sit far below baseline's and track churn
// size, not inventory size — the incremental claim the dirty-set
// machinery exists to back. "unchanged" checkpoints a quiet engine,
// the skip path a tight checkpoint cadence rides between bursts.
func BenchmarkCheckpointUnderLoad(b *testing.B) {
	pkts, pfx := ingestStream(b)
	// MaxDeltas is effectively unbounded in the delta case so compaction
	// never converts a measured op into a hidden baseline.
	hotEngine := func(b *testing.B) (*core.ShardedPassive, *checkpoint.Writer) {
		sp := core.NewShardedPassive(pfx, campus.SelectedUDPPorts, 8)
		sp.HandleBatch(pkts)
		w, err := checkpoint.NewWriter(sp, b.TempDir(), checkpoint.Options{MaxDeltas: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		return sp, w
	}
	ckpt := func(b *testing.B, w *checkpoint.Writer, full bool) checkpoint.Result {
		b.Helper()
		var res checkpoint.Result
		var err error
		if full {
			res, err = w.Baseline(context.Background())
		} else {
			res, err = w.Checkpoint(context.Background())
		}
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("baseline", func(b *testing.B) {
		_, w := hotEngine(b)
		resetIngestTimer(b)
		var bytes int64
		for i := 0; i < b.N; i++ {
			bytes += ckpt(b, w, true).Bytes
		}
		b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
	})
	b.Run("delta-churn1pct", func(b *testing.B) {
		sp, w := hotEngine(b)
		ckpt(b, w, true) // seed the chain; deltas measured from here
		step := len(pkts) / 100
		off := 0
		resetIngestTimer(b)
		var bytes int64
		for i := 0; i < b.N; i++ {
			end := off + step
			if end > len(pkts) {
				off, end = 0, step
			}
			sp.HandleBatch(pkts[off:end])
			off = end
			res := ckpt(b, w, false)
			if res.Full {
				b.Fatal("delta checkpoint unexpectedly wrote a baseline")
			}
			bytes += res.Bytes
		}
		b.ReportMetric(float64(bytes)/float64(b.N), "bytes/op")
		reportPacketsPerSec(b, step)
	})
	b.Run("unchanged", func(b *testing.B) {
		_, w := hotEngine(b)
		ckpt(b, w, true)
		resetIngestTimer(b)
		for i := 0; i < b.N; i++ {
			if !ckpt(b, w, false).Skipped {
				b.Fatal("checkpoint of an idle engine was not skipped")
			}
		}
	})
}

// attachCatalog wires a query catalog to an engine's snapshot stream the
// way the facade does: O(churn) delta patches while the lineage holds, a
// full rebuild when the engine reports a lineage break.
func attachCatalog(sp *core.ShardedPassive) *query.Catalog {
	cat := query.NewCatalog(0)
	var prevInv *core.Inventory
	sp.OnSnapshot(func(prev, inv *core.Inventory, d core.SnapshotDelta) {
		if d.Full || prev != prevInv {
			cat.RebuildFromInventory(inv)
		} else {
			cat.ApplyDelta(inv, d)
		}
		prevInv = inv
	})
	return cat
}

// BenchmarkQueryUnderLoad is the indexed-query headline: two million
// resident services, a producer goroutine continuously re-observing ten
// thousand of them and freezing a snapshot (so the index epoch keeps
// advancing), and 1/8/64 reader goroutines hammering the live epoch with
// point lookups. queries/s is the aggregate rate across readers; the
// epochs/op metric shows how many index generations turned over under
// the measured queries. Readers never block on the producer — each query
// loads the current epoch through one atomic pointer and navigates an
// immutable tree.
func BenchmarkQueryUnderLoad(b *testing.B) {
	const entries = 2_000_000
	const churn = 10_000
	pfx := synthPrefix(b)
	sp := core.NewShardedPassive(pfx, nil, 8)
	defer sp.Close()
	cat := attachCatalog(sp)
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	feedSyntheticServices(sp, pfx, entries, t0)
	if sp.Snapshot() == nil || cat.Len() != entries {
		b.Fatalf("index holds %d services, want %d", cat.Len(), entries)
	}
	churnPkts := synthChurn(pfx, churn)
	var round int64 // shared across sub-runs: watermarks must only advance

	for _, readers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			stop := make(chan struct{})
			var prodDone sync.WaitGroup
			var epochs int64
			prodDone.Add(1)
			go func() { // producer: churn + freeze, full speed
				defer prodDone.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					r := atomic.AddInt64(&round, 1)
					retimeChurn(churnPkts, t0.Add(time.Duration(r)*time.Hour))
					for off := 0; off < len(churnPkts); off += benchBatchSize {
						sp.HandleBatch(churnPkts[off:min(off+benchBatchSize, len(churnPkts))])
					}
					if sp.Snapshot() == nil {
						return
					}
					atomic.AddInt64(&epochs, 1)
				}
			}()

			var qwg sync.WaitGroup
			var misses int64
			reader := func(n, seed int) {
				defer qwg.Done()
				for i := 0; i < n; i++ {
					// Fibonacci-hash scatter so readers touch the whole key
					// space instead of marching a contiguous range.
					j := int(uint32(seed+i) * 2654435761 % uint32(entries))
					ep := synthEndpoint(pfx, j)
					p32, err := netaddr.NewPrefix(ep.Addr, 32)
					if err != nil {
						panic(err)
					}
					res, err := cat.Epoch().Query(query.Query{
						Prefix: p32, Port: ep.Port, Proto: packet.ProtoTCP, Limit: 1,
					})
					if err != nil {
						panic(err)
					}
					if len(res.Hits) != 1 {
						atomic.AddInt64(&misses, 1)
					}
				}
			}
			resetIngestTimer(b)
			start := time.Now()
			for r := 0; r < readers; r++ {
				n := b.N / readers
				if r < b.N%readers {
					n++
				}
				qwg.Add(1)
				go reader(n, r*(entries/readers))
			}
			qwg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			close(stop)
			prodDone.Wait()
			if m := atomic.LoadInt64(&misses); m != 0 {
				b.Fatalf("%d point lookups missed a resident service", m)
			}
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "queries/s")
			}
			b.ReportMetric(float64(atomic.LoadInt64(&epochs))/float64(b.N), "epochs/op")
		})
	}
}

// BenchmarkQueryZeroChurn measures a point lookup against a quiescent
// index — the steady-state read path with no epoch turnover. The CI gate
// bounds allocs/op to a small constant: a query allocates its result page
// and nothing else, no matter how large the epoch. Regressing this means
// every one of the millions of client queries starts paying per-resident
// costs.
func BenchmarkQueryZeroChurn(b *testing.B) {
	pkts, pfx := ingestStream(b)
	sp := core.NewShardedPassive(pfx, campus.SelectedUDPPorts, 8)
	defer sp.Close()
	cat := attachCatalog(sp)
	sp.HandleBatch(pkts)
	inv := sp.Snapshot()
	keys := inv.Keys()
	if len(keys) == 0 || cat.Len() != len(keys) {
		b.Fatalf("index holds %d services, inventory %d", cat.Len(), len(keys))
	}
	k := keys[len(keys)/2]
	p32, err := netaddr.NewPrefix(k.Addr, 32)
	if err != nil {
		b.Fatal(err)
	}
	q := query.Query{Prefix: p32, Port: k.Port, Proto: k.Proto, Limit: 1}
	resetIngestTimer(b)
	for i := 0; i < b.N; i++ {
		res, err := cat.Epoch().Query(q)
		if err != nil || len(res.Hits) != 1 {
			b.Fatalf("point lookup: %d hits, err=%v", len(res.Hits), err)
		}
	}
}

// BenchmarkQueryIndexMaintain prices keeping the index fresh at inventory
// scale: each op re-observes 10k of 2M resident services and freezes, and
// the snapshot observer patches every secondary dimension forward from
// the seal delta. ms/epoch is the full freeze-plus-index cost; the allocs
// in the CI archive track the 10k records that moved, not the 2M held —
// the same O(churn) evidence BenchmarkSnapshotUnderLoad/entries=2M gives
// for the raw snapshot, now with the query layer riding along.
func BenchmarkQueryIndexMaintain(b *testing.B) {
	const entries = 2_000_000
	const churn = 10_000
	pfx := synthPrefix(b)
	sp := core.NewShardedPassive(pfx, nil, 8)
	defer sp.Close()
	cat := attachCatalog(sp)
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	feedSyntheticServices(sp, pfx, entries, t0)
	if sp.Snapshot() == nil || cat.Len() != entries {
		b.Fatalf("index holds %d services, want %d", cat.Len(), entries)
	}
	gen0 := cat.Epoch().Gen()
	churnPkts := synthChurn(pfx, churn)
	var epochNanos int64
	resetIngestTimer(b)
	for i := 0; i < b.N; i++ {
		retimeChurn(churnPkts, t0.Add(time.Duration(i+1)*time.Hour))
		for off := 0; off < len(churnPkts); off += benchBatchSize {
			sp.HandleBatch(churnPkts[off:min(off+benchBatchSize, len(churnPkts))])
		}
		s0 := time.Now()
		if sp.Snapshot() == nil {
			b.Fatal("nil snapshot")
		}
		epochNanos += int64(time.Since(s0))
	}
	b.StopTimer()
	if got := cat.Epoch().Gen(); got != gen0+uint64(b.N) {
		b.Fatalf("epoch advanced %d generations over %d ops", got-gen0, b.N)
	}
	b.ReportMetric(float64(epochNanos)/float64(b.N)/1e6, "ms/epoch")
	reportPacketsPerSec(b, churn)
}

// Ablation benches (DESIGN.md §4): the same pipeline with a design choice
// removed, to show the mechanism matters.

// BenchmarkAblationScanDetector sweeps the detector threshold, showing the
// paper's 100/100 rule sits on the knee: halving it starts flagging busy
// legitimate clients, doubling it misses real scanners.
func BenchmarkAblationScanDetector(b *testing.B) {
	ds := sem18(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ds.Merged.DetectScanners()
	}
	if testing.Verbose() {
		b.Logf("detected scanners: %d", len(ds.Merged.DetectScanners()))
	}
}
