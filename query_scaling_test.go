package servdisc

// The O(churn) index-maintenance gate, the query layer's counterpart to
// TestSnapshotMergeCostScalesWithChurn: with a catalog attached to the
// engine's snapshot stream, a fixed churn batch plus freeze must cost the
// same handful of allocations per churned record whether the engine holds
// 50k or 400k services. The secondary dimensions (port, subnet, category,
// provenance, freshness) are persistent trees patched from the seal delta;
// if index maintenance ever regresses to rebuilding a dimension from the
// inventory, the large engine's count blows up by the size ratio and the
// scaling bound fails loudly. BenchmarkQueryIndexMaintain shows the same
// property at 2M entries in the CI bench archive; this enforces it on
// every `go test` run.

import (
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/query"
)

func TestQueryIndexMaintainCostScalesWithChurn(t *testing.T) {
	const churn = 2048
	const smallEntries = 50_000
	const largeEntries = 400_000
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)

	measure := func(entries int) float64 {
		pfx := synthPrefix(t)
		sp := core.NewShardedPassive(pfx, nil, 4)
		defer sp.Close()
		cat := attachCatalog(sp)
		feedSyntheticServices(sp, pfx, entries, t0)
		if sp.Snapshot() == nil || cat.Len() != entries {
			t.Fatalf("index holds %d services, want %d", cat.Len(), entries)
		}
		gen := cat.Epoch().Gen()
		churnPkts := synthChurn(pfx, churn)
		round := 0
		step := func() {
			round++
			retimeChurn(churnPkts, t0.Add(time.Duration(round)*time.Minute))
			sp.HandleBatch(churnPkts)
			if sp.Snapshot() == nil {
				t.Fatal("nil snapshot")
			}
		}
		// Warm rounds reach steady-state buffer capacity (AllocsPerRun adds
		// one more warm-up call of its own).
		for i := 0; i < 3; i++ {
			step()
		}
		allocs := testing.AllocsPerRun(8, step)
		if got := cat.Epoch().Gen(); got <= gen {
			t.Fatalf("epoch generation never advanced past %d under churn", gen)
		}
		return allocs
	}

	small := measure(smallEntries)
	large := measure(largeEntries)
	t.Logf("allocs per churn-%d freeze+index: %d entries → %.0f, %d entries → %.0f",
		churn, smallEntries, small, largeEntries, large)

	// Absolute bound: a churned record costs the snapshot merge's bounded
	// handful plus a few path-copied index-tree nodes. 96 per churned
	// record is generous headroom while staying far below O(inventory).
	const maxPerChurned = 96
	if small > maxPerChurned*churn {
		t.Errorf("%d-entry engine: %.0f allocs for %d churned records (> %d per record)",
			smallEntries, small, churn, maxPerChurned)
	}
	if large > maxPerChurned*churn {
		t.Errorf("%d-entry engine: %.0f allocs for %d churned records (> %d per record)",
			largeEntries, large, churn, maxPerChurned)
	}

	// Scaling bound: 8x the inventory may deepen the doc and posting trees
	// by a level — identical churn must not cost more than ~2x the
	// allocations. O(inventory) maintenance would make this ratio ~8x.
	if large > 2*small+64 {
		t.Errorf("identical churn cost %.0f allocs at %d entries vs %.0f at %d: index maintenance is scaling with inventory size",
			large, largeEntries, small, smallEntries)
	}
}

// A zero-churn freeze must leave the epoch untouched: the snapshot fast
// path returns the cached inventory without running observers, so an idle
// poller costs the query layer nothing — no generation turnover, no
// invalidated reader state.
func TestQueryIndexZeroChurnKeepsEpoch(t *testing.T) {
	pfx := synthPrefix(t)
	sp := core.NewShardedPassive(pfx, nil, 4)
	defer sp.Close()
	cat := attachCatalog(sp)
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	feedSyntheticServices(sp, pfx, 10_000, t0)
	if sp.Snapshot() == nil {
		t.Fatal("nil snapshot")
	}
	ep := cat.Epoch()
	for i := 0; i < 5; i++ {
		if sp.Snapshot() == nil {
			t.Fatal("nil snapshot")
		}
	}
	if got := cat.Epoch(); got != ep {
		t.Fatalf("idle snapshots advanced the epoch: gen %d → %d", ep.Gen(), got.Gen())
	}
	if _, err := ep.Query(query.Query{Limit: 1}); err != nil {
		t.Fatal(err)
	}
}
