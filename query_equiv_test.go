package servdisc

// The query layer's ground truth is the canonical full dump: every query
// answer must equal brute-force filtering of the same snapshot's
// inventory, in the same canonical key order, for every predicate shape
// and every pagination size — at shard counts 1, 2 and 8, and while a
// full-speed producer races the queries. The index epoch advances only at
// Snapshot, so after the test freezes an inventory the current epoch
// answers for exactly that inventory no matter how much the producer has
// ingested since; that is the property that makes the racing comparison
// well-defined.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/query"
)

// bruteMatch reimplements the query predicate set independently of the
// index, so index bugs cannot hide in a shared helper.
func bruteMatch(q query.Query, d query.Doc) bool {
	if q.Port != 0 && d.Key.Port != q.Port {
		return false
	}
	if q.Proto != 0 && d.Key.Proto != q.Proto {
		return false
	}
	if q.Category != query.CatAny && query.CategoryOf(d.Key) != q.Category {
		return false
	}
	if q.Prefix.Bits() != 0 && !q.Prefix.Contains(d.Key.Addr) {
		return false
	}
	if q.HasProvenance && d.Prov != q.Provenance {
		return false
	}
	if !q.MinFreshness.IsZero() && d.Last.Before(q.MinFreshness) {
		return false
	}
	return true
}

// bruteDocs filters the canonical full dump: every inventory key in
// canonical order, materialized as a doc, kept if the predicates hold.
func bruteDocs(inv *Inventory, q query.Query) []query.Doc {
	var out []query.Doc
	for _, k := range inv.Keys() {
		d := query.DocFromInventory(inv, k)
		if bruteMatch(q, d) {
			out = append(out, d)
		}
	}
	return out
}

// drainQuery pages through the pipeline's answer for one predicate set.
func drainQuery(t *testing.T, pl *Pipeline, q query.Query) []query.Doc {
	t.Helper()
	var out []query.Doc
	for {
		res, err := pl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res.Hits...)
		if res.NextPageToken == "" {
			return out
		}
		q.PageToken = res.NextPageToken
	}
}

func sameDocs(got, want []query.Doc) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d hits, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Key != w.Key {
			return fmt.Errorf("hit %d: key %s, want %s", i, g.Key, w.Key)
		}
		if g.Prov != w.Prov || g.Flows != w.Flows || g.Clients != w.Clients ||
			!g.First.Equal(w.First) || !g.Last.Equal(w.Last) {
			return fmt.Errorf("hit %d (%s): doc %+v, want %+v", i, g.Key, g, w)
		}
	}
	return nil
}

// equivShapes builds the predicate shapes to check against one frozen
// inventory: every index dimension, the unindexed full scan, a compound
// query, and a point lookup — with a pagination size that forces several
// pages whenever the answer is non-trivial.
func equivShapes(t *testing.T, inv *Inventory) []query.Query {
	t.Helper()
	keys := inv.Keys()
	shapes := []query.Query{
		{},                       // full dump
		{Port: 443},              // port dimension
		{Category: query.CatWeb}, // category dimension
		{Category: query.CatSSH}, // sparser category
		{Provenance: core.PassiveOnly, HasProvenance: true}, // provenance dimension
	}
	if len(keys) > 0 {
		mid := keys[len(keys)/2]
		narrow := func(bits uint8) netaddr.Prefix {
			p, err := netaddr.NewPrefix(mid.Addr, int(bits))
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		shapes = append(shapes,
			query.Query{Prefix: narrow(24)}, // single /24 bucket
			query.Query{Prefix: narrow(20)}, // bucket-run walk
			// Point lookup (the key= shape) and a compound query mixing an
			// indexed dimension with residual filters.
			query.Query{Prefix: narrow(32), Port: mid.Port, Proto: mid.Proto},
			query.Query{Port: mid.Port, Prefix: narrow(20), Provenance: core.PassiveOnly, HasProvenance: true},
		)
		if d := query.DocFromInventory(inv, mid); !d.Last.IsZero() {
			shapes = append(shapes, query.Query{MinFreshness: d.Last}) // freshness dimension
		}
	}
	return shapes
}

func checkQueryEquiv(t *testing.T, pl *Pipeline, inv *Inventory, ctx string) {
	t.Helper()
	for si, q := range equivShapes(t, inv) {
		want := bruteDocs(inv, q)
		// One-shot at the default limit, then paged small enough to force
		// pagination on any non-trivial answer.
		q.Limit = query.MaxLimit
		if err := sameDocs(drainQuery(t, pl, q), want); err != nil {
			t.Fatalf("%s, shape %d (%+v): one-shot: %v", ctx, si, q, err)
		}
		q.Limit = 7
		if err := sameDocs(drainQuery(t, pl, q), want); err != nil {
			t.Fatalf("%s, shape %d (%+v): paged: %v", ctx, si, q, err)
		}
	}
}

func TestQueryMatchesCanonicalDump(t *testing.T) {
	buf, pfx := recordTrace(t, 1.5)
	raw := buf.Bytes()

	var finals [][]query.Doc
	for _, shards := range []int{1, 2, 8} {
		pl, err := NewPipeline(Config{Campus: pfx.String(), Shards: shards, QueryIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		pl.Run(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := pl.Replay(context.Background(), bytes.NewReader(raw))
			done <- err
		}()

		// Race the full-speed producer: freeze, then require the epoch to
		// answer for exactly the frozen inventory while ingest continues.
		running := true
		for round := 0; running; round++ {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
				running = false
			default:
			}
			inv := pl.Snapshot()
			checkQueryEquiv(t, pl, inv, fmt.Sprintf("shards=%d, racing round %d", shards, round))
		}

		pl.Close()
		inv := pl.Snapshot()
		if inv.Len() == 0 {
			t.Fatalf("shards=%d: replay produced an empty inventory", shards)
		}
		checkQueryEquiv(t, pl, inv, fmt.Sprintf("shards=%d, final", shards))
		n, ok := pl.QueryIndexLen()
		if !ok || n != inv.Len() {
			t.Fatalf("shards=%d: index holds %d services (ok=%v), inventory %d", shards, n, ok, inv.Len())
		}
		finals = append(finals, drainQuery(t, pl, query.Query{Limit: query.MaxLimit}))
	}

	// Determinism across shard counts: the same trace must yield the same
	// query answers whichever way the engine was sharded.
	for i := 1; i < len(finals); i++ {
		if err := sameDocs(finals[i], finals[0]); err != nil {
			t.Fatalf("shard-count run %d disagrees with run 0: %v", i, err)
		}
	}
}

// A query against a pipeline built without Config.QueryIndex must fail
// loudly, not answer from a stale or empty index.
func TestQueryRequiresIndexConfig(t *testing.T) {
	pl, err := NewPipeline(Config{Campus: "10.16.0.0/16", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	if _, err := pl.Query(Query{}); err == nil {
		t.Fatal("Query succeeded without Config.QueryIndex")
	}
	if _, ok := pl.QueryIndexLen(); ok {
		t.Fatal("QueryIndexLen reported an index without Config.QueryIndex")
	}
}
