// Package servdisc is a from-scratch reproduction of "Understanding
// Passive and Active Service Discovery" (Bartlett, Heidemann,
// Papadopoulos; ISI-TR-642 / IMC 2007): passive network monitoring and
// Nmap-style active probing for service discovery, the analysis comparing
// them, and a calibrated campus-network simulator standing in for the
// paper's USC testbed.
//
// The root package is a thin facade (servdisc.go): NewPipeline assembles
// the batched, sharded passive-monitoring pipeline and Discover replays a
// pcap trace through it. The moving parts live under internal/ —
// internal/pipeline defines the batch-ingest contract, internal/capture
// the taps and link monitor, internal/core the discoverers and analysis.
//
// See DESIGN.md for the system architecture (including the streaming
// ingest pipeline and shard-then-merge determinism), cmd/repro for the
// driver that regenerates the paper's tables and figures, and
// bench_test.go in this directory for the benchmark harness wrapping each
// of those artifacts.
package servdisc
