// Package servdisc is a from-scratch reproduction of "Understanding
// Passive and Active Service Discovery" (Bartlett, Heidemann,
// Papadopoulos; ISI-TR-642 / IMC 2007): passive network monitoring and
// Nmap-style active probing for service discovery, the analysis comparing
// them, and a calibrated campus-network simulator standing in for the
// paper's USC testbed.
//
// The root package is a thin facade (servdisc.go):
//
//   - NewPipeline assembles the batched, sharded passive-monitoring
//     pipeline (link assigner → per-link taps → sharded discoverer).
//   - NewHybrid attaches the concurrent, rate-limited active-scan
//     scheduler to the same engine; passive batches and scan reports
//     reconcile into one inventory with per-service provenance
//     (passive-first vs active-first — the paper's comparison axis).
//   - Discover replays a pcap trace through the passive pipeline.
//
// The engine is continuously queryable while it ingests: Snapshot freezes
// a consistent point-in-time Inventory without stopping producers
// (generation-tracked, so unchanged shards are free), Watch/Subscribe
// stream typed discovery events (ServiceDiscovered, ProvenanceUpgraded,
// ScannerDetected, ScanCompleted) through a bounded, drop-counting
// fanout, and Replay streams a pcap trace into the live engine.
//
// The moving parts live under internal/ — internal/pipeline defines the
// batch-ingest contract, internal/capture the taps and link monitor,
// internal/probe the scan backends, the sequential sim-time sweeper and
// the concurrent wall-clock Scheduler, and internal/core the discoverers
// (passive, active, and the Hybrid reconciler) plus the analysis.
// internal/federate layers multi-campus federation on top: N engines
// publish their site-tagged event streams over a versioned wire format
// (passived -publish), and an aggregating daemon (cmd/federated)
// reconciles them into one global inventory with per-site provenance and
// cross-site dedup.
//
// See README.md for a quickstart, DESIGN.md for the system architecture
// (streaming ingest, shard-then-merge determinism, and the hybrid
// engine), cmd/repro for the driver that regenerates the paper's tables
// and figures, and bench_test.go in this directory for the benchmark
// harness wrapping each of those artifacts.
package servdisc
