// Package servdisc is a from-scratch reproduction of "Understanding
// Passive and Active Service Discovery" (Bartlett, Heidemann,
// Papadopoulos; ISI-TR-642 / IMC 2007): passive network monitoring and
// Nmap-style active probing for service discovery, the analysis comparing
// them, and a calibrated campus-network simulator standing in for the
// paper's USC testbed.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and bench_test.go in this directory for the
// harness that regenerates every table and figure of the evaluation.
package servdisc
