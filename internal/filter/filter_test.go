package filter

import (
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

var (
	campus = netaddr.MustParseV4("128.125.7.9")
	remote = netaddr.MustParseV4("66.35.250.150")
	tRef   = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	bld    = packet.NewBuilder(0)
)

func syn() *packet.Packet {
	return bld.Syn(tRef, packet.Endpoint{Addr: remote, Port: 40001}, packet.Endpoint{Addr: campus, Port: 80}, 1)
}

func synack() *packet.Packet {
	return bld.SynAck(tRef, packet.Endpoint{Addr: campus, Port: 80}, packet.Endpoint{Addr: remote, Port: 40001}, 7, 2)
}

func rst() *packet.Packet {
	return bld.Rst(tRef, packet.Endpoint{Addr: campus, Port: 81}, packet.Endpoint{Addr: remote, Port: 40001}, 0)
}

func udp() *packet.Packet {
	return bld.UDPPacket(tRef, packet.Endpoint{Addr: campus, Port: 53}, packet.Endpoint{Addr: remote, Port: 9999}, []byte("x"))
}

func icmp() *packet.Packet {
	return bld.PortUnreachable(tRef, campus, bld.UDPPacket(tRef, packet.Endpoint{Addr: remote, Port: 1}, packet.Endpoint{Addr: campus, Port: 2}, nil))
}

func TestFilterMatrix(t *testing.T) {
	pkts := map[string]*packet.Packet{
		"syn":    syn(),
		"synack": synack(),
		"rst":    rst(),
		"udp":    udp(),
		"icmp":   icmp(),
	}
	cases := []struct {
		expr string
		want map[string]bool
	}{
		{"tcp", map[string]bool{"syn": true, "synack": true, "rst": true}},
		{"udp", map[string]bool{"udp": true}},
		{"icmp", map[string]bool{"icmp": true}},
		{"syn", map[string]bool{"syn": true}}, // plain SYN excludes SYN|ACK
		{"synack", map[string]bool{"synack": true}},
		{"rst", map[string]bool{"rst": true}},
		{"ack", map[string]bool{"synack": true, "rst": true}},
		{"syn or synack or rst", map[string]bool{"syn": true, "synack": true, "rst": true}},
		// The paper's passive-collection filter: TCP control + all UDP.
		{"syn or synack or rst or udp", map[string]bool{"syn": true, "synack": true, "rst": true, "udp": true}},
		{"host 128.125.7.9", map[string]bool{"syn": true, "synack": true, "rst": true, "udp": true, "icmp": true}},
		{"src host 128.125.7.9", map[string]bool{"synack": true, "rst": true, "udp": true, "icmp": true}},
		{"dst host 128.125.7.9", map[string]bool{"syn": true}},
		{"net 128.125.0.0/16", map[string]bool{"syn": true, "synack": true, "rst": true, "udp": true, "icmp": true}},
		{"src net 66.0.0.0/8", map[string]bool{"syn": true}},
		{"not tcp", map[string]bool{"udp": true, "icmp": true}},
		{"port 80", map[string]bool{"syn": true, "synack": true}},
		{"dst port 80", map[string]bool{"syn": true}},
		{"src port 80", map[string]bool{"synack": true}},
		{"port 53", map[string]bool{"udp": true}},
		{"portrange 80-90", map[string]bool{"syn": true, "synack": true, "rst": true}},
		{"tcp and dst net 128.125.0.0/16 and syn", map[string]bool{"syn": true}},
		{"(syn or rst) and src host 66.35.250.150", map[string]bool{"syn": true}},
		{"", map[string]bool{"syn": true, "synack": true, "rst": true, "udp": true, "icmp": true}},
	}
	for _, c := range cases {
		f, err := Compile(c.expr)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.expr, err)
			continue
		}
		for name, pkt := range pkts {
			if got := f.Match(pkt); got != c.want[name] {
				t.Errorf("%q.Match(%s) = %v, want %v", c.expr, name, got, c.want[name])
			}
		}
	}
}

func TestPrecedence(t *testing.T) {
	// "a or b and c" must parse as "a or (b and c)".
	f := MustCompile("udp or tcp and port 80")
	if !f.Match(udp()) {
		t.Error("udp branch failed")
	}
	if !f.Match(syn()) {
		t.Error("tcp and port 80 branch failed")
	}
	if f.Match(rst()) { // tcp but port 81
		t.Error("rst should not match")
	}
	// Parens override.
	f2 := MustCompile("(udp or tcp) and port 80")
	if f2.Match(udp()) { // udp port 53
		t.Error("parenthesized and should bind over or result")
	}
}

func TestNotBindsTightly(t *testing.T) {
	f := MustCompile("not udp and port 80")
	if !f.Match(syn()) {
		t.Error("not udp and port 80 should match TCP port 80")
	}
	if f.Match(udp()) {
		t.Error("udp should not match")
	}
	f2 := MustCompile("not not tcp")
	if !f2.Match(syn()) {
		t.Error("double negation broken")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"bogus",
		"tcp and",
		"and tcp",
		"(tcp",
		"tcp)",
		"host 999.1.1.1",
		"net 10.0.0.0",
		"port abc",
		"port 70000",
		"portrange 10",
		"portrange 90-80",
		"src",
		"tcp or or udp",
		"host",
		"@",
	}
	for _, expr := range bad {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

func TestStringReturnsSource(t *testing.T) {
	const expr = "tcp and syn"
	if got := MustCompile(expr).String(); got != expr {
		t.Errorf("String = %q", got)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	f, err := Compile("TCP AND SYN")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Match(syn()) {
		t.Error("uppercase keywords should work")
	}
}

func BenchmarkMatchPaperFilter(b *testing.B) {
	f := MustCompile("syn or synack or rst or udp")
	pkt := synack()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !f.Match(pkt) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile("tcp and (syn or rst) and dst net 128.125.0.0/16"); err != nil {
			b.Fatal(err)
		}
	}
}
