// Package filter implements a small tcpdump-style capture filter language
// used to configure passive monitoring taps. The subset covers what the
// paper's collection infrastructure needed — protocol, TCP flag, host, net
// and port predicates with boolean combinators:
//
//	tcp and (syn or rst)
//	synack and dst net 128.125.0.0/16
//	udp and port 53 or icmp
//	not src host 10.0.0.1 and portrange 6000-6063
//
// Grammar (precedence: not > and > or, parentheses group):
//
//	expr      = orExpr
//	orExpr    = andExpr { "or" andExpr }
//	andExpr   = unary { "and" unary }
//	unary     = "not" unary | "(" expr ")" | predicate
//	predicate = "tcp" | "udp" | "icmp"
//	          | "syn" | "synack" | "ack" | "rst" | "fin"
//	          | [ "src" | "dst" ] "host" IPv4
//	          | [ "src" | "dst" ] "net" CIDR
//	          | [ "src" | "dst" ] "port" NUM
//	          | [ "src" | "dst" ] "portrange" NUM "-" NUM
//
// Flag predicates imply "tcp". Without a src/dst qualifier, host/net/port
// predicates match either direction, as in tcpdump.
package filter

import (
	"fmt"
	"strconv"
	"strings"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// Filter is a compiled filter program.
type Filter struct {
	src  string
	prog func(*packet.Packet) bool
}

// MustCompile compiles expr and panics on error; for tests and constants.
func MustCompile(expr string) *Filter {
	f, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return f
}

// Compile parses and compiles a filter expression. The empty expression
// (or one that is entirely whitespace) matches every packet.
func Compile(expr string) (*Filter, error) {
	trimmed := strings.TrimSpace(expr)
	if trimmed == "" {
		return &Filter{src: "", prog: func(*packet.Packet) bool { return true }}, nil
	}
	toks, err := lex(trimmed)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	node, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("filter: unexpected %q after expression", p.peek().text)
	}
	return &Filter{src: trimmed, prog: node.compile()}, nil
}

// Match reports whether the packet satisfies the filter.
func (f *Filter) Match(p *packet.Packet) bool { return f.prog(p) }

// String returns the source expression.
func (f *Filter) String() string { return f.src }

// --- lexer ---

type tokKind uint8

const (
	tokWord tokKind = iota
	tokNumber
	tokLParen
	tokRParen
	tokDash
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '-':
			toks = append(toks, token{tokDash, "-"})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && (isWordChar(s[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case isWordChar(c):
			j := i
			for j < len(s) && isWordChar(s[j]) {
				j++
			}
			toks = append(toks, token{tokWord, strings.ToLower(s[i:j])}) //nolint
			i = j
		default:
			return nil, fmt.Errorf("filter: unexpected character %q", c)
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '.' || c == '/' || c == '_'
}

// --- parser / AST ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

// accept consumes the next token if it is the given word.
func (p *parser) accept(word string) bool {
	if t := p.peek(); t.kind == tokWord && t.text == word {
		p.pos++
		return true
	}
	return false
}

type node interface {
	compile() func(*packet.Packet) bool
}

type andNode struct{ l, r node }
type orNode struct{ l, r node }
type notNode struct{ n node }

func (n andNode) compile() func(*packet.Packet) bool {
	l, r := n.l.compile(), n.r.compile()
	return func(p *packet.Packet) bool { return l(p) && r(p) }
}

func (n orNode) compile() func(*packet.Packet) bool {
	l, r := n.l.compile(), n.r.compile()
	return func(p *packet.Packet) bool { return l(p) || r(p) }
}

func (n notNode) compile() func(*packet.Packet) bool {
	inner := n.n.compile()
	return func(p *packet.Packet) bool { return !inner(p) }
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andNode{left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.accept("not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{inner}, nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("filter: missing ')' before %q", p.peek().text)
		}
		p.next()
		return inner, nil
	}
	return p.parsePredicate()
}

// direction qualifier for host/net/port predicates.
type dir uint8

const (
	dirEither dir = iota
	dirSrc
	dirDst
)

func (p *parser) parsePredicate() (node, error) {
	t := p.peek()
	if t.kind != tokWord {
		return nil, fmt.Errorf("filter: expected predicate, found %q", t.text)
	}
	switch t.text {
	case "tcp":
		p.next()
		return protoNode{packet.LayerTypeTCP}, nil
	case "udp":
		p.next()
		return protoNode{packet.LayerTypeUDP}, nil
	case "icmp":
		p.next()
		return protoNode{packet.LayerTypeICMPv4}, nil
	case "syn":
		p.next()
		// Plain SYN (connection request): SYN set, ACK clear.
		return flagNode{set: packet.FlagSYN, clear: packet.FlagACK}, nil
	case "synack":
		p.next()
		return flagNode{set: packet.FlagSYN | packet.FlagACK}, nil
	case "ack":
		p.next()
		return flagNode{set: packet.FlagACK}, nil
	case "rst":
		p.next()
		return flagNode{set: packet.FlagRST}, nil
	case "fin":
		p.next()
		return flagNode{set: packet.FlagFIN}, nil
	case "src", "dst", "host", "net", "port", "portrange":
		return p.parseDirectional()
	default:
		return nil, fmt.Errorf("filter: unknown keyword %q", t.text)
	}
}

func (p *parser) parseDirectional() (node, error) {
	d := dirEither
	if p.accept("src") {
		d = dirSrc
	} else if p.accept("dst") {
		d = dirDst
	}
	t := p.next()
	if t.kind != tokWord {
		return nil, fmt.Errorf("filter: expected host/net/port after direction, found %q", t.text)
	}
	switch t.text {
	case "host":
		arg := p.next()
		addr, err := netaddr.ParseV4(arg.text)
		if err != nil {
			return nil, fmt.Errorf("filter: host: %v", err)
		}
		return hostNode{d: d, addr: addr}, nil
	case "net":
		arg := p.next()
		pfx, err := netaddr.ParsePrefix(arg.text)
		if err != nil {
			return nil, fmt.Errorf("filter: net: %v", err)
		}
		return netNode{d: d, pfx: pfx}, nil
	case "port":
		n, err := p.parsePortNum()
		if err != nil {
			return nil, err
		}
		return portNode{d: d, lo: n, hi: n}, nil
	case "portrange":
		lo, err := p.parsePortNum()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokDash {
			return nil, fmt.Errorf("filter: portrange needs lo-hi, found %q", p.peek().text)
		}
		p.next()
		hi, err := p.parsePortNum()
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("filter: inverted portrange %d-%d", lo, hi)
		}
		return portNode{d: d, lo: lo, hi: hi}, nil
	default:
		return nil, fmt.Errorf("filter: expected host/net/port after direction, found %q", t.text)
	}
}

func (p *parser) parsePortNum() (uint16, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("filter: expected port number, found %q", t.text)
	}
	n, err := strconv.ParseUint(t.text, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("filter: bad port %q", t.text)
	}
	return uint16(n), nil
}

// --- leaf nodes ---

type protoNode struct{ lt packet.LayerType }

func (n protoNode) compile() func(*packet.Packet) bool {
	lt := n.lt
	return func(p *packet.Packet) bool { return p.Has(lt) }
}

type flagNode struct{ set, clear packet.TCPFlags }

func (n flagNode) compile() func(*packet.Packet) bool {
	set, clear := n.set, n.clear
	return func(p *packet.Packet) bool {
		return p.Has(packet.LayerTypeTCP) && p.TCP.Flags.Has(set) && p.TCP.Flags&clear == 0
	}
}

type hostNode struct {
	d    dir
	addr netaddr.V4
}

func (n hostNode) compile() func(*packet.Packet) bool {
	d, addr := n.d, n.addr
	return func(p *packet.Packet) bool {
		if !p.Has(packet.LayerTypeIPv4) {
			return false
		}
		switch d {
		case dirSrc:
			return p.IPv4.Src == addr
		case dirDst:
			return p.IPv4.Dst == addr
		default:
			return p.IPv4.Src == addr || p.IPv4.Dst == addr
		}
	}
}

type netNode struct {
	d   dir
	pfx netaddr.Prefix
}

func (n netNode) compile() func(*packet.Packet) bool {
	d, pfx := n.d, n.pfx
	return func(p *packet.Packet) bool {
		if !p.Has(packet.LayerTypeIPv4) {
			return false
		}
		switch d {
		case dirSrc:
			return pfx.Contains(p.IPv4.Src)
		case dirDst:
			return pfx.Contains(p.IPv4.Dst)
		default:
			return pfx.Contains(p.IPv4.Src) || pfx.Contains(p.IPv4.Dst)
		}
	}
}

type portNode struct {
	d      dir
	lo, hi uint16
}

func (n portNode) compile() func(*packet.Packet) bool {
	d, lo, hi := n.d, n.lo, n.hi
	in := func(v uint16) bool { return v >= lo && v <= hi }
	return func(p *packet.Packet) bool {
		var src, dst uint16
		switch {
		case p.Has(packet.LayerTypeTCP):
			src, dst = p.TCP.SrcPort, p.TCP.DstPort
		case p.Has(packet.LayerTypeUDP):
			src, dst = p.UDP.SrcPort, p.UDP.DstPort
		default:
			return false
		}
		switch d {
		case dirSrc:
			return in(src)
		case dirDst:
			return in(dst)
		default:
			return in(src) || in(dst)
		}
	}
}
