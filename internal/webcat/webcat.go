// Package webcat categorizes web server root pages by string signatures,
// reproducing the paper's Table 5 methodology: "we developed a set of 185
// web page signatures, which contain sets of strings commonly found in
// specific types of web pages" — e.g. one default-content signature matches
// 14 strings of the Apache test page.
//
// A Signature is a category plus a set of indicator strings with a minimum
// match count; the categorizer scores every signature against the page and
// picks the strongest match, with tie-breaking by specificity. Pages
// matching nothing fall into heuristic buckets (minimal vs. custom) by
// size, as the paper's "minimal content: fewer than 100 bytes" rule does.
package webcat

import (
	"strings"
)

// Category mirrors the Table 5 buckets.
type Category uint8

// Categories.
const (
	Custom Category = iota
	Default
	Minimal
	Config
	Database
	Restricted
	NoResponse
)

// String names the category as in Table 5.
func (c Category) String() string {
	switch c {
	case Custom:
		return "Custom content"
	case Default:
		return "Default content"
	case Minimal:
		return "Minimal content"
	case Config:
		return "Config/status pages"
	case Database:
		return "Database interface"
	case Restricted:
		return "Restricted content"
	case NoResponse:
		return "No response"
	default:
		return "Unknown"
	}
}

// Signature is one category detector.
type Signature struct {
	// Name identifies the signature for diagnostics.
	Name string
	// Category assigned when the signature matches.
	Category Category
	// Strings are the indicator substrings (matched case-insensitively).
	Strings []string
	// MinMatches is how many indicators must appear (default 1).
	MinMatches int
}

// match counts matched indicators and reports whether the threshold is met.
func (s *Signature) match(lower string) (int, bool) {
	hits := 0
	for _, ind := range s.Strings {
		if strings.Contains(lower, strings.ToLower(ind)) {
			hits++
		}
	}
	min := s.MinMatches
	if min <= 0 {
		min = 1
	}
	return hits, hits >= min
}

// Categorizer scores pages against a signature set.
type Categorizer struct {
	sigs []Signature
	// MinimalBytes is the "minimal content" size threshold (paper: 100).
	MinimalBytes int
}

// NewCategorizer builds a categorizer over the given signatures.
func NewCategorizer(sigs []Signature) *Categorizer {
	return &Categorizer{sigs: sigs, MinimalBytes: 100}
}

// DefaultCategorizer returns a categorizer loaded with the built-in
// signature set.
func DefaultCategorizer() *Categorizer {
	return NewCategorizer(BuiltinSignatures())
}

// Categorize assigns a category to a fetched root page. ok=false fetches
// (no response) should be recorded as NoResponse by the caller; this
// function assumes a body was retrieved.
func (c *Categorizer) Categorize(body string) Category {
	lower := strings.ToLower(body)
	best := -1
	bestCat := Custom
	for i := range c.sigs {
		hits, ok := c.sigs[i].match(lower)
		if !ok {
			continue
		}
		// Prefer the signature with the most matched indicators;
		// earlier signatures win ties (the set is ordered from most to
		// least specific).
		if hits > best {
			best = hits
			bestCat = c.sigs[i].Category
		}
	}
	if best >= 0 {
		return bestCat
	}
	if len(body) < c.MinimalBytes {
		return Minimal
	}
	return Custom
}

// BuiltinSignatures returns the built-in signature set. The real study used
// 185 hand-written signatures over live content; this set covers the same
// categories for the synthetic content of the campus model plus the common
// real-world pages each category is named after.
func BuiltinSignatures() []Signature {
	return []Signature{
		// --- default vendor pages ---
		{
			Name: "apache-test-page", Category: Default, MinMatches: 2,
			Strings: []string{
				"Test Page for Apache", "Seeing this instead",
				"Apache HTTP Server", "Apache Software Foundation",
				"/var/www/html", "Powered by Apache",
				"default web page",
			},
		},
		{
			// The Apache 2.2 default page is just this phrase.
			Name: "apache-it-works", Category: Default, MinMatches: 1,
			Strings: []string{"It works!"},
		},
		{
			Name: "iis-default", Category: Default, MinMatches: 1,
			Strings: []string{
				"Under Construction", "Internet Information Services",
				"iisstart", "Welcome to IIS",
			},
		},
		{
			Name: "generic-placeholder", Category: Default, MinMatches: 1,
			Strings: []string{
				"This page is here because the site administrator",
				"placeholder page", "site not configured",
			},
		},
		// --- device configuration / status ---
		{
			Name: "jetdirect", Category: Config, MinMatches: 1,
			Strings: []string{
				"JetDirect", "Printer Status", "Toner Level",
				"Device Configuration", "LaserJet",
			},
		},
		{
			Name: "net-device", Category: Config, MinMatches: 2,
			Strings: []string{
				"Device Status", "Firmware Version", "System Uptime",
				"Management Interface", "SNMP", "Administration Console",
			},
		},
		{
			Name: "ups-console", Category: Config, MinMatches: 1,
			Strings: []string{"UPS Status", "Battery Capacity", "PowerChute"},
		},
		// --- database front-ends ---
		{
			Name: "oracle", Category: Database, MinMatches: 1,
			Strings: []string{
				"iSQL*Plus", "Oracle Application Server", "Oracle Database",
				"Connect Identifier",
			},
		},
		{
			Name: "phpmyadmin", Category: Database, MinMatches: 1,
			Strings: []string{"phpMyAdmin", "MySQL server", "Database Login"},
		},
		// --- restricted / login pages ---
		{
			Name: "http-auth", Category: Restricted, MinMatches: 1,
			Strings: []string{
				"401 Authorization Required", "Authorization Required",
				"Please log in", "login required", "Access Denied",
			},
		},
		{
			Name: "login-form", Category: Restricted, MinMatches: 2,
			Strings: []string{"username", "password", "sign in"},
		},
	}
}
