package webcat

import (
	"strings"
	"testing"

	"servdisc/internal/campus"
	"servdisc/internal/netaddr"
)

func TestCategorizeGeneratedPages(t *testing.T) {
	// The categorizer must recover the category of every page the campus
	// content generator produces.
	c := DefaultCategorizer()
	addr := netaddr.MustParseV4("128.125.7.9")
	cases := []struct {
		gen  campus.ContentCategory
		want Category
	}{
		{campus.ContentCustom, Custom},
		{campus.ContentDefault, Default},
		{campus.ContentMinimal, Minimal},
		{campus.ContentConfig, Config},
		{campus.ContentDatabase, Database},
		{campus.ContentRestricted, Restricted},
	}
	for _, tc := range cases {
		body := campus.RenderRootPage(tc.gen, addr)
		if got := c.Categorize(body); got != tc.want {
			t.Errorf("Categorize(%v page) = %v, want %v", tc.gen, got, tc.want)
		}
	}
}

func TestCategorizeRealWorldSnippets(t *testing.T) {
	c := DefaultCategorizer()
	cases := []struct {
		body string
		want Category
	}{
		{"<html><body><h1>It works!</h1></body></html>", Default},
		{"<title>Under Construction</title>", Default},
		{"<h2>Printer Status: Ready</h2> JetDirect", Config},
		{"<title>phpMyAdmin 2.6</title> Welcome to phpMyAdmin", Database},
		{"401 Authorization Required", Restricted},
		{"ok", Minimal},
		{strings.Repeat("research results and data ", 20), Custom},
	}
	for _, tc := range cases {
		if got := c.Categorize(tc.body); got != tc.want {
			t.Errorf("Categorize(%.40q) = %v, want %v", tc.body, got, tc.want)
		}
	}
}

func TestMinMatchesThreshold(t *testing.T) {
	sigs := []Signature{{
		Name: "strict", Category: Config, MinMatches: 3,
		Strings: []string{"alpha", "beta", "gamma", "delta"},
	}}
	c := NewCategorizer(sigs)
	long := strings.Repeat("x", 200)
	if got := c.Categorize("alpha beta " + long); got == Config {
		t.Error("2 of 3 indicators should not match")
	}
	if got := c.Categorize("alpha beta gamma " + long); got != Config {
		t.Errorf("3 of 3 = %v", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	c := DefaultCategorizer()
	if got := c.Categorize("JETDIRECT printer status"); got != Config {
		t.Errorf("uppercase body = %v", got)
	}
}

func TestBestMatchWins(t *testing.T) {
	// A page with one restricted indicator and four config indicators
	// should categorize as config.
	c := DefaultCategorizer()
	body := "Device Status Firmware Version System Uptime SNMP password " +
		strings.Repeat("pad ", 50)
	if got := c.Categorize(body); got != Config {
		t.Errorf("multi-signature page = %v", got)
	}
}

func TestCategoryStrings(t *testing.T) {
	names := map[Category]string{
		Custom: "Custom content", Default: "Default content",
		Minimal: "Minimal content", Config: "Config/status pages",
		Database: "Database interface", Restricted: "Restricted content",
		NoResponse: "No response",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("String(%d) = %q", c, c.String())
		}
	}
}

func BenchmarkCategorize(b *testing.B) {
	c := DefaultCategorizer()
	body := campus.RenderRootPage(campus.ContentConfig, netaddr.MustParseV4("128.125.1.1"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Categorize(body)
	}
}
