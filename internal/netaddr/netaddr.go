// Package netaddr provides compact IPv4 address value types used throughout
// the service-discovery library: single addresses, CIDR prefixes, half-open
// address ranges, and mutable address sets.
//
// The simulator and the discovery engines index inventories by address, so
// these types favor O(1) arithmetic over the generality of net/netip: a V4
// is a uint32 under the hood and may be used directly as a map key, compared
// with <, or iterated with ++-style arithmetic.
package netaddr

import (
	"errors"
	"fmt"
	"math/bits"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// V4 is an IPv4 address stored in host byte order (a.b.c.d ==
// a<<24 | b<<16 | c<<8 | d). The zero value is 0.0.0.0.
type V4 uint32

// MustParseV4 parses a dotted-quad address and panics on error.
// It is intended for constants in tests and configuration literals.
func MustParseV4(s string) V4 {
	a, err := ParseV4(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseV4 parses a dotted-quad IPv4 address such as "128.125.7.9".
func ParseV4(s string) (V4, error) {
	var parts [4]uint32
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netaddr: invalid IPv4 %q: missing octet %d", s, i+1)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		n, err := strconv.ParseUint(tok, 10, 16)
		if err != nil || n > 255 {
			return 0, fmt.Errorf("netaddr: invalid IPv4 %q: bad octet %q", s, tok)
		}
		parts[i] = uint32(n)
	}
	return V4(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// FromBytes assembles an address from its four network-order bytes.
func FromBytes(a, b, c, d byte) V4 {
	return V4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// FromSlice decodes a 4-byte network-order slice. It reports ok=false if the
// slice is not exactly four bytes long.
func FromSlice(b []byte) (V4, bool) {
	if len(b) != 4 {
		return 0, false
	}
	return FromBytes(b[0], b[1], b[2], b[3]), true
}

// Bytes returns the address in network byte order.
func (a V4) Bytes() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// AppendTo appends the four network-order bytes to dst.
func (a V4) AppendTo(dst []byte) []byte {
	return append(dst, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Netip converts to a net/netip address for interoperation with the
// standard library (e.g. when probing real networks).
func (a V4) Netip() netip.Addr {
	return netip.AddrFrom4(a.Bytes())
}

// FromNetip converts a netip address, reporting ok=false for non-IPv4
// (including IPv4-mapped IPv6, which is unmapped first).
func FromNetip(ip netip.Addr) (V4, bool) {
	ip = ip.Unmap()
	if !ip.Is4() {
		return 0, false
	}
	b := ip.As4()
	return FromBytes(b[0], b[1], b[2], b[3]), true
}

// String renders the dotted-quad form.
func (a V4) String() string {
	b := a.Bytes()
	buf := make([]byte, 0, 15)
	for i, o := range b {
		if i > 0 {
			buf = append(buf, '.')
		}
		buf = strconv.AppendUint(buf, uint64(o), 10)
	}
	return string(buf)
}

// MarshalText renders the dotted-quad form, making V4 serialize as a
// string (not a raw uint32) in JSON objects and as a map key — the form
// the federation wire codec ships across sites.
func (a V4) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText parses the dotted-quad form written by MarshalText.
func (a *V4) UnmarshalText(text []byte) error {
	v, err := ParseV4(string(text))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// IsPrivate reports whether the address falls in RFC 1918 space.
func (a V4) IsPrivate() bool {
	return Prefix10.Contains(a) || Prefix172.Contains(a) || Prefix192.Contains(a)
}

// Well-known private prefixes.
var (
	Prefix10  = MustParsePrefix("10.0.0.0/8")
	Prefix172 = MustParsePrefix("172.16.0.0/12")
	Prefix192 = MustParsePrefix("192.168.0.0/16")
)

// Prefix is a CIDR block: the masked base address plus prefix length.
type Prefix struct {
	base V4
	bits uint8
}

// ErrBadPrefix reports an invalid CIDR string or prefix length.
var ErrBadPrefix = errors.New("netaddr: invalid prefix")

// NewPrefix masks addr down to length ln and returns the resulting block.
func NewPrefix(addr V4, ln int) (Prefix, error) {
	if ln < 0 || ln > 32 {
		return Prefix{}, fmt.Errorf("%w: length %d", ErrBadPrefix, ln)
	}
	return Prefix{base: addr & V4(maskFor(ln)), bits: uint8(ln)}, nil
}

// MustParsePrefix parses CIDR notation and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation such as "128.125.0.0/16".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q missing '/'", ErrBadPrefix, s)
	}
	addr, err := ParseV4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	ln, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q bad length", ErrBadPrefix, s)
	}
	return NewPrefix(addr, ln)
}

func maskFor(ln int) uint32 {
	if ln == 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(ln))
}

// Base returns the (masked) network address of the block.
func (p Prefix) Base() V4 { return p.base }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Size returns the number of addresses covered by the block.
func (p Prefix) Size() int {
	return 1 << (32 - uint(p.bits))
}

// Last returns the final (broadcast) address in the block.
func (p Prefix) Last() V4 {
	return p.base | V4(^maskFor(int(p.bits)))
}

// Contains reports whether a falls inside the block.
func (p Prefix) Contains(a V4) bool {
	return a&V4(maskFor(int(p.bits))) == p.base
}

// Overlaps reports whether two blocks share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.base)
	}
	return q.Contains(p.base)
}

// Range converts the prefix to the equivalent half-open range.
func (p Prefix) Range() Range {
	return Range{Lo: p.base, Hi: V4(uint32(p.Last()) + 1)}
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.base.String() + "/" + strconv.Itoa(int(p.bits))
}

// Addrs returns every address in the block, in order. Intended for the
// modest block sizes used by the simulator (≤ /16).
func (p Prefix) Addrs() []V4 {
	out := make([]V4, 0, p.Size())
	for a := p.base; ; a++ {
		out = append(out, a)
		if a == p.Last() {
			break
		}
	}
	return out
}

// Range is a half-open address interval [Lo, Hi). Unlike Prefix it can
// represent arbitrary spans (e.g. a PPP pool of 300 addresses).
// A Range with Hi == Lo is empty. Hi == 0 with Lo != 0 means the range runs
// to the top of the address space (wraps the uint32 end sentinel).
type Range struct {
	Lo, Hi V4
}

// NewRange builds the half-open range [lo, hi). It reports an error when
// hi < lo (an inverted interval).
func NewRange(lo, hi V4) (Range, error) {
	if hi < lo && hi != 0 {
		return Range{}, fmt.Errorf("netaddr: inverted range %s-%s", lo, hi)
	}
	return Range{Lo: lo, Hi: hi}, nil
}

// Size returns the number of addresses in the range.
func (r Range) Size() int {
	if r.Hi == 0 && r.Lo != 0 {
		return int(uint64(1<<32) - uint64(r.Lo))
	}
	return int(r.Hi - r.Lo)
}

// Contains reports whether a falls inside [Lo, Hi).
func (r Range) Contains(a V4) bool {
	if r.Hi == 0 && r.Lo != 0 {
		return a >= r.Lo
	}
	return a >= r.Lo && a < r.Hi
}

// At returns the i-th address of the range. It panics when i is out of
// bounds, mirroring slice indexing.
func (r Range) At(i int) V4 {
	if i < 0 || i >= r.Size() {
		panic(fmt.Sprintf("netaddr: index %d out of range %s (size %d)", i, r, r.Size()))
	}
	return r.Lo + V4(i)
}

// Index returns the position of a within the range, or -1 if absent.
func (r Range) Index(a V4) int {
	if !r.Contains(a) {
		return -1
	}
	return int(a - r.Lo)
}

// String renders "lo-hi" (inclusive upper bound for readability).
func (r Range) String() string {
	if r.Size() == 0 {
		return r.Lo.String() + "-empty"
	}
	return r.Lo.String() + "-" + (r.Hi - 1).String()
}

// Set is a mutable collection of IPv4 addresses with set algebra. The zero
// value is an empty, ready-to-use set.
type Set struct {
	m map[V4]struct{}
	// shared marks storage aliased by a CloneShared twin: the next
	// mutation copies the map first (copy-on-write), so the twin never
	// observes it.
	shared bool
}

// NewSet returns a set seeded with the given addresses.
func NewSet(addrs ...V4) *Set {
	s := &Set{}
	for _, a := range addrs {
		s.Add(a)
	}
	return s
}

// own makes the storage exclusively s's again, copying it if a CloneShared
// twin aliases it.
func (s *Set) own() {
	if !s.shared {
		return
	}
	m := make(map[V4]struct{}, len(s.m))
	for a := range s.m {
		m[a] = struct{}{}
	}
	s.m, s.shared = m, false
}

// Add inserts a. Duplicate inserts are no-ops.
func (s *Set) Add(a V4) {
	s.own()
	if s.m == nil {
		s.m = make(map[V4]struct{})
	}
	s.m[a] = struct{}{}
}

// AddPrefix inserts every address in p.
func (s *Set) AddPrefix(p Prefix) {
	for a := p.Base(); ; a++ {
		s.Add(a)
		if a == p.Last() {
			break
		}
	}
}

// AddRange inserts every address in r.
func (s *Set) AddRange(r Range) {
	for i := 0; i < r.Size(); i++ {
		s.Add(r.At(i))
	}
}

// Remove deletes a if present.
func (s *Set) Remove(a V4) {
	if _, ok := s.m[a]; !ok {
		return
	}
	s.own()
	delete(s.m, a)
}

// Contains reports membership.
func (s *Set) Contains(a V4) bool {
	_, ok := s.m[a]
	return ok
}

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return len(s.m) }

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{}
	if len(s.m) > 0 {
		out.m = make(map[V4]struct{}, len(s.m))
		for a := range s.m {
			out.m[a] = struct{}{}
		}
	}
	return out
}

// CloneShared returns a copy that shares s's storage copy-on-write: the
// O(1) clone for snapshot views. Either side's next mutation copies the
// storage first, so the twins can never observe each other — semantically
// identical to Clone, but reads stay free and an all-read lifetime never
// pays for a copy at all. Not safe for concurrent use with mutations of
// s, matching Set's general contract.
func (s *Set) CloneShared() *Set {
	if len(s.m) == 0 {
		return &Set{}
	}
	// Skip the re-mark on an already-shared set so CloneShared stays a
	// pure read there: concurrent readers may clone the same frozen set.
	if !s.shared {
		s.shared = true
	}
	return &Set{m: s.m, shared: true}
}

// Union returns a new set with every address in s or t.
func (s *Set) Union(t *Set) *Set {
	out := NewSet()
	for a := range s.m {
		out.Add(a)
	}
	if t != nil {
		for a := range t.m {
			out.Add(a)
		}
	}
	return out
}

// Intersect returns a new set with addresses present in both s and t.
func (s *Set) Intersect(t *Set) *Set {
	out := NewSet()
	if t == nil {
		return out
	}
	small, large := s, t
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for a := range small.m {
		if large.Contains(a) {
			out.Add(a)
		}
	}
	return out
}

// Diff returns a new set with addresses in s but not in t.
func (s *Set) Diff(t *Set) *Set {
	out := NewSet()
	for a := range s.m {
		if t == nil || !t.Contains(a) {
			out.Add(a)
		}
	}
	return out
}

// Equal reports whether both sets hold exactly the same addresses.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for a := range s.m {
		if !t.Contains(a) {
			return false
		}
	}
	return true
}

// Sorted returns the addresses in ascending order.
func (s *Set) Sorted() []V4 {
	out := make([]V4, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SummarizePrefixes greedily covers the set with CIDR blocks, useful for
// printing compact descriptions of discovered address populations.
func (s *Set) SummarizePrefixes() []Prefix {
	addrs := s.Sorted()
	var out []Prefix
	for i := 0; i < len(addrs); {
		a := addrs[i]
		// Find the longest run of consecutive addresses starting at a.
		run := 1
		for i+run < len(addrs) && addrs[i+run] == a+V4(run) {
			run++
		}
		// Cover the run with maximal aligned power-of-two blocks.
		for run > 0 {
			// Alignment limits the block size to the lowest set bit of a
			// (or the whole space when a == 0).
			maxAligned := 32
			if a != 0 {
				maxAligned = bits.TrailingZeros32(uint32(a))
			}
			sz := 1
			ln := 32
			for sz*2 <= run && 32-(ln-1) <= maxAligned {
				sz *= 2
				ln--
			}
			p, _ := NewPrefix(a, ln)
			out = append(out, p)
			a += V4(sz)
			run -= sz
			i += sz
		}
	}
	return out
}
