package netaddr

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseV4(t *testing.T) {
	cases := []struct {
		in   string
		want V4
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"128.125.7.9", FromBytes(128, 125, 7, 9), true},
		{"1.2.3.4", 0x01020304, true},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
		{"1..2.3", 0, false},
		{"-1.2.3.4", 0, false},
	}
	for _, c := range cases {
		got, err := ParseV4(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseV4(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseV4(%q) succeeded; want error", c.in)
		}
	}
}

func TestV4StringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		v := V4(a)
		back, err := ParseV4(v.String())
		return err == nil && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestV4BytesRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		v := V4(a)
		b := v.Bytes()
		back, ok := FromSlice(b[:])
		return ok && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNetipConversion(t *testing.T) {
	a := MustParseV4("128.125.7.9")
	ip := a.Netip()
	if ip.String() != "128.125.7.9" {
		t.Fatalf("Netip() = %v", ip)
	}
	back, ok := FromNetip(ip)
	if !ok || back != a {
		t.Fatalf("FromNetip round trip = %v, %v", back, ok)
	}
	if _, ok := FromNetip(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("FromNetip accepted IPv6")
	}
	// IPv4-mapped IPv6 should unmap.
	back, ok = FromNetip(netip.MustParseAddr("::ffff:10.1.2.3"))
	if !ok || back != MustParseV4("10.1.2.3") {
		t.Fatalf("FromNetip mapped = %v, %v", back, ok)
	}
}

func TestPrefixBasics(t *testing.T) {
	p := MustParsePrefix("128.125.0.0/16")
	if p.Size() != 65536 {
		t.Errorf("Size = %d", p.Size())
	}
	if got := p.Last(); got != MustParseV4("128.125.255.255") {
		t.Errorf("Last = %v", got)
	}
	if !p.Contains(MustParseV4("128.125.44.3")) {
		t.Error("Contains inside failed")
	}
	if p.Contains(MustParseV4("128.126.0.0")) {
		t.Error("Contains outside succeeded")
	}
	if s := p.String(); s != "128.125.0.0/16" {
		t.Errorf("String = %q", s)
	}
}

func TestPrefixMasksBase(t *testing.T) {
	p, err := NewPrefix(MustParseV4("10.1.2.3"), 24)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base() != MustParseV4("10.1.2.0") {
		t.Errorf("Base = %v", p.Base())
	}
}

func TestPrefixInvalid(t *testing.T) {
	if _, err := NewPrefix(0, 33); err == nil {
		t.Error("length 33 accepted")
	}
	if _, err := NewPrefix(0, -1); err == nil {
		t.Error("length -1 accepted")
	}
	for _, s := range []string{"10.0.0.0", "10.0.0.0/ab", "bogus/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", s)
		}
	}
}

func TestPrefixZeroLength(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	if !p.Contains(MustParseV4("255.255.255.255")) || !p.Contains(0) {
		t.Error("/0 should contain everything")
	}
	if p.Size() != 1<<32 {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.20.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested blocks should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint blocks should not overlap")
	}
}

func TestPrefixAddrs(t *testing.T) {
	p := MustParsePrefix("192.168.1.0/30")
	got := p.Addrs()
	if len(got) != 4 || got[0] != MustParseV4("192.168.1.0") || got[3] != MustParseV4("192.168.1.3") {
		t.Errorf("Addrs = %v", got)
	}
}

func TestRange(t *testing.T) {
	r, err := NewRange(MustParseV4("10.0.0.10"), MustParseV4("10.0.0.20"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 10 {
		t.Errorf("Size = %d", r.Size())
	}
	if !r.Contains(MustParseV4("10.0.0.10")) || r.Contains(MustParseV4("10.0.0.20")) {
		t.Error("half-open bounds wrong")
	}
	if r.At(3) != MustParseV4("10.0.0.13") {
		t.Errorf("At(3) = %v", r.At(3))
	}
	if r.Index(MustParseV4("10.0.0.13")) != 3 {
		t.Errorf("Index = %d", r.Index(MustParseV4("10.0.0.13")))
	}
	if r.Index(MustParseV4("10.0.0.99")) != -1 {
		t.Error("Index of absent addr should be -1")
	}
}

func TestRangeInverted(t *testing.T) {
	if _, err := NewRange(MustParseV4("10.0.0.20"), MustParseV4("10.0.0.10")); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRangeAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	r, _ := NewRange(0, 4)
	r.At(4)
}

func TestRangeFromPrefix(t *testing.T) {
	p := MustParsePrefix("10.8.0.0/24")
	r := p.Range()
	if r.Size() != 256 || !r.Contains(MustParseV4("10.8.0.255")) || r.Contains(MustParseV4("10.8.1.0")) {
		t.Errorf("Range() = %v", r)
	}
}

func TestSetBasics(t *testing.T) {
	var s Set // zero value must be usable
	if s.Len() != 0 || s.Contains(1) {
		t.Fatal("zero set not empty")
	}
	s.Add(1)
	s.Add(1)
	s.Add(2)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Remove(1)
	if s.Contains(1) || !s.Contains(2) {
		t.Error("Remove broken")
	}
	s.Remove(42) // absent: no-op
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(1, 2, 3)
	b := NewSet(3, 4)
	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("Union len = %d", got.Len())
	}
	if got := a.Intersect(b); got.Len() != 1 || !got.Contains(3) {
		t.Errorf("Intersect = %v", got.Sorted())
	}
	if got := a.Diff(b); got.Len() != 2 || got.Contains(3) {
		t.Errorf("Diff = %v", got.Sorted())
	}
	if got := b.Intersect(a); got.Len() != 1 {
		t.Errorf("Intersect not symmetric: %v", got.Sorted())
	}
}

func TestSetAlgebraLaws(t *testing.T) {
	// Property: for random sets A and B,
	// |A∪B| = |A| + |B| - |A∩B| and A = (A∩B) ∪ (A\B).
	f := func(xs, ys []uint16) bool {
		a, b := NewSet(), NewSet()
		for _, x := range xs {
			a.Add(V4(x))
		}
		for _, y := range ys {
			b.Add(V4(y))
		}
		u, i := a.Union(b), a.Intersect(b)
		if u.Len() != a.Len()+b.Len()-i.Len() {
			return false
		}
		return i.Union(a.Diff(b)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetSorted(t *testing.T) {
	s := NewSet(5, 1, 3)
	got := s.Sorted()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Sorted = %v", got)
	}
}

func TestSetAddPrefixAndRange(t *testing.T) {
	s := NewSet()
	s.AddPrefix(MustParsePrefix("10.0.0.0/30"))
	if s.Len() != 4 {
		t.Errorf("AddPrefix len = %d", s.Len())
	}
	s.AddRange(Range{Lo: MustParseV4("10.0.1.0"), Hi: MustParseV4("10.0.1.3")})
	if s.Len() != 7 {
		t.Errorf("AddRange len = %d", s.Len())
	}
}

func TestSummarizePrefixes(t *testing.T) {
	s := NewSet()
	s.AddPrefix(MustParsePrefix("10.0.0.0/24"))
	ps := s.SummarizePrefixes()
	if len(ps) != 1 || ps[0].String() != "10.0.0.0/24" {
		t.Errorf("SummarizePrefixes = %v", ps)
	}
	// Unaligned run of 3 should need two blocks.
	s2 := NewSet(1, 2, 3)
	ps2 := s2.SummarizePrefixes()
	total := 0
	for _, p := range ps2 {
		total += p.Size()
		for a := p.Base(); ; a++ {
			if !s2.Contains(a) {
				t.Errorf("block %v covers %v outside set", p, a)
			}
			if a == p.Last() {
				break
			}
		}
	}
	if total != 3 {
		t.Errorf("blocks cover %d addrs, want 3", total)
	}
}

func TestSummarizeCoversExactly(t *testing.T) {
	// Property: summarized prefixes cover exactly the set, no more, no less.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := NewSet()
		for i := 0; i < 64; i++ {
			s.Add(V4(rng.Intn(512)))
		}
		covered := NewSet()
		for _, p := range s.SummarizePrefixes() {
			for a := p.Base(); ; a++ {
				if covered.Contains(a) {
					t.Fatalf("address %v covered twice", a)
				}
				covered.Add(a)
				if a == p.Last() {
					break
				}
			}
		}
		if !covered.Equal(s) {
			t.Fatalf("cover mismatch: got %d addrs, want %d", covered.Len(), s.Len())
		}
	}
}

func TestIsPrivate(t *testing.T) {
	cases := []struct {
		addr string
		want bool
	}{
		{"10.1.2.3", true},
		{"172.16.0.1", true},
		{"172.31.255.255", true},
		{"172.32.0.0", false},
		{"192.168.100.1", true},
		{"128.125.7.9", false},
	}
	for _, c := range cases {
		if got := MustParseV4(c.addr).IsPrivate(); got != c.want {
			t.Errorf("IsPrivate(%s) = %v", c.addr, got)
		}
	}
}

func BenchmarkSetAdd(b *testing.B) {
	s := NewSet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(V4(i & 0xFFFF))
	}
}

func BenchmarkParseV4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseV4("128.125.251.7"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet(MustParseV4("10.0.0.1"), MustParseV4("10.0.0.2"))
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone differs from original")
	}
	c.Add(MustParseV4("10.0.0.3"))
	c.Remove(MustParseV4("10.0.0.1"))
	if s.Len() != 2 || !s.Contains(MustParseV4("10.0.0.1")) || s.Contains(MustParseV4("10.0.0.3")) {
		t.Error("mutating the clone reached the original")
	}
	var zero Set
	if cz := zero.Clone(); cz.Len() != 0 {
		t.Error("zero-set clone not empty")
	}
}

func TestSetCloneShared(t *testing.T) {
	a1, a2, a3 := MustParseV4("10.0.0.1"), MustParseV4("10.0.0.2"), MustParseV4("10.0.0.3")

	// Mutating the original after a shared clone must not reach the clone.
	s := NewSet(a1, a2)
	c := s.CloneShared()
	if !c.Equal(s) {
		t.Fatal("shared clone differs from original")
	}
	s.Add(a3)
	s.Remove(a1)
	if c.Len() != 2 || !c.Contains(a1) || c.Contains(a3) {
		t.Error("mutating the original reached the shared clone")
	}

	// And the other direction: the clone copies before its first write.
	s = NewSet(a1, a2)
	c = s.CloneShared()
	c.Add(a3)
	c.Remove(a1)
	if s.Len() != 2 || !s.Contains(a1) || s.Contains(a3) {
		t.Error("mutating the shared clone reached the original")
	}

	// Removing an absent address must not trigger the copy-on-write path's
	// mutation semantics observably (still a no-op).
	s = NewSet(a1)
	c = s.CloneShared()
	c.Remove(a2)
	if c.Len() != 1 || s.Len() != 1 {
		t.Error("no-op Remove disturbed a shared set")
	}

	var zero Set
	if cz := zero.CloneShared(); cz.Len() != 0 {
		t.Error("zero-set shared clone not empty")
	}
}
