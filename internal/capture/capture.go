// Package capture implements the passive-monitoring side of the system:
// taps on peering links, packet filters, fixed-duration sampling, and
// multi-link composition. It reproduces the paper's LANDER-style collection
// (Section 3.2): capture TCP SYN / SYN-ACK / RST packets plus all UDP
// traffic at the monitored peerings.
//
// A Monitor receives border traffic in batches (the pipeline.BatchSink
// contract) from the traffic generator or a replayed pcap trace, assigns
// each packet to a peering link, and forwards per-link sub-batches through
// each monitored link's tap — filter first, then sampler — to the tap's
// sink (typically a core discoverer, or a trace recorder). Tap and Monitor
// counters are backed by the pipeline's atomic stage counters, so a stats
// endpoint may read them while another goroutine ingests.
package capture

import (
	"fmt"
	"sync/atomic"

	"servdisc/internal/filter"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
)

// PaperFilter is the collection filter of the paper's infrastructure:
// TCP connection-control packets and all UDP.
const PaperFilter = "syn or synack or rst or udp"

// Sink is the legacy per-packet consumer contract, kept for single-packet
// consumers; batch flow uses pipeline.BatchSink. Bridge one into batch
// flow with pipeline.Adapt.
type Sink interface {
	HandlePacket(p *packet.Packet)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(p *packet.Packet)

// HandlePacket implements Sink.
func (f SinkFunc) HandlePacket(p *packet.Packet) { f(p) }

// BatchSink is the batched consumer contract (alias of the pipeline's).
type BatchSink = pipeline.BatchSink

// LinkID identifies a peering link.
type LinkID uint8

// The university's three peerings (Section 5.2).
const (
	LinkCommercial1 LinkID = iota
	LinkCommercial2
	LinkInternet2
	numLinks
)

// String names the link as in Table 8.
func (l LinkID) String() string {
	switch l {
	case LinkCommercial1:
		return "Commercial 1"
	case LinkCommercial2:
		return "Commercial 2"
	case LinkInternet2:
		return "Internet2"
	default:
		return fmt.Sprintf("link(%d)", uint8(l))
	}
}

// Assigner routes each border packet to the peering it would traverse:
// Internet2 carries traffic of academic peers (a fixed address set); the
// rest hashes 2:1 across the commercial links, approximating the paper's
// observation that any single commercial link sees most servers.
type Assigner struct {
	campus   netaddr.Prefix
	academic map[netaddr.V4]struct{}
}

// NewAssigner builds an assigner. campus is the monitored address space;
// academic lists external addresses routed via Internet2.
func NewAssigner(campus netaddr.Prefix, academic []netaddr.V4) *Assigner {
	a := &Assigner{campus: campus, academic: make(map[netaddr.V4]struct{}, len(academic))}
	for _, x := range academic {
		a.academic[x] = struct{}{}
	}
	return a
}

// externalEndpoint picks the off-campus side of the packet, defaulting to
// the source when neither side is on campus.
func (a *Assigner) externalEndpoint(p *packet.Packet) netaddr.V4 {
	if !a.campus.Contains(p.IPv4.Src) {
		return p.IPv4.Src
	}
	return p.IPv4.Dst
}

// Route returns the link the packet traverses.
func (a *Assigner) Route(p *packet.Packet) LinkID {
	ext := a.externalEndpoint(p)
	if _, ok := a.academic[ext]; ok {
		return LinkInternet2
	}
	// Deterministic 2:1 split across the commercial peerings.
	h := uint32(ext)
	h ^= h >> 16
	h *= 0x45D9F3B
	h ^= h >> 13
	if h%3 < 2 {
		return LinkCommercial1
	}
	return LinkCommercial2
}

// Tap is one monitored link: a filter, an optional sampler, and a batch
// sink. A tap is fed by one goroutine at a time (its monitor's), but its
// counters may be read concurrently.
type Tap struct {
	Link    LinkID
	filter  *filter.Filter
	sampler Sampler
	sink    pipeline.BatchSink

	// counters: In = seen, Out = delivered; matched counts filter passes
	// before sampling.
	counters pipeline.StageCounters
	matched  atomic.Int64

	// scratch holds the kept sub-batch between filter and delivery;
	// single is the reusable one-packet buffer of the legacy path.
	scratch []packet.Packet
	single  []packet.Packet
}

// NewTap builds a tap. filterExpr may be empty (capture everything);
// sampler may be nil (continuous capture).
func NewTap(link LinkID, filterExpr string, sampler Sampler, sink pipeline.BatchSink) (*Tap, error) {
	f, err := filter.Compile(filterExpr)
	if err != nil {
		return nil, err
	}
	return &Tap{Link: link, filter: f, sampler: sampler, sink: sink}, nil
}

// Seen returns how many packets arrived at the tap.
func (t *Tap) Seen() int { return t.counters.In() }

// Matched returns how many packets passed the tap's filter.
func (t *Tap) Matched() int { return int(t.matched.Load()) }

// Delivered returns how many packets reached the tap's sink.
func (t *Tap) Delivered() int { return t.counters.Out() }

// Counters exposes the tap's stage counters (In = seen, Out = delivered,
// Dropped = filtered or sampled out).
func (t *Tap) Counters() *pipeline.StageCounters { return &t.counters }

// HandleBatch implements pipeline.BatchSink: filter and sample the batch,
// delivering the kept packets downstream as one sub-batch. When every
// packet is kept — the common case for a pre-filtered trace replay — the
// input slice is forwarded as-is, with no copying.
func (t *Tap) HandleBatch(batch []packet.Packet) {
	t.counters.AddIn(len(batch))
	// Fast path: scan for the first rejection; the kept prefix aliases
	// the input.
	i := 0
	for ; i < len(batch); i++ {
		p := &batch[i]
		if !t.filter.Match(p) || (t.sampler != nil && !t.sampler.Keep(p)) {
			break
		}
	}
	if i == len(batch) {
		t.matched.Add(int64(i))
		t.counters.AddOut(i)
		if i > 0 && t.sink != nil {
			t.sink.HandleBatch(batch)
		}
		return
	}

	// Slow path: compact the keepers into the tap's scratch, starting
	// from the all-kept prefix. The packet that broke the scan still
	// counts as matched if only the sampler rejected it.
	kept := append(t.scratch[:0], batch[:i]...)
	matched := i
	if t.filter.Match(&batch[i]) {
		matched++
	}
	for i++; i < len(batch); i++ {
		p := &batch[i]
		if !t.filter.Match(p) {
			continue
		}
		matched++
		if t.sampler != nil && !t.sampler.Keep(p) {
			continue
		}
		kept = append(kept, *p)
	}
	t.scratch = kept[:0]
	t.matched.Add(int64(matched))
	t.counters.AddOut(len(kept))
	t.counters.AddDropped(len(batch) - len(kept))
	if len(kept) > 0 && t.sink != nil {
		t.sink.HandleBatch(kept)
	}
}

// HandlePacket runs a single packet through the tap — the legacy
// per-packet path, equivalent to a one-packet batch.
func (t *Tap) HandlePacket(p *packet.Packet) {
	t.single = append(t.single[:0], *p)
	t.HandleBatch(t.single)
}

// Monitor composes the assigner with per-link taps. Unmonitored links drop
// their traffic — exactly how the paper's study misses Internet2 flows in
// the semester datasets.
type Monitor struct {
	assigner *Assigner
	taps     [numLinks]*Tap
	mirrors  []pipeline.BatchSink

	// counters: In = packets offered, Out = packets on monitored links,
	// Dropped = packets on unmonitored links.
	counters pipeline.StageCounters

	// monitored collects the packets that had a tap, in arrival order,
	// for the mirrors (only populated when mirrors are registered);
	// single is the reusable one-packet buffer of the legacy path.
	monitored []packet.Packet
	single    []packet.Packet
}

// AddMirror registers a sink that receives every packet arriving on any
// monitored link, before tap filtering. Mirrors let several analysis
// pipelines (e.g. the sampling study's reduced captures) share one
// simulation while seeing exactly the traffic the monitor covers.
func (m *Monitor) AddMirror(s pipeline.BatchSink) { m.mirrors = append(m.mirrors, s) }

// NewMonitor builds a monitor over the given taps.
func NewMonitor(assigner *Assigner, taps ...*Tap) *Monitor {
	m := &Monitor{assigner: assigner}
	for _, t := range taps {
		m.taps[t.Link] = t
	}
	return m
}

// Tap returns the tap on a link, if monitored.
func (m *Monitor) Tap(l LinkID) (*Tap, bool) {
	if l >= numLinks || m.taps[l] == nil {
		return nil, false
	}
	return m.taps[l], true
}

// Dropped returns how many packets arrived on unmonitored links.
func (m *Monitor) Dropped() int { return m.counters.Dropped() }

// Counters exposes the monitor's stage counters.
func (m *Monitor) Counters() *pipeline.StageCounters { return &m.counters }

// HandleBatch implements pipeline.BatchSink: slice the batch into
// maximal runs of consecutive same-link packets and deliver each run to
// its tap as a sub-slice (no copying), then mirror the monitored traffic.
// Delivering runs in arrival order — rather than one fully-partitioned
// sub-batch per link — keeps the global packet order intact for sinks
// shared by several taps (the experiments' merged discoverer), so batched
// ingest observes exactly what per-packet ingest would.
func (m *Monitor) HandleBatch(batch []packet.Packet) {
	m.counters.AddIn(len(batch))
	mirror := len(m.mirrors) > 0
	if mirror {
		m.monitored = m.monitored[:0]
	}
	dropped := 0
	runStart, runLink, haveRun := 0, LinkID(0), false
	for i := range batch {
		link := m.assigner.Route(&batch[i])
		if m.taps[link] == nil {
			if haveRun {
				m.taps[runLink].HandleBatch(batch[runStart:i])
				haveRun = false
			}
			dropped++
			continue
		}
		if mirror {
			m.monitored = append(m.monitored, batch[i])
		}
		switch {
		case !haveRun:
			runStart, runLink, haveRun = i, link, true
		case link != runLink:
			m.taps[runLink].HandleBatch(batch[runStart:i])
			runStart, runLink = i, link
		}
	}
	if haveRun {
		m.taps[runLink].HandleBatch(batch[runStart:])
	}
	m.counters.AddDropped(dropped)
	m.counters.AddOut(len(batch) - dropped)
	if len(m.monitored) > 0 {
		for _, s := range m.mirrors {
			s.HandleBatch(m.monitored)
		}
	}
}

// HandlePacket implements the legacy per-packet Sink contract.
func (m *Monitor) HandlePacket(p *packet.Packet) {
	m.single = append(m.single[:0], *p)
	m.HandleBatch(m.single)
}

var (
	_ pipeline.BatchSink = (*Tap)(nil)
	_ pipeline.BatchSink = (*Monitor)(nil)
	_ Sink               = (*Tap)(nil)
	_ Sink               = (*Monitor)(nil)
)
