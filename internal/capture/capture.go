// Package capture implements the passive-monitoring side of the system:
// taps on peering links, packet filters, fixed-duration sampling, and
// multi-link composition. It reproduces the paper's LANDER-style collection
// (Section 3.2): capture TCP SYN / SYN-ACK / RST packets plus all UDP
// traffic at the monitored peerings.
//
// A Monitor receives every border packet from the traffic generator (or a
// replayed pcap trace), assigns it to a peering link, and forwards it
// through each monitored link's tap — filter first, then sampler — to the
// tap's sink (typically a core.PassiveDiscoverer, or a trace recorder).
package capture

import (
	"fmt"

	"servdisc/internal/filter"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// PaperFilter is the collection filter of the paper's infrastructure:
// TCP connection-control packets and all UDP.
const PaperFilter = "syn or synack or rst or udp"

// Sink consumes packets that pass a tap.
type Sink interface {
	HandlePacket(p *packet.Packet)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(p *packet.Packet)

// HandlePacket implements Sink.
func (f SinkFunc) HandlePacket(p *packet.Packet) { f(p) }

// LinkID identifies a peering link.
type LinkID uint8

// The university's three peerings (Section 5.2).
const (
	LinkCommercial1 LinkID = iota
	LinkCommercial2
	LinkInternet2
	numLinks
)

// String names the link as in Table 8.
func (l LinkID) String() string {
	switch l {
	case LinkCommercial1:
		return "Commercial 1"
	case LinkCommercial2:
		return "Commercial 2"
	case LinkInternet2:
		return "Internet2"
	default:
		return fmt.Sprintf("link(%d)", uint8(l))
	}
}

// Assigner routes each border packet to the peering it would traverse:
// Internet2 carries traffic of academic peers (a fixed address set); the
// rest hashes 2:1 across the commercial links, approximating the paper's
// observation that any single commercial link sees most servers.
type Assigner struct {
	campus   netaddr.Prefix
	academic map[netaddr.V4]struct{}
}

// NewAssigner builds an assigner. campus is the monitored address space;
// academic lists external addresses routed via Internet2.
func NewAssigner(campus netaddr.Prefix, academic []netaddr.V4) *Assigner {
	a := &Assigner{campus: campus, academic: make(map[netaddr.V4]struct{}, len(academic))}
	for _, x := range academic {
		a.academic[x] = struct{}{}
	}
	return a
}

// externalEndpoint picks the off-campus side of the packet, defaulting to
// the source when neither side is on campus.
func (a *Assigner) externalEndpoint(p *packet.Packet) netaddr.V4 {
	if !a.campus.Contains(p.IPv4.Src) {
		return p.IPv4.Src
	}
	return p.IPv4.Dst
}

// Route returns the link the packet traverses.
func (a *Assigner) Route(p *packet.Packet) LinkID {
	ext := a.externalEndpoint(p)
	if _, ok := a.academic[ext]; ok {
		return LinkInternet2
	}
	// Deterministic 2:1 split across the commercial peerings.
	h := uint32(ext)
	h ^= h >> 16
	h *= 0x45D9F3B
	h ^= h >> 13
	if h%3 < 2 {
		return LinkCommercial1
	}
	return LinkCommercial2
}

// Tap is one monitored link: a filter, an optional sampler, and a sink.
type Tap struct {
	Link    LinkID
	filter  *filter.Filter
	sampler Sampler
	sink    Sink

	// Stats observed by the tap.
	Seen, Matched, Delivered int
}

// NewTap builds a tap. filterExpr may be empty (capture everything);
// sampler may be nil (continuous capture).
func NewTap(link LinkID, filterExpr string, sampler Sampler, sink Sink) (*Tap, error) {
	f, err := filter.Compile(filterExpr)
	if err != nil {
		return nil, err
	}
	return &Tap{Link: link, filter: f, sampler: sampler, sink: sink}, nil
}

// HandlePacket runs the packet through filter and sampler.
func (t *Tap) HandlePacket(p *packet.Packet) {
	t.Seen++
	if !t.filter.Match(p) {
		return
	}
	t.Matched++
	if t.sampler != nil && !t.sampler.Keep(p) {
		return
	}
	t.Delivered++
	if t.sink != nil {
		t.sink.HandlePacket(p)
	}
}

// Monitor composes the assigner with per-link taps. Unmonitored links drop
// their traffic — exactly how the paper's study misses Internet2 flows in
// the semester datasets.
type Monitor struct {
	assigner *Assigner
	taps     [numLinks]*Tap
	mirrors  []Sink
	// Dropped counts packets on unmonitored links.
	Dropped int
}

// AddMirror registers a sink that receives every packet arriving on any
// monitored link, before tap filtering. Mirrors let several analysis
// pipelines (e.g. the sampling study's reduced captures) share one
// simulation while seeing exactly the traffic the monitor covers.
func (m *Monitor) AddMirror(s Sink) { m.mirrors = append(m.mirrors, s) }

// NewMonitor builds a monitor over the given taps.
func NewMonitor(assigner *Assigner, taps ...*Tap) *Monitor {
	m := &Monitor{assigner: assigner}
	for _, t := range taps {
		m.taps[t.Link] = t
	}
	return m
}

// Tap returns the tap on a link, if monitored.
func (m *Monitor) Tap(l LinkID) (*Tap, bool) {
	if l >= numLinks || m.taps[l] == nil {
		return nil, false
	}
	return m.taps[l], true
}

// HandlePacket implements the traffic.Sink contract.
func (m *Monitor) HandlePacket(p *packet.Packet) {
	link := m.assigner.Route(p)
	tap := m.taps[link]
	if tap == nil {
		m.Dropped++
		return
	}
	tap.HandlePacket(p)
	for _, s := range m.mirrors {
		s.HandlePacket(p)
	}
}
