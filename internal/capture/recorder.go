package capture

import (
	"errors"
	"io"

	"servdisc/internal/packet"
	"servdisc/internal/trace"
)

// Recorder is a Sink that archives packets to a pcap stream, so a simulated
// (or live) capture can be replayed later through the same analysis
// pipeline. Marshal errors are impossible for synthesized packets; write
// errors are retained and surfaced by Err.
type Recorder struct {
	w   *trace.Writer
	err error
	// Written counts successfully archived packets.
	Written int
}

// NewRecorder wraps a pcap writer.
func NewRecorder(w *trace.Writer) *Recorder {
	return &Recorder{w: w}
}

// HandlePacket implements Sink.
func (r *Recorder) HandlePacket(p *packet.Packet) {
	if r.err != nil {
		return
	}
	if err := r.w.WritePacket(p.Timestamp, p.Marshal()); err != nil {
		r.err = err
		return
	}
	r.Written++
}

// Err reports the first write failure, if any.
func (r *Recorder) Err() error { return r.err }

// Tee fans a packet stream out to several sinks.
type Tee []Sink

// HandlePacket implements Sink.
func (t Tee) HandlePacket(p *packet.Packet) {
	for _, s := range t {
		s.HandlePacket(p)
	}
}

// Replay streams a pcap reader into a sink, decoding each record with the
// appropriate link offset. It returns the number of packets delivered and
// the first decode or read error that is not clean EOF.
func Replay(r *trace.Reader, sink Sink) (int, error) {
	n := 0
	for {
		rec, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		var p *packet.Packet
		var derr error
		if r.LinkType() == trace.LinkTypeEthernet {
			p, derr = packet.Decode(rec.Data, rec.Time)
		} else {
			p, derr = packet.DecodeIP(rec.Data, rec.Time)
		}
		if derr != nil {
			// Skip undecodable records (truncated by snaplen); the
			// header-only capture keeps whole control packets, so this
			// only drops payload-bearing frames cut mid-header.
			continue
		}
		sink.HandlePacket(p)
		n++
	}
}
