package capture

import (
	"context"
	"errors"
	"io"

	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/trace"
)

// Recorder archives packets to a pcap stream, so a simulated (or live)
// capture can be replayed later through the same analysis pipeline.
// Marshal errors are impossible for synthesized packets; write errors are
// retained and surfaced by Err.
type Recorder struct {
	w   *trace.Writer
	err error
	// Written counts successfully archived packets.
	Written int
}

// NewRecorder wraps a pcap writer.
func NewRecorder(w *trace.Writer) *Recorder {
	return &Recorder{w: w}
}

// HandleBatch implements pipeline.BatchSink.
func (r *Recorder) HandleBatch(batch []packet.Packet) {
	if r.err != nil {
		return
	}
	for i := range batch {
		p := &batch[i]
		if err := r.w.WritePacket(p.Timestamp, p.Marshal()); err != nil {
			r.err = err
			return
		}
		r.Written++
	}
}

// HandlePacket implements the legacy per-packet Sink contract.
func (r *Recorder) HandlePacket(p *packet.Packet) {
	one := [1]packet.Packet{*p}
	r.HandleBatch(one[:])
}

// Err reports the first write failure, if any.
func (r *Recorder) Err() error { return r.err }

// Tee fans a batch out to several sinks (alias of pipeline.Fanout, kept
// under the name capture code has always used).
type Tee = pipeline.Fanout

// ReplayBatched streams a pcap reader into a batch sink, decoding each
// record with the appropriate link offset and delivering batches of up to
// batchSize packets (pipeline.DefaultBatchSize if batchSize <= 0). It
// returns the number of packets delivered and the first decode or read
// error that is not clean EOF. Cancelling ctx stops the replay at the
// next batch boundary and returns the context's error; packets delivered
// up to that point form an exact prefix of the trace.
func ReplayBatched(ctx context.Context, r *trace.Reader, sink pipeline.BatchSink, batchSize int) (int, error) {
	if batchSize <= 0 {
		batchSize = pipeline.DefaultBatchSize
	}
	batch := make([]packet.Packet, 0, batchSize)
	n := 0
	flush := func() {
		if len(batch) > 0 {
			sink.HandleBatch(batch)
			n += len(batch)
			batch = batch[:0]
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		rec, err := r.Next()
		if err != nil {
			flush()
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		var p *packet.Packet
		var derr error
		if r.LinkType() == trace.LinkTypeEthernet {
			p, derr = packet.Decode(rec.Data, rec.Time)
		} else {
			p, derr = packet.DecodeIP(rec.Data, rec.Time)
		}
		if derr != nil {
			// Skip undecodable records (truncated by snaplen); the
			// header-only capture keeps whole control packets, so this
			// only drops payload-bearing frames cut mid-header.
			continue
		}
		batch = append(batch, *p)
		if len(batch) >= batchSize {
			flush()
		}
	}
}

// Replay streams a pcap reader into a legacy per-packet sink. New code
// should use ReplayBatched.
func Replay(r *trace.Reader, sink Sink) (int, error) {
	return ReplayBatched(context.Background(), r, pipeline.Adapt(sink), 0)
}

var (
	_ pipeline.BatchSink = (*Recorder)(nil)
	_ Sink               = (*Recorder)(nil)
)
