package capture

import (
	"bytes"
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/trace"
)

var (
	campusPfx = netaddr.MustParsePrefix("128.125.0.0/16")
	server    = netaddr.MustParseV4("128.125.7.9")
	client    = netaddr.MustParseV4("64.1.2.3")
	academic  = netaddr.MustParseV4("192.12.0.5")
	tRef      = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	bld       = packet.NewBuilder(0)
)

func synAckTo(dst netaddr.V4, at time.Time) *packet.Packet {
	return bld.SynAck(at, packet.Endpoint{Addr: server, Port: 80}, packet.Endpoint{Addr: dst, Port: 40000}, 1, 2)
}

func TestAssignerRouting(t *testing.T) {
	a := NewAssigner(campusPfx, []netaddr.V4{academic})
	if got := a.Route(synAckTo(academic, tRef)); got != LinkInternet2 {
		t.Errorf("academic peer routed to %v", got)
	}
	// Commercial routing is deterministic per external address.
	l1 := a.Route(synAckTo(client, tRef))
	l2 := a.Route(synAckTo(client, tRef.Add(time.Hour)))
	if l1 != l2 {
		t.Error("routing not deterministic")
	}
	if l1 == LinkInternet2 {
		t.Error("non-academic peer on Internet2")
	}
	// The split should use both commercial links across many clients.
	counts := map[LinkID]int{}
	for i := 0; i < 3000; i++ {
		p := synAckTo(client+netaddr.V4(i*7), tRef)
		counts[a.Route(p)]++
	}
	if counts[LinkCommercial1] == 0 || counts[LinkCommercial2] == 0 {
		t.Fatalf("commercial split = %v", counts)
	}
	ratio := float64(counts[LinkCommercial1]) / float64(counts[LinkCommercial2])
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("C1:C2 ratio = %.2f, want ~2", ratio)
	}
}

func TestTapFilterAndCounts(t *testing.T) {
	var got []*packet.Packet
	tap, err := NewTap(LinkCommercial1, PaperFilter, nil, SinkFunc(func(p *packet.Packet) {
		got = append(got, p)
	}))
	if err != nil {
		t.Fatal(err)
	}
	// SYN-ACK passes; a bare ACK does not.
	tap.HandlePacket(synAckTo(client, tRef))
	ack := bld.TCPPacket(tRef, packet.Endpoint{Addr: server, Port: 80},
		packet.Endpoint{Addr: client, Port: 40000}, packet.FlagACK, 1, 2, nil)
	tap.HandlePacket(ack)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets", len(got))
	}
	if tap.Seen != 2 || tap.Matched != 1 || tap.Delivered != 1 {
		t.Errorf("counts = %d/%d/%d", tap.Seen, tap.Matched, tap.Delivered)
	}
}

func TestMonitorDropsUnmonitoredLink(t *testing.T) {
	a := NewAssigner(campusPfx, []netaddr.V4{academic})
	delivered := 0
	tapC1, err := NewTap(LinkCommercial1, "", nil, SinkFunc(func(*packet.Packet) { delivered++ }))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(a, tapC1)
	m.HandlePacket(synAckTo(academic, tRef)) // I2: unmonitored
	if m.Dropped != 1 || delivered != 0 {
		t.Errorf("dropped=%d delivered=%d", m.Dropped, delivered)
	}
	// Find a client that routes to C1.
	for i := 0; i < 100; i++ {
		c := client + netaddr.V4(i)
		if a.Route(synAckTo(c, tRef)) == LinkCommercial1 {
			m.HandlePacket(synAckTo(c, tRef))
			break
		}
	}
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
}

func TestFixedWindowSampler(t *testing.T) {
	s := NewFixedWindowSampler(tRef, 10*time.Minute)
	cases := []struct {
		off  time.Duration
		want bool
	}{
		{0, true},
		{9*time.Minute + 59*time.Second, true},
		{10 * time.Minute, false},
		{59 * time.Minute, false},
		{time.Hour, true},
		{time.Hour + 15*time.Minute, false},
		{25*time.Hour + 5*time.Minute, true},
	}
	for _, c := range cases {
		p := synAckTo(client, tRef.Add(c.off))
		if got := s.Keep(p); got != c.want {
			t.Errorf("Keep(+%v) = %v, want %v", c.off, got, c.want)
		}
	}
}

func TestFixedWindowFullCoverage(t *testing.T) {
	s := NewFixedWindowSampler(tRef, time.Hour)
	for off := time.Duration(0); off < 2*time.Hour; off += 7 * time.Minute {
		if !s.Keep(synAckTo(client, tRef.Add(off))) {
			t.Fatalf("full-window sampler dropped +%v", off)
		}
	}
}

func TestProbabilisticSampler(t *testing.T) {
	s := &ProbabilisticSampler{P: 0.3}
	kept := 0
	const total = 20000
	for i := 0; i < total; i++ {
		p := synAckTo(client+netaddr.V4(i), tRef.Add(time.Duration(i)*time.Millisecond))
		if s.Keep(p) {
			kept++
		}
	}
	frac := float64(kept) / total
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("keep fraction = %.3f", frac)
	}
	// Determinism: identical packet, identical decision.
	p := synAckTo(client, tRef)
	if s.Keep(p) != s.Keep(p) {
		t.Error("sampler not deterministic")
	}
	if !(&ProbabilisticSampler{P: 1}).Keep(p) {
		t.Error("P=1 dropped")
	}
	if (&ProbabilisticSampler{P: 0}).Keep(p) {
		t.Error("P=0 kept")
	}
}

func TestCountingSampler(t *testing.T) {
	cs := &CountingSampler{Inner: NewFixedWindowSampler(tRef, 30*time.Minute)}
	cs.Keep(synAckTo(client, tRef))
	cs.Keep(synAckTo(client, tRef.Add(45*time.Minute)))
	if cs.Kept != 1 || cs.Dropped != 1 {
		t.Errorf("kept=%d dropped=%d", cs.Kept, cs.Dropped)
	}
	all := &CountingSampler{}
	if !all.Keep(synAckTo(client, tRef)) {
		t.Error("nil inner should keep")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.LinkTypeRaw, 128)
	rec := NewRecorder(w)
	for i := 0; i < 10; i++ {
		rec.HandlePacket(synAckTo(client+netaddr.V4(i), tRef.Add(time.Duration(i)*time.Second)))
	}
	if rec.Err() != nil || rec.Written != 10 {
		t.Fatalf("written=%d err=%v", rec.Written, rec.Err())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []*packet.Packet
	n, err := Replay(r, SinkFunc(func(p *packet.Packet) { replayed = append(replayed, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || len(replayed) != 10 {
		t.Fatalf("replayed %d packets", n)
	}
	for i, p := range replayed {
		if p.IPv4.Src != server || !p.TCP.Flags.Has(packet.FlagSYN|packet.FlagACK) {
			t.Errorf("packet %d corrupted in round trip", i)
		}
	}
}

func TestTee(t *testing.T) {
	a, b := 0, 0
	tee := Tee{
		SinkFunc(func(*packet.Packet) { a++ }),
		SinkFunc(func(*packet.Packet) { b++ }),
	}
	tee.HandlePacket(synAckTo(client, tRef))
	if a != 1 || b != 1 {
		t.Errorf("tee delivered %d/%d", a, b)
	}
}

func TestNewTapBadFilter(t *testing.T) {
	if _, err := NewTap(LinkCommercial1, "bogus expr ((", nil, nil); err == nil {
		t.Error("bad filter accepted")
	}
}

func BenchmarkMonitorHandlePacket(b *testing.B) {
	a := NewAssigner(campusPfx, nil)
	tap1, _ := NewTap(LinkCommercial1, PaperFilter, nil, SinkFunc(func(*packet.Packet) {}))
	tap2, _ := NewTap(LinkCommercial2, PaperFilter, nil, SinkFunc(func(*packet.Packet) {}))
	m := NewMonitor(a, tap1, tap2)
	p := synAckTo(client, tRef)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.HandlePacket(p)
	}
}
