package capture

import (
	"bytes"
	"context"
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/trace"
)

var (
	campusPfx = netaddr.MustParsePrefix("128.125.0.0/16")
	server    = netaddr.MustParseV4("128.125.7.9")
	client    = netaddr.MustParseV4("64.1.2.3")
	academic  = netaddr.MustParseV4("192.12.0.5")
	tRef      = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	bld       = packet.NewBuilder(0)
)

func synAckTo(dst netaddr.V4, at time.Time) *packet.Packet {
	return bld.SynAck(at, packet.Endpoint{Addr: server, Port: 80}, packet.Endpoint{Addr: dst, Port: 40000}, 1, 2)
}

// collectSink gathers delivered packets for assertions.
type collectSink struct {
	pkts []packet.Packet
}

func (c *collectSink) HandleBatch(batch []packet.Packet) {
	c.pkts = append(c.pkts, batch...)
}

func TestAssignerRouting(t *testing.T) {
	a := NewAssigner(campusPfx, []netaddr.V4{academic})
	if got := a.Route(synAckTo(academic, tRef)); got != LinkInternet2 {
		t.Errorf("academic peer routed to %v", got)
	}
	// Commercial routing is deterministic per external address.
	l1 := a.Route(synAckTo(client, tRef))
	l2 := a.Route(synAckTo(client, tRef.Add(time.Hour)))
	if l1 != l2 {
		t.Error("routing not deterministic")
	}
	if l1 == LinkInternet2 {
		t.Error("non-academic peer on Internet2")
	}
	// The split should use both commercial links across many clients.
	counts := map[LinkID]int{}
	for i := 0; i < 3000; i++ {
		p := synAckTo(client+netaddr.V4(i*7), tRef)
		counts[a.Route(p)]++
	}
	if counts[LinkCommercial1] == 0 || counts[LinkCommercial2] == 0 {
		t.Fatalf("commercial split = %v", counts)
	}
	ratio := float64(counts[LinkCommercial1]) / float64(counts[LinkCommercial2])
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("C1:C2 ratio = %.2f, want ~2", ratio)
	}
}

func TestTapFilterAndCounts(t *testing.T) {
	sink := &collectSink{}
	tap, err := NewTap(LinkCommercial1, PaperFilter, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	// SYN-ACK passes; a bare ACK does not.
	tap.HandlePacket(synAckTo(client, tRef))
	ack := bld.TCPPacket(tRef, packet.Endpoint{Addr: server, Port: 80},
		packet.Endpoint{Addr: client, Port: 40000}, packet.FlagACK, 1, 2, nil)
	tap.HandlePacket(ack)
	if len(sink.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(sink.pkts))
	}
	if tap.Seen() != 2 || tap.Matched() != 1 || tap.Delivered() != 1 {
		t.Errorf("counts = %d/%d/%d", tap.Seen(), tap.Matched(), tap.Delivered())
	}
	if c := tap.Counters(); c.Dropped() != 1 {
		t.Errorf("dropped = %d", c.Dropped())
	}
}

func TestTapHandleBatchMatchesPerPacket(t *testing.T) {
	mkBatch := func() []packet.Packet {
		var batch []packet.Packet
		for i := 0; i < 40; i++ {
			p := synAckTo(client+netaddr.V4(i), tRef.Add(time.Duration(i)*time.Second))
			if i%4 == 3 { // every fourth packet is a non-matching ACK
				p = bld.TCPPacket(p.Timestamp, packet.Endpoint{Addr: server, Port: 80},
					packet.Endpoint{Addr: client, Port: 40000}, packet.FlagACK, 1, 2, nil)
			}
			batch = append(batch, *p)
		}
		return batch
	}

	batchSink := &collectSink{}
	batchTap, err := NewTap(LinkCommercial1, PaperFilter, NewFixedWindowSampler(tRef, 30*time.Minute), batchSink)
	if err != nil {
		t.Fatal(err)
	}
	batchTap.HandleBatch(mkBatch())

	pktSink := &collectSink{}
	pktTap, err := NewTap(LinkCommercial1, PaperFilter, NewFixedWindowSampler(tRef, 30*time.Minute), pktSink)
	if err != nil {
		t.Fatal(err)
	}
	batch := mkBatch()
	for i := range batch {
		pktTap.HandlePacket(&batch[i])
	}

	if len(batchSink.pkts) != len(pktSink.pkts) {
		t.Fatalf("batch path delivered %d, per-packet path %d", len(batchSink.pkts), len(pktSink.pkts))
	}
	for i := range batchSink.pkts {
		if batchSink.pkts[i].IPv4.Dst != pktSink.pkts[i].IPv4.Dst {
			t.Fatalf("packet %d differs between paths", i)
		}
	}
	if batchTap.Seen() != pktTap.Seen() || batchTap.Matched() != pktTap.Matched() ||
		batchTap.Delivered() != pktTap.Delivered() {
		t.Errorf("counter mismatch: batch %d/%d/%d vs per-packet %d/%d/%d",
			batchTap.Seen(), batchTap.Matched(), batchTap.Delivered(),
			pktTap.Seen(), pktTap.Matched(), pktTap.Delivered())
	}
}

func TestMonitorDropsUnmonitoredLink(t *testing.T) {
	a := NewAssigner(campusPfx, []netaddr.V4{academic})
	delivered := 0
	tapC1, err := NewTap(LinkCommercial1, "", nil, pipeline.BatchFunc(func(b []packet.Packet) { delivered += len(b) }))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(a, tapC1)
	m.HandlePacket(synAckTo(academic, tRef)) // I2: unmonitored
	if m.Dropped() != 1 || delivered != 0 {
		t.Errorf("dropped=%d delivered=%d", m.Dropped(), delivered)
	}
	// Find a client that routes to C1.
	for i := 0; i < 100; i++ {
		c := client + netaddr.V4(i)
		if a.Route(synAckTo(c, tRef)) == LinkCommercial1 {
			m.HandlePacket(synAckTo(c, tRef))
			break
		}
	}
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}
}

func TestMonitorBatchRoutingAndMirrors(t *testing.T) {
	a := NewAssigner(campusPfx, []netaddr.V4{academic})
	c1, c2, mirror := &collectSink{}, &collectSink{}, &collectSink{}
	tap1, err := NewTap(LinkCommercial1, "", nil, c1)
	if err != nil {
		t.Fatal(err)
	}
	tap2, err := NewTap(LinkCommercial2, "", nil, c2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(a, tap1, tap2)
	m.AddMirror(mirror)

	var batch []packet.Packet
	batch = append(batch, *synAckTo(academic, tRef)) // dropped: unmonitored I2
	for i := 0; i < 30; i++ {
		batch = append(batch, *synAckTo(client+netaddr.V4(i*7), tRef.Add(time.Duration(i)*time.Second)))
	}
	m.HandleBatch(batch)

	if m.Dropped() != 1 {
		t.Errorf("dropped = %d", m.Dropped())
	}
	if got := len(c1.pkts) + len(c2.pkts); got != 30 {
		t.Errorf("taps saw %d packets, want 30", got)
	}
	if len(mirror.pkts) != 30 {
		t.Errorf("mirror saw %d packets, want 30 (monitored only)", len(mirror.pkts))
	}
	// Mirror preserves arrival order of the monitored sub-batch.
	for i := 1; i < len(mirror.pkts); i++ {
		if mirror.pkts[i].Timestamp.Before(mirror.pkts[i-1].Timestamp) {
			t.Fatal("mirror reordered packets")
		}
	}
}

func TestMonitorSharedSinkPreservesOrder(t *testing.T) {
	// When one sink is behind several taps (the experiments' merged
	// discoverer), batched delivery must preserve global arrival order
	// even for batches interleaving links — otherwise FirstSeen and the
	// activity trail diverge from a per-packet run.
	a := NewAssigner(campusPfx, nil)
	shared := &collectSink{}
	tap1, err := NewTap(LinkCommercial1, "", nil, shared)
	if err != nil {
		t.Fatal(err)
	}
	tap2, err := NewTap(LinkCommercial2, "", nil, shared)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(a, tap1, tap2)

	// Find clients on different links, then interleave them.
	var c1, c2 netaddr.V4
	for i := 0; i < 200 && (c1 == 0 || c2 == 0); i++ {
		c := client + netaddr.V4(i)
		if a.Route(synAckTo(c, tRef)) == LinkCommercial1 {
			if c1 == 0 {
				c1 = c
			}
		} else if c2 == 0 {
			c2 = c
		}
	}
	if c1 == 0 || c2 == 0 {
		t.Fatal("could not find clients on both links")
	}
	var batch []packet.Packet
	for i := 0; i < 20; i++ {
		dst := c1
		if i%2 == 1 {
			dst = c2
		}
		batch = append(batch, *synAckTo(dst, tRef.Add(time.Duration(i)*time.Second)))
	}
	m.HandleBatch(batch)
	if len(shared.pkts) != 20 {
		t.Fatalf("shared sink got %d packets", len(shared.pkts))
	}
	for i := range shared.pkts {
		if !shared.pkts[i].Timestamp.Equal(batch[i].Timestamp) {
			t.Fatalf("packet %d out of order: %v", i, shared.pkts[i].Timestamp)
		}
	}
}

func TestReplayBatchedCancel(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.LinkTypeRaw, 128)
	rec := NewRecorder(w)
	for i := 0; i < 10; i++ {
		rec.HandlePacket(synAckTo(client+netaddr.V4(i), tRef.Add(time.Duration(i)*time.Second)))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := ReplayBatched(ctx, r, &collectSink{}, 4)
	if err == nil || n != 0 {
		t.Fatalf("cancelled replay delivered %d packets, err=%v", n, err)
	}
}

func TestFixedWindowSampler(t *testing.T) {
	s := NewFixedWindowSampler(tRef, 10*time.Minute)
	cases := []struct {
		off  time.Duration
		want bool
	}{
		{0, true},
		{9*time.Minute + 59*time.Second, true},
		{10 * time.Minute, false},
		{59 * time.Minute, false},
		{time.Hour, true},
		{time.Hour + 15*time.Minute, false},
		{25*time.Hour + 5*time.Minute, true},
	}
	for _, c := range cases {
		p := synAckTo(client, tRef.Add(c.off))
		if got := s.Keep(p); got != c.want {
			t.Errorf("Keep(+%v) = %v, want %v", c.off, got, c.want)
		}
	}
}

func TestFixedWindowFullCoverage(t *testing.T) {
	s := NewFixedWindowSampler(tRef, time.Hour)
	for off := time.Duration(0); off < 2*time.Hour; off += 7 * time.Minute {
		if !s.Keep(synAckTo(client, tRef.Add(off))) {
			t.Fatalf("full-window sampler dropped +%v", off)
		}
	}
}

func TestProbabilisticSampler(t *testing.T) {
	s := &ProbabilisticSampler{P: 0.3}
	kept := 0
	const total = 20000
	for i := 0; i < total; i++ {
		p := synAckTo(client+netaddr.V4(i), tRef.Add(time.Duration(i)*time.Millisecond))
		if s.Keep(p) {
			kept++
		}
	}
	frac := float64(kept) / total
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("keep fraction = %.3f", frac)
	}
	// Determinism: identical packet, identical decision.
	p := synAckTo(client, tRef)
	if s.Keep(p) != s.Keep(p) {
		t.Error("sampler not deterministic")
	}
	if !(&ProbabilisticSampler{P: 1}).Keep(p) {
		t.Error("P=1 dropped")
	}
	if (&ProbabilisticSampler{P: 0}).Keep(p) {
		t.Error("P=0 kept")
	}
}

func TestCountingSampler(t *testing.T) {
	cs := &CountingSampler{Inner: NewFixedWindowSampler(tRef, 30*time.Minute)}
	cs.Keep(synAckTo(client, tRef))
	cs.Keep(synAckTo(client, tRef.Add(45*time.Minute)))
	if cs.Kept != 1 || cs.Dropped != 1 {
		t.Errorf("kept=%d dropped=%d", cs.Kept, cs.Dropped)
	}
	all := &CountingSampler{}
	if !all.Keep(synAckTo(client, tRef)) {
		t.Error("nil inner should keep")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.LinkTypeRaw, 128)
	rec := NewRecorder(w)
	var batch []packet.Packet
	for i := 0; i < 10; i++ {
		batch = append(batch, *synAckTo(client+netaddr.V4(i), tRef.Add(time.Duration(i)*time.Second)))
	}
	rec.HandleBatch(batch)
	if rec.Err() != nil || rec.Written != 10 {
		t.Fatalf("written=%d err=%v", rec.Written, rec.Err())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := &collectSink{}
	n, err := ReplayBatched(context.Background(), r, replayed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || len(replayed.pkts) != 10 {
		t.Fatalf("replayed %d packets", n)
	}
	for i := range replayed.pkts {
		p := &replayed.pkts[i]
		if p.IPv4.Src != server || !p.TCP.Flags.Has(packet.FlagSYN|packet.FlagACK) {
			t.Errorf("packet %d corrupted in round trip", i)
		}
	}
}

func TestReplayLegacySink(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.LinkTypeRaw, 128)
	rec := NewRecorder(w)
	for i := 0; i < 5; i++ {
		rec.HandlePacket(synAckTo(client+netaddr.V4(i), tRef.Add(time.Duration(i)*time.Second)))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []*packet.Packet
	n, err := Replay(r, SinkFunc(func(p *packet.Packet) { replayed = append(replayed, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || len(replayed) != 5 {
		t.Fatalf("replayed %d packets", n)
	}
}

func TestTee(t *testing.T) {
	a, b := 0, 0
	tee := Tee{
		pipeline.BatchFunc(func(batch []packet.Packet) { a += len(batch) }),
		pipeline.BatchFunc(func(batch []packet.Packet) { b += len(batch) }),
	}
	one := [1]packet.Packet{*synAckTo(client, tRef)}
	tee.HandleBatch(one[:])
	if a != 1 || b != 1 {
		t.Errorf("tee delivered %d/%d", a, b)
	}
}

func TestNewTapBadFilter(t *testing.T) {
	if _, err := NewTap(LinkCommercial1, "bogus expr ((", nil, nil); err == nil {
		t.Error("bad filter accepted")
	}
}

func BenchmarkMonitorHandlePacket(b *testing.B) {
	a := NewAssigner(campusPfx, nil)
	sink := pipeline.BatchFunc(func([]packet.Packet) {})
	tap1, _ := NewTap(LinkCommercial1, PaperFilter, nil, sink)
	tap2, _ := NewTap(LinkCommercial2, PaperFilter, nil, sink)
	m := NewMonitor(a, tap1, tap2)
	p := synAckTo(client, tRef)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.HandlePacket(p)
	}
}

func BenchmarkMonitorHandleBatch(b *testing.B) {
	a := NewAssigner(campusPfx, nil)
	sink := pipeline.BatchFunc(func([]packet.Packet) {})
	tap1, _ := NewTap(LinkCommercial1, PaperFilter, nil, sink)
	tap2, _ := NewTap(LinkCommercial2, PaperFilter, nil, sink)
	m := NewMonitor(a, tap1, tap2)
	batch := make([]packet.Packet, 0, 256)
	for i := 0; i < 256; i++ {
		batch = append(batch, *synAckTo(client+netaddr.V4(i), tRef))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.HandleBatch(batch)
	}
}
