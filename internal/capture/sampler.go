package capture

import (
	"time"

	"servdisc/internal/packet"
)

// Sampler decides which filtered packets a tap keeps. Implementations model
// the reduced-capture regimes of Section 5.3.
type Sampler interface {
	// Keep reports whether the packet enters the capture.
	Keep(p *packet.Packet) bool
}

// FixedWindowSampler keeps only packets whose timestamp falls within the
// first Window of every Period — the paper's "sample the first N minutes of
// each hour" strategy (Figure 8 uses 2, 5, 10 and 30 minutes of each hour).
type FixedWindowSampler struct {
	// Period is the cycle length (an hour in the paper).
	Period time.Duration
	// Window is the portion captured at the start of each period.
	Window time.Duration
	// Origin anchors period boundaries; the dataset start time.
	Origin time.Time
}

// NewFixedWindowSampler builds an hourly sampler keeping the first window
// of each hour from origin.
func NewFixedWindowSampler(origin time.Time, window time.Duration) *FixedWindowSampler {
	return &FixedWindowSampler{Period: time.Hour, Window: window, Origin: origin}
}

// Keep implements Sampler.
func (s *FixedWindowSampler) Keep(p *packet.Packet) bool {
	if s.Window >= s.Period {
		return true
	}
	off := p.Timestamp.Sub(s.Origin) % s.Period
	if off < 0 {
		off += s.Period
	}
	return off < s.Window
}

// ProbabilisticSampler keeps each packet independently with probability P,
// the hardware-friendly alternative Section 5.3 mentions as future work.
// Sampling decisions derive from packet content, not an RNG stream, so
// replaying a trace keeps the same packets.
type ProbabilisticSampler struct {
	// P is the keep probability in [0, 1].
	P float64
}

// Keep implements Sampler. The decision hashes flow identity and timestamp
// so it is deterministic per packet.
func (s *ProbabilisticSampler) Keep(p *packet.Packet) bool {
	if s.P >= 1 {
		return true
	}
	if s.P <= 0 {
		return false
	}
	h := uint64(p.IPv4.Src)<<32 | uint64(p.IPv4.Dst)
	h ^= uint64(p.Timestamp.UnixNano())
	if p.Has(packet.LayerTypeTCP) {
		h ^= uint64(p.TCP.SrcPort)<<48 | uint64(p.TCP.DstPort)<<32 | uint64(p.TCP.Seq)
	} else if p.Has(packet.LayerTypeUDP) {
		h ^= uint64(p.UDP.SrcPort)<<48 | uint64(p.UDP.DstPort)<<32
	}
	// splitmix64 finalizer.
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11)/(1<<53) < s.P
}

// CountingSampler wraps another sampler and tallies keep/drop decisions;
// nil inner means keep-all.
type CountingSampler struct {
	Inner         Sampler
	Kept, Dropped int
}

// Keep implements Sampler.
func (s *CountingSampler) Keep(p *packet.Packet) bool {
	keep := s.Inner == nil || s.Inner.Keep(p)
	if keep {
		s.Kept++
	} else {
		s.Dropped++
	}
	return keep
}

var (
	_ Sampler = (*FixedWindowSampler)(nil)
	_ Sampler = (*ProbabilisticSampler)(nil)
	_ Sampler = (*CountingSampler)(nil)
)
