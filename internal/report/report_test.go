package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"servdisc/internal/stats"
)

var t0 = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)

func TestTableRender(t *testing.T) {
	tab := NewTable("Table X: demo", "name", "count", "pct")
	tab.AddRow("alpha", 12, "40%")
	tab.AddRow("beta-longer-name", 3, "10%")
	out := tab.Render()
	if !strings.Contains(out, "Table X: demo") {
		t.Error("caption missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // caption, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: each line has the same prefix width up to col 2.
	if !strings.HasPrefix(lines[3], "alpha            ") {
		t.Errorf("row not padded: %q", lines[3])
	}
	if len(tab.Rows()) != 2 {
		t.Errorf("Rows = %d", len(tab.Rows()))
	}
}

func mkSeries(name string, vals ...float64) *stats.Series {
	s := stats.NewSeries(name)
	for i, v := range vals {
		s.Add(t0.Add(time.Duration(i)*time.Hour), v)
	}
	return s
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("fig", time.Hour,
		mkSeries("a", 1, 2, 3),
		mkSeries("b", 10, 20, 30))
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + 3 samples
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasSuffix(lines[1], "1.000,10.000") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[3], "3.000,30.000") {
		t.Errorf("row 3 = %q", lines[3])
	}
}

func TestFigureCSVEmpty(t *testing.T) {
	f := NewFigure("empty", time.Hour)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "time" {
		t.Errorf("empty CSV = %q", buf.String())
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("fig caption", time.Hour, mkSeries("curve", 0, 50, 100))
	out := f.Render()
	if !strings.Contains(out, "fig caption") || !strings.Contains(out, "final=100.0") {
		t.Errorf("render:\n%s", out)
	}
	empty := NewFigure("none", time.Hour).Render()
	if !strings.Contains(empty, "no data") {
		t.Errorf("empty render = %q", empty)
	}
}

func TestCountTable(t *testing.T) {
	c := stats.NewCounter()
	c.Inc("web", 90)
	c.Inc("ssh", 10)
	out := CountTable("services", c).Render()
	if !strings.Contains(out, "90%") || !strings.Contains(out, "total") {
		t.Errorf("count table:\n%s", out)
	}
	// Largest first.
	if strings.Index(out, "web") > strings.Index(out, "ssh") {
		t.Error("rows not sorted by count")
	}
}
