// Package report renders experiment results: fixed-width ASCII tables in
// the paper's style and CSV series files for the figures (one column per
// curve, gnuplot/spreadsheet-ready).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"servdisc/internal/stats"
)

// Table is a simple fixed-width table with a caption.
type Table struct {
	Caption string
	Headers []string
	rows    [][]string
}

// NewTable builds a table with the given caption and column headers.
func NewTable(caption string, headers ...string) *Table {
	return &Table{Caption: caption, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

// Rows returns the formatted rows.
func (t *Table) Rows() [][]string { return t.rows }

// Render writes the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Figure is a set of time series sharing one x-axis.
type Figure struct {
	Caption string
	Series  []*stats.Series
	// Step controls resampling for rendering and CSV output.
	Step time.Duration
}

// NewFigure builds a figure.
func NewFigure(caption string, step time.Duration, series ...*stats.Series) *Figure {
	return &Figure{Caption: caption, Step: step, Series: series}
}

// bounds finds the time range spanned by all series.
func (f *Figure) bounds() (time.Time, time.Time, bool) {
	var lo, hi time.Time
	found := false
	for _, s := range f.Series {
		pts := s.Points()
		if len(pts) == 0 {
			continue
		}
		if !found || pts[0].T.Before(lo) {
			lo = pts[0].T
		}
		if !found || pts[len(pts)-1].T.After(hi) {
			hi = pts[len(pts)-1].T
		}
		found = true
	}
	return lo, hi, found
}

// WriteCSV emits "time,<series names...>" rows resampled at Step.
func (f *Figure) WriteCSV(w io.Writer) error {
	lo, hi, ok := f.bounds()
	if !ok {
		_, err := fmt.Fprintln(w, "time")
		return err
	}
	names := make([]string, len(f.Series))
	for i, s := range f.Series {
		names[i] = s.Name
	}
	if _, err := fmt.Fprintf(w, "time,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	step := f.Step
	if step <= 0 {
		step = time.Hour
	}
	for t := lo; !t.After(hi); t = t.Add(step) {
		cells := make([]string, 0, len(f.Series)+1)
		cells = append(cells, t.UTC().Format(time.RFC3339))
		for _, s := range f.Series {
			cells = append(cells, fmt.Sprintf("%.3f", s.At(t)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Render summarizes each curve textually: final value plus a coarse sparkline.
func (f *Figure) Render() string {
	var b strings.Builder
	if f.Caption != "" {
		fmt.Fprintf(&b, "%s\n", f.Caption)
	}
	lo, hi, ok := f.bounds()
	if !ok {
		b.WriteString("(no data)\n")
		return b.String()
	}
	span := hi.Sub(lo)
	const buckets = 24
	// Longest name for alignment.
	width := 0
	for _, s := range f.Series {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	// Global max for scaling.
	var max float64
	for _, s := range f.Series {
		if v := s.Last(); v > max {
			max = v
		}
	}
	marks := []rune(" .:-=+*#%@")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-*s |", width, s.Name)
		for i := 0; i < buckets; i++ {
			t := lo.Add(span * time.Duration(i) / time.Duration(buckets-1))
			v := s.At(t)
			idx := 0
			if max > 0 {
				idx = int(v / max * float64(len(marks)-1))
			}
			if idx >= len(marks) {
				idx = len(marks) - 1
			}
			b.WriteRune(marks[idx])
		}
		fmt.Fprintf(&b, "| final=%.1f\n", s.Last())
	}
	fmt.Fprintf(&b, "%-*s  %s .. %s\n", width, "", lo.UTC().Format("01-02 15:04"), hi.UTC().Format("01-02 15:04"))
	return b.String()
}

// CountTable renders a stats.Counter as a two-column table with percents of
// the total, in the paper's percentage style.
func CountTable(caption string, c *stats.Counter) *Table {
	t := NewTable(caption, "category", "count", "percent")
	total := c.Total()
	keys := c.Keys()
	sort.Slice(keys, func(i, j int) bool { return c.Get(keys[i]) > c.Get(keys[j]) })
	for _, k := range keys {
		t.AddRow(k, c.Get(k), stats.Percent(c.Get(k), total))
	}
	t.AddRow("total", total, "100%")
	return t
}
