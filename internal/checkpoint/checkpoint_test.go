package checkpoint

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/federate"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
	"servdisc/internal/stats"
)

var (
	testCampus = netaddr.MustParsePrefix("128.125.0.0/16")
	testUDP    = []uint16{53, 123}
	testTCP    = []uint16{22, 80, 443}
)

// testTrace synthesizes a deterministic border-traffic stream covering
// every checkpointed state dimension: TCP and UDP services accumulating
// flows and distinct clients, an above-threshold scanner (dsts + RSTs),
// a below-threshold one, and noise.
func testTrace(seed uint64, n int) []packet.Packet {
	rng := stats.NewRNG(seed).Derive("checkpoint-test")
	bld := packet.NewBuilder(0)
	base := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)

	servers := make([]netaddr.V4, 30)
	for i := range servers {
		servers[i] = testCampus.Base() + netaddr.V4(256+i)
	}
	ports := []uint16{22, 80, 443, 3306}
	ext := netaddr.MustParseV4("64.0.0.0")

	var out []packet.Packet
	add := func(p *packet.Packet) { out = append(out, *p) }

	scans := []struct {
		src        netaddr.V4
		dsts, rsts int
		off        time.Duration
	}{
		{netaddr.MustParseV4("211.1.1.1"), 130, 115, 1 * time.Hour},
		{netaddr.MustParseV4("211.4.4.4"), 60, 50, 2 * time.Hour}, // below threshold
	}
	for _, sc := range scans {
		st := base.Add(sc.off)
		for i := 0; i < sc.dsts; i++ {
			dst := testCampus.Base() + netaddr.V4(1000+i)
			add(bld.Syn(st.Add(time.Duration(i)*time.Millisecond),
				packet.Endpoint{Addr: sc.src, Port: 40000}, packet.Endpoint{Addr: dst, Port: 80}, uint32(i)))
			if i < sc.rsts {
				add(bld.Rst(st.Add(time.Duration(i)*time.Millisecond+500*time.Microsecond),
					packet.Endpoint{Addr: dst, Port: 80}, packet.Endpoint{Addr: sc.src, Port: 40000}, uint32(i)+1))
			}
		}
	}
	for i := 0; i < n; i++ {
		now := base.Add(time.Duration(float64(20*time.Hour) * float64(i) / float64(n)))
		srv := servers[rng.Intn(len(servers))]
		cli := ext + netaddr.V4(rng.Intn(3000))
		port := ports[rng.Intn(len(ports))]
		switch rng.Intn(8) {
		case 0, 1, 2, 3: // completed TCP handshake
			add(bld.Syn(now, packet.Endpoint{Addr: cli, Port: 33000}, packet.Endpoint{Addr: srv, Port: port}, 7))
			add(bld.SynAck(now.Add(500*time.Microsecond), packet.Endpoint{Addr: srv, Port: port},
				packet.Endpoint{Addr: cli, Port: 33000}, 9, 8))
		case 4: // refused connection
			add(bld.Syn(now, packet.Endpoint{Addr: cli, Port: 33001}, packet.Endpoint{Addr: srv, Port: 9999}, 7))
			add(bld.Rst(now.Add(500*time.Microsecond), packet.Endpoint{Addr: srv, Port: 9999},
				packet.Endpoint{Addr: cli, Port: 33001}, 8))
		case 5: // UDP service reply
			add(bld.UDPPacket(now, packet.Endpoint{Addr: cli, Port: 34000},
				packet.Endpoint{Addr: srv, Port: 53}, []byte("q")))
			add(bld.UDPPacket(now.Add(500*time.Microsecond), packet.Endpoint{Addr: srv, Port: 53},
				packet.Endpoint{Addr: cli, Port: 34000}, []byte("r")))
		case 6: // bare ACK noise
			add(bld.TCPPacket(now, packet.Endpoint{Addr: srv, Port: port},
				packet.Endpoint{Addr: cli, Port: 33000}, packet.FlagACK, 1, 2, nil))
		case 7: // campus-internal SYN
			add(bld.Syn(now, packet.Endpoint{Addr: testCampus.Base() + 5, Port: 40000},
				packet.Endpoint{Addr: srv, Port: port}, 3))
		}
	}
	return out
}

// testEngine is the slice of both engine types the tests drive.
type testEngine interface {
	Engine
	HandleBatch([]packet.Packet)
	Flush()
	Run(ctx context.Context)
	Close()
	Snapshot() *core.Inventory
}

func feed(eng testEngine, pkts []packet.Packet) {
	const sz = 97
	for off := 0; off < len(pkts); off += sz {
		end := off + sz
		if end > len(pkts) {
			end = len(pkts)
		}
		eng.HandleBatch(pkts[off:end])
	}
	eng.Flush()
}

// testReport synthesizes one sweep report (hybrid cases).
func testReport(id int, at time.Time) *probe.ScanReport {
	return &probe.ScanReport{
		ID: id, Started: at, Finished: at.Add(30 * time.Minute),
		Summaries: []probe.AddrSummary{
			{Addr: testCampus.Base() + 256, Time: at.Add(time.Minute), Open: []uint16{80, 443}},
			{Addr: testCampus.Base() + 257, Time: at.Add(2 * time.Minute), Closed: 2, Filtered: 1},
		},
	}
}

// TestKillAndRestoreEquivalence is the subsystem's core guarantee: kill
// a checkpointed engine mid-campaign, restore a fresh one from disk,
// replay the remaining traffic, and the final Dump is byte-identical to
// a never-killed engine over the same stream — across shard counts,
// across a shard-count CHANGE at restore, passive-only and hybrid, with
// the engines idle or live.
func TestKillAndRestoreEquivalence(t *testing.T) {
	trace := testTrace(1, 5000)
	cases := []struct {
		name                 string
		srcShards, dstShards int
		hybrid               bool
		live                 bool
	}{
		{"passive-1", 1, 1, false, false},
		{"passive-2-live", 2, 2, false, true},
		{"passive-8to2", 8, 2, false, false},
		{"hybrid-1", 1, 1, true, false},
		{"hybrid-2to8", 2, 8, true, false},
		{"hybrid-8-live", 8, 8, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func(shards int) testEngine {
				if tc.hybrid {
					return core.NewHybrid(testCampus, testUDP, shards, testTCP)
				}
				return core.NewShardedPassive(testCampus, testUDP, shards)
			}
			report := func(eng testEngine, id int, at time.Time) {
				if h, ok := eng.(*core.Hybrid); ok {
					h.AddReport(testReport(id, at))
					h.Flush()
				}
			}
			base := trace[0].Timestamp

			// Reference: one engine sees the whole campaign, never killed.
			ref := build(tc.srcShards)
			if tc.live {
				ref.Run(context.Background())
				defer ref.Close()
			}
			feed(ref, trace[:2000])
			report(ref, 1, base.Add(time.Hour))
			feed(ref, trace[2000:4000])
			report(ref, 2, base.Add(2*time.Hour))
			feed(ref, trace[4000:])
			want := ref.Snapshot().Dump()

			// Campaign engine: checkpointed twice, then killed with
			// un-checkpointed traffic in flight.
			dir := t.TempDir()
			victim := build(tc.srcShards)
			if tc.live {
				victim.Run(context.Background())
			}
			w, err := NewWriter(victim, dir, Options{})
			if err != nil {
				t.Fatalf("NewWriter: %v", err)
			}
			feed(victim, trace[:2000])
			report(victim, 1, base.Add(time.Hour))
			if res, err := w.Checkpoint(context.Background()); err != nil {
				t.Fatalf("baseline checkpoint: %v", err)
			} else if !res.Full {
				t.Fatalf("first checkpoint not a baseline: %+v", res)
			}
			feed(victim, trace[2000:4000])
			report(victim, 2, base.Add(2*time.Hour))
			res, err := w.Checkpoint(context.Background())
			if err != nil {
				t.Fatalf("delta checkpoint: %v", err)
			}
			if res.Full {
				t.Fatalf("second checkpoint should be incremental: %+v", res)
			}
			feed(victim, trace[4000:4500]) // lost in the crash
			victim.Close()                 // the "kill"

			// Restore into a fresh engine (possibly different shard count)
			// and replay the trace from the checkpointed position.
			restored := build(tc.dstShards)
			man, err := Restore(dir, restored)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if man == nil {
				t.Fatal("Restore found no manifest")
			}
			if tc.live {
				restored.Run(context.Background())
				defer restored.Close()
			}
			pos := restored.Snapshot().Packets()
			if pos != 4000 {
				t.Fatalf("restored packet position = %d, want 4000", pos)
			}
			feed(restored, trace[pos:])
			got := restored.Snapshot().Dump()
			if !bytes.Equal(want, got) {
				t.Fatalf("restored dump differs from never-killed reference\nwant %d bytes, got %d\nfirst diff near: %s",
					len(want), len(got), firstDiff(want, got))
			}
		})
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			return string(a[lo:min(i+60, len(a))]) + " <-> " + string(b[lo:min(i+60, len(b))])
		}
	}
	return "length mismatch only"
}

// TestDeltaChainCompactionAndPruning drives many checkpoints through a
// short MaxDeltas, asserting the chain folds into fresh baselines, stale
// chunk files are pruned, and a restore over the compacted chain is
// still exact.
func TestDeltaChainCompactionAndPruning(t *testing.T) {
	trace := testTrace(2, 4000)
	dir := t.TempDir()
	eng := core.NewShardedPassive(testCampus, testUDP, 2)
	w, err := NewWriter(eng, dir, Options{MaxDeltas: 2})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	sawCompaction := false
	step := len(trace) / 8
	for i := 0; i < 8; i++ {
		feed(eng, trace[i*step:(i+1)*step])
		res, err := w.Checkpoint(context.Background())
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if res.Compacted {
			sawCompaction = true
			if !res.Full {
				t.Fatalf("checkpoint %d: compacted but not full", i)
			}
		}
	}
	if !sawCompaction {
		t.Fatal("no compaction in 8 checkpoints with MaxDeltas=2")
	}

	man, err := DecodeManifest(mustRead(t, filepath.Join(dir, ManifestName)))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(man.Chunks) > 3 { // baseline + MaxDeltas
		t.Fatalf("chain has %d chunks, want <= 3", len(man.Chunks))
	}
	live := make(map[string]bool)
	for _, ci := range man.Chunks {
		live[ci.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") && !live[e.Name()] {
			t.Fatalf("unreferenced chunk %q not pruned", e.Name())
		}
	}

	restored := core.NewShardedPassive(testCampus, testUDP, 2)
	if _, err := Restore(dir, restored); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	ref := core.NewShardedPassive(testCampus, testUDP, 2)
	feed(ref, trace[:8*step])
	if !bytes.Equal(ref.Snapshot().Dump(), restored.Snapshot().Dump()) {
		t.Fatal("restore over compacted chain differs from reference")
	}
}

// TestCheckpointSkipsWhenUnchanged: no traffic between checkpoints means
// no bytes written and no manifest churn.
func TestCheckpointSkipsWhenUnchanged(t *testing.T) {
	dir := t.TempDir()
	eng := core.NewShardedPassive(testCampus, testUDP, 4)
	w, err := NewWriter(eng, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feed(eng, testTrace(3, 500))
	if _, err := w.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := mustRead(t, filepath.Join(dir, ManifestName))
	res, err := w.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped || res.Bytes != 0 {
		t.Fatalf("unchanged checkpoint not skipped: %+v", res)
	}
	if res.ShardsSkipped != 4 {
		t.Fatalf("ShardsSkipped = %d, want 4", res.ShardsSkipped)
	}
	if !bytes.Equal(before, mustRead(t, filepath.Join(dir, ManifestName))) {
		t.Fatal("manifest rewritten by a skipped checkpoint")
	}
	st := w.Stats()
	if st.Checkpoints != 2 || st.ChunksSkipped != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCorruptCheckpointFailsLoudly: any damage to any chunk — bit flip,
// truncation, deletion, manifest rot — must fail the WHOLE restore with
// a descriptive error and leave the engine completely untouched, even
// when only the last chunk of a chain is damaged.
func TestCorruptCheckpointFailsLoudly(t *testing.T) {
	trace := testTrace(4, 2000)
	dir := t.TempDir()
	eng := core.NewShardedPassive(testCampus, testUDP, 2)
	w, err := NewWriter(eng, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feed(eng, trace[:1000])
	if _, err := w.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	feed(eng, trace[1000:])
	if _, err := w.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	man, err := DecodeManifest(mustRead(t, filepath.Join(dir, ManifestName)))
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Chunks) != 2 {
		t.Fatalf("expected a 2-chunk chain, got %d", len(man.Chunks))
	}
	freshDump := core.NewShardedPassive(testCampus, testUDP, 2).Snapshot().Dump()

	copyDir := func(t *testing.T) string {
		dst := t.TempDir()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data := mustRead(t, filepath.Join(dir, e.Name()))
			if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}
	expectLoudFailure := func(t *testing.T, dir string) {
		t.Helper()
		restored := core.NewShardedPassive(testCampus, testUDP, 2)
		if _, err := Restore(dir, restored); err == nil {
			t.Fatal("restore of a corrupt checkpoint succeeded")
		}
		if !bytes.Equal(restored.Snapshot().Dump(), freshDump) {
			t.Fatal("failed restore left the engine partially loaded")
		}
	}

	for _, chunk := range []int{0, 1} {
		t.Run("bitflip-chunk", func(t *testing.T) {
			d := copyDir(t)
			path := filepath.Join(d, man.Chunks[chunk].File)
			data := mustRead(t, path)
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			expectLoudFailure(t, d)
		})
	}
	t.Run("truncated-chunk", func(t *testing.T) {
		d := copyDir(t)
		path := filepath.Join(d, man.Chunks[1].File)
		data := mustRead(t, path)
		if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		expectLoudFailure(t, d)
	})
	t.Run("missing-chunk", func(t *testing.T) {
		d := copyDir(t)
		if err := os.Remove(filepath.Join(d, man.Chunks[1].File)); err != nil {
			t.Fatal(err)
		}
		expectLoudFailure(t, d)
	})
	t.Run("rotten-manifest", func(t *testing.T) {
		d := copyDir(t)
		if err := os.WriteFile(filepath.Join(d, ManifestName), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		expectLoudFailure(t, d)
	})
	t.Run("config-mismatch", func(t *testing.T) {
		restored := core.NewShardedPassive(netaddr.MustParsePrefix("10.0.0.0/8"), testUDP, 2)
		if _, err := Restore(dir, restored); err == nil ||
			!strings.Contains(err.Error(), "campus") {
			t.Fatalf("campus mismatch not rejected: %v", err)
		}
	})
	t.Run("hybrid-mismatch", func(t *testing.T) {
		restored := core.NewHybrid(testCampus, testUDP, 2, testTCP)
		if _, err := Restore(dir, restored); err == nil ||
			!strings.Contains(err.Error(), "hybrid") {
			t.Fatalf("hybrid mismatch not rejected: %v", err)
		}
	})
}

// TestRestoreColdStart: an empty directory is a cold start, not an
// error; a used engine refuses import.
func TestRestoreColdStart(t *testing.T) {
	eng := core.NewShardedPassive(testCampus, testUDP, 1)
	man, err := Restore(t.TempDir(), eng)
	if err != nil || man != nil {
		t.Fatalf("cold start = (%v, %v), want (nil, nil)", man, err)
	}

	dir := t.TempDir()
	w, err := NewWriter(eng, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feed(eng, testTrace(5, 300))
	if _, err := w.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	used := core.NewShardedPassive(testCampus, testUDP, 1)
	feed(used, testTrace(5, 10))
	if _, err := Restore(dir, used); err == nil {
		t.Fatal("restore into a used engine should fail")
	}
}

// TestManifestCarriesPublisherCursor: the writer samples the federation
// publisher's cursor into the manifest, and a publisher resumed from it
// keeps the epoch and continues the sequence — no new epoch, no
// resequenced history for downstream aggregators to double-count.
func TestManifestCarriesPublisherCursor(t *testing.T) {
	trace := testTrace(6, 800)
	dir := t.TempDir()
	eng := core.NewShardedPassive(testCampus, testUDP, 2)
	pub := federate.NewPublisher("site-a", eng)
	w, err := NewWriter(eng, dir, Options{Publisher: pub.State})
	if err != nil {
		t.Fatal(err)
	}
	feed(eng, trace)
	if _, err := w.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The pump drains asynchronously; its cursor was sampled at the
	// checkpoint. Whatever it was, the manifest must carry it.
	pub.Close()
	man, err := DecodeManifest(mustRead(t, filepath.Join(dir, ManifestName)))
	if err != nil {
		t.Fatal(err)
	}
	if man.Publisher == nil || man.Publisher.Epoch == 0 {
		t.Fatalf("manifest publisher cursor missing: %+v", man.Publisher)
	}

	restored := core.NewShardedPassive(testCampus, testUDP, 2)
	if _, err := Restore(dir, restored); err != nil {
		t.Fatal(err)
	}
	rpub := federate.NewPublisherResumed("site-a", restored, *man.Publisher)
	defer rpub.Close()
	if st := rpub.State(); st != *man.Publisher {
		t.Fatalf("resumed publisher state = %+v, want %+v", st, *man.Publisher)
	}
	boot, live := rpub.Catchup(64)
	defer live.Cancel()
	if boot[0].Epoch != man.Publisher.Epoch {
		t.Fatalf("hello epoch = %d, want %d", boot[0].Epoch, man.Publisher.Epoch)
	}
	if boot[1].Seq != man.Publisher.Seq {
		t.Fatalf("snapshot covers seq %d, want %d", boot[1].Seq, man.Publisher.Seq)
	}

	// A brand-new discovery after restore continues the stored sequence.
	bld := packet.NewBuilder(0)
	at := time.Date(2006, 9, 21, 0, 0, 0, 0, time.UTC)
	srv := testCampus.Base() + 9999
	cli := netaddr.MustParseV4("99.1.2.3")
	restored.HandleBatch([]packet.Packet{
		*bld.Syn(at, packet.Endpoint{Addr: cli, Port: 33000}, packet.Endpoint{Addr: srv, Port: 80}, 1),
		*bld.SynAck(at.Add(time.Millisecond), packet.Endpoint{Addr: srv, Port: 80},
			packet.Endpoint{Addr: cli, Port: 33000}, 2, 2),
	})
	restored.Flush()
	select {
	case f := <-live.Events():
		if f.Epoch != man.Publisher.Epoch || f.Seq != man.Publisher.Seq+1 {
			t.Fatalf("resumed event frame = epoch %d seq %d, want epoch %d seq %d",
				f.Epoch, f.Seq, man.Publisher.Epoch, man.Publisher.Seq+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event frame from resumed publisher")
	}
}

// TestStateFileRoundTrip covers the aggregator-state single-file format:
// exact round trip, cold start on absence, loud failure on damage.
func TestStateFileRoundTrip(t *testing.T) {
	agg := federate.NewAggregator()
	// Give the aggregator real state via a publisher feed.
	eng := core.NewShardedPassive(testCampus, testUDP, 2)
	feed(eng, testTrace(7, 600))
	pub := federate.NewPublisher("site-b", eng)
	boot, live := pub.Catchup(16)
	live.Cancel()
	for i := range boot {
		if err := agg.Apply(&boot[i]); err != nil {
			t.Fatal(err)
		}
	}
	pub.Close()
	if agg.NumServices() == 0 {
		t.Fatal("aggregator absorbed nothing")
	}

	path := filepath.Join(t.TempDir(), "aggregator.state")
	if err := WriteStateFile(path, agg.ExportState()); err != nil {
		t.Fatalf("WriteStateFile: %v", err)
	}
	var st federate.AggregatorState
	ok, err := ReadStateFile(path, &st)
	if err != nil || !ok {
		t.Fatalf("ReadStateFile = (%v, %v)", ok, err)
	}
	restored := federate.NewAggregator()
	if err := restored.ImportState(&st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if !bytes.Equal(agg.Dump(), restored.Dump()) {
		t.Fatal("aggregator dump differs after state-file round trip")
	}
	if err := restored.ImportState(&st); err == nil {
		t.Fatal("double import should fail (not fresh)")
	}

	var miss federate.AggregatorState
	ok, err = ReadStateFile(filepath.Join(t.TempDir(), "absent"), &miss)
	if err != nil || ok {
		t.Fatalf("absent state file = (%v, %v), want (false, nil)", ok, err)
	}

	data := mustRead(t, path)
	data[len(data)/2] ^= 0x20
	bad := filepath.Join(t.TempDir(), "bad.state")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStateFile(bad, &st); err == nil {
		t.Fatal("corrupt state file read succeeded")
	}
	if _, err := ReadStateFile(bad, &st); err == nil {
		t.Fatal("corrupt state file read succeeded twice")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
