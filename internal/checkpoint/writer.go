package checkpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/federate"
	"servdisc/internal/obs"
)

// Metrics is the writer's optional telemetry bundle; fields are
// nil-safe and a nil bundle costs nothing.
type Metrics struct {
	// Write observes the wall duration of every checkpoint attempt that
	// wrote a chunk (skips excluded — they are the no-work path).
	Write *obs.Histogram
	// Flight receives a checkpoint-cut trace event per written chunk,
	// tagged "baseline", "delta" or "compacted".
	Flight *obs.Recorder
}

// DefaultMaxDeltas bounds the delta chain: once a baseline has this many
// deltas behind it, the next checkpoint folds the chain into a fresh
// baseline. Longer chains make checkpoints cheaper but restores slower
// and the directory larger; eight keeps restore O(small multiple of
// inventory) while amortizing baseline cost well past the knee.
const DefaultMaxDeltas = 8

// Options configures a Writer.
type Options struct {
	// MaxDeltas caps the delta chain before compaction
	// (DefaultMaxDeltas when zero or negative).
	MaxDeltas int
	// Publisher, when set, is sampled at every checkpoint and stored in
	// the manifest, so a restored process can resume its federation feed
	// (see federate.NewPublisherResumed).
	Publisher func() federate.PublisherState
}

// Result reports one checkpoint's effort, for logs and metrics.
type Result struct {
	// Full marks a baseline, Compacted one that folded a delta chain.
	Full      bool
	Compacted bool
	// Skipped means nothing changed since the cursor: no bytes written,
	// manifest untouched.
	Skipped bool
	// Bytes is the chunk file's size; Services its service-record count.
	Bytes    int64
	Services int
	// ShardsChanged / ShardsSkipped report which engine shards had
	// anything to export.
	ShardsChanged int
	ShardsSkipped int
	Duration      time.Duration
}

// Stats aggregates a Writer's lifetime effort, for /metrics.
type Stats struct {
	// Checkpoints counts completed checkpoints (skipped ones included);
	// Baselines those that wrote a full chunk; Failures failed attempts.
	Checkpoints uint64
	Baselines   uint64
	Failures    uint64
	// BytesWritten is cumulative; LastBytes and LastDuration describe
	// the most recent completed checkpoint.
	BytesWritten uint64
	LastBytes    uint64
	LastDuration time.Duration
	// ChunksSkipped counts shard exports skipped outright because the
	// shard had not applied a batch since the cursor — the incremental
	// machinery's payoff counter.
	ChunksSkipped uint64
}

// Writer checkpoints one engine into one directory. Methods are
// serialized internally; a ticker goroutine and a shutdown path may call
// Checkpoint concurrently.
type Writer struct {
	eng   Engine
	dir   string
	opts  Options
	runID string

	mu    sync.Mutex
	man   *Manifest
	cur   *core.CheckpointCursor
	seq   int
	stats Stats
	met   *Metrics
}

// NewWriter prepares a writer on dir, creating it if needed. The first
// Checkpoint writes a full baseline; to continue an existing directory's
// chain the process must first Restore into the engine, and even then
// the next checkpoint is a baseline (dirty tracking does not survive a
// process, only the data does) — which also replaces the old chain, so
// a restored process never appends to chunks written by its predecessor.
func NewWriter(eng Engine, dir string, opts Options) (*Writer, error) {
	if opts.MaxDeltas <= 0 {
		opts.MaxDeltas = DefaultMaxDeltas
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// The run id makes this incarnation's chunk names disjoint from any
	// previous process's, so a crash before our first manifest rename
	// leaves the old manifest's files untouched and fully valid.
	return &Writer{
		eng:   eng,
		dir:   dir,
		opts:  opts,
		runID: fmt.Sprintf("%08x-%05d", uint32(time.Now().UnixNano()), os.Getpid()%100000),
	}, nil
}

// Checkpoint freezes the engine's changes since the last checkpoint and
// makes them durable: incremental when a cursor exists and the chain is
// short, a full baseline otherwise. Returns without writing when nothing
// changed.
func (w *Writer) Checkpoint(ctx context.Context) (Result, error) {
	return w.checkpoint(ctx, false)
}

// Baseline forces a full checkpoint regardless of cursor state,
// replacing any delta chain. Exported for benchmarks and operators; the
// Writer's own compaction takes this path automatically.
func (w *Writer) Baseline(ctx context.Context) (Result, error) {
	return w.checkpoint(ctx, true)
}

// SetPublisher installs (or replaces) the federation cursor sampler
// after construction — the publisher usually exists only once the engine
// is wired up. Affects checkpoints taken after the call.
func (w *Writer) SetPublisher(fn func() federate.PublisherState) {
	w.mu.Lock()
	w.opts.Publisher = fn
	w.mu.Unlock()
}

// SetMetrics attaches the telemetry bundle; affects checkpoints taken
// after the call.
func (w *Writer) SetMetrics(m *Metrics) {
	w.mu.Lock()
	w.met = m
	w.mu.Unlock()
}

// Stats returns a copy of the lifetime counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

func (w *Writer) checkpoint(ctx context.Context, forceFull bool) (Result, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := time.Now()
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	full := forceFull || w.cur == nil
	compacted := false
	if !full && len(w.man.Chunks) > w.opts.MaxDeltas {
		full, compacted = true, true
	}
	cur := w.cur
	if full {
		cur = nil
	}
	ed, newCur := w.eng.ExportDelta(cur)
	if !full && len(ed.Services) == 0 && len(ed.Trails) == 0 && len(ed.Tombs) == 0 &&
		len(ed.ScanSources) == 0 && ed.Active == nil {
		// Not a single entity changed (and Packets only moves with
		// batches, which dirty a shard): the chain on disk is already
		// current.
		w.cur = &newCur
		res := Result{Skipped: true, ShardsSkipped: ed.ShardsSkipped, Duration: time.Since(start)}
		w.note(res)
		return res, nil
	}
	name := fmt.Sprintf("chunk-%s-%06d.ckpt", w.runID, w.seq)
	w.seq++
	size, sum, err := writeChunkFile(filepath.Join(w.dir, name), ed)
	if err != nil {
		return Result{}, w.fail(fmt.Errorf("checkpoint: write chunk: %w", err))
	}
	man := &Manifest{
		Version: FormatVersion,
		Engine:  w.eng.CheckpointConfig(),
		Cursor:  newCur,
		Written: time.Now().UTC(),
	}
	seq := 0
	if !full {
		man.Chunks = append(man.Chunks, w.man.Chunks...)
		seq = man.Chunks[len(man.Chunks)-1].Seq + 1
	}
	man.Chunks = append(man.Chunks, ChunkInfo{
		File: name, Bytes: size, CRC32: sum, Seq: seq,
		Baseline: full, Services: len(ed.Services),
	})
	if w.opts.Publisher != nil {
		st := w.opts.Publisher()
		man.Publisher = &st
	}
	if err := writeManifest(w.dir, man); err != nil {
		return Result{}, w.fail(fmt.Errorf("checkpoint: write manifest: %w", err))
	}
	w.man, w.cur = man, &newCur
	w.prune()
	res := Result{
		Full: full, Compacted: compacted,
		Bytes: size, Services: len(ed.Services),
		ShardsChanged: ed.ShardsChanged, ShardsSkipped: ed.ShardsSkipped,
		Duration: time.Since(start),
	}
	w.note(res)
	if m := w.met; m != nil {
		m.Write.Observe(res.Duration)
		kind := "delta"
		switch {
		case compacted:
			kind = "compacted"
		case full:
			kind = "baseline"
		}
		m.Flight.Record(obs.TraceCheckpointCut, kind, res.Bytes, res.Duration.Microseconds())
	}
	return res, nil
}

// fail poisons the cursor: the export consumed the engine's dirty sets,
// so the only sound continuation after a failed write is a full
// baseline. Caller holds w.mu.
func (w *Writer) fail(err error) error {
	w.cur = nil
	w.stats.Failures++
	return err
}

// note folds one result into the lifetime counters. Caller holds w.mu.
func (w *Writer) note(res Result) {
	w.stats.Checkpoints++
	if res.Full {
		w.stats.Baselines++
	}
	w.stats.BytesWritten += uint64(res.Bytes)
	w.stats.LastBytes = uint64(res.Bytes)
	w.stats.LastDuration = res.Duration
	w.stats.ChunksSkipped += uint64(res.ShardsSkipped)
}

// prune removes chunk files the current manifest no longer references —
// only now, after the manifest rename made the new chain durable.
// Removal failures are ignored: a leftover file costs disk, never
// correctness. Caller holds w.mu.
func (w *Writer) prune() {
	live := make(map[string]bool, len(w.man.Chunks))
	for i := range w.man.Chunks {
		live[w.man.Chunks[i].File] = true
	}
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "chunk-") && strings.HasSuffix(name, ".ckpt") && !live[name] {
			_ = os.Remove(filepath.Join(w.dir, name))
		}
	}
}

// writeManifest lands the manifest atomically: tmp file, fsync, rename,
// directory fsync. A crash at any point leaves either the old or the new
// manifest, both naming complete chains.
func writeManifest(dir string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, ManifestName, append(data, '\n'))
}

func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
