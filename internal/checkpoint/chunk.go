package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"

	"servdisc/internal/core"
	"servdisc/internal/federate"
)

// meter tees writes through a CRC and a byte counter.
type meter struct {
	w   io.Writer
	n   int64
	crc hash.Hash32
}

func (m *meter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.n += int64(n)
	m.crc.Write(p[:n])
	return n, err
}

// writeChunkFile streams one delta into a chunk file and syncs it. The
// file is not referenced until the caller lands a manifest naming it, so
// a partial write is garbage to be pruned, never corruption.
func writeChunkFile(path string, ed *core.EngineDelta) (size int64, sum uint32, err error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	m := &meter{w: f, crc: crc32.NewIEEE()}
	fw := federate.NewFrameWriter(m)
	hdr := chunkHeader{
		Magic: chunkMagic, Version: FormatVersion,
		Full: ed.Full, Packets: ed.Packets,
		Origin: ed.Origin, OriginSet: ed.OriginSet,
		Watermark:     ed.Watermark,
		ShardsChanged: ed.ShardsChanged, ShardsSkipped: ed.ShardsSkipped,
	}
	if err := fw.WriteJSON(&chunkFrame{T: frameHdr, Hdr: &hdr}); err != nil {
		return 0, 0, err
	}
	for i := range ed.Services {
		if err := fw.WriteJSON(&chunkFrame{T: frameSvc, Svc: &ed.Services[i]}); err != nil {
			return 0, 0, err
		}
	}
	for i := range ed.Trails {
		if err := fw.WriteJSON(&chunkFrame{T: frameTrail, Trail: &ed.Trails[i]}); err != nil {
			return 0, 0, err
		}
	}
	for i := range ed.Tombs {
		if err := fw.WriteJSON(&chunkFrame{T: frameTomb, Tomb: &ed.Tombs[i]}); err != nil {
			return 0, 0, err
		}
	}
	for i := range ed.ScanSources {
		if err := fw.WriteJSON(&chunkFrame{T: frameScan, Scan: &ed.ScanSources[i]}); err != nil {
			return 0, 0, err
		}
	}
	if ed.Active != nil {
		if err := fw.WriteJSON(&chunkFrame{T: frameActive, Active: ed.Active}); err != nil {
			return 0, 0, err
		}
	}
	end := chunkEnd{
		Services: len(ed.Services), Trails: len(ed.Trails), Tombs: len(ed.Tombs),
		ScanSources: len(ed.ScanSources), Active: ed.Active != nil,
	}
	if err := fw.WriteJSON(&chunkFrame{T: frameEnd, End: &end}); err != nil {
		return 0, 0, err
	}
	if err := fw.Flush(); err != nil {
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, 0, err
	}
	return m.n, m.crc.Sum32(), nil
}

// DecodeChunk parses one chunk file's bytes back into a delta. It is
// deliberately strict — wrong magic, unknown frames, missing or
// miscounting end frame, trailing bytes: all errors — because restore
// must fail loudly on anything but a byte-perfect chunk. Exported for
// the fuzz harness; hostile inputs must error, never panic.
func DecodeChunk(data []byte) (*core.EngineDelta, error) {
	fr := federate.NewFrameReader(bytes.NewReader(data))
	var f chunkFrame
	if err := fr.ReadJSON(&f); err != nil {
		return nil, fmt.Errorf("checkpoint: chunk header: %w", err)
	}
	if f.T != frameHdr || f.Hdr == nil {
		return nil, errors.New("checkpoint: chunk does not start with a header frame")
	}
	if f.Hdr.Magic != chunkMagic {
		return nil, errors.New("checkpoint: not a checkpoint chunk")
	}
	if f.Hdr.Version != FormatVersion {
		return nil, fmt.Errorf("checkpoint: chunk version %d, want %d", f.Hdr.Version, FormatVersion)
	}
	ed := &core.EngineDelta{
		Full: f.Hdr.Full, Packets: f.Hdr.Packets,
		Origin: f.Hdr.Origin, OriginSet: f.Hdr.OriginSet,
		Watermark:     f.Hdr.Watermark,
		ShardsChanged: f.Hdr.ShardsChanged, ShardsSkipped: f.Hdr.ShardsSkipped,
	}
	var end *chunkEnd
	for end == nil {
		f = chunkFrame{}
		if err := fr.ReadJSON(&f); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, errors.New("checkpoint: chunk truncated before end frame")
			}
			return nil, err
		}
		switch f.T {
		case frameSvc:
			if f.Svc == nil {
				return nil, errors.New("checkpoint: service frame without payload")
			}
			ed.Services = append(ed.Services, *f.Svc)
		case frameTrail:
			if f.Trail == nil {
				return nil, errors.New("checkpoint: trail frame without payload")
			}
			ed.Trails = append(ed.Trails, *f.Trail)
		case frameTomb:
			if f.Tomb == nil {
				return nil, errors.New("checkpoint: tomb frame without payload")
			}
			ed.Tombs = append(ed.Tombs, *f.Tomb)
		case frameScan:
			if f.Scan == nil {
				return nil, errors.New("checkpoint: scan-source frame without payload")
			}
			ed.ScanSources = append(ed.ScanSources, *f.Scan)
		case frameActive:
			if f.Active == nil {
				return nil, errors.New("checkpoint: active frame without payload")
			}
			if ed.Active != nil {
				return nil, errors.New("checkpoint: duplicate active frame")
			}
			ed.Active = f.Active
		case frameEnd:
			if f.End == nil {
				return nil, errors.New("checkpoint: end frame without payload")
			}
			end = f.End
		default:
			return nil, fmt.Errorf("checkpoint: unknown chunk frame type %q", f.T)
		}
	}
	if end.Services != len(ed.Services) || end.Trails != len(ed.Trails) ||
		end.Tombs != len(ed.Tombs) ||
		end.ScanSources != len(ed.ScanSources) || end.Active != (ed.Active != nil) {
		return nil, errors.New("checkpoint: chunk entity counts disagree with end frame")
	}
	if _, err := fr.ReadBody(); err != io.EOF {
		return nil, errors.New("checkpoint: trailing bytes after end frame")
	}
	return ed, nil
}

// DecodeManifest parses and validates manifest bytes. Exported for the
// fuzz harness; hostile inputs must error, never panic.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	if err := validManifest(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
