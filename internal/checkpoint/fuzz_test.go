package checkpoint

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"servdisc/internal/core"
	"servdisc/internal/federate"
)

// seedCheckpointDir builds one real two-chunk checkpoint and returns the
// manifest bytes and each chunk's bytes, the honest corpus the fuzzers
// mutate from.
func seedCheckpointDir(f *testing.F) (manifest []byte, chunks [][]byte) {
	f.Helper()
	dir, err := os.MkdirTemp("", "ckpt-fuzz-seed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	eng := core.NewHybrid(testCampus, testUDP, 2, testTCP)
	w, err := NewWriter(eng, dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	trace := testTrace(11, 700)
	feed(eng, trace[:400])
	if _, err := w.Checkpoint(context.Background()); err != nil {
		f.Fatal(err)
	}
	feed(eng, trace[400:])
	if _, err := w.Checkpoint(context.Background()); err != nil {
		f.Fatal(err)
	}
	manifest, err = os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	man, err := DecodeManifest(manifest)
	if err != nil {
		f.Fatal(err)
	}
	for _, ci := range man.Chunks {
		data, err := os.ReadFile(filepath.Join(dir, ci.File))
		if err != nil {
			f.Fatal(err)
		}
		chunks = append(chunks, data)
	}
	return manifest, chunks
}

// FuzzChunkDecode feeds arbitrary bytes to the chunk decoder: truncated,
// bit-flipped or outright hostile chunks must produce an error, never a
// panic or a partially-believed delta (mirrors the federation wire's
// FuzzDecoderNoPanic). Accepted inputs must satisfy the decoder's own
// count invariants — that is what restore's "never half-load" rests on.
func FuzzChunkDecode(f *testing.F) {
	_, chunks := seedCheckpointDir(f)
	for _, c := range chunks {
		f.Add(c)
		f.Add(c[:len(c)/2])
		flip := append([]byte(nil), c...)
		flip[len(flip)/3] ^= 0x80
		f.Add(flip)
	}
	f.Add([]byte("12 hello\n"))
	f.Add([]byte("999999999999999999 {}\n"))
	f.Add([]byte(`34 {"t":"hdr","hdr":{"magic":"nope"}}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ed, err := DecodeChunk(data)
		if err != nil {
			return
		}
		if ed == nil {
			t.Fatal("nil delta without error")
		}
	})
}

// FuzzManifestDecode: hostile manifest bytes must error or yield a
// manifest that passes every structural invariant (safe chunk filenames
// above all — a manifest must never be able to point restore outside its
// own directory).
func FuzzManifestDecode(f *testing.F) {
	manifest, _ := seedCheckpointDir(f)
	f.Add(manifest)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"chunks":[{"file":"../../etc/passwd","bytes":1,"seq":0,"baseline":true}]}`))
	f.Add([]byte(`{"version":1,"chunks":[{"file":"x.ckpt","bytes":-5,"seq":0,"baseline":true}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := DecodeManifest(data)
		if err != nil {
			return
		}
		for _, ci := range man.Chunks {
			if ci.File != filepath.Base(ci.File) || ci.Bytes < 0 {
				t.Fatalf("accepted manifest with unsafe chunk %+v", ci)
			}
		}
	})
}

// FuzzStateFileDecode: hostile aggregator-state bytes must error without
// panicking; accepted payloads must round-trip through ImportState.
func FuzzStateFileDecode(f *testing.F) {
	agg := federate.NewAggregator()
	var buf bytes.Buffer
	payload, _ := json.Marshal(agg.ExportState())
	buf.Write(payload)
	path := filepath.Join(f.TempDir(), "seed.state")
	if err := WriteStateFile(path, agg.ExportState()); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte("26 {\"magic\":\"wrong\",\"version\":1}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var st federate.AggregatorState
		if err := decodeStateFile(data, &st); err != nil {
			return
		}
		fresh := federate.NewAggregator()
		if err := fresh.ImportState(&st); err != nil {
			t.Fatalf("decoded state rejected by import: %v", err)
		}
	})
}
