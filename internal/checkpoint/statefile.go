package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"servdisc/internal/federate"
)

// stateMagic guards single-value state files (the federated daemon's
// aggregator checkpoint) against misdirected reads.
const stateMagic = "servdisc-checkpoint-state"

type stateHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
}

type stateEnd struct {
	CRC32 uint32 `json:"crc32"`
}

// WriteStateFile persists one JSON-marshalable value atomically
// (tmp+rename, fsync'd) in the checkpoint framing: header frame, payload
// frame, end frame carrying the payload's CRC. The federated daemon uses
// it for aggregator state; anything state-shaped fits.
func WriteStateFile(path string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encode state: %w", err)
	}
	var buf bytes.Buffer
	fw := federate.NewFrameWriter(&buf)
	if err := fw.WriteJSON(stateHeader{Magic: stateMagic, Version: FormatVersion}); err != nil {
		return err
	}
	if err := fw.WriteJSON(json.RawMessage(payload)); err != nil {
		return err
	}
	if err := fw.WriteJSON(stateEnd{CRC32: crc32.ChecksumIEEE(payload)}); err != nil {
		return err
	}
	if err := fw.Flush(); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Dir(path), filepath.Base(path), buf.Bytes())
}

// ReadStateFile loads a value written by WriteStateFile. A missing file
// returns (false, nil) — a cold start; any malformation (bad magic or
// version, CRC mismatch, truncation, trailing bytes) is a loud error and
// v is left unmodified.
func ReadStateFile(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := decodeStateFile(data, v); err != nil {
		return false, err
	}
	return true, nil
}

// decodeStateFile parses state-file bytes into v. Split out (and reached
// by the fuzz harness): hostile inputs must error, never panic, and must
// not touch v.
func decodeStateFile(data []byte, v any) error {
	fr := federate.NewFrameReader(bytes.NewReader(data))
	var hdr stateHeader
	if err := fr.ReadJSON(&hdr); err != nil {
		return fmt.Errorf("checkpoint: state header: %w", err)
	}
	if hdr.Magic != stateMagic {
		return errors.New("checkpoint: not a checkpoint state file")
	}
	if hdr.Version != FormatVersion {
		return fmt.Errorf("checkpoint: state version %d, want %d", hdr.Version, FormatVersion)
	}
	body, err := fr.ReadBody()
	if err != nil {
		return fmt.Errorf("checkpoint: state payload: %w", err)
	}
	payload := append([]byte(nil), body...)
	var end stateEnd
	if err := fr.ReadJSON(&end); err != nil {
		return fmt.Errorf("checkpoint: state end frame: %w", err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != end.CRC32 {
		return fmt.Errorf("checkpoint: state checksum %08x, file says %08x", sum, end.CRC32)
	}
	if _, err := fr.ReadBody(); err != io.EOF {
		return errors.New("checkpoint: trailing bytes after state end frame")
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("checkpoint: decode state: %w", err)
	}
	return nil
}
