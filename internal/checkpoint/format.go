// Package checkpoint gives the live discovery engine durable state: a
// Writer periodically freezes a consistent cut of the engine (via the
// core export markers, so every checkpoint falls on a whole-batch
// boundary of the ingest stream) and persists it as a baseline chunk
// plus a chain of incremental delta chunks, each holding only the
// entities touched since the previous checkpoint — O(churn), not
// O(inventory). Restore verifies every chunk (size, CRC, frame counts)
// before importing anything, so a corrupt checkpoint fails loudly and
// can never half-load an engine.
//
// On-disk layout, one directory per engine:
//
//	manifest.json            atomic (tmp+rename) index: engine config
//	                         fingerprint, generation cursor, chunk chain,
//	                         optional federation publisher cursor
//	chunk-<run>-<n>.ckpt     length-prefixed JSONL frames (the federate
//	                         wire framing): hdr, entity frames, end
//
// Chunk files are named uniquely per Writer incarnation, so a crashed
// writer can never overwrite a file the last durable manifest still
// references; files no longer referenced are pruned only after the new
// manifest is safely on disk. A failed checkpoint poisons the writer's
// cursor, forcing the next checkpoint to be a full baseline (the
// engine's dirty sets were consumed by the failed export and cannot be
// recovered).
package checkpoint

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/federate"
)

// FormatVersion is the checkpoint format version, stamped into the
// manifest and every chunk header. Readers reject other versions.
const FormatVersion = 1

// ManifestName is the manifest's filename inside a checkpoint directory.
const ManifestName = "manifest.json"

// chunkMagic guards chunk files against misdirected reads (a manifest
// pointing at a file that is not a checkpoint chunk).
const chunkMagic = "servdisc-checkpoint-chunk"

// Engine is the slice of a discovery engine the checkpoint subsystem
// needs. core.ShardedPassive and core.Hybrid both satisfy it.
type Engine interface {
	ExportDelta(cur *core.CheckpointCursor) (*core.EngineDelta, core.CheckpointCursor)
	ImportDelta(ed *core.EngineDelta) error
	CheckpointConfig() core.EngineConfig
}

// ChunkInfo describes one chunk in the manifest's chain.
type ChunkInfo struct {
	// File is the chunk's filename (always a bare name inside the
	// checkpoint directory).
	File string `json:"file"`
	// Bytes and CRC32 (IEEE) authenticate the file's content; restore
	// verifies both before decoding a single frame.
	Bytes int64  `json:"bytes"`
	CRC32 uint32 `json:"crc32"`
	// Seq orders the chain; chunks import in ascending Seq.
	Seq int `json:"seq"`
	// Baseline marks a full export (always the chain's first chunk).
	Baseline bool `json:"baseline,omitempty"`
	// Services counts the service records carried, for observability.
	Services int `json:"services,omitempty"`
}

// Manifest is the checkpoint directory's index: which chunks make up the
// current chain and which engine state they reproduce. It is replaced
// atomically on every checkpoint; the manifest on disk always describes
// a complete, verifiable chain.
type Manifest struct {
	Version int               `json:"version"`
	Engine  core.EngineConfig `json:"engine"`
	// Cursor is the engine cut the chain reproduces; the Writer resumes
	// incremental exports from it after a restore-then-checkpoint cycle
	// only via a fresh baseline (dirty tracking does not survive a
	// process, only the data does).
	Cursor core.CheckpointCursor `json:"cursor"`
	// Written is the wall-clock time of the last checkpoint, for
	// operators; nothing is derived from it.
	Written time.Time   `json:"written,omitzero"`
	Chunks  []ChunkInfo `json:"chunks"`
	// Publisher, when present, is the federation stream cursor captured
	// with the checkpoint, so a restored site resumes publishing in its
	// stored epoch instead of reshipping history under a new one.
	Publisher *federate.PublisherState `json:"publisher,omitempty"`
}

// chunkHeader is a chunk file's first frame.
type chunkHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// The delta-level fields of core.EngineDelta.
	Full          bool      `json:"full,omitempty"`
	Packets       int       `json:"packets"`
	Origin        time.Time `json:"origin,omitzero"`
	OriginSet     bool      `json:"origin_set,omitempty"`
	Watermark     time.Time `json:"watermark,omitzero"`
	ShardsChanged int       `json:"shards_changed,omitempty"`
	ShardsSkipped int       `json:"shards_skipped,omitempty"`
}

// chunkEnd is a chunk file's last frame: the entity counts the decoder
// must have seen. A truncated file cannot end with a valid end frame, so
// truncation is always loud.
type chunkEnd struct {
	Services    int  `json:"services"`
	Trails      int  `json:"trails"`
	Tombs       int  `json:"tombs,omitempty"`
	ScanSources int  `json:"scan_sources"`
	Active      bool `json:"active,omitempty"`
}

// Chunk frame discriminators.
const (
	frameHdr    = "hdr"
	frameSvc    = "svc"
	frameTrail  = "trail"
	frameTomb   = "tomb"
	frameScan   = "scan"
	frameActive = "active"
	frameEnd    = "end"
)

// chunkFrame is the one-of envelope for chunk frames.
type chunkFrame struct {
	T      string                `json:"t"`
	Hdr    *chunkHeader          `json:"hdr,omitempty"`
	Svc    *core.ServiceState    `json:"svc,omitempty"`
	Trail  *core.AddrTrail       `json:"trail,omitempty"`
	Tomb   *core.TombState       `json:"tomb,omitempty"`
	Scan   *core.ScanSourceState `json:"scan,omitempty"`
	Active *core.ActiveState     `json:"active,omitempty"`
	End    *chunkEnd             `json:"end,omitempty"`
}

// validManifest checks the structural invariants a decoded manifest must
// satisfy before any file it names is opened.
func validManifest(m *Manifest) error {
	if m.Version != FormatVersion {
		return fmt.Errorf("checkpoint: manifest version %d, want %d", m.Version, FormatVersion)
	}
	if len(m.Chunks) == 0 {
		return errors.New("checkpoint: manifest without chunks")
	}
	for i := range m.Chunks {
		ci := &m.Chunks[i]
		if ci.File == "" || ci.File != filepath.Base(ci.File) ||
			strings.HasPrefix(ci.File, ".") || !strings.HasSuffix(ci.File, ".ckpt") {
			return fmt.Errorf("checkpoint: manifest names unsafe chunk file %q", ci.File)
		}
		if ci.Bytes < 0 {
			return fmt.Errorf("checkpoint: chunk %q has negative size", ci.File)
		}
		if i == 0 {
			if !ci.Baseline {
				return errors.New("checkpoint: chain does not start with a baseline")
			}
			continue
		}
		if ci.Baseline {
			return fmt.Errorf("checkpoint: baseline chunk %q in the middle of the chain", ci.File)
		}
		if ci.Seq <= m.Chunks[i-1].Seq {
			return fmt.Errorf("checkpoint: chunk sequence not increasing at %q", ci.File)
		}
	}
	return nil
}
