package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"slices"

	"servdisc/internal/core"
)

// Restore rebuilds a fresh engine from the checkpoint directory. It
// returns (nil, nil) when the directory holds no manifest — a cold
// start, not an error. Every chunk in the chain is read and fully
// verified (manifest-recorded size, CRC, frame structure, entity
// counts) BEFORE the first delta is imported, so a corrupt or truncated
// checkpoint fails loudly with the engine untouched — it can never
// half-load. On success the returned manifest carries the restored
// cursor and, when checkpointed, the federation publisher state.
//
// The target engine must match the checkpoint's campus, UDP port set
// and hybrid-ness; its shard count may differ (import redistributes by
// owner address).
func Restore(dir string, eng Engine) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	man, err := DecodeManifest(data)
	if err != nil {
		return nil, err
	}
	cfg := eng.CheckpointConfig()
	if man.Engine.Campus != cfg.Campus {
		return nil, fmt.Errorf("checkpoint: campus mismatch: checkpoint %q, engine %q",
			man.Engine.Campus, cfg.Campus)
	}
	if !slices.Equal(man.Engine.UDPPorts, cfg.UDPPorts) {
		return nil, fmt.Errorf("checkpoint: UDP port set mismatch: checkpoint %v, engine %v",
			man.Engine.UDPPorts, cfg.UDPPorts)
	}
	if man.Engine.Hybrid != cfg.Hybrid {
		return nil, fmt.Errorf("checkpoint: hybrid mismatch: checkpoint %v, engine %v",
			man.Engine.Hybrid, cfg.Hybrid)
	}
	deltas := make([]*core.EngineDelta, 0, len(man.Chunks))
	for i := range man.Chunks {
		ci := &man.Chunks[i]
		raw, err := os.ReadFile(filepath.Join(dir, ci.File))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: chunk %q: %w", ci.File, err)
		}
		if int64(len(raw)) != ci.Bytes {
			return nil, fmt.Errorf("checkpoint: chunk %q is %d bytes, manifest says %d",
				ci.File, len(raw), ci.Bytes)
		}
		if sum := crc32.ChecksumIEEE(raw); sum != ci.CRC32 {
			return nil, fmt.Errorf("checkpoint: chunk %q checksum %08x, manifest says %08x",
				ci.File, sum, ci.CRC32)
		}
		ed, err := DecodeChunk(raw)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: chunk %q: %w", ci.File, err)
		}
		if (i == 0) != ed.Full {
			return nil, fmt.Errorf("checkpoint: chunk %q baseline flag disagrees with chain position", ci.File)
		}
		deltas = append(deltas, ed)
	}
	for i, ed := range deltas {
		if err := eng.ImportDelta(ed); err != nil {
			return nil, fmt.Errorf("checkpoint: import chunk %q: %w", man.Chunks[i].File, err)
		}
	}
	return man, nil
}
