package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

var tRef = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)

func testPackets(t *testing.T, n int) [][]byte {
	t.Helper()
	b := packet.NewBuilder(0)
	src := netaddr.MustParseV4("128.125.1.1")
	dst := netaddr.MustParseV4("66.35.250.150")
	var out [][]byte
	for i := 0; i < n; i++ {
		p := b.Syn(tRef.Add(time.Duration(i)*time.Second),
			packet.Endpoint{Addr: src, Port: uint16(40000 + i)},
			packet.Endpoint{Addr: dst, Port: 80}, uint32(i))
		out = append(out, p.Marshal())
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	pkts := testPackets(t, 5)
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 0)
	for i, d := range pkts {
		if err := w.WritePacket(tRef.Add(time.Duration(i)*time.Second), d); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, rec := range recs {
		if !rec.Time.Equal(tRef.Add(time.Duration(i) * time.Second)) {
			t.Errorf("rec %d time = %v", i, rec.Time)
		}
		if rec.OrigLen != len(pkts[i]) {
			t.Errorf("rec %d origlen = %d, want %d", i, rec.OrigLen, len(pkts[i]))
		}
		// 40-byte SYN fits under the default 64-byte snap length.
		if rec.Truncated {
			t.Errorf("rec %d unexpectedly truncated", i)
		}
		if !bytes.Equal(rec.Data, pkts[i]) {
			t.Errorf("rec %d data mismatch", i)
		}
		// Decoded packet must parse.
		if _, err := packet.DecodeIP(rec.Data, rec.Time); err != nil {
			t.Errorf("rec %d decode: %v", i, err)
		}
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 32)
	data := bytes.Repeat([]byte{0xAA}, 100)
	if err := w.WritePacket(tRef, data); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 32 || rec.OrigLen != 100 || !rec.Truncated {
		t.Errorf("rec = %d bytes, orig %d, truncated %v", len(rec.Data), rec.OrigLen, rec.Truncated)
	}
}

func TestEmptyTraceIsValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet, 0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next on empty = %v, want EOF", err)
	}
}

func TestReadSwappedByteOrder(t *testing.T) {
	// Hand-build a little-endian pcap (as written on x86 by classic tools).
	var buf bytes.Buffer
	le := binary.LittleEndian
	hdr := make([]byte, 24)
	le.PutUint32(hdr[0:4], 0xA1B2C3D4)
	le.PutUint16(hdr[4:6], 2)
	le.PutUint16(hdr[6:8], 4)
	le.PutUint32(hdr[16:20], 65535)
	le.PutUint32(hdr[20:24], uint32(LinkTypeRaw))
	buf.Write(hdr)
	rec := make([]byte, 16)
	le.PutUint32(rec[0:4], uint32(tRef.Unix()))
	le.PutUint32(rec[4:8], 123456)
	le.PutUint32(rec[8:12], 3)
	le.PutUint32(rec[12:16], 3)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Time.Unix() != tRef.Unix() || len(got.Data) != 3 {
		t.Errorf("swapped read = %+v", got)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewReader(bytes.Repeat([]byte{0x42}, 24))
	if _, err := NewReader(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedFileHeader(t *testing.T) {
	buf := bytes.NewReader([]byte{0xA1, 0xB2})
	if _, err := NewReader(buf); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 0)
	if err := w.WritePacket(tRef, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop two bytes off the final record body.
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptCapLen(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 64)
	if err := w.WritePacket(tRef, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// caplen field (offset 24+8) claims more than snaplen.
	binary.BigEndian.PutUint32(raw[32:36], 9999)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadAllStopsAtError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw, 0)
	for i := 0; i < 3; i++ {
		if err := w.WritePacket(tRef, []byte{byte(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err == nil {
		t.Fatal("expected error from truncated tail")
	}
	if len(recs) != 2 {
		t.Errorf("got %d complete records before error", len(recs))
	}
}

func BenchmarkWritePacket(b *testing.B) {
	data := bytes.Repeat([]byte{0xAB}, 40)
	w := NewWriter(io.Discard, LinkTypeRaw, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(tRef, data); err != nil {
			b.Fatal(err)
		}
	}
}
