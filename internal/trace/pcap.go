// Package trace reads and writes packet traces in the classic libpcap
// format, so traffic produced by the campus simulator can be archived,
// replayed through the passive-monitoring pipeline, and inspected with
// standard tools (tcpdump, Wireshark).
//
// Only the features the system needs are implemented: the v2.4 file format,
// microsecond timestamps, both byte orders on read, and the raw-IP and
// Ethernet link types. Writing always uses the host-independent big-endian
// convention with the standard magic.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// LinkType is the pcap link-layer header type.
type LinkType uint32

// Link types the system uses.
const (
	// LinkTypeEthernet frames start with an Ethernet II header.
	LinkTypeEthernet LinkType = 1
	// LinkTypeRaw frames start directly at the IP header (DLT_RAW as
	// written by modern libpcap).
	LinkTypeRaw LinkType = 101
)

const (
	magicMicros        = 0xA1B2C3D4
	magicMicrosSwapped = 0xD4C3B2A1
	versionMajor       = 2
	versionMinor       = 4
	fileHeaderLen      = 24
	recordHeaderLen    = 16
	// DefaultSnapLen mirrors the paper's header-only collection
	// methodology (Section 5.3: "we only collect packet headers,
	// 64B/packet").
	DefaultSnapLen = 64
	// MaxSnapLen is the largest snap length accepted on read, a sanity
	// bound against corrupt headers.
	MaxSnapLen = 256 * 1024
)

// Record is one captured packet: its timestamp, the bytes that were kept,
// and the original length on the wire.
type Record struct {
	Time    time.Time
	Data    []byte
	OrigLen int
	// Truncated reports whether Data was cut to the snap length.
	Truncated bool
}

// Writer emits a pcap stream.
type Writer struct {
	w       *bufio.Writer
	snaplen int
	wrote   bool
	link    LinkType
	scratch [recordHeaderLen]byte
}

// NewWriter creates a pcap writer with the given link type and snap length
// (DefaultSnapLen if snaplen <= 0). The file header is written lazily on
// the first packet so that constructing a writer is infallible.
func NewWriter(w io.Writer, link LinkType, snaplen int) *Writer {
	if snaplen <= 0 {
		snaplen = DefaultSnapLen
	}
	return &Writer{w: bufio.NewWriter(w), snaplen: snaplen, link: link}
}

func (w *Writer) writeFileHeader() error {
	var hdr [fileHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], magicMicros)
	binary.BigEndian.PutUint16(hdr[4:6], versionMajor)
	binary.BigEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.BigEndian.PutUint32(hdr[16:20], uint32(w.snaplen))
	binary.BigEndian.PutUint32(hdr[20:24], uint32(w.link))
	_, err := w.w.Write(hdr[:])
	return err
}

// WritePacket appends one record, truncating data to the snap length.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if !w.wrote {
		if err := w.writeFileHeader(); err != nil {
			return err
		}
		w.wrote = true
	}
	capLen := len(data)
	if capLen > w.snaplen {
		capLen = w.snaplen
	}
	usec := ts.UnixMicro()
	binary.BigEndian.PutUint32(w.scratch[0:4], uint32(usec/1e6))
	binary.BigEndian.PutUint32(w.scratch[4:8], uint32(usec%1e6))
	binary.BigEndian.PutUint32(w.scratch[8:12], uint32(capLen))
	binary.BigEndian.PutUint32(w.scratch[12:16], uint32(len(data)))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data[:capLen])
	return err
}

// Flush drains buffered output. Call before closing the underlying file.
func (w *Writer) Flush() error {
	if !w.wrote {
		// An empty trace is still a valid pcap file.
		if err := w.writeFileHeader(); err != nil {
			return err
		}
		w.wrote = true
	}
	return w.w.Flush()
}

// Reader consumes a pcap stream.
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	link    LinkType
	snaplen int
	scratch [recordHeaderLen]byte
}

// Errors returned by Reader.
var (
	ErrBadMagic = errors.New("trace: not a pcap file")
	ErrCorrupt  = errors.New("trace: corrupt record")
)

// NewReader parses the file header and prepares to iterate records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading file header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.BigEndian.Uint32(hdr[0:4]) {
	case magicMicros:
		order = binary.BigEndian
	case magicMicrosSwapped:
		order = binary.LittleEndian
	default:
		return nil, ErrBadMagic
	}
	rd := &Reader{
		r:       br,
		order:   order,
		snaplen: int(order.Uint32(hdr[16:20])),
		link:    LinkType(order.Uint32(hdr[20:24])),
	}
	if rd.snaplen <= 0 || rd.snaplen > MaxSnapLen {
		return nil, fmt.Errorf("%w: snaplen %d", ErrCorrupt, rd.snaplen)
	}
	return rd, nil
}

// LinkType returns the trace's link-layer type.
func (r *Reader) LinkType() LinkType { return r.link }

// SnapLen returns the trace's snap length.
func (r *Reader) SnapLen() int { return r.snaplen }

// Next returns the next record, or io.EOF at a clean end of stream. A
// truncated final record returns ErrCorrupt (wrapped) rather than EOF, so
// failure injection in capture infrastructure is visible to callers.
func (r *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(r.r, r.scratch[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: record header: %v", ErrCorrupt, err)
	}
	sec := r.order.Uint32(r.scratch[0:4])
	usec := r.order.Uint32(r.scratch[4:8])
	capLen := int(r.order.Uint32(r.scratch[8:12]))
	origLen := int(r.order.Uint32(r.scratch[12:16]))
	if capLen < 0 || capLen > r.snaplen || capLen > origLen {
		return Record{}, fmt.Errorf("%w: caplen %d (snaplen %d, origlen %d)", ErrCorrupt, capLen, r.snaplen, origLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("%w: record body: %v", ErrCorrupt, err)
	}
	return Record{
		Time:      time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data:      data,
		OrigLen:   origLen,
		Truncated: capLen < origLen,
	}, nil
}

// ReadAll drains the stream into memory. Intended for tests and modest
// simulated traces.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
