package packet

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"servdisc/internal/netaddr"
)

var (
	srcA = netaddr.MustParseV4("128.125.1.10")
	dstA = netaddr.MustParseV4("66.35.250.150")
	tRef = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
)

func TestTCPRoundTrip(t *testing.T) {
	b := NewBuilder(0)
	syn := b.Syn(tRef, Endpoint{srcA, 40001}, Endpoint{dstA, 80}, 12345)
	wire := syn.Marshal()

	got, err := DecodeIP(wire, tRef)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has(LayerTypeIPv4) || !got.Has(LayerTypeTCP) {
		t.Fatalf("layers = %v", got.Layers)
	}
	if got.IPv4.Src != srcA || got.IPv4.Dst != dstA {
		t.Errorf("addresses: %v -> %v", got.IPv4.Src, got.IPv4.Dst)
	}
	if got.TCP.SrcPort != 40001 || got.TCP.DstPort != 80 {
		t.Errorf("ports: %d -> %d", got.TCP.SrcPort, got.TCP.DstPort)
	}
	if !got.TCP.Flags.Has(FlagSYN) || got.TCP.Flags.Has(FlagACK) {
		t.Errorf("flags = %v", got.TCP.Flags)
	}
	if got.TCP.Seq != 12345 {
		t.Errorf("seq = %d", got.TCP.Seq)
	}
	if !got.IPv4.Verify() {
		t.Error("IP checksum invalid")
	}
	if !got.TCP.Verify(&got.IPv4, got.Payload) {
		t.Error("TCP checksum invalid")
	}
}

func TestSynAckAndRstFlags(t *testing.T) {
	b := NewBuilder(0)
	sa := b.SynAck(tRef, Endpoint{dstA, 80}, Endpoint{srcA, 40001}, 777, 12346)
	if !sa.TCP.Flags.Has(FlagSYN | FlagACK) {
		t.Errorf("SynAck flags = %v", sa.TCP.Flags)
	}
	rst := b.Rst(tRef, Endpoint{dstA, 81}, Endpoint{srcA, 40001}, 0)
	if !rst.TCP.Flags.Has(FlagRST) {
		t.Errorf("Rst flags = %v", rst.TCP.Flags)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	b := NewBuilder(0)
	payload := []byte("dns-query")
	dg := b.UDPPacket(tRef, Endpoint{srcA, 5353}, Endpoint{dstA, 53}, payload)
	wire := dg.Marshal()

	got, err := DecodeIP(wire, tRef)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has(LayerTypeUDP) {
		t.Fatalf("layers = %v", got.Layers)
	}
	if got.UDP.SrcPort != 5353 || got.UDP.DstPort != 53 {
		t.Errorf("ports: %d -> %d", got.UDP.SrcPort, got.UDP.DstPort)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.UDP.Length != uint16(8+len(payload)) {
		t.Errorf("length = %d", got.UDP.Length)
	}
}

func TestICMPPortUnreachable(t *testing.T) {
	b := NewBuilder(0)
	probe := b.UDPPacket(tRef, Endpoint{srcA, 40000}, Endpoint{dstA, 137}, []byte{0})
	icmp := b.PortUnreachable(tRef.Add(time.Millisecond), dstA, probe)
	wire := icmp.Marshal()

	got, err := DecodeIP(wire, tRef)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has(LayerTypeICMPv4) {
		t.Fatalf("layers = %v", got.Layers)
	}
	if !got.ICMPv4.IsPortUnreachable() {
		t.Errorf("type/code = %d/%d", got.ICMPv4.Type, got.ICMPv4.Code)
	}
	flow, ok := QuotedFlow(got.Payload)
	if !ok {
		t.Fatal("QuotedFlow failed")
	}
	if flow.Src.Addr != srcA || flow.Dst.Port != 137 {
		t.Errorf("quoted flow = %v", flow)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	b := NewBuilder(0)
	p := b.Syn(tRef, Endpoint{srcA, 1}, Endpoint{dstA, 22}, 1)
	p.Ethernet = Ethernet{
		Dst:       [6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		Src:       [6]byte{0, 1, 2, 3, 4, 5},
		EtherType: EtherTypeIPv4,
	}
	p.Layers = append([]LayerType{LayerTypeEthernet}, p.Layers...)
	wire := p.Marshal()

	got, err := Decode(wire, tRef)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has(LayerTypeEthernet) || !got.Has(LayerTypeTCP) {
		t.Fatalf("layers = %v", got.Layers)
	}
	if got.Ethernet.Src != p.Ethernet.Src {
		t.Error("ethernet src mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	b := NewBuilder(0)
	wire := b.Syn(tRef, Endpoint{srcA, 1}, Endpoint{dstA, 22}, 1).Marshal()
	for _, n := range []int{0, 10, 19, 21, 39} {
		if n >= len(wire) {
			continue
		}
		if _, err := DecodeIP(wire[:n], tRef); err == nil {
			t.Errorf("DecodeIP of %d bytes succeeded", n)
		}
	}
}

func TestDecodeBadVersion(t *testing.T) {
	b := NewBuilder(0)
	wire := b.Syn(tRef, Endpoint{srcA, 1}, Endpoint{dstA, 22}, 1).Marshal()
	wire[0] = 0x65 // version 6
	if _, err := DecodeIP(wire, tRef); err == nil {
		t.Error("bad version accepted")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d
	// (one's complement of 0xddf2).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd-length handling.
	if got := Checksum([]byte{0xab}); got != ^uint16(0xab00) {
		t.Errorf("odd-length checksum = %#04x", got)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	b := NewBuilder(0)
	wire := b.Syn(tRef, Endpoint{srcA, 1}, Endpoint{dstA, 80}, 9).Marshal()
	p, err := DecodeIP(wire, tRef)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IPv4.Verify() {
		t.Fatal("fresh packet fails verify")
	}
	p.IPv4.TTL ^= 0xFF
	if p.IPv4.Verify() {
		t.Error("corrupted header passed verify")
	}
}

func TestMarshalDecodeProperty(t *testing.T) {
	// Property: any TCP packet built from random fields round-trips.
	b := NewBuilder(0)
	f := func(srcIP, dstIP uint32, sp, dp uint16, seq, ack uint32, flags uint8, npayload uint8) bool {
		payload := bytes.Repeat([]byte{0xA5}, int(npayload))
		p := b.TCPPacket(tRef, Endpoint{netaddr.V4(srcIP), sp}, Endpoint{netaddr.V4(dstIP), dp},
			TCPFlags(flags), seq, ack, payload)
		wire := p.Marshal()
		got, err := DecodeIP(wire, tRef)
		if err != nil {
			return false
		}
		return got.IPv4.Src == netaddr.V4(srcIP) &&
			got.IPv4.Dst == netaddr.V4(dstIP) &&
			got.TCP.SrcPort == sp && got.TCP.DstPort == dp &&
			got.TCP.Seq == seq && got.TCP.Ack == ack &&
			got.TCP.Flags == TCPFlags(flags) &&
			bytes.Equal(got.Payload, payload) &&
			got.IPv4.Verify() &&
			got.TCP.Verify(&got.IPv4, got.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPMarshalDecodeProperty(t *testing.T) {
	b := NewBuilder(0)
	f := func(srcIP, dstIP uint32, sp, dp uint16, npayload uint8) bool {
		payload := bytes.Repeat([]byte{0x5A}, int(npayload))
		p := b.UDPPacket(tRef, Endpoint{netaddr.V4(srcIP), sp}, Endpoint{netaddr.V4(dstIP), dp}, payload)
		got, err := DecodeIP(p.Marshal(), tRef)
		if err != nil {
			return false
		}
		return got.UDP.SrcPort == sp && got.UDP.DstPort == dp && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFlow(t *testing.T) {
	b := NewBuilder(0)
	p := b.Syn(tRef, Endpoint{srcA, 40001}, Endpoint{dstA, 80}, 1)
	fl, ok := p.Flow()
	if !ok {
		t.Fatal("Flow failed")
	}
	if fl.Src.Port != 40001 || fl.Dst.Port != 80 {
		t.Errorf("flow = %v", fl)
	}
	rev := fl.Reverse()
	if rev.Src != fl.Dst || rev.Dst != fl.Src {
		t.Error("Reverse broken")
	}
	if fl.Canonical() != rev.Canonical() {
		t.Error("Canonical not direction-invariant")
	}
	icmp := b.PortUnreachable(tRef, dstA, b.UDPPacket(tRef, Endpoint{srcA, 1}, Endpoint{dstA, 2}, nil))
	if _, ok := icmp.Flow(); ok {
		t.Error("ICMP packet should have no flow")
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Errorf("String = %q", s)
	}
	if s := TCPFlags(0).String(); s != "none" {
		t.Errorf("String = %q", s)
	}
}

func TestLayerTypeString(t *testing.T) {
	for lt, want := range map[LayerType]string{
		LayerTypeEthernet: "Ethernet",
		LayerTypeIPv4:     "IPv4",
		LayerTypeTCP:      "TCP",
		LayerTypeUDP:      "UDP",
		LayerTypeICMPv4:   "ICMPv4",
		LayerType(99):     "LayerType(99)",
	} {
		if got := lt.String(); got != want {
			t.Errorf("String(%d) = %q", lt, got)
		}
	}
}

func TestIPProtocolString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || ProtoICMP.String() != "icmp" {
		t.Error("protocol names wrong")
	}
}

func TestBuilderIPIDsIncrease(t *testing.T) {
	b := NewBuilder(0)
	p1 := b.Syn(tRef, Endpoint{srcA, 1}, Endpoint{dstA, 80}, 0)
	p2 := b.Syn(tRef, Endpoint{srcA, 1}, Endpoint{dstA, 80}, 0)
	if p2.IPv4.ID == p1.IPv4.ID {
		t.Error("IP IDs should differ")
	}
}

func TestDecodeSkipsIPOptions(t *testing.T) {
	// Hand-build an IPv4 header with IHL=6 (4 bytes of options).
	b := NewBuilder(0)
	inner := b.UDPPacket(tRef, Endpoint{srcA, 53}, Endpoint{dstA, 9999}, []byte("x"))
	wire := inner.Marshal()
	opts := make([]byte, 0, len(wire)+4)
	opts = append(opts, wire[:20]...)
	opts[0] = 0x46                  // IHL 6
	opts = append(opts, 1, 1, 1, 0) // NOP NOP NOP EOL
	opts = append(opts, wire[20:]...)
	// Fix total length and checksum.
	be.PutUint16(opts[2:4], uint16(len(opts)))
	be.PutUint16(opts[10:12], 0)
	be.PutUint16(opts[10:12], Checksum(opts[:24]))

	got, err := DecodeIP(opts, tRef)
	if err != nil {
		t.Fatal(err)
	}
	if got.UDP.SrcPort != 53 {
		t.Errorf("src port through options = %d", got.UDP.SrcPort)
	}
}

func BenchmarkMarshalSyn(b *testing.B) {
	bd := NewBuilder(0)
	p := bd.Syn(tRef, Endpoint{srcA, 40001}, Endpoint{dstA, 80}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}

func BenchmarkDecodeSyn(b *testing.B) {
	bd := NewBuilder(0)
	wire := bd.Syn(tRef, Endpoint{srcA, 40001}, Endpoint{dstA, 80}, 1).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeIP(wire, tRef); err != nil {
			b.Fatal(err)
		}
	}
}
