package packet

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"servdisc/internal/netaddr"
)

// be is the network byte order used by every header field.
var be = binary.BigEndian

// EtherType values this system understands.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

const ethHeaderLen = 14

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

// LayerType implements Layer.
func (Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// AppendTo implements Layer.
func (e *Ethernet) AppendTo(dst []byte) []byte {
	dst = append(dst, e.Dst[:]...)
	dst = append(dst, e.Src[:]...)
	return be.AppendUint16(dst, e.EtherType)
}

// DecodeFrom parses the header and returns the remaining bytes.
func (e *Ethernet) DecodeFrom(data []byte) ([]byte, error) {
	if len(data) < ethHeaderLen {
		return nil, fmt.Errorf("%w: ethernet header (%d bytes)", ErrTruncated, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = be.Uint16(data[12:14])
	return data[ethHeaderLen:], nil
}

// IPProtocol is the IPv4 protocol number.
type IPProtocol uint8

// Protocol numbers used by the system.
const (
	ProtoICMP IPProtocol = 1
	ProtoTCP  IPProtocol = 6
	ProtoUDP  IPProtocol = 17
)

// String names the protocol.
func (p IPProtocol) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// MarshalText renders the protocol as its String form ("tcp", "udp",
// "icmp", or "proto(N)" for anything else), so protocol numbers serialize
// as stable names on the federation wire rather than raw bytes.
func (p IPProtocol) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses any form MarshalText produces.
func (p *IPProtocol) UnmarshalText(text []byte) error {
	switch s := string(text); s {
	case "icmp":
		*p = ProtoICMP
	case "tcp":
		*p = ProtoTCP
	case "udp":
		*p = ProtoUDP
	default:
		// Strictly "proto(N)": no trailing bytes, N a decimal uint8.
		inner, ok := strings.CutPrefix(s, "proto(")
		if ok {
			inner, ok = strings.CutSuffix(inner, ")")
		}
		if !ok {
			return fmt.Errorf("packet: unknown protocol %q", s)
		}
		n, err := strconv.ParseUint(inner, 10, 8)
		if err != nil {
			return fmt.Errorf("packet: unknown protocol %q", s)
		}
		*p = IPProtocol(n)
	}
	return nil
}

const ipv4HeaderLen = 20

// IPv4 is an IPv4 header without options (IHL=5), which is all this system
// generates; decoding skips any options present in foreign traces.
type IPv4 struct {
	TOS         uint8
	TotalLength uint16
	ID          uint16
	Flags       uint8 // 3 bits: reserved, DF, MF
	FragOffset  uint16
	TTL         uint8
	Protocol    IPProtocol
	Checksum    uint16
	Src, Dst    netaddr.V4
}

// IPv4 flag bits.
const (
	IPv4DontFragment  = 0x2
	IPv4MoreFragments = 0x1
)

// LayerType implements Layer.
func (IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// AppendTo implements Layer.
func (ip *IPv4) AppendTo(dst []byte) []byte {
	dst = append(dst, 0x45, ip.TOS) // version 4, IHL 5
	dst = be.AppendUint16(dst, ip.TotalLength)
	dst = be.AppendUint16(dst, ip.ID)
	dst = be.AppendUint16(dst, uint16(ip.Flags)<<13|ip.FragOffset&0x1FFF)
	dst = append(dst, ip.TTL, uint8(ip.Protocol))
	dst = be.AppendUint16(dst, ip.Checksum)
	dst = ip.Src.AppendTo(dst)
	dst = ip.Dst.AppendTo(dst)
	return dst
}

// setChecksum recomputes the header checksum in place.
func (ip *IPv4) setChecksum() {
	ip.Checksum = 0
	hdr := ip.AppendTo(make([]byte, 0, ipv4HeaderLen))
	ip.Checksum = Checksum(hdr)
}

// DecodeFrom parses the header and returns the payload bytes (bounded by
// TotalLength when the buffer carries trailing padding).
func (ip *IPv4) DecodeFrom(data []byte) ([]byte, error) {
	if len(data) < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: IPv4 header (%d bytes)", ErrTruncated, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: IHL %d", ErrBadHeader, ihl)
	}
	if len(data) < ihl {
		return nil, fmt.Errorf("%w: IPv4 options", ErrTruncated)
	}
	ip.TOS = data[1]
	ip.TotalLength = be.Uint16(data[2:4])
	ip.ID = be.Uint16(data[4:6])
	ff := be.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1FFF
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = be.Uint16(data[10:12])
	ip.Src, _ = netaddr.FromSlice(data[12:16])
	ip.Dst, _ = netaddr.FromSlice(data[16:20])

	end := int(ip.TotalLength)
	if end == 0 || end > len(data) { // tolerate TSO-style zero or short capture
		end = len(data)
	}
	if end < ihl {
		return nil, fmt.Errorf("%w: total length %d < IHL", ErrBadHeader, ip.TotalLength)
	}
	return data[ihl:end], nil
}

// Verify reports whether the stored header checksum is consistent.
func (ip *IPv4) Verify() bool {
	want := ip.Checksum
	ip.setChecksum()
	got := ip.Checksum
	ip.Checksum = want
	return got == want
}

// TCPFlags is the TCP flag byte (we only model the low 8 bits; ECN bits in
// the data-offset byte are not used by the discovery logic).
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether all bits in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// String renders set flags in nmap-style order ("SYN|ACK").
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagRST, "RST"},
		{FlagFIN, "FIN"}, {FlagPSH, "PSH"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

const tcpHeaderLen = 20

// TCP is a TCP header without options (data offset 5). The discovery system
// never needs options; decoding skips them in foreign traces.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// LayerType implements Layer.
func (TCP) LayerType() LayerType { return LayerTypeTCP }

// AppendTo implements Layer.
func (t *TCP) AppendTo(dst []byte) []byte {
	dst = be.AppendUint16(dst, t.SrcPort)
	dst = be.AppendUint16(dst, t.DstPort)
	dst = be.AppendUint32(dst, t.Seq)
	dst = be.AppendUint32(dst, t.Ack)
	dst = append(dst, 5<<4, uint8(t.Flags)) // data offset 5, no reserved bits
	dst = be.AppendUint16(dst, t.Window)
	dst = be.AppendUint16(dst, t.Checksum)
	dst = be.AppendUint16(dst, t.Urgent)
	return dst
}

func (t *TCP) setChecksum(ip *IPv4, payload []byte) {
	t.Checksum = 0
	seg := t.AppendTo(make([]byte, 0, tcpHeaderLen))
	acc := pseudoHeaderSum(ip.Src, ip.Dst, ProtoTCP, len(seg)+len(payload))
	acc = onesSum(acc, seg)
	acc = onesSum(acc, payload)
	t.Checksum = fold(acc)
}

// DecodeFrom parses the header and returns the payload.
func (t *TCP) DecodeFrom(data []byte) ([]byte, error) {
	if len(data) < tcpHeaderLen {
		return nil, fmt.Errorf("%w: TCP header (%d bytes)", ErrTruncated, len(data))
	}
	t.SrcPort = be.Uint16(data[0:2])
	t.DstPort = be.Uint16(data[2:4])
	t.Seq = be.Uint32(data[4:8])
	t.Ack = be.Uint32(data[8:12])
	off := int(data[12]>>4) * 4
	if off < tcpHeaderLen {
		return nil, fmt.Errorf("%w: TCP data offset %d", ErrBadHeader, off)
	}
	if len(data) < off {
		return nil, fmt.Errorf("%w: TCP options", ErrTruncated)
	}
	t.Flags = TCPFlags(data[13])
	t.Window = be.Uint16(data[14:16])
	t.Checksum = be.Uint16(data[16:18])
	t.Urgent = be.Uint16(data[18:20])
	return data[off:], nil
}

// Verify checks the transport checksum against the pseudo-header.
func (t *TCP) Verify(ip *IPv4, payload []byte) bool {
	want := t.Checksum
	t.setChecksum(ip, payload)
	got := t.Checksum
	t.Checksum = want
	return got == want
}

const udpHeaderLen = 8

// UDP is a UDP header (RFC 768).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// LayerType implements Layer.
func (UDP) LayerType() LayerType { return LayerTypeUDP }

// AppendTo implements Layer.
func (u *UDP) AppendTo(dst []byte) []byte {
	dst = be.AppendUint16(dst, u.SrcPort)
	dst = be.AppendUint16(dst, u.DstPort)
	dst = be.AppendUint16(dst, u.Length)
	dst = be.AppendUint16(dst, u.Checksum)
	return dst
}

func (u *UDP) setChecksum(ip *IPv4, payload []byte) {
	u.Checksum = 0
	hdr := u.AppendTo(make([]byte, 0, udpHeaderLen))
	acc := pseudoHeaderSum(ip.Src, ip.Dst, ProtoUDP, len(hdr)+len(payload))
	acc = onesSum(acc, hdr)
	acc = onesSum(acc, payload)
	c := fold(acc)
	if c == 0 {
		c = 0xFFFF // RFC 768: transmitted all-ones when computed zero
	}
	u.Checksum = c
}

// DecodeFrom parses the header and returns the payload bounded by Length.
func (u *UDP) DecodeFrom(data []byte) ([]byte, error) {
	if len(data) < udpHeaderLen {
		return nil, fmt.Errorf("%w: UDP header (%d bytes)", ErrTruncated, len(data))
	}
	u.SrcPort = be.Uint16(data[0:2])
	u.DstPort = be.Uint16(data[2:4])
	u.Length = be.Uint16(data[4:6])
	u.Checksum = be.Uint16(data[6:8])
	end := int(u.Length)
	if end < udpHeaderLen || end > len(data) {
		end = len(data)
	}
	return data[udpHeaderLen:end], nil
}

// ICMPv4 types and codes used by the system.
const (
	ICMPEchoReply          uint8 = 0
	ICMPDestUnreachable    uint8 = 3
	ICMPEchoRequest        uint8 = 8
	ICMPCodePortUnreach    uint8 = 3
	ICMPCodeHostUnreach    uint8 = 1
	ICMPCodeAdminProhibite uint8 = 13
)

const icmpHeaderLen = 8

// ICMPv4 is an ICMP header; for destination-unreachable messages the
// payload carries the original IP header + 8 bytes, which Decode leaves in
// Packet.Payload.
type ICMPv4 struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	// Rest holds the type-specific 4 bytes (identifier/sequence for echo,
	// unused/MTU for unreachable).
	Rest [4]byte
}

// LayerType implements Layer.
func (ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// AppendTo implements Layer.
func (ic *ICMPv4) AppendTo(dst []byte) []byte {
	dst = append(dst, ic.Type, ic.Code)
	dst = be.AppendUint16(dst, ic.Checksum)
	return append(dst, ic.Rest[:]...)
}

func (ic *ICMPv4) setChecksum(payload []byte) {
	ic.Checksum = 0
	hdr := ic.AppendTo(make([]byte, 0, icmpHeaderLen))
	acc := onesSum(0, hdr)
	acc = onesSum(acc, payload)
	ic.Checksum = fold(acc)
}

// DecodeFrom parses the header and returns the remaining bytes.
func (ic *ICMPv4) DecodeFrom(data []byte) ([]byte, error) {
	if len(data) < icmpHeaderLen {
		return nil, fmt.Errorf("%w: ICMP header (%d bytes)", ErrTruncated, len(data))
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = be.Uint16(data[2:4])
	copy(ic.Rest[:], data[4:8])
	return data[icmpHeaderLen:], nil
}

// IsPortUnreachable reports whether this is a destination-unreachable /
// port-unreachable message — the definitive "no UDP service here" signal
// the paper's UDP methodology relies on (Section 4.5).
func (ic *ICMPv4) IsPortUnreachable() bool {
	return ic.Type == ICMPDestUnreachable && ic.Code == ICMPCodePortUnreach
}
