package packet

import (
	"time"

	"servdisc/internal/netaddr"
)

// Builder synthesizes the handful of packet shapes the simulator and the
// probe engine emit. It assigns monotonically increasing IP IDs so traces
// look plausible to external tooling.
type Builder struct {
	ttl    uint8
	nextID uint16
}

// NewBuilder returns a builder emitting packets with the given TTL
// (64 if ttl is 0).
func NewBuilder(ttl uint8) *Builder {
	if ttl == 0 {
		ttl = 64
	}
	return &Builder{ttl: ttl}
}

func (b *Builder) ip(src, dst netaddr.V4, proto IPProtocol) IPv4 {
	b.nextID++
	return IPv4{
		ID:       b.nextID,
		Flags:    IPv4DontFragment,
		TTL:      b.ttl,
		Protocol: proto,
		Src:      src,
		Dst:      dst,
	}
}

// TCPPacket builds a TCP segment with the given flags and payload.
func (b *Builder) TCPPacket(ts time.Time, src, dst Endpoint, flags TCPFlags, seq, ack uint32, payload []byte) *Packet {
	p := &Packet{
		Timestamp: ts,
		IPv4:      b.ip(src.Addr, dst.Addr, ProtoTCP),
		TCP: TCP{
			SrcPort: src.Port,
			DstPort: dst.Port,
			Seq:     seq,
			Ack:     ack,
			Flags:   flags,
			Window:  65535,
		},
		Payload: payload,
		Layers:  []LayerType{LayerTypeIPv4, LayerTypeTCP},
	}
	if len(payload) > 0 {
		p.Layers = append(p.Layers, LayerTypePayload)
	}
	return p
}

// Syn builds the connection-opening segment of a half-open probe or a
// client connection attempt.
func (b *Builder) Syn(ts time.Time, src, dst Endpoint, seq uint32) *Packet {
	return b.TCPPacket(ts, src, dst, FlagSYN, seq, 0, nil)
}

// SynAck builds a server's accept response — the passive monitor's positive
// evidence of a TCP service (paper Section 3.2).
func (b *Builder) SynAck(ts time.Time, src, dst Endpoint, seq, ack uint32) *Packet {
	return b.TCPPacket(ts, src, dst, FlagSYN|FlagACK, seq, ack, nil)
}

// Rst builds a reset — the "connection refused" signal that confirms a live
// host with no service on the probed port.
func (b *Builder) Rst(ts time.Time, src, dst Endpoint, seq uint32) *Packet {
	return b.TCPPacket(ts, src, dst, FlagRST|FlagACK, seq, 0, nil)
}

// UDPPacket builds a UDP datagram.
func (b *Builder) UDPPacket(ts time.Time, src, dst Endpoint, payload []byte) *Packet {
	p := &Packet{
		Timestamp: ts,
		IPv4:      b.ip(src.Addr, dst.Addr, ProtoUDP),
		UDP: UDP{
			SrcPort: src.Port,
			DstPort: dst.Port,
			Length:  uint16(udpHeaderLen + len(payload)),
		},
		Payload: payload,
		Layers:  []LayerType{LayerTypeIPv4, LayerTypeUDP},
	}
	if len(payload) > 0 {
		p.Layers = append(p.Layers, LayerTypePayload)
	}
	return p
}

// PortUnreachable builds the ICMP response a kernel sends when a UDP probe
// hits a closed port. The payload embeds the offending datagram's IP header
// and first 8 bytes, per RFC 792.
func (b *Builder) PortUnreachable(ts time.Time, src netaddr.V4, offending *Packet) *Packet {
	quoted := offending.IPv4
	quoted.TotalLength = uint16(ipv4HeaderLen + udpHeaderLen)
	quoted.setChecksum()
	payload := quoted.AppendTo(nil)
	payload = offending.UDP.AppendTo(payload)
	p := &Packet{
		Timestamp: ts,
		IPv4:      b.ip(src, offending.IPv4.Src, ProtoICMP),
		ICMPv4: ICMPv4{
			Type: ICMPDestUnreachable,
			Code: ICMPCodePortUnreach,
		},
		Payload: payload,
		Layers:  []LayerType{LayerTypeIPv4, LayerTypeICMPv4, LayerTypePayload},
	}
	return p
}

// QuotedFlow recovers the flow of the datagram embedded in an ICMP
// destination-unreachable payload, so a prober can match responses to the
// probes that caused them.
func QuotedFlow(icmpPayload []byte) (Flow, bool) {
	var ip IPv4
	rest, err := ip.DecodeFrom(icmpPayload)
	if err != nil || len(rest) < 4 {
		return Flow{}, false
	}
	srcPort := be.Uint16(rest[0:2])
	dstPort := be.Uint16(rest[2:4])
	return Flow{
		Src: Endpoint{Addr: ip.Src, Port: srcPort},
		Dst: Endpoint{Addr: ip.Dst, Port: dstPort},
	}, true
}
