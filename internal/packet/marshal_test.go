package packet

import "testing"

// TestIPProtocolTextRoundTrip pins the stable wire names and the strict
// fallback form: "proto(N)" must parse exactly, with no trailing bytes.
func TestIPProtocolTextRoundTrip(t *testing.T) {
	for _, p := range []IPProtocol{ProtoICMP, ProtoTCP, ProtoUDP, IPProtocol(47), IPProtocol(255)} {
		text, err := p.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		var back IPProtocol
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		if back != p {
			t.Errorf("%q round-tripped to %d, want %d", text, back, p)
		}
	}
	for _, bad := range []string{"", "TCP", "proto(6)junk", "proto(", "proto()", "proto(999)", "proto(6", "6"} {
		var p IPProtocol
		if err := p.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("unmarshal %q: expected an error, got %v", bad, p)
		}
	}
}
