package packet

import "servdisc/internal/netaddr"

// onesSum accumulates the 16-bit one's-complement sum over data into acc.
// A trailing odd byte is padded with zero per RFC 1071.
func onesSum(acc uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		acc += uint32(data[n-1]) << 8
	}
	return acc
}

// fold collapses the 32-bit accumulator to the final 16-bit checksum.
func fold(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xFFFF) + (acc >> 16)
	}
	return ^uint16(acc)
}

// Checksum computes the RFC 1071 Internet checksum of data.
func Checksum(data []byte) uint16 {
	return fold(onesSum(0, data))
}

// pseudoHeaderSum computes the partial sum of the IPv4 pseudo-header used
// by the TCP and UDP checksums (RFC 793 §3.1, RFC 768).
func pseudoHeaderSum(src, dst netaddr.V4, proto IPProtocol, length int) uint32 {
	var acc uint32
	acc = onesSum(acc, src.AppendTo(nil))
	acc = onesSum(acc, dst.AppendTo(nil))
	acc += uint32(proto)
	acc += uint32(length)
	return acc
}
