// Package packet implements the wire-format packet model used by the
// capture, trace, and probing subsystems: Ethernet II, IPv4, TCP, UDP and
// ICMPv4 encode/decode with real RFC header layouts and checksums.
//
// The API follows the layered-decoding idioms popularized by gopacket
// (LayerType, Layer, Flow/Endpoint), scaled down to the protocols this
// system needs and implemented on the standard library alone. Decoding is
// allocation-conscious: a Packet decodes all layers into pre-declared
// structs in one pass, and DecodeLayers-style partial decoding is available
// through the individual layers' DecodeFrom methods.
package packet

import (
	"errors"
	"fmt"
	"time"

	"servdisc/internal/netaddr"
)

// LayerType identifies a protocol layer within a packet.
type LayerType uint8

// Known layer types.
const (
	LayerTypeNone LayerType = iota
	LayerTypeEthernet
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeICMPv4
	LayerTypePayload
)

// String names the layer type.
func (lt LayerType) String() string {
	switch lt {
	case LayerTypeNone:
		return "None"
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeICMPv4:
		return "ICMPv4"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", uint8(lt))
	}
}

// Layer is one decoded protocol layer.
type Layer interface {
	// LayerType identifies the layer.
	LayerType() LayerType
	// AppendTo serializes the layer's header (and for leaf layers, its
	// payload) onto dst and returns the extended slice.
	AppendTo(dst []byte) []byte
}

// Decode errors.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// Packet is a fully decoded packet plus capture metadata. The layer fields
// are valid according to which LayerTypes appear in Layers.
type Packet struct {
	// Timestamp is when the packet was captured or synthesized.
	Timestamp time.Time
	// Ethernet is present when decoding started at the link layer.
	Ethernet Ethernet
	// IPv4 is present for all packets this system generates.
	IPv4 IPv4
	// Exactly one of TCP, UDP, ICMPv4 is present for transport.
	TCP    TCP
	UDP    UDP
	ICMPv4 ICMPv4
	// Payload is the undedecoded application bytes, if any.
	Payload []byte
	// Layers lists the decoded layer types in order.
	Layers []LayerType
}

// Has reports whether the packet contains the given layer.
func (p *Packet) Has(lt LayerType) bool {
	for _, l := range p.Layers {
		if l == lt {
			return true
		}
	}
	return false
}

// Decode parses a full frame starting at the Ethernet layer.
func Decode(data []byte, ts time.Time) (*Packet, error) {
	p := &Packet{Timestamp: ts}
	rest, err := p.Ethernet.DecodeFrom(data)
	if err != nil {
		return nil, err
	}
	p.Layers = append(p.Layers, LayerTypeEthernet)
	if p.Ethernet.EtherType != EtherTypeIPv4 {
		p.Payload = rest
		if len(rest) > 0 {
			p.Layers = append(p.Layers, LayerTypePayload)
		}
		return p, nil
	}
	return p, p.decodeIP(rest)
}

// DecodeIP parses a frame that starts directly at the IPv4 header (the
// simulator's native form; link headers carry no information there).
func DecodeIP(data []byte, ts time.Time) (*Packet, error) {
	p := &Packet{Timestamp: ts}
	return p, p.decodeIP(data)
}

func (p *Packet) decodeIP(data []byte) error {
	rest, err := p.IPv4.DecodeFrom(data)
	if err != nil {
		return err
	}
	p.Layers = append(p.Layers, LayerTypeIPv4)
	switch p.IPv4.Protocol {
	case ProtoTCP:
		rest, err = p.TCP.DecodeFrom(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, LayerTypeTCP)
	case ProtoUDP:
		rest, err = p.UDP.DecodeFrom(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, LayerTypeUDP)
	case ProtoICMP:
		rest, err = p.ICMPv4.DecodeFrom(rest)
		if err != nil {
			return err
		}
		p.Layers = append(p.Layers, LayerTypeICMPv4)
	}
	p.Payload = rest
	if len(rest) > 0 {
		p.Layers = append(p.Layers, LayerTypePayload)
	}
	return nil
}

// Marshal serializes the packet's present layers. Length and checksum
// fields are recomputed so callers may mutate headers freely between
// decode and re-encode.
func (p *Packet) Marshal() []byte {
	// Serialize transport + payload first so the IP total length is known.
	var transport []byte
	switch {
	case p.Has(LayerTypeTCP):
		p.TCP.setChecksum(&p.IPv4, p.Payload)
		transport = p.TCP.AppendTo(nil)
	case p.Has(LayerTypeUDP):
		p.UDP.Length = uint16(udpHeaderLen + len(p.Payload))
		p.UDP.setChecksum(&p.IPv4, p.Payload)
		transport = p.UDP.AppendTo(nil)
	case p.Has(LayerTypeICMPv4):
		p.ICMPv4.setChecksum(p.Payload)
		transport = p.ICMPv4.AppendTo(nil)
	}
	body := append(transport, p.Payload...)

	var out []byte
	if p.Has(LayerTypeIPv4) {
		p.IPv4.TotalLength = uint16(ipv4HeaderLen + len(body))
		p.IPv4.setChecksum()
		out = p.IPv4.AppendTo(nil)
		out = append(out, body...)
	} else {
		out = body
	}
	if p.Has(LayerTypeEthernet) {
		frame := p.Ethernet.AppendTo(nil)
		out = append(frame, out...)
	}
	return out
}

// Flow returns the transport 4-tuple flow of the packet, and ok=false when
// the packet has no TCP/UDP layer.
func (p *Packet) Flow() (Flow, bool) {
	switch {
	case p.Has(LayerTypeTCP):
		return Flow{
			Src: Endpoint{Addr: p.IPv4.Src, Port: p.TCP.SrcPort},
			Dst: Endpoint{Addr: p.IPv4.Dst, Port: p.TCP.DstPort},
		}, true
	case p.Has(LayerTypeUDP):
		return Flow{
			Src: Endpoint{Addr: p.IPv4.Src, Port: p.UDP.SrcPort},
			Dst: Endpoint{Addr: p.IPv4.Dst, Port: p.UDP.DstPort},
		}, true
	}
	return Flow{}, false
}

// Endpoint is one side of a transport conversation.
type Endpoint struct {
	Addr netaddr.V4
	Port uint16
}

// String renders "addr:port".
func (e Endpoint) String() string {
	return fmt.Sprintf("%s:%d", e.Addr, e.Port)
}

// Flow is a directed transport-layer conversation.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the flow with src and dst swapped.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders "src->dst".
func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// Canonical returns the flow ordered so that the numerically smaller
// endpoint comes first, suitable for keying bidirectional state.
func (f Flow) Canonical() Flow {
	if f.Src.Addr > f.Dst.Addr || (f.Src.Addr == f.Dst.Addr && f.Src.Port > f.Dst.Port) {
		return f.Reverse()
	}
	return f
}
