// Package faultnet injects deterministic network faults into net.Conn
// links — partitions (connection cuts, including mid-frame truncation),
// latency spikes, bandwidth limits, byte corruption, and byte-span
// duplication — on a scripted or seeded-random schedule.
//
// Faults are applied on the *write* path of a wrapped endpoint, so one
// Faults plan impairs exactly one direction of a link; wrap both ends of
// a net.Pipe (see Pipe) to impair both. All offsets are positions in the
// un-impaired byte stream, so a plan's effect is independent of how the
// writer chunks its writes — the same seed always truncates, corrupts
// and duplicates the same stream positions, which is what makes chaos
// schedules replayable.
//
// Corruption overwrites a byte with 0x00. NUL is invalid everywhere in
// the federation wire format (length prefix, separator, JSON body,
// newline terminator), so a corrupted frame is always a *detectable*
// decode error — never a silently altered payload — and the reader's
// error-and-reconnect path is what gets exercised.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"

	"servdisc/internal/stats"
)

// ErrCut is the error a wrapped connection returns once its plan's cut
// offset has passed; the underlying connection is closed at that point
// (both directions — a cut is a connection reset, not a half-close).
var ErrCut = errors.New("faultnet: link cut")

// Faults is one direction's impairment plan. The zero value injects
// nothing (a clean link).
type Faults struct {
	// CutAt resets the connection once this many bytes have passed —
	// possibly mid-frame, which is how truncation happens. 0 = never.
	CutAt int64
	// CorruptAt overwrites the byte at each of these stream offsets
	// with 0x00 (see the package comment for why NUL).
	CorruptAt []int64
	// DupAt/DupLen re-send the byte span [DupAt, DupAt+DupLen) a second
	// time, immediately after it first passes. Duplicated bytes do not
	// advance stream offsets. DupLen 0 = off.
	DupAt, DupLen int64
	// StallAt/Stall freeze the link once, for Stall, when the stream
	// reaches StallAt — a latency spike long enough to trip write
	// deadlines and idle timeouts. Stall 0 = off.
	StallAt int64
	Stall   time.Duration
	// Latency delays every write by this much (per-chunk propagation
	// delay). 0 = off.
	Latency time.Duration
	// BytesPerSec caps the direction's bandwidth. 0 = unlimited.
	BytesPerSec int
}

// Random draws a seeded impairment plan scaled by meanCut, the mean
// number of bytes before the connection is reset (0 disables cuts).
// Latencies and stalls are kept in the low-millisecond range so chaos
// tests stay fast; determinism comes entirely from the RNG.
func Random(rng *stats.RNG, meanCut int64) Faults {
	var f Faults
	if meanCut > 0 && rng.Bool(0.8) {
		f.CutAt = 1 + int64(rng.Exp(float64(meanCut)))
	}
	if meanCut > 0 && rng.Bool(0.4) {
		f.CorruptAt = []int64{1 + int64(rng.Exp(float64(meanCut)))}
	}
	if meanCut > 0 && rng.Bool(0.3) {
		f.DupAt = 1 + int64(rng.Exp(float64(meanCut)))
		f.DupLen = 1 + int64(rng.Intn(64))
	}
	if rng.Bool(0.4) {
		f.Latency = time.Duration(1+rng.Intn(2000)) * time.Microsecond
	}
	if meanCut > 0 && rng.Bool(0.3) {
		f.StallAt = 1 + int64(rng.Exp(float64(meanCut)))
		f.Stall = time.Duration(1+rng.Intn(20)) * time.Millisecond
	}
	return f
}

// Conn impairs the write direction of an underlying connection according
// to one Faults plan. Reads, deadlines and addresses delegate untouched.
// Writes are serialized by an internal lock (net.Conn allows concurrent
// writers; stream offsets must advance atomically).
type Conn struct {
	net.Conn
	f Faults

	mu      sync.Mutex
	off     int64
	stalled bool
	cut     bool
}

// WrapConn impairs bytes written by this endpoint (one direction of the
// link) according to the plan.
func WrapConn(c net.Conn, send Faults) *Conn {
	return &Conn{Conn: c, f: send}
}

// Pipe is an in-process link with per-direction impairment: clientSend
// shapes bytes the client writes, serverSend bytes the server writes.
// Both ends support deadlines (net.Pipe semantics).
func Pipe(clientSend, serverSend Faults) (client, server net.Conn) {
	c, s := net.Pipe()
	return WrapConn(c, clientSend), WrapConn(s, serverSend)
}

func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, ErrCut
	}
	f := &c.f
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.BytesPerSec > 0 {
		time.Sleep(time.Duration(float64(len(p)) / float64(f.BytesPerSec) * float64(time.Second)))
	}
	if f.Stall > 0 && !c.stalled && c.off+int64(len(p)) > f.StallAt {
		c.stalled = true
		time.Sleep(f.Stall)
	}
	n := len(p)
	cut := false
	if f.CutAt > 0 && c.off+int64(n) >= f.CutAt {
		n = int(f.CutAt - c.off)
		if n < 0 {
			n = 0
		}
		cut = true
	}
	out := p[:n]
	owned := false
	for _, at := range f.CorruptAt {
		if at >= c.off && at < c.off+int64(n) {
			if !owned {
				out = append([]byte(nil), out...)
				owned = true
			}
			out[at-c.off] = 0
		}
	}
	var dup []byte
	dupEnd := 0 // index in out right after the duplicated span
	if f.DupLen > 0 {
		lo, hi := f.DupAt, f.DupAt+f.DupLen
		if lo < c.off {
			lo = c.off
		}
		if hi > c.off+int64(n) {
			hi = c.off + int64(n)
		}
		if lo < hi {
			dup = out[lo-c.off : hi-c.off]
			dupEnd = int(hi - c.off)
		}
	}
	if dup != nil {
		// The duplicated span re-enters the stream immediately after it
		// first passes, without advancing stream offsets.
		wn, err := c.Conn.Write(out[:dupEnd])
		c.off += int64(wn)
		if err != nil {
			return wn, err
		}
		if _, err := c.Conn.Write(dup); err != nil {
			return dupEnd, err
		}
		out = out[dupEnd:]
	}
	wn, err := c.Conn.Write(out)
	c.off += int64(wn)
	if err != nil {
		return dupEnd + wn, err
	}
	if cut {
		c.cut = true
		c.Conn.Close()
		return n, ErrCut
	}
	return n, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.Conn.Close() }
