package faultnet

import (
	"context"
	"io"
	"net"
	"time"
)

// PlanFunc supplies the impairment plans for the i-th proxied connection
// (0-based): clientSend shapes the client-to-target direction, serverSend
// the target-to-client direction. Returning two zero plans passes the
// connection through clean.
type PlanFunc func(conn int) (clientSend, serverSend Faults)

// Proxy is a TCP fault-injection proxy: it accepts connections, dials
// the target for each, and relays both directions through per-connection
// impairment plans. It is the out-of-process face of this package — the
// CI chaos smoke runs real passived/federated binaries through it.
type Proxy struct {
	ln     net.Listener
	target string
	plan   PlanFunc
}

// Listen opens the proxy's listener. Run starts relaying.
func Listen(addr, target string, plan PlanFunc) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Proxy{ln: ln, target: target, plan: plan}, nil
}

// Addr is the proxy's listening address (for :0 listeners).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Run accepts and relays until the listener closes or the context is
// cancelled (which closes the listener).
func (p *Proxy) Run(ctx context.Context) error {
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					p.ln.Close()
				case <-stop:
				}
			}()
		}
	}
	for i := 0; ; i++ {
		down, err := p.ln.Accept()
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		clientSend, serverSend := p.plan(i)
		go p.relay(down, clientSend, serverSend)
	}
}

// relay pumps one proxied connection: two copy loops, each writing
// through its direction's impairment. A cut (or any error) on either
// direction tears down both — a connection reset, not a half-close.
func (p *Proxy) relay(down net.Conn, clientSend, serverSend Faults) {
	defer down.Close()
	up, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		return
	}
	defer up.Close()
	wUp := WrapConn(up, clientSend)
	wDown := WrapConn(down, serverSend)
	done := make(chan struct{}, 2)
	go func() {
		_, _ = io.Copy(wUp, down)
		up.Close()
		down.Close()
		done <- struct{}{}
	}()
	go func() {
		_, _ = io.Copy(wDown, up)
		up.Close()
		down.Close()
		done <- struct{}{}
	}()
	<-done
	<-done
}
