package faultnet

import (
	"bytes"
	"context"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"servdisc/internal/stats"
)

// readAll drains a conn on a goroutine-independent deadline so a broken
// impairment cannot hang the test.
func readAll(t *testing.T, c net.Conn) []byte {
	t.Helper()
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf bytes.Buffer
	_, _ = io.Copy(&buf, c)
	return buf.Bytes()
}

// TestCutTruncatesMidChunk pins the partition fault: the link delivers
// exactly CutAt bytes — truncating inside the offending write — then
// resets both directions.
func TestCutTruncatesMidChunk(t *testing.T) {
	client, server := Pipe(Faults{}, Faults{CutAt: 100})
	payload := bytes.Repeat([]byte("x"), 300)
	errc := make(chan error, 1)
	go func() {
		_, err := server.Write(payload)
		errc <- err
	}()
	got := readAll(t, client)
	if len(got) != 100 {
		t.Fatalf("delivered %d bytes across a CutAt=100 link, want exactly 100", len(got))
	}
	if err := <-errc; err != ErrCut {
		t.Fatalf("writer error = %v, want ErrCut", err)
	}
	if _, err := server.Write([]byte("more")); err != ErrCut {
		t.Fatalf("write after cut = %v, want ErrCut", err)
	}
}

// TestCorruptionZeroesExactOffsets pins the corruption fault: the byte
// at each CorruptAt stream offset becomes NUL regardless of how the
// writer chunks, and every other byte is untouched.
func TestCorruptionZeroesExactOffsets(t *testing.T) {
	client, server := Pipe(Faults{}, Faults{CorruptAt: []int64{3, 17}})
	go func() {
		// Two writes with the second corruption offset inside the second
		// chunk: offsets must be stream positions, not chunk positions.
		server.Write([]byte("0123456789"))
		server.Write([]byte("abcdefghij"))
		server.Close()
	}()
	got := readAll(t, client)
	want := []byte("012\x00456789abcdefg\x00ij")
	if !bytes.Equal(got, want) {
		t.Fatalf("corrupted stream = %q, want %q", got, want)
	}
}

// TestDuplicationReplaysSpan pins the duplication fault: the span
// [DupAt, DupAt+DupLen) passes twice, immediately repeated, and stream
// offsets keep counting the un-duplicated stream.
func TestDuplicationReplaysSpan(t *testing.T) {
	client, server := Pipe(Faults{}, Faults{DupAt: 5, DupLen: 3})
	go func() {
		server.Write([]byte("abcdefghij"))
		server.Close()
	}()
	got := readAll(t, client)
	want := []byte("abcdefghfghij")
	if !bytes.Equal(got, want) {
		t.Fatalf("duplicated stream = %q, want %q", got, want)
	}
}

// TestRandomDeterministic pins replayability: the same seed draws the
// same plan, a different seed a different one.
func TestRandomDeterministic(t *testing.T) {
	a := Random(stats.NewRNG(7).Derive("chaos"), 1<<16)
	b := Random(stats.NewRNG(7).Derive("chaos"), 1<<16)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different plans:\n%+v\n%+v", a, b)
	}
	diff := false
	for seed := uint64(8); seed < 16; seed++ {
		if !reflect.DeepEqual(a, Random(stats.NewRNG(seed).Derive("chaos"), 1<<16)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("eight different seeds all drew the same plan")
	}
}

// TestProxyCutsRealTCP runs the out-of-process face end to end: a TCP
// source serving a known byte stream, the proxy cutting the first
// connection mid-stream and passing the second clean.
func TestProxyCutsRealTCP(t *testing.T) {
	payload := bytes.Repeat([]byte("servdisc"), 1024) // 8 KiB
	src, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	go func() {
		for {
			c, err := src.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(c)
		}
	}()

	proxy, err := Listen("127.0.0.1:0", src.Addr().String(), func(conn int) (Faults, Faults) {
		if conn == 0 {
			return Faults{}, Faults{CutAt: 1000}
		}
		return Faults{}, Faults{}
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go proxy.Run(ctx)

	dial := func() []byte {
		c, err := net.Dial("tcp", proxy.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		return readAll(t, c)
	}
	if got := dial(); len(got) != 1000 {
		t.Fatalf("first (cut) connection delivered %d bytes, want 1000", len(got))
	}
	if got := dial(); !bytes.Equal(got, payload) {
		t.Fatalf("second (clean) connection delivered %d bytes, want the full %d", len(got), len(payload))
	}
}
