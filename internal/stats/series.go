package stats

import (
	"fmt"
	"sort"
	"time"
)

// Point is one sample of a time series: a timestamp and a value.
type Point struct {
	T time.Time
	V float64
}

// Series is an append-mostly time series with helpers for the cumulative
// discovery curves the paper plots. Points need not arrive in order; Sort
// (or any accessor that requires order) normalizes.
type Series struct {
	Name   string
	pts    []Point
	sorted bool
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name, sorted: true}
}

// Add appends a sample.
func (s *Series) Add(t time.Time, v float64) {
	if n := len(s.pts); s.sorted && n > 0 && s.pts[n-1].T.After(t) {
		s.sorted = false
	}
	s.pts = append(s.pts, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.pts) }

// Sort orders samples by time (stable for equal timestamps).
func (s *Series) Sort() {
	if !s.sorted {
		sort.SliceStable(s.pts, func(i, j int) bool { return s.pts[i].T.Before(s.pts[j].T) })
		s.sorted = true
	}
}

// Points returns the ordered samples. The returned slice is owned by the
// series; callers must not mutate it.
func (s *Series) Points() []Point {
	s.Sort()
	return s.pts
}

// At returns the value in effect at time t (the most recent sample at or
// before t), or 0 if t precedes the first sample. This treats the series as
// a step function, which matches cumulative-count semantics.
func (s *Series) At(t time.Time) float64 {
	s.Sort()
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T.After(t) })
	if i == 0 {
		return 0
	}
	return s.pts[i-1].V
}

// Last returns the final value, or 0 for an empty series.
func (s *Series) Last() float64 {
	s.Sort()
	if len(s.pts) == 0 {
		return 0
	}
	return s.pts[len(s.pts)-1].V
}

// FirstReaching returns the earliest time the series value is >= v, and
// ok=false if it never reaches it. Used for "time to find 99% of
// flow-weighted servers" style questions (Figure 1).
func (s *Series) FirstReaching(v float64) (time.Time, bool) {
	s.Sort()
	for _, p := range s.pts {
		if p.V >= v {
			return p.T, true
		}
	}
	return time.Time{}, false
}

// Scale returns a copy with every value multiplied by f (e.g. to convert
// counts to percent-of-union).
func (s *Series) Scale(f float64) *Series {
	out := NewSeries(s.Name)
	for _, p := range s.Points() {
		out.Add(p.T, p.V*f)
	}
	return out
}

// Resample returns the series sampled at fixed steps across [from, to],
// carrying values forward. Handy for aligning several discovery curves on
// one time base before printing a figure.
func (s *Series) Resample(from, to time.Time, step time.Duration) *Series {
	if step <= 0 {
		panic("stats: Resample with non-positive step")
	}
	out := NewSeries(s.Name)
	for t := from; !t.After(to); t = t.Add(step) {
		out.Add(t, s.At(t))
	}
	return out
}

// Counter accumulates integer counts keyed by string, with deterministic
// ordered output. It backs the summary tables.
type Counter struct {
	m map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]int)} }

// Inc adds delta to key.
func (c *Counter) Inc(key string, delta int) { c.m[key] += delta }

// Get returns the count for key (0 if absent).
func (c *Counter) Get(key string) int { return c.m[key] }

// Keys returns all keys in sorted order.
func (c *Counter) Keys() []string {
	ks := make([]string, 0, len(c.m))
	for k := range c.m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Total sums all counts.
func (c *Counter) Total() int {
	t := 0
	for _, v := range c.m {
		t += v
	}
	return t
}

// Percent formats v as a percentage of total in the paper's style:
// two significant digits ("19%", "2.3%", "0.39%").
func Percent(v, total int) string {
	if total == 0 {
		return "n/a"
	}
	p := 100 * float64(v) / float64(total)
	switch {
	case p >= 10:
		return fmt.Sprintf("%.0f%%", p)
	case p >= 1:
		return fmt.Sprintf("%.1f%%", p)
	default:
		return fmt.Sprintf("%.2f%%", p)
	}
}
