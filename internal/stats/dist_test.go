package stats

import (
	"math"
	"testing"
)

func TestZipfRanksInRange(t *testing.T) {
	z := NewZipf(NewRNG(1), 1.0, 100)
	for i := 0; i < 10000; i++ {
		r := z.Rank()
		if r < 1 || r > 100 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfHeavyTail(t *testing.T) {
	// With s=1.0 over 1000 ranks, rank 1 should receive ~13% of mass and the
	// top 10 ranks roughly 40%.
	z := NewZipf(NewRNG(2), 1.0, 1000)
	const trials = 200000
	top1, top10 := 0, 0
	for i := 0; i < trials; i++ {
		r := z.Rank()
		if r == 1 {
			top1++
		}
		if r <= 10 {
			top10++
		}
	}
	p1 := float64(top1) / trials
	p10 := float64(top10) / trials
	if p1 < 0.10 || p1 > 0.17 {
		t.Errorf("P(rank 1) = %v", p1)
	}
	if p10 < 0.35 || p10 > 0.45 {
		t.Errorf("P(rank<=10) = %v", p10)
	}
}

func TestZipfWeightMatchesSampling(t *testing.T) {
	z := NewZipf(NewRNG(3), 1.2, 50)
	var total float64
	for k := 1; k <= 50; k++ {
		total += z.Weight(k)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %v", total)
	}
	if z.Weight(0) != 0 || z.Weight(51) != 0 {
		t.Error("out-of-range Weight should be 0")
	}
	if z.Weight(1) <= z.Weight(2) {
		t.Error("weights not decreasing")
	}
}

func TestZipfWeightsHelper(t *testing.T) {
	w := ZipfWeights(1.0, 10)
	if len(w) != 10 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v >= w[i-1] {
			t.Error("weights not strictly decreasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(NewRNG(1), 1, 0) },
		func() { NewZipf(NewRNG(1), 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestParetoBounds(t *testing.T) {
	p := NewPareto(NewRNG(5), 1.2, 10, 1000)
	for i := 0; i < 10000; i++ {
		v := p.Sample()
		if v < 10-1e-9 || v > 1000+1e-9 {
			t.Fatalf("Pareto sample %v out of bounds", v)
		}
	}
}

func TestParetoSkew(t *testing.T) {
	p := NewPareto(NewRNG(6), 1.5, 1, 10000)
	const trials = 100000
	below := 0
	for i := 0; i < trials; i++ {
		if p.Sample() < 10 {
			below++
		}
	}
	// Heavy-tailed: the vast majority of samples sit near the low bound.
	if frac := float64(below) / trials; frac < 0.9 {
		t.Errorf("only %v of samples below 10", frac)
	}
}

func TestDiurnalProfile(t *testing.T) {
	p := DefaultDiurnal()
	if p.At(12) <= p.At(3) {
		t.Error("midday should exceed 3am")
	}
	// Interpolation: value at 12.5 between buckets 12 and 13.
	v := p.At(12.5)
	lo, hi := math.Min(p[12], p[13]), math.Max(p[12], p[13])
	if v < lo-1e-9 || v > hi+1e-9 {
		t.Errorf("At(12.5) = %v outside [%v,%v]", v, lo, hi)
	}
	// Wrap-around and negative hours.
	if p.At(36) != p.At(12) {
		t.Error("At should wrap at 24h")
	}
	if math.Abs(p.At(-12)-p.At(12)) > 1e-9 {
		t.Error("negative hours should wrap")
	}
}

func TestFlatDiurnal(t *testing.T) {
	p := FlatDiurnal()
	for h := 0.0; h < 24; h += 0.5 {
		if p.At(h) != 1 {
			t.Fatalf("flat profile At(%v) = %v", h, p.At(h))
		}
	}
	if p.Mean() != 1 {
		t.Errorf("Mean = %v", p.Mean())
	}
}

func BenchmarkZipfRank(b *testing.B) {
	z := NewZipf(NewRNG(1), 1.0, 3000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = z.Rank()
	}
}
