package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	root := NewRNG(7)
	x := root.Derive("traffic")
	y := root.Derive("scanner")
	x2 := NewRNG(7).Derive("traffic")
	for i := 0; i < 100; i++ {
		if x.Uint64() != x2.Uint64() {
			t.Fatal("same-name derivation not reproducible")
		}
	}
	// Different names should give (overwhelmingly) different streams.
	z := NewRNG(7).Derive("traffic")
	same := 0
	for i := 0; i < 100; i++ {
		if y.Uint64() == z.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams correlated: %d/100 equal", same)
	}
}

func TestDeriveDoesNotConsumeParent(t *testing.T) {
	a := NewRNG(5)
	b := NewRNG(5)
	a.Derive("x")
	a.Derive("y")
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive consumed parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestBool(t *testing.T) {
	r := NewRNG(13)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	const mean, trials = 5.0, 200000
	var sum float64
	for i := 0; i < trials; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / trials
	if math.Abs(got-mean) > 0.1 {
		t.Errorf("Exp mean = %v, want %v", got, mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(19)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const trials = 50000
		sum := 0
		for i := 0; i < trials; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / trials
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(23)
	const trials = 200000
	var sum, sq float64
	for i := 0; i < trials; i++ {
		v := r.Norm(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / trials
	variance := sq/trials - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Errorf("Norm variance = %v", variance)
	}
}

func TestPerm(t *testing.T) {
	r := NewRNG(29)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(31)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[r.Pick(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("Pick chose zero-weight element %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("Pick ratio = %v, want 3", ratio)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	NewRNG(1).Pick([]float64{0, 0})
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPoisson(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(8)
	}
}
