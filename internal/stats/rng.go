// Package stats supplies the deterministic random-number machinery and
// distribution samplers that drive the campus simulation, plus small
// time-series utilities used by the analysis code.
//
// Determinism is a design requirement (DESIGN.md §4.2): every experiment in
// the reproduction must be bit-for-bit repeatable from a single root seed.
// The package therefore implements its own xoshiro256** generator rather
// than depending on math/rand's global state, and derives independent
// sub-streams by name so adding a consumer never perturbs existing ones.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; derive one sub-stream per goroutine with Derive.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds a generator from a 64-bit seed using splitmix64, the
// initialization recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Derive returns an independent sub-stream keyed by name. Two RNGs derived
// with different names from the same parent produce uncorrelated streams;
// deriving with the same name twice yields identical streams. This lets the
// simulator hand each subsystem ("traffic", "scanner:3", ...) its own
// generator whose output does not shift when unrelated subsystems change
// their consumption.
func (r *RNG) Derive(name string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	// Mix the parent's seed material without consuming from its stream.
	return NewRNG(h ^ r.s[0] ^ bits.RotateLeft64(r.s[2], 17))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Int63 returns a non-negative 63-bit value, mirroring math/rand.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// The mean must be positive.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp with non-positive mean")
	}
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// LogUniform returns a value whose logarithm is uniform over [lo, hi].
// The campus model draws rare-server request rates from this distribution:
// it spreads mass across several orders of magnitude, realizing the
// heavy-tailed access rates the paper infers in Section 4.2.1 ("server
// request rates are heavy tailed, and so there is a number of very rarely
// accessed servers that require a very long time to discover").
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("stats: invalid LogUniform bounds")
	}
	return lo * math.Exp(r.Float64()*math.Log(hi/lo))
}

// Norm returns a normally distributed value via the polar Box-Muller
// transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and normal approximation above 64 (the
// simulator's per-interval arrival counts stay well below the point where
// approximation error matters).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n), Fisher-Yates shuffled.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Pick returns a uniformly random element index weighted by w. The weights
// must be non-negative and not all zero.
func (r *RNG) Pick(w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		panic("stats: Pick with zero total weight")
	}
	target := r.Float64() * total
	for i, x := range w {
		target -= x
		if target < 0 {
			return i
		}
	}
	return len(w) - 1
}
