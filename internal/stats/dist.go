package stats

import (
	"math"
	"sort"
)

// Zipf samples ranks 1..N with P(rank=k) ∝ 1/k^S. The paper's analysis
// (Section 4.2.1) concludes that "server request rates are heavy tailed";
// the simulator realizes server popularity with this sampler so that the
// "99% of flows found in minutes" behaviour of Figure 1 emerges from the
// tail rather than being hard-coded.
type Zipf struct {
	rng *RNG
	// cdf[i] is the cumulative probability of ranks 1..i+1.
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s > 0. It
// precomputes the CDF; n is bounded by the simulator's server counts
// (thousands), so the table stays small.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("stats: Zipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank samples a rank in [1, N].
func (z *Zipf) Rank() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// Weight returns the probability mass of the given rank (1-based).
func (z *Zipf) Weight(rank int) float64 {
	if rank < 1 || rank > len(z.cdf) {
		return 0
	}
	if rank == 1 {
		return z.cdf[0]
	}
	return z.cdf[rank-1] - z.cdf[rank-2]
}

// ZipfWeights returns normalized Zipf(s) weights for n ranks without
// allocating a sampler, for callers that assign static popularity mass.
func ZipfWeights(s float64, n int) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		w[k-1] = 1 / math.Pow(float64(k), s)
		sum += w[k-1]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Pareto samples a bounded Pareto distribution on [lo, hi] with shape a.
// Used for service lifetimes and session durations.
type Pareto struct {
	rng    *RNG
	lo, hi float64
	alpha  float64
}

// NewPareto builds a bounded Pareto sampler. Requires 0 < lo < hi, a > 0.
func NewPareto(rng *RNG, a, lo, hi float64) *Pareto {
	if lo <= 0 || hi <= lo || a <= 0 {
		panic("stats: invalid Pareto parameters")
	}
	return &Pareto{rng: rng, lo: lo, hi: hi, alpha: a}
}

// Sample draws a value in [lo, hi].
func (p *Pareto) Sample() float64 {
	u := p.rng.Float64()
	la := math.Pow(p.lo, p.alpha)
	ha := math.Pow(p.hi, p.alpha)
	// Inverse-CDF of the bounded Pareto.
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.alpha)
}

// DiurnalProfile modulates a rate over the day. Values are multipliers per
// hour-of-day; the profile the campus simulator uses peaks mid-day,
// reflecting the paper's Section 5.1 finding that daytime scans see ~3%
// more hosts than night scans.
type DiurnalProfile [24]float64

// DefaultDiurnal approximates a campus weekday: low load 02:00-06:00,
// ramp through the morning, peak 11:00-17:00, evening shoulder.
func DefaultDiurnal() DiurnalProfile {
	return DiurnalProfile{
		0.45, 0.35, 0.25, 0.22, 0.22, 0.25,
		0.35, 0.55, 0.80, 1.00, 1.15, 1.25,
		1.30, 1.30, 1.25, 1.20, 1.15, 1.05,
		0.95, 0.90, 0.85, 0.75, 0.65, 0.55,
	}
}

// FlatDiurnal returns an always-1.0 profile (ablation: removes time-of-day
// effects).
func FlatDiurnal() DiurnalProfile {
	var p DiurnalProfile
	for i := range p {
		p[i] = 1
	}
	return p
}

// At returns the multiplier for the given hour offset (in hours, may exceed
// 24; fractional hours interpolate linearly between buckets).
func (p DiurnalProfile) At(hours float64) float64 {
	h := math.Mod(hours, 24)
	if h < 0 {
		h += 24
	}
	i := int(h) % 24
	j := (i + 1) % 24
	frac := h - math.Floor(h)
	return p[i]*(1-frac) + p[j]*frac
}

// Mean returns the average multiplier across the day.
func (p DiurnalProfile) Mean() float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s / 24
}
