package stats

import (
	"testing"
	"time"
)

var t0 = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)

func TestSeriesStepSemantics(t *testing.T) {
	s := NewSeries("disc")
	s.Add(t0, 1)
	s.Add(t0.Add(time.Hour), 5)
	s.Add(t0.Add(2*time.Hour), 7)

	if got := s.At(t0.Add(-time.Minute)); got != 0 {
		t.Errorf("before first = %v", got)
	}
	if got := s.At(t0); got != 1 {
		t.Errorf("at first = %v", got)
	}
	if got := s.At(t0.Add(90 * time.Minute)); got != 5 {
		t.Errorf("mid = %v", got)
	}
	if got := s.Last(); got != 7 {
		t.Errorf("Last = %v", got)
	}
}

func TestSeriesOutOfOrderAdds(t *testing.T) {
	s := NewSeries("x")
	s.Add(t0.Add(2*time.Hour), 3)
	s.Add(t0, 1)
	s.Add(t0.Add(time.Hour), 2)
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T.Before(pts[i-1].T) {
			t.Fatal("points not sorted")
		}
	}
	if s.At(t0.Add(30*time.Minute)) != 1 {
		t.Error("At after out-of-order insert wrong")
	}
}

func TestSeriesFirstReaching(t *testing.T) {
	s := NewSeries("x")
	s.Add(t0, 10)
	s.Add(t0.Add(time.Hour), 50)
	s.Add(t0.Add(2*time.Hour), 99)

	when, ok := s.FirstReaching(50)
	if !ok || !when.Equal(t0.Add(time.Hour)) {
		t.Errorf("FirstReaching(50) = %v, %v", when, ok)
	}
	if _, ok := s.FirstReaching(1000); ok {
		t.Error("FirstReaching(1000) should fail")
	}
}

func TestSeriesScaleAndResample(t *testing.T) {
	s := NewSeries("x")
	s.Add(t0, 4)
	s.Add(t0.Add(time.Hour), 8)
	sc := s.Scale(0.5)
	if sc.Last() != 4 {
		t.Errorf("Scale Last = %v", sc.Last())
	}
	re := s.Resample(t0, t0.Add(2*time.Hour), 30*time.Minute)
	if re.Len() != 5 {
		t.Fatalf("Resample Len = %d", re.Len())
	}
	if re.Points()[1].V != 4 || re.Points()[2].V != 8 {
		t.Errorf("Resample values wrong: %+v", re.Points())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Last() != 0 || s.At(t0) != 0 {
		t.Error("empty series should read 0")
	}
	if _, ok := s.FirstReaching(1); ok {
		t.Error("empty FirstReaching should fail")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("web", 2)
	c.Inc("ssh", 1)
	c.Inc("web", 3)
	if c.Get("web") != 5 || c.Get("ssh") != 1 || c.Get("absent") != 0 {
		t.Error("counter values wrong")
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "ssh" || keys[1] != "web" {
		t.Errorf("Keys = %v", keys)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestPercentFormatting(t *testing.T) {
	cases := []struct {
		v, total int
		want     string
	}{
		{1707, 1748, "98%"},
		{327, 1748, "19%"},
		{41, 1748, "2.3%"},
		{2, 504, "0.40%"},
		{0, 100, "0.00%"},
		{5, 0, "n/a"},
	}
	for _, c := range cases {
		if got := Percent(c.v, c.total); got != c.want {
			t.Errorf("Percent(%d,%d) = %q, want %q", c.v, c.total, got, c.want)
		}
	}
}
