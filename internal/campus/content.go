package campus

import (
	"fmt"
	"time"

	"servdisc/internal/netaddr"
)

// FetchRoot simulates downloading the root web page of a discovered server,
// as the paper's Table 5 methodology does within a day of discovery. It
// returns the page body and true on success, or "" and false when the host
// is gone, powered off, or not serving web content any more.
//
// The fetch is a full TCP connection from the monitoring machine (internal,
// not a half-open probe), so stealth-firewalled services still refuse it:
// the fetcher is not one of the service's own clients.
func (n *Network) FetchRoot(now time.Time, addr netaddr.V4) (string, bool) {
	h, ok := n.byAddr[addr]
	if !ok || !h.UpAt(now) {
		return "", false
	}
	svc := h.ServiceOn(6, PortHTTP) // packet.ProtoTCP
	if svc == nil {
		svc = h.ServiceOn(6, PortHTTPS)
	}
	if svc == nil || svc.StealthFW {
		return "", false
	}
	return RenderRootPage(svc.Content, addr), true
}

// RenderRootPage produces a plausible root page for a content category.
// The bodies intentionally include the phrases the webcat signature set
// keys on, the same way real default/config pages carry fixed strings
// (the paper's signature set matched e.g. 14 strings of the Apache default
// page).
func RenderRootPage(cat ContentCategory, addr netaddr.V4) string {
	switch cat {
	case ContentCustom:
		return fmt.Sprintf(`<html><head><title>Research group %s</title></head>
<body><h1>Welcome</h1>
<p>Publications, software releases and project news for the lab at %s.</p>
<ul><li>papers/</li><li>software/</li><li>people/</li></ul>
<p>Last updated by the webmaster.</p></body></html>`, addr, addr)
	case ContentDefault:
		return `<html><head><title>Test Page for Apache Installation</title></head>
<body><h1>Seeing this instead of the website you expected?</h1>
<p>This page is here because the site administrator has changed the
configuration of this web server. If you are the administrator of this
website and have questions, consult the Apache HTTP Server documentation.
The Apache Software Foundation is not responsible for this content.</p>
<p>You may now add content to the directory /var/www/html/.</p>
<p>Powered by Apache.</p></body></html>`
	case ContentMinimal:
		return `<html><body>ok</body></html>`
	case ContentConfig:
		return fmt.Sprintf(`<html><head><title>HP JetDirect - Device Status</title></head>
<body><h2>Printer Status: Ready</h2>
<table><tr><td>Model</td><td>LaserJet 4250</td></tr>
<tr><td>IP Address</td><td>%s</td></tr>
<tr><td>Toner Level</td><td>73%%</td></tr></table>
<a href="/config">Device Configuration</a> | <a href="/net">Networking</a>
</body></html>`, addr)
	case ContentDatabase:
		return `<html><head><title>Oracle Application Server - Database Login</title></head>
<body><h1>iSQL*Plus</h1>
<form action="/isqlplus/login"><p>Connect Identifier</p>
<p>Username: <input name="user"></p><p>Password: <input type="password"></p>
</form><p>Oracle Database 10g front-end.</p></body></html>`
	case ContentRestricted:
		return `<html><head><title>401 Authorization Required</title></head>
<body><h1>Authorization Required</h1>
<p>This server could not verify that you are authorized to access this
document. Please log in with a valid username and password.</p>
</body></html>`
	default:
		return ""
	}
}
