package campus

import (
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// Service is one network service on a host.
type Service struct {
	// Port and Proto identify the listening socket.
	Port  uint16
	Proto packet.IPProtocol

	// RatePerDay is the mean external client flow arrival rate while the
	// host is online. Popular services instead take a share of the
	// campus-wide popular flow mass.
	RatePerDay float64

	// Popular marks the continuously busy servers; PopularWeight is the
	// service's share of Config.PopularFlowShare.
	Popular       bool
	PopularWeight float64

	// BlockExternal drops SYNs from off-campus sources: external clients
	// and external scans never reach it, internal probes do (the MySQL
	// pattern of Section 4.4.3).
	BlockExternal bool

	// StealthFW drops all unsolicited probes to this port — internal
	// half-open scans and external scanners alike — while still serving
	// its own clients (the "possible firewall" rows of Tables 3/4).
	StealthFW bool

	// GenericUDPReply marks UDP services that answer a malformed generic
	// probe (some DNS and NetBIOS implementations, Section 4.5).
	GenericUDPReply bool

	// LocalOnly marks services whose traffic never crosses the border
	// (NetBIOS, epmap); passive monitoring at the peering cannot see
	// them regardless of activity.
	LocalOnly bool

	// Clients are the dedicated external client addresses of a rare
	// service; empty for popular services, which draw from the whole
	// client pool.
	Clients []netaddr.V4

	// Content categorizes the root page when Port is a web port.
	Content ContentCategory
}

// Host is one machine (or VPN/PPP endpoint) in the campus population.
type Host struct {
	// ID indexes the host in the network's host table.
	ID int
	// Class determines address behaviour.
	Class AddressClass
	// HomeAddr is the permanent address of static hosts and the sticky
	// lease of stable DHCP hosts; zero for session-addressed hosts.
	HomeAddr netaddr.V4
	// Services lists the listening services (empty for live-only hosts).
	Services []Service

	// Born is when the host first exists; the zero time means "since
	// before the window".
	Born time.Time
	// Dies is when the host permanently stops responding; the zero time
	// means "never".
	Dies time.Time

	// AlwaysUp hosts answer whenever probed (servers). Others use the
	// day/night probabilities below, evaluated per hour slot.
	AlwaysUp bool
	// UpDay and UpNight are the probabilities a non-AlwaysUp host is
	// powered on during a daytime (08-20) or nighttime hour.
	UpDay, UpNight float64

	// SilentUDP hosts drop UDP probes to closed ports without emitting
	// ICMP port-unreachable (host firewalls, Windows default policy).
	SilentUDP bool

	// upSalt decorrelates the per-hour liveness hash between hosts.
	upSalt uint64

	// attachedAddr is the current dynamic address of a transient host
	// (zero when offline). Static hosts keep it equal to HomeAddr.
	attachedAddr netaddr.V4
}

// ServiceOn returns the service listening on (proto, port), or nil.
func (h *Host) ServiceOn(proto packet.IPProtocol, port uint16) *Service {
	for i := range h.Services {
		s := &h.Services[i]
		if s.Port == port && s.Proto == proto {
			return s
		}
	}
	return nil
}

// HasTCPService reports whether the host serves any TCP port at all.
func (h *Host) HasTCPService() bool {
	for i := range h.Services {
		if h.Services[i].Proto == packet.ProtoTCP {
			return true
		}
	}
	return false
}

// Attached reports whether the host currently holds an address.
func (h *Host) Attached() bool { return h.attachedAddr != 0 }

// Addr returns the host's current address (zero when offline).
func (h *Host) Addr() netaddr.V4 { return h.attachedAddr }

// existsAt reports whether the host has been born and not yet died.
func (h *Host) existsAt(t time.Time) bool {
	if !h.Born.IsZero() && t.Before(h.Born) {
		return false
	}
	if !h.Dies.IsZero() && !t.Before(h.Dies) {
		return false
	}
	return true
}

// UpAt reports whether the host answers the network at time t. Transient
// hosts must additionally be attached, which the caller checks via the
// address table; this method models power state only.
func (h *Host) UpAt(t time.Time) bool {
	if !h.existsAt(t) {
		return false
	}
	if h.AlwaysUp {
		return true
	}
	p := h.UpNight
	if hr := t.Hour(); hr >= 8 && hr < 20 {
		p = h.UpDay
	}
	slot := uint64(t.Unix() / 3600)
	return hashUnit(h.upSalt, slot) < p
}

// hashUnit maps (salt, x) to a uniform float in [0,1) deterministically,
// via a splitmix64 round.
func hashUnit(salt, x uint64) float64 {
	z := salt ^ (x * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
