package campus

import (
	"fmt"

	"servdisc/internal/netaddr"
)

// HostSpec describes a custom host for populations the default builders do
// not cover (e.g. the all-ports lab subnet of dataset DTCPall).
type HostSpec struct {
	// Class of the address block; only ClassStatic hosts can be pinned
	// to an address.
	Class AddressClass
	// Addr pins the host to a specific address (must be free and inside
	// a block of Class); zero picks the next free static address.
	Addr netaddr.V4
	// AlwaysUp or day/night probabilities as in Host.
	AlwaysUp       bool
	UpDay, UpNight float64
	// SilentUDP drops UDP probes to closed ports without ICMP.
	SilentUDP bool
	// Services to install verbatim.
	Services []Service
}

// AddHost installs a custom host into the population. It is intended for
// experiment setups built on an otherwise-empty config.
func (n *Network) AddHost(spec HostSpec) (*Host, error) {
	h := n.newHost(spec.Class)
	h.AlwaysUp = spec.AlwaysUp
	h.UpDay, h.UpNight = spec.UpDay, spec.UpNight
	h.SilentUDP = spec.SilentUDP
	h.Services = append(h.Services, spec.Services...)

	addr := spec.Addr
	if addr == 0 {
		if len(n.staticFreeAddrs) == 0 {
			return nil, fmt.Errorf("campus: no free static addresses")
		}
		addr = n.takeFreeStatic()
	} else {
		if _, taken := n.byAddr[addr]; taken {
			return nil, fmt.Errorf("campus: address %s already assigned", addr)
		}
		if c, ok := n.plan.ClassOf(addr); !ok || c != spec.Class {
			return nil, fmt.Errorf("campus: address %s not in a %s block", addr, spec.Class)
		}
		// Remove it from the free pool if present there.
		for i, a := range n.staticFreeAddrs {
			if a == addr {
				n.staticFreeAddrs = append(n.staticFreeAddrs[:i], n.staticFreeAddrs[i+1:]...)
				break
			}
		}
	}
	h.HomeAddr = addr
	n.attach(h, addr)
	return h, nil
}

// RandomClients draws k addresses from the external client pool, for
// callers assembling custom service populations.
func (n *Network) RandomClients(k int) []netaddr.V4 {
	return n.pickClients(k)
}
