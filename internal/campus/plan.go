package campus

import (
	"fmt"

	"servdisc/internal/netaddr"
)

// Block is one allocated chunk of the campus address plan.
type Block struct {
	// Name is a human-readable label ("static-07", "dhcp", "vpn").
	Name string
	// Class drives allocation and transience behaviour.
	Class AddressClass
	// Range is the half-open address span of the block.
	Range netaddr.Range
}

// Plan is the campus address layout: an ordered list of blocks laid out
// consecutively from the campus base address.
type Plan struct {
	blocks []Block
	// classIndex locates the first block of each class for fast lookup.
	total int
	base  netaddr.V4
}

// BuildPlan lays out the address space described by the config. Static
// space is split into cfg.StaticSubnets consecutive subnets followed by the
// DHCP, wireless, PPP and VPN pools, mirroring the paper's 38-subnet space.
func BuildPlan(cfg *Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{base: cfg.CampusBase}
	next := cfg.CampusBase

	addBlock := func(name string, class AddressClass, size int) {
		if size == 0 {
			return
		}
		r := netaddr.Range{Lo: next, Hi: next + netaddr.V4(size)}
		p.blocks = append(p.blocks, Block{Name: name, Class: class, Range: r})
		next += netaddr.V4(size)
		p.total += size
	}

	// Spread static space across subnets, front-loading the remainder so
	// sizes differ by at most one.
	per := cfg.StaticAddrs / cfg.StaticSubnets
	rem := cfg.StaticAddrs % cfg.StaticSubnets
	for i := 0; i < cfg.StaticSubnets; i++ {
		size := per
		if i < rem {
			size++
		}
		addBlock(fmt.Sprintf("static-%02d", i), ClassStatic, size)
	}
	addBlock("dhcp", ClassDHCP, cfg.DHCPAddrs)
	addBlock("wireless", ClassWireless, cfg.WirelessAddrs)
	addBlock("ppp", ClassPPP, cfg.PPPAddrs)
	addBlock("vpn", ClassVPN, cfg.VPNAddrs)
	return p, nil
}

// Blocks returns the plan's blocks in address order.
func (p *Plan) Blocks() []Block { return p.blocks }

// Total returns the number of addresses in the plan.
func (p *Plan) Total() int { return p.total }

// Base returns the first campus address.
func (p *Plan) Base() netaddr.V4 { return p.base }

// Contains reports whether a is inside the campus space.
func (p *Plan) Contains(a netaddr.V4) bool {
	return a >= p.base && a < p.base+netaddr.V4(p.total)
}

// ClassOf returns the address class of a campus address, and ok=false for
// addresses outside the plan.
func (p *Plan) ClassOf(a netaddr.V4) (AddressClass, bool) {
	for _, b := range p.blocks {
		if b.Range.Contains(a) {
			return b.Class, true
		}
	}
	return 0, false
}

// ClassRange returns the contiguous range covering all blocks of the given
// class (the transient pools are each a single block; static spans many).
func (p *Plan) ClassRange(c AddressClass) (netaddr.Range, bool) {
	var lo, hi netaddr.V4
	found := false
	for _, b := range p.blocks {
		if b.Class != c {
			continue
		}
		if !found || b.Range.Lo < lo {
			lo = b.Range.Lo
		}
		if !found || b.Range.Hi > hi {
			hi = b.Range.Hi
		}
		found = true
	}
	return netaddr.Range{Lo: lo, Hi: hi}, found
}

// Addresses returns every address of the given classes in order. With no
// classes it returns the full space.
func (p *Plan) Addresses(classes ...AddressClass) []netaddr.V4 {
	want := func(c AddressClass) bool {
		if len(classes) == 0 {
			return true
		}
		for _, x := range classes {
			if x == c {
				return true
			}
		}
		return false
	}
	var out []netaddr.V4
	for _, b := range p.blocks {
		if !want(b.Class) {
			continue
		}
		for i := 0; i < b.Range.Size(); i++ {
			out = append(out, b.Range.At(i))
		}
	}
	return out
}

// ProbeTargets returns the space an internal scan sweeps: everything except
// the wireless block, which the paper's operators could not probe
// (Section 4.4.2).
func (p *Plan) ProbeTargets() []netaddr.V4 {
	var out []netaddr.V4
	for _, b := range p.blocks {
		if b.Class == ClassWireless {
			continue
		}
		for i := 0; i < b.Range.Size(); i++ {
			out = append(out, b.Range.At(i))
		}
	}
	return out
}
