package campus

import (
	"fmt"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/stats"
)

// TCPResponse is a host's reaction to an incoming SYN.
type TCPResponse uint8

// TCP responses.
const (
	// TCPNone: no reply (dead address, powered-off host, or firewall drop).
	TCPNone TCPResponse = iota
	// TCPSynAck: service accepted the connection.
	TCPSynAck
	// TCPRst: live host, no service on the port.
	TCPRst
)

// UDPResponse is a host's reaction to a UDP datagram to a given port.
type UDPResponse uint8

// UDP responses.
const (
	// UDPSilent: no reply (dead, dropped, or open-but-mute service).
	UDPSilent UDPResponse = iota
	// UDPReply: service answered the generic probe.
	UDPReply
	// UDPUnreachable: ICMP port unreachable — definitely no service.
	UDPUnreachable
)

// Network is the instantiated campus population: the address plan, every
// host, current address occupancy, and the external client pool. All
// methods are single-goroutine, driven by the simulation engine.
type Network struct {
	cfg  Config
	plan *Plan
	rng  *stats.RNG

	hosts  []*Host
	byAddr map[netaddr.V4]*Host

	// free address pools per transient class.
	free map[AddressClass][]netaddr.V4

	// clients is the external client address pool; the first academic
	// count of them route via Internet2.
	clients  []netaddr.V4
	academic int

	// popular holds the busy static servers for fast traffic generation.
	popular []*Host

	// staticFreeAddrs feeds server births.
	staticFreeAddrs []netaddr.V4
}

// NewNetwork builds the population from the config. Construction is
// deterministic in cfg.Seed.
func NewNetwork(cfg Config) (*Network, error) {
	plan, err := BuildPlan(&cfg)
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg:    cfg,
		plan:   plan,
		rng:    stats.NewRNG(cfg.Seed).Derive("campus"),
		byAddr: make(map[netaddr.V4]*Host),
		free:   make(map[AddressClass][]netaddr.V4),
	}
	n.buildClients()
	n.buildStatic()
	n.buildTransient()
	return n, nil
}

// Plan exposes the address layout.
func (n *Network) Plan() *Plan { return n.plan }

// Config returns the configuration the network was built from.
func (n *Network) Config() Config { return n.cfg }

// Hosts returns the full host table (ground truth for tests).
func (n *Network) Hosts() []*Host { return n.hosts }

// Clients returns the external client pool.
func (n *Network) Clients() []netaddr.V4 { return n.clients }

// IsAcademicClient reports whether the client routes via Internet2.
func (n *Network) IsAcademicClient(a netaddr.V4) bool {
	for i := 0; i < n.academic; i++ {
		if n.clients[i] == a {
			return true
		}
	}
	return false
}

// AcademicClients returns the Internet2-routed prefix of the client pool.
func (n *Network) AcademicClients() []netaddr.V4 { return n.clients[:n.academic] }

// External reports whether an address is outside the campus plan.
func (n *Network) External(a netaddr.V4) bool { return !n.plan.Contains(a) }

func (n *Network) buildClients() {
	// Clients sit in distinct /16s far from campus; consecutive addresses
	// within a synthetic pool are fine for the model.
	base := netaddr.MustParseV4("64.0.0.0")
	n.clients = make([]netaddr.V4, n.cfg.ClientPool)
	for i := range n.clients {
		// Spread across /24s so link hashing sees diverse addresses.
		n.clients[i] = base + netaddr.V4(i*7+i/251)
	}
	n.academic = int(float64(n.cfg.ClientPool) * n.cfg.AcademicClientFrac)
}

func (n *Network) newHost(class AddressClass) *Host {
	h := &Host{
		ID:     len(n.hosts),
		Class:  class,
		upSalt: n.rng.Uint64(),
	}
	n.hosts = append(n.hosts, h)
	return h
}

// attach places a host at an address and indexes it.
func (n *Network) attach(h *Host, a netaddr.V4) {
	if prev, ok := n.byAddr[a]; ok && prev != h {
		panic(fmt.Sprintf("campus: address %s double-assigned", a))
	}
	h.attachedAddr = a
	n.byAddr[a] = h
}

// detach removes a host from its current address.
func (n *Network) detach(h *Host) {
	if h.attachedAddr == 0 {
		return
	}
	delete(n.byAddr, h.attachedAddr)
	h.attachedAddr = 0
}

func (n *Network) buildStatic() {
	addrs := n.plan.Addresses(ClassStatic)
	perm := n.rng.Perm(len(addrs))
	next := 0
	take := func() netaddr.V4 {
		a := addrs[perm[next]]
		next++
		return a
	}

	// Popular servers: always up, custom content, busy.
	weights := stats.ZipfWeights(n.cfg.PopularZipfS, n.cfg.PopularServers)
	for i := 0; i < n.cfg.PopularServers; i++ {
		h := n.newHost(ClassStatic)
		h.AlwaysUp = true
		h.HomeAddr = take()
		n.assignServices(h, true)
		for j := range h.Services {
			h.Services[j].Popular = true
			h.Services[j].PopularWeight = weights[i] / float64(len(h.Services))
			h.Services[j].Content = ContentCustom
		}
		n.popular = append(n.popular, h)
		n.attach(h, h.HomeAddr)
	}

	// Rare static servers, including the stealth-firewalled and the early
	// deaths.
	rare := n.cfg.StaticServers - n.cfg.PopularServers
	for i := 0; i < rare; i++ {
		h := n.newHost(ClassStatic)
		h.AlwaysUp = n.rng.Bool(0.97)
		if !h.AlwaysUp {
			h.UpDay, h.UpNight = 0.90, 0.60
		}
		h.HomeAddr = take()
		n.assignServices(h, false)
		if i < n.cfg.StealthFirewalled {
			// Stealth hosts drop probes on service ports but need client
			// traffic dense enough that a long passive watch sees them.
			for j := range h.Services {
				h.Services[j].StealthFW = true
				if h.Services[j].RatePerDay < 0.2 {
					h.Services[j].RatePerDay = 0.2 + n.rng.Float64()
				}
			}
		} else if i < n.cfg.StealthFirewalled+n.cfg.ServerDeaths {
			// Early deaths: busy enough to be overheard in the first
			// half-day, gone within a few days.
			for j := range h.Services {
				h.Services[j].RatePerDay = 3 + 3*n.rng.Float64()
			}
			h.Dies = n.cfg.Start.Add(time.Duration(12+n.rng.Intn(84)) * time.Hour)
		}
		n.attach(h, h.HomeAddr)
	}

	// Live non-server hosts: the RST population.
	for i := 0; i < n.cfg.StaticLiveHosts; i++ {
		h := n.newHost(ClassStatic)
		h.UpDay, h.UpNight = 0.88, 0.55
		h.SilentUDP = n.rng.Bool(n.cfg.UDP.SilentAliveFrac)
		h.HomeAddr = take()
		n.attach(h, h.HomeAddr)
	}

	n.buildUDPPopulation(take)

	// Remaining static addresses stay dark; keep them for births.
	for ; next < len(perm); next++ {
		n.staticFreeAddrs = append(n.staticFreeAddrs, addrs[perm[next]])
	}
}

// buildUDPPopulation places the DUDP dataset's UDP servers on additional
// static hosts (DNS and game servers) and marks a Windows sub-population
// with open NetBIOS ports on the live hosts built above.
func (n *Network) buildUDPPopulation(take func() netaddr.V4) {
	u := n.cfg.UDP

	for i := 0; i < u.DNSServers; i++ {
		h := n.newHost(ClassStatic)
		h.AlwaysUp = true
		h.HomeAddr = take()
		svc := Service{
			Port:            UDPPortDNS,
			Proto:           packet.ProtoUDP,
			GenericUDPReply: i < u.DNSGenericReply,
			RatePerDay:      0,
		}
		if n.rng.Bool(u.DNSExternalFrac) {
			svc.RatePerDay = u.DNSQueriesPerDay
		}
		h.Services = append(h.Services, svc)
		n.attach(h, h.HomeAddr)
	}

	for i := 0; i < u.GameServers; i++ {
		h := n.newHost(ClassStatic)
		h.AlwaysUp = true
		h.HomeAddr = take()
		h.Services = append(h.Services, Service{
			Port:       UDPPortGame,
			Proto:      packet.ProtoUDP,
			RatePerDay: u.GamePacketsPerDay,
		})
		n.attach(h, h.HomeAddr)
	}

	// Windows hosts: NetBIOS open, silent to UDP probes on other ports,
	// traffic local-only except for the leaky few. Reuse live non-server
	// hosts; create extras if the live population is too small.
	windows := 0
	for _, h := range n.hosts {
		if windows >= u.WindowsHosts {
			break
		}
		if h.Class == ClassStatic && len(h.Services) == 0 && h.HomeAddr != 0 {
			n.markWindows(h, windows, u)
			windows++
		}
	}
	for ; windows < u.WindowsHosts && len(n.staticFreeAddrs) > 0; windows++ {
		h := n.newHost(ClassStatic)
		h.UpDay, h.UpNight = 0.85, 0.50
		h.HomeAddr = n.takeFreeStatic()
		n.markWindows(h, windows, u)
		n.attach(h, h.HomeAddr)
	}
}

func (n *Network) markWindows(h *Host, idx int, u UDPConfig) {
	// Pre-SP2 Windows answers ICMP port-unreachable on closed UDP ports;
	// the open-but-mute NetBIOS port is what lands these hosts in the
	// "possibly open" bucket of Table 7 (alive elsewhere, silent on 137).
	h.SilentUDP = false
	h.Services = append(h.Services, Service{
		Port:            UDPPortNetBIOS,
		Proto:           packet.ProtoUDP,
		GenericUDPReply: idx < u.NetBIOSGenericReply,
		// Only the designated leaky hosts ever emit NetBIOS across the
		// border (Section 4.5: "NetBIOS traffic does not typically cross
		// border routers"); answering a generic probe is independent.
		LocalOnly:  idx >= u.NetBIOSLeaks,
		RatePerDay: 2, // within-campus chatter; LocalOnly hides it from the border
	})
}

func (n *Network) takeFreeStatic() netaddr.V4 {
	last := len(n.staticFreeAddrs) - 1
	a := n.staticFreeAddrs[last]
	n.staticFreeAddrs = n.staticFreeAddrs[:last]
	return a
}

// assignServices populates a server host's TCP service set from the
// configured mix. Popular hosts always include web.
func (n *Network) assignServices(h *Host, popular bool) {
	for {
		h.Services = h.Services[:0]
		add := func(port uint16, p float64) {
			if n.rng.Bool(p) {
				h.Services = append(h.Services, n.newTCPService(port, popular))
			}
		}
		add(PortHTTP, n.cfg.PWeb)
		add(PortSSH, n.cfg.PSSH)
		add(PortFTP, n.cfg.PFTP)
		add(PortMySQL, n.cfg.PMySQL)
		add(PortHTTPS, n.cfg.PHTTPS)
		if len(h.Services) > 0 {
			break
		}
	}
	if popular && h.ServiceOn(packet.ProtoTCP, PortHTTP) == nil {
		h.Services = append(h.Services, n.newTCPService(PortHTTP, true))
	}
}

func (n *Network) newTCPService(port uint16, popular bool) Service {
	s := Service{
		Port:  port,
		Proto: packet.ProtoTCP,
	}
	if !popular {
		s.RatePerDay = n.rng.LogUniform(n.cfg.RareRateLoPerDay, n.cfg.RareRateHiPerDay)
		s.Clients = n.pickClients(1 + n.rng.Poisson(n.cfg.RareClientMean))
	}
	if port == PortMySQL {
		s.BlockExternal = n.rng.Bool(n.cfg.MySQLBlockExternal)
	}
	if port == PortHTTP || port == PortHTTPS {
		s.Content = n.pickContent()
	}
	return s
}

func (n *Network) pickClients(k int) []netaddr.V4 {
	out := make([]netaddr.V4, k)
	for i := range out {
		out[i] = n.clients[n.rng.Intn(len(n.clients))]
	}
	return out
}

func (n *Network) pickContent() ContentCategory {
	w := n.cfg.ContentWeights
	idx := n.rng.Pick([]float64{w.Custom, w.Default, w.Minimal, w.Config, w.Database, w.Restricted})
	return [...]ContentCategory{
		ContentCustom, ContentDefault, ContentMinimal,
		ContentConfig, ContentDatabase, ContentRestricted,
	}[idx]
}

func (n *Network) buildTransient() {
	// Free pools.
	for _, class := range []AddressClass{ClassDHCP, ClassWireless, ClassPPP, ClassVPN} {
		addrs := n.plan.Addresses(class)
		perm := n.rng.Perm(len(addrs))
		pool := make([]netaddr.V4, len(addrs))
		for i, j := range perm {
			pool[i] = addrs[j]
		}
		n.free[class] = pool
	}

	// DHCP residents: attached from the start with sticky leases.
	for i := 0; i < n.cfg.DHCPHosts; i++ {
		h := n.newHost(ClassDHCP)
		h.UpDay, h.UpNight = 0.85, 0.70
		if n.rng.Bool(n.cfg.DHCPServerFrac) {
			n.assignTransientServices(h, n.cfg.TransientRateLoPerDay, n.cfg.TransientRateHiPerDay)
		}
		if a, ok := n.allocAddr(ClassDHCP); ok {
			h.HomeAddr = a
			n.attach(h, a)
		}
	}

	// PPP hosts start detached; every session draws a fresh pool address.
	for i := 0; i < n.cfg.PPPHosts; i++ {
		h := n.newHost(ClassPPP)
		h.AlwaysUp = true // power state is subsumed by session presence
		if n.rng.Bool(n.cfg.PPPServerFrac) {
			n.assignTransientServices(h, n.cfg.PPPRateLoPerDay, n.cfg.PPPRateHiPerDay)
		}
	}
	// VPN endpoints are sticky: the concentrator assigns each user a fixed
	// inner address, so 35 sweeps find roughly the user population, not
	// the whole churned pool (Figure 5: ~100 VPN servers found actively).
	for i := 0; i < n.cfg.VPNHosts; i++ {
		h := n.newHost(ClassVPN)
		h.AlwaysUp = true
		if a, ok := n.allocAddr(ClassVPN); ok {
			h.HomeAddr = a
		}
		if n.rng.Bool(n.cfg.VPNServerFrac) {
			n.assignTransientServices(h, n.cfg.PPPRateLoPerDay, n.cfg.PPPRateHiPerDay)
			for j := range h.Services {
				// Clients almost never use the VPN address.
				h.Services[j].RatePerDay = n.cfg.VPNClientRatePerDay
				h.Services[j].Content = ContentDefault
			}
		}
	}
	for i := 0; i < n.cfg.WirelessHosts; i++ {
		h := n.newHost(ClassWireless)
		h.UpDay, h.UpNight = 0.7, 0.2
	}
}

// assignTransientServices gives a transient host a small personal service
// set: usually ssh or a default web server, occasionally ftp.
func (n *Network) assignTransientServices(h *Host, lo, hi float64) {
	add := func(port uint16, content ContentCategory) {
		n.addTransientService(h, port, content, lo, hi)
	}
	switch n.rng.Intn(10) {
	case 0, 1, 2, 3:
		add(PortSSH, 0)
	case 4, 5, 6:
		add(PortHTTP, ContentDefault)
	case 7:
		add(PortHTTP, ContentDefault)
		add(PortSSH, 0)
	case 8:
		add(PortFTP, 0)
		add(PortSSH, 0)
	default:
		add(PortHTTP, ContentMinimal)
	}
}

func (n *Network) addTransientService(h *Host, port uint16, content ContentCategory, lo, hi float64) {
	h.Services = append(h.Services, Service{
		Port:       port,
		Proto:      packet.ProtoTCP,
		RatePerDay: n.rng.LogUniform(lo, hi),
		Clients:    n.pickClients(1 + n.rng.Poisson(1)),
		Content:    content,
	})
}

// allocAddr pops a free address of the class.
func (n *Network) allocAddr(class AddressClass) (netaddr.V4, bool) {
	pool := n.free[class]
	if len(pool) == 0 {
		return 0, false
	}
	a := pool[len(pool)-1]
	n.free[class] = pool[:len(pool)-1]
	return a, true
}

// releaseAddr returns an address to its class pool.
func (n *Network) releaseAddr(class AddressClass, a netaddr.V4) {
	n.free[class] = append(n.free[class], a)
}

// HostAt returns the host currently holding an address.
func (n *Network) HostAt(a netaddr.V4) (*Host, bool) {
	h, ok := n.byAddr[a]
	return h, ok
}

// RespondTCP models the campus side of a SYN arriving at (dst, port) at
// time now from src. isProbe marks unsolicited scan traffic (internal
// half-open scans and external scanners), which stealth firewalls drop.
func (n *Network) RespondTCP(now time.Time, src, dst netaddr.V4, port uint16, isProbe bool) TCPResponse {
	h, ok := n.byAddr[dst]
	if !ok || !h.UpAt(now) {
		return TCPNone
	}
	svc := h.ServiceOn(packet.ProtoTCP, port)
	if svc == nil {
		return TCPRst
	}
	if svc.StealthFW && isProbe {
		return TCPNone
	}
	if svc.BlockExternal && n.External(src) {
		return TCPNone
	}
	return TCPSynAck
}

// RespondUDP models the campus side of a UDP datagram to (dst, port).
func (n *Network) RespondUDP(now time.Time, src, dst netaddr.V4, port uint16) UDPResponse {
	h, ok := n.byAddr[dst]
	if !ok || !h.UpAt(now) {
		return UDPSilent
	}
	if svc := h.ServiceOn(packet.ProtoUDP, port); svc != nil {
		if svc.GenericUDPReply {
			return UDPReply
		}
		return UDPSilent // open, but a malformed probe gets no answer
	}
	if h.SilentUDP {
		return UDPSilent
	}
	return UDPUnreachable
}

// ServiceInstance is one (address, service) pair active at a point in time,
// as enumerated for traffic generation.
type ServiceInstance struct {
	Addr netaddr.V4
	Host *Host
	Svc  *Service
}

// ActiveServices appends every attached, powered-on service instance at
// time now to dst and returns it. Traffic generation calls this once per
// simulated hour. Iteration follows host creation order, keeping RNG
// consumption downstream deterministic (map order would not).
func (n *Network) ActiveServices(now time.Time, dst []ServiceInstance) []ServiceInstance {
	for _, h := range n.hosts {
		if !h.Attached() || !h.UpAt(now) {
			continue
		}
		for i := range h.Services {
			dst = append(dst, ServiceInstance{Addr: h.attachedAddr, Host: h, Svc: &h.Services[i]})
		}
	}
	return dst
}
