package campus

import (
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/stats"
)

// Config describes a campus population. The default constructors encode the
// calibration that reproduces the paper's published aggregates; experiments
// derive variants (winter break, all-ports /24, UDP) from them.
type Config struct {
	// Seed feeds the root RNG. Every random decision in the model derives
	// from it, making runs bit-for-bit reproducible.
	Seed uint64

	// Start is the beginning of the observation window (DTCP1-18d starts
	// 2006-09-19 10:00 local time).
	Start time.Time

	// CampusBase is the first address of the campus space; blocks are laid
	// out consecutively from it.
	CampusBase netaddr.V4

	// StaticAddrs, DHCPAddrs, WirelessAddrs, PPPAddrs, VPNAddrs size the
	// address blocks. The paper's space: 16,130 total = 13,826 static +
	// 1,024 DHCP (/22 residence halls) + 512 wireless (/23) + 512 PPP
	// (/23) + 256 VPN (/24).
	StaticAddrs, DHCPAddrs, WirelessAddrs, PPPAddrs, VPNAddrs int

	// StaticSubnets splits the static space into this many subnets (the
	// paper monitors 38 subnets total; 34 of them static).
	StaticSubnets int

	// --- static population ---

	// StaticLiveHosts is the number of live, non-server static hosts
	// (they answer probes with RSTs; with the servers below, roughly 60%
	// of probed addresses respond in some way, per Section 3.3).
	StaticLiveHosts int

	// StaticServers is the number of static hosts running at least one
	// selected service at the start of the window.
	StaticServers int

	// PopularServers is the count of continuously busy servers carrying
	// almost all incoming traffic (the "active server" row of Table 4).
	PopularServers int

	// StealthFirewalled is the number of static servers whose service
	// ports silently drop unsolicited probe SYNs (internal and external)
	// while accepting their own clients — the "possible firewall" rows of
	// Tables 3/4. They still RST on non-service ports.
	StealthFirewalled int

	// ServerDeaths is how many (non-popular) static servers stop serving
	// early in the window.
	ServerDeaths int

	// StaticServerBirthsPerDay is the arrival rate of brand-new static
	// servers during the window.
	StaticServerBirthsPerDay float64

	// --- service mix (probabilities per server host; a host re-draws
	// until it has at least one service) ---

	PWeb, PSSH, PFTP, PMySQL, PHTTPS float64

	// MySQLBlockExternal is the fraction of MySQL instances that drop
	// SYNs arriving from outside campus (Section 4.4.3 finds most MySQL
	// servers unreachable externally, hiding them from both passive
	// monitoring and external scans while internal probes still see them).
	MySQLBlockExternal float64

	// --- traffic ---

	// FlowsPerDay is the campus-wide mean of incoming external client
	// flows on a semester weekday (diurnally modulated).
	FlowsPerDay float64

	// PopularFlowShare is the fraction of all flows destined to the
	// popular server set (Figure 1: 99% of flows hit servers passive
	// monitoring finds within minutes).
	PopularFlowShare float64

	// PopularZipfS is the Zipf exponent splitting the popular share
	// among the popular servers.
	PopularZipfS float64

	// RareRateLoPerDay and RareRateHiPerDay bound the log-uniform
	// client-flow rate of non-popular services, in flows/day. The spread
	// across orders of magnitude produces the paper's long discovery
	// tail (Section 4.2.1).
	RareRateLoPerDay, RareRateHiPerDay float64

	// ClientPool is the number of distinct external client addresses.
	ClientPool int

	// AcademicClientFrac is the fraction of clients routed via the
	// Internet2 peering (Section 5.2: I2's acceptable-use policy limits
	// its client mix).
	AcademicClientFrac float64

	// RareClientMean is the mean (Poisson, plus one) of distinct clients
	// a rare service has.
	RareClientMean float64

	// Diurnal modulates flow arrivals and transient sessions by hour of
	// day.
	Diurnal stats.DiurnalProfile

	// --- transient pools ---

	// DHCPHosts is the resident population behind the DHCP blocks; leases
	// are semester-sticky for most (the paper: residence halls keep one
	// IP per student for a semester or more).
	DHCPHosts int
	// DHCPServerFrac is the fraction of DHCP hosts running a service.
	DHCPServerFrac float64
	// DHCPWeeklyChurn is the fraction of DHCP hosts that re-lease to a
	// new random address each week.
	DHCPWeeklyChurn float64

	// PPPHosts is the dial-up population; each session draws a fresh
	// address from the PPP pool.
	PPPHosts int
	// PPPServerFrac is the fraction of PPP hosts running a service.
	PPPServerFrac float64
	// PPPSessionsPerDay is each PPP host's mean session count per day.
	PPPSessionsPerDay float64
	// PPPSessionMean is the mean session duration.
	PPPSessionMean time.Duration

	// VPNHosts is the VPN user population. VPN hosts are dual-homed: the
	// services they run respond to probes of their VPN address while a
	// session is up, but clients essentially never use the VPN address
	// (Section 4.4.2's VPN anomaly).
	VPNHosts int
	// VPNServerFrac is the fraction of VPN hosts whose services are
	// probe-visible via the VPN address.
	VPNServerFrac float64
	// VPNSessionsPerDay and VPNSessionMean shape VPN sessions (working
	// hours, a few hours long).
	VPNSessionsPerDay float64
	VPNSessionMean    time.Duration
	// VPNClientRatePerDay is the (nearly zero) external client flow rate
	// to a VPN-hosted service.
	VPNClientRatePerDay float64

	// WirelessHosts is the wireless population. They run no services and
	// the paper could not probe the wireless block at all.
	WirelessHosts int

	// --- transient service traffic ---

	// TransientRateLoPerDay/HiPerDay bound the log-uniform external
	// client rate of DHCP-hosted services (mostly accidental default
	// installs, rarely used from outside).
	TransientRateLoPerDay, TransientRateHiPerDay float64

	// PPPRateLo/HiPerDay bound the while-online client rate of
	// PPP-hosted services; dial-up users actively use their boxes during
	// sessions, which is why passive discovery beats active on the PPP
	// block (Figure 5).
	PPPRateLoPerDay, PPPRateHiPerDay float64

	// --- external scanners ---

	// BigScans schedules full-space external scans (potentially
	// malicious; Section 4.3 shows they dominate passive completeness).
	BigScans []ScanConfig
	// SmallScannersPerDay is the Poisson arrival rate of partial-space
	// external scanners.
	SmallScannersPerDay float64
	// SmallScanMinAddrs/MaxAddrs bound the footprint of small scanners.
	SmallScanMinAddrs, SmallScanMaxAddrs int
	// ScanRatePerSec is addresses probed per second by external scanners.
	ScanRatePerSec float64

	// --- web content (Table 5) ---

	// Content weights for static web servers by popularity class; see
	// content.go for how categories attach to server types.
	ContentWeights ContentWeights

	// --- UDP population (dataset DUDP) ---

	UDP UDPConfig
}

// ScanConfig is one scheduled external scan of the campus space.
type ScanConfig struct {
	// StartOffset is when the scan begins, relative to Config.Start.
	StartOffset time.Duration
	// Port is the single TCP port the scanner sweeps.
	Port uint16
	// Coverage is the fraction of the space scanned (1.0 = full walk).
	Coverage float64
}

// ContentWeights gives relative frequencies for generated root-page
// categories of non-popular static web servers.
type ContentWeights struct {
	Custom, Default, Minimal, Config, Database, Restricted float64
}

// UDPConfig sizes the UDP service population of dataset DUDP.
type UDPConfig struct {
	// DNSServers run a resolver on udp/53; DNSGenericReply of them
	// answer a malformed generic probe with a UDP reply, the rest stay
	// silent. DNSExternalFrac of them serve external queries (visible
	// passively).
	DNSServers       int
	DNSGenericReply  int
	DNSExternalFrac  float64
	DNSQueriesPerDay float64
	// WindowsHosts have udp/137 (NetBIOS) open. NetBIOSGenericReply of
	// them answer a generic probe. NetBIOS traffic does not cross the
	// border except for NetBIOSLeaks hosts.
	WindowsHosts        int
	NetBIOSGenericReply int
	NetBIOSLeaks        int
	// GameServers listen on udp/27015 with external players.
	GameServers       int
	GamePacketsPerDay float64
	// SilentAliveFrac is the fraction of live non-Windows hosts that
	// drop UDP probes without ICMP (host firewalls), producing the
	// paper's large "possibly open" counts.
	SilentAliveFrac float64
}

// DefaultSemesterConfig returns the population calibrated to DTCP1
// (semester datasets). The comments cite the paper figure each value is
// calibrated against.
func DefaultSemesterConfig() Config {
	return Config{
		Seed:       0x5EED5D15C,
		Start:      time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC),
		CampusBase: netaddr.MustParseV4("128.125.0.0"),

		// 16,130 probed addresses (Table 1).
		StaticAddrs:   13826,
		DHCPAddrs:     1024,
		WirelessAddrs: 512,
		PPPAddrs:      512,
		VPNAddrs:      256,
		StaticSubnets: 34,

		// ~6,450 of 16,130 addresses respond to probes (Section 3.3).
		StaticLiveHosts: 3600,
		// Table 4 static rows sum to ~1,850 server addresses.
		StaticServers: 1612,
		// Table 4: 37 "active server" addresses carry nearly all load.
		PopularServers: 37,
		// Table 4: 35 possible-firewall addresses over 18 days.
		StealthFirewalled: 35,
		// Table 4: handful of early server deaths.
		ServerDeaths: 9,
		// Table 4 "birth" rows: ~230 static births over 18 days.
		StaticServerBirthsPerDay: 15,

		// Table 6 union counts: Web 2,120 / SSH 925 / FTP 815 / MySQL 164
		// over 2,960 server addresses.
		PWeb: 0.68, PSSH: 0.30, PFTP: 0.27, PMySQL: 0.055, PHTTPS: 0.10,
		MySQLBlockExternal: 0.80,

		FlowsPerDay:      60000,
		PopularFlowShare: 0.99, // Figure 1
		PopularZipfS:     1.0,
		// Log-uniform rare rates: ~15% of rare servers overheard in 12h
		// (Table 2 col 1) and ~60% within 18 days absent scans (Fig 4).
		RareRateLoPerDay: 0.001,
		RareRateHiPerDay: 2.0,

		ClientPool:         40000,
		AcademicClientFrac: 0.08, // Table 8: I2 sees ~36% of servers
		RareClientMean:     1.5,
		Diurnal:            stats.DefaultDiurnal(),

		DHCPHosts:       900,
		DHCPServerFrac:  0.50,
		DHCPWeeklyChurn: 0.35,

		PPPHosts:          420,
		PPPServerFrac:     0.32,
		PPPSessionsPerDay: 0.5,
		PPPSessionMean:    80 * time.Minute,

		VPNHosts:            180,
		VPNServerFrac:       0.55,
		VPNSessionsPerDay:   0.9,
		VPNSessionMean:      4 * time.Hour,
		VPNClientRatePerDay: 0.005, // Figure 5: ~10 VPN servers passive vs ~100 active

		WirelessHosts: 400,

		TransientRateLoPerDay: 0.003,
		TransientRateHiPerDay: 0.5,
		PPPRateLoPerDay:       0.3,
		PPPRateHiPerDay:       6.0,

		// Figure 2's passive jumps at 9-20 and 9-23; Section 4.4.3's
		// MySQL scan on 9-29.
		// Coverage varies: real scanners rarely walk the whole space on
		// every port, which is what leaves passive monitoring 29% short
		// of active even after 18 days (Table 2).
		BigScans: []ScanConfig{
			{StartOffset: 30 * time.Hour, Port: PortHTTP, Coverage: 0.6},                  // 9/20 ~16:00
			{StartOffset: 97 * time.Hour, Port: PortSSH, Coverage: 0.5},                   // 9/23 ~11:00
			{StartOffset: 6*24*time.Hour + 4*time.Hour, Port: PortFTP, Coverage: 0.45},    // 9/25
			{StartOffset: 9*24*time.Hour + 23*time.Hour, Port: PortMySQL, Coverage: 1.0},  // 9/29
			{StartOffset: 14*24*time.Hour + 11*time.Hour, Port: PortHTTP, Coverage: 0.35}, // 10/03
			{StartOffset: 16*24*time.Hour + 2*time.Hour, Port: PortHTTPS, Coverage: 0.25}, // 10/05
		},
		SmallScannersPerDay: 3.0, // ~60 detected scan sources in 18 days (Section 4.3)
		SmallScanMinAddrs:   200,
		SmallScanMaxAddrs:   900,
		ScanRatePerSec:      40,

		// Table 5 frequencies among static web servers.
		ContentWeights: ContentWeights{
			Custom: 0.12, Default: 0.34, Minimal: 0.008,
			Config: 0.43, Database: 0.045, Restricted: 0.012,
		},

		UDP: UDPConfig{
			DNSServers:          85,
			DNSGenericReply:     52,
			DNSExternalFrac:     0.38,
			DNSQueriesPerDay:    300,
			WindowsHosts:        4300,
			NetBIOSGenericReply: 64,
			NetBIOSLeaks:        4,
			GameServers:         1,
			GamePacketsPerDay:   500,
			SilentAliveFrac:     0.12,
		},
	}
}

// BreakConfig returns the winter-break variant (dataset DTCPbreak):
// the same plant, drastically fewer transient users, lighter traffic
// (Section 5.5).
func BreakConfig() Config {
	c := DefaultSemesterConfig()
	c.Seed = 0xB4EA4C0F
	c.Start = time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	c.FlowsPerDay *= 0.55
	c.DHCPHosts = 260
	c.PPPHosts = 60
	c.VPNHosts = 25
	c.WirelessHosts = 60
	c.StaticServerBirthsPerDay = 3
	c.SmallScannersPerDay = 3.0
	c.BigScans = []ScanConfig{
		{StartOffset: 26 * time.Hour, Port: PortHTTP, Coverage: 1.0},
		{StartOffset: 4*24*time.Hour + 7*time.Hour, Port: PortSSH, Coverage: 1.0},
		{StartOffset: 7*24*time.Hour + 15*time.Hour, Port: PortFTP, Coverage: 0.9},
	}
	return c
}

// Validate sanity-checks block sizes and population counts, returning a
// descriptive error for the first inconsistency found.
func (c *Config) Validate() error {
	switch {
	case c.StaticAddrs <= 0:
		return errConfig("StaticAddrs must be positive")
	case c.StaticSubnets <= 0 || c.StaticSubnets > c.StaticAddrs:
		return errConfig("StaticSubnets out of range")
	case c.StaticLiveHosts+c.StaticServers > c.StaticAddrs:
		return errConfig("static population exceeds static address space")
	case c.PopularServers > c.StaticServers:
		return errConfig("PopularServers exceeds StaticServers")
	case c.StealthFirewalled > c.StaticServers:
		return errConfig("StealthFirewalled exceeds StaticServers")
	case c.DHCPHosts > 0 && c.DHCPAddrs == 0:
		return errConfig("DHCP hosts without DHCP addresses")
	case c.PPPHosts > 0 && c.PPPAddrs == 0:
		return errConfig("PPP hosts without PPP addresses")
	case c.VPNHosts > c.VPNAddrs:
		return errConfig("VPNHosts exceeds VPN pool")
	case c.RareRateLoPerDay <= 0 || c.RareRateHiPerDay <= c.RareRateLoPerDay:
		return errConfig("rare rate bounds invalid")
	case c.PopularFlowShare < 0 || c.PopularFlowShare > 1:
		return errConfig("PopularFlowShare out of [0,1]")
	case c.ClientPool <= 0:
		return errConfig("ClientPool must be positive")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "campus: bad config: " + string(e) }
