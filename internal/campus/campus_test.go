package campus

import (
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/sim"
)

func testConfig() Config {
	c := DefaultSemesterConfig()
	// Shrink the population so unit tests stay fast; proportions stay.
	c.StaticAddrs = 2048
	c.DHCPAddrs = 256
	c.WirelessAddrs = 128
	c.PPPAddrs = 128
	c.VPNAddrs = 64
	c.StaticSubnets = 8
	c.StaticLiveHosts = 500
	c.StaticServers = 300
	c.PopularServers = 8
	c.StealthFirewalled = 6
	c.ServerDeaths = 2
	c.DHCPHosts = 120
	c.PPPHosts = 50
	c.VPNHosts = 30
	c.WirelessHosts = 40
	c.ClientPool = 2000
	c.UDP.DNSServers = 12
	c.UDP.DNSGenericReply = 7
	c.UDP.WindowsHosts = 150
	c.UDP.NetBIOSGenericReply = 5
	c.UDP.NetBIOSLeaks = 2
	return c
}

func TestBuildPlanLayout(t *testing.T) {
	cfg := DefaultSemesterConfig()
	p, err := BuildPlan(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 16130 {
		t.Errorf("Total = %d, want 16130", p.Total())
	}
	if len(p.Blocks()) != 34+4 {
		t.Errorf("blocks = %d, want 38", len(p.Blocks()))
	}
	// Blocks must be contiguous and non-overlapping.
	next := cfg.CampusBase
	for _, b := range p.Blocks() {
		if b.Range.Lo != next {
			t.Fatalf("block %s starts at %v, want %v", b.Name, b.Range.Lo, next)
		}
		next = b.Range.Hi
	}
	// Class sizes.
	sizes := map[AddressClass]int{}
	for _, b := range p.Blocks() {
		sizes[b.Class] += b.Range.Size()
	}
	if sizes[ClassStatic] != 13826 || sizes[ClassDHCP] != 1024 ||
		sizes[ClassWireless] != 512 || sizes[ClassPPP] != 512 || sizes[ClassVPN] != 256 {
		t.Errorf("class sizes = %v", sizes)
	}
	// Transient pools per the paper: 2,304 ≈ 2,296 addresses.
	trans := sizes[ClassDHCP] + sizes[ClassWireless] + sizes[ClassPPP] + sizes[ClassVPN]
	if trans != 2304 {
		t.Errorf("transient space = %d", trans)
	}
}

func TestPlanClassOf(t *testing.T) {
	cfg := testConfig()
	p, err := BuildPlan(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Blocks() {
		if c, ok := p.ClassOf(b.Range.At(0)); !ok || c != b.Class {
			t.Errorf("ClassOf(%v) = %v, %v; want %v", b.Range.At(0), c, ok, b.Class)
		}
	}
	if _, ok := p.ClassOf(netaddr.MustParseV4("1.2.3.4")); ok {
		t.Error("ClassOf outside plan should fail")
	}
}

func TestProbeTargetsExcludeWireless(t *testing.T) {
	cfg := testConfig()
	p, err := BuildPlan(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	targets := p.ProbeTargets()
	want := p.Total() - cfg.WirelessAddrs
	if len(targets) != want {
		t.Errorf("targets = %d, want %d", len(targets), want)
	}
	wr, _ := p.ClassRange(ClassWireless)
	for _, a := range targets {
		if wr.Contains(a) {
			t.Fatalf("wireless address %v in probe targets", a)
		}
	}
}

func TestNetworkDeterminism(t *testing.T) {
	a, err := NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hosts()) != len(b.Hosts()) {
		t.Fatalf("host counts differ: %d vs %d", len(a.Hosts()), len(b.Hosts()))
	}
	for i := range a.Hosts() {
		ha, hb := a.Hosts()[i], b.Hosts()[i]
		if ha.HomeAddr != hb.HomeAddr || ha.Class != hb.Class || len(ha.Services) != len(hb.Services) {
			t.Fatalf("host %d differs", i)
		}
	}
}

func TestRespondTCPMatrix(t *testing.T) {
	net, err := NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := net.Config().Start
	ext := netaddr.MustParseV4("7.7.7.7")
	internal := net.Plan().Base()

	var server, stealth, blockExt *Host
	for _, h := range net.Hosts() {
		if h.Class != ClassStatic || !h.Attached() || len(h.Services) == 0 {
			continue
		}
		for i := range h.Services {
			s := &h.Services[i]
			switch {
			case s.StealthFW && stealth == nil:
				stealth = h
			case s.BlockExternal && blockExt == nil:
				blockExt = h
			case !s.StealthFW && !s.BlockExternal && s.Proto == packet.ProtoTCP && server == nil && h.AlwaysUp:
				server = h
			}
		}
	}
	if server == nil || stealth == nil || blockExt == nil {
		t.Fatal("population missing archetypes")
	}

	var openPort uint16
	for _, s := range server.Services {
		if s.Proto == packet.ProtoTCP && !s.StealthFW && !s.BlockExternal {
			openPort = s.Port
			break
		}
	}
	if got := net.RespondTCP(now, ext, server.Addr(), openPort, true); got != TCPSynAck {
		t.Errorf("open service probe = %v, want SynAck", got)
	}
	// Closed port on a live server host → RST.
	if got := net.RespondTCP(now, ext, server.Addr(), 9999, true); got != TCPRst {
		t.Errorf("closed port = %v, want Rst", got)
	}
	// Dead address → silence. Find one.
	var dark netaddr.V4
	for _, a := range net.Plan().Addresses(ClassStatic) {
		if _, ok := net.HostAt(a); !ok {
			dark = a
			break
		}
	}
	if got := net.RespondTCP(now, ext, dark, 80, true); got != TCPNone {
		t.Errorf("dark address = %v, want None", got)
	}

	// Stealth firewall: probes dropped, client flows accepted.
	var stealthPort uint16
	for _, s := range stealth.Services {
		if s.StealthFW {
			stealthPort = s.Port
			break
		}
	}
	if got := net.RespondTCP(now, internal, stealth.Addr(), stealthPort, true); got != TCPNone {
		t.Errorf("stealth probe = %v, want None", got)
	}
	if got := net.RespondTCP(now, ext, stealth.Addr(), stealthPort, false); got != TCPSynAck {
		t.Errorf("stealth client = %v, want SynAck", got)
	}

	// External-blocking service: internal probe succeeds, external fails.
	var extPort uint16
	for _, s := range blockExt.Services {
		if s.BlockExternal {
			extPort = s.Port
			break
		}
	}
	if blockExt.AlwaysUp {
		if got := net.RespondTCP(now, internal, blockExt.Addr(), extPort, true); got != TCPSynAck {
			t.Errorf("internal probe of blocking service = %v, want SynAck", got)
		}
		if got := net.RespondTCP(now, ext, blockExt.Addr(), extPort, true); got != TCPNone {
			t.Errorf("external probe of blocking service = %v, want None", got)
		}
	}
}

func TestRespondUDP(t *testing.T) {
	net, err := NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := net.Config().Start
	ext := netaddr.MustParseV4("7.7.7.7")

	var replier, mute, windows, plain *Host
	for _, h := range net.Hosts() {
		if !h.Attached() {
			continue
		}
		if s := h.ServiceOn(packet.ProtoUDP, UDPPortDNS); s != nil {
			if s.GenericUDPReply && replier == nil {
				replier = h
			}
			if !s.GenericUDPReply && mute == nil {
				mute = h
			}
		}
		if windows == nil && h.ServiceOn(packet.ProtoUDP, UDPPortNetBIOS) != nil {
			if s := h.ServiceOn(packet.ProtoUDP, UDPPortNetBIOS); !s.GenericUDPReply {
				windows = h
			}
		}
		if len(h.Services) == 0 && !h.SilentUDP && plain == nil && h.Class == ClassStatic {
			plain = h
		}
	}
	if replier == nil || mute == nil || windows == nil || plain == nil {
		t.Fatal("population missing UDP archetypes")
	}
	if got := net.RespondUDP(now, ext, replier.Addr(), UDPPortDNS); got != UDPReply {
		t.Errorf("replying DNS = %v", got)
	}
	if got := net.RespondUDP(now, ext, mute.Addr(), UDPPortDNS); got != UDPSilent {
		t.Errorf("mute DNS = %v", got)
	}
	// Windows host: mute on the open NetBIOS port, ICMP on closed ports
	// (which is what proves it alive for Table 7's "possibly open").
	if windows.UpAt(now) {
		if got := net.RespondUDP(now, ext, windows.Addr(), UDPPortNetBIOS); got != UDPSilent {
			t.Errorf("windows open NetBIOS = %v, want silent", got)
		}
		if got := net.RespondUDP(now, ext, windows.Addr(), UDPPortGame); got != UDPUnreachable {
			t.Errorf("windows closed port = %v, want unreachable", got)
		}
	}
	// Plain live host answers ICMP unreachable on closed UDP ports when up.
	if plain.UpAt(now) {
		if got := net.RespondUDP(now, ext, plain.Addr(), UDPPortGame); got != UDPUnreachable {
			t.Errorf("plain closed port = %v", got)
		}
	}
}

func TestDynamicsSessions(t *testing.T) {
	cfg := testConfig()
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	NewDynamics(net, eng)

	// Run three days; PPP and VPN hosts should attach and detach, and the
	// address table must stay consistent throughout.
	attachedSeen := 0
	check := eng.Every(cfg.Start.Add(time.Hour), time.Hour, func(now time.Time) {
		for _, h := range net.Hosts() {
			if h.Attached() {
				got, ok := net.HostAt(h.Addr())
				if !ok || got != h {
					t.Fatalf("address table inconsistent for host %d", h.ID)
				}
				if h.Class == ClassPPP || h.Class == ClassVPN {
					attachedSeen++
				}
			}
		}
	})
	eng.RunUntil(cfg.Start.Add(72 * time.Hour))
	check.Stop()
	if attachedSeen == 0 {
		t.Error("no PPP/VPN sessions over three days")
	}
}

func TestDynamicsBirths(t *testing.T) {
	cfg := testConfig()
	cfg.StaticServerBirthsPerDay = 24
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := len(net.Hosts())
	eng := sim.New(cfg.Start)
	NewDynamics(net, eng)
	eng.RunUntil(cfg.Start.Add(48 * time.Hour))
	births := 0
	for _, h := range net.Hosts()[before:] {
		if !h.Born.IsZero() {
			births++
		}
	}
	if births < 20 || births > 80 {
		t.Errorf("births over 2 days at 24/day = %d", births)
	}
}

func TestDHCPChurnMovesAddresses(t *testing.T) {
	cfg := testConfig()
	cfg.DHCPWeeklyChurn = 1.0 // every DHCP host churns
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := map[int]netaddr.V4{}
	for _, h := range net.Hosts() {
		if h.Class == ClassDHCP && h.Attached() {
			initial[h.ID] = h.Addr()
		}
	}
	eng := sim.New(cfg.Start)
	NewDynamics(net, eng)
	eng.RunUntil(cfg.Start.Add(8 * 24 * time.Hour))
	moved := 0
	for _, h := range net.Hosts() {
		if a, ok := initial[h.ID]; ok && h.Attached() && h.Addr() != a {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no DHCP host changed address after a week of full churn")
	}
}

func TestHostUpAtRespectsBirthDeath(t *testing.T) {
	h := &Host{AlwaysUp: true}
	now := time.Date(2006, 9, 19, 12, 0, 0, 0, time.UTC)
	h.Born = now.Add(time.Hour)
	if h.UpAt(now) {
		t.Error("host up before birth")
	}
	h.Born = time.Time{}
	h.Dies = now
	if h.UpAt(now) {
		t.Error("host up after death")
	}
}

func TestFetchRootCategories(t *testing.T) {
	net, err := NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := net.Config().Start
	found := map[ContentCategory]bool{}
	for _, h := range net.Hosts() {
		if !h.Attached() || !h.UpAt(now) {
			continue
		}
		if body, ok := net.FetchRoot(now, h.Addr()); ok {
			if body == "" {
				t.Fatal("empty body on successful fetch")
			}
			svc := h.ServiceOn(packet.ProtoTCP, PortHTTP)
			if svc == nil {
				svc = h.ServiceOn(packet.ProtoTCP, PortHTTPS)
			}
			if svc == nil {
				t.Fatalf("fetch succeeded for non-web host %d", h.ID)
			}
			found[svc.Content] = true
		}
	}
	if len(found) < 3 {
		t.Errorf("only %d content categories produced", len(found))
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := testConfig()
	bad.PopularServers = bad.StaticServers + 1
	if bad.Validate() == nil {
		t.Error("PopularServers > StaticServers accepted")
	}
	bad2 := testConfig()
	bad2.StaticLiveHosts = bad2.StaticAddrs
	bad2.StaticServers = 10
	if bad2.Validate() == nil {
		t.Error("overfull static space accepted")
	}
	bad3 := testConfig()
	bad3.VPNHosts = bad3.VPNAddrs + 1
	if bad3.Validate() == nil {
		t.Error("VPN overcommit accepted")
	}
}

func TestServiceMixShape(t *testing.T) {
	net, err := NewNetwork(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint16]int{}
	servers := 0
	for _, h := range net.Hosts() {
		if h.Class != ClassStatic || !h.HasTCPService() {
			continue
		}
		servers++
		for _, s := range h.Services {
			if s.Proto == packet.ProtoTCP {
				counts[s.Port]++
			}
		}
	}
	if servers == 0 {
		t.Fatal("no static servers")
	}
	// Web must dominate; MySQL must be rare (Table 6 proportions).
	if counts[PortHTTP] <= counts[PortSSH] || counts[PortHTTP] <= counts[PortFTP] {
		t.Errorf("web not dominant: %v", counts)
	}
	if counts[PortMySQL] >= counts[PortSSH] {
		t.Errorf("mysql not rare: %v", counts)
	}
	// Most MySQL servers must block external sources.
	blocked := 0
	total := 0
	for _, h := range net.Hosts() {
		for _, s := range h.Services {
			if s.Port == PortMySQL && s.Proto == packet.ProtoTCP {
				total++
				if s.BlockExternal {
					blocked++
				}
			}
		}
	}
	if total > 0 && float64(blocked)/float64(total) < 0.5 {
		t.Errorf("only %d/%d mysql block external", blocked, total)
	}
}

func TestAddressClassString(t *testing.T) {
	want := map[AddressClass]string{
		ClassStatic: "static", ClassDHCP: "dhcp", ClassWireless: "wireless",
		ClassPPP: "ppp", ClassVPN: "vpn",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("String(%d) = %q", c, c.String())
		}
	}
	if ClassStatic.Transient() || !ClassPPP.Transient() {
		t.Error("Transient() wrong")
	}
}

func BenchmarkNewNetwork(b *testing.B) {
	cfg := DefaultSemesterConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewNetwork(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkActiveServices(b *testing.B) {
	net, err := NewNetwork(DefaultSemesterConfig())
	if err != nil {
		b.Fatal(err)
	}
	now := net.Config().Start
	var buf []ServiceInstance
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = net.ActiveServices(now, buf[:0])
	}
}
