package campus

import (
	"time"

	"servdisc/internal/sim"
	"servdisc/internal/stats"
)

// Dynamics drives the population's evolution on a simulation engine:
// transient-host sessions (PPP dialups, VPN logins, DHCP lease churn) and
// static server births. Client traffic and external scanners live in
// internal/traffic; Dynamics owns only who-is-where.
type Dynamics struct {
	net *Network
	eng *sim.Engine
	rng *stats.RNG
}

// NewDynamics wires the population to an engine and schedules the initial
// events. The engine's clock must equal the network config's Start.
func NewDynamics(net *Network, eng *sim.Engine) *Dynamics {
	d := &Dynamics{
		net: net,
		eng: eng,
		rng: stats.NewRNG(net.cfg.Seed).Derive("dynamics"),
	}
	d.scheduleSessions()
	d.scheduleDHCPChurn()
	d.scheduleBirths()
	return d
}

// scheduleSessions starts the per-host session processes for PPP and VPN
// populations.
func (d *Dynamics) scheduleSessions() {
	for _, h := range d.net.hosts {
		switch h.Class {
		case ClassPPP:
			d.scheduleNextSession(h, d.net.cfg.PPPSessionsPerDay, d.net.cfg.PPPSessionMean)
		case ClassVPN:
			d.scheduleNextSession(h, d.net.cfg.VPNSessionsPerDay, d.net.cfg.VPNSessionMean)
		case ClassWireless:
			// Wireless hosts associate too, but run no services; sessions
			// exist so the pool occupancy looks right.
			d.scheduleNextSession(h, 1.2, 3*time.Hour)
		}
	}
}

// scheduleNextSession draws the next session start for a host. Session
// arrivals follow an exponential clock modulated by the diurnal profile
// (thinning): draws landing in dead hours are skipped forward.
func (d *Dynamics) scheduleNextSession(h *Host, perDay float64, mean time.Duration) {
	if perDay <= 0 {
		return
	}
	gap := d.rng.Exp(24 / perDay) // hours
	at := d.eng.Now().Add(time.Duration(gap * float64(time.Hour)))
	d.eng.At(at, func(now time.Time) {
		prof := d.net.cfg.Diurnal
		hours := now.Sub(d.net.cfg.Start).Hours() + float64(d.net.cfg.Start.Hour())
		if d.rng.Float64() < prof.At(hours)/1.3 { // accept, 1.3 = profile max
			d.startSession(h, now, mean)
		}
		d.scheduleNextSession(h, perDay, mean)
	})
}

func (d *Dynamics) startSession(h *Host, now time.Time, mean time.Duration) {
	if h.Attached() {
		return // already online
	}
	// Sticky endpoints (VPN) reconnect at their reserved address; the
	// rest draw from the class pool and return the address afterwards.
	sticky := h.HomeAddr != 0
	a := h.HomeAddr
	if !sticky {
		var ok bool
		a, ok = d.net.allocAddr(h.Class)
		if !ok {
			return // pool exhausted
		}
	}
	d.net.attach(h, a)
	dur := time.Duration(d.rng.Exp(float64(mean)))
	if dur < time.Minute {
		dur = time.Minute
	}
	d.eng.After(dur, func(time.Time) {
		d.net.detach(h)
		if !sticky {
			d.net.releaseAddr(h.Class, a)
		}
	})
}

// scheduleDHCPChurn makes the configured fraction of DHCP hosts re-lease
// to a fresh address once a week (the remainder keep semester-sticky
// leases, per Section 4.4.2's residence-hall allocation policy).
func (d *Dynamics) scheduleDHCPChurn() {
	churn := d.net.cfg.DHCPWeeklyChurn
	if churn <= 0 {
		return
	}
	for _, h := range d.net.hosts {
		if h.Class != ClassDHCP || !d.rng.Bool(churn) {
			continue
		}
		h := h
		d.eng.Every(d.net.cfg.Start.Add(time.Duration(d.rng.Float64()*float64(7*24*time.Hour))),
			7*24*time.Hour, func(now time.Time) {
				if !h.Attached() {
					return
				}
				// Allocate the replacement before releasing the old lease;
				// the free list is LIFO, so the reverse order would hand
				// the host its own address back.
				a, ok := d.net.allocAddr(ClassDHCP)
				if !ok {
					return
				}
				old := h.Addr()
				d.net.detach(h)
				d.net.releaseAddr(ClassDHCP, old)
				d.net.attach(h, a)
			})
	}
}

// scheduleBirths creates brand-new static servers at the configured rate.
func (d *Dynamics) scheduleBirths() {
	rate := d.net.cfg.StaticServerBirthsPerDay
	if rate <= 0 {
		return
	}
	var next func(now time.Time)
	next = func(now time.Time) {
		if len(d.net.staticFreeAddrs) == 0 {
			return
		}
		h := d.net.newHost(ClassStatic)
		h.AlwaysUp = true
		h.Born = now
		h.HomeAddr = d.net.takeFreeStatic()
		d.net.assignServices(h, false)
		d.net.attach(h, h.HomeAddr)
		d.eng.After(time.Duration(d.rng.Exp(24/rate)*float64(time.Hour)), next)
	}
	d.eng.After(time.Duration(d.rng.Exp(24/rate)*float64(time.Hour)), next)
}
