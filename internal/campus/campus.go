// Package campus models the monitored university network that the paper's
// measurement study observed: 16,130 addresses across 38 subnets, with
// static server populations, transient DHCP/PPP/VPN/wireless address pools,
// per-service firewall policy, heavy-tailed service popularity, and host
// birth/death dynamics.
//
// The model is the reproduction's substitute for the USC testbed (see
// DESIGN.md §1): every aggregate the paper publishes about its population
// is an explicit, documented configuration parameter here, and the
// discovery machinery interacts with the model only through the same
// channels it would have on a real network — probe packets in, response
// packets out, and client traffic flowing past the monitoring point.
package campus

import "fmt"

// AddressClass labels a block of the campus address plan. The classes
// mirror Section 4.4.2 of the paper: static space plus the four transient
// pools (DHCP, wireless, PPP dialup, VPN).
type AddressClass uint8

// Address classes.
const (
	ClassStatic AddressClass = iota
	ClassDHCP
	ClassWireless
	ClassPPP
	ClassVPN
)

// String names the class.
func (c AddressClass) String() string {
	switch c {
	case ClassStatic:
		return "static"
	case ClassDHCP:
		return "dhcp"
	case ClassWireless:
		return "wireless"
	case ClassPPP:
		return "ppp"
	case ClassVPN:
		return "vpn"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Transient reports whether addresses of this class are reassigned over
// time (everything but static).
func (c AddressClass) Transient() bool { return c != ClassStatic }

// Well-known TCP service ports studied by the paper (Section 3.1).
const (
	PortFTP   uint16 = 21
	PortSSH   uint16 = 22
	PortHTTP  uint16 = 80
	PortHTTPS uint16 = 443
	PortMySQL uint16 = 3306
)

// SelectedTCPPorts is the five-port service set of datasets DTCP1*.
var SelectedTCPPorts = []uint16{PortFTP, PortSSH, PortHTTP, PortHTTPS, PortMySQL}

// Well-known UDP service ports of dataset DUDP (Section 4.5).
const (
	UDPPortHTTP    uint16 = 80
	UDPPortDNS     uint16 = 53
	UDPPortNetBIOS uint16 = 137
	UDPPortGame    uint16 = 27015
)

// SelectedUDPPorts is the four-port UDP set of dataset DUDP.
var SelectedUDPPorts = []uint16{UDPPortHTTP, UDPPortDNS, UDPPortNetBIOS, UDPPortGame}

// ServiceName returns the conventional name for a studied TCP port.
func ServiceName(port uint16) string {
	switch port {
	case PortFTP:
		return "FTP"
	case PortSSH:
		return "SSH"
	case PortHTTP:
		return "Web"
	case PortHTTPS:
		return "HTTPS"
	case PortMySQL:
		return "MySQL"
	default:
		return fmt.Sprintf("tcp/%d", port)
	}
}

// ContentCategory classifies a web server's root page, following the seven
// buckets of Table 5.
type ContentCategory uint8

// Content categories.
const (
	ContentCustom ContentCategory = iota
	ContentDefault
	ContentMinimal
	ContentConfig
	ContentDatabase
	ContentRestricted
	ContentNoResponse // host did not answer the follow-up fetch
)

// String names the category as in Table 5.
func (c ContentCategory) String() string {
	switch c {
	case ContentCustom:
		return "Custom content"
	case ContentDefault:
		return "Default content"
	case ContentMinimal:
		return "Minimal content"
	case ContentConfig:
		return "Config/status pages"
	case ContentDatabase:
		return "Database interface"
	case ContentRestricted:
		return "Restricted content"
	case ContentNoResponse:
		return "No response"
	default:
		return fmt.Sprintf("content(%d)", uint8(c))
	}
}
