// Package traffic generates the border traffic the passive monitor
// observes: external client flows to campus services (heavy-tailed
// popularity, diurnal modulation), UDP service traffic, and external
// scanners sweeping the address space — the "unexpected ally" of passive
// discovery the paper analyzes in Section 4.3.
//
// The generator runs on the simulation engine and emits synthesized
// packets, in timestamp order, to one or more pipeline.BatchSinks (capture
// monitors, recorders). Packets produced by one simulation event — a
// handshake, a scan burst — are delivered together as one batch at the end
// of that event, so batch boundaries never reorder traffic relative to
// other simulated processes. Only traffic that crosses the campus border
// is emitted: internal-only services (NetBIOS, most MySQL) produce nothing
// here, which is exactly why passive monitoring misses them.
package traffic

import (
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/sim"
	"servdisc/internal/stats"
)

// Generator drives workload creation for one campus network.
type Generator struct {
	net   *campus.Network
	eng   *sim.Engine
	rng   *stats.RNG
	bld   *packet.Builder
	sinks []pipeline.BatchSink

	// batch accumulates the current event's packets; flushed at the end of
	// each emitting event. The slice is reused: sinks must not retain it.
	batch []packet.Packet

	// reusable scratch for hourly enumeration.
	scratch []campus.ServiceInstance

	// stats, exposed for tests and reporting.
	FlowsEmitted  int
	ScansLaunched int
}

// NewGenerator wires a generator to the network and engine and schedules
// the traffic processes (hourly flow generation, configured big scans,
// Poisson small-scanner arrivals).
func NewGenerator(net *campus.Network, eng *sim.Engine, sinks ...pipeline.BatchSink) *Generator {
	g := &Generator{
		net:   net,
		eng:   eng,
		rng:   stats.NewRNG(net.Config().Seed).Derive("traffic"),
		bld:   packet.NewBuilder(0),
		sinks: sinks,
	}
	cfg := net.Config()
	eng.Every(cfg.Start, time.Hour, g.generateHour)
	for i, sc := range cfg.BigScans {
		sc := sc
		src := g.scannerAddr(i)
		eng.At(cfg.Start.Add(sc.StartOffset), func(now time.Time) {
			g.launchScan(now, src, sc.Port, sc.Coverage, 0)
		})
	}
	if cfg.SmallScannersPerDay > 0 {
		g.scheduleNextSmallScan()
	}
	return g
}

// emit queues one packet on the current event's batch.
func (g *Generator) emit(p *packet.Packet) {
	g.batch = append(g.batch, *p)
}

// flush delivers the current event's batch to every sink and resets it.
func (g *Generator) flush() {
	if len(g.batch) == 0 {
		return
	}
	for _, s := range g.sinks {
		s.HandleBatch(g.batch)
	}
	g.batch = g.batch[:0]
}

// scannerAddr synthesizes a distinct external source for scanner i.
func (g *Generator) scannerAddr(i int) netaddr.V4 {
	return netaddr.MustParseV4("211.0.0.0") + netaddr.V4(i*257+1)
}

// generateHour draws this hour's flow arrivals for every active service and
// schedules each handshake at its arrival instant.
func (g *Generator) generateHour(now time.Time) {
	cfg := g.net.Config()
	hours := now.Sub(cfg.Start).Hours() + float64(cfg.Start.Hour())
	mod := cfg.Diurnal.At(hours) / cfg.Diurnal.Mean()

	g.scratch = g.net.ActiveServices(now, g.scratch[:0])
	for _, inst := range g.scratch {
		svc := inst.Svc
		if svc.LocalOnly || (svc.BlockExternal && svc.Proto == packet.ProtoTCP) {
			continue // never crosses the border
		}
		var mean float64
		if svc.Popular {
			mean = cfg.FlowsPerDay / 24 * cfg.PopularFlowShare * svc.PopularWeight * mod
		} else {
			mean = svc.RatePerDay / 24 * mod
		}
		n := g.rng.Poisson(mean)
		for i := 0; i < n; i++ {
			g.scheduleFlow(now, inst, time.Duration(g.rng.Float64()*float64(time.Hour)))
		}
	}
}

// scheduleFlow arranges one client flow to a service instance. The target
// address is resolved again at fire time: transient hosts may have moved or
// gone offline, in which case only the client's SYN crosses the wire.
func (g *Generator) scheduleFlow(base time.Time, inst campus.ServiceInstance, after time.Duration) {
	svc := inst.Svc
	dstAddr := inst.Addr
	client := g.pickClient(svc)
	g.eng.At(base.Add(after), func(now time.Time) {
		g.FlowsEmitted++
		if svc.Proto == packet.ProtoUDP {
			g.emitUDPExchange(now, client, dstAddr, svc.Port)
		} else {
			g.emitTCPHandshake(now, client, dstAddr, svc.Port, false)
		}
		g.flush()
	})
}

func (g *Generator) pickClient(svc *campus.Service) netaddr.V4 {
	if len(svc.Clients) > 0 {
		return svc.Clients[g.rng.Intn(len(svc.Clients))]
	}
	clients := g.net.Clients()
	return clients[g.rng.Intn(len(clients))]
}

// emitTCPHandshake synthesizes the client SYN and whatever the campus
// answers (SYN-ACK, RST, or silence).
func (g *Generator) emitTCPHandshake(now time.Time, src, dst netaddr.V4, port uint16, isProbe bool) {
	sport := uint16(32768 + g.rng.Intn(28000))
	seq := uint32(g.rng.Uint64())
	cli := packet.Endpoint{Addr: src, Port: sport}
	srv := packet.Endpoint{Addr: dst, Port: port}
	g.emit(g.bld.Syn(now, cli, srv, seq))
	switch g.net.RespondTCP(now, src, dst, port, isProbe) {
	case campus.TCPSynAck:
		g.emit(g.bld.SynAck(now.Add(500*time.Microsecond), srv, cli, uint32(g.rng.Uint64()), seq+1))
	case campus.TCPRst:
		g.emit(g.bld.Rst(now.Add(500*time.Microsecond), srv, cli, seq+1))
	}
}

// emitUDPExchange synthesizes a UDP request and, for services that answer
// externally, the reply sourced from the well-known port — the evidence
// passive UDP discovery keys on.
func (g *Generator) emitUDPExchange(now time.Time, src, dst netaddr.V4, port uint16) {
	sport := uint16(32768 + g.rng.Intn(28000))
	cli := packet.Endpoint{Addr: src, Port: sport}
	srv := packet.Endpoint{Addr: dst, Port: port}
	g.emit(g.bld.UDPPacket(now, cli, srv, []byte("request")))
	if h, ok := g.net.HostAt(dst); ok && h.UpAt(now) {
		if svc := h.ServiceOn(packet.ProtoUDP, port); svc != nil && !svc.LocalOnly {
			g.emit(g.bld.UDPPacket(now.Add(500*time.Microsecond), srv, cli, []byte("reply")))
		}
	}
}

// scheduleNextSmallScan arms the Poisson arrival of partial-space scanners.
func (g *Generator) scheduleNextSmallScan() {
	cfg := g.net.Config()
	gap := g.rng.Exp(24 / cfg.SmallScannersPerDay)
	g.eng.After(time.Duration(gap*float64(time.Hour)), func(now time.Time) {
		port := g.pickScanPort()
		span := cfg.SmallScanMinAddrs
		if cfg.SmallScanMaxAddrs > span {
			span += g.rng.Intn(cfg.SmallScanMaxAddrs - span)
		}
		total := g.net.Plan().Total()
		startOff := 0
		if total > span {
			startOff = g.rng.Intn(total - span)
		}
		src := g.scannerAddr(100 + g.ScansLaunched)
		g.launchScanWindow(now, src, port, startOff, span)
		g.scheduleNextSmallScan()
	})
}

// pickScanPort mirrors what 2006-era scanners hunted: mostly web and ssh,
// sometimes ftp or mysql.
func (g *Generator) pickScanPort() uint16 {
	ports := []uint16{campus.PortHTTP, campus.PortHTTP, campus.PortSSH, campus.PortSSH,
		campus.PortFTP, campus.PortMySQL, campus.PortHTTPS}
	return ports[g.rng.Intn(len(ports))]
}

// launchScan sweeps coverage×space from a given external source.
func (g *Generator) launchScan(now time.Time, src netaddr.V4, port uint16, coverage float64, startOff int) {
	total := int(float64(g.net.Plan().Total()) * coverage)
	g.launchScanWindow(now, src, port, startOff, total)
}

// launchScanWindow walks span consecutive addresses starting at offset
// startOff, pacing at the configured rate in one-second bursts.
func (g *Generator) launchScanWindow(now time.Time, src netaddr.V4, port uint16, startOff, span int) {
	g.ScansLaunched++
	cfg := g.net.Config()
	rate := int(cfg.ScanRatePerSec)
	if rate <= 0 {
		rate = 40
	}
	base := g.net.Plan().Base()
	end := startOff + span
	if max := g.net.Plan().Total(); end > max {
		end = max
	}
	var burst func(now time.Time)
	off := startOff
	burst = func(now time.Time) {
		for i := 0; i < rate && off < end; i++ {
			dst := base + netaddr.V4(off)
			off++
			g.emitTCPHandshake(now.Add(time.Duration(i)*time.Millisecond), src, dst, port, true)
		}
		// One scan burst is one batch: the natural unit of batched ingest.
		g.flush()
		if off < end {
			g.eng.After(time.Second, burst)
		}
	}
	burst(now)
}
