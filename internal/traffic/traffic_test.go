package traffic

import (
	"testing"
	"time"

	"servdisc/internal/campus"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/sim"
)

func testConfig() campus.Config {
	c := campus.DefaultSemesterConfig()
	c.StaticAddrs = 2048
	c.DHCPAddrs = 256
	c.WirelessAddrs = 128
	c.PPPAddrs = 128
	c.VPNAddrs = 64
	c.StaticSubnets = 8
	c.StaticLiveHosts = 500
	c.StaticServers = 300
	c.PopularServers = 8
	c.StealthFirewalled = 6
	c.ServerDeaths = 2
	c.DHCPHosts = 120
	c.PPPHosts = 50
	c.VPNHosts = 30
	c.WirelessHosts = 40
	c.ClientPool = 2000
	c.FlowsPerDay = 20000
	c.UDP.DNSServers = 12
	c.UDP.DNSGenericReply = 7
	c.UDP.WindowsHosts = 150
	c.UDP.NetBIOSGenericReply = 5
	c.UDP.NetBIOSLeaks = 2
	c.BigScans = []campus.ScanConfig{
		{StartOffset: 6 * time.Hour, Port: campus.PortHTTP, Coverage: 1.0},
	}
	c.SmallScannersPerDay = 2
	c.SmallScanMinAddrs = 100
	c.SmallScanMaxAddrs = 500
	return c
}

type collector struct {
	pkts []*packet.Packet
}

// HandleBatch copies the batch: the generator reuses its buffer.
func (c *collector) HandleBatch(batch []packet.Packet) {
	for i := range batch {
		p := batch[i]
		c.pkts = append(c.pkts, &p)
	}
}

func runDay(t *testing.T, cfg campus.Config, hours int) (*campus.Network, *Generator, *collector) {
	t.Helper()
	net, err := campus.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(cfg.Start)
	campus.NewDynamics(net, eng)
	col := &collector{}
	gen := NewGenerator(net, eng, col)
	eng.RunUntil(cfg.Start.Add(time.Duration(hours) * time.Hour))
	return net, gen, col
}

func TestTrafficFlowsGenerated(t *testing.T) {
	_, gen, col := runDay(t, testConfig(), 12)
	if gen.FlowsEmitted < 5000 {
		t.Errorf("only %d flows in 12h at 20k/day", gen.FlowsEmitted)
	}
	if len(col.pkts) < 2*gen.FlowsEmitted {
		t.Errorf("%d packets for %d flows: handshakes missing", len(col.pkts), gen.FlowsEmitted)
	}
}

func TestPacketsInTimeOrder(t *testing.T) {
	_, _, col := runDay(t, testConfig(), 8)
	for i := 1; i < len(col.pkts); i++ {
		if col.pkts[i].Timestamp.Before(col.pkts[i-1].Timestamp.Add(-time.Millisecond * 20)) {
			t.Fatalf("packet %d out of order: %v after %v", i,
				col.pkts[i].Timestamp, col.pkts[i-1].Timestamp)
		}
	}
}

func TestPopularServersDominate(t *testing.T) {
	net, _, col := runDay(t, testConfig(), 12)
	popular := map[uint32]bool{}
	for _, h := range net.Hosts() {
		for _, s := range h.Services {
			if s.Popular {
				popular[uint32(h.Addr())] = true
			}
		}
	}
	popFlows, allFlows := 0, 0
	for _, p := range col.pkts {
		if p.Has(packet.LayerTypeTCP) && p.TCP.Flags.Has(packet.FlagSYN|packet.FlagACK) {
			allFlows++
			if popular[uint32(p.IPv4.Src)] {
				popFlows++
			}
		}
	}
	if allFlows == 0 {
		t.Fatal("no completed handshakes")
	}
	if frac := float64(popFlows) / float64(allFlows); frac < 0.9 {
		t.Errorf("popular share of SYN-ACKs = %.2f, want > 0.9", frac)
	}
}

// quietConfig removes all client traffic so only scan traffic remains.
func quietConfig() campus.Config {
	cfg := testConfig()
	cfg.SmallScannersPerDay = 0
	cfg.FlowsPerDay = 0
	cfg.RareRateLoPerDay = 1e-9
	cfg.RareRateHiPerDay = 2e-9
	cfg.TransientRateLoPerDay = 1e-9
	cfg.PPPRateLoPerDay = 1e-9
	cfg.PPPRateHiPerDay = 2e-9
	cfg.TransientRateHiPerDay = 2e-9
	cfg.UDP.DNSQueriesPerDay = 0
	cfg.UDP.GamePacketsPerDay = 0
	return cfg
}

func TestBigScanEmitsSweep(t *testing.T) {
	cfg := quietConfig()
	net, gen, col := runDay(t, cfg, 10)
	if gen.ScansLaunched != 1 {
		t.Fatalf("ScansLaunched = %d", gen.ScansLaunched)
	}
	// Scanner traffic is identified by its source/destination in 211/8;
	// residual client flows (stealth hosts' own clients, VPN users) are
	// legitimate background and excluded.
	scannerNet := func(a uint32) bool { return a>>24 == 211 }
	syns, synacks, rsts := 0, 0, 0
	for _, p := range col.pkts {
		if !p.Has(packet.LayerTypeTCP) {
			continue
		}
		switch {
		case p.TCP.Flags.Has(packet.FlagSYN | packet.FlagACK):
			if scannerNet(uint32(p.IPv4.Dst)) {
				synacks++
			}
		case p.TCP.Flags.Has(packet.FlagSYN):
			if scannerNet(uint32(p.IPv4.Src)) {
				syns++
				if p.TCP.DstPort != campus.PortHTTP {
					t.Fatalf("scan SYN to port %d", p.TCP.DstPort)
				}
			}
		case p.TCP.Flags.Has(packet.FlagRST):
			if scannerNet(uint32(p.IPv4.Dst)) {
				rsts++
			}
		}
	}
	if syns != net.Plan().Total() {
		t.Errorf("scan SYNs = %d, want %d", syns, net.Plan().Total())
	}
	if synacks == 0 {
		t.Error("scan revealed no servers")
	}
	if rsts < 100 {
		t.Errorf("scan drew only %d RSTs; detector needs >=100", rsts)
	}
}

func TestScanRevealsIdleServers(t *testing.T) {
	// An idle web server (rate ~0) must appear in traffic only via the scan.
	cfg := quietConfig()
	cfg.SmallScannersPerDay = 0
	net, _, col := runDay(t, cfg, 10)

	webServers := map[uint32]bool{}
	for _, h := range net.Hosts() {
		if h.Class != campus.ClassStatic || !h.Attached() {
			continue
		}
		if s := h.ServiceOn(packet.ProtoTCP, campus.PortHTTP); s != nil && !s.StealthFW && h.AlwaysUp {
			webServers[uint32(h.Addr())] = true
		}
	}
	seen := map[uint32]bool{}
	for _, p := range col.pkts {
		if p.Has(packet.LayerTypeTCP) && p.TCP.Flags.Has(packet.FlagSYN|packet.FlagACK) && p.TCP.SrcPort == campus.PortHTTP {
			seen[uint32(p.IPv4.Src)] = true
		}
	}
	found := 0
	for a := range webServers {
		if seen[a] {
			found++
		}
	}
	if len(webServers) == 0 {
		t.Fatal("no web servers in population")
	}
	if frac := float64(found) / float64(len(webServers)); frac < 0.95 {
		t.Errorf("scan revealed %.2f of idle web servers, want ~all", frac)
	}
}

func TestStealthServersInvisibleToScan(t *testing.T) {
	cfg := quietConfig()
	net, _, col := runDay(t, cfg, 10)

	stealth := map[uint32]uint16{}
	for _, h := range net.Hosts() {
		for _, s := range h.Services {
			if s.StealthFW && h.Attached() {
				stealth[uint32(h.Addr())] = s.Port
			}
		}
	}
	if len(stealth) == 0 {
		t.Skip("no stealth hosts in this draw")
	}
	// Scanner sources live in 211/8; stealth client flows (their own
	// authorized clients in 64/8) are legitimate and excluded here.
	scannerNet := func(a uint32) bool { return a>>24 == 211 }
	for _, p := range col.pkts {
		if p.Has(packet.LayerTypeTCP) && p.TCP.Flags.Has(packet.FlagSYN|packet.FlagACK) && scannerNet(uint32(p.IPv4.Dst)) {
			if port, ok := stealth[uint32(p.IPv4.Src)]; ok && p.TCP.SrcPort == port {
				t.Fatalf("stealth server %v answered the scan", p.IPv4.Src)
			}
		}
	}
}

func TestUDPTrafficVisible(t *testing.T) {
	cfg := testConfig()
	cfg.FlowsPerDay = 0
	cfg.BigScans = nil
	cfg.SmallScannersPerDay = 0
	_, _, col := runDay(t, cfg, 24)
	fromDNS := 0
	for _, p := range col.pkts {
		if p.Has(packet.LayerTypeUDP) && p.UDP.SrcPort == campus.UDPPortDNS {
			fromDNS++
		}
	}
	if fromDNS == 0 {
		t.Error("no DNS replies crossed the border in 24h")
	}
}

func TestLocalOnlyServicesNeverEmit(t *testing.T) {
	cfg := testConfig()
	cfg.UDP.NetBIOSLeaks = 0 // all NetBIOS strictly local
	_, _, col := runDay(t, cfg, 24)
	for _, p := range col.pkts {
		if p.Has(packet.LayerTypeUDP) && p.UDP.SrcPort == campus.UDPPortNetBIOS {
			t.Fatal("local-only NetBIOS traffic crossed the border")
		}
	}
}

func TestDeterministicRun(t *testing.T) {
	_, g1, c1 := runDay(t, testConfig(), 6)
	_, g2, c2 := runDay(t, testConfig(), 6)
	if g1.FlowsEmitted != g2.FlowsEmitted || len(c1.pkts) != len(c2.pkts) {
		t.Fatalf("runs differ: %d/%d flows, %d/%d packets",
			g1.FlowsEmitted, g2.FlowsEmitted, len(c1.pkts), len(c2.pkts))
	}
	for i := range c1.pkts {
		a, b := c1.pkts[i], c2.pkts[i]
		if !a.Timestamp.Equal(b.Timestamp) || a.IPv4.Src != b.IPv4.Src || a.IPv4.Dst != b.IPv4.Dst {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func BenchmarkGenerateDay(b *testing.B) {
	cfg := testConfig()
	for i := 0; i < b.N; i++ {
		net, err := campus.NewNetwork(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng := sim.New(cfg.Start)
		campus.NewDynamics(net, eng)
		NewGenerator(net, eng, pipeline.BatchFunc(func([]packet.Packet) {}))
		eng.RunUntil(cfg.Start.Add(24 * time.Hour))
	}
}
