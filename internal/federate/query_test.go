package federate

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/packet"
	"servdisc/internal/query"
)

// queryAll drains the aggregator's full index in canonical order.
func queryAll(t *testing.T, agg *Aggregator) []query.Doc {
	t.Helper()
	var out []query.Doc
	q := query.Query{Limit: query.MaxLimit}
	for {
		res, err := agg.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res.Hits...)
		if res.NextPageToken == "" {
			return out
		}
		q.PageToken = res.NextPageToken
	}
}

// The aggregator's lazily-patched index must track the service table
// exactly under a random mix of snapshot, event and retraction frames
// from several sites — checked every round against the canonical
// Services() roll-up, so both the rebuild path (first query) and the
// dirty-key patch path (every later query) are exercised.
func TestAggregatorQueryFollowsFrames(t *testing.T) {
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	agg := NewAggregator()
	rng := rand.New(rand.NewSource(11))
	sites := []SiteID{"east", "west"}
	seq := map[SiteID]uint64{}
	key := func(i int) core.ServiceKey {
		return testKey(0x807D0100+uint32(i/3), 6, uint16(80+i%3))
	}

	for round := 0; round < 25; round++ {
		site := sites[rng.Intn(len(sites))]
		seq[site]++
		switch rng.Intn(3) {
		case 0: // live discovery event
			ev := core.Event{
				Kind: core.EventServiceDiscovered, Key: key(rng.Intn(30)),
				Provenance: core.PassiveOnly,
				Time:       base.Add(time.Duration(round) * time.Minute),
			}
			if err := agg.Apply(&Frame{V: WireVersion, Type: FrameEvent, Site: site,
				Seq: seq[site], Event: &ev}); err != nil {
				t.Fatal(err)
			}
		case 1: // bootstrap snapshot with a handful of services
			var svcs []SnapshotService
			for i, n := 0, 2+rng.Intn(4); i < n; i++ {
				svcs = append(svcs, SnapshotService{
					Key: key(rng.Intn(30)), Provenance: core.PassiveOnly,
					PassiveAt: base.Add(time.Duration(rng.Intn(60)) * time.Minute),
					Flows:     1 + rng.Intn(50), Clients: 1 + rng.Intn(5),
				})
			}
			if err := agg.Apply(&Frame{V: WireVersion, Type: FrameSnapshot, Site: site,
				Seq: seq[site], Snapshot: &Snapshot{Services: svcs}}); err != nil {
				t.Fatal(err)
			}
		default: // retraction far in the future: clears that site's evidence
			if err := agg.Apply(&Frame{V: WireVersion, Type: FrameRetract, Site: site,
				Seq: seq[site], Retract: &Retraction{
					Key: key(rng.Intn(30)), Prov: core.PassiveOnly,
					At: base.Add(24 * time.Hour),
				}}); err != nil {
				t.Fatal(err)
			}
		}

		want := agg.Services()
		got := queryAll(t, agg)
		if len(got) != len(want) {
			t.Fatalf("round %d: index has %d services, roll-up %d", round, len(got), len(want))
		}
		for i := range got {
			ctx := fmt.Sprintf("round %d, hit %d (%s)", round, i, want[i].Key)
			if got[i].Key != want[i].Key {
				t.Fatalf("%s: index key %s out of order", ctx, got[i].Key)
			}
			if !got[i].First.Equal(want[i].FirstAt) {
				t.Errorf("%s: First = %v, want %v", ctx, got[i].First, want[i].FirstAt)
			}
			var flows int
			for _, sr := range want[i].Sites {
				flows += sr.Flows
			}
			if got[i].Flows != flows {
				t.Errorf("%s: Flows = %d, want summed %d", ctx, got[i].Flows, flows)
			}
		}
	}
	if agg.Gen() == 0 {
		t.Fatal("mutations never advanced the generation")
	}
}

// Filtered aggregator queries must answer from the same merged state as
// the full scan, and pagination must compose to the one-shot answer.
func TestAggregatorQueryFiltersAndPaginates(t *testing.T) {
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	agg := NewAggregator()
	var svcs []SnapshotService
	for i := 0; i < 40; i++ {
		svcs = append(svcs, SnapshotService{
			Key:        testKey(0x807D0200+uint32(i), 6, uint16(22+(i%2)*58)), // ports 22 / 80
			Provenance: core.PassiveOnly,
			PassiveAt:  base.Add(time.Duration(i) * time.Minute),
			Flows:      1, Clients: 1,
		})
	}
	if err := agg.Apply(&Frame{V: WireVersion, Type: FrameSnapshot, Site: "east", Seq: 1,
		Snapshot: &Snapshot{Services: svcs}}); err != nil {
		t.Fatal(err)
	}

	res, err := agg.Query(query.Query{Port: 80, Limit: query.MaxLimit})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 20 {
		t.Fatalf("port query returned %d hits, want 20", len(res.Hits))
	}
	for _, d := range res.Hits {
		if d.Key.Port != 80 || d.Key.Proto != packet.ProtoTCP {
			t.Fatalf("port query leaked %s", d.Key)
		}
	}

	var paged []query.Doc
	q := query.Query{Port: 80, Limit: 7}
	for {
		r, err := agg.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, r.Hits...)
		if r.NextPageToken == "" {
			break
		}
		q.PageToken = r.NextPageToken
	}
	if len(paged) != len(res.Hits) {
		t.Fatalf("pagination yielded %d hits, one-shot %d", len(paged), len(res.Hits))
	}
	for i := range paged {
		if paged[i].Key != res.Hits[i].Key {
			t.Fatalf("page hit %d = %s, one-shot %s", i, paged[i].Key, res.Hits[i].Key)
		}
	}
}
