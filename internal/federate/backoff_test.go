package federate

import (
	"testing"
	"time"
)

// TestBackoffFullJitter pins the schedule shape: every delay falls in
// (0, ceiling], ceilings double from Base up to Cap, and the same seed
// replays the same delays.
func TestBackoffFullJitter(t *testing.T) {
	cfg := BackoffConfig{Base: 100 * time.Millisecond, Cap: 2 * time.Second, Seed: 42}
	b := newBackoff(cfg)
	wantCeil := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second,
		2 * time.Second, 2 * time.Second,
	}
	for i, ceil := range wantCeil {
		if got := b.ceiling(); got != ceil {
			t.Fatalf("attempt %d: ceiling = %s, want %s", i, got, ceil)
		}
		d := b.next()
		if d <= 0 || d > ceil {
			t.Fatalf("attempt %d: delay %s outside (0, %s]", i, d, ceil)
		}
	}

	// Determinism: same seed, same draws.
	b1, b2 := newBackoff(cfg), newBackoff(cfg)
	for i := 0; i < 10; i++ {
		if d1, d2 := b1.next(), b2.next(); d1 != d2 {
			t.Fatalf("draw %d: same seed gave %s and %s", i, d1, d2)
		}
	}
}

// TestBackoffResetOnSuccess pins reset semantics: delivering a frame or
// staying up past ResetAfter returns the schedule to Base; a short dead
// connection does not.
func TestBackoffResetOnSuccess(t *testing.T) {
	cfg := BackoffConfig{Base: 100 * time.Millisecond, Cap: 10 * time.Second, ResetAfter: time.Minute, Seed: 7}
	b := newBackoff(cfg)
	for i := 0; i < 5; i++ {
		b.next()
	}
	if b.ceiling() == cfg.Base {
		t.Fatal("ceiling did not grow over 5 failures")
	}
	b.observe(time.Second, false) // brief uptime, nothing applied: still failing
	if b.ceiling() == cfg.Base {
		t.Fatal("short dead connection reset the schedule")
	}
	b.observe(time.Second, true) // a frame landed: healthy again
	if got := b.ceiling(); got != cfg.Base {
		t.Fatalf("ceiling after delivered frame = %s, want %s", got, cfg.Base)
	}
	for i := 0; i < 5; i++ {
		b.next()
	}
	b.observe(2*time.Minute, false) // long uptime counts as success too
	if got := b.ceiling(); got != cfg.Base {
		t.Fatalf("ceiling after long uptime = %s, want %s", got, cfg.Base)
	}
}

// TestBackoffDefaults pins the documented zero-value behavior: Base 2s
// (the historical -retry default), Cap 1m, and a Cap below Base raised
// to it.
func TestBackoffDefaults(t *testing.T) {
	d := BackoffConfig{}.withDefaults()
	if d.Base != 2*time.Second || d.Cap != time.Minute || d.ResetAfter != 30*time.Second {
		t.Fatalf("defaults = %+v", d)
	}
	inv := BackoffConfig{Base: time.Minute, Cap: time.Second}.withDefaults()
	if inv.Cap < inv.Base {
		t.Fatalf("cap %s below base %s survived normalization", inv.Cap, inv.Base)
	}
}
