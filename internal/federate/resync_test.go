package federate

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// meteredConn counts the bytes a feed client pulls off the wire — the
// resume-vs-snapshot cost measurement.
type meteredConn struct {
	net.Conn
	n atomic.Int64
}

func (m *meteredConn) Read(p []byte) (int, error) {
	n, err := m.Conn.Read(p)
	m.n.Add(int64(n))
	return n, err
}

// waitSeq polls the publisher's cursor until it reaches target (the pump
// is asynchronous) or the deadline passes.
func waitSeq(tb testing.TB, pub *Publisher, target uint64) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for pub.State().Seq < target {
		if time.Now().After(deadline) {
			tb.Fatalf("publisher seq stuck at %d, want %d", pub.State().Seq, target)
		}
		time.Sleep(time.Millisecond)
	}
}

// quiesce waits for the publisher's async pump to drain — the sequence
// number must hold still across several polls — then returns the settled
// state. Capturing State() while the pump is mid-drain hands back a
// cursor that is stale by the time it is presented.
func quiesce(tb testing.TB, pub *Publisher) PublisherState {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	st := pub.State()
	for stable := 0; stable < 20; {
		if time.Now().After(deadline) {
			tb.Fatal("publisher pump never quiesced")
		}
		time.Sleep(2 * time.Millisecond)
		if now := pub.State(); now.Seq == st.Seq {
			stable++
		} else {
			st, stable = now, 0
		}
	}
	return st
}

// waitCursor polls the aggregator's dedup cursor for one site.
func waitCursor(tb testing.TB, agg *Aggregator, site SiteID, target uint64) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, seq, ok := agg.SiteCursor(site); ok && seq >= target {
			return
		}
		if time.Now().After(deadline) {
			_, seq, _ := agg.SiteCursor(site)
			tb.Fatalf("aggregator cursor for %s stuck at %d, want %d", site, seq, target)
		}
		time.Sleep(time.Millisecond)
	}
}

// runFeedOnce wires the client to the publisher over one in-memory
// connection, waits for the aggregator's cursor to reach target, and
// tears the connection down. It returns the bytes the client read.
func runFeedOnce(t *testing.T, agg *Aggregator, fc *FeedClient, pub *Publisher, target uint64) int64 {
	t.Helper()
	server, client := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = pub.ServeConn(ctx, server)
		server.Close()
	}()
	mc := &meteredConn{Conn: client}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = fc.RunConn(ctx, mc)
	}()
	waitCursor(t, agg, pub.Site(), target)
	cancel()
	<-done
	return mc.n.Load()
}

// TestResumeShipsDeltaNotInventory is the delta-resync acceptance test:
// at a 100k-entry site, a reconnect after a short partition ships
// O(missed-churn) bytes off the replay ring, not an O(inventory)
// snapshot — visible in the byte counts and in the resume-hit /
// snapshot-fallback counters on both ends.
func TestResumeShipsDeltaNotInventory(t *testing.T) {
	const resident = 100_000 // services in the inventory before the partition
	const churn = 200        // services discovered while disconnected

	eng := core.NewShardedPassive(testCampus, nil, 4)
	pub := NewPublisherOpts("big-site", eng, PublisherState{}, PublisherOptions{})
	defer pub.Close()

	bld := packet.NewBuilder(0)
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	cli := packet.Endpoint{Addr: netaddr.MustParseV4("64.10.0.1"), Port: 33000}
	mkService := func(i int) *packet.Packet {
		// Two ports per address keeps 100k distinct keys inside the /16.
		srv := packet.Endpoint{Addr: testCampus.Base() + netaddr.V4(i/2), Port: uint16(80 + i%2)}
		return bld.SynAck(base.Add(time.Duration(i)*time.Millisecond), srv, cli, 9, 8)
	}

	// Build the resident inventory in chunks, letting the pump drain
	// between them so its bounded subscription never overflows (a pump
	// gap would — correctly — force every resume to fall back).
	var batch []packet.Packet
	fed := 0
	for i := 0; i < resident; i++ {
		batch = append(batch, *mkService(i))
		if len(batch) == 8192 || i == resident-1 {
			eng.HandleBatch(batch)
			fed += len(batch)
			batch = batch[:0]
			waitSeq(t, pub, uint64(fed))
		}
	}
	if d := pub.Dropped(); d != 0 {
		t.Fatalf("publisher pump dropped %d events during setup", d)
	}

	agg := NewAggregator()
	fc := NewFeedClient(agg, "big-site-feed", FeedOptions{})

	// Connection 1: first contact, snapshot bootstrap — the O(inventory)
	// baseline.
	snapshotBytes := runFeedOnce(t, agg, fc, pub, uint64(resident))

	// The partition: churn services are discovered while disconnected.
	for i := 0; i < churn; i++ {
		batch = append(batch, *mkService(resident + i))
	}
	eng.HandleBatch(batch)
	waitSeq(t, pub, uint64(resident+churn))

	// Connection 2: the client presents its cursor; the replay ring
	// still covers it, so only the churn is shipped.
	resumeBytes := runFeedOnce(t, agg, fc, pub, uint64(resident+churn))

	t.Logf("snapshot bootstrap: %d bytes; delta resume: %d bytes (%.1fx)",
		snapshotBytes, resumeBytes, float64(snapshotBytes)/float64(resumeBytes))
	if resumeBytes*20 >= snapshotBytes {
		t.Errorf("resume shipped %d bytes against a %d-byte snapshot — not O(churn)",
			resumeBytes, snapshotBytes)
	}
	ps := pub.Stats()
	if ps.ResumeHits != 1 || ps.SnapshotFallbacks != 1 {
		t.Errorf("publisher counters: resume=%d fallback=%d, want 1/1", ps.ResumeHits, ps.SnapshotFallbacks)
	}
	cs := fc.Stats()
	if cs.ResumeHits != 1 || cs.SnapshotFallbacks != 1 {
		t.Errorf("client counters: resume=%d fallback=%d, want 1/1", cs.ResumeHits, cs.SnapshotFallbacks)
	}

	// Convergence: after the standard quiesce-and-final-attach seal
	// (events alone don't carry the snapshot-only flow/client weights;
	// the next snapshot heals them) the resumed aggregator's dump equals
	// a from-scratch bootstrap's.
	eng.Close()
	<-agg.Attach(pub)
	ref := NewAggregator()
	<-ref.Attach(pub)
	if got, want := agg.Dump(), ref.Dump(); !bytes.Equal(got, want) {
		t.Errorf("resumed aggregator diverges from snapshot bootstrap:\n%s", firstDiff(got, want))
	}
}

// TestResumeFallbacks pins every path that must refuse a resume: an
// epoch from another incarnation, a cursor older than the ring, a
// hostile cursor from the future, and a publisher with resume disabled.
func TestResumeFallbacks(t *testing.T) {
	site := newTestSite(0, 400)
	defer site.pub.Close()
	site.produce()
	waitSeq(t, site.pub, 1) // at least some events sequenced
	cur := quiesce(t, site.pub)

	cases := []struct {
		name   string
		cursor ResumeCursor
	}{
		{"epoch-change", ResumeCursor{Epoch: cur.Epoch + 1, Seq: cur.Seq}},
		{"future-cursor", ResumeCursor{Epoch: cur.Epoch, Seq: cur.Seq + 1_000_000}},
		{"zero-cursor", ResumeCursor{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bootstrap, live, resumed := site.pub.catchup(0, tc.cursor)
			defer live.Cancel()
			if resumed {
				t.Fatalf("cursor %+v was resumed, want snapshot fallback", tc.cursor)
			}
			if len(bootstrap) != 2 || bootstrap[0].Type != FrameHello || bootstrap[1].Type != FrameSnapshot {
				t.Fatalf("fallback bootstrap = %d frames, want hello+snapshot", len(bootstrap))
			}
			if bootstrap[0].Resumed {
				t.Fatal("fallback hello claims Resumed")
			}
		})
	}

	t.Run("valid-cursor-resumes", func(t *testing.T) {
		bootstrap, live, resumed := site.pub.catchup(0, ResumeCursor{Epoch: cur.Epoch, Seq: cur.Seq})
		defer live.Cancel()
		if !resumed {
			t.Fatal("up-to-date cursor fell back to snapshot")
		}
		if len(bootstrap) != 1 || !bootstrap[0].Resumed {
			t.Fatalf("resume bootstrap = %+v, want a single Resumed hello", bootstrap)
		}
	})

	t.Run("stale-cursor", func(t *testing.T) {
		// A tiny ring: the cursor falls off after a handful of events.
		tiny := newTestSite(7, 200)
		tiny.pub.Close()
		tiny.pub = NewPublisherOpts(tiny.id, tiny.eng, PublisherState{}, PublisherOptions{ReplayRing: 8})
		defer tiny.pub.Close()
		tiny.produce()
		waitSeq(t, tiny.pub, 16)
		st := quiesce(t, tiny.pub)
		if _, _, resumed := tiny.pub.catchup(0, ResumeCursor{Epoch: st.Epoch, Seq: 1}); resumed {
			t.Fatal("cursor far behind an 8-frame ring was resumed")
		}
		if _, _, resumed := tiny.pub.catchup(0, ResumeCursor{Epoch: st.Epoch, Seq: st.Seq}); !resumed {
			t.Fatal("fresh cursor on the tiny ring fell back")
		}
	})

	t.Run("resume-disabled", func(t *testing.T) {
		off := newTestSite(8, 200)
		off.pub.Close()
		off.pub = NewPublisherOpts(off.id, off.eng, PublisherState{}, PublisherOptions{ReplayRing: -1})
		defer off.pub.Close()
		off.produce()
		st := off.pub.State()
		if _, _, resumed := off.pub.catchup(0, ResumeCursor{Epoch: st.Epoch, Seq: st.Seq}); resumed {
			t.Fatal("ReplayRing<0 still resumed")
		}
	})
}

// TestFeedAuth pins the shared-token option: the right token serves, a
// wrong or missing one is a clean close before any frame, and a
// write-only peer (which cannot speak a hello) is refused outright.
func TestFeedAuth(t *testing.T) {
	site := newTestSite(1, 200)
	site.pub.Close()
	pub := NewPublisherOpts(site.id, site.eng, PublisherState{}, PublisherOptions{AuthToken: "s3cret"})
	defer pub.Close()
	site.produce()

	connect := func(token string) error {
		server, client := net.Pipe()
		defer client.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		serveErr := make(chan error, 1)
		go func() {
			err := pub.ServeConn(ctx, server)
			server.Close()
			serveErr <- err
		}()
		agg := NewAggregator()
		fc := NewFeedClient(agg, "authed", FeedOptions{AuthToken: token})
		runErr := make(chan error, 1)
		go func() { runErr <- fc.RunConn(ctx, client) }()
		select {
		case err := <-serveErr:
			if err != nil {
				return err // rejected before serving
			}
		case <-time.After(100 * time.Millisecond):
			// Still serving: the handshake was accepted.
		}
		if fc.Site() == "" {
			// Give the hello a moment to land.
			deadline := time.Now().Add(2 * time.Second)
			for fc.Site() == "" && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
		if fc.Site() == "" {
			return fmt.Errorf("no hello received")
		}
		return nil
	}

	if err := connect("s3cret"); err != nil {
		t.Fatalf("correct token rejected: %v", err)
	}
	if err := connect("wrong"); err == nil {
		t.Fatal("wrong token was served")
	} else if !strings.Contains(err.Error(), "auth") {
		t.Fatalf("wrong token error = %v, want auth mismatch", err)
	}
	if err := connect(""); err == nil {
		t.Fatal("missing token was served")
	}
	if got := pub.Stats().AuthFailures; got != 2 {
		t.Errorf("AuthFailures = %d, want 2", got)
	}

	// A write-only peer cannot authenticate.
	var sink bytes.Buffer
	if err := pub.ServeConn(context.Background(), &sink); err == nil {
		t.Fatal("write-only peer served despite auth")
	}
	if sink.Len() != 0 {
		t.Errorf("write-only peer received %d bytes before auth refusal", sink.Len())
	}
}

// TestHostileHellos pins the hello gate: garbage bytes, a non-resume
// frame, and silence (hello timeout) all end the connection with zero
// frames served and a counted rejection.
func TestHostileHellos(t *testing.T) {
	site := newTestSite(2, 200)
	site.pub.Close()
	pub := NewPublisherOpts(site.id, site.eng, PublisherState{}, PublisherOptions{HelloTimeout: 100 * time.Millisecond})
	defer pub.Close()

	serve := func(send func(c net.Conn)) (served []byte, err error) {
		server, client := net.Pipe()
		defer client.Close()
		errc := make(chan error, 1)
		go func() {
			e := pub.ServeConn(context.Background(), server)
			server.Close()
			errc <- e
		}()
		go send(client)
		var buf bytes.Buffer
		_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
		b := make([]byte, 4096)
		for {
			n, rerr := client.Read(b)
			buf.Write(b[:n])
			if rerr != nil {
				break
			}
		}
		return buf.Bytes(), <-errc
	}

	if got, err := serve(func(c net.Conn) { c.Write([]byte("garbage not a frame\n")) }); err == nil {
		t.Fatal("garbage hello was served")
	} else if len(got) != 0 {
		t.Errorf("garbage hello still received %d bytes", len(got))
	}
	if _, err := serve(func(c net.Conn) {
		f := Frame{V: WireVersion, Type: FrameEvent, Site: "x", Epoch: 1, Seq: 1, Event: &core.Event{}}
		_ = NewEncoder(c).Encode(&f)
	}); err == nil {
		t.Fatal("event frame accepted as hello")
	}
	if _, err := serve(func(c net.Conn) { /* silence: hello timeout */ }); err == nil {
		t.Fatal("silent peer was served")
	}
	if got := pub.Stats().HellosRejected; got != 3 {
		t.Errorf("HellosRejected = %d, want 3", got)
	}
}

// TestHeartbeatKeepsIdleFeedAlive pins the keepalive pair: a quiet feed
// stays inside the client's idle deadline because heartbeats keep
// arriving, and heartbeats never perturb aggregator state.
func TestHeartbeatKeepsIdleFeedAlive(t *testing.T) {
	site := newTestSite(4, 100)
	site.pub.Close()
	pub := NewPublisherOpts(site.id, site.eng, PublisherState{}, PublisherOptions{Heartbeat: 20 * time.Millisecond})
	site.produce()

	agg := NewAggregator()
	fc := NewFeedClient(agg, "quiet", FeedOptions{IdleTimeout: 150 * time.Millisecond})
	server, client := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = pub.ServeConn(ctx, server)
		server.Close()
	}()
	done := make(chan error, 1)
	go func() { done <- fc.RunConn(ctx, client) }()

	// Several idle windows pass; only heartbeats flow.
	select {
	case err := <-done:
		t.Fatalf("idle feed died despite heartbeats: %v", err)
	case <-time.After(500 * time.Millisecond):
	}
	if fc.Stats().Heartbeats == 0 {
		t.Error("no heartbeats counted on an idle feed")
	}
	if pub.Stats().HeartbeatsSent == 0 {
		t.Error("publisher counted no heartbeats sent")
	}
	before := agg.Dump()
	time.Sleep(100 * time.Millisecond)
	if after := agg.Dump(); !bytes.Equal(before, after) {
		t.Error("heartbeats mutated aggregator state")
	}

	// With the publisher closed the stream ends cleanly.
	pub.Close()
	site.eng.Close()
	if err := <-done; err != nil {
		t.Errorf("feed end after close: %v", err)
	}
}

// TestIdleTimeoutTripsWithoutHeartbeats is the inverse: heartbeats off, a
// silent publisher trips the client's idle deadline instead of hanging.
func TestIdleTimeoutTripsWithoutHeartbeats(t *testing.T) {
	site := newTestSite(5, 100)
	site.pub.Close()
	pub := NewPublisherOpts(site.id, site.eng, PublisherState{}, PublisherOptions{Heartbeat: -1})
	defer pub.Close()

	agg := NewAggregator()
	fc := NewFeedClient(agg, "silent", FeedOptions{IdleTimeout: 80 * time.Millisecond})
	server, client := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = pub.ServeConn(ctx, server)
		server.Close()
	}()
	done := make(chan error, 1)
	go func() { done <- fc.RunConn(ctx, client) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("silent feed ended cleanly, want idle-deadline error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle deadline never tripped")
	}
}

// TestStalenessDuringResync pins the staleness gauge mid-resync: while a
// reconnected site replays its backlog the gauge shrinks monotonically
// toward zero as the replayed frames advance the watermark.
func TestStalenessDuringResync(t *testing.T) {
	agg := NewAggregator()
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	mkEvent := func(site SiteID, seq uint64, at time.Time) *Frame {
		return &Frame{V: WireVersion, Type: FrameEvent, Site: site, Epoch: 1, Seq: seq, Event: &core.Event{
			Kind: core.EventServiceDiscovered, Time: at,
			Key: core.ServiceKey{
				Addr:  testCampus.Base() + netaddr.V4(uint32(seq)),
				Proto: packet.ProtoTCP, Port: 80,
			},
			Provenance: core.PassiveOnly,
		}}
	}
	// Fresh site pins the global watermark at base+1h.
	if err := agg.Apply(mkEvent("fresh", 1, base.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	// Lagging site reconnects and replays an hour of backlog.
	last := time.Duration(-1)
	for seq := uint64(1); seq <= 60; seq++ {
		if err := agg.Apply(mkEvent("lagging", seq, base.Add(time.Duration(seq)*time.Minute))); err != nil {
			t.Fatal(err)
		}
		stale := agg.Staleness()["lagging"]
		if last >= 0 && stale > last {
			t.Fatalf("staleness rose mid-resync: %s -> %s at seq %d", last, stale, seq)
		}
		last = stale
	}
	if last != 0 {
		t.Errorf("staleness after full resync = %s, want 0", last)
	}
}

// TestNoResumeClaimBeforeAppliedState pins the cursor rule that keeps a
// cut bootstrap recoverable: a hello alone registers the site but applies
// nothing, so SiteCursor must not hand out a resume cursor for it — a
// client whose first snapshot died mid-frame has to re-request the
// snapshot on redial, not resume past it from seq 0 and lose the
// snapshot-only weights and retractions forever.
func TestNoResumeClaimBeforeAppliedState(t *testing.T) {
	agg := NewAggregator()
	hello := &Frame{V: WireVersion, Type: FrameHello, Site: "east", Epoch: 9}
	if err := agg.Apply(hello); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := agg.SiteCursor("east"); ok {
		t.Fatal("hello-only site handed out a resume cursor")
	}

	// A snapshot — even at generation zero — is applied state: resuming
	// from (epoch, 0) is now correct, the snapshot's contents are held.
	snap := &Frame{V: WireVersion, Type: FrameSnapshot, Site: "east", Epoch: 9, Seq: 0,
		Snapshot: &Snapshot{}}
	if err := agg.Apply(snap); err != nil {
		t.Fatal(err)
	}
	if epoch, seq, ok := agg.SiteCursor("east"); !ok || epoch != 9 || seq != 0 {
		t.Fatalf("after snapshot: cursor (%d, %d, %v), want (9, 0, true)", epoch, seq, ok)
	}

	// Applied events count too (the snapshot-skipping path can't reach
	// here from scratch, but an epoch that opened with events is state).
	agg2 := NewAggregator()
	ev := core.Event{
		Kind: core.EventServiceDiscovered,
		Time: time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC),
		Key: core.ServiceKey{
			Addr:  netaddr.MustParseV4("128.125.9.9"),
			Proto: packet.ProtoTCP, Port: 80,
		},
		Provenance: core.PassiveOnly,
	}
	frame := &Frame{V: WireVersion, Type: FrameEvent, Site: "west", Epoch: 3, Seq: 1, Event: &ev}
	if err := agg2.Apply(frame); err != nil {
		t.Fatal(err)
	}
	if epoch, seq, ok := agg2.SiteCursor("west"); !ok || epoch != 3 || seq != 1 {
		t.Fatalf("after event: cursor (%d, %d, %v), want (3, 1, true)", epoch, seq, ok)
	}
}
