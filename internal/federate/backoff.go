package federate

import (
	"time"

	"servdisc/internal/stats"
)

// BackoffConfig shapes a feed's reconnect schedule: exponential growth
// from Base with full jitter (each delay is uniform in (0, ceiling],
// the AWS "full jitter" policy — decorrelated fleets never thunder), a
// hard Cap, and reset-on-success (a connection that stayed up at least
// ResetAfter, or delivered at least one applied frame, starts the
// schedule over).
type BackoffConfig struct {
	// Base is the first-retry ceiling. Zero means 2s (the historical
	// fixed -retry default, now the base of the schedule).
	Base time.Duration
	// Cap bounds the ceiling. Zero means 1m.
	Cap time.Duration
	// ResetAfter is the connection uptime that counts as success even if
	// no frame arrived. Zero means 30s.
	ResetAfter time.Duration
	// Seed makes the jitter deterministic for tests; zero derives a seed
	// from the wall clock.
	Seed uint64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 2 * time.Second
	}
	if c.Cap <= 0 {
		c.Cap = time.Minute
	}
	if c.Cap < c.Base {
		c.Cap = c.Base
	}
	if c.ResetAfter <= 0 {
		c.ResetAfter = 30 * time.Second
	}
	return c
}

// backoff is one feed's reconnect-delay state. Not safe for concurrent
// use; each feed loop owns one.
type backoff struct {
	cfg     BackoffConfig
	attempt int
	rng     *stats.RNG
}

func newBackoff(cfg BackoffConfig) *backoff {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return &backoff{cfg: cfg, rng: stats.NewRNG(seed).Derive("feed-backoff")}
}

// next draws the delay before the next attempt and advances the schedule.
func (b *backoff) next() time.Duration {
	ceiling := b.cfg.Cap
	if shifted := b.cfg.Base << uint(b.attempt); b.attempt < 32 && shifted < ceiling {
		ceiling = shifted
	}
	if b.attempt < 62 {
		b.attempt++
	}
	// Full jitter over (0, ceiling]: 1-Float64() is in (0, 1], so two
	// racing feeds never share a delay and no delay collapses to zero.
	return time.Duration((1 - b.rng.Float64()) * float64(ceiling))
}

// observe feeds back one connection's outcome: long-enough uptime or any
// applied frame resets the schedule to the base.
func (b *backoff) observe(uptime time.Duration, delivered bool) {
	if delivered || uptime >= b.cfg.ResetAfter {
		b.attempt = 0
	}
}

// ceiling reports the current un-jittered next-delay ceiling — the
// backoff-state gauge surfaced per feed.
func (b *backoff) ceiling() time.Duration {
	c := b.cfg.Cap
	if shifted := b.cfg.Base << uint(b.attempt); b.attempt < 32 && shifted < c {
		c = shifted
	}
	return c
}
