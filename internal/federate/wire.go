// Package federate turns N independent discovery engines — one per campus
// or vantage point — into one aggregating global inventory.
//
// Three pieces compose the subsystem:
//
//   - The wire codec (Encoder/Decoder): a versioned, length-prefixed JSONL
//     framing for the typed discovery event stream (core.Event) plus a
//     snapshot-bootstrap frame derived from the generation-tracked
//     core.Inventory.
//   - Publisher: tags one engine's stream with a SiteID and serves
//     snapshot-then-live-events to any number of readers. Catch-up is the
//     latest frozen snapshot plus every event after its generation, so a
//     reconnecting aggregator resumes without replaying history it already
//     has.
//   - Aggregator: subscribes to N site feeds (in-process via pipeline.Hub
//     subscriptions, or over the wire via ReadFeed) and reconciles them
//     into a global inventory with per-site provenance and cross-site
//     dedup. Every state merge is idempotent, commutative and monotone, so
//     the aggregated Dump is byte-identical regardless of feed arrival
//     interleaving and across disconnect/reconnect cycles — the federation
//     analogue of the sharded engine's shard-then-merge determinism.
//
// See DESIGN.md §6 for the protocol walk-through.
package federate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"servdisc/internal/core"
)

// WireVersion is the protocol version stamped into every frame. A decoder
// rejects frames from a different major version rather than guessing.
// Version 2 added retraction: the retract frame type and the snapshot's
// retraction list (TTL-expired services withdrawn from the aggregate).
// Version 3 added resilience: the client-side resume hello (delta resync
// from a bounded replay ring instead of a full snapshot), wire-level
// heartbeat frames, the shared-token auth field, and the publisher
// hello's Resumed marker.
const WireVersion = 3

// maxFrameLen bounds a single frame's JSON body. Snapshot frames grow with
// inventory size (~100 B per service), so the cap is generous; anything
// beyond it indicates a corrupt or hostile stream, not a real inventory.
const maxFrameLen = 1 << 28 // 256 MiB

// SiteID names one publishing vantage point (one campus, one engine).
type SiteID string

// FrameType discriminates the wire frames.
type FrameType string

// Frame types.
const (
	// FrameHello opens a feed: version + site identity, no payload.
	FrameHello FrameType = "hello"
	// FrameSnapshot bootstraps a reader: the publisher's frozen inventory
	// as of generation Seq. Every event with sequence <= Seq is already
	// reflected in the snapshot — the dedup rule reconnecting aggregators
	// rely on.
	FrameSnapshot FrameType = "snapshot"
	// FrameEvent carries one live core.Event, tagged with its position in
	// the site's stream.
	FrameEvent FrameType = "event"
	// FrameRetract withdraws evidence: the site's retention expired a
	// service, so evidence of the given kind older than the retraction
	// time no longer supports it. Sequenced like an event frame.
	FrameRetract FrameType = "retract"
	// FrameResume is the client hello: the first (and only) frame a
	// connecting reader sends. It carries the reader's dedup cursor
	// (Frame.Resume) and, when the publisher demands one, the shared auth
	// token (Frame.Token). A publisher whose replay ring still covers the
	// cursor answers with only the frames past it; otherwise it falls
	// back to the full snapshot bootstrap. A zero cursor requests the
	// snapshot explicitly (a first connection).
	FrameResume FrameType = "resume"
	// FrameHeartbeat is a publisher keepalive on a quiet feed: no
	// payload, no sequence number, never mutates aggregator state. Its
	// only job is to keep arriving before the reader's idle deadline.
	FrameHeartbeat FrameType = "heartbeat"
)

// ResumeCursor is the payload of a resume hello: the highest (epoch, seq)
// position the reader has applied from this site's stream. Sequence
// numbers are only comparable within an epoch, so a cursor from another
// incarnation is never resumable.
type ResumeCursor struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// Retraction is the payload of a retract frame (and one entry of a
// snapshot's retraction list): the site no longer holds evidence of the
// given kind for the service, as of At — the retention deadline that
// expired it. Prov names the evidence kind withdrawn (PassiveOnly or
// ActiveOnly). Evidence timestamped at or after At re-establishes the
// service; older evidence is void. Snapshots carry the site's full
// tombstone list, so a retract frame lost from the bounded live feed
// heals on the next reconnect.
type Retraction struct {
	Key  core.ServiceKey `json:"key"`
	At   time.Time       `json:"at"`
	Prov core.Provenance `json:"prov"`
}

// Frame is one unit of the federation wire: a site-tagged envelope around
// either an event or a snapshot. On the wire each frame is a single line
// of JSON prefixed with its decimal byte length ("123 {...}\n"): the
// prefix lets a reader allocate and skip without parsing, the line
// framing keeps a captured feed greppable and diffable.
type Frame struct {
	// V is the protocol version (WireVersion).
	V int `json:"v"`
	// Type discriminates the payload.
	Type FrameType `json:"type"`
	// Site identifies the publishing engine.
	Site SiteID `json:"site"`
	// Epoch identifies one publisher incarnation (a fresh value per
	// publisher process). Sequence numbers are only comparable within an
	// epoch: an aggregator seeing a new epoch resets its dedup cursors
	// instead of discarding the restarted site's feed as duplicates.
	Epoch uint64 `json:"epoch,omitempty"`
	// Seq is the event's position in the site's stream (event frames,
	// counted from 1), or the stream position the snapshot covers
	// (snapshot frames: every event with Seq <= this value is reflected).
	Seq uint64 `json:"seq,omitempty"`
	// Event is the payload of an event frame.
	Event *core.Event `json:"event,omitempty"`
	// Snapshot is the payload of a snapshot frame.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// Retract is the payload of a retract frame.
	Retract *Retraction `json:"retract,omitempty"`
	// Resume is the payload of a resume hello (client to publisher only).
	Resume *ResumeCursor `json:"resume,omitempty"`
	// Token is the shared auth secret on a resume hello; publishers
	// configured with one close the connection when it is wrong or
	// missing, before serving a single frame.
	Token string `json:"token,omitempty"`
	// Resumed marks the publisher's hello on a connection whose resume
	// cursor was honored: the frames that follow are the delta past the
	// cursor, not a snapshot bootstrap. Readers use it to count
	// resume-hits against snapshot-fallbacks.
	Resumed bool `json:"resumed,omitempty"`
}

// FrameWriter writes arbitrary JSON values in the length-prefixed JSONL
// framing ("123 {...}\n"). It is the raw layer under Encoder, exposed so
// other durable formats (the checkpoint chunk codec) share one framing;
// unlike Encoder it buffers — call Flush before trusting the underlying
// writer has everything. Not safe for concurrent writers.
type FrameWriter struct {
	w   *bufio.Writer
	buf []byte
}

// NewFrameWriter wraps a writer.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w)}
}

// WriteJSON marshals v and writes it as one frame, buffered.
func (fw *FrameWriter) WriteJSON(v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("federate: encode frame: %w", err)
	}
	fw.buf = strconv.AppendInt(fw.buf[:0], int64(len(body)), 10)
	fw.buf = append(fw.buf, ' ')
	if _, err := fw.w.Write(fw.buf); err != nil {
		return err
	}
	if _, err := fw.w.Write(body); err != nil {
		return err
	}
	return fw.w.WriteByte('\n')
}

// Flush pushes buffered frames to the underlying writer.
func (fw *FrameWriter) Flush() error { return fw.w.Flush() }

// Encoder writes frames in the length-prefixed JSONL wire form. Not safe
// for concurrent writers; each feed connection owns one encoder.
type Encoder struct {
	fw *FrameWriter
}

// NewEncoder wraps a writer (typically a net.Conn or an HTTP response).
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{fw: NewFrameWriter(w)}
}

// Encode writes one frame and flushes it to the underlying writer, so a
// live feed never sits in the buffer waiting for a frame that may be
// minutes away.
func (e *Encoder) Encode(f *Frame) error {
	if err := e.fw.WriteJSON(f); err != nil {
		return err
	}
	return e.fw.Flush()
}

// FrameReader reads frames written by FrameWriter, returning the raw
// body bytes. It is the raw layer under Decoder, hardened the same way:
// the body buffer grows only as bytes actually arrive, so a hostile
// length prefix cannot force a quarter-gigabyte allocation for a stream
// that ends two bytes later. Not safe for concurrent readers.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps a reader.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// ReadBody returns the next frame's JSON body. The returned slice aliases
// the reader's internal buffer and is valid only until the next call. It
// returns io.EOF when the stream ends cleanly at a frame boundary and
// io.ErrUnexpectedEOF when it ends inside a frame; any other malformation
// (bad prefix, oversized frame, missing terminator) is a descriptive
// error.
func (fr *FrameReader) ReadBody() ([]byte, error) {
	n, err := fr.readLen()
	if err != nil {
		return nil, err
	}
	need := n + 1 // body plus the trailing newline
	buf := fr.buf[:0]
	for len(buf) < need {
		chunk := need - len(buf)
		if chunk > 1<<20 {
			chunk = 1 << 20
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(fr.r, buf[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	fr.buf = buf
	if buf[n] != '\n' {
		return nil, fmt.Errorf("federate: frame missing newline terminator")
	}
	return buf[:n], nil
}

// ReadJSON reads the next frame and unmarshals it into v.
func (fr *FrameReader) ReadJSON(v any) error {
	body, err := fr.ReadBody()
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("federate: decode frame: %w", err)
	}
	return nil
}

// readLen parses the decimal length prefix up to the separating space.
// io.EOF before the first digit is a clean end of stream.
func (fr *FrameReader) readLen() (int, error) {
	n := 0
	for i := 0; ; i++ {
		c, err := fr.r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if c == ' ' {
			if i == 0 {
				return 0, fmt.Errorf("federate: empty frame length prefix")
			}
			return n, nil
		}
		if c < '0' || c > '9' || i >= 10 {
			return 0, fmt.Errorf("federate: malformed frame length prefix")
		}
		n = n*10 + int(c-'0')
		if n > maxFrameLen {
			return 0, fmt.Errorf("federate: frame length %d exceeds limit %d", n, maxFrameLen)
		}
	}
}

// Decoder reads frames written by Encoder. Not safe for concurrent
// readers.
type Decoder struct {
	fr *FrameReader
}

// NewDecoder wraps a reader.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{fr: NewFrameReader(r)}
}

// Decode reads the next frame. It returns io.EOF when the stream ends
// cleanly at a frame boundary and io.ErrUnexpectedEOF when it ends inside
// a frame; any other malformation (bad prefix, oversized frame, invalid
// JSON, version mismatch) is a descriptive error.
func (d *Decoder) Decode() (*Frame, error) {
	var f Frame
	if err := d.fr.ReadJSON(&f); err != nil {
		return nil, err
	}
	if f.V != WireVersion {
		return nil, fmt.Errorf("federate: wire version %d, want %d", f.V, WireVersion)
	}
	return &f, nil
}
