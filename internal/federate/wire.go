// Package federate turns N independent discovery engines — one per campus
// or vantage point — into one aggregating global inventory.
//
// Three pieces compose the subsystem:
//
//   - The wire codec (Encoder/Decoder): a versioned, length-prefixed JSONL
//     framing for the typed discovery event stream (core.Event) plus a
//     snapshot-bootstrap frame derived from the generation-tracked
//     core.Inventory.
//   - Publisher: tags one engine's stream with a SiteID and serves
//     snapshot-then-live-events to any number of readers. Catch-up is the
//     latest frozen snapshot plus every event after its generation, so a
//     reconnecting aggregator resumes without replaying history it already
//     has.
//   - Aggregator: subscribes to N site feeds (in-process via pipeline.Hub
//     subscriptions, or over the wire via ReadFeed) and reconciles them
//     into a global inventory with per-site provenance and cross-site
//     dedup. Every state merge is idempotent, commutative and monotone, so
//     the aggregated Dump is byte-identical regardless of feed arrival
//     interleaving and across disconnect/reconnect cycles — the federation
//     analogue of the sharded engine's shard-then-merge determinism.
//
// See DESIGN.md §6 for the protocol walk-through.
package federate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"servdisc/internal/core"
)

// WireVersion is the protocol version stamped into every frame. A decoder
// rejects frames from a different major version rather than guessing.
const WireVersion = 1

// maxFrameLen bounds a single frame's JSON body. Snapshot frames grow with
// inventory size (~100 B per service), so the cap is generous; anything
// beyond it indicates a corrupt or hostile stream, not a real inventory.
const maxFrameLen = 1 << 28 // 256 MiB

// SiteID names one publishing vantage point (one campus, one engine).
type SiteID string

// FrameType discriminates the wire frames.
type FrameType string

// Frame types.
const (
	// FrameHello opens a feed: version + site identity, no payload.
	FrameHello FrameType = "hello"
	// FrameSnapshot bootstraps a reader: the publisher's frozen inventory
	// as of generation Seq. Every event with sequence <= Seq is already
	// reflected in the snapshot — the dedup rule reconnecting aggregators
	// rely on.
	FrameSnapshot FrameType = "snapshot"
	// FrameEvent carries one live core.Event, tagged with its position in
	// the site's stream.
	FrameEvent FrameType = "event"
)

// Frame is one unit of the federation wire: a site-tagged envelope around
// either an event or a snapshot. On the wire each frame is a single line
// of JSON prefixed with its decimal byte length ("123 {...}\n"): the
// prefix lets a reader allocate and skip without parsing, the line
// framing keeps a captured feed greppable and diffable.
type Frame struct {
	// V is the protocol version (WireVersion).
	V int `json:"v"`
	// Type discriminates the payload.
	Type FrameType `json:"type"`
	// Site identifies the publishing engine.
	Site SiteID `json:"site"`
	// Epoch identifies one publisher incarnation (a fresh value per
	// publisher process). Sequence numbers are only comparable within an
	// epoch: an aggregator seeing a new epoch resets its dedup cursors
	// instead of discarding the restarted site's feed as duplicates.
	Epoch uint64 `json:"epoch,omitempty"`
	// Seq is the event's position in the site's stream (event frames,
	// counted from 1), or the stream position the snapshot covers
	// (snapshot frames: every event with Seq <= this value is reflected).
	Seq uint64 `json:"seq,omitempty"`
	// Event is the payload of an event frame.
	Event *core.Event `json:"event,omitempty"`
	// Snapshot is the payload of a snapshot frame.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// Encoder writes frames in the length-prefixed JSONL wire form. Not safe
// for concurrent writers; each feed connection owns one encoder.
type Encoder struct {
	w   *bufio.Writer
	buf []byte
}

// NewEncoder wraps a writer (typically a net.Conn or an HTTP response).
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// Encode writes one frame and flushes it to the underlying writer, so a
// live feed never sits in the buffer waiting for a frame that may be
// minutes away.
func (e *Encoder) Encode(f *Frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("federate: encode frame: %w", err)
	}
	e.buf = strconv.AppendInt(e.buf[:0], int64(len(body)), 10)
	e.buf = append(e.buf, ' ')
	if _, err := e.w.Write(e.buf); err != nil {
		return err
	}
	if _, err := e.w.Write(body); err != nil {
		return err
	}
	if err := e.w.WriteByte('\n'); err != nil {
		return err
	}
	return e.w.Flush()
}

// Decoder reads frames written by Encoder. Not safe for concurrent
// readers.
type Decoder struct {
	r   *bufio.Reader
	buf []byte
}

// NewDecoder wraps a reader.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Decode reads the next frame. It returns io.EOF when the stream ends
// cleanly at a frame boundary and io.ErrUnexpectedEOF when it ends inside
// a frame; any other malformation (bad prefix, oversized frame, invalid
// JSON, version mismatch) is a descriptive error.
func (d *Decoder) Decode() (*Frame, error) {
	n, err := d.readLen()
	if err != nil {
		return nil, err
	}
	// Grow the buffer only as bytes actually arrive: a hostile length
	// prefix must not be able to force a quarter-gigabyte allocation for a
	// stream that ends two bytes later.
	need := n + 1 // body plus the trailing newline
	buf := d.buf[:0]
	for len(buf) < need {
		chunk := need - len(buf)
		if chunk > 1<<20 {
			chunk = 1 << 20
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(d.r, buf[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	d.buf = buf
	if buf[n] != '\n' {
		return nil, fmt.Errorf("federate: frame missing newline terminator")
	}
	var f Frame
	if err := json.Unmarshal(buf[:n], &f); err != nil {
		return nil, fmt.Errorf("federate: decode frame: %w", err)
	}
	if f.V != WireVersion {
		return nil, fmt.Errorf("federate: wire version %d, want %d", f.V, WireVersion)
	}
	return &f, nil
}

// readLen parses the decimal length prefix up to the separating space.
// io.EOF before the first digit is a clean end of stream.
func (d *Decoder) readLen() (int, error) {
	n := 0
	for i := 0; ; i++ {
		c, err := d.r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if c == ' ' {
			if i == 0 {
				return 0, fmt.Errorf("federate: empty frame length prefix")
			}
			return n, nil
		}
		if c < '0' || c > '9' || i >= 10 {
			return 0, fmt.Errorf("federate: malformed frame length prefix")
		}
		n = n*10 + int(c-'0')
		if n > maxFrameLen {
			return 0, fmt.Errorf("federate: frame length %d exceeds limit %d", n, maxFrameLen)
		}
	}
}
