package federate

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
	"servdisc/internal/stats"
)

var testCampus = netaddr.MustParsePrefix("128.125.0.0/16")

// testSite is one simulated vantage point: a hybrid engine with
// deterministic pre-generated input and a publisher over it. Several sites
// share the campus space (they are different links of one campus), so a
// subset of servers is visible from every site — the cross-site dedup
// surface.
type testSite struct {
	id      SiteID
	eng     *core.Hybrid
	pub     *Publisher
	batches [][]packet.Packet
	reports []*probe.ScanReport
}

// newTestSite builds site idx with deterministic traffic: 30 servers every
// site sees, 10 servers exclusive to this site, one shared scanner and one
// site-local scanner (both over threshold), and two probe sweeps that
// create active-only services and provenance upgrades.
func newTestSite(idx, flows int) *testSite {
	id := SiteID(fmt.Sprintf("site-%d", idx))
	s := &testSite{
		id:  id,
		eng: core.NewHybrid(testCampus, []uint16{53, 123}, 4, []uint16{22, 80, 443}),
	}
	s.eng.Run(context.Background())
	s.pub = NewPublisher(id, s.eng)

	rng := stats.NewRNG(uint64(1000 + idx)).Derive("federate-test")
	bld := packet.NewBuilder(0)
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)

	// 30 shared + 10 exclusive servers.
	servers := make([]netaddr.V4, 0, 40)
	for i := 0; i < 30; i++ {
		servers = append(servers, testCampus.Base()+netaddr.V4(256+i))
	}
	for i := 0; i < 10; i++ {
		servers = append(servers, testCampus.Base()+netaddr.V4(1000+100*idx+i))
	}
	ports := []uint16{22, 80, 443, 8080}

	var pkts []packet.Packet
	add := func(p *packet.Packet) { pkts = append(pkts, *p) }

	// Scanners: one source every site observes, one per-site source. Both
	// cross the 100/100 thresholds well before their traffic ends, so the
	// final peak tallies dominate the crossing-moment tallies.
	scanners := []netaddr.V4{
		netaddr.MustParseV4("210.9.9.9"),
		netaddr.MustParseV4("211.0.0.1") + netaddr.V4(idx),
	}
	for si, src := range scanners {
		t0 := base.Add(time.Duration(si) * time.Hour)
		for i := 0; i < 150; i++ {
			dst := testCampus.Base() + netaddr.V4(5000+i)
			add(bld.Syn(t0.Add(time.Duration(i)*time.Millisecond),
				packet.Endpoint{Addr: src, Port: 40000}, packet.Endpoint{Addr: dst, Port: 80}, uint32(i)))
			if i < 120 {
				add(bld.Rst(t0.Add(time.Duration(i)*time.Millisecond+500*time.Microsecond),
					packet.Endpoint{Addr: dst, Port: 80}, packet.Endpoint{Addr: src, Port: 40000}, uint32(i)))
			}
		}
	}

	// Client flows: SYN-ACKs from the servers, spread over six hours.
	ext := netaddr.MustParseV4("64.10.0.0")
	for i := 0; i < flows; i++ {
		at := base.Add(time.Duration(float64(6*time.Hour) * float64(i) / float64(flows)))
		srv := servers[rng.Intn(len(servers))]
		cli := ext + netaddr.V4(rng.Intn(4000))
		port := ports[rng.Intn(len(ports))]
		add(bld.SynAck(at, packet.Endpoint{Addr: srv, Port: port},
			packet.Endpoint{Addr: cli, Port: 33000}, 9, 8))
		if i%7 == 0 { // some UDP services too
			add(bld.UDPPacket(at, packet.Endpoint{Addr: srv, Port: 53},
				packet.Endpoint{Addr: cli, Port: 34000}, []byte("x")))
		}
	}
	for len(pkts) > 0 {
		n := 64
		if n > len(pkts) {
			n = len(pkts)
		}
		s.batches = append(s.batches, pkts[:n])
		pkts = pkts[n:]
	}

	// Two sweeps: confirm some passively-seen servers (upgrades) and find
	// probe-only services on otherwise silent addresses.
	for sweep := 0; sweep < 2; sweep++ {
		started := base.Add(time.Duration(sweep)*3*time.Hour + 30*time.Minute)
		rep := &probe.ScanReport{ID: idx*100 + sweep, Started: started, Finished: started.Add(20 * time.Minute)}
		for i := 0; i < 10; i++ {
			rep.TCP = append(rep.TCP, probe.TCPResult{
				Time: started.Add(time.Duration(i) * time.Second),
				Addr: servers[i*3], Port: 22, State: probe.StateOpen,
			})
		}
		// Active-only: addresses passive monitoring never sees.
		for i := 0; i < 5; i++ {
			rep.TCP = append(rep.TCP, probe.TCPResult{
				Time: started.Add(time.Minute + time.Duration(i)*time.Second),
				Addr: testCampus.Base() + netaddr.V4(9000+100*idx+i), Port: 443, State: probe.StateOpen,
			})
		}
		s.reports = append(s.reports, rep)
	}
	return s
}

// produce feeds the site's entire input to its engine, interleaving scan
// reports between packet batches.
func (s *testSite) produce() {
	for i, b := range s.batches {
		s.eng.HandleBatch(b)
		for r := range s.reports {
			if i == (r+1)*len(s.batches)/(len(s.reports)+1) {
				s.eng.AddReport(s.reports[r])
			}
		}
	}
}

// finish closes the engine (ending the publisher's stream) and performs
// the final catch-up attach every scenario ends with — the equivalent of
// an aggregator reconnecting after the site quiesced.
func (s *testSite) finish(agg *Aggregator) {
	s.eng.Close()
	<-agg.Attach(s.pub)
}

// partialFeed consumes the publisher's bootstrap plus at most maxEvents
// live frames, then drops the connection — a feed that dies mid-stream.
func partialFeed(agg *Aggregator, pub *Publisher, maxEvents int) <-chan struct{} {
	bootstrap, live := pub.Catchup(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range bootstrap {
			_ = agg.Apply(&bootstrap[i])
		}
		n := 0
		for f := range live.Events() {
			_ = agg.Apply(&f)
			if n++; n >= maxEvents {
				live.Cancel()
				return
			}
		}
	}()
	return done
}

// runScenario executes one federation choreography over nSites freshly
// built sites and returns the aggregator's final canonical dump. Every
// scenario ends the same way — engines closed, one final catch-up per
// site — so the dumps of different interleavings are comparable.
func runScenario(nSites, flows int, choreography func(sites []*testSite, agg *Aggregator)) ([]byte, *Aggregator) {
	agg := NewAggregator()
	sites := make([]*testSite, nSites)
	for i := range sites {
		sites[i] = newTestSite(i, flows)
	}
	choreography(sites, agg)
	for _, s := range sites {
		s.finish(agg)
	}
	return agg.Dump(), agg
}

// TestAggregatorConvergence is the federation determinism property: for
// the same site inputs, the global Dump is byte-identical whether the
// aggregator was attached before ingest (racing the live producers),
// attached mid-stream, attached only after the fact (snapshot-only
// bootstrap), or suffered a dropped-and-reconnected feed — at 1, 2 and 4
// sites.
func TestAggregatorConvergence(t *testing.T) {
	const flows = 1500
	for _, nSites := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("sites=%d", nSites), func(t *testing.T) {
			scenarios := map[string]func(sites []*testSite, agg *Aggregator){
				"live-race": func(sites []*testSite, agg *Aggregator) {
					for _, s := range sites {
						agg.Attach(s.pub)
					}
					var wg sync.WaitGroup
					for _, s := range sites {
						wg.Add(1)
						go func(s *testSite) { defer wg.Done(); s.produce() }(s)
					}
					wg.Wait()
				},
				"mid-stream": func(sites []*testSite, agg *Aggregator) {
					var wg sync.WaitGroup
					for i, s := range sites {
						wg.Add(1)
						go func(i int, s *testSite) {
							defer wg.Done()
							half := len(s.batches) / 2
							for j, b := range s.batches[:half] {
								s.eng.HandleBatch(b)
								_ = j
							}
							agg.Attach(s.pub) // catch up mid-production, then stream live
							for _, b := range s.batches[half:] {
								s.eng.HandleBatch(b)
							}
							for _, r := range s.reports {
								s.eng.AddReport(r)
							}
						}(i, s)
					}
					wg.Wait()
				},
				"snapshot-only": func(sites []*testSite, agg *Aggregator) {
					var wg sync.WaitGroup
					for _, s := range sites {
						wg.Add(1)
						go func(s *testSite) { defer wg.Done(); s.produce() }(s)
					}
					wg.Wait()
					// No live attach at all: sites[i].finish() delivers the
					// final snapshot as the only feed content.
				},
				"drop-and-resume": func(sites []*testSite, agg *Aggregator) {
					drops := make([]<-chan struct{}, len(sites))
					for i, s := range sites {
						drops[i] = partialFeed(agg, s.pub, 10)
					}
					var wg sync.WaitGroup
					for _, s := range sites {
						wg.Add(1)
						go func(s *testSite) { defer wg.Done(); s.produce() }(s)
					}
					wg.Wait()
					for _, d := range drops {
						<-d
					}
					// Resume every feed; its snapshot dedups what the dropped
					// connection already delivered.
					for _, s := range sites {
						agg.Attach(s.pub)
					}
				},
			}

			var wantDump []byte
			var wantName string
			for name, ch := range scenarios {
				dump, agg := runScenario(nSites, flows, ch)
				if wantDump == nil {
					wantDump, wantName = dump, name
					// Sanity: the global inventory is populated.
					if agg.NumServices() == 0 {
						t.Fatalf("%s: empty global inventory", name)
					}
					continue
				}
				if !bytes.Equal(dump, wantDump) {
					t.Errorf("dump of %q diverges from %q:\n%s\n--- vs ---\n%s",
						name, wantName, firstDiff(dump, wantDump), wantName)
				}
			}
		})
	}
}

// firstDiff renders the first differing line of two dumps for diagnostics.
func firstDiff(a, b []byte) string {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(al), len(bl))
}

// TestCrossSiteDedup pins the aggregation semantics at two sites: a
// service seen from both vantage points is one global record listing both
// sites, site-exclusive services list one.
func TestCrossSiteDedup(t *testing.T) {
	dump, agg := runScenario(2, 1200, func(sites []*testSite, agg *Aggregator) {
		for _, s := range sites {
			agg.Attach(s.pub)
		}
		for _, s := range sites {
			s.produce()
		}
	})
	var both, single int
	for _, g := range agg.Services() {
		switch len(g.Sites) {
		case 2:
			both++
		case 1:
			single++
		default:
			t.Fatalf("service %s has %d site records", g.Key, len(g.Sites))
		}
	}
	if both == 0 {
		t.Error("no cross-site deduplicated services (shared servers should be seen by both sites)")
	}
	if single == 0 {
		t.Error("no site-exclusive services (each site has exclusive servers)")
	}
	// The shared scanner is one global entry with two per-site views.
	if !bytes.Contains(dump, []byte("scanner 210.9.9.9 sites=2")) {
		t.Errorf("shared scanner not deduplicated across sites:\n%s", dump)
	}
	stats := agg.Stats()
	if len(stats) != 2 {
		t.Fatalf("expected 2 sites, got %d", len(stats))
	}
	for _, st := range stats {
		if st.Services == 0 || st.Packets == 0 || st.Scans != 2 {
			t.Errorf("site %s stats look wrong: %+v", st.Site, st)
		}
	}
}

// TestAggregatorReconnectNoDuplicates proves the catch-up dedup: after a
// feed is dropped mid-stream and resumed (snapshot + overlapping events),
// the aggregator's global stream has emitted ServiceDiscovered at most
// once per service.
func TestAggregatorReconnectNoDuplicates(t *testing.T) {
	agg := NewAggregator()
	sub := agg.Subscribe(1 << 16)
	site := newTestSite(0, 1200)

	// First connection dies after a handful of events.
	drop := partialFeed(agg, site.pub, 15)
	half := len(site.batches) / 2
	for _, b := range site.batches[:half] {
		site.eng.HandleBatch(b)
	}
	site.eng.AddReport(site.reports[0])
	<-drop

	// Feed resumes twice over: a fresh snapshot plus live events on each
	// connection, overlapping both the dead connection's deliveries and
	// each other — the worst case for double counting.
	resumed := agg.Attach(site.pub)
	resumed2 := agg.Attach(site.pub)
	for _, b := range site.batches[half:] {
		site.eng.HandleBatch(b)
	}
	site.eng.AddReport(site.reports[1])
	site.eng.Close()
	<-resumed
	<-resumed2
	site.finish(agg)
	agg.Close()

	seen := make(map[core.ServiceKey]int)
	for ge := range sub.Events() {
		if ge.Event.Kind == core.EventServiceDiscovered {
			seen[ge.Event.Key]++
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("global event subscriber dropped %d events; grow the buffer", sub.Dropped())
	}
	for key, n := range seen {
		if n > 1 {
			t.Errorf("service %s discovered %d times globally; want exactly once", key, n)
		}
	}
	if len(seen) != agg.NumServices() {
		t.Errorf("global stream announced %d services, inventory holds %d", len(seen), agg.NumServices())
	}
	// And the dedup cursor actually skipped the overlap.
	st := agg.Stats()[0]
	if st.DupEvents == 0 {
		t.Errorf("expected generation-deduplicated events on reconnect, got %+v", st)
	}
}

// TestSameGenerationSnapshotRecoversDroppedState pins the pump-drop
// recovery path: a state mutation whose event overflowed the publisher's
// own engine subscription never advances the stream generation, so it
// arrives in a later snapshot carrying the SAME generation — which must
// be re-merged, not skipped as a duplicate.
func TestSameGenerationSnapshotRecoversDroppedState(t *testing.T) {
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	keyA, keyB := testKey(0x807D0101, 6, 80), testKey(0x807D0102, 6, 443)
	snapFrame := func(svcs ...SnapshotService) *Frame {
		return &Frame{V: WireVersion, Type: FrameSnapshot, Site: "east", Seq: 5,
			Snapshot: &Snapshot{Services: svcs, Packets: 100}}
	}
	agg := NewAggregator()
	if err := agg.Apply(snapFrame(
		SnapshotService{Key: keyA, Provenance: core.PassiveOnly, PassiveAt: base, Flows: 1, Clients: 1},
	)); err != nil {
		t.Fatal(err)
	}
	// Same generation, more state: keyB's discovery event was dropped at
	// the pump, so no event ever sequenced it.
	if err := agg.Apply(snapFrame(
		SnapshotService{Key: keyA, Provenance: core.PassiveOnly, PassiveAt: base, Flows: 2, Clients: 1},
		SnapshotService{Key: keyB, Provenance: core.PassiveOnly, PassiveAt: base.Add(time.Minute), Flows: 1, Clients: 1},
	)); err != nil {
		t.Fatal(err)
	}
	if n := agg.NumServices(); n != 2 {
		t.Fatalf("same-generation snapshot was skipped: %d services, want 2", n)
	}
	for _, g := range agg.Services() {
		if g.Key == keyA && g.Sites[0].Flows != 2 {
			t.Errorf("keyA flows=%d, want the re-merged 2", g.Sites[0].Flows)
		}
	}
}

// TestPublisherRestartNewEpoch pins the restart protocol: a restarted
// publisher's sequence numbers start over in a fresh epoch, and the
// aggregator must merge the new incarnation's feed instead of discarding
// it as duplicates of the old cursors.
func TestPublisherRestartNewEpoch(t *testing.T) {
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	keyA, keyB := testKey(0x807D0101, 6, 80), testKey(0x807D0102, 6, 443)
	agg := NewAggregator()
	// First incarnation: snapshot at a high generation, plus live events.
	if err := agg.Apply(&Frame{V: WireVersion, Type: FrameSnapshot, Site: "east", Epoch: 1, Seq: 900,
		Snapshot: &Snapshot{Services: []SnapshotService{
			{Key: keyA, Provenance: core.PassiveOnly, PassiveAt: base, Flows: 5, Clients: 2},
		}, Packets: 500}}); err != nil {
		t.Fatal(err)
	}
	// Restarted publisher: new epoch, sequence space starts over. Its
	// snapshot generation (2) and event seqs (3) are far below the old
	// cursors — they must be applied anyway.
	if err := agg.Apply(&Frame{V: WireVersion, Type: FrameSnapshot, Site: "east", Epoch: 2, Seq: 2,
		Snapshot: &Snapshot{Services: []SnapshotService{
			{Key: keyA, Provenance: core.PassiveOnly, PassiveAt: base, Flows: 7, Clients: 3},
		}, Packets: 120}}); err != nil {
		t.Fatal(err)
	}
	ev := core.Event{Kind: core.EventServiceDiscovered, Time: base.Add(time.Hour), Key: keyB, Provenance: core.PassiveOnly}
	if err := agg.Apply(&Frame{V: WireVersion, Type: FrameEvent, Site: "east", Epoch: 2, Seq: 3, Event: &ev}); err != nil {
		t.Fatal(err)
	}
	if n := agg.NumServices(); n != 2 {
		t.Fatalf("restarted feed was discarded as duplicates: %d services, want 2", n)
	}
	st := agg.Stats()[0]
	if st.DupEvents != 0 {
		t.Errorf("new-epoch event counted as duplicate: %+v", st)
	}
	for _, g := range agg.Services() {
		if g.Key == keyA && g.Sites[0].Flows != 7 {
			t.Errorf("keyA flows=%d, want the new incarnation's 7 max-merged", g.Sites[0].Flows)
		}
	}
}

// TestUpgradeFirstAnnouncesGlobally pins the lost-discovery edge: when a
// key's first frame at the aggregator is a ProvenanceUpgraded event (its
// ServiceDiscovered was dropped by the bounded feed), the global stream
// must still announce the service — once.
func TestUpgradeFirstAnnouncesGlobally(t *testing.T) {
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	key := testKey(0x807D0101, 6, 80)
	agg := NewAggregator()
	sub := agg.Subscribe(16)
	up := core.Event{Kind: core.EventProvenanceUpgraded, Time: base, Key: key, Provenance: core.PassiveFirst}
	if err := agg.Apply(&Frame{V: WireVersion, Type: FrameEvent, Site: "east", Seq: 2, Event: &up}); err != nil {
		t.Fatal(err)
	}
	// A later snapshot re-reports the key; it must not announce again.
	if err := agg.Apply(&Frame{V: WireVersion, Type: FrameSnapshot, Site: "east", Seq: 3,
		Snapshot: &Snapshot{Services: []SnapshotService{
			{Key: key, Provenance: core.PassiveFirst, PassiveAt: base.Add(-time.Minute), ActiveAt: base},
		}}}); err != nil {
		t.Fatal(err)
	}
	agg.Close()
	var announced int
	for ge := range sub.Events() {
		if ge.Event.Kind == core.EventServiceDiscovered && ge.Event.Key == key {
			announced++
		}
	}
	if announced != 1 {
		t.Fatalf("upgrade-first service announced %d times globally, want exactly 1", announced)
	}
}

// TestWireFeedEndToEnd runs the full wire path — Publisher.ServeConn over
// an in-memory connection into FeedClient.RunConn (the client-speaks-
// first resume protocol) — and checks it lands the same global state as
// an in-process attach.
func TestWireFeedEndToEnd(t *testing.T) {
	wireAgg := NewAggregator()
	site := newTestSite(3, 800)

	c1, c2 := net.Pipe()
	serveDone := make(chan error, 1)
	go func() {
		err := site.pub.ServeConn(context.Background(), c1)
		c1.Close()
		serveDone <- err
	}()
	fc := NewFeedClient(wireAgg, "pipe", FeedOptions{})
	readDone := make(chan error, 1)
	go func() { readDone <- fc.RunConn(context.Background(), c2) }()

	site.produce()
	site.eng.Close()
	if err := <-readDone; err != nil {
		t.Fatalf("ReadFeed: %v", err)
	}
	<-serveDone

	refAgg := NewAggregator()
	<-refAgg.Attach(site.pub) // post-close attach: final snapshot
	if got, want := wireAgg.Dump(), refAgg.Dump(); !bytes.Equal(got, want) {
		t.Errorf("wire feed diverges from in-process attach:\n%s", firstDiff(got, want))
	}
	if site.pub.Dropped() != 0 {
		t.Logf("publisher pump dropped %d events (healed by snapshot)", site.pub.Dropped())
	}
}

// BenchmarkAggregatorIngest measures aggregator merge throughput —
// events/s over pre-decoded frames — at 1, 2 and 4 concurrently applying
// site feeds, the acceptance metric of the federation subsystem.
// benchFeeds builds nSites deterministic event streams of eventsPerSite
// frames each: ~1/4 upgrades, 3/4 discoveries, across 10k keys/site.
func benchFeeds(nSites, eventsPerSite int) [][]Frame {
	base := time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	feeds := make([][]Frame, nSites)
	for s := range feeds {
		frames := make([]Frame, 0, eventsPerSite)
		for i := 0; i < eventsPerSite; i++ {
			key := core.ServiceKey{
				Addr:  testCampus.Base() + netaddr.V4(i%10000),
				Proto: packet.ProtoTCP,
				Port:  uint16(22 + i%5),
			}
			ev := core.Event{Time: base.Add(time.Duration(i) * time.Millisecond), Key: key}
			if i%4 == 3 {
				ev.Kind, ev.Provenance = core.EventProvenanceUpgraded, core.PassiveFirst
			} else {
				ev.Kind, ev.Provenance = core.EventServiceDiscovered, core.PassiveOnly
			}
			frames = append(frames, Frame{
				V: WireVersion, Type: FrameEvent,
				Site: SiteID(fmt.Sprintf("site-%d", s)), Seq: uint64(i + 1), Event: &ev,
			})
		}
		feeds[s] = frames
	}
	return feeds
}

// ingestLadder is the fleet-size ladder both ingest benchmarks climb:
// events per site shrink as the fleet grows so each rung stays a
// comparable (and CI-affordable) amount of total work.
var ingestLadder = []struct{ sites, events int }{
	{1, 50000}, {2, 50000}, {4, 50000},
	{16, 8000}, {64, 2000}, {256, 500},
}

func BenchmarkAggregatorIngest(b *testing.B) {
	for _, rung := range ingestLadder {
		b.Run(fmt.Sprintf("sites=%d", rung.sites), func(b *testing.B) {
			feeds := benchFeeds(rung.sites, rung.events)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg := NewAggregator()
				var wg sync.WaitGroup
				for s := range feeds {
					wg.Add(1)
					go func(frames []Frame) {
						defer wg.Done()
						for j := range frames {
							_ = agg.Apply(&frames[j])
						}
					}(feeds[s])
				}
				wg.Wait()
			}
			b.StopTimer()
			total := float64(rung.events*rung.sites) * float64(b.N)
			b.ReportMetric(total/b.Elapsed().Seconds(), "events/s")
		})
	}
}
