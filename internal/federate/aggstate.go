package federate

// Aggregator state export/import: the federated daemon's checkpoint
// payload. Unlike the engine's delta chains, aggregator state is small —
// one cell per (service, site), not per flow — so it is exported whole.
// Every list is sorted, making the export deterministic for a given
// state (the same property Dump has).

import (
	"fmt"
	"sort"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
)

// AggSvcRecord is one site's merged knowledge of one service, in wire
// form: the raw semilattice cell, not the derived provenance (which is
// recomputed on demand).
type AggSvcRecord struct {
	Site       SiteID    `json:"site"`
	HasPassive bool      `json:"has_passive,omitempty"`
	HasActive  bool      `json:"has_active,omitempty"`
	PassiveAt  time.Time `json:"passive_at,omitzero"`
	ActiveAt   time.Time `json:"active_at,omitzero"`
	// PassiveSeenAt / ActiveSeenAt are the newest accepted observations
	// per side (the late-retraction survival cursor).
	PassiveSeenAt time.Time       `json:"passive_seen_at,omitzero"`
	ActiveSeenAt  time.Time       `json:"active_seen_at,omitzero"`
	Upgraded      bool            `json:"upgraded,omitempty"`
	UpgProv       core.Provenance `json:"upg_prov,omitzero"`
	Flows         int             `json:"flows,omitempty"`
	Clients       int             `json:"clients,omitempty"`
	FirstAt       time.Time       `json:"first_at,omitzero"`
	// RetractedPassiveAt / RetractedActiveAt carry the cell's retraction
	// deadlines; a cell with no live evidence persists as a tombstone.
	RetractedPassiveAt time.Time `json:"retracted_passive_at,omitzero"`
	RetractedActiveAt  time.Time `json:"retracted_active_at,omitzero"`
}

// AggService is one global service with every site's cell.
type AggService struct {
	Key   core.ServiceKey `json:"key"`
	Sites []AggSvcRecord  `json:"sites"`
}

// AggScannerRecord is one site's peak observation of one scanner.
type AggScannerRecord struct {
	Site    SiteID    `json:"site"`
	Window  time.Time `json:"window"`
	Dsts    int       `json:"dsts"`
	RstDsts int       `json:"rst_dsts"`
}

// AggScanner is one global scanner with every site's observation.
type AggScanner struct {
	Source netaddr.V4         `json:"source"`
	Sites  []AggScannerRecord `json:"sites"`
}

// AggSiteState is one feed's bookkeeping: the dedup cursors that make a
// restored aggregator skip re-sent frames instead of double-counting
// them, plus the sweep ledger and feed statistics.
type AggSiteState struct {
	Site        SiteID          `json:"site"`
	Epoch       uint64          `json:"epoch,omitempty"`
	LastSeq     uint64          `json:"last_seq,omitempty"`
	SnapGen     uint64          `json:"snap_gen,omitempty"`
	SnapApplied bool            `json:"snap_applied,omitempty"`
	Events      uint64          `json:"events,omitempty"`
	Dups        uint64          `json:"dups,omitempty"`
	Packets     int             `json:"packets,omitempty"`
	Scans       []core.ScanMeta `json:"scans,omitempty"`
}

// AggregatorState is the aggregator's complete state in wire form.
type AggregatorState struct {
	Sites    []AggSiteState `json:"sites,omitempty"`
	Services []AggService   `json:"services,omitempty"`
	Scanners []AggScanner   `json:"scanners,omitempty"`
}

// ExportState copies the aggregator's complete state, every list sorted.
// Safe for concurrent callers; the copy is a consistent cut (taken under
// the merge lock).
func (a *Aggregator) ExportState() *AggregatorState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &AggregatorState{}
	st.Sites = make([]AggSiteState, 0, len(a.sites))
	for id, s := range a.sites {
		as := AggSiteState{
			Site: id, Epoch: s.epoch, LastSeq: s.lastSeq,
			SnapGen: s.snapGen, SnapApplied: s.snapApplied,
			Events: s.events, Dups: s.dups, Packets: s.packets,
			Scans: make([]core.ScanMeta, 0, len(s.scans)),
		}
		for _, meta := range s.scans {
			as.Scans = append(as.Scans, meta)
		}
		sort.Slice(as.Scans, func(i, j int) bool { return as.Scans[i].ID < as.Scans[j].ID })
		st.Sites = append(st.Sites, as)
	}
	sort.Slice(st.Sites, func(i, j int) bool { return st.Sites[i].Site < st.Sites[j].Site })
	st.Services = make([]AggService, 0, len(a.services))
	for key, sites := range a.services {
		gs := AggService{Key: key, Sites: make([]AggSvcRecord, 0, len(sites))}
		for id, s := range sites {
			gs.Sites = append(gs.Sites, AggSvcRecord{
				Site: id, HasPassive: s.hasPassive, HasActive: s.hasActive,
				PassiveAt: s.passiveAt, ActiveAt: s.activeAt,
				PassiveSeenAt: s.passiveSeenAt, ActiveSeenAt: s.activeSeenAt,
				Upgraded: s.upgraded, UpgProv: s.upgProv,
				Flows: s.flows, Clients: s.clients, FirstAt: s.firstAt,
				RetractedPassiveAt: s.retractedPassiveAt,
				RetractedActiveAt:  s.retractedActiveAt,
			})
		}
		sort.Slice(gs.Sites, func(i, j int) bool { return gs.Sites[i].Site < gs.Sites[j].Site })
		st.Services = append(st.Services, gs)
	}
	sort.Slice(st.Services, func(i, j int) bool { return st.Services[i].Key.Before(st.Services[j].Key) })
	st.Scanners = make([]AggScanner, 0, len(a.scanners))
	for src, sites := range a.scanners {
		gs := AggScanner{Source: src, Sites: make([]AggScannerRecord, 0, len(sites))}
		for id, s := range sites {
			gs.Sites = append(gs.Sites, AggScannerRecord{
				Site: id, Window: s.window, Dsts: s.dsts, RstDsts: s.rstDsts,
			})
		}
		sort.Slice(gs.Sites, func(i, j int) bool { return gs.Sites[i].Site < gs.Sites[j].Site })
		st.Scanners = append(st.Scanners, gs)
	}
	sort.Slice(st.Scanners, func(i, j int) bool { return st.Scanners[i].Source < st.Scanners[j].Source })
	return st
}

// ImportState loads an exported state into a fresh aggregator, before
// any feed attaches: restored services are already "known globally", so
// reconnecting feeds re-reporting them do not re-announce on the global
// event stream, and the restored dedup cursors skip re-sent frames.
func (a *Aggregator) ImportState(st *AggregatorState) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.sites) != 0 || len(a.services) != 0 || len(a.scanners) != 0 {
		return fmt.Errorf("federate: state import requires a fresh aggregator")
	}
	for _, as := range st.Sites {
		s := &siteState{
			epoch: as.Epoch, lastSeq: as.LastSeq,
			snapGen: as.SnapGen, snapApplied: as.SnapApplied,
			events: as.Events, dups: as.Dups, packets: as.Packets,
			scans: make(map[int]core.ScanMeta, len(as.Scans)),
		}
		for _, meta := range as.Scans {
			s.scans[meta.ID] = meta
		}
		a.sites[as.Site] = s
	}
	for _, gs := range st.Services {
		perSite := make(map[SiteID]*svcState, len(gs.Sites))
		for _, r := range gs.Sites {
			perSite[r.Site] = &svcState{
				hasPassive: r.HasPassive, hasActive: r.HasActive,
				passiveAt: r.PassiveAt, activeAt: r.ActiveAt,
				passiveSeenAt: r.PassiveSeenAt, activeSeenAt: r.ActiveSeenAt,
				upgraded: r.Upgraded, upgProv: r.UpgProv,
				flows: r.Flows, clients: r.Clients, firstAt: r.FirstAt,
				retractedPassiveAt: r.RetractedPassiveAt,
				retractedActiveAt:  r.RetractedActiveAt,
			}
		}
		a.services[gs.Key] = perSite
	}
	for _, gs := range st.Scanners {
		perSite := make(map[SiteID]*scannerState, len(gs.Sites))
		for _, r := range gs.Sites {
			perSite[r.Site] = &scannerState{window: r.Window, dsts: r.Dsts, rstDsts: r.RstDsts}
		}
		a.scanners[gs.Source] = perSite
	}
	// The imported service table bypassed the dirty tracking; the next
	// query rebuilds the index whole.
	a.qfull, a.dirty = true, nil
	return nil
}
