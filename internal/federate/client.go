package federate

import (
	"context"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// FeedOptions tunes one feed client. The zero value picks the defaults
// noted on each field.
type FeedOptions struct {
	// AuthToken is sent in the resume hello; publishers configured with
	// a token close the connection when it does not match.
	AuthToken string
	// DialTimeout bounds each dial attempt (and the hello write). Zero
	// means 10s.
	DialTimeout time.Duration
	// IdleTimeout bounds the silence between frames on a deadline-capable
	// connection. The publisher's heartbeats (default 10s) keep a healthy
	// but quiet feed inside it; a partitioned one errors out and redials
	// instead of hanging forever. Zero means 45s; negative disables.
	IdleTimeout time.Duration
	// Backoff shapes the reconnect schedule (see BackoffConfig).
	Backoff BackoffConfig
	// MaxFramesPerSec and MaxBytesPerSec are this feed's ingest rate
	// caps: a deficit stalls the reader, which backpressures the
	// publisher's bounded per-reader queue. Zero disables a cap.
	MaxFramesPerSec float64
	MaxBytesPerSec  float64
	// Dial overrides the transport (tests and in-process wiring); nil
	// dials TCP to the client's address.
	Dial func(ctx context.Context) (net.Conn, error)
	// OnConnect and OnDisconnect observe the connection lifecycle
	// (logging, flight-recorder traces). Called from the Run goroutine.
	OnConnect    func()
	OnDisconnect func(err error)
}

func (o FeedOptions) withDefaults() FeedOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 45 * time.Second
	}
	return o
}

// FeedStats counts one feed client's resilience events since start.
type FeedStats struct {
	// Connects counts completed dials, DialErrors failed ones,
	// Disconnects ended connections (each triggers a backoff + redial).
	Connects, DialErrors, Disconnects uint64
	// ResumeHits counts connections the publisher answered with a delta
	// replay; SnapshotFallbacks counts full snapshot bootstraps.
	ResumeHits, SnapshotFallbacks uint64
	// ThrottleStalls counts frames the rate caps made wait.
	ThrottleStalls uint64
	// FramesApplied counts frames folded into the aggregator;
	// Heartbeats the keepalive frames among them.
	FramesApplied, Heartbeats uint64
}

// FeedClient keeps one site feed alive against a hostile network: dial
// with a timeout, present the aggregator's dedup cursor as a resume
// hello (delta resync), apply frames under per-feed rate caps and an
// idle deadline the publisher's heartbeats must keep beating, and on any
// failure back off exponentially with full jitter before redialing.
// It is the production reconnect path cmd/federated runs and the chaos
// tests drive.
type FeedClient struct {
	agg  *Aggregator
	addr string
	opt  FeedOptions

	// site is the identity learned from the first hello; until then no
	// resume cursor can be presented (there is nothing to resume).
	site      atomic.Value // SiteID
	connected atomic.Bool
	// nextCeiling is the un-jittered ceiling of the next reconnect
	// delay — the backoff-state gauge.
	nextCeiling atomic.Int64

	connects, dialErrors, disconnects,
	resumeHits, snapshotFallbacks,
	throttleStalls, framesApplied, heartbeats atomic.Uint64
}

// NewFeedClient builds a client for one feed address. Run starts it.
func NewFeedClient(agg *Aggregator, addr string, opt FeedOptions) *FeedClient {
	c := &FeedClient{agg: agg, addr: addr, opt: opt.withDefaults()}
	c.nextCeiling.Store(int64(c.opt.Backoff.withDefaults().Base))
	return c
}

// Addr returns the feed address the client dials.
func (c *FeedClient) Addr() string { return c.addr }

// Connected reports whether a connection is currently established.
func (c *FeedClient) Connected() bool { return c.connected.Load() }

// Site returns the feed's site identity, empty until the first hello.
func (c *FeedClient) Site() SiteID {
	if s, ok := c.site.Load().(SiteID); ok {
		return s
	}
	return ""
}

// Stats reports the client's resilience counters.
func (c *FeedClient) Stats() FeedStats {
	return FeedStats{
		Connects:          c.connects.Load(),
		DialErrors:        c.dialErrors.Load(),
		Disconnects:       c.disconnects.Load(),
		ResumeHits:        c.resumeHits.Load(),
		SnapshotFallbacks: c.snapshotFallbacks.Load(),
		ThrottleStalls:    c.throttleStalls.Load(),
		FramesApplied:     c.framesApplied.Load(),
		Heartbeats:        c.heartbeats.Load(),
	}
}

// NextBackoff reports the un-jittered ceiling of the next reconnect
// delay: Base while the feed is healthy, climbing toward Cap while it
// fails — the backoff-state gauge for /metrics and /healthz.
func (c *FeedClient) NextBackoff() time.Duration {
	return time.Duration(c.nextCeiling.Load())
}

func (c *FeedClient) dial(ctx context.Context) (net.Conn, error) {
	if c.opt.Dial != nil {
		return c.opt.Dial(ctx)
	}
	d := net.Dialer{Timeout: c.opt.DialTimeout}
	return d.DialContext(ctx, "tcp", c.addr)
}

// Run keeps the feed alive until the context ends: dial, consume until
// the connection breaks, back off, redial. A connection that applied at
// least one frame (or stayed up ResetAfter) resets the backoff schedule.
func (c *FeedClient) Run(ctx context.Context) error {
	bo := newBackoff(c.opt.Backoff)
	for ctx.Err() == nil {
		conn, err := c.dial(ctx)
		if err != nil {
			c.dialErrors.Add(1)
		} else {
			c.connects.Add(1)
			c.connected.Store(true)
			if c.opt.OnConnect != nil {
				c.opt.OnConnect()
			}
			start := time.Now()
			before := c.framesApplied.Load()
			err = c.RunConn(ctx, conn)
			conn.Close()
			c.connected.Store(false)
			c.disconnects.Add(1)
			if c.opt.OnDisconnect != nil {
				c.opt.OnDisconnect(err)
			}
			bo.observe(time.Since(start), c.framesApplied.Load() > before)
		}
		delay := bo.next()
		c.nextCeiling.Store(int64(bo.ceiling()))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
	return ctx.Err()
}

// countingReader counts the bytes pulled off the connection, feeding the
// byte-rate bucket.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// RunConn consumes one established connection: send the resume hello
// (the aggregator's cursor for this site, if any), then decode and apply
// frames until the stream ends, the idle deadline fires, or the context
// is cancelled. A clean EOF returns nil. Exported so in-process wiring
// (net.Pipe to a local publisher) runs the same protocol path as TCP.
func (c *FeedClient) RunConn(ctx context.Context, conn net.Conn) error {
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					conn.Close()
				case <-stop:
				}
			}()
		}
	}
	hello := Frame{V: WireVersion, Type: FrameResume, Token: c.opt.AuthToken, Resume: &ResumeCursor{}}
	if site := c.Site(); site != "" {
		if epoch, seq, ok := c.agg.SiteCursor(site); ok {
			hello.Resume = &ResumeCursor{Epoch: epoch, Seq: seq}
		}
	}
	_ = conn.SetWriteDeadline(time.Now().Add(c.opt.DialTimeout))
	if err := NewEncoder(conn).Encode(&hello); err != nil {
		return err
	}
	_ = conn.SetWriteDeadline(time.Time{})

	var throttle *feedThrottle
	if c.opt.MaxFramesPerSec > 0 || c.opt.MaxBytesPerSec > 0 {
		throttle = newFeedThrottle(c.opt.MaxFramesPerSec, c.opt.MaxBytesPerSec)
	}
	cr := &countingReader{r: conn}
	dec := NewDecoder(cr)
	lastBytes := int64(0)
	for {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if c.opt.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(c.opt.IdleTimeout))
		}
		var t0 time.Time
		met := c.agg.met
		if met != nil {
			t0 = time.Now()
		}
		f, err := dec.Decode()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if met != nil {
			met.Decode.Observe(time.Since(t0))
		}
		if throttle != nil {
			wire := cr.n - lastBytes
			lastBytes = cr.n
			stalled, err := throttle.admit(ctx, int(wire))
			if stalled {
				c.throttleStalls.Add(1)
			}
			if err != nil {
				return err
			}
		}
		switch f.Type {
		case FrameHello:
			c.site.Store(f.Site)
			if f.Resumed {
				c.resumeHits.Add(1)
			} else {
				c.snapshotFallbacks.Add(1)
			}
		case FrameHeartbeat:
			c.heartbeats.Add(1)
		}
		var t1 time.Time
		if met != nil {
			t1 = time.Now()
		}
		err = c.agg.Apply(f)
		if met != nil {
			met.Apply.Observe(time.Since(t1))
		}
		if err != nil {
			return err
		}
		c.framesApplied.Add(1)
	}
}
