package federate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/obs"
	"servdisc/internal/pipeline"
)

// PublisherMetrics is the publisher's optional telemetry bundle.
type PublisherMetrics struct {
	// Encode observes the wire-encode (+ write) time of every frame
	// served to any reader.
	Encode *obs.Histogram
}

// Engine is the slice of a discovery engine the publisher needs: a
// non-terminal frozen snapshot and a bounded subscription to the typed
// event stream. core.ShardedPassive, core.Hybrid and the servdisc facade
// Pipeline all satisfy it.
type Engine interface {
	Snapshot() *core.Inventory
	Subscribe(buf int) *core.EventSub
}

// pumpBuffer sizes the publisher's own engine subscription. The pump does
// nothing but stamp a sequence number and republish, so it lags only under
// extreme bursts; a dropped event here is invisible to current readers but
// heals on their next catch-up snapshot.
const pumpBuffer = 1 << 15

// feedBuffer sizes each reader's frame subscription: deep enough to absorb
// a slow network writer for several seconds at realistic discovery rates.
const feedBuffer = 1 << 13

// writeDeadliner is the slice of net.Conn ServeConn uses to bound writes.
type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// readDeadliner is the slice of net.Conn ServeConn uses to bound the wait
// for the client's resume hello.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// PublisherOptions tunes the serving side of a publisher. The zero value
// picks the defaults noted on each field.
type PublisherOptions struct {
	// ReplayRing is how many sequenced frames the delta-resync ring
	// retains (per epoch). Zero means 16384; negative disables resume
	// entirely (every reconnect bootstraps from a snapshot).
	ReplayRing int
	// Heartbeat is the keepalive interval on a quiet feed. Zero means
	// 10s; negative disables heartbeats.
	Heartbeat time.Duration
	// WriteTimeout bounds each frame write on a deadline-capable
	// connection; a peer that stops reading is evicted within this
	// window. Zero means 1m.
	WriteTimeout time.Duration
	// HelloTimeout bounds the wait for a connecting reader's resume
	// hello. Zero means 10s.
	HelloTimeout time.Duration
	// AuthToken, when non-empty, must match the Token field of every
	// resume hello; a wrong or missing token is a clean close before any
	// frame is served. Write-only readers (io.Writer without io.Reader)
	// cannot authenticate and are refused outright.
	AuthToken string
}

func (o PublisherOptions) withDefaults() PublisherOptions {
	if o.ReplayRing == 0 {
		o.ReplayRing = 1 << 14
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = time.Minute
	}
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = 10 * time.Second
	}
	return o
}

// PublisherStats counts the serving side's resilience events, for the
// daemon metrics surface. All fields are totals since publisher start.
type PublisherStats struct {
	// ResumeHits counts connections served a delta from the replay ring;
	// SnapshotFallbacks counts connections that needed the full snapshot
	// bootstrap (first connect, stale cursor, epoch change, ring gap).
	ResumeHits        uint64
	SnapshotFallbacks uint64
	// AuthFailures counts connections closed over a wrong or missing
	// token; HellosRejected counts malformed or timed-out client hellos.
	AuthFailures   uint64
	HellosRejected uint64
	// Evictions counts connections dropped on a frame-write deadline —
	// readers too slow to keep up with the feed.
	Evictions uint64
	// HeartbeatsSent counts keepalive frames written across all readers.
	HeartbeatsSent uint64
}

// Publisher tags one engine's discovery stream with a SiteID and serves it
// to any number of readers, each bootstrapped with a frozen snapshot — or,
// when the reader presents a resume cursor the replay ring still covers,
// with just the frames past that cursor (delta resync).
//
// The catch-up contract: a reader always receives one FrameHello, then
// either one FrameSnapshot whose Seq is the generation g it covers
// followed by live event frames (every event with sequence <= g is
// already reflected in the snapshot), or — when its resume cursor was
// honored (hello.Resumed) — the replayed frames past its cursor followed
// by live frames. Either way a reconnecting aggregator that remembers its
// high-water sequence skips duplicates by generation and never
// double-counts; replay/live overlap is absorbed the same way.
//
// Delivery to readers is bounded and lossy (pipeline.Hub semantics): a
// reader that cannot keep up loses frames rather than stalling the others,
// and recovers the lost state on its next connection.
type Publisher struct {
	site SiteID
	// epoch identifies this publisher incarnation; sequence numbers are
	// only meaningful within it (see Frame.Epoch).
	epoch uint64
	eng   Engine
	hub   *pipeline.Hub[Frame]
	sub   *core.EventSub
	seq   atomic.Uint64
	done  chan struct{}
	ring  *replayRing // nil when resume is disabled
	opt   PublisherOptions

	mu     sync.Mutex
	closed bool

	resumeHits, snapshotFallbacks, authFailures,
	hellosRejected, evictions, heartbeats atomic.Uint64

	// met is the optional telemetry bundle (see SetMetrics).
	met *PublisherMetrics
}

// SetMetrics attaches the telemetry bundle; call before Serve/ServeConn.
func (p *Publisher) SetMetrics(m *PublisherMetrics) { p.met = m }

// Stats reports the serving side's resilience counters.
func (p *Publisher) Stats() PublisherStats {
	return PublisherStats{
		ResumeHits:        p.resumeHits.Load(),
		SnapshotFallbacks: p.snapshotFallbacks.Load(),
		AuthFailures:      p.authFailures.Load(),
		HellosRejected:    p.hellosRejected.Load(),
		Evictions:         p.evictions.Load(),
		HeartbeatsSent:    p.heartbeats.Load(),
	}
}

// NewPublisher starts publishing the engine's stream under the given site
// identity. The publisher subscribes to the engine immediately; close the
// engine (or Close the publisher) to end the feed.
func NewPublisher(site SiteID, eng Engine) *Publisher {
	return NewPublisherResumed(site, eng, PublisherState{})
}

// PublisherState is the publisher's stream cursor — which (epoch, seq)
// position its feed has reached — in checkpointable form.
type PublisherState struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// NewPublisherResumed starts a publisher that continues a checkpointed
// stream with default options; see NewPublisherOpts.
func NewPublisherResumed(site SiteID, eng Engine, st PublisherState) *Publisher {
	return NewPublisherOpts(site, eng, st, PublisherOptions{})
}

// NewPublisherOpts starts a publisher that continues a checkpointed
// stream: it keeps the stored epoch and numbers new events after the
// stored cursor, so a restored site resumes its feed instead of opening a
// new epoch and reshipping history. Downstream aggregators treat the
// restored engine's re-announcements — events the pre-checkpoint
// incarnation published after the checkpoint was cut — as duplicates by
// sequence where ingest order matches, and absorb any residue through
// idempotent merges and the next snapshot. A zero state is a fresh start
// (a new wall-clock epoch), which is what NewPublisher passes.
func NewPublisherOpts(site SiteID, eng Engine, st PublisherState, opt PublisherOptions) *Publisher {
	epoch := st.Epoch
	if epoch == 0 {
		epoch = uint64(time.Now().UnixNano())
	}
	opt = opt.withDefaults()
	p := &Publisher{
		site:  site,
		epoch: epoch,
		eng:   eng,
		hub:   pipeline.NewHub[Frame](),
		sub:   eng.Subscribe(pumpBuffer),
		done:  make(chan struct{}),
		opt:   opt,
	}
	if opt.ReplayRing > 0 {
		p.ring = newReplayRing(opt.ReplayRing, st.Seq)
	}
	p.seq.Store(st.Seq)
	go p.pump()
	return p
}

// State reports the stream cursor at this instant, for checkpointing.
// Capture it at the same consistency point as the engine export (the
// checkpoint Writer snapshots it right after the engine freeze).
func (p *Publisher) State() PublisherState {
	return PublisherState{Epoch: p.epoch, Seq: p.seq.Load()}
}

// Site returns the publisher's site identity.
func (p *Publisher) Site() SiteID { return p.site }

// pump sequences the engine's events into site-tagged frames. A single
// goroutine assigns sequence numbers, so frame order on every reader's
// subscription is the site's canonical stream order. Each frame enters
// the replay ring before the hub, so the ring always covers anything a
// live subscriber could have missed.
func (p *Publisher) pump() {
	defer close(p.done)
	dropped := p.sub.Dropped()
	for ev := range p.sub.Events() {
		ev := ev
		if p.ring != nil {
			if d := p.sub.Dropped(); d != dropped {
				// Events vanished before ever being sequenced: their
				// state mutations live only in future snapshots, so no
				// resume cursor is trustworthy for the rest of the epoch.
				p.ring.markGap()
				dropped = d
			}
		}
		n := p.seq.Add(1)
		f := Frame{V: WireVersion, Type: FrameEvent, Site: p.site, Epoch: p.epoch, Seq: n, Event: &ev}
		if ev.Kind == core.EventServiceExpired {
			// Expiry leaves the site's inventory as a withdrawal, not a
			// discovery: ship it as a retract frame so the aggregator
			// clears the evidence instead of merging it.
			f.Type, f.Event = FrameRetract, nil
			f.Retract = &Retraction{Key: ev.Key, At: ev.Time, Prov: ev.Provenance}
		}
		if p.ring != nil {
			p.ring.append(f)
		}
		p.hub.Publish(f)
	}
	p.hub.Close()
}

// Dropped returns how many engine events the publisher itself missed (its
// pump subscription overflowed). Lost events are absent from the live feed
// but reappear in every later snapshot.
func (p *Publisher) Dropped() int { return p.sub.Dropped() }

// FrameCounters exposes the fanout's flow counters: In counts frames
// published, Out per-reader deliveries, Dropped per-reader drops.
func (p *Publisher) FrameCounters() *pipeline.StageCounters { return p.hub.Counters() }

// Close stops the pump and ends every reader's feed (after the hello and
// snapshot already queued drain). The engine itself is not touched.
// Idempotent; closing the engine has the same effect.
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.sub.Cancel()
	<-p.done
}

// Catchup opens one reader's view of the feed: the hello and snapshot
// frames to apply first, plus a live subscription to every frame after
// the snapshot's generation. The subscription is attached before the
// snapshot freeze, so no event falls between them. On a closed publisher
// the subscription is already ended — the caller still gets the final
// snapshot, which is how late or reconnecting aggregators resynchronize
// with a finished site.
func (p *Publisher) Catchup(buf int) (bootstrap []Frame, live *pipeline.Sub[Frame]) {
	bootstrap, live, _ = p.catchup(buf, ResumeCursor{})
	return bootstrap, live
}

// catchup builds one reader's bootstrap, honoring a resume cursor when
// the replay ring still covers it: the live subscription is attached
// first, then either the ring's frames past the cursor (resumed == true)
// or the hello + frozen snapshot. In the resume path any frame published
// between the subscription attach and the ring copy appears in both —
// the ring is appended before the hub publish, so nothing falls between
// — and the reader's sequence dedup absorbs the overlap.
func (p *Publisher) catchup(buf int, cur ResumeCursor) (bootstrap []Frame, live *pipeline.Sub[Frame], resumed bool) {
	if buf <= 0 {
		buf = feedBuffer
	}
	live = p.hub.Subscribe(buf)
	if p.ring != nil && cur.Epoch == p.epoch {
		if frames, ok := p.ring.replayFrom(cur.Seq); ok {
			p.resumeHits.Add(1)
			bootstrap = make([]Frame, 0, len(frames)+1)
			bootstrap = append(bootstrap, Frame{
				V: WireVersion, Type: FrameHello, Site: p.site, Epoch: p.epoch, Resumed: true,
			})
			bootstrap = append(bootstrap, frames...)
			return bootstrap, live, true
		}
	}
	p.snapshotFallbacks.Add(1)
	gen := p.seq.Load()
	snap := BuildSnapshot(p.eng.Snapshot())
	bootstrap = []Frame{
		{V: WireVersion, Type: FrameHello, Site: p.site, Epoch: p.epoch},
		{V: WireVersion, Type: FrameSnapshot, Site: p.site, Epoch: p.epoch, Seq: gen, Snapshot: snap},
	}
	return bootstrap, live, false
}

// readHello waits for the client's resume hello on a connecting reader,
// bounded by HelloTimeout, and validates the version, frame type and
// auth token. The returned cursor is zero when the client asked for a
// snapshot explicitly.
func (p *Publisher) readHello(rw io.ReadWriter) (ResumeCursor, error) {
	rd, _ := rw.(readDeadliner)
	if rd != nil {
		_ = rd.SetReadDeadline(time.Now().Add(p.opt.HelloTimeout))
	}
	f, err := NewDecoder(rw).Decode()
	if rd != nil {
		_ = rd.SetReadDeadline(time.Time{})
	}
	if err != nil {
		p.hellosRejected.Add(1)
		return ResumeCursor{}, fmt.Errorf("federate: read client hello: %w", err)
	}
	if f.Type != FrameResume {
		p.hellosRejected.Add(1)
		return ResumeCursor{}, fmt.Errorf("federate: client hello type %q, want %q", f.Type, FrameResume)
	}
	if p.opt.AuthToken != "" && f.Token != p.opt.AuthToken {
		p.authFailures.Add(1)
		return ResumeCursor{}, errors.New("federate: feed auth token mismatch")
	}
	if f.Resume != nil {
		return *f.Resume, nil
	}
	return ResumeCursor{}, nil
}

// ServeConn streams the feed to one reader until the publisher closes, the
// context is cancelled, or the write fails (a vanished reader simply
// drops).
//
// On an io.ReadWriter (any net.Conn) the protocol is client-speaks-first:
// the reader opens with a FrameResume hello carrying its cursor and, if
// the publisher demands one, the auth token; the publisher answers with a
// delta replay when the cursor is still covered by the replay ring and a
// snapshot bootstrap otherwise, then streams live frames interleaved with
// heartbeats. On a write-only stream (an archive file, an HTTP response)
// the hello is skipped and the reader gets the legacy snapshot-then-live
// serving — unless an auth token is configured, which a write-only peer
// cannot present.
//
// On a deadline-capable writer every frame write is bounded by
// WriteTimeout, and context cancellation closes the connection, so a
// stalled peer cannot pin the serving goroutine — a deadline-evicted or
// disconnected reader resynchronizes (by cursor or snapshot) on its next
// connection. Safe for any number of concurrent connections.
func (p *Publisher) ServeConn(ctx context.Context, w io.Writer) error {
	cur := ResumeCursor{}
	if rw, ok := w.(io.ReadWriter); ok {
		// Unblock a hello read stuck on a silent peer when the context
		// ends before the serving loop's own watcher is installed.
		stop := make(chan struct{})
		if ctx != nil && ctx.Done() != nil {
			go func() {
				select {
				case <-ctx.Done():
					if c, ok := w.(io.Closer); ok {
						c.Close()
					}
				case <-stop:
				}
			}()
		}
		var err error
		cur, err = p.readHello(rw)
		close(stop)
		if err != nil {
			return err
		}
	} else if p.opt.AuthToken != "" {
		p.authFailures.Add(1)
		return errors.New("federate: auth required but peer cannot send a hello")
	}
	bootstrap, live, _ := p.catchup(0, cur)
	defer live.Cancel()
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					live.Cancel()
					if c, ok := w.(io.Closer); ok {
						c.Close()
					}
				case <-live.Done():
				case <-stop:
				}
			}()
		}
	}
	wd, _ := w.(writeDeadliner)
	enc := NewEncoder(w)
	write := func(f *Frame) error {
		if wd != nil {
			_ = wd.SetWriteDeadline(time.Now().Add(p.opt.WriteTimeout))
		}
		var err error
		if m := p.met; m != nil {
			t0 := time.Now()
			err = enc.Encode(f)
			m.Encode.Observe(time.Since(t0))
		} else {
			err = enc.Encode(f)
		}
		if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
			p.evictions.Add(1)
		}
		return err
	}
	for i := range bootstrap {
		if err := write(&bootstrap[i]); err != nil {
			return err
		}
	}
	var heartbeat <-chan time.Time
	if p.opt.Heartbeat > 0 {
		t := time.NewTicker(p.opt.Heartbeat)
		defer t.Stop()
		heartbeat = t.C
	}
	for {
		select {
		case f, ok := <-live.Events():
			if !ok {
				if ctx != nil {
					return ctx.Err()
				}
				return nil
			}
			if err := write(&f); err != nil {
				return err
			}
		case <-heartbeat:
			hb := Frame{V: WireVersion, Type: FrameHeartbeat, Site: p.site, Epoch: p.epoch}
			if err := write(&hb); err != nil {
				return err
			}
			p.heartbeats.Add(1)
		}
	}
}

// Serve accepts aggregator connections on the listener, streaming the feed
// to each on its own goroutine, until the listener closes or the context
// is cancelled. It closes the listener on context cancellation.
func (p *Publisher) Serve(ctx context.Context, ln net.Listener) error {
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					ln.Close()
				case <-stop:
				}
			}()
		}
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = p.ServeConn(ctx, conn)
		}()
	}
}
