package federate

import (
	"context"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/obs"
	"servdisc/internal/pipeline"
)

// PublisherMetrics is the publisher's optional telemetry bundle.
type PublisherMetrics struct {
	// Encode observes the wire-encode (+ write) time of every frame
	// served to any reader.
	Encode *obs.Histogram
}

// Engine is the slice of a discovery engine the publisher needs: a
// non-terminal frozen snapshot and a bounded subscription to the typed
// event stream. core.ShardedPassive, core.Hybrid and the servdisc facade
// Pipeline all satisfy it.
type Engine interface {
	Snapshot() *core.Inventory
	Subscribe(buf int) *core.EventSub
}

// pumpBuffer sizes the publisher's own engine subscription. The pump does
// nothing but stamp a sequence number and republish, so it lags only under
// extreme bursts; a dropped event here is invisible to current readers but
// heals on their next catch-up snapshot.
const pumpBuffer = 1 << 15

// feedBuffer sizes each reader's frame subscription: deep enough to absorb
// a slow network writer for several seconds at realistic discovery rates.
const feedBuffer = 1 << 13

// writeTimeout bounds each frame write on a deadline-capable connection.
// A peer that connects and then stops reading errors out within this
// window instead of pinning a serving goroutine until process exit; it
// recovers its missed frames from the snapshot on its next connection.
const writeTimeout = time.Minute

// writeDeadliner is the slice of net.Conn ServeConn uses to bound writes.
type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// Publisher tags one engine's discovery stream with a SiteID and serves it
// to any number of readers, each bootstrapped with a frozen snapshot.
//
// The catch-up contract: a reader always receives one FrameHello, then one
// FrameSnapshot whose Seq is the generation g it covers, then the live
// event frames. Every event with sequence <= g is already reflected in the
// snapshot (the snapshot is taken after those events were applied to the
// engine), so a reconnecting aggregator that remembers its high-water
// sequence can skip duplicates by generation and never double-counts.
// Events published between the snapshot freeze and the subscription are
// delivered as well; they may overlap the snapshot's content, which the
// aggregator's idempotent merges absorb.
//
// Delivery to readers is bounded and lossy (pipeline.Hub semantics): a
// reader that cannot keep up loses frames rather than stalling the others,
// and recovers the lost state on its next connection's snapshot.
type Publisher struct {
	site SiteID
	// epoch identifies this publisher incarnation; sequence numbers are
	// only meaningful within it (see Frame.Epoch).
	epoch uint64
	eng   Engine
	hub   *pipeline.Hub[Frame]
	sub   *core.EventSub
	seq   atomic.Uint64
	done  chan struct{}

	mu     sync.Mutex
	closed bool

	// met is the optional telemetry bundle (see SetMetrics).
	met *PublisherMetrics
}

// SetMetrics attaches the telemetry bundle; call before Serve/ServeConn.
func (p *Publisher) SetMetrics(m *PublisherMetrics) { p.met = m }

// NewPublisher starts publishing the engine's stream under the given site
// identity. The publisher subscribes to the engine immediately; close the
// engine (or Close the publisher) to end the feed.
func NewPublisher(site SiteID, eng Engine) *Publisher {
	return NewPublisherResumed(site, eng, PublisherState{})
}

// PublisherState is the publisher's stream cursor — which (epoch, seq)
// position its feed has reached — in checkpointable form.
type PublisherState struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// NewPublisherResumed starts a publisher that continues a checkpointed
// stream: it keeps the stored epoch and numbers new events after the
// stored cursor, so a restored site resumes its feed instead of opening a
// new epoch and reshipping history. Downstream aggregators treat the
// restored engine's re-announcements — events the pre-checkpoint
// incarnation published after the checkpoint was cut — as duplicates by
// sequence where ingest order matches, and absorb any residue through
// idempotent merges and the next snapshot. A zero state is a fresh start
// (a new wall-clock epoch), which is what NewPublisher passes.
func NewPublisherResumed(site SiteID, eng Engine, st PublisherState) *Publisher {
	epoch := st.Epoch
	if epoch == 0 {
		epoch = uint64(time.Now().UnixNano())
	}
	p := &Publisher{
		site:  site,
		epoch: epoch,
		eng:   eng,
		hub:   pipeline.NewHub[Frame](),
		sub:   eng.Subscribe(pumpBuffer),
		done:  make(chan struct{}),
	}
	p.seq.Store(st.Seq)
	go p.pump()
	return p
}

// State reports the stream cursor at this instant, for checkpointing.
// Capture it at the same consistency point as the engine export (the
// checkpoint Writer snapshots it right after the engine freeze).
func (p *Publisher) State() PublisherState {
	return PublisherState{Epoch: p.epoch, Seq: p.seq.Load()}
}

// Site returns the publisher's site identity.
func (p *Publisher) Site() SiteID { return p.site }

// pump sequences the engine's events into site-tagged frames. A single
// goroutine assigns sequence numbers, so frame order on every reader's
// subscription is the site's canonical stream order.
func (p *Publisher) pump() {
	defer close(p.done)
	for ev := range p.sub.Events() {
		ev := ev
		n := p.seq.Add(1)
		f := Frame{V: WireVersion, Type: FrameEvent, Site: p.site, Epoch: p.epoch, Seq: n, Event: &ev}
		if ev.Kind == core.EventServiceExpired {
			// Expiry leaves the site's inventory as a withdrawal, not a
			// discovery: ship it as a retract frame so the aggregator
			// clears the evidence instead of merging it.
			f.Type, f.Event = FrameRetract, nil
			f.Retract = &Retraction{Key: ev.Key, At: ev.Time, Prov: ev.Provenance}
		}
		p.hub.Publish(f)
	}
	p.hub.Close()
}

// Dropped returns how many engine events the publisher itself missed (its
// pump subscription overflowed). Lost events are absent from the live feed
// but reappear in every later snapshot.
func (p *Publisher) Dropped() int { return p.sub.Dropped() }

// FrameCounters exposes the fanout's flow counters: In counts frames
// published, Out per-reader deliveries, Dropped per-reader drops.
func (p *Publisher) FrameCounters() *pipeline.StageCounters { return p.hub.Counters() }

// Close stops the pump and ends every reader's feed (after the hello and
// snapshot already queued drain). The engine itself is not touched.
// Idempotent; closing the engine has the same effect.
func (p *Publisher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.sub.Cancel()
	<-p.done
}

// Catchup opens one reader's view of the feed: the hello and snapshot
// frames to apply first, plus a live subscription to every frame after
// the snapshot's generation. The subscription is attached before the
// snapshot freeze, so no event falls between them. On a closed publisher
// the subscription is already ended — the caller still gets the final
// snapshot, which is how late or reconnecting aggregators resynchronize
// with a finished site.
func (p *Publisher) Catchup(buf int) (bootstrap []Frame, live *pipeline.Sub[Frame]) {
	if buf <= 0 {
		buf = feedBuffer
	}
	live = p.hub.Subscribe(buf)
	gen := p.seq.Load()
	snap := BuildSnapshot(p.eng.Snapshot())
	bootstrap = []Frame{
		{V: WireVersion, Type: FrameHello, Site: p.site, Epoch: p.epoch},
		{V: WireVersion, Type: FrameSnapshot, Site: p.site, Epoch: p.epoch, Seq: gen, Snapshot: snap},
	}
	return bootstrap, live
}

// ServeConn streams the feed to one reader until the publisher closes, the
// context is cancelled, or the write fails (a vanished reader simply
// drops). On a deadline-capable writer (a net.Conn) every frame write is
// bounded by writeTimeout, and context cancellation closes the
// connection, so a stalled peer cannot pin the serving goroutine — in
// either case it resynchronizes from the snapshot on its next connection.
// Safe for any number of concurrent connections.
func (p *Publisher) ServeConn(ctx context.Context, w io.Writer) error {
	bootstrap, live := p.Catchup(0)
	defer live.Cancel()
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					live.Cancel()
					if c, ok := w.(io.Closer); ok {
						c.Close()
					}
				case <-live.Done():
				case <-stop:
				}
			}()
		}
	}
	wd, _ := w.(writeDeadliner)
	enc := NewEncoder(w)
	write := func(f *Frame) error {
		if wd != nil {
			_ = wd.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		if m := p.met; m != nil {
			t0 := time.Now()
			err := enc.Encode(f)
			m.Encode.Observe(time.Since(t0))
			return err
		}
		return enc.Encode(f)
	}
	for i := range bootstrap {
		if err := write(&bootstrap[i]); err != nil {
			return err
		}
	}
	for f := range live.Events() {
		if err := write(&f); err != nil {
			return err
		}
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// Serve accepts aggregator connections on the listener, streaming the feed
// to each on its own goroutine, until the listener closes or the context
// is cancelled. It closes the listener on context cancellation.
func (p *Publisher) Serve(ctx context.Context, ln net.Listener) error {
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					ln.Close()
				case <-stop:
				}
			}()
		}
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = p.ServeConn(ctx, conn)
		}()
	}
}
