package federate

import "sync"

// replayRing is the publisher's bounded delta-resync buffer: the last N
// sequenced frames of the current epoch, indexed by sequence number. A
// reconnecting reader whose cursor still falls inside the ring gets only
// the frames past it — O(missed churn) bytes — instead of a full snapshot
// bootstrap — O(inventory) bytes.
//
// The ring holds the contiguous sequence range (lo-1, hi]; a cursor c is
// resumable iff lo-1 <= c <= hi (c == lo-1 means "replay everything the
// ring holds", c == hi means "nothing missed"). Anything older fell off
// the ring; anything newer is from the future (a hostile or corrupted
// cursor) — both force the snapshot fallback.
//
// A pump drop poisons the ring for the rest of the epoch (see markGap):
// dropped events never received sequence numbers, so no sequence cursor
// can express "I have the state they mutated". Only a snapshot carries
// that state, so after a gap every resume must fall back.
type replayRing struct {
	mu     sync.Mutex
	buf    []Frame
	lo, hi uint64 // seqs held: [lo, hi]; empty when hi == lo-1
	gapped bool
}

// newReplayRing sizes the ring and anchors it after the publisher's
// current cursor: an empty ring accepts exactly the cursor start (a
// fully-caught-up reader that missed nothing).
func newReplayRing(capacity int, start uint64) *replayRing {
	if capacity < 1 {
		capacity = 1
	}
	return &replayRing{buf: make([]Frame, capacity), lo: start + 1, hi: start}
}

// append records one sequenced frame. The pump calls it in sequence
// order before publishing to the hub, so every frame a live subscriber
// could have missed is already in the ring.
func (r *replayRing) append(f Frame) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[f.Seq%uint64(len(r.buf))] = f
	r.hi = f.Seq
	if span := r.hi - r.lo + 1; span > uint64(len(r.buf)) {
		r.lo = r.hi - uint64(len(r.buf)) + 1
	}
}

// markGap poisons the ring: the pump's engine subscription overflowed, so
// mutations exist that were never sequenced and can only be recovered
// from a snapshot. Every later resume attempt in this epoch falls back.
func (r *replayRing) markGap() {
	r.mu.Lock()
	r.gapped = true
	r.mu.Unlock()
}

// replayFrom returns copies of the frames with sequence > cursor, oldest
// first, and whether the cursor was resumable at all. The copy is taken
// under the lock so concurrent appends cannot tear a frame.
func (r *replayRing) replayFrom(cursor uint64) ([]Frame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gapped || cursor+1 < r.lo || cursor > r.hi {
		return nil, false
	}
	out := make([]Frame, 0, r.hi-cursor)
	for s := cursor + 1; s <= r.hi; s++ {
		out = append(out, r.buf[s%uint64(len(r.buf))])
	}
	return out, true
}
