package federate

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/pipeline"
	"servdisc/internal/query"
)

// AggregatorMetrics is the aggregator's optional telemetry bundle.
type AggregatorMetrics struct {
	// Decode observes per-frame wire decode time on ReadFeed.
	Decode *obs.Histogram
	// Apply observes per-frame merge time (ReadFeed path).
	Apply *obs.Histogram
}

// GlobalEvent is one entry of the aggregator's own event stream: a
// site-attributed discovery the *global* inventory just learned.
// ServiceDiscovered fires exactly once per service globally (the first
// site to report it wins attribution; later sites extend the record, they
// do not re-discover it), ScannerDetected once per scanner source.
// Site-local refinements (provenance upgrades, sweep completions) update
// aggregator state without re-publishing.
type GlobalEvent struct {
	// Site is the vantage point whose feed triggered the event.
	Site SiteID `json:"site"`
	// Event is the discovery, in the engine event schema. For
	// snapshot-bootstrapped discoveries it is synthesized (the timestamp is
	// the service's first evidence at that site).
	Event core.Event `json:"event"`
}

// svcState is everything one site has established about one service,
// folded from any mix of snapshot and event frames. Every field merges as
// a semilattice join — times by minimum, weights by maximum, booleans by
// or — so the state is identical for any arrival order of the same frames.
type svcState struct {
	hasPassive, hasActive bool
	// passiveAt and activeAt are the earliest per-technique observations
	// (zero when unknown, which the join treats as absent, not as minimal).
	passiveAt, activeAt time.Time
	// passiveSeenAt / activeSeenAt are the NEWEST accepted observations
	// (max-merged). They decide whether a late retraction kills the side:
	// the canonical stream order for an expire-and-rebirth is discovery of
	// the new incarnation first, retraction of the old one second (expiry
	// events publish at the snapshot after the rebirth), so a cell whose
	// newest evidence postdates the deadline must survive the retraction
	// even though its min-merged first-at predates it.
	passiveSeenAt, activeSeenAt time.Time
	// upgProv remembers an upgrade event's classification, the fallback
	// when per-technique times never materialize (e.g. the discovery event
	// preceding the upgrade was lost and no snapshot has arrived yet).
	upgProv  core.Provenance
	upgraded bool
	// flows and clients are the passive weights (max over snapshots).
	flows, clients int
	// firstAt is the earliest evidence from any technique.
	firstAt time.Time
	// retractedPassiveAt / retractedActiveAt are the newest retraction
	// deadlines applied per evidence kind (max-merged — the retraction
	// side of the semilattice). Evidence of a kind timestamped before its
	// retraction time is void: it is cleared when the retraction arrives
	// and rejected when it arrives later, so replayed pre-expiry frames
	// cannot resurrect an expired service. A cell with no live evidence
	// is kept as a tombstone until CollapseTombstones.
	retractedPassiveAt, retractedActiveAt time.Time
}

// live reports whether the cell still holds unretracted evidence.
func (s *svcState) live() bool { return s.hasPassive || s.hasActive }

// acceptPassive / acceptActive gate incoming evidence against the
// retraction times: evidence is void iff strictly older than the
// retraction (a service reborn exactly at the deadline counts). A zero
// evidence time is treated as older than any retraction — its age is
// unknown, and accepting it would resurrect expired state.
func (s *svcState) acceptPassive(t time.Time) bool {
	return s.retractedPassiveAt.IsZero() || (!t.IsZero() && !t.Before(s.retractedPassiveAt))
}

func (s *svcState) acceptActive(t time.Time) bool {
	return s.retractedActiveAt.IsZero() || (!t.IsZero() && !t.Before(s.retractedActiveAt))
}

// clearPassive / clearActive drop one evidence kind's fields after a
// retraction. The upgraded fallback asserts both kinds existed, so any
// clear invalidates it; firstAt is recomputed from what remains.
func (s *svcState) clearPassive() {
	s.hasPassive = false
	s.passiveAt, s.passiveSeenAt = time.Time{}, time.Time{}
	s.flows, s.clients = 0, 0
	s.afterClear()
}

func (s *svcState) clearActive() {
	s.hasActive = false
	s.activeAt, s.activeSeenAt = time.Time{}, time.Time{}
	s.afterClear()
}

func (s *svcState) afterClear() {
	s.upgraded, s.upgProv = false, 0
	s.recomputeFirstAt()
}

// recomputeFirstAt rebuilds the technique-agnostic first-at from the
// surviving per-side times, after a retraction invalidated evidence that
// may have fed the old value.
func (s *svcState) recomputeFirstAt() {
	s.firstAt = time.Time{}
	if s.hasPassive {
		s.firstAt = minTime(s.firstAt, s.passiveAt)
	}
	if s.hasActive {
		s.firstAt = minTime(s.firstAt, s.activeAt)
	}
}

// join folds another time observation into a min-merged field.
func minTime(cur, t time.Time) time.Time {
	if t.IsZero() {
		return cur
	}
	if cur.IsZero() || t.Before(cur) {
		return t
	}
	return cur
}

// maxTime folds another time observation into a max-merged field.
func maxTime(cur, t time.Time) time.Time {
	if t.After(cur) {
		return t
	}
	return cur
}

// prov derives the site-local provenance class from the merged state,
// using the same rule as core.NewHybridInventory (ties go passive).
func (s *svcState) prov() core.Provenance {
	switch {
	case s.hasPassive && s.hasActive:
		if !s.passiveAt.IsZero() && !s.activeAt.IsZero() {
			if s.activeAt.Before(s.passiveAt) {
				return core.ActiveFirst
			}
			return core.PassiveFirst
		}
		if s.upgraded {
			return s.upgProv
		}
		return core.PassiveFirst
	case s.hasActive:
		return core.ActiveOnly
	default:
		return core.PassiveOnly
	}
}

// scannerState is one site's knowledge of one scanning source: the
// dominant (lexicographically maximal) observation across crossing events
// and snapshot peak windows, so event-derived and snapshot-derived views
// converge on the peak.
type scannerState struct {
	window  time.Time
	dsts    int
	rstDsts int
}

func (s *scannerState) merge(info core.ScannerInfo) {
	switch {
	case info.UniqueDsts != s.dsts:
		if info.UniqueDsts < s.dsts {
			return
		}
	case info.RstDsts != s.rstDsts:
		if info.RstDsts < s.rstDsts {
			return
		}
	default:
		if !info.Window.After(s.window) {
			return
		}
	}
	s.window, s.dsts, s.rstDsts = info.Window, info.UniqueDsts, info.RstDsts
}

// siteState is the per-feed bookkeeping: the dedup high-water marks and
// the site's sweep ledger.
type siteState struct {
	// epoch is the publisher incarnation the cursors below belong to.
	// Sequence numbers restart from zero when a site's publisher
	// restarts; a frame from a different epoch resets the cursors so the
	// new incarnation's feed is merged, not discarded as duplicates.
	epoch uint64
	// lastSeq is the highest event sequence applied (or covered by an
	// applied snapshot) — the generation-dedup cursor. Events at or below
	// it are duplicates of state the aggregator already holds.
	lastSeq uint64
	// snapGen is the newest applied snapshot's generation; older
	// snapshots are strictly dominated and skipped wholesale.
	snapGen      uint64
	snapApplied  bool
	events, dups uint64
	packets      int
	scans        map[int]core.ScanMeta
	// watermark is the newest observation-clock timestamp this site has
	// reported through any frame — the site's position on the paper's
	// latency-to-discovery axis. The aggregator-wide maximum minus a
	// site's watermark is that site's *discovery staleness*: how far its
	// feed lags the freshest evidence anywhere in the federation.
	watermark time.Time
}

// SiteStats summarizes one site's feed for monitoring endpoints.
type SiteStats struct {
	Site SiteID `json:"site"`
	// LastSeq is the dedup high-water mark; Events and DupEvents count
	// applied and generation-skipped event frames.
	LastSeq   uint64 `json:"last_seq"`
	Events    uint64 `json:"events"`
	DupEvents uint64 `json:"dup_events"`
	// Services is how many services this site contributes to the global
	// inventory; Scans its completed sweeps; Packets its passive volume.
	Services int `json:"services"`
	Scans    int `json:"scans"`
	Packets  int `json:"packets"`
	// Watermark is the newest observation timestamp the site has
	// reported (zero until its first timestamped frame). See
	// Aggregator.Staleness for the derived lag metric.
	Watermark time.Time `json:"watermark,omitzero"`
}

// Aggregator reconciles N site feeds into one global inventory with
// per-site provenance and cross-site dedup: a service reported from two
// campuses is one record listing both sites.
//
// Feeds attach in-process (Attach, a pipeline.Hub subscription on the
// publisher) or over the wire (ReadFeed on a decoded stream); both paths
// funnel into Apply, which is safe for any number of concurrent feeds.
//
// Convergence: every merge Apply performs is an idempotent, commutative,
// monotone join, and frames within one site's feed carry totally-ordered
// sequence numbers, so the final state — and the canonical Dump — is
// byte-identical for any interleaving of the same feeds, including
// disconnect/reconnect cycles that replay a snapshot plus overlapping
// events. Property-tested in aggregator_test.go at 1, 2 and 4 sites
// racing live producers.
type Aggregator struct {
	mu       sync.Mutex
	sites    map[SiteID]*siteState
	services map[core.ServiceKey]map[SiteID]*svcState
	scanners map[netaddr.V4]map[SiteID]*scannerState
	hub      *pipeline.Hub[GlobalEvent]

	// Query-index maintenance (see query.go): gen counts service-table
	// mutations, dirty the keys touched since the last index refresh, and
	// qcat is the lazily-built secondary index over the global inventory.
	// qfull forces the next refresh to rebuild instead of patch.
	gen   uint64
	dirty map[core.ServiceKey]struct{}
	qcat  *query.Catalog
	qfull bool

	// met is the optional telemetry bundle (see SetMetrics).
	met *AggregatorMetrics
}

// SetMetrics attaches the telemetry bundle; call before feeds start.
func (a *Aggregator) SetMetrics(m *AggregatorMetrics) { a.met = m }

// NewAggregator builds an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		sites:    make(map[SiteID]*siteState),
		services: make(map[core.ServiceKey]map[SiteID]*svcState),
		scanners: make(map[netaddr.V4]map[SiteID]*scannerState),
		hub:      pipeline.NewHub[GlobalEvent](),
	}
}

// Subscribe attaches a bounded subscriber to the aggregator's global event
// stream (see GlobalEvent; pipeline.Hub drop semantics apply).
func (a *Aggregator) Subscribe(buf int) *pipeline.Sub[GlobalEvent] { return a.hub.Subscribe(buf) }

// EventCounters exposes the global stream's flow counters.
func (a *Aggregator) EventCounters() *pipeline.StageCounters { return a.hub.Counters() }

// Close ends the global event stream. Applying further frames keeps
// updating state; only the stream stops.
func (a *Aggregator) Close() { a.hub.Close() }

// site returns (creating if needed) the bookkeeping for one feed.
func (a *Aggregator) site(id SiteID) *siteState {
	st := a.sites[id]
	if st == nil {
		st = &siteState{scans: make(map[int]core.ScanMeta)}
		a.sites[id] = st
	}
	return st
}

// svc returns the per-site state cell for one service, reporting whether
// the key is new to the global inventory entirely. Every caller is a
// mutation path, so the key is marked dirty for the query index here
// (over-marking on a merge that turns out to be a no-op is harmless: the
// index patch skips docs that did not change).
func (a *Aggregator) svc(site SiteID, key core.ServiceKey) (s *svcState, newGlobal bool) {
	a.markDirty(key)
	perSite := a.services[key]
	if perSite == nil {
		perSite = make(map[SiteID]*svcState)
		a.services[key] = perSite
		newGlobal = true
	}
	s = perSite[site]
	if s == nil {
		s = &svcState{}
		perSite[site] = s
	}
	return s, newGlobal
}

// Apply folds one frame into the global state. It is the single merge
// point for every feed path and safe for concurrent callers; frames of one
// site must be applied in feed order (each feed goroutine naturally does).
func (a *Aggregator) Apply(f *Frame) error {
	if f.V != WireVersion {
		return fmt.Errorf("federate: frame version %d, want %d", f.V, WireVersion)
	}
	if f.Site == "" {
		return fmt.Errorf("federate: frame without site identity")
	}
	if f.Type == FrameResume {
		// Resume is strictly a client-to-publisher hello; one arriving on
		// a feed is a protocol violation. Rejected before any bookkeeping
		// (even the epoch cursor reset) so a hostile resume frame cannot
		// perturb state at all.
		return fmt.Errorf("federate: resume frame on an inbound feed")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.site(f.Site)
	if f.Epoch != st.epoch {
		// A different publisher incarnation: its sequence space is fresh,
		// so the dedup cursors restart with it. The merged inventory
		// state is untouched — merges are idempotent, so whatever the new
		// incarnation re-reports folds in cleanly.
		st.epoch = f.Epoch
		st.lastSeq, st.snapGen, st.snapApplied = 0, 0, false
	}
	switch f.Type {
	case FrameHello, FrameHeartbeat:
		// Hellos carry identity, heartbeats carry liveness; neither
		// mutates merged state (beyond the epoch bookkeeping above).
		return nil
	case FrameEvent:
		if f.Event == nil {
			return fmt.Errorf("federate: event frame without event")
		}
		if f.Seq <= st.lastSeq {
			st.dups++
			return nil
		}
		st.lastSeq = f.Seq
		st.events++
		st.watermark = maxTime(st.watermark, f.Event.Time)
		a.applyEvent(f.Site, st, f.Event)
		return nil
	case FrameRetract:
		if f.Retract == nil {
			return fmt.Errorf("federate: retract frame without retraction")
		}
		if err := validRetraction(f.Retract); err != nil {
			return err
		}
		if f.Seq <= st.lastSeq {
			st.dups++
			return nil
		}
		st.lastSeq = f.Seq
		st.events++
		st.watermark = maxTime(st.watermark, f.Retract.At)
		a.applyRetract(f.Site, f.Retract)
		return nil
	case FrameSnapshot:
		if f.Snapshot == nil {
			return fmt.Errorf("federate: snapshot frame without snapshot")
		}
		// Validate the whole retraction list before the first merge:
		// applySnapshot must never half-apply a hostile frame.
		for i := range f.Snapshot.Retractions {
			if err := validRetraction(&f.Snapshot.Retractions[i]); err != nil {
				return err
			}
		}
		// An older snapshot is strictly dominated by what is already
		// merged: every time it carries is >= the applied minimum, every
		// weight <= the applied maximum. A snapshot at the SAME generation
		// is re-merged (idempotent, so harmless): the generation only
		// counts sequenced events, and state mutated after a pump drop
		// appears in later snapshots without advancing it — skipping
		// equal generations would lose exactly that recovery path.
		if st.snapApplied && f.Seq < st.snapGen {
			return nil
		}
		st.snapApplied = true
		st.snapGen = f.Seq
		if f.Seq > st.lastSeq {
			// Events at or below the snapshot's generation are reflected
			// in it; advancing the cursor is the reconnect dedup.
			st.lastSeq = f.Seq
		}
		a.applySnapshot(f.Site, st, f.Snapshot)
		return nil
	default:
		return fmt.Errorf("federate: unknown frame type %q", f.Type)
	}
}

// validRetraction rejects structurally invalid retraction payloads before
// any of them mutates state.
func validRetraction(r *Retraction) error {
	if r.At.IsZero() {
		return fmt.Errorf("federate: retraction without deadline")
	}
	if r.Prov != core.PassiveOnly && r.Prov != core.ActiveOnly {
		return fmt.Errorf("federate: retraction with evidence kind %q", r.Prov)
	}
	return nil
}

// applyRetract folds one retraction: the deadline max-merges into the
// cell, and evidence of that kind strictly older than it is cleared.
// Caller holds a.mu; the retraction is already validated.
func (a *Aggregator) applyRetract(site SiteID, r *Retraction) {
	s, _ := a.svc(site, r.Key)
	switch r.Prov {
	case core.ActiveOnly:
		if r.At.After(s.retractedActiveAt) {
			s.retractedActiveAt = r.At
		}
		if s.hasActive {
			seen := maxTime(s.activeSeenAt, s.activeAt)
			switch {
			case !s.acceptActive(seen):
				s.clearActive()
			case s.activeAt.Before(s.retractedActiveAt):
				// The min-merged first-at belongs to the retracted
				// incarnation; advance it to the newest surviving evidence
				// (the site's next snapshot min-merges the reborn
				// incarnation's exact first-at back in).
				s.activeAt = seen
				s.recomputeFirstAt()
			}
		}
	default: // PassiveOnly
		if r.At.After(s.retractedPassiveAt) {
			s.retractedPassiveAt = r.At
		}
		if s.hasPassive {
			seen := maxTime(s.passiveSeenAt, s.passiveAt)
			switch {
			case !s.acceptPassive(seen):
				s.clearPassive()
			case s.passiveAt.Before(s.retractedPassiveAt):
				s.passiveAt = seen
				s.recomputeFirstAt()
			}
		}
	}
}

// applyEvent merges one live event. Caller holds a.mu.
func (a *Aggregator) applyEvent(site SiteID, st *siteState, ev *core.Event) {
	switch ev.Kind {
	case core.EventServiceDiscovered:
		s, newGlobal := a.svc(site, ev.Key)
		switch ev.Provenance {
		case core.ActiveOnly:
			if !s.acceptActive(ev.Time) {
				return
			}
			s.hasActive = true
			s.activeAt = minTime(s.activeAt, ev.Time)
			s.activeSeenAt = maxTime(s.activeSeenAt, ev.Time)
		default: // PassiveOnly
			if !s.acceptPassive(ev.Time) {
				return
			}
			s.hasPassive = true
			s.passiveAt = minTime(s.passiveAt, ev.Time)
			s.passiveSeenAt = maxTime(s.passiveSeenAt, ev.Time)
		}
		s.firstAt = minTime(s.firstAt, ev.Time)
		if newGlobal {
			a.hub.Publish(GlobalEvent{Site: site, Event: *ev})
		}
	case core.EventProvenanceUpgraded:
		s, newGlobal := a.svc(site, ev.Key)
		// The upgrade's timestamp is the later technique's first
		// observation, but WHICH technique that is cannot be decided from
		// aggregator state without depending on what happened to be
		// applied first (which would break Dump convergence across
		// interleavings) — so it only feeds the technique-agnostic
		// firstAt; the per-technique times arrive with the next snapshot.
		// Each side still passes the retraction gate on its own.
		okP, okA := s.acceptPassive(ev.Time), s.acceptActive(ev.Time)
		if !okP && !okA {
			return
		}
		s.hasPassive = s.hasPassive || okP
		s.hasActive = s.hasActive || okA
		if okP && okA {
			s.upgraded, s.upgProv = true, ev.Provenance
		}
		s.firstAt = minTime(s.firstAt, ev.Time)
		if newGlobal {
			// The preceding discovery frame was lost (bounded feed): the
			// upgrade is still this key's first global appearance, so
			// announce it — synthesized, with the best provenance known.
			a.hub.Publish(GlobalEvent{Site: site, Event: core.Event{
				Kind: core.EventServiceDiscovered, Time: ev.Time,
				Key: ev.Key, Provenance: ev.Provenance,
			}})
		}
	case core.EventScannerDetected:
		a.mergeScanner(site, ev.Scanner, ev.Time)
	case core.EventScanCompleted:
		if _, seen := st.scans[ev.Scan.ID]; !seen {
			st.scans[ev.Scan.ID] = ev.Scan
		}
	}
}

// applySnapshot merges a bootstrap snapshot. Caller holds a.mu.
func (a *Aggregator) applySnapshot(site SiteID, st *siteState, snap *Snapshot) {
	if snap.Packets > st.packets {
		st.packets = snap.Packets
	}
	// Retractions first: the snapshot's service list already excludes what
	// they withdrew, and replaying them before merging keeps a reconnect
	// from resurrecting state a lost retract frame had cleared.
	for i := range snap.Retractions {
		st.watermark = maxTime(st.watermark, snap.Retractions[i].At)
		a.applyRetract(site, &snap.Retractions[i])
	}
	for i := range snap.Services {
		svc := &snap.Services[i]
		// Every reported time advances the watermark, accepted or not —
		// it tells us how fresh the site's view is either way.
		st.watermark = maxTime(st.watermark, maxTime(svc.PassiveAt, svc.ActiveAt))
		s, newGlobal := a.svc(site, svc.Key)
		wantPassive := svc.Provenance != core.ActiveOnly
		wantActive := svc.Provenance != core.PassiveOnly
		okP := wantPassive && s.acceptPassive(svc.PassiveAt)
		okA := wantActive && s.acceptActive(svc.ActiveAt)
		if !okP && !okA {
			continue
		}
		if okP {
			s.hasPassive = true
			s.passiveAt = minTime(s.passiveAt, svc.PassiveAt)
			s.passiveSeenAt = maxTime(s.passiveSeenAt, svc.PassiveAt)
			if svc.Flows > s.flows {
				s.flows = svc.Flows
			}
			if svc.Clients > s.clients {
				s.clients = svc.Clients
			}
		}
		if okA {
			s.hasActive = true
			s.activeAt = minTime(s.activeAt, svc.ActiveAt)
			s.activeSeenAt = maxTime(s.activeSeenAt, svc.ActiveAt)
		}
		var first time.Time
		if okP {
			first = minTime(first, svc.PassiveAt)
		}
		if okA {
			first = minTime(first, svc.ActiveAt)
		}
		s.firstAt = minTime(s.firstAt, first)
		if newGlobal {
			a.hub.Publish(GlobalEvent{Site: site, Event: core.Event{
				Kind: core.EventServiceDiscovered, Time: s.firstAt,
				Key: svc.Key, Provenance: svc.Provenance,
			}})
		}
	}
	for _, info := range snap.Scanners {
		a.mergeScanner(site, info, info.Window)
	}
	for _, meta := range snap.Scans {
		if _, seen := st.scans[meta.ID]; !seen {
			st.scans[meta.ID] = meta
		}
	}
}

// mergeScanner folds one scanner observation. Caller holds a.mu.
func (a *Aggregator) mergeScanner(site SiteID, info core.ScannerInfo, at time.Time) {
	perSite := a.scanners[info.Source]
	newGlobal := false
	if perSite == nil {
		perSite = make(map[SiteID]*scannerState)
		a.scanners[info.Source] = perSite
		newGlobal = true
	}
	s := perSite[site]
	if s == nil {
		s = &scannerState{}
		perSite[site] = s
	}
	s.merge(info)
	if newGlobal {
		a.hub.Publish(GlobalEvent{Site: site, Event: core.Event{
			Kind: core.EventScannerDetected, Time: at, Scanner: info,
		}})
	}
}

// Attach subscribes the aggregator to an in-process publisher: the
// catch-up bootstrap plus the live feed, consumed on a dedicated
// goroutine. The returned channel closes when the feed ends (publisher or
// engine closed). Attach again after the feed ends to apply the site's
// final snapshot — the in-process equivalent of an aggregator reconnect.
func (a *Aggregator) Attach(p *Publisher) <-chan struct{} {
	bootstrap, live := p.Catchup(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range bootstrap {
			_ = a.Apply(&bootstrap[i])
		}
		for f := range live.Events() {
			_ = a.Apply(&f)
		}
	}()
	return done
}

// ReadFeed decodes one wire feed until EOF (clean end: nil), a decode
// error, or context cancellation, applying every frame. The caller owns
// the connection and the reconnect policy; the aggregator's sequence
// cursor makes reconnects safe.
func (a *Aggregator) ReadFeed(ctx context.Context, r io.Reader) error {
	dec := NewDecoder(r)
	for {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		var t0 time.Time
		if a.met != nil {
			t0 = time.Now()
		}
		f, err := dec.Decode()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if m := a.met; m != nil {
			now := time.Now()
			// The decode measurement includes blocking on the socket for
			// the next frame on a quiet feed; that is still the honest
			// number for "time from bytes available to frame in hand",
			// and the apply half below is pure merge cost.
			m.Decode.Observe(now.Sub(t0))
			err = a.Apply(f)
			m.Apply.Observe(time.Since(now))
		} else {
			err = a.Apply(f)
		}
		if err != nil {
			return err
		}
	}
}

// SiteCursor reports the dedup cursor held for one site — the (epoch,
// seq) high-water mark a reconnecting feed client presents as its resume
// cursor. ok is false until the site has *applied state* — a snapshot or
// at least one event — not merely a hello: a client whose bootstrap
// snapshot was cut mid-frame has applied nothing, and letting it claim
// resume-from-zero on redial would skip the snapshot (and its
// snapshot-only weights and retractions) forever.
func (a *Aggregator) SiteCursor(site SiteID) (epoch, seq uint64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.sites[site]
	if st == nil || (!st.snapApplied && st.lastSeq == 0) {
		return 0, 0, false
	}
	return st.epoch, st.lastSeq, true
}

// Staleness reports each site's discovery staleness: the aggregator-wide
// maximum watermark minus the site's own — how far that feed's view of
// the world lags the freshest evidence in the federation (the paper's
// latency-to-discovery axis, measured continuously). Sites that have not
// yet reported a timestamped frame are skipped. Sorted by site.
func (a *Aggregator) Staleness() map[SiteID]time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var global time.Time
	for _, st := range a.sites {
		global = maxTime(global, st.watermark)
	}
	out := make(map[SiteID]time.Duration, len(a.sites))
	for id, st := range a.sites {
		if st.watermark.IsZero() {
			continue
		}
		out[id] = global.Sub(st.watermark)
	}
	return out
}

// Sites returns every site that has appeared on any feed, sorted.
func (a *Aggregator) Sites() []SiteID {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SiteID, 0, len(a.sites))
	for id := range a.sites {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// perSiteServiceCounts tallies how many services each site contributes to
// the global inventory — live evidence only, retraction tombstones do not
// count. Caller holds a.mu.
func (a *Aggregator) perSiteServiceCounts() map[SiteID]int {
	perSite := make(map[SiteID]int, len(a.sites))
	for _, sites := range a.services {
		for id, s := range sites {
			if s.live() {
				perSite[id]++
			}
		}
	}
	return perSite
}

// numLiveLocked counts services with live evidence from at least one site.
// Caller holds a.mu.
func (a *Aggregator) numLiveLocked() int {
	n := 0
	for _, sites := range a.services {
		for _, s := range sites {
			if s.live() {
				n++
				break
			}
		}
	}
	return n
}

// CollapseTombstones drops retraction bookkeeping older than the given
// time: cells with no live evidence whose retraction deadlines all fall
// before olderThan are deleted (and emptied services removed), returning
// how many cells were collapsed. After a cell is collapsed, a replayed
// pre-expiry frame would merge as a fresh discovery again — run this only
// with an olderThan horizon no publisher still replays across (the
// federated daemon's -tombstone-gc flag; zero keeps tombstones forever).
func (a *Aggregator) CollapseTombstones(olderThan time.Time) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for key, sites := range a.services {
		for id, s := range sites {
			if s.live() {
				continue
			}
			if s.retractedPassiveAt.Before(olderThan) && s.retractedActiveAt.Before(olderThan) {
				delete(sites, id)
				a.markDirty(key)
				n++
			}
		}
		if len(sites) == 0 {
			delete(a.services, key)
		}
	}
	return n
}

// Stats summarizes every site's feed, sorted by site.
func (a *Aggregator) Stats() []SiteStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	perSite := a.perSiteServiceCounts()
	out := make([]SiteStats, 0, len(a.sites))
	for id, st := range a.sites {
		out = append(out, SiteStats{
			Site: id, LastSeq: st.lastSeq, Events: st.events, DupEvents: st.dups,
			Services: perSite[id], Scans: len(st.scans), Packets: st.packets,
			Watermark: st.watermark,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// NumServices returns the global (cross-site deduplicated) service count:
// services with live evidence from at least one site.
func (a *Aggregator) NumServices() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.numLiveLocked()
}

// SiteRecord is one site's view of a global service.
type SiteRecord struct {
	Site       SiteID          `json:"site"`
	Provenance core.Provenance `json:"prov"`
	PassiveAt  time.Time       `json:"passive_at,omitzero"`
	ActiveAt   time.Time       `json:"active_at,omitzero"`
	Flows      int             `json:"flows,omitempty"`
	Clients    int             `json:"clients,omitempty"`
}

// GlobalService is one cross-site deduplicated service: the record every
// reporting site contributes to, plus the earliest evidence anywhere.
type GlobalService struct {
	Key     core.ServiceKey `json:"key"`
	FirstAt time.Time       `json:"first_at"`
	Sites   []SiteRecord    `json:"sites"`
}

// Services returns the global inventory in deterministic order: keys
// canonically sorted (core.ServiceKey.Before, the same ordering as
// Inventory.Dump), each with its per-site records sorted by site.
func (a *Aggregator) Services() []GlobalService {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.servicesLocked()
}

func (a *Aggregator) servicesLocked() []GlobalService {
	out := make([]GlobalService, 0, len(a.services))
	for key, sites := range a.services {
		g := GlobalService{Key: key, Sites: make([]SiteRecord, 0, len(sites))}
		for id, s := range sites {
			if !s.live() {
				continue
			}
			g.Sites = append(g.Sites, SiteRecord{
				Site: id, Provenance: s.prov(),
				PassiveAt: s.passiveAt, ActiveAt: s.activeAt,
				Flows: s.flows, Clients: s.clients,
			})
			g.FirstAt = minTime(g.FirstAt, s.firstAt)
		}
		if len(g.Sites) == 0 {
			continue
		}
		sort.Slice(g.Sites, func(i, j int) bool { return g.Sites[i].Site < g.Sites[j].Site })
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Before(out[j].Key) })
	return out
}

// Dump renders the global inventory into a canonical byte form: the
// roll-up header, every service in key order with its per-site provenance
// and times, the deduplicated scanner list, and per-site summaries. For
// the same set of site feeds the output is byte-identical regardless of
// feed interleaving — the federation determinism contract, and the
// cross-site analogue of core.Inventory.Dump.
func (a *Aggregator) Dump() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	services := a.servicesLocked()
	var b bytes.Buffer
	fmt.Fprintf(&b, "sites=%d services=%d scanners=%d\n",
		len(a.sites), len(services), len(a.scanners))
	for _, g := range services {
		fmt.Fprintf(&b, "%s sites=%d first=%s\n", g.Key, len(g.Sites),
			g.FirstAt.UTC().Format(time.RFC3339Nano))
		for _, sr := range g.Sites {
			fmt.Fprintf(&b, "  %s %s", sr.Site, sr.Provenance)
			if !sr.PassiveAt.IsZero() {
				fmt.Fprintf(&b, " passive=%s flows=%d clients=%d",
					sr.PassiveAt.UTC().Format(time.RFC3339Nano), sr.Flows, sr.Clients)
			}
			if !sr.ActiveAt.IsZero() {
				fmt.Fprintf(&b, " active=%s", sr.ActiveAt.UTC().Format(time.RFC3339Nano))
			}
			b.WriteByte('\n')
		}
	}
	srcs := make([]netaddr.V4, 0, len(a.scanners))
	for src := range a.scanners {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		perSite := a.scanners[src]
		ids := make([]SiteID, 0, len(perSite))
		for id := range perSite {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Fprintf(&b, "scanner %s sites=%d\n", src, len(ids))
		for _, id := range ids {
			s := perSite[id]
			fmt.Fprintf(&b, "  %s window=%s dsts=%d rsts=%d\n", id,
				s.window.UTC().Format(time.RFC3339Nano), s.dsts, s.rstDsts)
		}
	}
	ids := make([]SiteID, 0, len(a.sites))
	for id := range a.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	perSiteSvcs := a.perSiteServiceCounts()
	for _, id := range ids {
		st := a.sites[id]
		fmt.Fprintf(&b, "site %s services=%d scans=%d packets=%d\n",
			id, perSiteSvcs[id], len(st.scans), st.packets)
	}
	return b.Bytes()
}
