package federate

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/faultnet"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/stats"
)

// chaosDialer builds a FeedClient Dial func that connects to pub through
// a freshly-faulted in-memory link: while *chaos holds, each dial draws a
// new random fault schedule (cuts, corruption, duplication, latency,
// stalls) for both directions and occasionally refuses outright (a
// partition); once chaos is lifted every new link is clean. Each dial
// serves the publisher end on its own goroutine, exactly like an accept
// loop would. The rng is owned by the client's Run goroutine, so no
// locking is needed around it.
func chaosDialer(ctx context.Context, pub *Publisher, rng *stats.RNG, chaos *atomic.Bool) func(context.Context) (net.Conn, error) {
	return func(dialCtx context.Context) (net.Conn, error) {
		var toServer, toClient faultnet.Faults
		if chaos.Load() {
			if rng.Bool(0.2) {
				return nil, fmt.Errorf("faultnet: link partitioned")
			}
			// Mean cut well above the typical frame so a fair share of
			// connections deliver real progress before dying; the
			// memoryless draw still kills plenty mid-snapshot.
			toServer = faultnet.Random(rng, 32<<10)
			toClient = faultnet.Random(rng, 32<<10)
		}
		client, server := faultnet.Pipe(toServer, toClient)
		go func() {
			_ = pub.ServeConn(ctx, server)
			server.Close()
		}()
		return client, nil
	}
}

// TestChaosConvergence is the fleet-resilience property: sites produce
// while every feed link suffers seeded partitions, cuts, corruption,
// duplication and latency; the clients reconnect through jittered
// backoff and delta resume the whole time. After the chaos lifts and the
// sites quiesce, the aggregator's canonical dump must be byte-identical
// to a fault-free run over the same inputs — nothing lost, nothing
// half-applied, nothing double-counted.
func TestChaosConvergence(t *testing.T) {
	const flows = 400
	for _, nSites := range []int{2, 8} {
		// The fault-free reference is seed-independent: compute it once
		// per fleet size.
		want, _ := runScenario(nSites, flows, func(sites []*testSite, agg *Aggregator) {
			for _, s := range sites {
				s.produce()
			}
		})
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("sites=%d/seed=%d", nSites, seed), func(t *testing.T) {
				got, stats := runChaosFleet(t, nSites, flows, seed)
				if string(got) != string(want) {
					t.Errorf("chaos dump diverges from fault-free run:\n%s", firstDiff(got, want))
				}
				var disconnects, applied uint64
				for _, st := range stats {
					disconnects += st.Disconnects
					applied += st.FramesApplied
				}
				if disconnects == 0 {
					t.Error("chaos schedule produced no disconnects — faults never fired")
				}
				if applied == 0 {
					t.Error("no frames applied through the chaotic links")
				}
			})
		}
	}
}

// runChaosFleet runs one seeded chaos schedule over a fleet of nSites
// and returns the sealed dump plus per-feed client stats.
func runChaosFleet(t *testing.T, nSites, flows int, seed uint64) ([]byte, []FeedStats) {
	t.Helper()
	agg := NewAggregator()
	sites := make([]*testSite, nSites)
	for i := range sites {
		sites[i] = newTestSite(i, flows)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var chaos atomic.Bool
	chaos.Store(true)

	clients := make([]*FeedClient, nSites)
	var wg sync.WaitGroup
	for i, s := range sites {
		rng := stats.NewRNG(seed).Derive(fmt.Sprintf("chaos-site-%d", i))
		fc := NewFeedClient(agg, string(s.id), FeedOptions{
			Dial: chaosDialer(ctx, s.pub, rng, &chaos),
			Backoff: BackoffConfig{
				Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond,
				Seed: seed<<8 + uint64(i),
			},
		})
		clients[i] = fc
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fc.Run(ctx)
		}()
	}

	// Produce at all sites concurrently while the links misbehave.
	var produce sync.WaitGroup
	for _, s := range sites {
		produce.Add(1)
		go func(s *testSite) {
			defer produce.Done()
			s.produce()
		}(s)
	}
	produce.Wait()

	// Quiesce: lift the faults, end the live streams, and wait for every
	// feed to catch up to its site's final sequence over clean links —
	// the liveness half of the property (reconnect-and-resume actually
	// recovers, not just "the final snapshot papers over it").
	chaos.Store(false)
	for _, s := range sites {
		s.eng.Close()
	}
	for _, s := range sites {
		waitCursor(t, agg, s.id, s.pub.State().Seq)
	}

	cancel()
	wg.Wait()

	// Seal with the standard final catch-up attach per site (live events
	// alone don't carry snapshot-only flow/client weights), mirroring
	// every other convergence scenario's ending.
	for _, s := range sites {
		<-agg.Attach(s.pub)
	}
	out := make([]FeedStats, nSites)
	for i, fc := range clients {
		out[i] = fc.Stats()
	}
	return agg.Dump(), out
}

// TestChaosNoResurrection drives the retraction lifecycle through
// chaotic links: a service expires while its site's feed is being cut,
// corrupted and replayed, and the retraction must survive every flavor
// of reconnect — no stale snapshot or duplicated delta brings the dead
// service back.
func TestChaosNoResurrection(t *testing.T) {
	eng := core.NewShardedPassive(testCampus, nil, 2)
	eng.SetRetention(core.RetentionPolicy{PassiveTTL: time.Hour})
	pub := NewPublisher("chaos-ret", eng)
	defer pub.Close()
	agg := NewAggregator()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var chaos atomic.Bool
	chaos.Store(true)
	rng := stats.NewRNG(99).Derive("chaos-resurrection")
	fc := NewFeedClient(agg, "chaos-ret", FeedOptions{
		Dial:    chaosDialer(ctx, pub, rng, &chaos),
		Backoff: BackoffConfig{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: 99},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = fc.Run(ctx)
	}()

	bld := packet.NewBuilder(0)
	svcA := testCampus.Base() + netaddr.V4(77) // will expire mid-chaos
	svcB := testCampus.Base() + netaddr.V4(78) // keeps chattering
	keyOfA := core.ServiceKey{Addr: svcA, Proto: packet.ProtoTCP, Port: 80}
	keyOfB := core.ServiceKey{Addr: svcB, Proto: packet.ProtoTCP, Port: 443}
	ext := netaddr.MustParseV4("64.20.0.1")
	answer := func(srv netaddr.V4, port uint16, at time.Time) {
		eng.HandlePacket(bld.SynAck(at, packet.Endpoint{Addr: srv, Port: port},
			packet.Endpoint{Addr: ext, Port: 33000}, 9, 8))
	}

	answer(svcA, 80, retBase)
	answer(svcB, 443, retBase)
	// svcB chatters past both deadlines; the snapshot expires svcA and
	// emits its retract frame into the chaotic stream.
	answer(svcB, 443, retBase.Add(3*time.Hour))
	eng.Snapshot()

	// Let the chaotic link churn through a few reconnects with the
	// tombstone in play before quiescing.
	for deadline := time.Now().Add(10 * time.Second); fc.Stats().Disconnects < 3; {
		if time.Now().After(deadline) {
			break // fault draw produced a long-lived link; fine
		}
		time.Sleep(time.Millisecond)
	}

	chaos.Store(false)
	eng.Close()
	waitCursor(t, agg, "chaos-ret", pub.State().Seq)
	cancel()
	<-done
	<-agg.Attach(pub)

	if hasLive(agg, keyOfA) {
		t.Fatal("expired service resurrected through chaos reconnects")
	}
	if !hasLive(agg, keyOfB) {
		t.Fatal("live service lost through chaos reconnects")
	}
	if fc.Stats().Connects == 0 {
		t.Fatal("feed never connected")
	}
}

// BenchmarkAggregatorIngestChaos climbs the same fleet-size ladder as
// BenchmarkAggregatorIngest, but every feed crosses an impaired link:
// the full wire path (encode, faultnet latency + bandwidth shaping,
// decode) in front of Apply. The faults are non-lossy — jitter and
// throughput caps, no cuts — so every frame still arrives and the
// measured cost is ingest-under-impairment, not retry logic.
func BenchmarkAggregatorIngestChaos(b *testing.B) {
	for _, rung := range ingestLadder {
		if rung.sites < 16 {
			continue // the chaos ladder is about fleet scale
		}
		b.Run(fmt.Sprintf("sites=%d", rung.sites), func(b *testing.B) {
			feeds := benchFeeds(rung.sites, rung.events)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg := NewAggregator()
				var wg sync.WaitGroup
				for s := range feeds {
					send, recv := faultnet.Pipe(faultnet.Faults{
						Latency:     10 * time.Microsecond,
						BytesPerSec: 64 << 20,
					}, faultnet.Faults{})
					wg.Add(1)
					go func(frames []Frame, w net.Conn) {
						defer w.Close()
						enc := NewEncoder(w)
						for j := range frames {
							if err := enc.Encode(&frames[j]); err != nil {
								return
							}
						}
					}(feeds[s], send)
					go func(r net.Conn) {
						defer wg.Done()
						defer r.Close()
						dec := NewDecoder(r)
						for {
							f, err := dec.Decode()
							if err != nil {
								return
							}
							_ = agg.Apply(f)
						}
					}(recv)
				}
				wg.Wait()
			}
			b.StopTimer()
			total := float64(rung.events*rung.sites) * float64(b.N)
			b.ReportMetric(total/b.Elapsed().Seconds(), "events/s")
		})
	}
}
