package federate

import (
	"sort"

	"servdisc/internal/core"
	"servdisc/internal/query"
)

// This file is the aggregator's query side: the same secondary indexes
// the site engines maintain (internal/query), kept over the *global*
// cross-site inventory. Feed frames mark touched keys dirty (see
// Aggregator.svc); the index refreshes lazily at the next Query, patching
// only the dirty keys — O(churn · log n), never a table rescan — and every
// refresh installs an immutable epoch that any number of in-flight
// queries read lock-free after the refresh releases the aggregator lock.

// markDirty records a service-table mutation for the lazy index refresh
// and advances the table generation. Caller holds a.mu.
func (a *Aggregator) markDirty(key core.ServiceKey) {
	if a.dirty == nil {
		a.dirty = make(map[core.ServiceKey]struct{})
	}
	a.dirty[key] = struct{}{}
	a.gen++
}

// Gen returns the service-table mutation generation — unchanged means the
// global inventory (and anything derived from it, like the /services
// encoding) is unchanged.
func (a *Aggregator) Gen() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen
}

// globalDocLocked folds one key's live per-site cells into the indexed
// doc: earliest evidence anywhere, newest evidence anywhere, summed
// passive weights, and the cross-site provenance class derived by the
// same rule a single site uses on its merged times. ok is false when no
// site holds live evidence. Caller holds a.mu.
func (a *Aggregator) globalDocLocked(key core.ServiceKey) (query.Doc, bool) {
	var merged svcState
	d := query.Doc{Key: key}
	live := false
	for _, s := range a.services[key] {
		if !s.live() {
			continue
		}
		live = true
		if s.hasPassive {
			merged.hasPassive = true
			merged.passiveAt = minTime(merged.passiveAt, s.passiveAt)
		}
		if s.hasActive {
			merged.hasActive = true
			merged.activeAt = minTime(merged.activeAt, s.activeAt)
		}
		d.First = minTime(d.First, s.firstAt)
		d.Last = maxTime(d.Last, maxTime(s.passiveSeenAt, s.activeSeenAt))
		d.Flows += s.flows
		d.Clients += s.clients
	}
	if !live {
		return query.Doc{}, false
	}
	if d.Last.IsZero() {
		d.Last = d.First
	}
	d.Prov = merged.prov()
	return d, true
}

// refreshIndexLocked brings the catalog up to date with the service table
// and returns the current epoch. Caller holds a.mu; the returned epoch is
// immutable and safe to query after the lock is released.
func (a *Aggregator) refreshIndexLocked() *query.Epoch {
	if a.qcat == nil {
		a.qcat = query.NewCatalog(0)
		a.qfull = true
	}
	if a.qfull {
		keys := make([]core.ServiceKey, 0, len(a.services))
		for k := range a.services {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
		docs := make([]query.Doc, 0, len(keys))
		for _, k := range keys {
			if d, ok := a.globalDocLocked(k); ok {
				docs = append(docs, d)
			}
		}
		a.qcat.Rebuild(docs)
		a.qfull, a.dirty = false, nil
		return a.qcat.Epoch()
	}
	if len(a.dirty) > 0 {
		keys := make([]core.ServiceKey, 0, len(a.dirty))
		for k := range a.dirty {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
		var upserts []query.Doc
		var removes []core.ServiceKey
		for _, k := range keys {
			if d, ok := a.globalDocLocked(k); ok {
				upserts = append(upserts, d)
			} else {
				removes = append(removes, k)
			}
		}
		a.qcat.Patch(upserts, removes)
		a.dirty = nil
	}
	return a.qcat.Epoch()
}

// Query answers a typed query over the global inventory: hits in
// canonical key order, paginated, deterministic for a quiescent
// aggregator regardless of how the same feeds interleaved. The index
// refresh (dirty keys only) happens under the aggregator lock; query
// execution runs lock-free against the refreshed epoch.
func (a *Aggregator) Query(q query.Query) (query.Result, error) {
	a.mu.Lock()
	ep := a.refreshIndexLocked()
	a.mu.Unlock()
	return ep.Query(q)
}

// QueryEpoch refreshes and returns the current index epoch — the bulk
// form of Query for callers running many queries against one consistent
// view.
func (a *Aggregator) QueryEpoch() *query.Epoch {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.refreshIndexLocked()
}
