package federate

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

func testKey(addr uint32, proto uint8, port uint16) core.ServiceKey {
	return core.ServiceKey{Addr: netaddr.V4(addr), Proto: packet.IPProtocol(proto), Port: port}
}

// sampleFrames covers every frame type and event kind once.
func sampleFrames() []Frame {
	base := time.Date(2006, 12, 16, 10, 0, 0, 123456789, time.UTC)
	key := testKey(0x807D0107, 6, 443)
	ev1 := core.Event{Kind: core.EventServiceDiscovered, Time: base, Key: key, Provenance: core.PassiveOnly}
	ev2 := core.Event{Kind: core.EventProvenanceUpgraded, Time: base.Add(time.Hour), Key: key, Provenance: core.PassiveFirst}
	ev3 := core.Event{Kind: core.EventScannerDetected, Time: base.Add(2 * time.Hour),
		Scanner: core.ScannerInfo{Source: netaddr.MustParseV4("211.1.1.1"), Window: base, UniqueDsts: 150, RstDsts: 120}}
	ev4 := core.Event{Kind: core.EventScanCompleted, Time: base.Add(3 * time.Hour),
		Scan: core.ScanMeta{ID: 7, Started: base, Finished: base.Add(3 * time.Hour)}, Truncated: true}
	snap := &Snapshot{
		Services: []SnapshotService{
			{Key: key, Provenance: core.PassiveFirst, PassiveAt: base, ActiveAt: base.Add(time.Minute), Flows: 42, Clients: 7},
			{Key: testKey(0x807D0200, 17, 53), Provenance: core.PassiveOnly, PassiveAt: base.Add(time.Second), Flows: 3, Clients: 1},
		},
		Scanners: []core.ScannerInfo{{Source: netaddr.MustParseV4("211.1.1.1"), Window: base, UniqueDsts: 150, RstDsts: 120}},
		Scans:    []core.ScanMeta{{ID: 7, Started: base, Finished: base.Add(3 * time.Hour)}},
		Packets:  100000,
	}
	return []Frame{
		{V: WireVersion, Type: FrameHello, Site: "east"},
		{V: WireVersion, Type: FrameSnapshot, Site: "east", Seq: 12, Snapshot: snap},
		{V: WireVersion, Type: FrameEvent, Site: "east", Seq: 13, Event: &ev1},
		{V: WireVersion, Type: FrameEvent, Site: "east", Seq: 14, Event: &ev2},
		{V: WireVersion, Type: FrameEvent, Site: "east", Seq: 15, Event: &ev3},
		{V: WireVersion, Type: FrameEvent, Site: "east", Seq: 16, Event: &ev4},
	}
}

// TestWireRoundTrip encodes a stream of every frame shape and decodes it
// back, comparing the canonical JSON of each frame.
func TestWireRoundTrip(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	dec := NewDecoder(&buf)
	for i := range frames {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if !framesEqual(t, &frames[i], got) {
			t.Errorf("frame %d did not round-trip", i)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("expected clean EOF at stream end, got %v", err)
	}
}

// framesEqual compares two frames via their canonical JSON rendering
// (time.Time equality through serialization, not struct identity).
func framesEqual(t *testing.T, a, b *Frame) bool {
	t.Helper()
	var ba, bb bytes.Buffer
	if err := NewEncoder(&ba).Encode(a); err != nil {
		t.Fatalf("re-encode a: %v", err)
	}
	if err := NewEncoder(&bb).Encode(b); err != nil {
		t.Fatalf("re-encode b: %v", err)
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}

// TestDecodeTruncated verifies a stream cut mid-frame reports
// ErrUnexpectedEOF, not a clean end.
func TestDecodeTruncated(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(&frames[2]); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{len(whole) / 2, len(whole) - 1, 3} {
		dec := NewDecoder(bytes.NewReader(whole[:cut]))
		if _, err := dec.Decode(); err != io.ErrUnexpectedEOF {
			t.Errorf("cut at %d: got %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestDecodeRejects verifies malformed prefixes and version mismatches
// error out instead of being silently accepted.
func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"bad prefix":     "xx {}\n",
		"missing prefix": " {}\n",
		"huge frame":     "999999999999 {}\n",
		"bad version":    `63 {"v":99,"type":"hello","site":"east","seq":0,"event":null}` + "\n",
		"bad json":       "3 {{{\n",
		"bad kind":       `96 {"v":1,"type":"event","site":"e","seq":1,"event":{"kind":"no-such-kind","time":"2006-01-02T15:04:05Z"}}` + "\n",
	}
	for name, in := range cases {
		if _, err := NewDecoder(strings.NewReader(in)).Decode(); err == nil || err == io.EOF {
			t.Errorf("%s: expected a decode error, got %v", name, err)
		}
	}
}

// TestEventKindTextStable pins the wire names of the event kinds: a feed
// recorded today must parse forever, even if the constants are reordered.
func TestEventKindTextStable(t *testing.T) {
	want := map[core.EventKind]string{
		core.EventServiceDiscovered:  "service-discovered",
		core.EventProvenanceUpgraded: "provenance-upgraded",
		core.EventScannerDetected:    "scanner-detected",
		core.EventScanCompleted:      "scan-completed",
	}
	for kind, name := range want {
		text, err := kind.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if string(text) != name {
			t.Errorf("kind %d marshals to %q, want %q", kind, text, name)
		}
		var back core.EventKind
		if err := back.UnmarshalText([]byte(name)); err != nil {
			t.Fatalf("unmarshal %q: %v", name, err)
		}
		if back != kind {
			t.Errorf("%q unmarshals to %d, want %d", name, back, kind)
		}
	}
	if _, err := core.EventKind(99).MarshalText(); err == nil {
		t.Error("marshaling an unknown kind should error")
	}
	var k core.EventKind
	if err := k.UnmarshalText([]byte("event(3)")); err == nil {
		t.Error("unmarshaling an unknown name should error")
	}
}

// FuzzFrameRoundTrip builds event and snapshot frames from fuzzed
// primitives and asserts encode→decode→encode is byte-stable.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(1166263200), uint32(0x807D0107), uint8(6), uint16(443), uint8(0), 42, 7, uint64(13), false)
	f.Add(uint8(1), int64(1166266800), uint32(0x807D0200), uint8(17), uint16(53), uint8(2), 3, 1, uint64(14), false)
	f.Add(uint8(2), int64(1166270400), uint32(0xD3010101), uint8(47), uint16(0), uint8(1), 150, 120, uint64(15), true)
	f.Add(uint8(3), int64(1166274000), uint32(0), uint8(255), uint16(65535), uint8(3), 0, 0, uint64(0), true)
	f.Fuzz(func(t *testing.T, kind uint8, sec int64, addr uint32, proto uint8, port uint16,
		prov uint8, n1, n2 int, seq uint64, snapshot bool) {
		// Clamp times into the RFC 3339 representable range and enums into
		// their valid domain — the codec's contract is for valid frames;
		// FuzzDecoderNoPanic covers hostile bytes.
		at := time.Unix(((sec%4e9)+4e9)%4e9, ((sec%1e9)+1e9)%1e9).UTC()
		k := core.EventKind(kind % 4)
		p := core.Provenance(prov % 4)
		key := testKey(addr, proto, port)
		fr := Frame{V: WireVersion, Site: SiteID("fuzz"), Seq: seq}
		if snapshot {
			fr.Type = FrameSnapshot
			fr.Snapshot = &Snapshot{
				Services: []SnapshotService{{Key: key, Provenance: p, PassiveAt: at, Flows: n1, Clients: n2}},
				Scanners: []core.ScannerInfo{{Source: netaddr.V4(addr), Window: at, UniqueDsts: n1, RstDsts: n2}},
				Scans:    []core.ScanMeta{{ID: n1, Started: at, Finished: at}},
				Packets:  n2,
			}
		} else {
			fr.Type = FrameEvent
			ev := core.Event{Kind: k, Time: at}
			switch k {
			case core.EventServiceDiscovered, core.EventProvenanceUpgraded:
				ev.Key, ev.Provenance = key, p
			case core.EventScannerDetected:
				ev.Scanner = core.ScannerInfo{Source: netaddr.V4(addr), Window: at, UniqueDsts: n1, RstDsts: n2}
			case core.EventScanCompleted:
				ev.Scan = core.ScanMeta{ID: n1, Started: at, Finished: at}
				ev.Truncated = n2%2 == 0
			}
			fr.Event = &ev
		}

		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(&fr); err != nil {
			t.Fatalf("encode: %v", err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		got, err := NewDecoder(&buf).Decode()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		var buf2 bytes.Buffer
		if err := NewEncoder(&buf2).Encode(got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("round trip not byte-stable:\n in: %s\nout: %s", first, buf2.Bytes())
		}
	})
}

// FuzzDecoderNoPanic feeds arbitrary bytes to the decoder: it must reject
// or accept them without panicking or over-allocating.
func FuzzDecoderNoPanic(f *testing.F) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	frames := sampleFrames()
	for i := range frames {
		_ = enc.Encode(&frames[i])
	}
	f.Add(buf.Bytes())
	f.Add([]byte("12 hello\n"))
	f.Add([]byte("999999999999999999 {}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, err := dec.Decode(); err != nil {
				return
			}
		}
	})
}
