package federate

// Retraction hardening: hostile or stale input must never half-apply a
// withdrawal, and a publisher reconnect (even one replaying pre-expiry
// state) must never resurrect an expired service.

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

var (
	retBase = time.Date(2006, 12, 16, 10, 0, 0, 0, time.UTC)
	keyA    = core.ServiceKey{Addr: netaddr.MustParseV4("128.125.3.1"), Proto: packet.ProtoTCP, Port: 80}
	keyB    = core.ServiceKey{Addr: netaddr.MustParseV4("128.125.3.2"), Proto: packet.ProtoTCP, Port: 443}
)

// seedAggregator builds a deterministic aggregator holding one site with
// two live services and one already-applied retraction — enough surface
// that a hostile frame has real state to corrupt.
func seedAggregator(tb testing.TB) *Aggregator {
	tb.Helper()
	agg := NewAggregator()
	snap := &Snapshot{
		Services: []SnapshotService{
			{Key: keyA, Provenance: core.PassiveOnly, PassiveAt: retBase, Flows: 7, Clients: 3},
			{Key: keyB, Provenance: core.ActiveOnly, ActiveAt: retBase.Add(time.Minute)},
		},
		Retractions: []Retraction{
			{Key: keyB, At: retBase.Add(-time.Hour), Prov: core.PassiveOnly},
		},
		Packets: 100,
	}
	f := &Frame{V: WireVersion, Type: FrameSnapshot, Site: "seed-site", Epoch: 1, Seq: 5, Snapshot: snap}
	if err := agg.Apply(f); err != nil {
		tb.Fatalf("seed snapshot: %v", err)
	}
	return agg
}

// invSignature renders the aggregator's merged inventory (services and
// scanners, not the per-site dedup cursors — those legitimately move on
// any frame, including rejected ones that open a new epoch) in canonical
// bytes for before/after comparison.
func invSignature(tb testing.TB, a *Aggregator) []byte {
	tb.Helper()
	st := a.ExportState()
	st.Sites = nil
	b, err := json.Marshal(st)
	if err != nil {
		tb.Fatalf("marshal state: %v", err)
	}
	return b
}

// encodeFrames renders frames in wire form for fuzz seeds.
func encodeFrames(tb testing.TB, frames ...Frame) []byte {
	tb.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			tb.Fatalf("encode seed: %v", err)
		}
	}
	return buf.Bytes()
}

// FuzzRetractionFrameDecode feeds arbitrary bytes through the wire
// decoder into a seeded aggregator and asserts the never-half-apply
// contract: any frame Apply rejects leaves the merged inventory
// byte-identical. (Accepted frames may of course mutate it.)
func FuzzRetractionFrameDecode(f *testing.F) {
	valid := Retraction{Key: keyA, At: retBase.Add(2 * time.Hour), Prov: core.PassiveOnly}
	noDeadline := Retraction{Key: keyA, Prov: core.PassiveOnly}
	// PassiveFirst is a legal wire value but not a legal retraction kind.
	badProv := Retraction{Key: keyA, At: retBase.Add(2 * time.Hour), Prov: core.PassiveFirst}
	f.Add(encodeFrames(f, Frame{V: WireVersion, Type: FrameRetract, Site: "seed-site", Epoch: 1, Seq: 6, Retract: &valid}))
	f.Add(encodeFrames(f, Frame{V: WireVersion, Type: FrameRetract, Site: "seed-site", Epoch: 1, Seq: 6, Retract: &noDeadline}))
	f.Add(encodeFrames(f, Frame{V: WireVersion, Type: FrameRetract, Site: "seed-site", Epoch: 2, Seq: 1, Retract: &badProv}))
	f.Add(encodeFrames(f, Frame{V: WireVersion, Type: FrameRetract, Site: "seed-site", Epoch: 1, Seq: 7}))
	// The half-apply honeypot: valid retractions ahead of an invalid one
	// in a single snapshot — none may land.
	f.Add(encodeFrames(f, Frame{
		V: WireVersion, Type: FrameSnapshot, Site: "seed-site", Epoch: 1, Seq: 9,
		Snapshot: &Snapshot{Retractions: []Retraction{valid, valid, noDeadline}},
	}))
	f.Add(encodeFrames(f,
		Frame{V: WireVersion, Type: FrameHello, Site: "seed-site", Epoch: 3},
		Frame{V: WireVersion, Type: FrameRetract, Site: "seed-site", Epoch: 3, Seq: 1, Retract: &valid},
	))
	f.Add([]byte("7 {\"v\":2}\ngarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		agg := seedAggregator(t)
		dec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			fr, err := dec.Decode()
			if err != nil {
				return // framing rejected the rest of the stream
			}
			pre := invSignature(t, agg)
			if aerr := agg.Apply(fr); aerr != nil {
				if post := invSignature(t, agg); !bytes.Equal(pre, post) {
					t.Fatalf("rejected frame mutated inventory\nframe: %+v\n pre: %s\npost: %s", fr, pre, post)
				}
			}
		}
	})
}

// TestSnapshotInvalidRetractionNotHalfApplied pins the honeypot case
// deterministically (the fuzzer's most important seed): a snapshot whose
// retraction list is valid except for its last entry must be rejected
// wholesale — the valid prefix must not land.
func TestSnapshotInvalidRetractionNotHalfApplied(t *testing.T) {
	agg := seedAggregator(t)
	pre := invSignature(t, agg)
	f := &Frame{
		V: WireVersion, Type: FrameSnapshot, Site: "seed-site", Epoch: 1, Seq: 9,
		Snapshot: &Snapshot{Retractions: []Retraction{
			{Key: keyA, At: retBase.Add(2 * time.Hour), Prov: core.PassiveOnly},
			{Key: keyB, Prov: core.ActiveOnly}, // zero deadline: invalid
		}},
	}
	if err := agg.Apply(f); err == nil {
		t.Fatal("snapshot with an invalid retraction was accepted")
	}
	if post := invSignature(t, agg); !bytes.Equal(pre, post) {
		t.Fatalf("rejected snapshot half-applied its retractions\n pre: %s\npost: %s", pre, post)
	}
	if n := agg.NumServices(); n != 2 {
		t.Fatalf("NumServices = %d, want 2", n)
	}
}

// hasLive reports whether the aggregator lists key as a live global
// service.
func hasLive(a *Aggregator, key core.ServiceKey) bool {
	for _, gs := range a.Services() {
		if gs.Key == key {
			return true
		}
	}
	return false
}

// TestReconnectAfterRetractionNoResurrection walks the full lifecycle:
// a site discovers a service, the aggregator learns it, the service
// expires (retract frame), and then every flavor of reconnect replay —
// the site's fresh snapshot, a stale pre-expiry snapshot from a restarted
// publisher epoch, and a stale discovery event — fails to bring it back.
func TestReconnectAfterRetractionNoResurrection(t *testing.T) {
	eng := core.NewShardedPassive(testCampus, []uint16{53}, 2)
	eng.SetRetention(core.RetentionPolicy{PassiveTTL: time.Hour})
	pub := NewPublisher("ret-site", eng)
	defer pub.Close()
	agg := NewAggregator()

	bld := packet.NewBuilder(0)
	svcA := testCampus.Base() + netaddr.V4(77) // will expire
	svcB := testCampus.Base() + netaddr.V4(78) // keeps chattering
	keyOfA := core.ServiceKey{Addr: svcA, Proto: packet.ProtoTCP, Port: 80}
	keyOfB := core.ServiceKey{Addr: svcB, Proto: packet.ProtoTCP, Port: 443}
	ext := netaddr.MustParseV4("64.20.0.1")
	answer := func(srv netaddr.V4, port uint16, at time.Time) {
		eng.HandlePacket(bld.SynAck(at, packet.Endpoint{Addr: srv, Port: port},
			packet.Endpoint{Addr: ext, Port: 33000}, 9, 8))
	}

	answer(svcA, 80, retBase)
	answer(svcB, 443, retBase)

	// First connection: bootstrap carries both services. Keep a copy of
	// the pre-expiry snapshot payload — the resurrection ammunition.
	bootstrap, live := pub.Catchup(0)
	for i := range bootstrap {
		if err := agg.Apply(&bootstrap[i]); err != nil {
			t.Fatalf("bootstrap: %v", err)
		}
	}
	staleSnap := bootstrap[1].Snapshot
	if !hasLive(agg, keyOfA) || !hasLive(agg, keyOfB) {
		t.Fatal("bootstrap did not establish both services")
	}

	// svcB chatters again past BOTH deadlines; the snapshot expires svcA
	// for good and splits svcB into a new incarnation (retract + fresh
	// discovery — the out-of-order case the deadline guard absorbs).
	// Close the engine so the live feed drains deterministically.
	answer(svcB, 443, retBase.Add(3*time.Hour))
	eng.Snapshot()
	eng.Close()
	retracted := map[core.ServiceKey]bool{}
	for f := range live.Events() {
		if f.Type == FrameRetract {
			retracted[f.Retract.Key] = true
		}
		if err := agg.Apply(&f); err != nil {
			t.Fatalf("live frame: %v", err)
		}
	}
	if !retracted[keyOfA] {
		t.Fatal("expiry never produced a retract frame for the idle service")
	}
	if hasLive(agg, keyOfA) {
		t.Fatal("service still live after retraction")
	}
	if !hasLive(agg, keyOfB) {
		t.Fatal("unexpired service lost")
	}

	// Reconnect 1: the site's current snapshot (which carries the
	// tombstone in Retractions) — svcA stays gone.
	re, reLive := pub.Catchup(0)
	reLive.Cancel()
	for i := range re {
		if err := agg.Apply(&re[i]); err != nil {
			t.Fatalf("reconnect: %v", err)
		}
	}
	if hasLive(agg, keyOfA) {
		t.Fatal("resurrected by the site's own reconnect snapshot")
	}

	// Reconnect 2: a restarted publisher epoch replays the STALE
	// pre-expiry snapshot (fresh sequence space, so no cursor saves us —
	// only the retraction semilattice can). svcA's evidence predates the
	// deadline and must stay rejected.
	stale := Frame{V: WireVersion, Type: FrameSnapshot, Site: "ret-site", Epoch: 999, Seq: 50, Snapshot: staleSnap}
	if err := agg.Apply(&stale); err != nil {
		t.Fatalf("stale snapshot: %v", err)
	}
	if hasLive(agg, keyOfA) {
		t.Fatal("resurrected by a stale pre-expiry snapshot")
	}
	if !hasLive(agg, keyOfB) {
		t.Fatal("stale snapshot clobbered the live service")
	}

	// Stale discovery event from the same restarted epoch: same verdict.
	ev := core.Event{Kind: core.EventServiceDiscovered, Time: retBase, Key: keyOfA, Provenance: core.PassiveOnly}
	evf := Frame{V: WireVersion, Type: FrameEvent, Site: "ret-site", Epoch: 999, Seq: 51, Event: &ev}
	if err := agg.Apply(&evf); err != nil {
		t.Fatalf("stale event: %v", err)
	}
	if hasLive(agg, keyOfA) {
		t.Fatal("resurrected by a stale discovery event")
	}

	// Genuinely fresh evidence at/after the deadline DOES re-establish:
	// the service really is back.
	reborn := core.Event{Kind: core.EventServiceDiscovered, Time: retBase.Add(2 * time.Hour), Key: keyOfA, Provenance: core.PassiveOnly}
	rbf := Frame{V: WireVersion, Type: FrameEvent, Site: "ret-site", Epoch: 999, Seq: 52, Event: &reborn}
	if err := agg.Apply(&rbf); err != nil {
		t.Fatalf("reborn event: %v", err)
	}
	if !hasLive(agg, keyOfA) {
		t.Fatal("post-deadline rediscovery failed to re-establish the service")
	}
}
