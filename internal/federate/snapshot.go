package federate

import (
	"sort"
	"time"

	"servdisc/internal/core"
)

// SnapshotService is one service record inside a snapshot frame: the
// wire-portable slice of what the site's frozen Inventory knows about the
// service. Zero times mean "that technique never saw it" (consistent with
// the Provenance class).
type SnapshotService struct {
	Key core.ServiceKey `json:"key"`
	// Provenance is the site-local classification as of the freeze.
	Provenance core.Provenance `json:"prov"`
	// PassiveAt is the first passive evidence (zero for active-only).
	PassiveAt time.Time `json:"passive_at,omitzero"`
	// ActiveAt is the first successful probe (zero for passive-only).
	ActiveAt time.Time `json:"active_at,omitzero"`
	// Flows and Clients are the passive weights as of the freeze.
	Flows   int `json:"flows,omitempty"`
	Clients int `json:"clients,omitempty"`
}

// Snapshot is the bootstrap payload of a snapshot frame: a flattened,
// key-ordered rendering of one site's frozen core.Inventory. The carrying
// frame's Seq records the event-stream generation the snapshot covers.
type Snapshot struct {
	// Services lists every discovered service in canonical (addr, proto,
	// port) order.
	Services []SnapshotService `json:"services"`
	// Scanners lists detected external scanners, sorted by source.
	Scanners []core.ScannerInfo `json:"scanners,omitempty"`
	// Scans lists completed sweep metadata in start order.
	Scans []core.ScanMeta `json:"scans,omitempty"`
	// Retractions lists the site's retention tombstones — services whose
	// evidence expired, sorted by (key, prov). A reconnecting aggregator
	// replays them before the service list, so retract frames lost from
	// the bounded live feed cannot resurrect an expired service.
	Retractions []Retraction `json:"retractions,omitempty"`
	// Packets is how many packets the site's passive run has consumed.
	Packets int `json:"packets"`
}

// BuildSnapshot flattens a frozen inventory into its wire form. The
// inventory is read-only and the result shares nothing with it, so the
// caller may serialize the snapshot at leisure while the engine keeps
// ingesting.
func BuildSnapshot(inv *core.Inventory) *Snapshot {
	keys := inv.Keys()
	s := &Snapshot{
		Services: make([]SnapshotService, 0, len(keys)),
		Scanners: append([]core.ScannerInfo(nil), inv.Scanners()...),
		Scans:    append([]core.ScanMeta(nil), inv.Scans()...),
		Packets:  inv.Packets(),
	}
	for _, key := range keys {
		prov, _ := inv.Provenance(key)
		svc := SnapshotService{Key: key, Provenance: prov}
		if rec, ok := inv.Record(key); ok {
			svc.PassiveAt = rec.FirstSeen
			svc.Flows = rec.Flows
			svc.Clients = rec.Clients()
		}
		if at, ok := inv.ActiveFirstOpen(key); ok {
			svc.ActiveAt = at
		}
		s.Services = append(s.Services, svc)
	}
	inv.EachTombstone(func(key core.ServiceKey, at time.Time, prov core.Provenance) bool {
		s.Retractions = append(s.Retractions, Retraction{Key: key, At: at, Prov: prov})
		return true
	})
	sort.Slice(s.Retractions, func(i, j int) bool {
		a, b := &s.Retractions[i], &s.Retractions[j]
		if a.Key != b.Key {
			return a.Key.Before(b.Key)
		}
		return a.Prov < b.Prov
	})
	return s
}
