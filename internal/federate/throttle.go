package federate

import (
	"context"
	"time"
)

// tokenBucket is a minimal rate limiter for the feed read path: capacity
// `burst` tokens refilled at `rate` per second, with take() allowed to
// overdraw — the caller owes the deficit as wait time. Overdraw keeps a
// single oversized frame (a snapshot bigger than the burst) admissible:
// it passes immediately but stalls the feed afterwards until the bucket
// refills, which is exactly the average-rate contract. Not safe for
// concurrent use; each feed connection owns its buckets.
type tokenBucket struct {
	rate   float64 // tokens per second; <= 0 disables the bucket
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// take charges n tokens at the given instant and returns how long the
// caller must wait before proceeding (zero when inside the budget).
func (b *tokenBucket) take(n float64, now time.Time) time.Duration {
	if b.rate <= 0 {
		return 0
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	b.tokens -= n
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// feedThrottle caps one feed connection at frames/s and bytes/s. Each
// decoded frame charges one frame token plus its wire size in byte
// tokens; a deficit in either bucket stalls the reader (which, through
// TCP backpressure, stalls the publisher's bounded per-reader queue —
// the aggregator-side flow control the hub's drop counters complete).
type feedThrottle struct {
	frames, bytes tokenBucket
}

// newFeedThrottle builds the two buckets; a zero rate disables that cap.
// Bursts default to one second's budget.
func newFeedThrottle(framesPerSec, bytesPerSec float64) *feedThrottle {
	return &feedThrottle{
		frames: newTokenBucket(framesPerSec, framesPerSec),
		bytes:  newTokenBucket(bytesPerSec, bytesPerSec),
	}
}

// admit charges one frame of the given wire size and sleeps off any
// deficit, honoring context cancellation. stalled reports whether the
// frame had to wait at all; err is the context error on cancellation.
func (t *feedThrottle) admit(ctx context.Context, wireBytes int) (stalled bool, err error) {
	now := time.Now()
	wait := t.frames.take(1, now)
	if w := t.bytes.take(float64(wireBytes), now); w > wait {
		wait = w
	}
	if wait <= 0 {
		return false, nil
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-timer.C:
		return true, nil
	case <-done:
		return true, ctx.Err()
	}
}
