package federate

import (
	"bytes"
	"context"
	"io"
	"testing"

	"servdisc/internal/core"
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// FuzzResumeFrame attacks both ends of the resume protocol with hostile
// cursor bytes.
//
// Publisher side: arbitrary bytes presented as the client hello must
// never panic ServeConn, and whatever it serves must have a legal shape —
// nothing at all (hello rejected), a Resumed hello followed by the
// contiguous delta starting exactly at cursor+1, or a plain hello
// followed by a full snapshot. There is no fourth shape: a hostile
// cursor can be refused or downgraded, never half-honored.
//
// Aggregator side: a FrameResume is a client-to-publisher frame; an
// aggregator receiving one on an inbound feed must reject it leaving
// BOTH the merged inventory and the per-site dedup cursor untouched —
// unlike other rejected frames, a resume may not even open an epoch.
func FuzzResumeFrame(f *testing.F) {
	// A publisher with a pinned epoch and four sequenced events in its
	// replay ring, quiesced so each ServeConn drains and returns. The
	// fuzz loop is sequential, so sharing it across runs is safe.
	const fuzzEpoch = 7
	eng := core.NewShardedPassive(testCampus, nil, 2)
	pub := NewPublisherOpts("fuzz-site", eng, PublisherState{Epoch: fuzzEpoch},
		PublisherOptions{Heartbeat: -1})
	defer pub.Close()
	bld := packet.NewBuilder(0)
	ext := netaddr.MustParseV4("64.20.0.1")
	for i := 0; i < 4; i++ {
		eng.HandlePacket(bld.SynAck(retBase, packet.Endpoint{Addr: testCampus.Base() + netaddr.V4(60+i), Port: 80},
			packet.Endpoint{Addr: ext, Port: 33000}, 9, 8))
	}
	waitSeq(f, pub, 4)
	eng.Close()

	f.Add(encodeFrames(f, Frame{V: WireVersion, Type: FrameResume, Resume: &ResumeCursor{Epoch: fuzzEpoch, Seq: 2}}))
	f.Add(encodeFrames(f, Frame{V: WireVersion, Type: FrameResume, Resume: &ResumeCursor{}}))
	f.Add(encodeFrames(f, Frame{V: WireVersion, Type: FrameResume, Resume: &ResumeCursor{Epoch: fuzzEpoch, Seq: ^uint64(0)}}))
	f.Add(encodeFrames(f, Frame{V: WireVersion, Type: FrameResume, Token: "tok", Resume: &ResumeCursor{Epoch: 1, Seq: 1}}))
	f.Add(encodeFrames(f,
		Frame{V: WireVersion, Type: FrameResume, Site: "seed-site", Epoch: 2, Seq: 9, Resume: &ResumeCursor{Epoch: 2, Seq: 9}},
		Frame{V: WireVersion, Type: FrameSnapshot, Site: "seed-site", Epoch: 2, Seq: 10, Snapshot: &Snapshot{}},
	))
	f.Add([]byte("9 {\"v\":3}\n"))
	f.Add([]byte("garbage hello"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}

		// --- Publisher: serve the hostile bytes as a client hello.
		var out bytes.Buffer
		rw := struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), &out}
		_ = pub.ServeConn(context.Background(), rw)

		// The cursor the publisher should have honored, if any: the first
		// frame of the input when it is a well-formed resume hello.
		var cursor ResumeCursor
		if in, err := NewDecoder(bytes.NewReader(data)).Decode(); err == nil &&
			in.Type == FrameResume && in.Resume != nil {
			cursor = *in.Resume
		}
		var reply []Frame
		dec := NewDecoder(bytes.NewReader(out.Bytes()))
		for {
			fr, err := dec.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("publisher wrote an undecodable frame: %v", err)
			}
			reply = append(reply, *fr)
		}
		switch {
		case len(reply) == 0: // hello rejected — nothing served
		case reply[0].Type != FrameHello:
			t.Fatalf("reply starts with %q, want hello", reply[0].Type)
		case reply[0].Resumed:
			// Delta replay: contiguous sequence from cursor+1, no snapshot.
			next := cursor.Seq + 1
			for _, fr := range reply[1:] {
				if fr.Type == FrameSnapshot {
					t.Fatalf("snapshot inside a resumed delta")
				}
				if fr.Seq != next {
					t.Fatalf("delta seq %d, want %d (cursor %d)", fr.Seq, next, cursor.Seq)
				}
				next++
			}
		default:
			// Snapshot fallback: hello then snapshot.
			if len(reply) < 2 || reply[1].Type != FrameSnapshot {
				t.Fatalf("non-resumed reply lacks a snapshot: %d frames", len(reply))
			}
		}

		// --- Aggregator: resume frames in an inbound stream must be
		// rejected without any state motion, inventory or cursor.
		agg := seedAggregator(t)
		sdec := NewDecoder(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			fr, err := sdec.Decode()
			if err != nil {
				return
			}
			if fr.Type != FrameResume {
				_ = agg.Apply(fr) // explore state space; other types have their own fuzzers
				continue
			}
			preInv := invSignature(t, agg)
			preEpoch, preSeq, preOK := agg.SiteCursor(fr.Site)
			if aerr := agg.Apply(fr); aerr == nil {
				t.Fatalf("aggregator accepted a resume frame: %+v", fr)
			}
			if postInv := invSignature(t, agg); !bytes.Equal(preInv, postInv) {
				t.Fatalf("rejected resume frame mutated inventory\n pre: %s\npost: %s", preInv, postInv)
			}
			postEpoch, postSeq, postOK := agg.SiteCursor(fr.Site)
			if preEpoch != postEpoch || preSeq != postSeq || preOK != postOK {
				t.Fatalf("rejected resume frame moved site cursor: (%d,%d,%v) -> (%d,%d,%v)",
					preEpoch, preSeq, preOK, postEpoch, postSeq, postOK)
			}
		}
	})
}
