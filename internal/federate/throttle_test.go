package federate

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestTokenBucketVirtualClock drives one bucket on a synthetic clock:
// inside the burst nothing waits, beyond it the wait equals the deficit
// over the refill rate, and elapsed time refills up to the burst.
func TestTokenBucketVirtualClock(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(10, 10) // 10 tokens/s, burst 10

	if w := b.take(10, now); w != 0 {
		t.Fatalf("burst take waited %s", w)
	}
	// Bucket empty: 5 more tokens owe 500ms at 10/s.
	if w := b.take(5, now); w != 500*time.Millisecond {
		t.Fatalf("deficit take waited %s, want 500ms", w)
	}
	// Two seconds later the bucket refilled (capped at burst 10): a
	// 10-token take passes free again.
	now = now.Add(2 * time.Second)
	if w := b.take(10, now); w != 0 {
		t.Fatalf("post-refill take waited %s", w)
	}
	// Refill never exceeds the burst: after a long idle gap one burst is
	// free, the next charge owes immediately.
	now = now.Add(time.Hour)
	b.take(10, now)
	if w := b.take(10, now); w != time.Second {
		t.Fatalf("burst-capped take waited %s, want 1s", w)
	}
}

// TestTokenBucketDisabled pins the zero-rate bypass.
func TestTokenBucketDisabled(t *testing.T) {
	b := newTokenBucket(0, 0)
	if w := b.take(1e9, time.Now()); w != 0 {
		t.Fatalf("disabled bucket waited %s", w)
	}
}

// TestFeedThrottleStallsAndCancels pins the two-bucket admit: frames
// inside both budgets pass without stalling, a byte-budget deficit
// stalls, and context cancellation interrupts the stall.
func TestFeedThrottleStallsAndCancels(t *testing.T) {
	th := newFeedThrottle(1000, 1000)
	if stalled, err := th.admit(context.Background(), 100); err != nil || stalled {
		t.Fatalf("in-budget admit: stalled=%v err=%v", stalled, err)
	}
	// Blow the byte budget; the next admit must stall (briefly).
	start := time.Now()
	if stalled, err := th.admit(context.Background(), 2000); err != nil {
		t.Fatal(err)
	} else if !stalled {
		t.Fatal("byte-budget deficit did not stall")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall absurdly long")
	}

	// A cancelled context interrupts a long stall immediately.
	slow := newFeedThrottle(0, 1) // 1 byte/s: a 1MB frame owes ~12 days
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := slow.admit(ctx, 1<<20)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled stall returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not interrupt the stall")
	}
}

// TestFeedClientThrottleCounts runs a throttled feed end to end and
// checks stalls are counted and the stream still lands intact.
func TestFeedClientThrottleCounts(t *testing.T) {
	// Connect the feed BEFORE producing so the site's ~200 discoveries
	// arrive as individual live frames rather than one bootstrap
	// snapshot; a 100-frame/s cap (burst 100) then forces roughly a
	// second of stalling without dragging the test out.
	site := newTestSite(6, 600)
	agg := NewAggregator()
	fc := NewFeedClient(agg, "throttled", FeedOptions{MaxFramesPerSec: 100})
	server, client := net.Pipe()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		_ = site.pub.ServeConn(ctx, server)
		server.Close()
	}()
	done := make(chan error, 1)
	go func() { done <- fc.RunConn(ctx, client) }()

	// The hello lands only after the publisher subscribed its live tap,
	// so once the client knows the site every later event is a frame.
	for deadline := time.Now().Add(5 * time.Second); fc.Site() == ""; {
		if time.Now().After(deadline) {
			t.Fatal("feed never saw the hello")
		}
		time.Sleep(time.Millisecond)
	}
	site.produce()
	site.eng.Close() // ends the live stream; the feed drains and exits
	if err := <-done; err != nil {
		t.Fatalf("throttled feed: %v", err)
	}
	if fc.Stats().ThrottleStalls == 0 {
		t.Errorf("no throttle stalls counted under a 100-frame/s cap (stats %+v)", fc.Stats())
	}
	// Events alone don't carry the snapshot-only flow/client weights, so
	// seal both aggregators with the standard final snapshot attach
	// before comparing (same contract as the resync tests).
	<-agg.Attach(site.pub)
	ref := NewAggregator()
	<-ref.Attach(site.pub)
	if got, want := agg.Dump(), ref.Dump(); string(got) != string(want) {
		t.Errorf("throttled feed diverges:\n%s", firstDiff(got, want))
	}
}
