package pipeline

import (
	"sync"
	"sync/atomic"
)

// Hub is the pipeline's publish/subscribe stage: a bounded, drop-counting
// fanout of typed events to any number of subscribers. Where BatchSink
// carries the packet stream itself, a Hub carries what the engine *learned*
// from the stream (discoveries, detections, sweep completions) to live
// consumers — dashboards, alerting, coverage trackers.
//
// The contract is deliberately asymmetric: publishers never block. Each
// subscriber owns a buffered channel; an event that does not fit a
// subscriber's buffer is dropped for that subscriber and counted (per
// subscriber via Sub.Dropped, in aggregate via Counters). A slow consumer
// therefore loses events rather than stalling ingest — the same posture as
// a kernel packet ring. Consumers that must not miss anything size their
// buffer for their worst-case lag, or fall back to polling snapshots.
//
// Publish may be called from any number of goroutines (the sharded
// discoverer's workers all publish into one hub). Close closes every
// subscriber channel; subscribing to a closed hub yields an already-closed
// channel.
type Hub[T any] struct {
	mu       sync.RWMutex
	subs     []*Sub[T]
	closed   bool
	counters StageCounters
}

// NewHub builds an empty hub.
func NewHub[T any]() *Hub[T] { return &Hub[T]{} }

// Counters exposes the hub's flow counters: In counts events published,
// Out per-subscriber deliveries, Dropped per-subscriber drops. Safe for
// concurrent readers at any time.
func (h *Hub[T]) Counters() *StageCounters { return &h.counters }

// Subscribe registers a subscriber whose channel buffers up to buf events
// (buf < 1 is clamped to 1). On a closed hub the returned subscription's
// channel is already closed.
func (h *Hub[T]) Subscribe(buf int) *Sub[T] { return h.SubscribeFunc(buf, nil) }

// SubscribeFunc registers a subscriber that receives only events passing
// keep (nil keeps everything — equivalent to Subscribe). The predicate is
// pushed down into Publish: an event keep rejects is never offered to the
// subscriber's channel and never counts against its drop budget, so a
// narrow subscriber on a firehose hub pays (and risks losing) only its own
// slice of the stream. keep runs on the publisher's goroutine for every
// published event — it must be fast, non-blocking, and safe for concurrent
// calls.
func (h *Hub[T]) SubscribeFunc(buf int, keep func(T) bool) *Sub[T] {
	if buf < 1 {
		buf = 1
	}
	s := &Sub[T]{hub: h, ch: make(chan T, buf), done: make(chan struct{}), keep: keep}
	h.mu.Lock()
	if h.closed {
		close(s.ch)
		close(s.done)
	} else {
		h.subs = append(h.subs, s)
	}
	h.mu.Unlock()
	return s
}

// Publish offers ev to every subscriber whose filter passes it, never
// blocking: subscribers with buffer room receive it, the rest drop it
// (counted). Events rejected by a subscriber's filter are counted as
// filtered for that subscriber, not dropped. Publishing to a closed hub is
// a no-op.
func (h *Hub[T]) Publish(ev T) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.closed {
		return
	}
	h.counters.AddIn(1)
	for _, s := range h.subs {
		if s.keep != nil && !s.keep(ev) {
			s.filtered.Add(1)
			continue
		}
		select {
		case s.ch <- ev:
			h.counters.AddOut(1)
		default:
			s.dropped.Add(1)
			h.counters.AddDropped(1)
		}
	}
}

// Close closes every subscriber channel (after they drain their buffered
// events, consumers observe end-of-stream). Idempotent.
func (h *Hub[T]) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, s := range h.subs {
		close(s.ch)
		close(s.done)
	}
	h.subs = nil
}

// Sub is one subscription to a Hub.
type Sub[T any] struct {
	hub      *Hub[T]
	ch       chan T
	done     chan struct{}
	keep     func(T) bool
	dropped  atomic.Int64
	filtered atomic.Int64
}

// Events returns the subscription's receive channel. It is closed when the
// hub closes or the subscription is cancelled; buffered events remain
// readable after either.
func (s *Sub[T]) Events() <-chan T { return s.ch }

// Done is closed when the subscription ends (hub close or Cancel) — a
// select-friendly end-of-stream signal for goroutines that are not the
// channel's reader.
func (s *Sub[T]) Done() <-chan struct{} { return s.done }

// Dropped returns how many events this subscriber missed because its
// buffer was full. Filter-rejected events never count here — the drop
// budget covers only events the subscriber asked for. Safe for concurrent
// readers.
func (s *Sub[T]) Dropped() int { return int(s.dropped.Load()) }

// Filtered returns how many published events this subscriber's filter
// rejected (always 0 for unfiltered subscriptions). Safe for concurrent
// readers.
func (s *Sub[T]) Filtered() int { return int(s.filtered.Load()) }

// Cancel unsubscribes and closes the channel. Idempotent, and a no-op
// after the hub itself has closed.
func (s *Sub[T]) Cancel() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for i, x := range h.subs {
		if x == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			close(s.ch)
			close(s.done)
			return
		}
	}
}
