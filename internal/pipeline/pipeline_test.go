package pipeline

import (
	"context"
	"sync"
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

var (
	testServer = netaddr.MustParseV4("128.125.7.9")
	testClient = netaddr.MustParseV4("64.1.2.3")
	testRef    = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
)

// corpus builds n alternating SYN-ACK / bare-ACK packets so a flag filter
// keeps exactly half.
func corpus(n int) []packet.Packet {
	bld := packet.NewBuilder(0)
	out := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		flags := packet.FlagSYN | packet.FlagACK
		if i%2 == 1 {
			flags = packet.FlagACK
		}
		p := bld.TCPPacket(testRef.Add(time.Duration(i)*time.Millisecond),
			packet.Endpoint{Addr: testServer, Port: 80},
			packet.Endpoint{Addr: testClient + netaddr.V4(i), Port: 40000},
			flags, 1, 2, nil)
		out = append(out, *p)
	}
	return out
}

func synAckOnly() *Stage {
	return FilterStage("synack", func(p *packet.Packet) bool {
		return p.TCP.Flags.Has(packet.FlagSYN | packet.FlagACK)
	})
}

func TestSinkAdapterUnrollsBatch(t *testing.T) {
	var got []netaddr.V4
	ad := Adapt(packetFunc(func(p *packet.Packet) { got = append(got, p.IPv4.Dst) }))
	ad.HandleBatch(corpus(5))
	if len(got) != 5 {
		t.Fatalf("adapter delivered %d packets", len(got))
	}
	for i, dst := range got {
		if dst != testClient+netaddr.V4(i) {
			t.Errorf("packet %d out of order", i)
		}
	}
}

type packetFunc func(p *packet.Packet)

func (f packetFunc) HandlePacket(p *packet.Packet) { f(p) }

func TestBatcherAccumulatesAndFlushes(t *testing.T) {
	var batches [][]packet.Packet
	b := NewBatcher(BatchFunc(func(batch []packet.Packet) {
		cp := make([]packet.Packet, len(batch))
		copy(cp, batch)
		batches = append(batches, cp)
	}), 4)
	pkts := corpus(10)
	for i := range pkts {
		b.Add(pkts[i])
	}
	if len(batches) != 2 {
		t.Fatalf("got %d full batches before flush", len(batches))
	}
	b.Flush()
	if len(batches) != 3 || len(batches[2]) != 2 {
		t.Fatalf("flush delivered wrong remainder: %d batches", len(batches))
	}
	b.Flush() // empty flush is a no-op
	if len(batches) != 3 {
		t.Error("empty flush delivered a batch")
	}
}

func TestStageCountsAndFilters(t *testing.T) {
	s := synAckOnly()
	out := s.Process(corpus(10))
	if len(out) != 5 {
		t.Fatalf("stage kept %d of 10", len(out))
	}
	c := s.Counters()
	if c.In() != 10 || c.Out() != 5 || c.Dropped() != 5 {
		t.Errorf("counters = %d/%d/%d", c.In(), c.Out(), c.Dropped())
	}
	if s.Name() != "synack" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestFanoutDuplicates(t *testing.T) {
	a, b := 0, 0
	f := Fanout{
		BatchFunc(func(batch []packet.Packet) { a += len(batch) }),
		nil, // nil entries are skipped
		BatchFunc(func(batch []packet.Packet) { b += len(batch) }),
	}
	f.HandleBatch(corpus(7))
	if a != 7 || b != 7 {
		t.Errorf("fanout delivered %d/%d", a, b)
	}
}

func TestPipelineSynchronous(t *testing.T) {
	total := 0
	pl := NewPipeline(BatchFunc(func(batch []packet.Packet) { total += len(batch) }), synAckOnly())
	pl.HandleBatch(corpus(20))
	pl.HandleBatch(nil) // empty batch ignored
	if total != 10 {
		t.Fatalf("sync pipeline delivered %d", total)
	}
	pl.Flush() // no-op in sync mode
	pl.Close()
	pl.HandleBatch(corpus(2))
	if total != 10 {
		t.Error("pipeline accepted batches after Close")
	}
}

func TestPipelineAsyncFlushClose(t *testing.T) {
	var mu sync.Mutex
	total := 0
	pl := NewPipeline(BatchFunc(func(batch []packet.Packet) {
		mu.Lock()
		total += len(batch)
		mu.Unlock()
	}), synAckOnly())
	pl.Run(context.Background())

	pkts := corpus(1000)
	for off := 0; off < len(pkts); off += 100 {
		pl.HandleBatch(pkts[off : off+100])
	}
	pl.Flush()
	mu.Lock()
	got := total
	mu.Unlock()
	if got != 500 {
		t.Fatalf("after flush delivered %d, want 500", got)
	}
	if c := pl.Stages()[0].Counters(); c.In() != 1000 || c.Out() != 500 {
		t.Errorf("stage counters = %d/%d", c.In(), c.Out())
	}
	pl.Close()
	pl.Close() // idempotent
}

func TestPipelineAsyncCopiesBatch(t *testing.T) {
	done := make(chan struct{})
	var got packet.Packet
	pl := NewPipeline(BatchFunc(func(batch []packet.Packet) {
		got = batch[0]
		close(done)
	}))
	pl.Run(context.Background())
	buf := corpus(1)
	want := buf[0].IPv4.Dst
	pl.HandleBatch(buf)
	buf[0].IPv4.Dst = 0 // producer reuses its buffer immediately
	<-done
	pl.Close()
	if got.IPv4.Dst != want {
		t.Error("async pipeline aliased the producer's buffer")
	}
}

func TestPipelineCancelDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	pl := NewPipeline(BatchFunc(func(batch []packet.Packet) { delivered += len(batch) }), synAckOnly())
	pl.Run(ctx)
	cancel()
	// Batches after cancellation are dropped, but Flush/Close still return.
	for i := 0; i < 10; i++ {
		pl.HandleBatch(corpus(10))
	}
	pl.Flush()
	pl.Close()
}

func TestCountersConcurrentReaders(t *testing.T) {
	var c StageCounters
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.In() + c.Out() + c.Dropped()
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		c.AddIn(2)
		c.AddOut(1)
		c.AddDropped(1)
	}
	close(stop)
	wg.Wait()
	if c.In() != 2000 || c.Out() != 1000 || c.Dropped() != 1000 {
		t.Errorf("counters = %d/%d/%d", c.In(), c.Out(), c.Dropped())
	}
}

func TestHubFanoutAndDrops(t *testing.T) {
	hub := NewHub[int]()
	fast := hub.Subscribe(8)
	slow := hub.Subscribe(2)
	for i := 0; i < 8; i++ {
		hub.Publish(i)
	}
	if d := fast.Dropped(); d != 0 {
		t.Errorf("fast subscriber dropped %d", d)
	}
	if d := slow.Dropped(); d != 6 {
		t.Errorf("slow subscriber dropped %d, want 6", d)
	}
	c := hub.Counters()
	if c.In() != 8 || c.Out() != 10 || c.Dropped() != 6 {
		t.Errorf("hub counters = %d/%d/%d, want 8/10/6", c.In(), c.Out(), c.Dropped())
	}
	hub.Close()
	var got []int
	for v := range fast.Events() {
		got = append(got, v)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("fast subscriber saw %v", got)
		}
	}
	if len(got) != 8 {
		t.Fatalf("fast subscriber saw %d events, want 8", len(got))
	}
	// The slow subscriber keeps its first two buffered events.
	if v, ok := <-slow.Events(); !ok || v != 0 {
		t.Errorf("slow subscriber first event = %d/%v", v, ok)
	}
}

func TestHubPublishNeverBlocks(t *testing.T) {
	hub := NewHub[int]()
	sub := hub.Subscribe(1) // never drained
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			hub.Publish(i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a full subscriber")
	}
	if sub.Dropped() != 9999 {
		t.Errorf("dropped %d, want 9999", sub.Dropped())
	}
}

func TestHubCancelAndCloseSemantics(t *testing.T) {
	hub := NewHub[string]()
	a := hub.Subscribe(4)
	b := hub.Subscribe(4)
	hub.Publish("x")
	a.Cancel()
	a.Cancel() // idempotent
	hub.Publish("y")
	if _, ok := <-a.Events(); !ok {
		// first receive drains the buffered "x"
		t.Error("cancelled subscriber lost its buffered event")
	}
	if _, ok := <-a.Events(); ok {
		t.Error("cancelled subscriber still receiving")
	}
	hub.Close()
	hub.Close() // idempotent
	hub.Publish("z")
	var got []string
	for v := range b.Events() {
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("surviving subscriber saw %v, want [x y]", got)
	}
	// Subscribing after close yields an immediately-closed channel.
	late := hub.Subscribe(1)
	if _, ok := <-late.Events(); ok {
		t.Error("late subscriber got an open channel")
	}
	late.Cancel() // no-op, must not panic
}

func TestHubConcurrentPublishers(t *testing.T) {
	hub := NewHub[int]()
	sub := hub.Subscribe(1 << 14)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				hub.Publish(i)
			}
		}()
	}
	wg.Wait()
	hub.Close()
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 8000 || sub.Dropped() != 0 {
		t.Errorf("received %d (dropped %d), want 8000/0", n, sub.Dropped())
	}
}

// A filtered subscriber must see exactly the subsequence of the published
// stream its predicate selects, in publication order — filtering changes
// which events arrive, never their relative order.
func TestHubFilteredSubscriptionOrderMatchesUnfiltered(t *testing.T) {
	hub := NewHub[int]()
	all := hub.Subscribe(1024)
	even := hub.SubscribeFunc(1024, func(v int) bool { return v%2 == 0 })
	for i := 0; i < 500; i++ {
		hub.Publish(i)
	}
	hub.Close()
	var full, filtered []int
	for v := range all.Events() {
		full = append(full, v)
	}
	for v := range even.Events() {
		filtered = append(filtered, v)
	}
	var want []int
	for _, v := range full {
		if v%2 == 0 {
			want = append(want, v)
		}
	}
	if len(filtered) != len(want) {
		t.Fatalf("filtered subscriber saw %d events, want %d", len(filtered), len(want))
	}
	for i := range want {
		if filtered[i] != want[i] {
			t.Fatalf("filtered order diverges at %d: got %d want %d", i, filtered[i], want[i])
		}
	}
	if even.Filtered() != 250 || even.Dropped() != 0 {
		t.Errorf("filtered/dropped = %d/%d, want 250/0", even.Filtered(), even.Dropped())
	}
}

// The drop budget of a filtered subscriber covers only events that passed
// its filter: a tiny buffer watching a rare slice of a firehose drops
// nothing, and when it does overflow, only filter-passing events count.
func TestHubFilteredDropAccounting(t *testing.T) {
	hub := NewHub[int]()
	// Passes 10 of 1000 events into a buffer of 16: no drops possible.
	rare := hub.SubscribeFunc(16, func(v int) bool { return v%100 == 0 })
	// Passes 500 of 1000 into a buffer of 2: exactly 498 filtered-in drops.
	tight := hub.SubscribeFunc(2, func(v int) bool { return v%2 == 0 })
	for i := 0; i < 1000; i++ {
		hub.Publish(i)
	}
	if d := rare.Dropped(); d != 0 {
		t.Errorf("rare subscriber dropped %d, want 0 (filtered events must not consume drop budget)", d)
	}
	if f := rare.Filtered(); f != 990 {
		t.Errorf("rare subscriber filtered %d, want 990", f)
	}
	if d := tight.Dropped(); d != 498 {
		t.Errorf("tight subscriber dropped %d, want 498 (only filter-passing events)", d)
	}
	if f := tight.Filtered(); f != 500 {
		t.Errorf("tight subscriber filtered %d, want 500", f)
	}
	// Aggregate hub drop counter likewise charges only filter-passing
	// overflow (498 from tight, 0 from rare).
	if c := hub.Counters(); c.Dropped() != 498 {
		t.Errorf("hub dropped %d, want 498", c.Dropped())
	}
	hub.Close()
}
