// Package pipeline defines the streaming ingest contract the discovery
// system is built on: packets flow through the system in batches, not one
// virtual call per packet.
//
// The batch is the unit of work everywhere — capture taps, trace replay,
// the traffic generator and the sharded passive discoverer all produce or
// consume []packet.Packet. A batch is only valid for the duration of the
// HandleBatch call: producers reuse their buffers, so a sink that needs to
// keep packets must copy them.
//
// Three composition pieces cover the common shapes:
//
//   - Stage applies a filtering/transforming function to each batch and
//     keeps concurrency-safe counters (In/Out/Dropped).
//   - Fanout duplicates a batch across several sinks.
//   - Pipeline chains stages in front of a terminal sink, either
//     synchronously (deterministic, for simulation) or with one goroutine
//     per stage connected by channels (Run/Flush/Close lifecycle, for
//     replay and live capture).
//
// Legacy per-packet consumers bridge in through SinkAdapter (per-packet
// sink fed by batches) and Batcher (per-packet producer accumulating
// batches).
package pipeline

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"servdisc/internal/obs"
	"servdisc/internal/packet"
)

// DefaultBatchSize is the batch granularity used when a caller does not
// specify one. Big enough to amortize call overhead, small enough that a
// batch of decoded packets (~240 B each) stays within L1 while the batch
// makes several passes through monitor, tap, and discoverer stages —
// measured on BenchmarkIngestBatched, 64 beats both 32 and 256.
const DefaultBatchSize = 64

// BatchSink consumes packet batches. The batch (and the packets inside it)
// is only valid until HandleBatch returns; retain copies, not the slice.
type BatchSink interface {
	HandleBatch(batch []packet.Packet)
}

// BatchFunc adapts a function to BatchSink.
type BatchFunc func(batch []packet.Packet)

// HandleBatch implements BatchSink.
func (f BatchFunc) HandleBatch(batch []packet.Packet) { f(batch) }

// PacketSink is the legacy per-packet contract (capture.Sink and friends
// satisfy it structurally).
type PacketSink interface {
	HandlePacket(p *packet.Packet)
}

// SinkAdapter feeds a legacy per-packet sink from batch flow.
type SinkAdapter struct {
	Sink PacketSink
}

// Adapt wraps a per-packet sink as a BatchSink.
func Adapt(s PacketSink) SinkAdapter { return SinkAdapter{Sink: s} }

// HandleBatch implements BatchSink by unrolling the batch.
func (a SinkAdapter) HandleBatch(batch []packet.Packet) {
	for i := range batch {
		a.Sink.HandlePacket(&batch[i])
	}
}

// Batcher accumulates per-packet submissions into batches for a BatchSink,
// bridging per-packet producers into batch flow. Not safe for concurrent
// producers; the typical producer is a single capture or replay loop.
type Batcher struct {
	sink BatchSink
	size int
	buf  []packet.Packet
}

// NewBatcher builds a batcher delivering batches of the given size
// (DefaultBatchSize if size <= 0).
func NewBatcher(sink BatchSink, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &Batcher{sink: sink, size: size, buf: make([]packet.Packet, 0, size)}
}

// HandlePacket implements the legacy per-packet contract.
func (b *Batcher) HandlePacket(p *packet.Packet) { b.Add(*p) }

// Add appends one packet, flushing when the batch is full.
func (b *Batcher) Add(p packet.Packet) {
	b.buf = append(b.buf, p)
	if len(b.buf) >= b.size {
		b.Flush()
	}
}

// Flush delivers any buffered packets downstream.
func (b *Batcher) Flush() {
	if len(b.buf) == 0 {
		return
	}
	b.sink.HandleBatch(b.buf)
	b.buf = b.buf[:0]
}

// StageCounters tallies batch flow through one stage. All methods are safe
// under concurrent writers and readers, so live monitoring (an HTTP stats
// endpoint, a progress printer) can read them while workers ingest.
type StageCounters struct {
	in, out, dropped atomic.Int64
}

// AddIn records n packets entering the stage.
func (c *StageCounters) AddIn(n int) { c.in.Add(int64(n)) }

// AddOut records n packets leaving the stage.
func (c *StageCounters) AddOut(n int) { c.out.Add(int64(n)) }

// AddDropped records n packets discarded by the stage.
func (c *StageCounters) AddDropped(n int) { c.dropped.Add(int64(n)) }

// In returns the packets that entered the stage.
func (c *StageCounters) In() int { return int(c.in.Load()) }

// Out returns the packets the stage passed downstream.
func (c *StageCounters) Out() int { return int(c.out.Load()) }

// Dropped returns the packets the stage discarded.
func (c *StageCounters) Dropped() int { return int(c.dropped.Load()) }

// Proc transforms one batch. It may filter in place and return a sub-slice
// of in, or return a different slice; returning nil drops the batch.
type Proc func(in []packet.Packet) []packet.Packet

// Stage is one named step of a pipeline: a batch transformation plus
// counters. The counters are concurrency-safe; Process itself is invoked
// by a single goroutine at a time (the pipeline runner guarantees this).
type Stage struct {
	name     string
	proc     Proc
	counters StageCounters
	lat      *obs.Histogram
}

// NewStage builds a stage around a batch transformation.
func NewStage(name string, proc Proc) *Stage {
	return &Stage{name: name, proc: proc}
}

// Name returns the stage's display name.
func (s *Stage) Name() string { return s.name }

// Counters exposes the stage's flow counters.
func (s *Stage) Counters() *StageCounters { return &s.counters }

// SetLatency attaches a per-batch latency histogram to the stage. Must
// be set before batches flow; a nil histogram (the default) skips the
// clock reads entirely.
func (s *Stage) SetLatency(h *obs.Histogram) { s.lat = h }

// Process runs one batch through the stage, updating counters (and the
// latency histogram, when one is attached).
func (s *Stage) Process(batch []packet.Packet) []packet.Packet {
	s.counters.AddIn(len(batch))
	var start time.Time
	if s.lat != nil {
		start = time.Now()
	}
	out := s.proc(batch)
	if s.lat != nil {
		s.lat.Observe(time.Since(start))
	}
	s.counters.AddOut(len(out))
	s.counters.AddDropped(len(batch) - len(out))
	return out
}

// FilterStage builds a stage keeping only packets for which keep returns
// true, compacting in place.
func FilterStage(name string, keep func(p *packet.Packet) bool) *Stage {
	return NewStage(name, func(in []packet.Packet) []packet.Packet {
		out := in[:0]
		for i := range in {
			if keep(&in[i]) {
				out = append(out, in[i])
			}
		}
		return out
	})
}

// Fanout duplicates each batch to several sinks, in order. Nil entries are
// skipped. Sinks must treat the batch as read-only: they all observe the
// same slice.
type Fanout []BatchSink

// HandleBatch implements BatchSink.
func (f Fanout) HandleBatch(batch []packet.Packet) {
	for _, s := range f {
		if s != nil {
			s.HandleBatch(batch)
		}
	}
}

// Pipeline chains stages in front of a terminal sink.
//
// Until Run is called, HandleBatch processes synchronously on the caller's
// goroutine — fully deterministic, the mode the simulator uses. After Run,
// each stage executes on its own goroutine connected by buffered channels;
// HandleBatch then copies the batch and enqueues it. Flush blocks until
// everything enqueued so far has left the terminal sink; Close shuts the
// workers down (idempotent) and implies a final Flush.
type Pipeline struct {
	stages []*Stage
	sink   BatchSink

	// mu is held shared by producers for the duration of an enqueue and
	// exclusively by Run/Close, so Close can never shut the input channel
	// while a send is in flight.
	mu       sync.RWMutex
	running  bool
	closed   bool
	in       chan []packet.Packet
	ctx      context.Context
	workers  sync.WaitGroup
	inflight sync.WaitGroup
}

// NewPipeline builds a pipeline delivering to sink through the given
// stages, applied in order.
func NewPipeline(sink BatchSink, stages ...*Stage) *Pipeline {
	return &Pipeline{stages: stages, sink: sink}
}

// Stages returns the pipeline's stages (for counter inspection).
func (p *Pipeline) Stages() []*Stage { return p.stages }

// Instrument attaches a latency histogram to every stage, obtained from
// hist keyed by stage name. Call before batches flow.
func (p *Pipeline) Instrument(hist func(stage string) *obs.Histogram) {
	for _, s := range p.stages {
		s.SetLatency(hist(s.name))
	}
}

// HandleBatch implements BatchSink. Synchronous before Run; after Run the
// batch is copied and handed to the stage workers. Calling HandleBatch
// after Close is a no-op.
func (p *Pipeline) HandleBatch(batch []packet.Packet) {
	if len(batch) == 0 {
		return
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return
	}
	if !p.running {
		p.process(batch)
		return
	}
	cp := make([]packet.Packet, len(batch))
	copy(cp, batch)
	p.inflight.Add(1)
	p.in <- cp
}

// process runs one batch through every stage and the sink, synchronously.
func (p *Pipeline) process(batch []packet.Packet) {
	for _, s := range p.stages {
		batch = s.Process(batch)
		if len(batch) == 0 {
			return
		}
	}
	p.sink.HandleBatch(batch)
}

// Run starts one worker goroutine per stage (plus a delivery worker for
// the terminal sink). The context stops processing: batches still queued
// after cancellation are drained and counted as dropped rather than
// processed, so Flush and Close never deadlock. Run is a no-op if the
// pipeline is already running or closed.
func (p *Pipeline) Run(ctx context.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running || p.closed {
		return
	}
	p.running = true
	p.ctx = ctx
	p.in = make(chan []packet.Packet, 64)

	ch := p.in
	for _, s := range p.stages {
		out := make(chan []packet.Packet, 64)
		p.workers.Add(1)
		go p.stageWorker(s, ch, out)
		ch = out
	}
	p.workers.Add(1)
	go p.deliveryWorker(ch)
}

func (p *Pipeline) stageWorker(s *Stage, in <-chan []packet.Packet, out chan<- []packet.Packet) {
	defer p.workers.Done()
	defer close(out)
	for batch := range in {
		if p.ctx.Err() != nil {
			s.Counters().AddIn(len(batch))
			s.Counters().AddDropped(len(batch))
			batch = nil
		} else {
			batch = s.Process(batch)
		}
		// Forward even empty batches: the in-flight token must reach the
		// delivery worker for Flush accounting.
		out <- batch
	}
}

func (p *Pipeline) deliveryWorker(in <-chan []packet.Packet) {
	defer p.workers.Done()
	for batch := range in {
		if len(batch) > 0 && p.ctx.Err() == nil {
			p.sink.HandleBatch(batch)
		}
		p.inflight.Done()
	}
}

// Flush blocks until every batch enqueued before the call has been
// delivered (or dropped due to cancellation). In synchronous mode it is a
// no-op. Flush must not race with concurrent HandleBatch producers.
func (p *Pipeline) Flush() {
	p.inflight.Wait()
}

// Close flushes and stops the workers. Idempotent; HandleBatch afterwards
// is a no-op. In synchronous mode it only marks the pipeline closed.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	running, in := p.running, p.in
	p.mu.Unlock()
	if running {
		close(in)
		p.workers.Wait()
	}
}

var (
	_ BatchSink  = BatchFunc(nil)
	_ BatchSink  = SinkAdapter{}
	_ BatchSink  = Fanout(nil)
	_ BatchSink  = (*Pipeline)(nil)
	_ PacketSink = (*Batcher)(nil)
)
