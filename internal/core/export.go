package core

// Checkpoint export/import: the engine side of internal/checkpoint.
//
// ExportDelta freezes a consistent cut of everything the engine has
// learned — including the live-only state that sealed snapshot views
// deliberately do not carry (the peer-identity side tables behind client
// counts, the scan tracker's window contents, the cumulative packet
// count) — and copies only what changed since the given cursor. Capture
// consistency comes from the same mechanism snapshots use: an export
// marker flows through every shard queue under the dispatch lock, so the
// cut falls at a whole-batch boundary of the producer's stream and the
// copy-out runs on the shard's owner goroutine, race-free by
// construction.
//
// Incrementality comes from dedicated checkpoint dirty sets (ckDirty /
// ckDirtyAddrs on the discoverer, ckDirty on the scan tracker), switched
// on by the first full export and cleared at each export: unlike the seal
// dirty sets they survive snapshot freezes, so a checkpoint cadence much
// slower than the snapshot cadence still pays O(churn), not O(inventory).
// The generation vector in the cursor detects untouched shards (their
// export is skipped outright) and guards against stale cursors.
//
// ImportDelta is the inverse: it redistributes exported state by owner
// address into a FRESH engine — the shard count may differ from the
// exporting engine's — and re-seeds the event stream's join table and the
// tracker's flagged set so a restored engine never re-announces what the
// checkpointed incarnation already published. Deltas carry complete
// per-entity state (a whole service record, a whole trail, a whole
// source's windows), so applying a baseline plus its delta chain in order
// is a plain upsert sequence; nothing in the data model is ever deleted.

import (
	"fmt"
	"sort"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/probe"
)

// EngineConfig fingerprints the engine shape a checkpoint was written
// from. A restore refuses a checkpoint whose campus or UDP port set does
// not match the target engine (the state would be silently wrong);
// Shards is informational only — restore redistributes by owner address,
// so the shard count may change across a restart.
type EngineConfig struct {
	Campus   string   `json:"campus"`
	UDPPorts []uint16 `json:"udp_ports,omitempty"`
	Shards   int      `json:"shards"`
	Hybrid   bool     `json:"hybrid,omitempty"`
}

// CheckpointCursor names the engine state an export covered: one
// generation per passive shard plus the active-side report generation.
// Feed it back to the next ExportDelta to receive only what changed.
type CheckpointCursor struct {
	Gens []uint64 `json:"gens"`
	Agen uint64   `json:"agen,omitempty"`
}

// ServiceState is one service's complete passive evidence in wire form:
// the record fields plus the full distinct-peer identity set that backs
// the client count (live-only state, absent from sealed views — without
// it a restored engine would re-count returning clients).
type ServiceState struct {
	Key        ServiceKey    `json:"key"`
	FirstSeen  time.Time     `json:"first_seen"`
	LastSeen   time.Time     `json:"last_seen,omitzero"`
	Flows      int           `json:"flows"`
	Clients    int           `json:"clients"`
	FirstPeers []PeerContact `json:"first_peers,omitempty"`
	Peers      []netaddr.V4  `json:"peers,omitempty"`
}

// TombState is one retention tombstone in wire form: the service retired
// by TTL expiry and the deadline that retired it. In a delta chain a tomb
// deletes any service imported by an earlier (or the same) delta; a
// ServiceState for the same key in the same delta re-creates it (the
// service expired and was reborn between checkpoints) — imports apply
// tombs first.
type TombState struct {
	Key ServiceKey `json:"key"`
	At  time.Time  `json:"at"`
}

// AddrTrail is one address's thinned activity-timestamp trail.
type AddrTrail struct {
	Addr  netaddr.V4  `json:"addr"`
	Times []time.Time `json:"times"`
}

// ScanWindowState is one tumbling detection window's contact sets.
type ScanWindowState struct {
	Index   int64        `json:"index"`
	Dsts    []netaddr.V4 `json:"dsts,omitempty"`
	RstDsts []netaddr.V4 `json:"rst_dsts,omitempty"`
}

// ScanSourceState is one external source's complete tracker state. The
// peak window and the flagged bit are NOT carried: both are recomputed on
// import from the window contents (the online and offline evaluation
// rules provably agree — see scanTracker.best).
type ScanSourceState struct {
	Source  netaddr.V4        `json:"source"`
	Windows []ScanWindowState `json:"windows"`
}

// ActiveServiceState is one probe-discovered service: first and most
// recent probe answer (Last empty in checkpoints written before
// last-answer tracking; restore falls back to At).
type ActiveServiceState struct {
	Key  ServiceKey `json:"key"`
	At   time.Time  `json:"at"`
	Last time.Time  `json:"last,omitzero"`
}

// AddrOutcomes is one address's full per-sweep outcome history.
type AddrOutcomes struct {
	Addr     netaddr.V4        `json:"addr"`
	Outcomes []AddrScanOutcome `json:"outcomes"`
}

// UDPPortState is one recorded generic-UDP probe outcome.
type UDPPortState struct {
	Port  uint16         `json:"port"`
	State probe.UDPState `json:"state"`
}

// AddrUDPState is one address's generic-UDP outcomes.
type AddrUDPState struct {
	Addr  netaddr.V4     `json:"addr"`
	Ports []UDPPortState `json:"ports"`
}

// ActiveState is the active discoverer's complete state. The active side
// is small next to the passive inventory (one entry per probed address,
// not per flow), so it is exported whole whenever any report was applied
// since the cursor, and a later export replaces an earlier one wholesale.
type ActiveState struct {
	Ports     []uint16             `json:"ports,omitempty"`
	Services  []ActiveServiceState `json:"services,omitempty"`
	Tombs     []TombState          `json:"tombs,omitempty"`
	Scans     []ScanMeta           `json:"scans,omitempty"`
	Outcomes  []AddrOutcomes       `json:"outcomes,omitempty"`
	Responded []netaddr.V4         `json:"responded,omitempty"`
	UDP       []AddrUDPState       `json:"udp,omitempty"`
}

// EngineDelta is everything one export captured: entity lists sorted for
// deterministic output, the cumulative packet count, and the detection-
// window origin. Full marks a baseline (every shard exported completely).
type EngineDelta struct {
	Full      bool
	Packets   int
	Origin    time.Time
	OriginSet bool

	Services    []ServiceState
	Trails      []AddrTrail
	Tombs       []TombState
	ScanSources []ScanSourceState
	Active      *ActiveState

	// Watermark is the observation clock at the capture point (the newest
	// packet timestamp dispatched). Restoring it keeps retention deadlines
	// meaningful across a restart: a restored engine expires exactly what
	// the uninterrupted run would have.
	Watermark time.Time

	// ShardsChanged and ShardsSkipped report export effort: skipped
	// shards had not applied a single batch since the cursor and were not
	// even walked — the number behind the "chunks skipped" metric.
	ShardsChanged int
	ShardsSkipped int
}

// shardExportReq asks one shard to copy out its state since gen `since`
// (everything, when full).
type shardExportReq struct {
	since uint64
	full  bool
	out   chan<- *shardExport
}

// shardExport is one shard's copy-out. All slices are either freshly
// copied or alias append-only storage below the captured length, so the
// caller may serialize them while the shard keeps ingesting.
type shardExport struct {
	gen       uint64
	packets   int
	origin    time.Time
	originSet bool
	skipped   bool
	full      bool
	services  []ServiceState
	trails    []AddrTrail
	tombs     []TombState
	scanSrcs  []ScanSourceState
}

// exportState runs on the shard's owner goroutine (worker marker, or the
// dispatcher inline/after shutdown): it may read the live maps freely.
// A full export switches the checkpoint dirty tracking on; every export
// clears it, handing responsibility for write failures to the caller
// (the Writer falls back to a full baseline after any failed checkpoint,
// since the cleared dirty sets are unrecoverable).
func (sh *passiveShard) exportState(req *shardExportReq) *shardExport {
	d := sh.disc
	ex := &shardExport{gen: sh.gen, packets: d.Packets}
	if d.track.started {
		ex.origin, ex.originSet = d.track.origin, true
	}
	full := req.full || d.ckDirty == nil
	if !full && sh.gen == req.since {
		// Not one batch applied since the cursor: nothing to copy. The
		// dirty sets are necessarily empty (every observe advances gen).
		ex.skipped = true
		return ex
	}
	ex.full = full
	if full {
		d.ckDirty = make(map[ServiceKey]struct{})
		d.ckDirtyAddrs = make(map[netaddr.V4]struct{})
		d.ckTombs = make(map[ServiceKey]time.Time)
		d.track.ckDirty = make(map[netaddr.V4]struct{})
		ex.services = make([]ServiceState, 0, len(d.services))
		for k := range d.services {
			ex.services = append(ex.services, d.exportService(k))
		}
		ex.trails = make([]AddrTrail, 0, len(d.addrTimes))
		for a, ts := range d.addrTimes {
			ex.trails = append(ex.trails, AddrTrail{Addr: a, Times: ts[:len(ts):len(ts)]})
		}
		ex.tombs = make([]TombState, 0, len(d.tombs))
		for k, at := range d.tombs {
			ex.tombs = append(ex.tombs, TombState{Key: k, At: at})
		}
		ex.scanSrcs = make([]ScanSourceState, 0, len(d.track.sources))
		for src := range d.track.sources {
			ex.scanSrcs = append(ex.scanSrcs, d.track.exportSource(src))
		}
		return ex
	}
	ex.services = make([]ServiceState, 0, len(d.ckDirty))
	for k := range d.ckDirty {
		ex.services = append(ex.services, d.exportService(k))
	}
	clear(d.ckDirty)
	ex.trails = make([]AddrTrail, 0, len(d.ckDirtyAddrs))
	for a := range d.ckDirtyAddrs {
		ts := d.addrTimes[a]
		ex.trails = append(ex.trails, AddrTrail{Addr: a, Times: ts[:len(ts):len(ts)]})
	}
	clear(d.ckDirtyAddrs)
	ex.tombs = make([]TombState, 0, len(d.ckTombs))
	for k, at := range d.ckTombs {
		ex.tombs = append(ex.tombs, TombState{Key: k, At: at})
	}
	clear(d.ckTombs)
	ex.scanSrcs = make([]ScanSourceState, 0, len(d.track.ckDirty))
	for src := range d.track.ckDirty {
		ex.scanSrcs = append(ex.scanSrcs, d.track.exportSource(src))
	}
	clear(d.track.ckDirty)
	return ex
}

// exportService copies one service's record and peer set into wire form.
// firstPeers and trails are append-only, so aliasing below the captured
// length is safe while ingest continues; the peer map is copied out.
func (d *PassiveDiscoverer) exportService(key ServiceKey) ServiceState {
	rec := d.services[key]
	peers := sortedV4Keys(d.peers[key])
	fp := rec.firstPeers
	return ServiceState{
		Key:        key,
		FirstSeen:  rec.FirstSeen,
		LastSeen:   rec.LastSeen,
		Flows:      rec.Flows,
		Clients:    rec.nClients,
		FirstPeers: fp[:len(fp):len(fp)],
		Peers:      peers,
	}
}

// importService installs one service wholesale (later deltas replace
// earlier state). Import happens before any ingest, so no dirty
// bookkeeping applies.
func (d *PassiveDiscoverer) importService(st *ServiceState) {
	last := st.LastSeen
	if last.IsZero() {
		// Checkpoint written before last-seen tracking: the first
		// observation is the only one on record.
		last = st.FirstSeen
	}
	d.services[st.Key] = &PassiveRecord{
		FirstSeen:  st.FirstSeen,
		LastSeen:   last,
		Flows:      st.Flows,
		nClients:   st.Clients,
		firstPeers: append([]PeerContact(nil), st.FirstPeers...),
		seal:       d.seals,
	}
	ps := make(map[netaddr.V4]struct{}, len(st.Peers))
	for _, p := range st.Peers {
		ps[p] = struct{}{}
	}
	d.peers[st.Key] = ps
	if d.ttl > 0 {
		d.expPush(last.Add(d.ttl), st.Key)
	}
}

// exportSource copies one source's window contents into wire form,
// windows ascending, contact sets sorted.
func (t *scanTracker) exportSource(src netaddr.V4) ScanSourceState {
	s := t.sources[src]
	st := ScanSourceState{Source: src, Windows: make([]ScanWindowState, 0, len(s.windows))}
	for idx, w := range s.windows {
		st.Windows = append(st.Windows, ScanWindowState{
			Index:   idx,
			Dsts:    sortedV4Keys(w.dsts),
			RstDsts: sortedV4Keys(w.rstDsts),
		})
	}
	sort.Slice(st.Windows, func(i, j int) bool { return st.Windows[i].Index < st.Windows[j].Index })
	return st
}

// importSource installs one source wholesale and recomputes its peak
// window and flagged bit offline. The offline rule — best (dsts, then
// rstDsts), earliest window on full ties — agrees with the online
// updateBest rule because counts within one window only grow, so the
// restored tracker's detect() output is identical to the uninterrupted
// run's, and a restored-then-resumed run flags each source at most once
// across incarnations.
func (t *scanTracker) importSource(ss *ScanSourceState) {
	windows := append([]ScanWindowState(nil), ss.Windows...)
	sort.Slice(windows, func(i, j int) bool { return windows[i].Index < windows[j].Index })
	src := &scanSource{windows: make(map[int64]*scanWindow, len(windows))}
	delete(t.best, ss.Source)
	qualified := false
	for _, ws := range windows {
		w := &scanWindow{
			dsts:    make(map[netaddr.V4]struct{}, len(ws.Dsts)),
			rstDsts: make(map[netaddr.V4]struct{}, len(ws.RstDsts)),
		}
		for _, a := range ws.Dsts {
			w.dsts[a] = struct{}{}
		}
		for _, a := range ws.RstDsts {
			w.rstDsts[a] = struct{}{}
		}
		src.windows[ws.Index] = w
		if len(w.dsts) < ScanDetectMinDsts || len(w.rstDsts) < ScanDetectMinRsts {
			continue
		}
		qualified = true
		cur, ok := t.best[ss.Source]
		if ok && (len(w.dsts) < cur.UniqueDsts ||
			(len(w.dsts) == cur.UniqueDsts && len(w.rstDsts) <= cur.RstDsts)) {
			continue
		}
		t.best[ss.Source] = ScannerInfo{
			Source:     ss.Source,
			Window:     t.origin.Add(time.Duration(ws.Index) * ScanDetectWindow),
			UniqueDsts: len(w.dsts),
			RstDsts:    len(w.rstDsts),
		}
	}
	t.sources[ss.Source] = src
	if qualified {
		if t.flagged == nil {
			t.flagged = make(map[netaddr.V4]bool)
		}
		t.flagged[ss.Source] = true
	}
	t.detGen++
}

// CheckpointConfig reports the engine's shape for manifest validation.
func (s *ShardedPassive) CheckpointConfig() EngineConfig {
	ports := make([]uint16, 0, len(s.shards[0].disc.udpPorts))
	for p := range s.shards[0].disc.udpPorts {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	return EngineConfig{Campus: s.campus.String(), UDPPorts: ports, Shards: len(s.shards)}
}

// ExportDelta captures the passive engine's state changed since cur (all
// of it when cur is nil — a baseline). The capture point is a whole-batch
// boundary of the producer's stream (marker-based, like Snapshot), safe
// to call at any lifecycle stage and concurrent with ingest. The returned
// cursor names the captured state; feed it to the next call.
func (s *ShardedPassive) ExportDelta(cur *CheckpointCursor) (*EngineDelta, CheckpointCursor) {
	ed, gens := s.exportShards(cur)
	return ed, CheckpointCursor{Gens: gens}
}

// exportShards scatters export markers (mirroring snapshotViews) and
// assembles the shard copy-outs into one delta.
func (s *ShardedPassive) exportShards(cur *CheckpointCursor) (*EngineDelta, []uint64) {
	full := cur == nil || len(cur.Gens) != len(s.shards)
	exports := make([]*shardExport, len(s.shards))

	s.dispatchMu.Lock()
	wm := s.watermark
	s.mu.RLock()
	if s.running && !s.closed {
		chans := make([]chan *shardExport, len(s.shards))
		for i := range s.shards {
			ch := make(chan *shardExport, 1)
			chans[i] = ch
			req := &shardExportReq{full: full, out: ch}
			if !full {
				req.since = cur.Gens[i]
			}
			s.queues[i] <- shardMsg{ckpt: req}
		}
		s.mu.RUnlock()
		s.dispatchMu.Unlock()
		for i, ch := range chans {
			exports[i] = <-ch
		}
	} else {
		s.mu.RUnlock()
		// Inline, or shut down: wait out any former workers so their
		// final writes are visible, then copy out directly.
		s.workers.Wait()
		for i, sh := range s.shards {
			req := &shardExportReq{full: full}
			if !full {
				req.since = cur.Gens[i]
			}
			exports[i] = sh.exportState(req)
		}
		s.dispatchMu.Unlock()
	}

	ed := &EngineDelta{Watermark: wm}
	gens := make([]uint64, len(exports))
	allFull := len(exports) > 0
	for i, ex := range exports {
		gens[i] = ex.gen
		ed.Packets += ex.packets
		if ex.originSet && !ed.OriginSet {
			ed.Origin, ed.OriginSet = ex.origin, true
		}
		if ex.skipped {
			ed.ShardsSkipped++
			allFull = false
			continue
		}
		ed.ShardsChanged++
		if !ex.full {
			allFull = false
		}
		ed.Services = append(ed.Services, ex.services...)
		ed.Trails = append(ed.Trails, ex.trails...)
		ed.Tombs = append(ed.Tombs, ex.tombs...)
		ed.ScanSources = append(ed.ScanSources, ex.scanSrcs...)
	}
	ed.Full = allFull
	sort.Slice(ed.Services, func(i, j int) bool { return ed.Services[i].Key.Before(ed.Services[j].Key) })
	sort.Slice(ed.Trails, func(i, j int) bool { return ed.Trails[i].Addr < ed.Trails[j].Addr })
	sort.Slice(ed.Tombs, func(i, j int) bool { return ed.Tombs[i].Key.Before(ed.Tombs[j].Key) })
	sort.Slice(ed.ScanSources, func(i, j int) bool { return ed.ScanSources[i].Source < ed.ScanSources[j].Source })
	return ed, gens
}

// checkFresh rejects import into an engine that has run or ingested:
// restore must rebuild state from zero, in chunk order, before any
// traffic — anything else could not be proven equivalent.
func (s *ShardedPassive) checkFresh() error {
	s.mu.RLock()
	running, closed := s.running, s.closed
	s.mu.RUnlock()
	if running || closed {
		return fmt.Errorf("core: checkpoint import requires a fresh engine (already running or closed)")
	}
	if s.dispatched.Load() != 0 || s.counters.In() != 0 {
		return fmt.Errorf("core: checkpoint import requires a fresh engine (packets already ingested)")
	}
	return nil
}

// ImportDelta applies one exported delta to a fresh engine, before Run
// and before any ingest; apply a baseline and its deltas in chain order.
// State is redistributed by owner address, so the shard count may differ
// from the exporting engine's. Single-goroutine, like pre-Run ingest.
func (s *ShardedPassive) ImportDelta(ed *EngineDelta) error {
	if err := s.checkFresh(); err != nil {
		return err
	}
	if ed.Active != nil {
		return fmt.Errorf("core: delta carries active-scan state; import it into a Hybrid engine")
	}
	s.importPassive(ed)
	return nil
}

func (s *ShardedPassive) importPassive(ed *EngineDelta) {
	if ed.OriginSet && !s.originSeeded {
		s.seedOrigins(ed.Origin)
	}
	// Tombs before service upserts: a delta carrying both a tomb and a
	// record for one key means the service expired and was then reborn —
	// the tomb retires the earlier incarnation, the upsert re-creates it.
	for i := range ed.Tombs {
		tb := &ed.Tombs[i]
		d := s.shards[s.shardOf(tb.Key.Addr)].disc
		if _, live := d.services[tb.Key]; live {
			delete(d.services, tb.Key)
			delete(d.peers, tb.Key)
			s.events.retirePassive(tb.Key)
		}
		if cur, ok := d.tombs[tb.Key]; !ok || tb.At.After(cur) {
			d.tombs[tb.Key] = tb.At
		}
	}
	if ed.Watermark.After(s.watermark) {
		s.watermark = ed.Watermark
	}
	for i := range ed.Services {
		st := &ed.Services[i]
		s.shards[s.shardOf(st.Key.Addr)].disc.importService(st)
		s.events.seedPassive(st.Key, st.FirstSeen)
	}
	for i := range ed.Trails {
		tr := &ed.Trails[i]
		s.shards[s.shardOf(tr.Addr)].disc.addrTimes[tr.Addr] = append([]time.Time(nil), tr.Times...)
	}
	for i := range ed.ScanSources {
		ss := &ed.ScanSources[i]
		s.shards[s.shardOf(ss.Source)].disc.track.importSource(ss)
	}
	// The cumulative packet count is attributed to shard 0 wholesale:
	// per-shard attribution is unobservable (every merge sums), and the
	// importing engine's shardOf may differ from the exporter's anyway.
	for i, sh := range s.shards {
		if i == 0 {
			sh.disc.Packets = ed.Packets
		} else {
			sh.disc.Packets = 0
		}
		sh.view = nil
		sh.deltas = nil
	}
	s.snap.invalidate()
}

// CheckpointConfig reports the hybrid engine's shape.
func (h *Hybrid) CheckpointConfig() EngineConfig {
	c := h.passive.CheckpointConfig()
	c.Hybrid = true
	return c
}

// ExportDelta captures the hybrid engine's state changed since cur: the
// passive side at a whole-batch boundary, the active side at its current
// report generation (exported whole whenever any report was applied —
// the same capture looseness Snapshot has, harmless because active
// ingestion is order-independent).
func (h *Hybrid) ExportDelta(cur *CheckpointCursor) (*EngineDelta, CheckpointCursor) {
	ed, gens := h.passive.exportShards(cur)
	av := h.activeSnapshot()
	var curAgen uint64
	if cur != nil {
		curAgen = cur.Agen
	}
	if av.gen != curAgen {
		ed.Active = exportActiveState(av.disc)
	}
	return ed, CheckpointCursor{Gens: gens, Agen: av.gen}
}

// ImportDelta applies one exported delta to a fresh hybrid engine (see
// ShardedPassive.ImportDelta for the contract).
func (h *Hybrid) ImportDelta(ed *EngineDelta) error {
	h.mu.RLock()
	running, closed := h.running, h.closed
	h.mu.RUnlock()
	if running || closed {
		return fmt.Errorf("core: checkpoint import requires a fresh engine (already running or closed)")
	}
	if err := h.passive.checkFresh(); err != nil {
		return err
	}
	h.passive.importPassive(ed)
	if ed.Active != nil {
		h.importActiveState(ed.Active)
	}
	return nil
}

// exportActiveState copies a frozen active view into wire form, every
// list sorted. Slices alias the sealed clone's storage where immutability
// allows (outcome histories are copy-on-write protected, Open lists are
// write-once), so the copy is O(entries), not O(bytes).
func exportActiveState(d *ActiveDiscoverer) *ActiveState {
	as := &ActiveState{
		Ports:     append([]uint16(nil), d.ports...),
		Scans:     append([]ScanMeta(nil), d.scans...),
		Responded: d.respondedEver.Sorted(),
	}
	as.Services = make([]ActiveServiceState, 0, len(d.firstOpen))
	for k, t := range d.firstOpen {
		as.Services = append(as.Services, ActiveServiceState{Key: k, At: t, Last: d.lastOpen[k]})
	}
	sort.Slice(as.Services, func(i, j int) bool { return as.Services[i].Key.Before(as.Services[j].Key) })
	as.Tombs = make([]TombState, 0, len(d.tombs))
	for k, at := range d.tombs {
		as.Tombs = append(as.Tombs, TombState{Key: k, At: at})
	}
	sort.Slice(as.Tombs, func(i, j int) bool { return as.Tombs[i].Key.Before(as.Tombs[j].Key) })
	as.Outcomes = make([]AddrOutcomes, 0, len(d.perAddr))
	for a, outs := range d.perAddr {
		as.Outcomes = append(as.Outcomes, AddrOutcomes{Addr: a, Outcomes: outs[:len(outs):len(outs)]})
	}
	sort.Slice(as.Outcomes, func(i, j int) bool { return as.Outcomes[i].Addr < as.Outcomes[j].Addr })
	as.UDP = make([]AddrUDPState, 0, len(d.udp))
	for a, m := range d.udp {
		ports := make([]UDPPortState, 0, len(m))
		for p, st := range m {
			ports = append(ports, UDPPortState{Port: p, State: st})
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].Port < ports[j].Port })
		as.UDP = append(as.UDP, AddrUDPState{Addr: a, Ports: ports})
	}
	sort.Slice(as.UDP, func(i, j int) bool { return as.UDP[i].Addr < as.UDP[j].Addr })
	return as
}

// importActiveState replaces the active side wholesale (each export
// carries the complete state) and re-seeds the event join table.
func (h *Hybrid) importActiveState(as *ActiveState) {
	h.amu.Lock()
	a := h.active
	a.ports = append([]uint16(nil), as.Ports...)
	a.scans = append([]ScanMeta(nil), as.Scans...)
	a.firstOpen = make(map[ServiceKey]time.Time, len(as.Services))
	a.lastOpen = make(map[ServiceKey]time.Time, len(as.Services))
	for _, svc := range as.Services {
		a.firstOpen[svc.Key] = svc.At
		last := svc.Last
		if last.IsZero() {
			last = svc.At
		}
		a.lastOpen[svc.Key] = last
	}
	a.tombs = make(map[ServiceKey]time.Time, len(as.Tombs))
	for _, tb := range as.Tombs {
		a.tombs[tb.Key] = tb.At
	}
	a.perAddr = make(map[netaddr.V4][]AddrScanOutcome, len(as.Outcomes))
	for _, ao := range as.Outcomes {
		a.perAddr[ao.Addr] = append([]AddrScanOutcome(nil), ao.Outcomes...)
	}
	a.respondedEver = netaddr.NewSet(as.Responded...)
	a.udp = make(map[netaddr.V4]map[uint16]probe.UDPState, len(as.UDP))
	for _, au := range as.UDP {
		m := make(map[uint16]probe.UDPState, len(au.Ports))
		for _, ps := range au.Ports {
			m[ps.Port] = ps.State
		}
		a.udp[au.Addr] = m
	}
	a.cow, a.ownedAddr, a.ownedUDP = false, nil, nil
	h.aview = nil
	h.agen.Add(1)
	h.seenReports.Store(true)
	h.amu.Unlock()
	for _, svc := range as.Services {
		h.passive.events.seedActive(svc.Key, svc.At)
	}
}

// sortedV4Keys renders a V4 key set as a sorted slice. The generic
// signature covers both struct{}-valued set shapes used in the engine.
func sortedV4Keys[V any](m map[netaddr.V4]V) []netaddr.V4 {
	if len(m) == 0 {
		return nil
	}
	out := make([]netaddr.V4, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
