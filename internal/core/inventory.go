package core

import (
	"time"

	"servdisc/internal/netaddr"
)

// Inventory is a frozen, read-only view of a passive discovery run: the
// service records, detected scanners, and roll-up queries, with keys and
// scanner lists precomputed in deterministic order. An Inventory never
// mutates after construction, so it is safe to share across goroutines —
// the form live-query endpoints and the servdisc facade hand out.
type Inventory struct {
	d        *PassiveDiscoverer
	keys     []ServiceKey
	scanners []ScannerInfo
}

// NewInventory freezes the discoverer's current state. The discoverer must
// not ingest further traffic afterwards (Snapshot on ShardedPassive and
// the servdisc facade enforce this by construction).
func NewInventory(d *PassiveDiscoverer) *Inventory {
	return &Inventory{d: d, keys: d.Keys(), scanners: d.DetectScanners()}
}

// Snapshot freezes a plain discoverer into a read-only inventory, the
// single-threaded counterpart of ShardedPassive.Snapshot.
func (d *PassiveDiscoverer) Snapshot() *Inventory { return NewInventory(d) }

// Len returns the number of discovered services.
func (v *Inventory) Len() int { return len(v.keys) }

// Packets returns how many packets the underlying run consumed.
func (v *Inventory) Packets() int { return v.d.Packets }

// Keys returns all discovered services in deterministic (addr, proto,
// port) order. The slice is owned by the inventory: do not modify.
func (v *Inventory) Keys() []ServiceKey { return v.keys }

// Record returns the record for one service, if present. Treat the record
// as read-only.
func (v *Inventory) Record(key ServiceKey) (*PassiveRecord, bool) { return v.d.Record(key) }

// Scanners returns the detected scanners, sorted by source address.
func (v *Inventory) Scanners() []ScannerInfo { return v.scanners }

// ScannerSet returns detected scanner sources as a membership map (a
// fresh map per call; the caller may modify it).
func (v *Inventory) ScannerSet() map[netaddr.V4]bool {
	out := make(map[netaddr.V4]bool, len(v.scanners))
	for _, s := range v.scanners {
		out[s.Source] = true
	}
	return out
}

// AddrFirstSeen rolls the inventory up to addresses: earliest positive
// evidence per address, optionally restricted to services passing keep.
func (v *Inventory) AddrFirstSeen(keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	return v.d.AddrFirstSeen(keep)
}

// AddrFirstSeenExcluding recomputes per-address first discovery with the
// given peers' traffic removed (Figure 4).
func (v *Inventory) AddrFirstSeenExcluding(excluded map[netaddr.V4]bool, keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	return v.d.AddrFirstSeenExcluding(excluded, keep)
}

// AddrWeights sums flow and client weights per address across services.
func (v *Inventory) AddrWeights() (flows, clients map[netaddr.V4]int) {
	return v.d.AddrWeights()
}

// ActiveDuring reports whether the address showed any passive activity
// within [from, to].
func (v *Inventory) ActiveDuring(addr netaddr.V4, from, to time.Time) bool {
	return v.d.ActiveDuring(addr, from, to)
}

// LastActivity returns the most recent recorded activity time for the
// address, ok=false if it was never seen.
func (v *Inventory) LastActivity(addr netaddr.V4) (time.Time, bool) {
	return v.d.LastActivity(addr)
}
