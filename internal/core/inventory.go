package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"servdisc/internal/netaddr"
)

// Provenance classifies how a service entered a hybrid inventory: which
// discovery technique found it, and which got there first when both did —
// the axis of the paper's passive-vs-active comparison tables.
type Provenance uint8

// Provenance classes.
const (
	// PassiveOnly: seen in border traffic, never answered a probe (the
	// paper's "passive finds servers probing misses": firewalled services,
	// servers down at scan time, transient addresses).
	PassiveOnly Provenance = iota
	// ActiveOnly: answered a probe but generated no observed traffic
	// (idle or unpopular services, Section 3.3).
	ActiveOnly
	// PassiveFirst: found by both, passive monitoring saw it no later
	// than the first successful probe.
	PassiveFirst
	// ActiveFirst: found by both, a probe answered before any passive
	// evidence arrived.
	ActiveFirst
)

// provenanceNames are the stable wire names of the provenance classes
// (see eventKindNames for the rationale).
var provenanceNames = [...]string{
	PassiveOnly:  "passive-only",
	ActiveOnly:   "active-only",
	PassiveFirst: "passive-first",
	ActiveFirst:  "active-first",
}

// String names the provenance class (the same stable names MarshalText
// uses).
func (p Provenance) String() string {
	if int(p) < len(provenanceNames) {
		return provenanceNames[p]
	}
	return fmt.Sprintf("provenance(%d)", uint8(p))
}

// MarshalText serializes the class as its stable string name.
func (p Provenance) MarshalText() ([]byte, error) {
	if int(p) < len(provenanceNames) {
		return []byte(provenanceNames[p]), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown provenance %d", uint8(p))
}

// UnmarshalText parses the names written by MarshalText.
func (p *Provenance) UnmarshalText(text []byte) error {
	s := string(text)
	for i, name := range provenanceNames {
		if s == name {
			*p = Provenance(i)
			return nil
		}
	}
	return fmt.Errorf("core: unknown provenance %q", s)
}

// Inventory is a frozen, read-only view of a discovery run: the service
// records, detected scanners, and roll-up queries, with keys and scanner
// lists precomputed in deterministic order. An Inventory never mutates
// after construction, so it is safe to share across goroutines — the form
// live-query endpoints and the servdisc facade hand out.
//
// A passive-only inventory (NewInventory) covers what monitoring saw. A
// hybrid inventory (NewHybridInventory, or Hybrid.Snapshot) additionally
// folds in active sweep results: Keys becomes the union of both sides and
// each key carries a Provenance.
type Inventory struct {
	d      invSource
	active *ActiveDiscoverer // nil for passive-only inventories
	keys   []ServiceKey
	// prov classifies each key (hybrid inventories only; the zero pmap for
	// passive-only ones). A persistent map, so a patched-forward inventory
	// shares all unchanged classifications with its predecessor.
	prov     pmap[ServiceKey, Provenance]
	scanners []ScannerInfo
}

// NewInventory freezes the discoverer's current state. The discoverer must
// not ingest further traffic afterwards (ShardedPassive.Snapshot avoids
// the restriction entirely by snapshotting frozen shard clones).
func NewInventory(d *PassiveDiscoverer) *Inventory {
	return newFrozenInventory(d, d.DetectScanners())
}

// newFrozenInventory wraps an already-frozen passive source and a
// precomputed scanner list — the constructor behind live snapshots, where
// detection ran per shard at freeze time and the merged source carries no
// tracker state.
func newFrozenInventory(src invSource, scanners []ScannerInfo) *Inventory {
	return &Inventory{d: src, keys: sortedServiceKeys(src), scanners: scanners}
}

// sortedServiceKeys lists a source's live services in canonical order.
func sortedServiceKeys(src invSource) []ServiceKey {
	keys := make([]ServiceKey, 0, src.numServices())
	src.eachService(func(k ServiceKey, _ *PassiveRecord) bool {
		keys = append(keys, k)
		return true
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
	return keys
}

// NewHybridInventory freezes the union of a passive and an active run into
// one inventory with per-service provenance. Neither discoverer may ingest
// further input afterwards (Hybrid.Snapshot avoids the restriction by
// handing in frozen clones; see also NewInventory).
func NewHybridInventory(d *PassiveDiscoverer, a *ActiveDiscoverer) *Inventory {
	return newFrozenHybridInventory(d, a, d.DetectScanners())
}

// newFrozenHybridInventory is NewHybridInventory with the scanner list
// precomputed (the live-snapshot path).
func newFrozenHybridInventory(src invSource, a *ActiveDiscoverer, scanners []ScannerInfo) *Inventory {
	v := &Inventory{d: src, active: a, scanners: scanners}
	pb := newPmap[ServiceKey, Provenance](hashServiceKey).builder()
	v.keys = make([]ServiceKey, 0, src.numServices()+len(a.firstOpen))
	src.eachService(func(key ServiceKey, rec *PassiveRecord) bool {
		pb.Set(key, classify(rec, a, key))
		v.keys = append(v.keys, key)
		return true
	})
	for key := range a.firstOpen {
		if _, seen := pb.Get(key); !seen {
			pb.Set(key, ActiveOnly)
			v.keys = append(v.keys, key)
		}
	}
	v.prov = pb.freeze()
	sort.Slice(v.keys, func(i, j int) bool { return v.keys[i].Before(v.keys[j]) })
	return v
}

// classify computes one passively-seen service's provenance against the
// active side.
func classify(rec *PassiveRecord, a *ActiveDiscoverer, key ServiceKey) Provenance {
	if at, ok := a.firstOpen[key]; ok {
		if at.Before(rec.FirstSeen) {
			return ActiveFirst
		}
		return PassiveFirst
	}
	return PassiveOnly
}

// patchHybridInventory derives a hybrid inventory from prev when only the
// passive side moved: src is the delta-patched passive union, a the
// unchanged frozen active view prev was classified against, newKeys the
// passive services that appeared (or were reborn with a new FirstSeen)
// since prev, and delKeys the passive services that expired since prev
// (both sorted). Untouched services keep their provenance — their record's
// FirstSeen is unchanged and the active side is the same view — so only
// the named keys are reclassified, as persistent-map patches over prev's
// table; with no changes at all the key and provenance tables are shared
// outright. An expired key with surviving active evidence downgrades to
// ActiveOnly rather than leaving the inventory.
//
// The extra returns feed snapshot observers: removed is the subset of
// delKeys that actually left the inventory, downgraded the subset that
// stayed as ActiveOnly (both sorted).
func patchHybridInventory(prev *Inventory, src invSource, a *ActiveDiscoverer, scanners []ScannerInfo, newKeys, delKeys []ServiceKey) (v *Inventory, removed, downgraded []ServiceKey) {
	v = &Inventory{d: src, active: a, scanners: scanners}
	if len(newKeys) == 0 && len(delKeys) == 0 {
		v.prov, v.keys = prev.prov, prev.keys
		return v, nil, nil
	}
	pb := prev.prov.builder()
	var add []ServiceKey
	for _, k := range newKeys {
		if _, seen := prev.prov.Get(k); !seen {
			add = append(add, k)
		}
		rec, _ := src.Record(k)
		pb.Set(k, classify(rec, a, k))
	}
	for _, k := range delKeys {
		if _, probed := a.firstOpen[k]; probed {
			pb.Set(k, ActiveOnly) // passive evidence withdrawn, probe answer stands
			downgraded = append(downgraded, k)
		} else {
			pb.Delete(k)
			removed = append(removed, k)
		}
	}
	v.prov = pb.freeze()
	v.keys = removeSortedKeys(mergeSortedKeys(prev.keys, add), removed)
	return v, removed, downgraded
}

// Snapshot freezes a plain discoverer into a read-only inventory, the
// single-threaded counterpart of ShardedPassive.Snapshot.
func (d *PassiveDiscoverer) Snapshot() *Inventory { return NewInventory(d) }

// Len returns the number of discovered services (both sides in a hybrid
// inventory).
func (v *Inventory) Len() int { return len(v.keys) }

// Packets returns how many packets the underlying passive run consumed.
func (v *Inventory) Packets() int { return v.d.NumPackets() }

// Hybrid reports whether the inventory carries an active side.
func (v *Inventory) Hybrid() bool { return v.active != nil }

// Keys returns all discovered services in deterministic (addr, proto,
// port) order. The slice is owned by the inventory: do not modify.
func (v *Inventory) Keys() []ServiceKey { return v.keys }

// Record returns the passive record for one service, if passive monitoring
// saw it (ok is false for active-only services). Treat the record as
// read-only.
func (v *Inventory) Record(key ServiceKey) (*PassiveRecord, bool) { return v.d.Record(key) }

// Provenance classifies one service. ok is false if the key is not in the
// inventory. On a passive-only inventory every present key is PassiveOnly.
func (v *Inventory) Provenance(key ServiceKey) (Provenance, bool) {
	if v.active == nil {
		_, ok := v.d.Record(key)
		return PassiveOnly, ok
	}
	return v.prov.Get(key)
}

// EachTombstone visits every retention tombstone — services withdrawn by
// TTL expiry, with their expiry deadline and the evidence kind withdrawn
// (PassiveOnly or ActiveOnly) — until f returns false. Federation snapshot
// frames carry these so late-connecting aggregators withdraw expired state
// too.
func (v *Inventory) EachTombstone(f func(key ServiceKey, at time.Time, prov Provenance) bool) {
	stopped := false
	v.d.eachTombstone(func(k ServiceKey, at time.Time) bool {
		if !f(k, at, PassiveOnly) {
			stopped = true
		}
		return !stopped
	})
	if stopped || v.active == nil {
		return
	}
	for k, at := range v.active.tombs {
		if !f(k, at, ActiveOnly) {
			return
		}
	}
}

// ProvenanceCounts tallies services per provenance class, indexed by the
// Provenance constants.
func (v *Inventory) ProvenanceCounts() [4]int {
	var out [4]int
	for _, key := range v.keys {
		p, _ := v.Provenance(key)
		out[p]++
	}
	return out
}

// FirstDiscovered returns the earliest discovery time for the service by
// either technique, ok=false if the key is not in the inventory.
func (v *Inventory) FirstDiscovered(key ServiceKey) (time.Time, bool) {
	rec, pok := v.d.Record(key)
	var at time.Time
	var aok bool
	if v.active != nil {
		at, aok = v.active.FirstOpen(key)
	}
	switch {
	case pok && aok:
		if at.Before(rec.FirstSeen) {
			return at, true
		}
		return rec.FirstSeen, true
	case pok:
		return rec.FirstSeen, true
	case aok:
		return at, true
	}
	return time.Time{}, false
}

// ActiveFirstOpen returns when the service first answered a probe, ok=false
// for passive-only inventories or never-probed services.
func (v *Inventory) ActiveFirstOpen(key ServiceKey) (time.Time, bool) {
	if v.active == nil {
		return time.Time{}, false
	}
	return v.active.FirstOpen(key)
}

// Scans returns the active side's sweep metadata in start order (nil for
// passive-only inventories). The slice is owned by the inventory.
func (v *Inventory) Scans() []ScanMeta {
	if v.active == nil {
		return nil
	}
	return v.active.Scans()
}

// Scanners returns the detected scanners, sorted by source address.
func (v *Inventory) Scanners() []ScannerInfo { return v.scanners }

// ScannerSet returns detected scanner sources as a membership map (a
// fresh map per call; the caller may modify it).
func (v *Inventory) ScannerSet() map[netaddr.V4]bool {
	out := make(map[netaddr.V4]bool, len(v.scanners))
	for _, s := range v.scanners {
		out[s.Source] = true
	}
	return out
}

// AddrFirstSeen rolls the passive inventory up to addresses: earliest
// positive evidence per address, optionally restricted to services passing
// keep.
func (v *Inventory) AddrFirstSeen(keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	return v.d.AddrFirstSeen(keep)
}

// AddrFirstSeenExcluding recomputes per-address first discovery with the
// given peers' traffic removed (Figure 4).
func (v *Inventory) AddrFirstSeenExcluding(excluded map[netaddr.V4]bool, keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	return v.d.AddrFirstSeenExcluding(excluded, keep)
}

// AddrWeights sums flow and client weights per address across services.
func (v *Inventory) AddrWeights() (flows, clients map[netaddr.V4]int) {
	return v.d.AddrWeights()
}

// ActiveDuring reports whether the address showed any passive activity
// within [from, to].
func (v *Inventory) ActiveDuring(addr netaddr.V4, from, to time.Time) bool {
	return v.d.ActiveDuring(addr, from, to)
}

// LastActivity returns the most recent recorded passive activity time for
// the address, ok=false if it was never seen.
func (v *Inventory) LastActivity(addr netaddr.V4) (time.Time, bool) {
	return v.d.LastActivity(addr)
}

// Dump renders the inventory into a canonical byte form: every service in
// key order with its provenance, discovery times and passive weights, then
// the scanner list and sweep metadata. Two inventories built from the same
// observations serialize identically — the property the hybrid determinism
// tests pin down — and the text doubles as a human-readable report for the
// command-line tools.
func (v *Inventory) Dump() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "services=%d packets=%d\n", len(v.keys), v.d.NumPackets())
	for _, key := range v.keys {
		p, _ := v.Provenance(key)
		fmt.Fprintf(&b, "%s %s", key, p)
		if rec, ok := v.d.Record(key); ok {
			fmt.Fprintf(&b, " passive=%s flows=%d clients=%d",
				rec.FirstSeen.UTC().Format(time.RFC3339Nano), rec.Flows, rec.Clients())
		}
		if at, ok := v.ActiveFirstOpen(key); ok {
			fmt.Fprintf(&b, " active=%s", at.UTC().Format(time.RFC3339Nano))
		}
		b.WriteByte('\n')
	}
	for _, s := range v.scanners {
		fmt.Fprintf(&b, "scanner %s window=%s dsts=%d rsts=%d\n", s.Source,
			s.Window.UTC().Format(time.RFC3339Nano), s.UniqueDsts, s.RstDsts)
	}
	for _, m := range v.Scans() {
		fmt.Fprintf(&b, "sweep %d %s..%s\n", m.ID,
			m.Started.UTC().Format(time.RFC3339Nano), m.Finished.UTC().Format(time.RFC3339Nano))
	}
	return b.Bytes()
}
