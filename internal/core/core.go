// Package core implements the paper's primary contribution: passive and
// active service discovery and the analysis that compares them.
//
// The passive side (PassiveDiscoverer) consumes border packets from a
// capture tap and accumulates evidence: a campus host sourcing a SYN-ACK is
// running a TCP service; a campus host sourcing UDP from a well-known port
// is running a UDP service (Section 3.2). It simultaneously tracks external
// sources well enough to detect address-space scans by the paper's rule —
// 100+ unique destinations with 100+ RST responses within a 12-hour window
// (Section 4.3) — and to recompute discovery as if scan traffic were absent.
//
// The active side (ActiveDiscoverer) consumes probe sweep reports and keeps
// the full per-address, per-scan outcome matrix, enabling the firewall
// confirmation heuristics of Section 4.2.4 and the time-of-day analyses of
// Section 5.1.
//
// Analysis (analysis.go) joins the two into the tables and figures of the
// evaluation: completeness matrices, weighted and unweighted discovery
// curves, and the address categorizations of Tables 3 and 4.
package core

import (
	"fmt"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// ServiceKey identifies one discoverable service: an address, transport
// protocol, and port. It serializes with the address and protocol as
// strings (see netaddr.V4.MarshalText, packet.IPProtocol.MarshalText), the
// form event feeds and the federation wire carry.
type ServiceKey struct {
	Addr  netaddr.V4        `json:"addr"`
	Proto packet.IPProtocol `json:"proto"`
	Port  uint16            `json:"port"`
}

// String renders "addr:port/proto".
func (k ServiceKey) String() string {
	return fmt.Sprintf("%s:%d/%s", k.Addr, k.Port, k.Proto)
}

// Before reports whether k orders before other in the canonical (addr,
// proto, port) ordering — the one ordering behind every deterministic key
// listing and dump, from Inventory.Keys to the federation aggregator.
func (k ServiceKey) Before(other ServiceKey) bool {
	if k.Addr != other.Addr {
		return k.Addr < other.Addr
	}
	if k.Proto != other.Proto {
		return k.Proto < other.Proto
	}
	return k.Port < other.Port
}

// PeerContact is the first contact from one distinct peer to a service.
// The JSON tags define the checkpoint wire form (see export.go).
type PeerContact struct {
	Peer netaddr.V4 `json:"peer"`
	Time time.Time  `json:"time"`
}

// PassiveRecord accumulates everything passive monitoring learns about one
// service. The record itself is a small flat value so that the snapshot
// machinery's copy-on-write clones are cheap: the peer-identity set that
// backs nClients lives in the owning discoverer's live-only side table
// (PassiveDiscoverer.peers), never in the record, and firstPeers is
// append-only so clones share its backing array instead of copying it.
type PassiveRecord struct {
	// FirstSeen is when the first positive evidence arrived.
	FirstSeen time.Time
	// LastSeen is when the most recent positive evidence arrived — the
	// timestamp retention deadlines are computed from (LastSeen + TTL).
	LastSeen time.Time
	// Flows counts completed connection evidence (SYN-ACKs for TCP,
	// server-sourced datagrams for UDP) — the flow weight of Figure 1.
	Flows int
	// nClients counts distinct peer addresses — the client weight.
	nClients int
	// firstPeers stores the first contact from each of the first
	// maxFirstPeers distinct peers, enough to recompute first-discovery
	// with any subset of peers (e.g. scanners) removed. Strictly
	// append-only: sealed copies alias the backing array.
	firstPeers []PeerContact
	// seal is the owning discoverer's seal count when the record was
	// created or last copied for writing. A record whose seal is behind
	// the discoverer's is shared with sealed snapshot views and must be
	// cloned before the next mutation (copy-on-write; see
	// PassiveDiscoverer.sealView).
	seal uint64
}

// maxFirstPeers bounds per-service peer history. The scan-removal analysis
// only needs the first non-scanner peer; there are at most a few dozen
// scanner sources in any dataset, so 128 distinct peers always include a
// non-scanner if one ever contacted the service.
const maxFirstPeers = 128

// Clients returns the number of distinct peers observed.
func (r *PassiveRecord) Clients() int { return r.nClients }

// cloneForWrite copies the record so the original can be retained by
// sealed snapshot views while the copy keeps mutating — the first-write
// half of the copy-on-write protocol. The copy is flat: firstPeers is
// append-only, so the clone shares its backing array (the sealed
// original's header never observes elements past its own length). The
// clone is stamped with the current seal so later writes in the same
// seal epoch mutate it in place.
func (r *PassiveRecord) cloneForWrite(seal uint64) *PassiveRecord {
	return &PassiveRecord{
		FirstSeen:  r.FirstSeen,
		LastSeen:   r.LastSeen,
		Flows:      r.Flows,
		nClients:   r.nClients,
		firstPeers: r.firstPeers,
		seal:       seal,
	}
}

// FirstPeers exposes the bounded peer history (owned by the record).
func (r *PassiveRecord) FirstPeers() []PeerContact { return r.firstPeers }

// FirstSeenExcluding returns the earliest contact from a peer not in the
// excluded set, and ok=false if every stored peer is excluded.
func (r *PassiveRecord) FirstSeenExcluding(excluded map[netaddr.V4]bool) (time.Time, bool) {
	for _, pc := range r.firstPeers {
		if !excluded[pc.Peer] {
			return pc.Time, true
		}
	}
	return time.Time{}, false
}

// observe folds one piece of evidence into the record. newPeer reports
// whether the discoverer's peer-identity side table saw this peer for the
// first time (the dedup the record itself no longer carries).
func (r *PassiveRecord) observe(t time.Time, peer netaddr.V4, newPeer bool) {
	r.Flows++
	if t.After(r.LastSeen) {
		r.LastSeen = t
	}
	if newPeer {
		r.nClients++
		if len(r.firstPeers) < maxFirstPeers {
			r.firstPeers = append(r.firstPeers, PeerContact{Peer: peer, Time: t})
		}
	}
}
