// Package core implements the paper's primary contribution: passive and
// active service discovery and the analysis that compares them.
//
// The passive side (PassiveDiscoverer) consumes border packets from a
// capture tap and accumulates evidence: a campus host sourcing a SYN-ACK is
// running a TCP service; a campus host sourcing UDP from a well-known port
// is running a UDP service (Section 3.2). It simultaneously tracks external
// sources well enough to detect address-space scans by the paper's rule —
// 100+ unique destinations with 100+ RST responses within a 12-hour window
// (Section 4.3) — and to recompute discovery as if scan traffic were absent.
//
// The active side (ActiveDiscoverer) consumes probe sweep reports and keeps
// the full per-address, per-scan outcome matrix, enabling the firewall
// confirmation heuristics of Section 4.2.4 and the time-of-day analyses of
// Section 5.1.
//
// Analysis (analysis.go) joins the two into the tables and figures of the
// evaluation: completeness matrices, weighted and unweighted discovery
// curves, and the address categorizations of Tables 3 and 4.
package core

import (
	"fmt"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// ServiceKey identifies one discoverable service: an address, transport
// protocol, and port. It serializes with the address and protocol as
// strings (see netaddr.V4.MarshalText, packet.IPProtocol.MarshalText), the
// form event feeds and the federation wire carry.
type ServiceKey struct {
	Addr  netaddr.V4        `json:"addr"`
	Proto packet.IPProtocol `json:"proto"`
	Port  uint16            `json:"port"`
}

// String renders "addr:port/proto".
func (k ServiceKey) String() string {
	return fmt.Sprintf("%s:%d/%s", k.Addr, k.Port, k.Proto)
}

// Before reports whether k orders before other in the canonical (addr,
// proto, port) ordering — the one ordering behind every deterministic key
// listing and dump, from Inventory.Keys to the federation aggregator.
func (k ServiceKey) Before(other ServiceKey) bool {
	if k.Addr != other.Addr {
		return k.Addr < other.Addr
	}
	if k.Proto != other.Proto {
		return k.Proto < other.Proto
	}
	return k.Port < other.Port
}

// PeerContact is the first contact from one distinct peer to a service.
type PeerContact struct {
	Peer netaddr.V4
	Time time.Time
}

// PassiveRecord accumulates everything passive monitoring learns about one
// service.
type PassiveRecord struct {
	// FirstSeen is when the first positive evidence arrived.
	FirstSeen time.Time
	// Flows counts completed connection evidence (SYN-ACKs for TCP,
	// server-sourced datagrams for UDP) — the flow weight of Figure 1.
	Flows int
	// clients holds distinct peer addresses — the client weight. Frozen
	// copies (cloneFrozen) drop the map and keep only nClients.
	clients map[netaddr.V4]struct{}
	// nClients preserves the distinct-peer count on frozen copies, whose
	// clients map is nil.
	nClients int
	// firstPeers stores the first contact from each of the first
	// maxFirstPeers distinct peers, enough to recompute first-discovery
	// with any subset of peers (e.g. scanners) removed.
	firstPeers []PeerContact
}

// maxFirstPeers bounds per-service peer history. The scan-removal analysis
// only needs the first non-scanner peer; there are at most a few dozen
// scanner sources in any dataset, so 128 distinct peers always include a
// non-scanner if one ever contacted the service.
const maxFirstPeers = 128

// Clients returns the number of distinct peers observed.
func (r *PassiveRecord) Clients() int {
	if r.clients == nil {
		return r.nClients
	}
	return len(r.clients)
}

// cloneFrozen copies the record into a read-only form that later ingestion
// into the original cannot disturb: the peer-identity map is reduced to
// its count and the first-peer history is copied. Frozen records back the
// live-snapshot machinery (ShardedPassive.Snapshot) and must never be fed
// back into observe.
func (r *PassiveRecord) cloneFrozen() *PassiveRecord {
	return &PassiveRecord{
		FirstSeen:  r.FirstSeen,
		Flows:      r.Flows,
		nClients:   len(r.clients),
		firstPeers: append([]PeerContact(nil), r.firstPeers...),
	}
}

// FirstPeers exposes the bounded peer history (owned by the record).
func (r *PassiveRecord) FirstPeers() []PeerContact { return r.firstPeers }

// FirstSeenExcluding returns the earliest contact from a peer not in the
// excluded set, and ok=false if every stored peer is excluded.
func (r *PassiveRecord) FirstSeenExcluding(excluded map[netaddr.V4]bool) (time.Time, bool) {
	for _, pc := range r.firstPeers {
		if !excluded[pc.Peer] {
			return pc.Time, true
		}
	}
	return time.Time{}, false
}

func (r *PassiveRecord) observe(t time.Time, peer netaddr.V4) {
	if r.clients == nil {
		r.clients = make(map[netaddr.V4]struct{})
		r.FirstSeen = t
	}
	r.Flows++
	if _, seen := r.clients[peer]; !seen {
		r.clients[peer] = struct{}{}
		if len(r.firstPeers) < maxFirstPeers {
			r.firstPeers = append(r.firstPeers, PeerContact{Peer: peer, Time: t})
		}
	}
}
