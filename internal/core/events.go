package core

import (
	"fmt"
	"sync"
	"time"

	"servdisc/internal/pipeline"
)

// EventKind classifies a discovery event.
type EventKind uint8

// Event kinds.
const (
	// EventServiceDiscovered: the first positive evidence for a service
	// from either technique. Emitted exactly once per service; the event's
	// Provenance says which technique got there (PassiveOnly or ActiveOnly
	// — the classification as of the moment of discovery).
	EventServiceDiscovered EventKind = iota
	// EventProvenanceUpgraded: a service already discovered by one
	// technique has now been confirmed by the other. Provenance carries
	// the upgraded class (PassiveFirst or ActiveFirst, by comparing the
	// two first-observation timestamps). At most once per service.
	EventProvenanceUpgraded
	// EventScannerDetected: an external source crossed the paper's
	// 100-destinations/100-RSTs threshold. Emitted once per source, at the
	// moment of crossing; Scanner carries the tallies at that moment (the
	// final Inventory reports the peak window instead).
	EventScannerDetected
	// EventScanCompleted: an active sweep report was reconciled into the
	// engine. Scan carries the sweep metadata, Truncated whether the sweep
	// was cut short by its deadline or cancellation.
	EventScanCompleted
	// EventServiceExpired: a retention deadline passed with no fresh
	// evidence, withdrawing the service (retention.go). Time is the expiry
	// deadline (LastSeen + TTL, observation clock); Provenance names the
	// evidence kind withdrawn — PassiveOnly for passive records, ActiveOnly
	// for probe answers. Emitted exactly once per expiry, in deterministic
	// (deadline, key) order, at the snapshot that surfaces the expiry. A
	// service expired and later re-observed is re-announced with a fresh
	// ServiceDiscovered.
	EventServiceExpired
)

// eventKindNames are the stable wire names of the event kinds. Serialized
// feeds carry these strings, never the raw uint8, so reordering or
// extending the constants above cannot corrupt a recorded or federated
// stream.
var eventKindNames = [...]string{
	EventServiceDiscovered:  "service-discovered",
	EventProvenanceUpgraded: "provenance-upgraded",
	EventScannerDetected:    "scanner-detected",
	EventScanCompleted:      "scan-completed",
	EventServiceExpired:     "service-expired",
}

// String names the event kind (the same stable names MarshalText uses).
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// MarshalText serializes the kind as its stable string name, making
// EventKind safe to embed in JSON feeds. Unknown kinds are an error rather
// than a silently unparseable placeholder.
func (k EventKind) MarshalText() ([]byte, error) {
	if int(k) < len(eventKindNames) {
		return []byte(eventKindNames[k]), nil
	}
	return nil, fmt.Errorf("core: cannot marshal unknown event kind %d", uint8(k))
}

// UnmarshalText parses the names written by MarshalText.
func (k *EventKind) UnmarshalText(text []byte) error {
	s := string(text)
	for i, name := range eventKindNames {
		if s == name {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("core: unknown event kind %q", s)
}

// Event is one entry of the typed discovery event stream: something the
// engine learned, timestamped with the *observation* clock (trace or
// simulation time, not wall time) and provenance-tagged. Which fields are
// meaningful depends on Kind; unrelated fields are zero.
//
// Events describe live ingest order. Under concurrent ingest the technique
// credited by a ServiceDiscovered event is the one whose evidence was
// *applied* first, which for near-ties may differ from the frozen
// Inventory's timestamp-based provenance; ProvenanceUpgraded events, in
// contrast, compare observation timestamps (corrected for out-of-order
// sweep reports that have not yet triggered the upgrade) and so agree
// with the inventory regardless of interleaving, except when a report
// carrying an even earlier open time is applied only after the upgrade
// already fired.
// The JSON tags define the serialized form the cmd/passived /events feed
// and the federation wire codec emit; enum fields marshal as stable text
// names (see EventKind.MarshalText, Provenance.MarshalText).
type Event struct {
	// Kind selects the event type.
	Kind EventKind `json:"kind"`
	// Time is the observation timestamp the event is about: first evidence
	// for discoveries and upgrades, threshold-crossing packet time for
	// scanner detections, sweep finish time for scan completions.
	Time time.Time `json:"time"`
	// Key identifies the service (service events only).
	Key ServiceKey `json:"key,omitzero"`
	// Provenance tags service events: the discovering technique for
	// ServiceDiscovered, the upgraded class for ProvenanceUpgraded.
	// Omitted when zero, so non-service events don't carry a spurious
	// "passive-only" (the absent field unmarshals back to the same zero).
	Provenance Provenance `json:"prov,omitzero"`
	// Scanner describes the detected scanner (EventScannerDetected only).
	Scanner ScannerInfo `json:"scanner,omitzero"`
	// Scan is the completed sweep's metadata (EventScanCompleted only).
	Scan ScanMeta `json:"scan,omitzero"`
	// Truncated reports whether the completed sweep was cut short
	// (EventScanCompleted only).
	Truncated bool `json:"truncated,omitempty"`
}

// String renders a one-line human-readable form, the shape the commands
// log.
func (e Event) String() string {
	switch e.Kind {
	case EventServiceDiscovered, EventProvenanceUpgraded, EventServiceExpired:
		return fmt.Sprintf("%s %s %s @%s", e.Kind, e.Key, e.Provenance,
			e.Time.UTC().Format(time.RFC3339Nano))
	case EventScannerDetected:
		return fmt.Sprintf("%s %s dsts=%d rsts=%d @%s", e.Kind, e.Scanner.Source,
			e.Scanner.UniqueDsts, e.Scanner.RstDsts, e.Time.UTC().Format(time.RFC3339Nano))
	case EventScanCompleted:
		trunc := ""
		if e.Truncated {
			trunc = " truncated"
		}
		return fmt.Sprintf("%s sweep=%d%s @%s", e.Kind, e.Scan.ID, trunc,
			e.Time.UTC().Format(time.RFC3339Nano))
	default:
		return e.Kind.String()
	}
}

// EventSub is a subscription to an engine's event stream (see
// pipeline.Sub: Events yields the channel, Dropped the per-subscriber
// drop count, Cancel unsubscribes).
type EventSub = pipeline.Sub[Event]

// eventStream reconciles raw per-source discovery signals into the typed
// event stream. The passive shards and the active ingester each report a
// key at most once (their own state makes re-reports impossible); the
// stream's job is the cross-technique join — first report of a key becomes
// ServiceDiscovered, the other technique's later report becomes
// ProvenanceUpgraded — plus pass-through publication of scanner detections
// and sweep completions. All methods are safe for concurrent callers (the
// shard workers and the report reconciler all emit into one stream).
type eventStream struct {
	hub *pipeline.Hub[Event]

	mu   sync.Mutex
	seen map[ServiceKey]*firstSeen
}

// firstSeen records the first observation per technique for one service.
type firstSeen struct {
	passiveAt, activeAt   time.Time
	hasPassive, hasActive bool
}

func newEventStream() *eventStream {
	return &eventStream{
		hub:  pipeline.NewHub[Event](),
		seen: make(map[ServiceKey]*firstSeen),
	}
}

// passiveDiscovered reports the first passive evidence for key. The
// publish happens under es.mu (Publish never blocks), so a subscriber can
// never see a key's ProvenanceUpgraded before its ServiceDiscovered.
func (es *eventStream) passiveDiscovered(key ServiceKey, t time.Time) {
	es.mu.Lock()
	defer es.mu.Unlock()
	st := es.seen[key]
	if st == nil {
		es.seen[key] = &firstSeen{passiveAt: t, hasPassive: true}
		es.hub.Publish(Event{Kind: EventServiceDiscovered, Time: t, Key: key, Provenance: PassiveOnly})
		return
	}
	if st.hasPassive {
		return
	}
	st.hasPassive, st.passiveAt = true, t
	// The probe answered strictly before passive evidence: active won the
	// race (ties go passive, as in NewHybridInventory).
	prov := PassiveFirst
	if st.activeAt.Before(t) {
		prov = ActiveFirst
	}
	es.hub.Publish(Event{Kind: EventProvenanceUpgraded, Time: t, Key: key, Provenance: prov})
}

// activeDiscovered reports the first probe answer for key (see
// passiveDiscovered for the ordering guarantee).
func (es *eventStream) activeDiscovered(key ServiceKey, t time.Time) {
	es.mu.Lock()
	defer es.mu.Unlock()
	st := es.seen[key]
	if st == nil {
		es.seen[key] = &firstSeen{activeAt: t, hasActive: true}
		es.hub.Publish(Event{Kind: EventServiceDiscovered, Time: t, Key: key, Provenance: ActiveOnly})
		return
	}
	if st.hasActive {
		return
	}
	st.hasActive, st.activeAt = true, t
	prov := ActiveFirst
	if !t.Before(st.passiveAt) {
		prov = PassiveFirst
	}
	es.hub.Publish(Event{Kind: EventProvenanceUpgraded, Time: t, Key: key, Provenance: prov})
}

// activeOpenEarlier corrects the join table when a later-applied report
// carries an earlier open time for an already-known service (sweeps may
// reconcile out of launch order). If the upgrade has not fired yet, the
// eventual ProvenanceUpgraded then compares the true earliest times, as
// the frozen Inventory does; an already-published upgrade is not
// retracted.
func (es *eventStream) activeOpenEarlier(key ServiceKey, t time.Time) {
	es.mu.Lock()
	defer es.mu.Unlock()
	if st := es.seen[key]; st != nil && st.hasActive && !st.hasPassive && t.Before(st.activeAt) {
		st.activeAt = t
	}
}

// seedPassive records checkpoint-restored passive evidence in the join
// table WITHOUT publishing: the event already fired in the incarnation
// that wrote the checkpoint, and re-announcing it would break the
// exactly-once contract across restarts.
func (es *eventStream) seedPassive(key ServiceKey, t time.Time) {
	es.mu.Lock()
	defer es.mu.Unlock()
	st := es.seen[key]
	if st == nil {
		st = &firstSeen{}
		es.seen[key] = st
	}
	st.hasPassive, st.passiveAt = true, t
}

// seedActive is seedPassive's active-side counterpart.
func (es *eventStream) seedActive(key ServiceKey, t time.Time) {
	es.mu.Lock()
	defer es.mu.Unlock()
	st := es.seen[key]
	if st == nil {
		st = &firstSeen{}
		es.seen[key] = st
	}
	st.hasActive, st.activeAt = true, t
}

// serviceExpired publishes a retention expiry. clearSeen marks snapshot-
// side expiries: their seen-table entry must be dropped here so a later
// rediscovery re-announces. Observe-side retirements cleared their entry
// synchronously via retirePassive (the new incarnation has already re-set
// it by publication time, and must not be clobbered).
func (es *eventStream) serviceExpired(key ServiceKey, at time.Time, prov Provenance, clearSeen bool) {
	es.mu.Lock()
	defer es.mu.Unlock()
	if clearSeen {
		if st := es.seen[key]; st != nil {
			if prov == ActiveOnly {
				st.hasActive, st.activeAt = false, time.Time{}
			} else {
				st.hasPassive, st.passiveAt = false, time.Time{}
			}
			if !st.hasPassive && !st.hasActive {
				delete(es.seen, key)
			}
		}
	}
	es.hub.Publish(Event{Kind: EventServiceExpired, Time: at, Key: key, Provenance: prov})
}

// retirePassive drops a key's passive seen-table entry without publishing:
// the synchronous half of an observe-side incarnation split, so the split's
// rediscovery is announced as a fresh ServiceDiscovered (the expiry event
// itself follows at the next snapshot).
func (es *eventStream) retirePassive(key ServiceKey) {
	es.mu.Lock()
	defer es.mu.Unlock()
	if st := es.seen[key]; st != nil {
		st.hasPassive, st.passiveAt = false, time.Time{}
		if !st.hasActive {
			delete(es.seen, key)
		}
	}
}

// scannerDetected publishes a threshold crossing.
func (es *eventStream) scannerDetected(info ScannerInfo, at time.Time) {
	es.hub.Publish(Event{Kind: EventScannerDetected, Time: at, Scanner: info})
}

// scanCompleted publishes a reconciled sweep.
func (es *eventStream) scanCompleted(meta ScanMeta, truncated bool) {
	es.hub.Publish(Event{Kind: EventScanCompleted, Time: meta.Finished, Scan: meta, Truncated: truncated})
}

func (es *eventStream) close() { es.hub.Close() }
