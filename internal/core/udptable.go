package core

import (
	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
)

// UDPPortSummary is one column of Table 7: discovery outcomes for a single
// well-known UDP port.
type UDPPortSummary struct {
	Port uint16
	// Passive counts hosts observed sourcing traffic from the port.
	Passive int
	// DefinitelyOpen: a UDP reply answered the generic probe.
	DefinitelyOpen int
	// PossiblyOpen: no answer on this port, but the host answered
	// something on another probed port, so it is alive and may be
	// running a mute service.
	PossiblyOpen int
	// DefinitelyClosed: ICMP port unreachable.
	DefinitelyClosed int
}

// UDPTable is the full Table 7: per-port summaries plus the count of
// addresses that answered nothing on any probed port.
type UDPTable struct {
	Ports []UDPPortSummary
	// NoResponseAnyPort counts probed addresses with silence on every
	// port — indistinguishable dead space.
	NoResponseAnyPort int
	// PassiveTotal counts distinct addresses found passively on any of
	// the ports.
	PassiveTotal int
	// ActiveDefinitelyOpenTotal counts distinct addresses with at least
	// one definitely-open port.
	ActiveDefinitelyOpenTotal int
	// PassiveOnlyCount counts passive finds never confirmed open by the
	// generic probe.
	PassiveOnly int
}

// UDPSummary classifies every probed address per port, reproducing the
// Table 7 methodology (Section 4.5): a UDP reply is a true positive, ICMP
// port unreachable a true negative, and silence is "possibly open" only
// when the host proves alive elsewhere.
func (a *Analysis) UDPSummary(ports []uint16, probed []netaddr.V4) UDPTable {
	var table UDPTable

	// Passive inventory per port.
	passiveByPort := make(map[uint16]*netaddr.Set, len(ports))
	for _, p := range ports {
		passiveByPort[p] = netaddr.NewSet()
	}
	passiveAll := netaddr.NewSet()
	for k := range a.Passive.Services() {
		if k.Proto != packet.ProtoUDP {
			continue
		}
		if s, ok := passiveByPort[k.Port]; ok {
			s.Add(k.Addr)
			passiveAll.Add(k.Addr)
		}
	}
	table.PassiveTotal = passiveAll.Len()

	openAny := netaddr.NewSet()
	perPort := make(map[uint16]*UDPPortSummary, len(ports))
	for _, p := range ports {
		perPort[p] = &UDPPortSummary{Port: p, Passive: passiveByPort[p].Len()}
	}

	for _, addr := range probed {
		responded := false
		for _, p := range ports {
			if st, ok := a.Active.UDPOutcome(addr, p); ok && st != probe.UDPNoResponse {
				responded = true
				break
			}
		}
		if !responded {
			table.NoResponseAnyPort++
			continue
		}
		for _, p := range ports {
			st, ok := a.Active.UDPOutcome(addr, p)
			if !ok {
				continue
			}
			switch st {
			case probe.UDPOpen:
				perPort[p].DefinitelyOpen++
				openAny.Add(addr)
			case probe.UDPClosed:
				perPort[p].DefinitelyClosed++
			case probe.UDPNoResponse:
				perPort[p].PossiblyOpen++
			}
		}
	}
	table.ActiveDefinitelyOpenTotal = openAny.Len()
	table.PassiveOnly = passiveAll.Diff(openAny).Len()

	for _, p := range ports {
		table.Ports = append(table.Ports, *perPort[p])
	}
	return table
}
