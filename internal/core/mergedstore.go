package core

// invSource + mergedStore: the storage abstraction behind Inventory.
//
// A frozen Inventory reads its passive state through invSource. Two
// implementations exist: *PassiveDiscoverer (the single-threaded and
// terminal-merge paths, plain maps) and *mergedStore (the live sharded
// snapshot path), which keeps services, activity trails and tombstones in
// persistent HAMTs so a changed snapshot is a handful of path copies over
// the previous one — O(records changed), never an O(inventory) map clone —
// while every previously returned Inventory stays valid forever.

import (
	"sort"
	"time"

	"servdisc/internal/netaddr"
)

// invSource is the passive-state storage a frozen Inventory queries. All
// methods are read-only and safe for concurrent readers once the source is
// frozen.
type invSource interface {
	// NumPackets returns the cumulative packet count behind the state.
	NumPackets() int
	// Record returns one service's record, if present.
	Record(key ServiceKey) (*PassiveRecord, bool)
	// numServices returns the live (non-expired) service count.
	numServices() int
	// eachService visits every live service until f returns false.
	eachService(f func(ServiceKey, *PassiveRecord) bool)
	// eachTombstone visits every expiry tombstone (key, deadline) until f
	// returns false.
	eachTombstone(f func(ServiceKey, time.Time) bool)
	// AddrFirstSeen rolls the inventory up to addresses (see
	// PassiveDiscoverer.AddrFirstSeen).
	AddrFirstSeen(keep func(ServiceKey) bool) map[netaddr.V4]time.Time
	// AddrFirstSeenExcluding recomputes per-address first discovery with
	// the given peers removed.
	AddrFirstSeenExcluding(excluded map[netaddr.V4]bool, keep func(ServiceKey) bool) map[netaddr.V4]time.Time
	// AddrWeights sums flow and client weights per address.
	AddrWeights() (flows, clients map[netaddr.V4]int)
	// ActiveDuring reports whether the address showed passive activity
	// within [from, to].
	ActiveDuring(addr netaddr.V4, from, to time.Time) bool
	// LastActivity returns the most recent recorded activity time.
	LastActivity(addr netaddr.V4) (time.Time, bool)
}

// mergedStore is the union of all frozen shard views, held in persistent
// maps. A delta merge starts builders from the previous snapshot's store
// and patches only the touched entries; the result shares all untouched
// structure with its predecessor.
type mergedStore struct {
	packets  int
	services pmap[ServiceKey, *PassiveRecord]
	trails   pmap[netaddr.V4, []time.Time]
	tombs    pmap[ServiceKey, time.Time]
}

func newMergedStore() *mergedStore {
	return &mergedStore{
		services: newPmap[ServiceKey, *PassiveRecord](hashServiceKey),
		trails:   newPmap[netaddr.V4, []time.Time](hashV4),
		tombs:    newPmap[ServiceKey, time.Time](hashServiceKey),
	}
}

func (m *mergedStore) NumPackets() int { return m.packets }

func (m *mergedStore) numServices() int { return m.services.Len() }

func (m *mergedStore) Record(key ServiceKey) (*PassiveRecord, bool) {
	return m.services.Get(key)
}

func (m *mergedStore) eachService(f func(ServiceKey, *PassiveRecord) bool) {
	m.services.each(f)
}

func (m *mergedStore) eachTombstone(f func(ServiceKey, time.Time) bool) {
	m.tombs.each(f)
}

func (m *mergedStore) AddrFirstSeen(keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	out := make(map[netaddr.V4]time.Time)
	m.services.each(func(k ServiceKey, rec *PassiveRecord) bool {
		if keep != nil && !keep(k) {
			return true
		}
		if cur, ok := out[k.Addr]; !ok || rec.FirstSeen.Before(cur) {
			out[k.Addr] = rec.FirstSeen
		}
		return true
	})
	return out
}

func (m *mergedStore) AddrFirstSeenExcluding(excluded map[netaddr.V4]bool, keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	out := make(map[netaddr.V4]time.Time)
	m.services.each(func(k ServiceKey, rec *PassiveRecord) bool {
		if keep != nil && !keep(k) {
			return true
		}
		t, ok := rec.FirstSeenExcluding(excluded)
		if !ok {
			return true
		}
		if cur, seen := out[k.Addr]; !seen || t.Before(cur) {
			out[k.Addr] = t
		}
		return true
	})
	return out
}

func (m *mergedStore) AddrWeights() (flows, clients map[netaddr.V4]int) {
	flows = make(map[netaddr.V4]int)
	clients = make(map[netaddr.V4]int)
	m.services.each(func(k ServiceKey, rec *PassiveRecord) bool {
		flows[k.Addr] += rec.Flows
		clients[k.Addr] += rec.Clients()
		return true
	})
	return flows, clients
}

func (m *mergedStore) ActiveDuring(addr netaddr.V4, from, to time.Time) bool {
	times, _ := m.trails.Get(addr)
	i := sort.Search(len(times), func(i int) bool { return !times[i].Before(from) })
	return i < len(times) && !times[i].After(to)
}

func (m *mergedStore) LastActivity(addr netaddr.V4) (time.Time, bool) {
	ts, _ := m.trails.Get(addr)
	if len(ts) == 0 {
		return time.Time{}, false
	}
	return ts[len(ts)-1], true
}

var (
	_ invSource = (*mergedStore)(nil)
	_ invSource = (*PassiveDiscoverer)(nil)
)
