package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/stats"
)

// These tests pin the copy-on-write sharing invariant behind live
// snapshots: a frozen Inventory aliases record structures, activity-trail
// arrays and scanner caches with the live engine, and the dirty-set seal
// machinery must guarantee that no later ingestion is ever visible
// through an already-returned view. Run with -race (CI does): the tests
// are written so any broken sharing is a concurrent read/write on the
// aliased memory, not just a value mismatch.

// TestSnapshotAliasingUnderChurn is the canonical guard: freeze, keep the
// old Inventory, ingest 10k more packets, and verify the old view is
// bit-for-bit unchanged.
func TestSnapshotAliasingUnderChurn(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	pkts := genTrace(21, 20000)
	half := len(pkts) / 2

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sp := NewShardedPassive(campus, udpPorts, shards)
			sp.Run(context.Background())
			for _, b := range splitBatches(pkts[:half], 256) {
				sp.HandleBatch(b)
			}
			sp.Flush()
			old := sp.Snapshot()
			want := append([]byte(nil), old.Dump()...)

			for _, b := range splitBatches(pkts[half:], 256) {
				sp.HandleBatch(b)
			}
			sp.Close()
			if got := sp.Snapshot().Dump(); bytes.Equal(got, want) {
				t.Fatal("post-freeze ingest did not change the new snapshot; churn test is vacuous")
			}
			if got := old.Dump(); !bytes.Equal(got, want) {
				t.Fatal("old inventory changed under later ingest: COW sharing leaked")
			}
		})
	}
}

// TestSnapshotCOWHammer interleaves many small ingest bursts with
// snapshots, retaining every inventory, and re-verifies all of them after
// every round — mutate-after-freeze at every epoch, plus the
// freeze-twice-no-churn identity, against the sequential reference.
func TestSnapshotCOWHammer(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	pkts := genTrace(22, 12000)
	batches := splitBatches(pkts, 128)

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sp := NewShardedPassive(campus, udpPorts, shards)
			sp.Run(context.Background())

			type frozen struct {
				inv  *Inventory
				dump []byte
			}
			var kept []frozen
			rng := stats.NewRNG(7).Derive("cow-hammer")
			fed := 0
			for fed < len(batches) {
				burst := 1 + rng.Intn(8)
				for i := 0; i < burst && fed < len(batches); i++ {
					sp.HandleBatch(batches[fed])
					fed++
				}
				sp.Flush()
				inv := sp.Snapshot()
				if again := sp.Snapshot(); again != inv {
					t.Fatal("freeze-twice with no churn rebuilt the inventory")
				}
				want := refPassiveDump(campus, udpPorts, pkts[:min(fed*128, len(pkts))])
				if got := inv.Dump(); !bytes.Equal(got, want) {
					t.Fatalf("snapshot after %d batches differs from sequential reference", fed)
				}
				kept = append(kept, frozen{inv, want})
				for i, f := range kept {
					if got := f.inv.Dump(); !bytes.Equal(got, f.dump) {
						t.Fatalf("inventory frozen at epoch %d mutated after later ingest (round %d)", i, len(kept))
					}
				}
			}
			sp.Close()
		})
	}
}

// TestHybridSnapshotAliasing extends the guard to the hybrid engine:
// interleaved passive batches and scan reports, every inventory retained
// and re-verified as both sides keep moving — this hammers the patched
// provenance/key tables and the active side's shared outcome histories.
func TestHybridSnapshotAliasing(t *testing.T) {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	tcpPorts := []uint16{21, 22, 80, 443, 3306}
	pkts := genTrace(23, 12000)
	reps := genReports(6)
	batches := splitBatches(pkts, 128)

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := NewHybrid(campusPfx, udpPorts, shards, tcpPorts)
			h.Run(context.Background())

			type frozen struct {
				inv  *Inventory
				dump []byte
			}
			var kept []frozen
			rng := stats.NewRNG(8).Derive("cow-hybrid")
			nb, nr := 0, 0
			for nb < len(batches) || nr < len(reps) {
				if nr < len(reps) && (nb == len(batches) || rng.Intn(len(batches)/len(reps)) == 0) {
					h.AddReport(reps[nr])
					nr++
				} else {
					h.HandleBatch(batches[nb])
					nb++
				}
				if (nb+nr)%40 == 3 {
					h.Flush()
					inv := h.Snapshot()
					kept = append(kept, frozen{inv, append([]byte(nil), inv.Dump()...)})
					for i, f := range kept {
						if got := f.inv.Dump(); !bytes.Equal(got, f.dump) {
							t.Fatalf("hybrid inventory frozen at epoch %d mutated after later ingest", i)
						}
					}
				}
			}
			h.Close()
			// Final state must still match the legacy freeze-then-snapshot
			// reference, proving the patched inventories converged right.
			ref := NewHybrid(campusPfx, udpPorts, 1, tcpPorts)
			for _, b := range batches {
				ref.HandleBatch(b)
			}
			for _, rep := range reps {
				ref.AddReport(rep)
			}
			want := NewHybridInventory(ref.passive.Merge(), ref.active).Dump()
			if got := h.Snapshot().Dump(); !bytes.Equal(got, want) {
				t.Fatal("final hybrid snapshot differs from sequential reference")
			}
			for i, f := range kept {
				if got := f.inv.Dump(); !bytes.Equal(got, f.dump) {
					t.Fatalf("hybrid inventory %d mutated after Close", i)
				}
			}
		})
	}
}

// testEngineMetrics builds a live telemetry bundle so the alloc-gated
// tests exercise the instrumented hot path — zero allocations must hold
// with the histograms and flight recorder attached, exactly as the
// facade wires them in production.
func testEngineMetrics() *EngineMetrics {
	reg := obs.NewRegistry()
	return &EngineMetrics{
		Dispatch: reg.Histogram("test_dispatch_seconds", "test instrumentation"),
		Apply:    reg.Histogram("test_apply_seconds", "test instrumentation"),
		Snapshot: reg.Histogram("test_snapshot_seconds", "test instrumentation"),
		Flight:   reg.Flight(),
	}
}

// TestSnapshotZeroChurnAllocs pins the fast path: snapshotting an
// unchanged engine must not allocate (and must return the identical
// Inventory) — the property the CI bench gate watches at the benchmark
// level.
func TestSnapshotZeroChurnAllocs(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	sp := NewShardedPassive(campus, []uint16{53}, 8)
	sp.SetMetrics(testEngineMetrics())
	sp.HandleBatch(genTrace(24, 5000))
	inv := sp.Snapshot()

	allocs := testing.AllocsPerRun(200, func() {
		if sp.Snapshot() != inv {
			t.Fatal("zero-churn snapshot rebuilt the inventory")
		}
	})
	if allocs != 0 {
		t.Errorf("zero-churn Snapshot allocates %.1f objects per call, want 0", allocs)
	}
}

// TestIngestShardedAllocs bounds the steady-state ingest path's
// allocations per packet so regressions (per-record garbage, lost buffer
// reuse) surface as a test failure, not just a bench delta.
func TestIngestShardedAllocs(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	pkts := genTrace(25, 20000)
	sp := NewShardedPassive(campus, []uint16{53, 123, 137}, 4)
	sp.SetMetrics(testEngineMetrics())
	// Warm up: populate the service records, trails and tracker windows so
	// the measured runs see steady state, not first-touch growth.
	sp.HandleBatch(pkts)

	batches := splitBatches(pkts, 256)
	i := 0
	allocs := testing.AllocsPerRun(40, func() {
		sp.HandleBatch(batches[i%len(batches)])
		i++
	})
	perPacket := allocs / 256
	if perPacket > 0.5 {
		t.Errorf("sharded ingest allocates %.2f objects per packet in steady state, want <= 0.5", perPacket)
	}
}
