package core

import (
	"sort"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// PassiveDiscoverer builds a service inventory from observed border
// traffic. It implements the capture.Sink contract and is driven entirely
// by HandlePacket; all accessors may be used at any point during or after
// collection.
type PassiveDiscoverer struct {
	campus netaddr.Prefix
	// udpPorts are the well-known UDP service ports considered evidence
	// when a campus host sources traffic from them.
	udpPorts map[uint16]bool

	services map[ServiceKey]*PassiveRecord

	// peers holds each service's distinct-peer identity set — the dedup
	// behind PassiveRecord.nClients. It lives here rather than in the
	// record so sealed snapshot views never carry (or copy) it: it
	// belongs to the live, ingesting side only.
	peers map[ServiceKey]map[netaddr.V4]struct{}

	// addrTimes records thinned per-address activity timestamps for the
	// firewall-confirmation heuristic ("activity observed during an
	// active scan", Section 4.2.4 method 2).
	addrTimes map[netaddr.V4][]time.Time

	// scan tracking state (scandetect.go).
	track *scanTracker

	// onService, when set, is invoked for the first positive evidence of
	// each service, from the goroutine applying the packet. ShardedPassive
	// wires it (and the tracker's onDetect) into the engine's event stream.
	onService func(key ServiceKey, t time.Time)

	// onRetire, when set, is invoked when an observe-side incarnation
	// split retires a record (see observe): the event stream clears its
	// seen entry synchronously so the new incarnation's discovery
	// announcement is not suppressed.
	onRetire func(key ServiceKey)

	// Retention state (retention.go). ttl=0 disables expiry entirely; the
	// maps and slices below then stay empty and cost nothing. tombs maps
	// each expired key to its expiry deadline (a later re-creation keeps
	// the tombstone — it only helps late federation consumers). expq is
	// the lazy deadline min-heap; pendingExpired accumulates expiries
	// until the next snapshot publishes them; deadKeys and tombDirty name
	// what the next seal must delete from / sync into the sealed view;
	// ckTombs are tombstones not yet exported to a checkpoint.
	ttl            time.Duration
	tombs          map[ServiceKey]time.Time
	expq           []expEntry
	pendingExpired []expiredSvc
	deadKeys       []ServiceKey
	tombDirty      []ServiceKey
	ckTombs        map[ServiceKey]time.Time

	// Copy-on-write snapshot machinery (sealView). sealed is the immutable
	// view shared with snapshot consumers: its records and activity trails
	// alias the live maps, and each seal patches in only what the dirty
	// sets name since the previous seal — O(churn), not O(inventory).
	// seals counts seals; a record whose seal field is behind it is shared
	// with the sealed layer and observe clones it before mutating. All
	// dirty tracking is off (nil maps, zero cost) until the first seal.
	sealed     *PassiveDiscoverer
	seals      uint64
	dirty      map[ServiceKey]struct{}
	dirtyAddrs map[netaddr.V4]struct{}
	newKeys    []ServiceKey

	// Checkpoint dirty tracking (export.go): which services and trails
	// changed since the last checkpoint export. Independent of the seal
	// dirty sets above — seals clear at every snapshot freeze, checkpoints
	// run on their own (usually much slower) cadence. Off (nil, zero cost)
	// until the first full export enables it.
	ckDirty      map[ServiceKey]struct{}
	ckDirtyAddrs map[netaddr.V4]struct{}

	// Packets counts everything handled.
	Packets int
}

// NewPassiveDiscoverer builds a discoverer for the given campus space.
// udpPorts lists the well-known UDP service ports of interest (may be nil
// for TCP-only studies).
func NewPassiveDiscoverer(campus netaddr.Prefix, udpPorts []uint16) *PassiveDiscoverer {
	d := &PassiveDiscoverer{
		campus:    campus,
		udpPorts:  make(map[uint16]bool, len(udpPorts)),
		services:  make(map[ServiceKey]*PassiveRecord),
		peers:     make(map[ServiceKey]map[netaddr.V4]struct{}),
		addrTimes: make(map[netaddr.V4][]time.Time),
		tombs:     make(map[ServiceKey]time.Time),
		track:     newScanTracker(),
	}
	for _, p := range udpPorts {
		d.udpPorts[p] = true
	}
	return d
}

// HandlePacket implements the legacy per-packet capture.Sink contract.
func (d *PassiveDiscoverer) HandlePacket(p *packet.Packet) {
	d.Packets++
	switch {
	case p.Has(packet.LayerTypeTCP):
		d.handleTCP(p)
	case p.Has(packet.LayerTypeUDP):
		d.handleUDP(p)
	}
}

// HandleBatch implements pipeline.BatchSink. The discoverer is single-
// writer: feed it from one goroutine (or shard it with ShardedPassive).
func (d *PassiveDiscoverer) HandleBatch(batch []packet.Packet) {
	for i := range batch {
		d.HandlePacket(&batch[i])
	}
}

// seedScanOrigin pins the scan detector's window origin, so sharded
// ingestion buckets every shard's windows identically to a single-threaded
// run (see ShardedPassive). A no-op once the tracker has started.
func (d *PassiveDiscoverer) seedScanOrigin(t time.Time) { d.track.seed(t) }

// sealDelta names what one seal changed: the record keys replaced or
// created and the activity trails that moved since the previous seal.
// ShardedPassive keeps a short history of these so a merged snapshot can
// be patched from the previous one instead of rebuilt (see mergeViewsDelta).
type sealDelta struct {
	// gen and prevGen are the shard generations of this seal and the one
	// before it, forming a chain a merger can walk backwards.
	gen, prevGen uint64
	keys         []ServiceKey
	newKeys      []ServiceKey
	// delKeys are the records expired since the previous seal: a merger
	// must remove them from the previous merged snapshot.
	delKeys []ServiceKey
	addrs   []netaddr.V4
	// full marks a seal whose delta was not tracked (the first seal, or a
	// churn burst too large to be worth patching): merge must rebuild.
	full bool
}

// sealView freezes the discoverer's inventory-facing state — service
// records, activity trails, and the packet count — into a view that later
// ingestion into the original cannot disturb, and reports what changed
// since the previous seal. Unlike a deep clone, the view shares every
// untouched record and trail with the live maps: records go copy-on-write
// (observe clones a shared record before its first post-seal mutation) and
// trails are append-only, so aliasing their backing arrays is safe — the
// sealed slice header never sees elements past its length. Seal cost is
// therefore O(records touched since the last seal), not O(inventory).
//
// The same *PassiveDiscoverer is returned (patched in place) on every
// call; callers that hand it to concurrent readers must make sure those
// reads complete before the next seal (ShardedPassive serializes seals
// and merges under its snapshot lock). The scan tracker is NOT part of
// the view (detection results are captured separately at freeze time).
func (d *PassiveDiscoverer) sealView() (*PassiveDiscoverer, sealDelta) {
	defer func() {
		d.seals++ // every pre-seal record is now shared: next write clones
	}()
	if d.sealed == nil {
		// First seal: build the view whole and switch dirty tracking on.
		s := NewPassiveDiscoverer(d.campus, nil)
		s.udpPorts = d.udpPorts
		s.Packets = d.Packets
		for k, rec := range d.services {
			s.services[k] = rec
		}
		for a, ts := range d.addrTimes {
			s.addrTimes[a] = ts
		}
		for k, at := range d.tombs {
			s.tombs[k] = at
		}
		d.sealed = s
		d.dirty = make(map[ServiceKey]struct{})
		d.dirtyAddrs = make(map[netaddr.V4]struct{})
		d.deadKeys, d.tombDirty = nil, nil
		return s, sealDelta{full: true}
	}
	delta := sealDelta{
		keys:  make([]ServiceKey, 0, len(d.dirty)),
		addrs: make([]netaddr.V4, 0, len(d.dirtyAddrs)),
	}
	// A churn burst touching most of the inventory is cheaper to re-merge
	// than to patch downstream; the seal itself still applies the delta.
	if len(d.dirty) > len(d.services)/2 {
		delta = sealDelta{full: true}
	}
	// Sync expiries first: tombstones move into the sealed view, expired
	// records leave it (and the delta tells the merger to drop them too).
	for _, k := range d.tombDirty {
		d.sealed.tombs[k] = d.tombs[k]
	}
	d.tombDirty = nil
	hadDead := len(d.deadKeys) > 0
	for _, k := range d.deadKeys {
		delete(d.sealed.services, k)
		if !delta.full {
			delta.delKeys = append(delta.delKeys, k)
		}
	}
	d.deadKeys = nil
	for k := range d.dirty {
		d.sealed.services[k] = d.services[k]
		if !delta.full {
			delta.keys = append(delta.keys, k)
		}
		delete(d.dirty, k)
	}
	for a := range d.dirtyAddrs {
		d.sealed.addrTimes[a] = d.addrTimes[a]
		if !delta.full {
			delta.addrs = append(delta.addrs, a)
		}
		delete(d.dirtyAddrs, a)
	}
	if !delta.full {
		delta.newKeys = d.newKeys
		if hadDead {
			// A key created and expired within one seal interval must not
			// leak into the merger's new-key list.
			delta.newKeys = nil
			for _, k := range d.newKeys {
				if _, live := d.services[k]; live {
					delta.newKeys = append(delta.newKeys, k)
				}
			}
		}
	}
	d.sealed.Packets = d.Packets
	d.newKeys = nil
	return d.sealed, delta
}

func (d *PassiveDiscoverer) handleTCP(p *packet.Packet) {
	srcIn := d.campus.Contains(p.IPv4.Src)
	dstIn := d.campus.Contains(p.IPv4.Dst)
	fl := p.TCP.Flags
	switch {
	case fl.Has(packet.FlagSYN | packet.FlagACK):
		// A campus host accepting a connection is a server
		// (Section 3.2: "any host sending a SYN-ACK is running a
		// service").
		if srcIn {
			key := ServiceKey{Addr: p.IPv4.Src, Proto: packet.ProtoTCP, Port: p.TCP.SrcPort}
			d.observe(key, p.Timestamp, p.IPv4.Dst)
		}
	case fl.Has(packet.FlagSYN):
		// Inbound connection attempts feed the scan detector.
		if dstIn && !srcIn {
			d.track.recordSyn(p.Timestamp, p.IPv4.Src, p.IPv4.Dst)
		}
	case fl.Has(packet.FlagRST):
		// RSTs leaving campus confirm "live host, no service" to the
		// external source — the detector's second signal.
		if srcIn && !dstIn {
			d.track.recordRst(p.Timestamp, p.IPv4.Dst, p.IPv4.Src)
		}
	}
}

func (d *PassiveDiscoverer) handleUDP(p *packet.Packet) {
	// A campus host sourcing traffic from a well-known UDP port is
	// offering that service (Section 3.2).
	if d.campus.Contains(p.IPv4.Src) && d.udpPorts[p.UDP.SrcPort] {
		key := ServiceKey{Addr: p.IPv4.Src, Proto: packet.ProtoUDP, Port: p.UDP.SrcPort}
		d.observe(key, p.Timestamp, p.IPv4.Dst)
	}
}

func (d *PassiveDiscoverer) observe(key ServiceKey, t time.Time, peer netaddr.V4) {
	rec := d.services[key]
	if rec != nil && d.ttl > 0 && !t.Before(rec.LastSeen.Add(d.ttl)) {
		// Incarnation split: the old record's deadline passed before this
		// evidence arrived, so on the observation clock the service expired
		// and is now being rediscovered. Retiring it here — rather than
		// waiting for a snapshot-side sweep to notice — makes the final
		// state independent of snapshot cadence (for monotone observation
		// clocks): the fresh record below gets a new FirstSeen and reset
		// weights no matter how often anyone snapshotted in between. The
		// expiry event is queued for the next snapshot; the seen-table
		// entry is cleared synchronously (onRetire) so the rediscovery
		// announcement below is not suppressed.
		deadline := rec.LastSeen.Add(d.ttl)
		d.retire(key, deadline)
		d.pendingExpired = append(d.pendingExpired, expiredSvc{
			key: key, at: deadline, prov: PassiveOnly,
		})
		if d.onRetire != nil {
			d.onRetire(key)
		}
		rec = nil
	}
	switch {
	case rec == nil:
		rec = &PassiveRecord{FirstSeen: t, seal: d.seals}
		d.services[key] = rec
		d.peers[key] = make(map[netaddr.V4]struct{})
		if d.sealed != nil {
			d.dirty[key] = struct{}{}
			d.newKeys = append(d.newKeys, key)
		}
		if d.ttl > 0 {
			d.expPush(t.Add(d.ttl), key)
		}
		if d.onService != nil {
			d.onService(key, t)
		}
	case rec.seal != d.seals:
		// The record is shared with the sealed snapshot layer: copy on
		// write, exactly once per seal epoch.
		rec = rec.cloneForWrite(d.seals)
		d.services[key] = rec
		d.dirty[key] = struct{}{}
	}
	peers := d.peers[key]
	_, seen := peers[peer]
	if !seen {
		peers[peer] = struct{}{}
	}
	rec.observe(t, peer, !seen)
	if d.ckDirty != nil {
		d.ckDirty[key] = struct{}{}
	}

	// Thinned per-address activity trail (>=1-minute spacing). Appends
	// only — sealed views alias the backing array safely.
	times := d.addrTimes[key.Addr]
	if len(times) == 0 || t.Sub(times[len(times)-1]) >= time.Minute {
		d.addrTimes[key.Addr] = append(times, t)
		if d.sealed != nil {
			d.dirtyAddrs[key.Addr] = struct{}{}
		}
		if d.ckDirtyAddrs != nil {
			d.ckDirtyAddrs[key.Addr] = struct{}{}
		}
	}
}

// Services returns the live inventory map (owned by the discoverer).
func (d *PassiveDiscoverer) Services() map[ServiceKey]*PassiveRecord { return d.services }

// NumPackets returns the cumulative packet count (invSource).
func (d *PassiveDiscoverer) NumPackets() int { return d.Packets }

// numServices returns the live service count (invSource).
func (d *PassiveDiscoverer) numServices() int { return len(d.services) }

// eachService visits every live service (invSource; map order).
func (d *PassiveDiscoverer) eachService(f func(ServiceKey, *PassiveRecord) bool) {
	for k, rec := range d.services {
		if !f(k, rec) {
			return
		}
	}
}

// eachTombstone visits every expiry tombstone (invSource; map order).
func (d *PassiveDiscoverer) eachTombstone(f func(ServiceKey, time.Time) bool) {
	for k, at := range d.tombs {
		if !f(k, at) {
			return
		}
	}
}

// Record returns the record for one service, if present.
func (d *PassiveDiscoverer) Record(key ServiceKey) (*PassiveRecord, bool) {
	r, ok := d.services[key]
	return r, ok
}

// Keys returns all discovered services, sorted for deterministic output.
func (d *PassiveDiscoverer) Keys() []ServiceKey {
	keys := make([]ServiceKey, 0, len(d.services))
	for k := range d.services {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
	return keys
}

// AddrFirstSeen rolls the inventory up to addresses: the earliest positive
// evidence per address, optionally restricted to services passing keep.
func (d *PassiveDiscoverer) AddrFirstSeen(keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	out := make(map[netaddr.V4]time.Time)
	for k, rec := range d.services {
		if keep != nil && !keep(k) {
			continue
		}
		if cur, ok := out[k.Addr]; !ok || rec.FirstSeen.Before(cur) {
			out[k.Addr] = rec.FirstSeen
		}
	}
	return out
}

// AddrWeights sums flow and client weights per address across services.
func (d *PassiveDiscoverer) AddrWeights() (flows, clients map[netaddr.V4]int) {
	flows = make(map[netaddr.V4]int)
	clients = make(map[netaddr.V4]int)
	for k, rec := range d.services {
		flows[k.Addr] += rec.Flows
		clients[k.Addr] += rec.Clients()
	}
	return flows, clients
}

// LastActivity returns the most recent recorded activity time for the
// address, ok=false if it was never seen.
func (d *PassiveDiscoverer) LastActivity(addr netaddr.V4) (time.Time, bool) {
	ts := d.addrTimes[addr]
	if len(ts) == 0 {
		return time.Time{}, false
	}
	return ts[len(ts)-1], true
}

// ActiveDuring reports whether the address showed any passive activity
// within [from, to] — the paper's second firewall confirmation signal.
func (d *PassiveDiscoverer) ActiveDuring(addr netaddr.V4, from, to time.Time) bool {
	times := d.addrTimes[addr]
	i := sort.Search(len(times), func(i int) bool { return !times[i].Before(from) })
	return i < len(times) && !times[i].After(to)
}

// DetectScanners runs the scan detector over everything observed so far
// (see scandetect.go for the rule).
func (d *PassiveDiscoverer) DetectScanners() []ScannerInfo { return d.track.detect() }

// ScannerSet returns detected scanner sources as a membership map, the
// form the scan-removal analysis consumes.
func (d *PassiveDiscoverer) ScannerSet() map[netaddr.V4]bool {
	out := make(map[netaddr.V4]bool)
	for _, s := range d.track.detect() {
		out[s.Source] = true
	}
	return out
}

// AddrFirstSeenExcluding recomputes per-address first discovery with the
// given peers' traffic removed (Figure 4). Addresses whose every stored
// contact came from excluded peers drop out entirely.
func (d *PassiveDiscoverer) AddrFirstSeenExcluding(excluded map[netaddr.V4]bool, keep func(ServiceKey) bool) map[netaddr.V4]time.Time {
	out := make(map[netaddr.V4]time.Time)
	for k, rec := range d.services {
		if keep != nil && !keep(k) {
			continue
		}
		t, ok := rec.FirstSeenExcluding(excluded)
		if !ok {
			continue
		}
		if cur, seen := out[k.Addr]; !seen || t.Before(cur) {
			out[k.Addr] = t
		}
	}
	return out
}
