package core

// Persistent hash-array-mapped trie (CHAMP variant) — the storage behind
// merged snapshot inventories. A pmap value is immutable: Set and Delete
// return a new map sharing all untouched structure with the old one, so a
// snapshot patched forward from its predecessor costs O(records changed ·
// log64 n) node copies instead of an O(n) map clone, and every previously
// returned snapshot stays valid forever.
//
// Keys are hashed through an injective 64-bit encoding followed by the
// (bijective) splitmix64 finalizer, so two distinct keys can never share a
// hash and the trie needs no collision buckets: any two keys diverge at
// some level within the 64-bit hash. A transient builder amortizes bulk
// construction (the full-merge path) by mutating nodes it alone owns,
// identified by an edit token, and freezes into an ordinary pmap.

import (
	"math/bits"

	"servdisc/internal/netaddr"
)

const (
	pmapBits  = 6
	pmapWidth = 1 << pmapBits
	pmapMask  = pmapWidth - 1
)

// mix64 is the splitmix64 finalizer: a bijection on uint64, so composing
// it with an injective key encoding yields collision-free hashes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashServiceKey packs (addr, proto, port) into disjoint bit ranges —
// injective by construction — and mixes.
func hashServiceKey(k ServiceKey) uint64 {
	return mix64(uint64(k.Addr)<<24 | uint64(k.Proto)<<16 | uint64(k.Port))
}

// hashV4 mixes the (already unique) 32-bit address.
func hashV4(a netaddr.V4) uint64 { return mix64(uint64(a)) }

// pmapEdit is a transient builder's ownership token: nodes stamped with a
// live token may be mutated in place by that builder alone.
type pmapEdit struct{ _ byte }

// pnode is one trie node. dataMap marks slots holding an inline key/value
// pair, nodeMap slots holding a child node; keys/vals and kids are packed
// dense in slot order.
type pnode[K comparable, V any] struct {
	dataMap uint64
	nodeMap uint64
	keys    []K
	vals    []V
	kids    []*pnode[K, V]
	edit    *pmapEdit
}

// pmap is an immutable hash map value. The zero value is unusable: build
// with newPmap to bind the hash function.
type pmap[K comparable, V any] struct {
	hash func(K) uint64
	root *pnode[K, V]
	n    int
}

func newPmap[K comparable, V any](hash func(K) uint64) pmap[K, V] {
	return pmap[K, V]{hash: hash}
}

func (m pmap[K, V]) Len() int { return m.n }

func (m pmap[K, V]) Get(k K) (V, bool) {
	var zero V
	n := m.root
	if n == nil {
		return zero, false
	}
	h := m.hash(k)
	for shift := uint(0); ; shift += pmapBits {
		if shift >= 64 {
			panic("pmap: hash bits exhausted")
		}
		bit := uint64(1) << ((h >> shift) & pmapMask)
		if n.dataMap&bit != 0 {
			i := bits.OnesCount64(n.dataMap & (bit - 1))
			if n.keys[i] == k {
				return n.vals[i], true
			}
			return zero, false
		}
		if n.nodeMap&bit == 0 {
			return zero, false
		}
		n = n.kids[bits.OnesCount64(n.nodeMap&(bit-1))]
	}
}

// Set returns a map with k bound to v; m is untouched.
func (m pmap[K, V]) Set(k K, v V) pmap[K, V] {
	root, added := pmapSet(m.root, 0, m.hash(k), k, v, m.hash, nil)
	n := m.n
	if added {
		n++
	}
	return pmap[K, V]{hash: m.hash, root: root, n: n}
}

// Delete returns a map without k; m is untouched. Absent keys are a no-op
// (the same map value comes back).
func (m pmap[K, V]) Delete(k K) pmap[K, V] {
	if m.root == nil {
		return m
	}
	root, removed := pmapDel(m.root, 0, m.hash(k), k, nil)
	if !removed {
		return m
	}
	return pmap[K, V]{hash: m.hash, root: root, n: m.n - 1}
}

// each visits every entry in an unspecified (but deterministic for a given
// map value) order until yield returns false.
func (m pmap[K, V]) each(yield func(K, V) bool) {
	if m.root != nil {
		m.root.each(yield)
	}
}

func (n *pnode[K, V]) each(yield func(K, V) bool) bool {
	for i := range n.keys {
		if !yield(n.keys[i], n.vals[i]) {
			return false
		}
	}
	for _, kid := range n.kids {
		if !kid.each(yield) {
			return false
		}
	}
	return true
}

// owned returns n itself when the edit token proves exclusive ownership,
// or a copy stamped with the token otherwise.
func (n *pnode[K, V]) owned(edit *pmapEdit) *pnode[K, V] {
	if edit != nil && n.edit == edit {
		return n
	}
	return &pnode[K, V]{
		dataMap: n.dataMap,
		nodeMap: n.nodeMap,
		keys:    append([]K(nil), n.keys...),
		vals:    append([]V(nil), n.vals...),
		kids:    append([]*pnode[K, V](nil), n.kids...),
		edit:    edit,
	}
}

func pmapSet[K comparable, V any](n *pnode[K, V], shift uint, h uint64, k K, v V, hash func(K) uint64, edit *pmapEdit) (*pnode[K, V], bool) {
	if shift >= 64 {
		panic("pmap: hash bits exhausted")
	}
	bit := uint64(1) << ((h >> shift) & pmapMask)
	if n == nil {
		return &pnode[K, V]{dataMap: bit, keys: []K{k}, vals: []V{v}, edit: edit}, true
	}
	switch {
	case n.dataMap&bit != 0:
		i := bits.OnesCount64(n.dataMap & (bit - 1))
		if n.keys[i] == k {
			c := n.owned(edit)
			c.vals[i] = v
			return c, false
		}
		// Slot collision at this level: push both entries one level down.
		child := pmapMerge(shift+pmapBits, hash(n.keys[i]), n.keys[i], n.vals[i], h, k, v, edit)
		c := n.owned(edit)
		c.dataMap &^= bit
		c.keys = append(c.keys[:i], c.keys[i+1:]...)
		c.vals = append(c.vals[:i], c.vals[i+1:]...)
		j := bits.OnesCount64(c.nodeMap & (bit - 1))
		c.nodeMap |= bit
		c.kids = append(c.kids, nil)
		copy(c.kids[j+1:], c.kids[j:])
		c.kids[j] = child
		return c, true
	case n.nodeMap&bit != 0:
		j := bits.OnesCount64(n.nodeMap & (bit - 1))
		child, added := pmapSet(n.kids[j], shift+pmapBits, h, k, v, hash, edit)
		c := n.owned(edit)
		c.kids[j] = child
		return c, added
	default:
		i := bits.OnesCount64(n.dataMap & (bit - 1))
		c := n.owned(edit)
		c.dataMap |= bit
		c.keys = append(c.keys, k)
		copy(c.keys[i+1:], c.keys[i:])
		c.keys[i] = k
		c.vals = append(c.vals, v)
		copy(c.vals[i+1:], c.vals[i:])
		c.vals[i] = v
		return c, true
	}
}

// pmapMerge builds the subtree holding two entries whose hashes agree on
// every level above shift. Injective hashing guarantees divergence before
// the bits run out.
func pmapMerge[K comparable, V any](shift uint, h1 uint64, k1 K, v1 V, h2 uint64, k2 K, v2 V, edit *pmapEdit) *pnode[K, V] {
	if shift >= 64 {
		panic("pmap: hash collision (non-injective key encoding)")
	}
	i1 := (h1 >> shift) & pmapMask
	i2 := (h2 >> shift) & pmapMask
	if i1 == i2 {
		child := pmapMerge(shift+pmapBits, h1, k1, v1, h2, k2, v2, edit)
		return &pnode[K, V]{nodeMap: 1 << i1, kids: []*pnode[K, V]{child}, edit: edit}
	}
	if i1 > i2 {
		k1, k2 = k2, k1
		v1, v2 = v2, v1
		i1, i2 = i2, i1
	}
	return &pnode[K, V]{
		dataMap: 1<<i1 | 1<<i2,
		keys:    []K{k1, k2},
		vals:    []V{v1, v2},
		edit:    edit,
	}
}

func pmapDel[K comparable, V any](n *pnode[K, V], shift uint, h uint64, k K, edit *pmapEdit) (*pnode[K, V], bool) {
	if shift >= 64 {
		panic("pmap: hash bits exhausted")
	}
	bit := uint64(1) << ((h >> shift) & pmapMask)
	switch {
	case n.dataMap&bit != 0:
		i := bits.OnesCount64(n.dataMap & (bit - 1))
		if n.keys[i] != k {
			return n, false
		}
		if n.dataMap == bit && n.nodeMap == 0 {
			return nil, true
		}
		c := n.owned(edit)
		c.dataMap &^= bit
		c.keys = append(c.keys[:i], c.keys[i+1:]...)
		c.vals = append(c.vals[:i], c.vals[i+1:]...)
		return c, true
	case n.nodeMap&bit != 0:
		j := bits.OnesCount64(n.nodeMap & (bit - 1))
		child, removed := pmapDel(n.kids[j], shift+pmapBits, h, k, edit)
		if !removed {
			return n, false
		}
		if child == nil {
			if n.nodeMap == bit && n.dataMap == 0 {
				return nil, true
			}
			c := n.owned(edit)
			c.nodeMap &^= bit
			c.kids = append(c.kids[:j], c.kids[j+1:]...)
			return c, true
		}
		c := n.owned(edit)
		c.kids[j] = child
		return c, true
	default:
		return n, false
	}
}

// pmapBuilder is a transient: a mutable accumulator over pmap structure.
// Mutations touch only nodes stamped with the builder's edit token, so the
// base map (and anything frozen out of the builder) is never disturbed.
// Single-goroutine; freeze() before sharing the result.
type pmapBuilder[K comparable, V any] struct {
	m    pmap[K, V]
	edit *pmapEdit
}

// builder opens a transient over the map's current contents.
func (m pmap[K, V]) builder() *pmapBuilder[K, V] {
	return &pmapBuilder[K, V]{m: m, edit: &pmapEdit{}}
}

func (b *pmapBuilder[K, V]) Set(k K, v V) {
	root, added := pmapSet(b.m.root, 0, b.m.hash(k), k, v, b.m.hash, b.edit)
	b.m.root = root
	if added {
		b.m.n++
	}
}

func (b *pmapBuilder[K, V]) Delete(k K) {
	if b.m.root == nil {
		return
	}
	root, removed := pmapDel(b.m.root, 0, b.m.hash(k), k, b.edit)
	if removed {
		b.m.root = root
		b.m.n--
	}
}

func (b *pmapBuilder[K, V]) Get(k K) (V, bool) { return b.m.Get(k) }

func (b *pmapBuilder[K, V]) Len() int { return b.m.n }

// freeze returns the accumulated map and retires the edit token: later
// builder mutations copy rather than touching anything frozen here.
func (b *pmapBuilder[K, V]) freeze() pmap[K, V] {
	b.edit = &pmapEdit{}
	return b.m
}
