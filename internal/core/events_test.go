package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"servdisc/internal/netaddr"
	"servdisc/internal/stats"
)

// drainEvents collects everything buffered in a subscription after the
// engine has closed (the channel is closed, so the loop terminates).
func drainEvents(sub *EventSub) []Event {
	var out []Event
	for ev := range sub.Events() {
		out = append(out, ev)
	}
	return out
}

// eventStrings renders events one per line for comparison.
func eventStrings(events []Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = ev.String()
	}
	return out
}

// TestEventStreamDeterministicReplay is the determinism satellite: the
// same campaign replayed twice — same packets, reports, and interleaving —
// yields the same multiset of events, at every shard count; and since the
// cross-technique join works on observation timestamps, the multiset is
// the same across shard counts too (inline mode, where ingest order is
// fully deterministic).
func TestEventStreamDeterministicReplay(t *testing.T) {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	tcpPorts := []uint16{21, 22, 80, 443, 3306}
	pkts := genTrace(3, 20000)
	reps := genReports(6)

	run := func(shards int) []string {
		h := NewHybrid(campusPfx, udpPorts, shards, tcpPorts)
		sub := h.Subscribe(1 << 17)
		feedHybrid(h, pkts, reps, stats.NewRNG(77).Derive("events"))
		h.Close()
		if sub.Dropped() != 0 {
			t.Fatalf("shards=%d: %d events dropped despite the huge buffer", shards, sub.Dropped())
		}
		lines := eventStrings(drainEvents(sub))
		sort.Strings(lines) // multiset comparison
		return lines
	}

	var ref []string
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			first := run(shards)
			again := run(shards)
			if len(first) == 0 {
				t.Fatal("campaign produced no events")
			}
			if fmt.Sprint(first) != fmt.Sprint(again) {
				t.Fatal("replaying the same campaign changed the event multiset")
			}
			if ref == nil {
				ref = first
				return
			}
			if fmt.Sprint(ref) != fmt.Sprint(first) {
				t.Fatal("event multiset differs across shard counts")
			}
		})
	}
}

// TestEventsExactlyOncePerService is the acceptance property: under
// concurrent passive+active ingest, Watch-style subscribers see every
// ServiceDiscovered exactly once per service, upgrades exactly for the
// both-technique services, and one ScanCompleted per report.
func TestEventsExactlyOncePerService(t *testing.T) {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	tcpPorts := []uint16{21, 22, 80, 443, 3306}
	pkts := genTrace(3, 20000)
	reps := genReports(6)

	h := NewHybrid(campusPfx, udpPorts, 8, tcpPorts)
	sub := h.Subscribe(1 << 17)
	h.Run(context.Background())

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // single passive producer
		defer wg.Done()
		feedBatches(h, pkts, stats.NewRNG(1).Derive("batching"))
	}()
	go func() { // concurrent report producer
		defer wg.Done()
		for _, rep := range reps {
			h.AddReport(rep)
		}
	}()
	wg.Wait()
	h.Close()
	if sub.Dropped() != 0 {
		t.Fatalf("%d events dropped despite the huge buffer", sub.Dropped())
	}

	inv := h.Snapshot()
	discovered := make(map[ServiceKey]int)
	upgraded := make(map[ServiceKey]int)
	scanDone := 0
	for _, ev := range drainEvents(sub) {
		switch ev.Kind {
		case EventServiceDiscovered:
			discovered[ev.Key]++
		case EventProvenanceUpgraded:
			upgraded[ev.Key]++
		case EventScanCompleted:
			scanDone++
		}
	}
	if scanDone != len(reps) {
		t.Errorf("ScanCompleted events = %d, want %d", scanDone, len(reps))
	}
	keys := inv.Keys()
	if len(discovered) != len(keys) {
		t.Fatalf("discovered %d distinct services, inventory has %d", len(discovered), len(keys))
	}
	for _, key := range keys {
		if n := discovered[key]; n != 1 {
			t.Fatalf("service %v discovered %d times", key, n)
		}
		prov, _ := inv.Provenance(key)
		both := prov == PassiveFirst || prov == ActiveFirst
		if n := upgraded[key]; (both && n != 1) || (!both && n != 0) {
			t.Fatalf("service %v (%v) upgraded %d times", key, prov, n)
		}
	}
}

// TestSlowSubscriberDropsNotStalls is the backpressure satellite: a
// subscriber that never drains its one-slot buffer loses events (counted)
// while ingest runs to completion unimpeded.
func TestSlowSubscriberDropsNotStalls(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	pkts := genTrace(6, 20000)

	sp := NewShardedPassive(campus, []uint16{53}, 4)
	slow := sp.Subscribe(1) // never drained until the end
	sp.Run(context.Background())
	feedBatches(sp, pkts, stats.NewRNG(2).Derive("batching"))
	sp.Close()

	if slow.Dropped() == 0 {
		t.Fatal("one-slot subscriber dropped nothing on a multi-hundred-event campaign")
	}
	if got := len(drainEvents(slow)); got != 1 {
		t.Fatalf("slow subscriber buffered %d events, want 1", got)
	}
	if c := sp.EventCounters(); c.Dropped() != slow.Dropped() {
		t.Errorf("hub counted %d drops, subscriber %d", c.Dropped(), slow.Dropped())
	}
	// Ingest was unaffected: the snapshot covers the full stream.
	if got := sp.Snapshot().Packets(); got != len(pkts) {
		t.Errorf("ingest stalled: %d of %d packets", got, len(pkts))
	}
}

// TestScannerDetectedEvents checks online scan detection against the
// offline detector: one event per above-threshold source, none for the
// below-threshold one, fired at crossing time.
func TestScannerDetectedEvents(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	pkts := genTrace(1, 20000)

	sp := NewShardedPassive(campus, []uint16{53}, 2)
	sub := sp.Subscribe(1 << 16)
	sp.HandleBatch(pkts)
	inv := sp.Snapshot()
	sp.Close()

	want := make(map[netaddr.V4]bool)
	for _, s := range inv.Scanners() {
		want[s.Source] = true
	}
	if len(want) == 0 {
		t.Fatal("degenerate trace: no scanners detected")
	}
	got := make(map[netaddr.V4]int)
	for _, ev := range drainEvents(sub) {
		if ev.Kind != EventScannerDetected {
			continue
		}
		got[ev.Scanner.Source]++
		if ev.Scanner.UniqueDsts < ScanDetectMinDsts || ev.Scanner.RstDsts < ScanDetectMinRsts {
			t.Errorf("scanner %v flagged below threshold: %d/%d",
				ev.Scanner.Source, ev.Scanner.UniqueDsts, ev.Scanner.RstDsts)
		}
		if ev.Time.IsZero() {
			t.Errorf("scanner %v event lacks a crossing timestamp", ev.Scanner.Source)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scanner events for %d sources, detector found %d", len(got), len(want))
	}
	for src, n := range got {
		if !want[src] {
			t.Errorf("event for undetected scanner %v", src)
		}
		if n != 1 {
			t.Errorf("scanner %v fired %d events", src, n)
		}
	}
}
