package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/stats"
)

// splitBatches slices pkts into consecutive batches of the given size.
func splitBatches(pkts []packet.Packet, size int) [][]packet.Packet {
	var out [][]packet.Packet
	for off := 0; off < len(pkts); off += size {
		end := off + size
		if end > len(pkts) {
			end = len(pkts)
		}
		out = append(out, pkts[off:end])
	}
	return out
}

// refPassiveDump is the legacy freeze-then-snapshot reference: a
// single-threaded discoverer over a prefix of the stream, frozen with
// NewInventory.
func refPassiveDump(campus netaddr.Prefix, udpPorts []uint16, pkts []packet.Packet) []byte {
	ref := NewPassiveDiscoverer(campus, udpPorts)
	ref.HandleBatch(pkts)
	return NewInventory(ref).Dump()
}

// TestLiveSnapshotMatchesFrozen is the tentpole acceptance property:
// Snapshot on a running, un-flushed, un-closed engine must be
// byte-identical to pausing the producer, flushing, and snapshotting at
// the same ingest point — at shard counts 1, 2 and 8, at several cut
// points — and the snapshot must be non-terminal: ingest continues and a
// later snapshot reflects the full stream.
func TestLiveSnapshotMatchesFrozen(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	pkts := genTrace(11, 20000)
	batches := splitBatches(pkts, 256)
	cuts := []int{1, len(batches) / 4, len(batches) / 2, len(batches) - 1}

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sp := NewShardedPassive(campus, udpPorts, shards)
			sp.Run(context.Background())
			fed := 0
			for _, cut := range cuts {
				for ; fed < cut; fed++ {
					sp.HandleBatch(batches[fed])
				}
				// No Flush, no Close: the workers may still be draining
				// their queues when the snapshot marker goes in.
				got := sp.Snapshot().Dump()
				want := refPassiveDump(campus, udpPorts, pkts[:fed*256])
				if !bytes.Equal(want, got) {
					t.Fatalf("live snapshot at batch %d differs from frozen reference", cut)
				}
			}
			// Non-terminal: keep feeding after the snapshots, then compare
			// the final state against the full reference.
			for ; fed < len(batches); fed++ {
				sp.HandleBatch(batches[fed])
			}
			sp.Close()
			if got := sp.Snapshot().Dump(); !bytes.Equal(refPassiveDump(campus, udpPorts, pkts), got) {
				t.Fatal("post-snapshot ingest lost packets: final snapshot differs")
			}
		})
	}
}

// TestLiveSnapshotConcurrentWithIngest snapshots from a second goroutine
// while the producer keeps feeding, with no pauses at all. Every snapshot
// must land on a whole-batch boundary of the producer's stream and match
// the frozen reference for exactly that prefix.
func TestLiveSnapshotConcurrentWithIngest(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	pkts := genTrace(5, 20000)
	const batchSize = 64
	batches := splitBatches(pkts, batchSize)

	sp := NewShardedPassive(campus, udpPorts, 4)
	sp.Run(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, b := range batches {
			sp.HandleBatch(b)
		}
	}()

	var snaps []*Inventory
	for i := 0; i < 25; i++ {
		snaps = append(snaps, sp.Snapshot())
	}
	wg.Wait()
	sp.Close()

	prev := -1
	for _, inv := range snaps {
		n := inv.Packets()
		if n%batchSize != 0 && n != len(pkts) {
			t.Fatalf("snapshot caught a torn batch: %d packets", n)
		}
		if n < prev {
			t.Fatalf("snapshots went backwards: %d after %d", n, prev)
		}
		prev = n
		if got := inv.Dump(); !bytes.Equal(refPassiveDump(campus, udpPorts, pkts[:n]), got) {
			t.Fatalf("concurrent snapshot at %d packets differs from frozen reference", n)
		}
	}
	if got := sp.Snapshot().Dump(); !bytes.Equal(refPassiveDump(campus, udpPorts, pkts), got) {
		t.Fatal("final snapshot differs from full reference")
	}
}

// TestSnapshotReusesFrozenViews pins the generation machinery: an
// unchanged engine returns the identical Inventory, and ingest
// invalidates it.
func TestSnapshotReusesFrozenViews(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	pkts := genTrace(9, 4000)
	sp := NewShardedPassive(campus, []uint16{53}, 4)
	sp.HandleBatch(pkts[:2000])

	inv1 := sp.Snapshot()
	inv2 := sp.Snapshot()
	if inv1 != inv2 {
		t.Error("unchanged engine rebuilt its snapshot")
	}
	sp.HandleBatch(pkts[2000:])
	inv3 := sp.Snapshot()
	if inv3 == inv1 {
		t.Error("ingest did not invalidate the snapshot cache")
	}
	if inv3.Packets() != len(pkts) {
		t.Errorf("snapshot covers %d packets, want %d", inv3.Packets(), len(pkts))
	}
	// The first snapshot stayed frozen while the engine moved on.
	if inv1.Packets() != 2000 {
		t.Errorf("old snapshot mutated: %d packets", inv1.Packets())
	}
}

// TestHybridLiveSnapshotMatchesFrozen extends the acceptance property to
// the hybrid engine: a mid-stream snapshot under running workers (both
// passive batches and scan reports in flight) must equal the legacy
// freeze-then-snapshot of the same prefix.
func TestHybridLiveSnapshotMatchesFrozen(t *testing.T) {
	campusPfx := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	tcpPorts := []uint16{21, 22, 80, 443, 3306}
	pkts := genTrace(4, 20000)
	reps := genReports(6)
	batches := splitBatches(pkts, 256)

	// refDump freezes a prefix via the legacy path: inline hybrid, then
	// NewHybridInventory over the merged passive side and the live active
	// side.
	refDump := func(nb, nr int) []byte {
		ref := NewHybrid(campusPfx, udpPorts, 1, tcpPorts)
		for _, b := range batches[:nb] {
			ref.HandleBatch(b)
		}
		for _, rep := range reps[:nr] {
			ref.AddReport(rep)
		}
		return NewHybridInventory(ref.passive.Merge(), ref.active).Dump()
	}

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			h := NewHybrid(campusPfx, udpPorts, shards, tcpPorts)
			h.Run(context.Background())
			rng := stats.NewRNG(42).Derive("live-hybrid")
			nb, nr := 0, 0
			for nb < len(batches) || nr < len(reps) {
				if nr < len(reps) && (nb == len(batches) || rng.Intn(len(batches)/len(reps)) == 0) {
					h.AddReport(reps[nr])
					nr++
				} else {
					h.HandleBatch(batches[nb])
					nb++
				}
				if (nb+nr)%50 == 7 {
					// Reports are applied by the reconciler goroutine:
					// wait for it so the reference point is well-defined,
					// but leave the batch queues un-flushed.
					h.inflight.Wait()
					if got := h.Snapshot().Dump(); !bytes.Equal(refDump(nb, nr), got) {
						t.Fatalf("live hybrid snapshot at (%d batches, %d reports) differs", nb, nr)
					}
				}
			}
			h.Close()
			if got := h.Snapshot().Dump(); !bytes.Equal(refDump(len(batches), len(reps)), got) {
				t.Fatal("final hybrid snapshot differs from full reference")
			}
		})
	}
}
