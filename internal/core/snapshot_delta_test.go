package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
)

// deltaRecorder captures every OnSnapshot invocation.
type deltaRecorder struct {
	prevs  []*Inventory
	invs   []*Inventory
	deltas []SnapshotDelta
}

func (r *deltaRecorder) observe(prev, inv *Inventory, d SnapshotDelta) {
	r.prevs = append(r.prevs, prev)
	r.invs = append(r.invs, inv)
	r.deltas = append(r.deltas, d)
}

func keySet(keys []ServiceKey) map[ServiceKey]bool {
	out := make(map[ServiceKey]bool, len(keys))
	for _, k := range keys {
		out[k] = true
	}
	return out
}

// checkDelta verifies one observed transition: sorted disjoint sets, and
// prev's key set patched by the delta equals inv's key set.
func checkDelta(t *testing.T, prev, inv *Inventory, d SnapshotDelta, ctx string) {
	t.Helper()
	if d.Full {
		return
	}
	sorted := func(name string, ks []ServiceKey) {
		for i := 1; i < len(ks); i++ {
			if !ks[i-1].Before(ks[i]) {
				t.Fatalf("%s: %s not sorted/unique at %d", ctx, name, i)
			}
		}
	}
	sorted("Added", d.Added)
	sorted("Updated", d.Updated)
	sorted("Removed", d.Removed)
	add, upd, rem := keySet(d.Added), keySet(d.Updated), keySet(d.Removed)
	for k := range add {
		if upd[k] || rem[k] {
			t.Fatalf("%s: key %v in multiple delta sets", ctx, k)
		}
	}
	for k := range upd {
		if rem[k] {
			t.Fatalf("%s: key %v both updated and removed", ctx, k)
		}
	}
	want := map[ServiceKey]bool{}
	if prev != nil {
		for _, k := range prev.Keys() {
			want[k] = true
		}
	}
	for k := range add {
		want[k] = true
	}
	for k := range rem {
		delete(want, k)
	}
	got := keySet(inv.Keys())
	if len(got) != len(want) {
		t.Fatalf("%s: delta-patched key set has %d keys, inventory %d", ctx, len(want), len(got))
	}
	for k := range got {
		if !want[k] {
			t.Fatalf("%s: inventory key %v not produced by delta", ctx, k)
		}
	}
	for k := range upd {
		if !got[k] {
			t.Fatalf("%s: updated key %v not in inventory", ctx, k)
		}
		if prev != nil {
			if _, ok := prev.Provenance(k); !ok {
				t.Fatalf("%s: updated key %v was not in prev", ctx, k)
			}
		}
	}
}

// Passive engine: discovery, churn, expiry and rebirth all surface as
// correct deltas, at several shard counts.
func TestSnapshotDeltaObserverPassive(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			pfx := netaddr.MustParsePrefix("10.30.0.0/16")
			t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
			sp := NewShardedPassive(pfx, nil, shards)
			defer sp.Close()
			sp.SetRetention(RetentionPolicy{PassiveTTL: 20 * time.Minute})
			sp.Run(context.Background())
			rec := &deltaRecorder{}
			sp.OnSnapshot(rec.observe)

			bld := packet.NewBuilder(0)
			client := packet.Endpoint{Addr: netaddr.MustParseV4("64.9.0.1"), Port: 33000}
			rng := rand.New(rand.NewSource(int64(shards)))
			now := t0
			for round := 0; round < 20; round++ {
				var batch []packet.Packet
				for i, n := 0, 30+rng.Intn(60); i < n; i++ {
					idx := rng.Intn(200)
					ep := packet.Endpoint{Addr: pfx.Base() + netaddr.V4(1+idx/4), Port: uint16(2000 + idx%4)}
					batch = append(batch, *bld.SynAck(now, ep, client, 1, 1))
					now = now.Add(time.Second)
				}
				now = now.Add(4 * time.Minute)
				sp.HandleBatch(batch)
				sp.Flush()
				sp.Snapshot()
				// Cache hit: a repeated snapshot of the unchanged engine
				// must not re-notify.
				n := len(rec.deltas)
				sp.Snapshot()
				if len(rec.deltas) != n {
					t.Fatal("cached snapshot invoked the observer")
				}
			}
			var prev *Inventory
			deltaCount := 0
			for i := range rec.deltas {
				if rec.prevs[i] != prev && rec.deltas[i].Full == false {
					t.Fatalf("observation %d: prev pointer does not chain", i)
				}
				checkDelta(t, rec.prevs[i], rec.invs[i], rec.deltas[i], fmt.Sprintf("obs %d", i))
				if !rec.deltas[i].Full {
					deltaCount++
					if len(rec.deltas[i].Updated) == 0 && len(rec.deltas[i].Added) == 0 && len(rec.deltas[i].Removed) == 0 {
						t.Errorf("obs %d: empty non-full delta for a changed snapshot", i)
					}
				}
				prev = rec.invs[i]
			}
			if deltaCount == 0 {
				t.Error("no delta-path observations")
			}
		})
	}
}

// Hybrid engine: a passive expiry of a probe-confirmed service must
// surface as Updated (downgrade to ActiveOnly), not Removed; an active
// report forces a Full rebuild.
func TestSnapshotDeltaObserverHybridDowngrade(t *testing.T) {
	pfx := netaddr.MustParsePrefix("10.40.0.0/16")
	t0 := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	h := NewHybrid(pfx, nil, 2, []uint16{80})
	defer h.Close()
	h.SetRetention(RetentionPolicy{PassiveTTL: 10 * time.Minute})
	rec := &deltaRecorder{}
	h.OnSnapshot(rec.observe)

	bld := packet.NewBuilder(0)
	client := packet.Endpoint{Addr: netaddr.MustParseV4("64.9.0.1"), Port: 33000}
	srv := pfx.Base() + 7
	other := pfx.Base() + 9
	svc := ServiceKey{Addr: srv, Proto: packet.ProtoTCP, Port: 80}

	// Passive evidence for two services; a probe confirms one of them.
	h.HandleBatch([]packet.Packet{
		*bld.SynAck(t0, packet.Endpoint{Addr: srv, Port: 80}, client, 1, 1),
		*bld.SynAck(t0.Add(time.Second), packet.Endpoint{Addr: other, Port: 80}, client, 1, 1),
	})
	h.AddReport(&probe.ScanReport{
		ID: 1, Started: t0.Add(time.Minute), Finished: t0.Add(2 * time.Minute),
		TCP: []probe.TCPResult{{Time: t0.Add(time.Minute), Addr: srv, Port: 80, State: probe.StateOpen}},
	})
	inv := h.Snapshot()
	if inv.Len() != 2 {
		t.Fatalf("inventory has %d services, want 2", inv.Len())
	}
	if len(rec.deltas) == 0 || !rec.deltas[len(rec.deltas)-1].Full {
		t.Fatal("report application should have produced a Full observation")
	}

	// Background population seen at t0+9m, so it outlives the expiry round
	// below and keeps the per-seal churn small relative to the inventory
	// (a seal touching most of the shard re-merges rather than patching —
	// that path is exercised by the Full assertions, not this one).
	var fill []packet.Packet
	for i := 0; i < 200; i++ {
		ep := packet.Endpoint{Addr: pfx.Base() + netaddr.V4(100+i), Port: 8080}
		fill = append(fill, *bld.SynAck(t0.Add(9*time.Minute), ep, client, 1, 1))
	}
	h.HandleBatch(fill)
	h.Flush()
	h.Snapshot()

	// Advance the observation clock past the original pair's deadline with
	// unrelated traffic: both records expire passively, but svc answered a
	// probe — it must downgrade, not leave.
	h.HandleBatch([]packet.Packet{
		*bld.SynAck(t0.Add(12*time.Minute), packet.Endpoint{Addr: pfx.Base() + 50, Port: 81}, client, 1, 1),
	})
	h.Flush()
	inv2 := h.Snapshot()
	d := rec.deltas[len(rec.deltas)-1]
	checkDelta(t, rec.prevs[len(rec.prevs)-1], inv2, d, "downgrade")
	if d.Full {
		t.Fatal("expiry round unexpectedly took the full path")
	}
	if got := keySet(d.Updated); !got[svc] {
		t.Fatalf("downgraded service not in Updated: %+v", d)
	}
	if got := keySet(d.Removed); !got[ServiceKey{Addr: other, Proto: packet.ProtoTCP, Port: 80}] {
		t.Fatalf("fully-expired service not in Removed: %+v", d)
	}
	if p, ok := inv2.Provenance(svc); !ok || p != ActiveOnly {
		t.Fatalf("downgraded service provenance = %v/%v, want ActiveOnly", p, ok)
	}
}
