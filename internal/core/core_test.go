package core

import (
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
)

var (
	campusPfx = netaddr.MustParsePrefix("128.125.0.0/16")
	srv       = netaddr.MustParseV4("128.125.7.9")
	srv2      = netaddr.MustParseV4("128.125.7.10")
	cli       = netaddr.MustParseV4("64.1.2.3")
	cli2      = netaddr.MustParseV4("64.1.2.4")
	scanner   = netaddr.MustParseV4("211.9.9.9")
	t0        = time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	bld       = packet.NewBuilder(0)
)

func synAck(at time.Time, from netaddr.V4, port uint16, to netaddr.V4) *packet.Packet {
	return bld.SynAck(at, packet.Endpoint{Addr: from, Port: port}, packet.Endpoint{Addr: to, Port: 40000}, 1, 2)
}

func TestPassiveTCPDiscovery(t *testing.T) {
	d := NewPassiveDiscoverer(campusPfx, nil)
	d.HandlePacket(synAck(t0, srv, 80, cli))
	d.HandlePacket(synAck(t0.Add(time.Minute), srv, 80, cli2))
	d.HandlePacket(synAck(t0.Add(2*time.Minute), srv, 80, cli)) // repeat client

	key := ServiceKey{Addr: srv, Proto: packet.ProtoTCP, Port: 80}
	rec, ok := d.Record(key)
	if !ok {
		t.Fatal("service not discovered")
	}
	if !rec.FirstSeen.Equal(t0) {
		t.Errorf("FirstSeen = %v", rec.FirstSeen)
	}
	if rec.Flows != 3 {
		t.Errorf("Flows = %d", rec.Flows)
	}
	if rec.Clients() != 2 {
		t.Errorf("Clients = %d", rec.Clients())
	}
}

func TestPassiveIgnoresExternalSynAck(t *testing.T) {
	d := NewPassiveDiscoverer(campusPfx, nil)
	// An external server accepting an outbound campus connection is not a
	// campus service.
	d.HandlePacket(synAck(t0, cli, 80, srv))
	if len(d.Services()) != 0 {
		t.Error("external SYN-ACK treated as campus service")
	}
}

func TestPassiveUDPDiscovery(t *testing.T) {
	d := NewPassiveDiscoverer(campusPfx, []uint16{53, 137})
	// Reply from campus DNS port: evidence.
	d.HandlePacket(bld.UDPPacket(t0, packet.Endpoint{Addr: srv, Port: 53}, packet.Endpoint{Addr: cli, Port: 9999}, []byte("r")))
	// Campus traffic from a non-well-known port: no evidence.
	d.HandlePacket(bld.UDPPacket(t0, packet.Endpoint{Addr: srv, Port: 8000}, packet.Endpoint{Addr: cli, Port: 9999}, []byte("r")))
	// Inbound query TO port 53: no evidence either (request, not service proof).
	d.HandlePacket(bld.UDPPacket(t0, packet.Endpoint{Addr: cli, Port: 9999}, packet.Endpoint{Addr: srv2, Port: 53}, []byte("q")))

	if len(d.Services()) != 1 {
		t.Fatalf("services = %d", len(d.Services()))
	}
	if _, ok := d.Record(ServiceKey{Addr: srv, Proto: packet.ProtoUDP, Port: 53}); !ok {
		t.Error("DNS service missing")
	}
}

func TestScanDetectorThresholds(t *testing.T) {
	d := NewPassiveDiscoverer(campusPfx, nil)
	// Scanner touches 150 addresses and gets 120 RSTs: detected.
	for i := 0; i < 150; i++ {
		dst := srv + netaddr.V4(i)
		d.HandlePacket(bld.Syn(t0.Add(time.Duration(i)*time.Second), packet.Endpoint{Addr: scanner, Port: 40000}, packet.Endpoint{Addr: dst, Port: 80}, 1))
		if i < 120 {
			d.HandlePacket(bld.Rst(t0.Add(time.Duration(i)*time.Second+time.Millisecond), packet.Endpoint{Addr: dst, Port: 80}, packet.Endpoint{Addr: scanner, Port: 40000}, 0))
		}
	}
	// A busy legitimate client: contacts 150 addresses but few RSTs.
	for i := 0; i < 150; i++ {
		dst := srv + netaddr.V4(i)
		d.HandlePacket(bld.Syn(t0.Add(time.Duration(i)*time.Second), packet.Endpoint{Addr: cli, Port: 40001}, packet.Endpoint{Addr: dst, Port: 80}, 1))
	}
	scanners := d.DetectScanners()
	if len(scanners) != 1 {
		t.Fatalf("detected %d scanners", len(scanners))
	}
	if scanners[0].Source != scanner {
		t.Errorf("detected %v", scanners[0].Source)
	}
	if scanners[0].UniqueDsts != 150 || scanners[0].RstDsts != 120 {
		t.Errorf("stats = %d/%d", scanners[0].UniqueDsts, scanners[0].RstDsts)
	}
}

func TestScanDetectorBelowThreshold(t *testing.T) {
	d := NewPassiveDiscoverer(campusPfx, nil)
	// 99 destinations with RSTs: below the 100 threshold.
	for i := 0; i < 99; i++ {
		dst := srv + netaddr.V4(i)
		d.HandlePacket(bld.Syn(t0, packet.Endpoint{Addr: scanner, Port: 1}, packet.Endpoint{Addr: dst, Port: 80}, 1))
		d.HandlePacket(bld.Rst(t0, packet.Endpoint{Addr: dst, Port: 80}, packet.Endpoint{Addr: scanner, Port: 1}, 0))
	}
	if len(d.DetectScanners()) != 0 {
		t.Error("sub-threshold source detected")
	}
}

func TestScanDetectorWindowing(t *testing.T) {
	d := NewPassiveDiscoverer(campusPfx, nil)
	// 60 contacts in window 1, 60 more a day later: never 100 in one
	// 12-hour window.
	for i := 0; i < 60; i++ {
		dst := srv + netaddr.V4(i)
		d.HandlePacket(bld.Syn(t0, packet.Endpoint{Addr: scanner, Port: 1}, packet.Endpoint{Addr: dst, Port: 80}, 1))
		d.HandlePacket(bld.Rst(t0, packet.Endpoint{Addr: dst, Port: 80}, packet.Endpoint{Addr: scanner, Port: 1}, 0))
	}
	later := t0.Add(24 * time.Hour)
	for i := 60; i < 120; i++ {
		dst := srv + netaddr.V4(i)
		d.HandlePacket(bld.Syn(later, packet.Endpoint{Addr: scanner, Port: 1}, packet.Endpoint{Addr: dst, Port: 80}, 1))
		d.HandlePacket(bld.Rst(later, packet.Endpoint{Addr: dst, Port: 80}, packet.Endpoint{Addr: scanner, Port: 1}, 0))
	}
	if len(d.DetectScanners()) != 0 {
		t.Error("slow scanner split across windows detected by 12h rule")
	}
}

func TestFirstSeenExcluding(t *testing.T) {
	d := NewPassiveDiscoverer(campusPfx, nil)
	d.HandlePacket(synAck(t0, srv, 80, scanner))                   // scanner found it first
	d.HandlePacket(synAck(t0.Add(time.Hour), srv, 80, cli))        // real client later
	d.HandlePacket(synAck(t0.Add(2*time.Hour), srv2, 22, scanner)) // scanner-only server

	excluded := map[netaddr.V4]bool{scanner: true}
	first := d.AddrFirstSeenExcluding(excluded, nil)
	if got, ok := first[srv]; !ok || !got.Equal(t0.Add(time.Hour)) {
		t.Errorf("srv first = %v, %v", got, ok)
	}
	if _, ok := first[srv2]; ok {
		t.Error("scanner-only server should vanish when scans removed")
	}
	// Without exclusion both appear at their earliest times.
	all := d.AddrFirstSeen(nil)
	if !all[srv].Equal(t0) || len(all) != 2 {
		t.Errorf("unfiltered = %v", all)
	}
}

func TestActiveDiscoverer(t *testing.T) {
	d := NewActiveDiscoverer([]uint16{22, 80})
	rep := &probe.ScanReport{
		ID: 0, Started: t0, Finished: t0.Add(2 * time.Hour),
		TCP: []probe.TCPResult{
			{Time: t0.Add(time.Minute), Addr: srv, Port: 80, State: probe.StateOpen},
			{Time: t0.Add(time.Minute), Addr: srv, Port: 22, State: probe.StateClosed},
			{Time: t0.Add(2 * time.Minute), Addr: srv2, Port: 80, State: probe.StateFiltered},
			{Time: t0.Add(2 * time.Minute), Addr: srv2, Port: 22, State: probe.StateFiltered},
		},
	}
	d.AddReport(rep)

	if _, ok := d.FirstOpen(ServiceKey{Addr: srv, Proto: packet.ProtoTCP, Port: 80}); !ok {
		t.Error("open service missing")
	}
	if _, ok := d.FirstOpen(ServiceKey{Addr: srv, Proto: packet.ProtoTCP, Port: 22}); ok {
		t.Error("closed port recorded as service")
	}
	if !d.RespondedEver().Contains(srv) {
		t.Error("responding host not marked live")
	}
	if d.RespondedEver().Contains(srv2) {
		t.Error("silent host marked live")
	}
	// First-open must not regress across scans.
	rep2 := &probe.ScanReport{
		ID: 1, Started: t0.Add(12 * time.Hour), Finished: t0.Add(14 * time.Hour),
		TCP: []probe.TCPResult{
			{Time: t0.Add(12 * time.Hour), Addr: srv, Port: 80, State: probe.StateOpen},
		},
	}
	d.AddReport(rep2)
	first, _ := d.FirstOpen(ServiceKey{Addr: srv, Proto: packet.ProtoTCP, Port: 80})
	if !first.Equal(t0.Add(time.Minute)) {
		t.Errorf("FirstOpen regressed to %v", first)
	}
	if len(d.Scans()) != 2 {
		t.Errorf("scans = %d", len(d.Scans()))
	}
}

func TestMixedResponse(t *testing.T) {
	d := NewActiveDiscoverer([]uint16{22, 80})
	d.AddReport(&probe.ScanReport{
		ID: 0, Started: t0, Finished: t0.Add(time.Hour),
		TCP: []probe.TCPResult{
			{Time: t0, Addr: srv, Port: 22, State: probe.StateClosed},
			{Time: t0, Addr: srv, Port: 80, State: probe.StateFiltered},
			{Time: t0, Addr: srv2, Port: 22, State: probe.StateClosed},
			{Time: t0, Addr: srv2, Port: 80, State: probe.StateClosed},
		},
	})
	if !d.MixedResponse(srv) {
		t.Error("RST+silence host not flagged")
	}
	if d.MixedResponse(srv2) {
		t.Error("all-RST host flagged")
	}
}

func TestCompletenessRowAlgebra(t *testing.T) {
	p := NewPassiveDiscoverer(campusPfx, nil)
	p.HandlePacket(synAck(t0.Add(time.Hour), srv, 80, cli))
	p.HandlePacket(synAck(t0.Add(20*time.Hour), srv2, 22, cli))

	a := NewActiveDiscoverer([]uint16{22, 80})
	a.AddReport(&probe.ScanReport{
		ID: 0, Started: t0, Finished: t0.Add(2 * time.Hour),
		TCP: []probe.TCPResult{
			{Time: t0.Add(time.Minute), Addr: srv, Port: 80, State: probe.StateOpen},
			{Time: t0.Add(time.Minute), Addr: srv + 100, Port: 80, State: probe.StateOpen},
		},
	})
	an := &Analysis{Passive: p, Active: a}
	row := an.Completeness(t0.Add(12*time.Hour), 1)
	if row.Union != 2 || row.Both != 1 || row.ActiveOnly != 1 || row.PassiveOnly != 0 {
		t.Errorf("row = %+v", row)
	}
	// Extending the passive window picks up srv2.
	row2 := an.Completeness(t0.Add(24*time.Hour), 1)
	if row2.Union != 3 || row2.PassiveOnly != 1 {
		t.Errorf("row2 = %+v", row2)
	}
	// Identity: union = both + activeOnly + passiveOnly.
	for _, r := range []CompletenessRow{row, row2} {
		if r.Union != r.Both+r.ActiveOnly+r.PassiveOnly {
			t.Errorf("identity violated: %+v", r)
		}
	}
}

func TestDiscoverySeriesMonotone(t *testing.T) {
	p := NewPassiveDiscoverer(campusPfx, nil)
	for i := 0; i < 50; i++ {
		p.HandlePacket(synAck(t0.Add(time.Duration(i)*time.Hour), srv+netaddr.V4(i), 80, cli))
	}
	an := &Analysis{Passive: p, Active: NewActiveDiscoverer([]uint16{80})}
	s := an.PassiveSeries(t0, t0.Add(100*time.Hour), nil)
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].V < pts[i-1].V {
			t.Fatal("series not monotone")
		}
	}
	if s.Last() != 50 {
		t.Errorf("final = %v", s.Last())
	}
}

func TestWeightedSeries(t *testing.T) {
	p := NewPassiveDiscoverer(campusPfx, nil)
	// srv: 99 flows; srv2: 1 flow.
	for i := 0; i < 99; i++ {
		p.HandlePacket(synAck(t0.Add(time.Duration(i)*time.Minute), srv, 80, cli+netaddr.V4(i)))
	}
	p.HandlePacket(synAck(t0.Add(10*time.Hour), srv2, 80, cli))

	an := &Analysis{Passive: p, Active: NewActiveDiscoverer([]uint16{80})}
	s := an.WeightedSeries(an.PassiveAddrs(), WeightFlows, t0, t0.Add(24*time.Hour))
	// After the first discovery (srv at t0) the flow-weighted curve is
	// already at 99%.
	if got := s.At(t0.Add(time.Minute)); got < 98.9 || got > 99.1 {
		t.Errorf("early weighted completeness = %v", got)
	}
	if got := s.Last(); got < 99.9 {
		t.Errorf("final = %v", got)
	}
	// Unweighted: first discovery = 50%.
	u := an.WeightedSeries(an.PassiveAddrs(), WeightNone, t0, t0.Add(24*time.Hour))
	if got := u.At(t0.Add(time.Minute)); got != 50 {
		t.Errorf("unweighted early = %v", got)
	}
}

func TestCategorize12h(t *testing.T) {
	p := NewPassiveDiscoverer(campusPfx, nil)
	p.HandlePacket(synAck(t0.Add(time.Hour), srv, 80, cli))    // both
	p.HandlePacket(synAck(t0.Add(2*time.Hour), srv2, 22, cli)) // passive only

	a := NewActiveDiscoverer([]uint16{22, 80})
	a.AddReport(&probe.ScanReport{
		ID: 0, Started: t0, Finished: t0.Add(2 * time.Hour),
		TCP: []probe.TCPResult{
			{Time: t0.Add(time.Minute), Addr: srv, Port: 80, State: probe.StateOpen},
			{Time: t0.Add(time.Minute), Addr: srv + 100, Port: 80, State: probe.StateOpen}, // active only
		},
	})
	an := &Analysis{Passive: p, Active: a}
	space := []netaddr.V4{srv, srv2, srv + 100, srv + 200}
	tab := an.Categorize12h(t0.Add(12*time.Hour), space)
	if tab.ActiveServer != 1 || tab.IdleServer != 1 || tab.FirewallOrBirth != 1 || tab.NonServer != 1 {
		t.Errorf("table = %+v", tab)
	}
	if tab.Total() != 4 {
		t.Errorf("total = %d", tab.Total())
	}
}

func TestTrait4Labels(t *testing.T) {
	cases := []struct {
		tr   Trait4
		want string
	}{
		{Trait4{true, true, true, true, false}, "active server address"},
		{Trait4{true, true, false, false, false}, "server death"},
		{Trait4{true, true, false, true, false}, "mostly idle"},
		{Trait4{false, true, false, false, true}, "idle/intermittent"},
		{Trait4{false, true, true, false, false}, "semi-idle"},
		{Trait4{false, true, false, false, false}, "idle"},
		{Trait4{true, false, false, false, true}, "intermittent"},
		{Trait4{true, false, true, false, false}, "possible firewall"},
		{Trait4{false, false, false, false, false}, "non-server address"},
		{Trait4{false, false, true, true, true}, "intermittent/active"},
		{Trait4{false, false, true, true, false}, "birth"},
		{Trait4{false, false, false, true, true}, "intermittent/idle"},
		{Trait4{false, false, false, true, false}, "birth/idle"},
		{Trait4{false, false, true, false, true}, "possible firewall/intermittent"},
		{Trait4{false, false, true, false, false}, "possible firewall/birth"},
	}
	for _, c := range cases {
		if got := c.tr.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.tr, got, c.want)
		}
	}
}

func TestFirewallCandidates(t *testing.T) {
	p := NewPassiveDiscoverer(campusPfx, nil)
	// Stealth server: passive traffic, including during the scan window.
	p.HandlePacket(synAck(t0.Add(30*time.Minute), srv, 80, cli))
	a := NewActiveDiscoverer([]uint16{22, 80})
	a.AddReport(&probe.ScanReport{
		ID: 0, Started: t0, Finished: t0.Add(2 * time.Hour),
		TCP: []probe.TCPResult{
			{Time: t0, Addr: srv, Port: 22, State: probe.StateClosed},
			{Time: t0, Addr: srv, Port: 80, State: probe.StateFiltered},
		},
	})
	an := &Analysis{Passive: p, Active: a}
	fw := an.FirewallCandidates()
	if len(fw) != 1 {
		t.Fatalf("candidates = %d", len(fw))
	}
	if !fw[0].MixedResponse {
		t.Error("method 1 (mixed response) not confirmed")
	}
	if !fw[0].ActiveDuringScan {
		t.Error("method 2 (activity during scan) not confirmed")
	}
}

func TestUDPSummary(t *testing.T) {
	p := NewPassiveDiscoverer(campusPfx, []uint16{53, 137})
	p.HandlePacket(bld.UDPPacket(t0, packet.Endpoint{Addr: srv, Port: 53}, packet.Endpoint{Addr: cli, Port: 999}, []byte("r")))

	a := NewActiveDiscoverer(nil)
	a.AddReport(&probe.ScanReport{
		ID: 0, Started: t0, Finished: t0.Add(time.Hour),
		UDP: []probe.UDPResult{
			{Time: t0, Addr: srv, Port: 53, State: probe.UDPOpen},
			{Time: t0, Addr: srv, Port: 137, State: probe.UDPNoResponse}, // alive elsewhere → possibly open
			{Time: t0, Addr: srv2, Port: 53, State: probe.UDPClosed},
			{Time: t0, Addr: srv2, Port: 137, State: probe.UDPNoResponse},
			{Time: t0, Addr: srv + 100, Port: 53, State: probe.UDPNoResponse}, // silent everywhere
			{Time: t0, Addr: srv + 100, Port: 137, State: probe.UDPNoResponse},
		},
	})
	an := &Analysis{Passive: p, Active: a}
	table := an.UDPSummary([]uint16{53, 137}, []netaddr.V4{srv, srv2, srv + 100})
	if table.NoResponseAnyPort != 1 {
		t.Errorf("NoResponseAnyPort = %d", table.NoResponseAnyPort)
	}
	if table.PassiveTotal != 1 || table.ActiveDefinitelyOpenTotal != 1 || table.PassiveOnly != 0 {
		t.Errorf("totals = %+v", table)
	}
	for _, ps := range table.Ports {
		switch ps.Port {
		case 53:
			if ps.DefinitelyOpen != 1 || ps.DefinitelyClosed != 1 || ps.PossiblyOpen != 0 {
				t.Errorf("port 53 = %+v", ps)
			}
		case 137:
			if ps.PossiblyOpen != 2 {
				t.Errorf("port 137 = %+v", ps)
			}
		}
	}
}

func TestTimeTo(t *testing.T) {
	p := NewPassiveDiscoverer(campusPfx, nil)
	for i := 0; i < 100; i++ {
		p.HandlePacket(synAck(t0.Add(time.Duration(i)*time.Minute), srv+netaddr.V4(i), 80, cli))
	}
	an := &Analysis{Passive: p, Active: NewActiveDiscoverer([]uint16{80})}
	s := an.PassiveSeries(t0, t0.Add(3*time.Hour), nil)
	d, ok := TimeTo(s, t0, 50)
	if !ok {
		t.Fatal("TimeTo failed")
	}
	if d < 48*time.Minute || d > 52*time.Minute {
		t.Errorf("TimeTo(50%%) = %v", d)
	}
}

func BenchmarkPassiveHandlePacket(b *testing.B) {
	d := NewPassiveDiscoverer(campusPfx, nil)
	p := synAck(t0, srv, 80, cli)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.HandlePacket(p)
	}
}
