package core

import (
	"context"
	"sync"
	"sync/atomic"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/probe"
)

// Hybrid reconciles the two discovery techniques into one engine: passive
// border traffic flows into a ShardedPassive (as pipeline batches) while
// active sweep reports flow into an ActiveDiscoverer (as probe.ReportSink
// deliveries), and Snapshot merges both into a single hybrid Inventory
// with per-service provenance.
//
// Determinism: the passive side is shard-then-merge deterministic (see
// ShardedPassive) and the active side's ingestion is order-independent
// (see ActiveDiscoverer), so the snapshot is byte-identical for any
// interleaving of passive batches and scan reports carrying the same
// observations — property-tested in hybrid_test.go at 1, 2 and 8 shards.
//
// Lifecycle mirrors the pipeline runner: before Run, both HandleBatch and
// AddReport apply inline on the caller's goroutine; after Run(ctx),
// batches go to the shard workers and reports to a dedicated reconciler
// goroutine, so a live capture loop and a scan scheduler never block each
// other. Flush waits for both sides to drain; Close stops the workers
// (idempotent). As with ShardedPassive, the context is an abort lever, not
// a graceful stop — cancel only to abandon the run.
type Hybrid struct {
	passive *ShardedPassive

	// amu guards the active discoverer: the report worker (or inline
	// AddReport callers) write under it, Snapshot reads under it.
	amu    sync.Mutex
	active *ActiveDiscoverer

	// seenReports flips once any report is accepted, so consumers can
	// tell a hybrid run from a passive-only one without locking.
	seenReports atomic.Bool

	// Report intake lifecycle, mirroring ShardedPassive's batch intake.
	mu       sync.RWMutex
	running  bool
	closed   bool
	ctx      context.Context
	reports  chan *probe.ScanReport
	worker   sync.WaitGroup
	inflight sync.WaitGroup
}

// NewHybrid builds a hybrid engine over the campus space: a passive side
// sharded n ways (as NewShardedPassive) watching the given well-known UDP
// ports, and an active side expecting sweeps of the given TCP ports
// (informational, as NewActiveDiscoverer).
func NewHybrid(campus netaddr.Prefix, udpPorts []uint16, shards int, tcpPorts []uint16) *Hybrid {
	return &Hybrid{
		passive: NewShardedPassive(campus, udpPorts, shards),
		active:  NewActiveDiscoverer(tcpPorts),
	}
}

// Passive exposes the sharded passive side (counters, shard inspection).
func (h *Hybrid) Passive() *ShardedPassive { return h.passive }

// HandleBatch implements pipeline.BatchSink by feeding the passive side.
func (h *Hybrid) HandleBatch(batch []packet.Packet) { h.passive.HandleBatch(batch) }

// HandlePacket implements the legacy per-packet Sink contract.
func (h *Hybrid) HandlePacket(p *packet.Packet) { h.passive.HandlePacket(p) }

// AddReport implements probe.ReportSink. Before Run it applies the report
// inline; after Run it enqueues for the reconciler goroutine. Reports
// added after Close are dropped, matching the passive side's contract.
func (h *Hybrid) AddReport(rep *probe.ScanReport) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.closed {
		return
	}
	h.seenReports.Store(true)
	if !h.running {
		h.amu.Lock()
		h.active.AddReport(rep)
		h.amu.Unlock()
		return
	}
	h.inflight.Add(1)
	h.reports <- rep
}

// SeenReports reports whether any scan report has been accepted — whether
// this run is genuinely hybrid or passive-only so far.
func (h *Hybrid) SeenReports() bool { return h.seenReports.Load() }

// Run starts the passive shard workers and the report reconciler. No-op
// when already running or closed. See ShardedPassive.Run for the
// cancellation contract: a cancelled run should be abandoned.
func (h *Hybrid) Run(ctx context.Context) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.running || h.closed {
		return
	}
	h.running = true
	h.ctx = ctx
	h.reports = make(chan *probe.ScanReport, 16)
	h.worker.Add(1)
	go func() {
		defer h.worker.Done()
		for rep := range h.reports {
			if h.ctx.Err() == nil {
				h.amu.Lock()
				h.active.AddReport(rep)
				h.amu.Unlock()
			}
			h.inflight.Done()
		}
	}()
	h.passive.Run(ctx)
}

// Flush blocks until every batch and report accepted before the call has
// been applied.
func (h *Hybrid) Flush() {
	h.passive.Flush()
	h.inflight.Wait()
}

// Close flushes and stops both sides; idempotent. Afterwards the engine is
// read-only: further batches and reports are dropped.
func (h *Hybrid) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	running, reports := h.running, h.reports
	h.mu.Unlock()
	if running {
		close(reports)
		h.worker.Wait()
	}
	h.passive.Close()
}

// Active merges nothing — it exposes the live active discoverer for the
// analysis layer. Stop feeding the engine (or Close it) before use, and do
// not retain it across further ingestion.
func (h *Hybrid) Active() *ActiveDiscoverer {
	h.Flush()
	return h.active
}

// Snapshot flushes both sides and freezes the reconciled hybrid inventory:
// the union of passively-seen and probe-answering services, each with its
// first-seen provenance. Stop producing before snapshotting (Close first
// for a final result).
func (h *Hybrid) Snapshot() *Inventory {
	h.Flush()
	merged := h.passive.Merge()
	h.amu.Lock()
	defer h.amu.Unlock()
	return NewHybridInventory(merged, h.active)
}

var (
	_ pipeline.BatchSink = (*Hybrid)(nil)
	_ probe.ReportSink   = (*Hybrid)(nil)
)
