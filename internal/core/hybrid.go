package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/obs"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
	"servdisc/internal/probe"
)

// Hybrid reconciles the two discovery techniques into one engine: passive
// border traffic flows into a ShardedPassive (as pipeline batches) while
// active sweep reports flow into an ActiveDiscoverer (as probe.ReportSink
// deliveries), and Snapshot merges both into a single hybrid Inventory
// with per-service provenance.
//
// Determinism: the passive side is shard-then-merge deterministic (see
// ShardedPassive) and the active side's ingestion is order-independent
// (see ActiveDiscoverer), so the snapshot is byte-identical for any
// interleaving of passive batches and scan reports carrying the same
// observations — property-tested in hybrid_test.go at 1, 2 and 8 shards.
//
// Lifecycle mirrors the pipeline runner: before Run, both HandleBatch and
// AddReport apply inline on the caller's goroutine; after Run(ctx),
// batches go to the shard workers and reports to a dedicated reconciler
// goroutine, so a live capture loop and a scan scheduler never block each
// other. Flush waits for both sides to drain; Close stops the workers
// (idempotent). As with ShardedPassive, the context is an abort lever, not
// a graceful stop — cancel only to abandon the run.
//
// Snapshot is non-terminal and concurrent-safe, and the engine publishes
// a typed event stream (Subscribe / the servdisc facade's Watch): the
// passive shards emit ServiceDiscovered and ScannerDetected, the active
// ingester emits ServiceDiscovered, ProvenanceUpgraded and ScanCompleted,
// with cross-technique dedup so every service is discovered exactly once.
type Hybrid struct {
	passive *ShardedPassive

	// amu guards the active discoverer: the report worker (or inline
	// AddReport callers) write under it, snapshots clone under it. agen
	// counts applied reports (atomic so the snapshot fast path can read
	// it without the lock); aview caches the frozen clone at that
	// generation so snapshots of an unchanged active side are free.
	amu    sync.Mutex
	active *ActiveDiscoverer
	agen   atomic.Uint64
	aview  *activeView

	// activeTTL, when positive, expires active-side records whose last
	// probe answer is older than the TTL at the passive observation
	// watermark (see RetentionPolicy). Guarded by amu.
	activeTTL time.Duration

	// seenReports flips once any report is accepted, so consumers can
	// tell a hybrid run from a passive-only one without locking.
	seenReports atomic.Bool

	// Report intake lifecycle, mirroring ShardedPassive's batch intake.
	mu       sync.RWMutex
	running  bool
	closed   bool
	ctx      context.Context
	reports  chan *probe.ScanReport
	worker   sync.WaitGroup
	inflight sync.WaitGroup

	// snap caches the whole Inventory across both sides' generations
	// (see ShardedPassive).
	snap snapCache

	// onSnap, when set, observes every newly built hybrid snapshot with
	// its delta (see ShardedPassive.OnSnapshot). Guarded by the passive
	// side's snapMu, which every hybrid snapshot holds.
	onSnap func(prev, inv *Inventory, delta SnapshotDelta)
}

// activeView is the active side's frozen clone at one generation.
type activeView struct {
	gen  uint64
	disc *ActiveDiscoverer
}

// NewHybrid builds a hybrid engine over the campus space: a passive side
// sharded n ways (as NewShardedPassive) watching the given well-known UDP
// ports, and an active side expecting sweeps of the given TCP ports
// (informational, as NewActiveDiscoverer).
func NewHybrid(campus netaddr.Prefix, udpPorts []uint16, shards int, tcpPorts []uint16) *Hybrid {
	h := &Hybrid{
		passive: NewShardedPassive(campus, udpPorts, shards),
		active:  NewActiveDiscoverer(tcpPorts),
	}
	h.active.onDiscovered = h.passive.events.activeDiscovered
	h.active.onOpenEarlier = h.passive.events.activeOpenEarlier
	return h
}

// Passive exposes the sharded passive side (counters, shard inspection).
func (h *Hybrid) Passive() *ShardedPassive { return h.passive }

// SetMetrics attaches the telemetry bundle to the underlying passive
// engine; hybrid snapshots report into the same Snapshot histogram.
func (h *Hybrid) SetMetrics(m *EngineMetrics) { h.passive.SetMetrics(m) }

// Subscribe attaches a bounded subscriber to the engine's discovery event
// stream (see ShardedPassive.Subscribe for the drop contract).
func (h *Hybrid) Subscribe(buf int) *EventSub { return h.passive.Subscribe(buf) }

// SubscribeFiltered attaches a predicate-filtered subscriber (see
// ShardedPassive.SubscribeFiltered).
func (h *Hybrid) SubscribeFiltered(buf int, keep func(Event) bool) *EventSub {
	return h.passive.SubscribeFiltered(buf, keep)
}

// OnSnapshot registers fn to observe every newly built hybrid snapshot
// (see ShardedPassive.OnSnapshot for the contract). An observer set here
// sees hybrid snapshots only; passive-only snapshots taken directly via
// Passive().Snapshot() report to the passive side's own observer.
func (h *Hybrid) OnSnapshot(fn func(prev, inv *Inventory, delta SnapshotDelta)) {
	h.passive.snapMu.Lock()
	h.onSnap = fn
	h.passive.snapMu.Unlock()
}

// EventCounters exposes the event stream's flow counters.
func (h *Hybrid) EventCounters() *pipeline.StageCounters { return h.passive.EventCounters() }

// HandleBatch implements pipeline.BatchSink by feeding the passive side.
func (h *Hybrid) HandleBatch(batch []packet.Packet) { h.passive.HandleBatch(batch) }

// HandlePacket implements the legacy per-packet Sink contract.
func (h *Hybrid) HandlePacket(p *packet.Packet) { h.passive.HandlePacket(p) }

// applyReport reconciles one report into the active side and emits the
// sweep-completion event. Called inline (pre-Run) or from the reconciler
// worker.
func (h *Hybrid) applyReport(rep *probe.ScanReport) {
	h.amu.Lock()
	h.active.AddReport(rep)
	h.agen.Add(1)
	h.amu.Unlock()
	h.passive.events.scanCompleted(
		ScanMeta{ID: rep.ID, Started: rep.Started, Finished: rep.Finished}, rep.Truncated)
}

// AddReport implements probe.ReportSink. Before Run it applies the report
// inline; after Run it enqueues for the reconciler goroutine. Reports
// added after Close are dropped, matching the passive side's contract.
func (h *Hybrid) AddReport(rep *probe.ScanReport) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.closed {
		return
	}
	h.seenReports.Store(true)
	if !h.running {
		h.applyReport(rep)
		return
	}
	h.inflight.Add(1)
	h.reports <- rep
}

// SeenReports reports whether any scan report has been accepted — whether
// this run is genuinely hybrid or passive-only so far.
func (h *Hybrid) SeenReports() bool { return h.seenReports.Load() }

// Run starts the passive shard workers and the report reconciler. No-op
// when already running or closed. See ShardedPassive.Run for the
// cancellation contract: a cancelled run should be abandoned.
func (h *Hybrid) Run(ctx context.Context) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.running || h.closed {
		return
	}
	h.running = true
	h.ctx = ctx
	h.reports = make(chan *probe.ScanReport, 16)
	h.worker.Add(1)
	go func() {
		defer h.worker.Done()
		for rep := range h.reports {
			if h.ctx.Err() == nil {
				h.applyReport(rep)
			}
			h.inflight.Done()
		}
	}()
	h.passive.Run(ctx)
}

// Flush blocks until every batch and report accepted before the call has
// been applied. Like ShardedPassive.Flush, it must not race with a
// concurrent producer; Snapshot needs no Flush.
func (h *Hybrid) Flush() {
	h.passive.Flush()
	h.inflight.Wait()
}

// Close flushes and stops both sides; idempotent. Afterwards the engine is
// read-only: further batches and reports are dropped, Snapshot keeps
// working, event subscribers see end-of-stream.
func (h *Hybrid) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	running, reports := h.running, h.reports
	h.mu.Unlock()
	if running {
		close(reports)
		h.worker.Wait()
	}
	h.passive.Close()
}

// Active exposes the live active discoverer for the analysis layer after
// flushing pending reports. The returned discoverer is a live view —
// treat it as read-only and do not retain it across further ingestion
// (its accessor maps keep moving); for a stable, goroutine-safe result
// use Snapshot, which can be taken at any time without stopping the
// engine.
func (h *Hybrid) Active() *ActiveDiscoverer {
	h.Flush()
	return h.active
}

// SetRetention configures TTL-based expiry on both sides of the engine
// (see ShardedPassive.SetRetention). The active side expires against the
// passive observation watermark, so active retention needs passive
// traffic to advance the clock.
func (h *Hybrid) SetRetention(p RetentionPolicy) {
	h.passive.SetRetention(p)
	h.amu.Lock()
	h.activeTTL = p.ActiveTTL
	h.amu.Unlock()
}

// expireActive retires active-side records whose retention deadline
// (lastOpen + ActiveTTL) has passed at the observation watermark,
// recording tombstones and returning the expiry notices. Any expiry bumps
// the active generation so the snapshot machinery reclassifies.
func (h *Hybrid) expireActive(wm time.Time) []expiredSvc {
	h.amu.Lock()
	defer h.amu.Unlock()
	if h.activeTTL <= 0 || wm.IsZero() {
		return nil
	}
	var out []expiredSvc
	for k, last := range h.active.lastOpen {
		deadline := last.Add(h.activeTTL)
		if deadline.After(wm) {
			continue
		}
		delete(h.active.firstOpen, k)
		delete(h.active.lastOpen, k)
		h.active.tombs[k] = deadline
		out = append(out, expiredSvc{key: k, at: deadline, prov: ActiveOnly, clear: true})
	}
	if len(out) > 0 {
		h.agen.Add(1)
	}
	return out
}

// activeSnapshot returns the active side's frozen clone, reusing the
// cached view when no report has been applied since.
func (h *Hybrid) activeSnapshot() *activeView {
	h.amu.Lock()
	defer h.amu.Unlock()
	if gen := h.agen.Load(); h.aview == nil || h.aview.gen != gen {
		h.aview = &activeView{gen: gen, disc: h.active.clone()}
	}
	return h.aview
}

// Snapshot freezes the reconciled hybrid inventory — the union of
// passively-seen and probe-answering services, each with its first-seen
// provenance — at a consistent point in time. Like
// ShardedPassive.Snapshot it is non-terminal, concurrent-safe and cheap
// to repeat: an entirely unchanged engine returns the previous Inventory
// without touching the shards, and when only a few shards moved the new
// inventory is patched forward from the previous one — provenance is
// recomputed only for services that appeared since (a passive record's
// first-seen time and an already-reconciled active side cannot change an
// existing service's class). On a running engine the result is
// byte-identical to pausing producers, flushing, and snapshotting at the
// same ingest point.
func (h *Hybrid) Snapshot() *Inventory {
	if inv := h.snap.fast(h.passive.dispatched.Load(), h.agen.Load()); inv != nil {
		return inv
	}
	h.passive.snapMu.Lock()
	defer h.passive.snapMu.Unlock()
	var t0 time.Time
	if h.passive.met != nil {
		t0 = time.Now()
	}
	views, d0, wm := h.passive.snapshotViews()
	// Active expiry runs before the active clone so the frozen view (and
	// its generation) reflects the deletions; the combined notice list is
	// re-sorted into one deterministic (time, key) order across both sides.
	exp := collectExpired(views)
	exp = append(exp, h.expireActive(wm)...)
	if len(exp) > 0 {
		sortExpired(exp)
		for _, e := range exp {
			h.passive.events.serviceExpired(e.key, e.at, e.prov, e.clear)
		}
		if m := h.passive.met; m != nil {
			m.Flight.Record(obs.TraceExpirySweep, "", int64(len(exp)), 0)
		}
	}
	av := h.activeSnapshot()
	// The active generation rides along as one more entry of the vector.
	gens := append(viewGens(views), av.gen)
	if inv := h.snap.get(gens); inv != nil {
		return inv
	}
	prevGens, prevInv := h.snap.peek()
	var inv *Inventory
	delta := SnapshotDelta{Full: true}
	// The passive merge is independent of the active side, so it is
	// delta-patched whenever the shard chains allow. The key/provenance
	// tables patch forward only when the active side is the same frozen
	// view the previous inventory classified against — a new report can
	// move first-open times and so re-classify existing services, which
	// forces a reclassification pass (but not a passive re-merge).
	if prevInv != nil && len(prevGens) == len(views)+1 {
		if m, scanners, newKeys, updKeys, delKeys, ok := h.passive.mergeViewsDelta(views, prevInv, prevGens[:len(prevGens)-1]); ok {
			if prevGens[len(prevGens)-1] == av.gen {
				var removed, downgraded []ServiceKey
				inv, removed, downgraded = patchHybridInventory(prevInv, m, av.disc, scanners, newKeys, delKeys)
				// A downgraded key (passive evidence withdrawn, probe
				// answer standing) stays in the inventory with a new
				// classification — an update, not a removal.
				delta = SnapshotDelta{Added: newKeys, Updated: mergeSortedKeys(updKeys, downgraded), Removed: removed}
			} else {
				inv = newFrozenHybridInventory(m, av.disc, scanners)
			}
		}
	}
	if inv == nil {
		merged, scanners := h.passive.mergeViewsFull(views)
		inv = newFrozenHybridInventory(merged, av.disc, scanners)
	}
	h.snap.put(gens, inv, d0, av.gen)
	if h.onSnap != nil {
		h.onSnap(prevInv, inv, delta)
	}
	if m := h.passive.met; m != nil {
		el := time.Since(t0)
		m.Snapshot.Observe(el)
		m.Flight.Record(obs.TraceSnapshotSealed, "", int64(inv.Len()), el.Microseconds())
	}
	return inv
}

var (
	_ pipeline.BatchSink = (*Hybrid)(nil)
	_ probe.ReportSink   = (*Hybrid)(nil)
)
