package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/stats"
)

// genTrace synthesizes a deterministic border-traffic stream exercising
// every state path of the passive discoverer: TCP services answering
// clients, UDP services, below- and above-threshold scanners with RST
// responses, and ignorable noise (bare ACKs, inbound SYNs that never
// complete). Packets come out in timestamp order, like a real capture.
func genTrace(seed uint64, n int) []packet.Packet {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	rng := stats.NewRNG(seed).Derive("sharded-test")
	bld := packet.NewBuilder(0)
	base := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)

	servers := make([]netaddr.V4, 60)
	for i := range servers {
		servers[i] = campus.Base() + netaddr.V4(256+i)
	}
	ports := []uint16{21, 22, 80, 443, 3306}
	ext := netaddr.MustParseV4("64.0.0.0")

	var out []packet.Packet
	now := base
	add := func(p *packet.Packet) { out = append(out, *p) }

	// Three full-threshold scanners and one that stays below it.
	type scanPlan struct {
		src      netaddr.V4
		dsts     int
		rsts     int
		startOff time.Duration
	}
	scans := []scanPlan{
		{netaddr.MustParseV4("211.1.1.1"), 150, 120, 1 * time.Hour},
		{netaddr.MustParseV4("211.2.2.2"), 300, 250, 13 * time.Hour}, // second window
		{netaddr.MustParseV4("211.3.3.3"), 120, 101, 20 * time.Hour},
		{netaddr.MustParseV4("211.4.4.4"), 90, 80, 2 * time.Hour}, // below threshold
	}
	for _, sc := range scans {
		t := base.Add(sc.startOff)
		for i := 0; i < sc.dsts; i++ {
			dst := campus.Base() + netaddr.V4(1000+i)
			syn := bld.Syn(t.Add(time.Duration(i)*time.Millisecond),
				packet.Endpoint{Addr: sc.src, Port: 40000}, packet.Endpoint{Addr: dst, Port: 80}, uint32(i))
			add(syn)
			if i < sc.rsts {
				rst := bld.Rst(t.Add(time.Duration(i)*time.Millisecond+500*time.Microsecond),
					packet.Endpoint{Addr: dst, Port: 80}, packet.Endpoint{Addr: sc.src, Port: 40000}, uint32(i)+1)
				add(rst)
			}
		}
	}

	// Client flows and noise, spread over 30 hours.
	for i := 0; i < n; i++ {
		now = base.Add(time.Duration(float64(30*time.Hour) * float64(i) / float64(n)))
		srv := servers[rng.Intn(len(servers))]
		cli := ext + netaddr.V4(rng.Intn(5000))
		port := ports[rng.Intn(len(ports))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // completed TCP handshake
			add(bld.Syn(now, packet.Endpoint{Addr: cli, Port: 33000}, packet.Endpoint{Addr: srv, Port: port}, 7))
			add(bld.SynAck(now.Add(500*time.Microsecond), packet.Endpoint{Addr: srv, Port: port},
				packet.Endpoint{Addr: cli, Port: 33000}, 9, 8))
		case 5: // refused connection: campus RST to the client
			add(bld.Syn(now, packet.Endpoint{Addr: cli, Port: 33001}, packet.Endpoint{Addr: srv, Port: 9999}, 7))
			add(bld.Rst(now.Add(500*time.Microsecond), packet.Endpoint{Addr: srv, Port: 9999},
				packet.Endpoint{Addr: cli, Port: 33001}, 8))
		case 6: // UDP service reply from a well-known port
			add(bld.UDPPacket(now, packet.Endpoint{Addr: cli, Port: 34000},
				packet.Endpoint{Addr: srv, Port: 53}, []byte("q")))
			add(bld.UDPPacket(now.Add(500*time.Microsecond), packet.Endpoint{Addr: srv, Port: 53},
				packet.Endpoint{Addr: cli, Port: 34000}, []byte("r")))
		case 7: // UDP from a non-service port: ignored evidence
			add(bld.UDPPacket(now, packet.Endpoint{Addr: srv, Port: 30000},
				packet.Endpoint{Addr: cli, Port: 34001}, []byte("x")))
		case 8: // bare ACK noise: no discoverer state at all
			add(bld.TCPPacket(now, packet.Endpoint{Addr: srv, Port: port},
				packet.Endpoint{Addr: cli, Port: 33000}, packet.FlagACK, 1, 2, nil))
		case 9: // campus-internal SYN: not scan-relevant
			add(bld.Syn(now, packet.Endpoint{Addr: campus.Base() + 5, Port: 40000},
				packet.Endpoint{Addr: srv, Port: port}, 3))
		}
	}
	return out
}

// feedBatches drives a batch sink with uneven batch sizes.
func feedBatches(sink interface{ HandleBatch([]packet.Packet) }, pkts []packet.Packet, rng *stats.RNG) {
	for off := 0; off < len(pkts); {
		sz := 1 + rng.Intn(400)
		if off+sz > len(pkts) {
			sz = len(pkts) - off
		}
		sink.HandleBatch(pkts[off : off+sz])
		off += sz
	}
}

// assertEquivalent checks that a merged sharded run is byte-for-byte
// identical to the single-threaded reference.
func assertEquivalent(t *testing.T, label string, want, got *PassiveDiscoverer) {
	t.Helper()
	if want.Packets != got.Packets {
		t.Fatalf("%s: Packets = %d, want %d", label, got.Packets, want.Packets)
	}
	wk, gk := want.Keys(), got.Keys()
	if len(wk) != len(gk) {
		t.Fatalf("%s: %d services, want %d", label, len(gk), len(wk))
	}
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("%s: key %d = %v, want %v", label, i, gk[i], wk[i])
		}
		wr, _ := want.Record(wk[i])
		gr, _ := got.Record(gk[i])
		if !wr.FirstSeen.Equal(gr.FirstSeen) || wr.Flows != gr.Flows || wr.Clients() != gr.Clients() {
			t.Fatalf("%s: record %v = {%v %d %d}, want {%v %d %d}", label, wk[i],
				gr.FirstSeen, gr.Flows, gr.Clients(), wr.FirstSeen, wr.Flows, wr.Clients())
		}
		wp, gp := wr.FirstPeers(), gr.FirstPeers()
		if len(wp) != len(gp) {
			t.Fatalf("%s: record %v has %d first peers, want %d", label, wk[i], len(gp), len(wp))
		}
		for j := range wp {
			if wp[j].Peer != gp[j].Peer || !wp[j].Time.Equal(gp[j].Time) {
				t.Fatalf("%s: record %v peer %d differs", label, wk[i], j)
			}
		}
	}
	ws, gs := want.DetectScanners(), got.DetectScanners()
	if len(ws) != len(gs) {
		t.Fatalf("%s: %d scanners, want %d", label, len(gs), len(ws))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("%s: scanner %d = %+v, want %+v", label, i, gs[i], ws[i])
		}
	}
	excl := want.ScannerSet()
	wfs := want.AddrFirstSeenExcluding(excl, nil)
	gfs := got.AddrFirstSeenExcluding(got.ScannerSet(), nil)
	if len(wfs) != len(gfs) {
		t.Fatalf("%s: AddrFirstSeenExcluding has %d addrs, want %d", label, len(gfs), len(wfs))
	}
	for a, wt := range wfs {
		if gt, ok := gfs[a]; !ok || !gt.Equal(wt) {
			t.Fatalf("%s: AddrFirstSeenExcluding[%v] = %v, want %v", label, a, gt, wt)
		}
	}
	wall := want.AddrFirstSeen(nil)
	gall := got.AddrFirstSeen(nil)
	if len(wall) != len(gall) {
		t.Fatalf("%s: AddrFirstSeen has %d addrs, want %d", label, len(gall), len(wall))
	}
	for a, wt := range wall {
		if gt, ok := gall[a]; !ok || !gt.Equal(wt) {
			t.Fatalf("%s: AddrFirstSeen[%v] differs", label, a)
		}
		wl, wok := want.LastActivity(a)
		gl, gok := got.LastActivity(a)
		if wok != gok || !wl.Equal(gl) {
			t.Fatalf("%s: LastActivity[%v] differs", label, a)
		}
	}
}

func TestShardedMatchesSequential(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	udpPorts := []uint16{53, 123, 137}
	for _, seed := range []uint64{1, 0xBEEF} {
		pkts := genTrace(seed, 20000)

		ref := NewPassiveDiscoverer(campus, udpPorts)
		feedBatches(ref, pkts, stats.NewRNG(seed).Derive("batching"))

		for _, shards := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("seed=%d/sync-%d", seed, shards), func(t *testing.T) {
				sp := NewShardedPassive(campus, udpPorts, shards)
				feedBatches(sp, pkts, stats.NewRNG(seed).Derive("batching"))
				assertEquivalent(t, "sync", ref, sp.Merge())
			})
			t.Run(fmt.Sprintf("seed=%d/async-%d", seed, shards), func(t *testing.T) {
				sp := NewShardedPassive(campus, udpPorts, shards)
				sp.Run(context.Background())
				feedBatches(sp, pkts, stats.NewRNG(seed).Derive("batching"))
				sp.Close()
				assertEquivalent(t, "async", ref, sp.Merge())
			})
		}
	}
}

func TestShardedSnapshotReadOnlyView(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	pkts := genTrace(7, 5000)

	ref := NewPassiveDiscoverer(campus, []uint16{53})
	ref.HandleBatch(pkts)
	sp := NewShardedPassive(campus, []uint16{53}, 4)
	sp.Run(context.Background())
	sp.HandleBatch(pkts)
	sp.Close()

	want, got := ref.Snapshot(), sp.Snapshot()
	if want.Len() != got.Len() || want.Packets() != got.Packets() {
		t.Fatalf("snapshot len/packets = %d/%d, want %d/%d",
			got.Len(), got.Packets(), want.Len(), want.Packets())
	}
	wk, gk := want.Keys(), got.Keys()
	for i := range wk {
		if wk[i] != gk[i] {
			t.Fatalf("snapshot key %d differs", i)
		}
	}
	if len(want.Scanners()) != len(got.Scanners()) {
		t.Fatalf("snapshot scanners = %d, want %d", len(got.Scanners()), len(want.Scanners()))
	}
	for i, s := range want.Scanners() {
		if got.Scanners()[i] != s {
			t.Fatalf("snapshot scanner %d differs", i)
		}
	}
	// Ingest after Close is dropped: the snapshot stays frozen.
	sp.HandleBatch(pkts)
	if after := sp.Merge(); after.Packets != ref.Packets {
		t.Errorf("post-Close ingest mutated the sharded state: %d packets", after.Packets)
	}
}

func TestShardedHandlesPacketlessEdges(t *testing.T) {
	campus := netaddr.MustParsePrefix("128.125.0.0/16")
	sp := NewShardedPassive(campus, nil, 3)
	sp.HandleBatch(nil) // empty batch is a no-op
	if m := sp.Merge(); m.Packets != 0 || len(m.Keys()) != 0 {
		t.Fatal("empty ingest produced state")
	}
	if sp.NumShards() != 3 {
		t.Errorf("NumShards = %d", sp.NumShards())
	}
	// n < 1 clamps to one shard.
	if NewShardedPassive(campus, nil, 0).NumShards() != 1 {
		t.Error("shard clamp failed")
	}
}
