package core

// Model-based property test for the persistent map: a pmap driven through
// randomized insert/update/delete/snapshot/builder-compact sequences must
// agree with a plain map reference model at every step, and — the property
// flat maps cannot offer — every snapshot taken along the way must still
// agree with the model state it froze, re-verified after arbitrarily many
// later mutations. Run under -race this doubles as an aliasing guard: a
// mutation that touched a snapshot's shared structure in place would trip
// the verifier (and, for builder transients misusing their edit token, the
// race detector).

import (
	"fmt"
	"math/rand"
	"testing"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
)

// pmSnap pairs a frozen pmap with a copy of the reference model at freeze
// time.
type pmSnap struct {
	m   pmap[ServiceKey, int]
	ref map[ServiceKey]int
	op  int
}

func pmTestKey(r *rand.Rand, space int) ServiceKey {
	return ServiceKey{
		Addr:  netaddr.V4(r.Intn(space)),
		Proto: packet.ProtoTCP,
		Port:  uint16(r.Intn(16)),
	}
}

func checkAgainst(t *testing.T, label string, m pmap[ServiceKey, int], ref map[ServiceKey]int) {
	t.Helper()
	if m.Len() != len(ref) {
		t.Fatalf("%s: Len=%d want %d", label, m.Len(), len(ref))
	}
	seen := 0
	m.each(func(k ServiceKey, v int) bool {
		want, ok := ref[k]
		if !ok {
			t.Fatalf("%s: each yielded absent key %s", label, k)
		}
		if v != want {
			t.Fatalf("%s: each(%s)=%d want %d", label, k, v, want)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("%s: each visited %d entries, want %d", label, seen, len(ref))
	}
	for k, want := range ref {
		got, ok := m.Get(k)
		if !ok || got != want {
			t.Fatalf("%s: Get(%s)=(%d,%v) want (%d,true)", label, k, got, ok, want)
		}
	}
}

func TestPersistentMapModel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			m := newPmap[ServiceKey, int](hashServiceKey)
			ref := make(map[ServiceKey]int)
			var snaps []pmSnap
			const ops = 4000
			for op := 0; op < ops; op++ {
				switch c := r.Intn(100); {
				case c < 55: // insert or update
					k := pmTestKey(r, 512)
					v := r.Intn(1 << 20)
					m = m.Set(k, v)
					ref[k] = v
				case c < 80: // delete (sometimes absent)
					k := pmTestKey(r, 512)
					m = m.Delete(k)
					delete(ref, k)
				case c < 90: // snapshot: retain for later re-verification
					cp := make(map[ServiceKey]int, len(ref))
					for k, v := range ref {
						cp[k] = v
					}
					snaps = append(snaps, pmSnap{m: m, ref: cp, op: op})
				default: // compact through a builder transient
					b := m.builder()
					for i := 0; i < 20; i++ {
						k := pmTestKey(r, 512)
						if i%3 == 0 {
							b.Delete(k)
							delete(ref, k)
						} else {
							v := r.Intn(1 << 20)
							b.Set(k, v)
							ref[k] = v
						}
					}
					m = b.freeze()
					// The frozen result must be immune to further builder use.
					b.Set(pmTestKey(r, 512), -1)
					b.Delete(pmTestKey(r, 512))
				}
				if op%512 == 0 {
					checkAgainst(t, fmt.Sprintf("op %d (live)", op), m, ref)
				}
			}
			checkAgainst(t, "final", m, ref)
			// Every retained snapshot must still match the model state it
			// froze, all later mutations notwithstanding.
			for _, s := range snaps {
				checkAgainst(t, fmt.Sprintf("snapshot@op%d", s.op), s.m, s.ref)
			}
			// Negative lookups outside the touched keyspace.
			for i := 0; i < 100; i++ {
				k := ServiceKey{Addr: netaddr.V4(1 << 20), Proto: packet.ProtoUDP, Port: uint16(i)}
				if _, ok := m.Get(k); ok {
					t.Fatalf("Get(%s) found a never-inserted key", k)
				}
			}
		})
	}
}

// TestPersistentMapBuilderSharing drives a builder from an existing map and
// verifies the base map is untouched — the transient must copy, not mutate,
// nodes it does not own.
func TestPersistentMapBuilderSharing(t *testing.T) {
	m := newPmap[ServiceKey, int](hashServiceKey)
	ref := make(map[ServiceKey]int)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		k := pmTestKey(r, 1024)
		m = m.Set(k, i)
		ref[k] = i
	}
	base := m
	baseRef := make(map[ServiceKey]int, len(ref))
	for k, v := range ref {
		baseRef[k] = v
	}
	b := base.builder()
	for i := 0; i < 2000; i++ {
		k := pmTestKey(r, 1024)
		if i%2 == 0 {
			b.Set(k, -i)
			ref[k] = -i
		} else {
			b.Delete(k)
			delete(ref, k)
		}
	}
	out := b.freeze()
	checkAgainst(t, "builder result", out, ref)
	checkAgainst(t, "base after builder", base, baseRef)
}

// TestPersistentMapV4 exercises the second key type (address trails use
// netaddr.V4 keys) through the same model check.
func TestPersistentMapV4(t *testing.T) {
	m := newPmap[netaddr.V4, string](hashV4)
	ref := make(map[netaddr.V4]string)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		a := netaddr.V4(r.Intn(700))
		if r.Intn(4) == 0 {
			m = m.Delete(a)
			delete(ref, a)
		} else {
			v := fmt.Sprintf("v%d", i)
			m = m.Set(a, v)
			ref[a] = v
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", m.Len(), len(ref))
	}
	for a, want := range ref {
		got, ok := m.Get(a)
		if !ok || got != want {
			t.Fatalf("Get(%s)=(%q,%v) want (%q,true)", a, got, ok, want)
		}
	}
	n := 0
	m.each(func(a netaddr.V4, v string) bool {
		if ref[a] != v {
			t.Fatalf("each(%s)=%q want %q", a, v, ref[a])
		}
		n++
		return true
	})
	if n != len(ref) {
		t.Fatalf("each visited %d, want %d", n, len(ref))
	}
}
