package core

// Retention determinism suite: expiry must behave like a pure function of
// the packet stream — same events, same final inventory — no matter how
// the engine is sharded, how often anyone snapshots, or whether the
// process was killed and restored from a checkpoint in the middle.

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/probe"
	"servdisc/internal/stats"
)

// retSvcPlan scripts one service's lifetime: it answers clients every
// period within [from, to] and then goes silent. Sparse periods (longer
// than the test TTL) force observe-side expiry-and-rebirth; bounded
// windows force snapshot-side expiry once the watermark moves past them.
type retSvcPlan struct {
	addr   netaddr.V4
	port   uint16
	udp    bool
	from   time.Duration
	to     time.Duration
	period time.Duration
}

// genRetentionTrace synthesizes a timestamp-ordered border trace (a
// monotone observation clock, like a real capture) whose services churn:
// some chatter steadily, some die mid-trace, some reappear after gaps
// longer than any reasonable TTL.
func genRetentionTrace(seed uint64) []packet.Packet {
	rng := stats.NewRNG(seed).Derive("retention-trace")
	ports := []uint16{22, 80, 443}
	var plans []retSvcPlan
	for i := 0; i < 48; i++ {
		p := retSvcPlan{
			addr:   campusPfx.Base() + netaddr.V4(700+i),
			port:   ports[i%3],
			from:   time.Duration(rng.Intn(10)) * time.Hour,
			period: time.Duration(10+rng.Intn(110)) * time.Minute,
		}
		p.to = p.from + time.Duration(4+rng.Intn(20))*time.Hour
		if i%5 == 0 {
			// Sparse talker: every gap overruns a 3h TTL, so each
			// observation after the first arrives at a dead record.
			p.period = time.Duration(3+rng.Intn(3))*time.Hour + 30*time.Minute
		}
		if i%7 == 0 {
			p.udp, p.port = true, 53
		}
		plans = append(plans, p)
	}

	type emission struct {
		at time.Duration
		pi int
	}
	var ems []emission
	for pi, p := range plans {
		for off := p.from; off <= p.to; off += p.period {
			ems = append(ems, emission{off, pi})
		}
	}
	sort.Slice(ems, func(i, j int) bool {
		if ems[i].at != ems[j].at {
			return ems[i].at < ems[j].at
		}
		return ems[i].pi < ems[j].pi
	})

	b := packet.NewBuilder(0)
	base := time.Date(2006, 9, 19, 10, 0, 0, 0, time.UTC)
	ext := netaddr.MustParseV4("64.10.0.0")
	var out []packet.Packet
	for i, e := range ems {
		p := plans[e.pi]
		now := base.Add(e.at)
		c := ext + netaddr.V4((i*13)%4000)
		if p.udp {
			out = append(out, *b.UDPPacket(now, packet.Endpoint{Addr: c, Port: 34000},
				packet.Endpoint{Addr: p.addr, Port: p.port}, []byte("q")))
			out = append(out, *b.UDPPacket(now.Add(300*time.Microsecond),
				packet.Endpoint{Addr: p.addr, Port: p.port}, packet.Endpoint{Addr: c, Port: 34000}, []byte("r")))
		} else {
			out = append(out, *b.Syn(now, packet.Endpoint{Addr: c, Port: 33000},
				packet.Endpoint{Addr: p.addr, Port: p.port}, 1))
			out = append(out, *b.SynAck(now.Add(300*time.Microsecond),
				packet.Endpoint{Addr: p.addr, Port: p.port}, packet.Endpoint{Addr: c, Port: 33000}, 2, 2))
		}
	}
	return out
}

// expiryRec is one observed EventServiceExpired, in comparable form.
type expiryRec struct {
	key  ServiceKey
	at   time.Time
	prov Provenance
}

func (r expiryRec) String() string {
	return fmt.Sprintf("%s %s %s", r.key, r.at.Format(time.RFC3339), r.prov)
}

// drainExpired collects the expiry subsequence of a closed subscription's
// event stream. Discovery events interleave differently across shard
// counts (shard processing order is not part of the contract); expiry
// events are published sorted from the snapshotting goroutine and ARE.
func drainExpired(sub *EventSub) []expiryRec {
	var out []expiryRec
	for ev := range sub.Events() {
		if ev.Kind == EventServiceExpired {
			out = append(out, expiryRec{key: ev.Key, at: ev.Time, prov: ev.Provenance})
		}
	}
	return out
}

// tombList flattens an inventory's tombstones into sorted comparable form.
func tombList(inv *Inventory) []expiryRec {
	var out []expiryRec
	inv.EachTombstone(func(key ServiceKey, at time.Time, prov Provenance) bool {
		out = append(out, expiryRec{key: key, at: at, prov: prov})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].key != out[j].key {
			return out[i].key.Before(out[j].key)
		}
		return out[i].prov < out[j].prov
	})
	return out
}

func assertSameExpiries(t *testing.T, label string, want, got []expiryRec) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d expiries, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i].key != got[i].key || !want[i].at.Equal(got[i].at) || want[i].prov != got[i].prov {
			t.Fatalf("%s: expiry[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// runRetention feeds the trace through a fresh sharded engine in `cuts`
// segments, snapshotting after each (cuts==1 means one final snapshot:
// pure lazy expiry). Returns the expiry event sequence, the final dump,
// and the final tombstone list.
func runRetention(trace []packet.Packet, shards, cuts int, ttl time.Duration) (exps []expiryRec, dump []byte, tombs []expiryRec) {
	s := NewShardedPassive(campusPfx, []uint16{53}, shards)
	s.SetRetention(RetentionPolicy{PassiveTTL: ttl})
	sub := s.Subscribe(1 << 16)
	rng := stats.NewRNG(11).Derive("retention-batches")
	for c := 0; c < cuts; c++ {
		lo, hi := len(trace)*c/cuts, len(trace)*(c+1)/cuts
		feedBatches(s, trace[lo:hi], rng)
		s.Snapshot()
	}
	inv := s.Snapshot()
	s.Close()
	return drainExpired(sub), inv.Dump(), tombList(inv)
}

// TestRetentionExpiryDeterministicAcrossShards: the published expiry
// sequence, the final dump, and the tombstone set are identical at shard
// counts 1, 2 and 8 under a mid-trace snapshot cadence.
func TestRetentionExpiryDeterministicAcrossShards(t *testing.T) {
	trace := genRetentionTrace(42)
	const ttl = 3 * time.Hour
	wantExp, wantDump, wantTombs := runRetention(trace, 1, 6, ttl)
	if len(wantExp) == 0 {
		t.Fatal("trace produced no expiries; test is vacuous")
	}
	for _, shards := range []int{2, 8} {
		label := fmt.Sprintf("shards=%d", shards)
		exp, dump, tombs := runRetention(trace, shards, 6, ttl)
		assertSameExpiries(t, label+" events", wantExp, exp)
		if !bytes.Equal(wantDump, dump) {
			t.Errorf("%s: final dump differs from shards=1", label)
		}
		assertSameExpiries(t, label+" tombstones", wantTombs, tombs)
	}
}

// TestRetentionLazyMatchesSweep: snapshot cadence is invisible. A run
// that snapshots once at the end (every expiry decided lazily) publishes
// the exact same expiry sequence and final state as one swept 12 times
// (each sweep's sorted group concatenates into the same global order,
// because later sweeps can only surface later deadlines).
func TestRetentionLazyMatchesSweep(t *testing.T) {
	trace := genRetentionTrace(42)
	const ttl = 3 * time.Hour
	lazyExp, lazyDump, lazyTombs := runRetention(trace, 4, 1, ttl)
	sweptExp, sweptDump, sweptTombs := runRetention(trace, 4, 12, ttl)
	if len(lazyExp) == 0 {
		t.Fatal("trace produced no expiries; test is vacuous")
	}
	assertSameExpiries(t, "events", lazyExp, sweptExp)
	if !bytes.Equal(lazyDump, sweptDump) {
		t.Errorf("final dump differs between lazy and swept runs")
	}
	assertSameExpiries(t, "tombstones", lazyTombs, sweptTombs)
}

// TestRetentionSurvivesRestore: kill-and-restore equivalence with
// retention on. An engine checkpointed mid-trace (baseline plus an
// incremental delta, like the real writer produces) and restored into a
// fresh engine must publish exactly the expiries the uninterrupted run
// had left to publish, and converge on the identical dump and tombstone
// set.
func TestRetentionSurvivesRestore(t *testing.T) {
	trace := genRetentionTrace(42)
	const ttl, shards = 3 * time.Hour, 4
	policy := RetentionPolicy{PassiveTTL: ttl}

	refExp, refDump, refTombs := runRetention(trace, shards, 1, ttl)
	if len(refExp) == 0 {
		t.Fatal("trace produced no expiries; test is vacuous")
	}

	// First incarnation: two checkpoint cycles (baseline at 30%, delta at
	// 55%), each preceded by a snapshot — the shape a periodic writer
	// produces. The delta carries tombstones recorded since the baseline.
	cutA, cutB := len(trace)*30/100, len(trace)*55/100
	rng := stats.NewRNG(11).Derive("retention-batches")
	a := NewShardedPassive(campusPfx, []uint16{53}, shards)
	a.SetRetention(policy)
	subA := a.Subscribe(1 << 16)
	feedBatches(a, trace[:cutA], rng)
	a.Snapshot()
	base, cur := a.ExportDelta(nil)
	feedBatches(a, trace[cutA:cutB], rng)
	a.Snapshot()
	delta, _ := a.ExportDelta(&cur)
	a.Close()
	preExp := drainExpired(subA)

	// Second incarnation: restore both chunks, then finish the trace.
	b := NewShardedPassive(campusPfx, []uint16{53}, shards)
	b.SetRetention(policy)
	if err := b.ImportDelta(base); err != nil {
		t.Fatalf("import baseline: %v", err)
	}
	if err := b.ImportDelta(delta); err != nil {
		t.Fatalf("import delta: %v", err)
	}
	subB := b.Subscribe(1 << 16)
	feedBatches(b, trace[cutB:], rng)
	inv := b.Snapshot()
	b.Close()
	postExp := drainExpired(subB)

	assertSameExpiries(t, "events across restore", refExp, append(preExp, postExp...))
	if !bytes.Equal(refDump, inv.Dump()) {
		t.Errorf("restored dump differs from uninterrupted run")
	}
	assertSameExpiries(t, "tombstones", refTombs, tombList(inv))
}

// TestHybridActiveExpiry: active (probe) evidence ages out on its own TTL
// against the passive watermark. A probe-only service disappears from the
// hybrid snapshot with an ActiveOnly expiry event; a still-chattering
// passive service on the same engine survives.
func TestHybridActiveExpiry(t *testing.T) {
	h := NewHybrid(campusPfx, []uint16{53}, 2, []uint16{80, 443})
	h.SetRetention(RetentionPolicy{PassiveTTL: 12 * time.Hour, ActiveTTL: 2 * time.Hour})
	sub := h.Subscribe(64)

	probed := campusPfx.Base() + netaddr.V4(9000)
	h.AddReport(&probe.ScanReport{
		ID: 1, Started: t0, Finished: t0.Add(time.Minute),
		TCP: []probe.TCPResult{{Time: t0, Addr: probed, Port: 443, State: probe.StateOpen}},
	})
	// Passive chatter advances the watermark past the active deadline.
	h.HandlePacket(synAck(t0.Add(time.Hour), srv, 80, cli))
	h.HandlePacket(synAck(t0.Add(3*time.Hour), srv, 80, cli2))

	inv := h.Snapshot()
	probedKey := ServiceKey{Addr: probed, Proto: packet.ProtoTCP, Port: 443}
	if _, ok := inv.Provenance(probedKey); ok {
		t.Error("probe-only service still present after its active TTL")
	}
	if _, ok := inv.Provenance(ServiceKey{Addr: srv, Proto: packet.ProtoTCP, Port: 80}); !ok {
		t.Error("fresh passive service should survive")
	}
	wantAt := t0.Add(2 * time.Hour) // lastOpen + ActiveTTL
	tombs := tombList(inv)
	if len(tombs) != 1 || tombs[0].key != probedKey || tombs[0].prov != ActiveOnly || !tombs[0].at.Equal(wantAt) {
		t.Errorf("tombstones = %v, want [%s at %s ActiveOnly]", tombs, probedKey, wantAt.Format(time.RFC3339))
	}
	h.Close()
	exp := drainExpired(sub)
	if len(exp) != 1 || exp[0].key != probedKey || exp[0].prov != ActiveOnly || !exp[0].at.Equal(wantAt) {
		t.Errorf("expiry events = %v, want one ActiveOnly expiry of %s", exp, probedKey)
	}
}
