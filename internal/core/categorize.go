package core

import (
	"time"

	"servdisc/internal/netaddr"
)

// Category12h labels the four-way classification of Table 3.
type Category12h uint8

// Table 3 categories.
const (
	CatActiveServer    Category12h = iota // passive yes, active yes
	CatIdleServer                         // passive no, active yes
	CatFirewallOrBirth                    // passive yes, active no
	CatNonServer                          // neither
)

// String names the category as in Table 3.
func (c Category12h) String() string {
	switch c {
	case CatActiveServer:
		return "active server address"
	case CatIdleServer:
		return "idle server address"
	case CatFirewallOrBirth:
		return "firewalled address or birth"
	default:
		return "non-server address"
	}
}

// Table3 holds the classification counts over the whole probed space.
type Table3 struct {
	ActiveServer, IdleServer, FirewallOrBirth, NonServer int
}

// Total sums all categories (= the probed address space).
func (t Table3) Total() int {
	return t.ActiveServer + t.IdleServer + t.FirewallOrBirth + t.NonServer
}

// Categorize12h classifies every probed address by the first 12 hours of
// passive observation and the first sweep (Table 3).
func (a *Analysis) Categorize12h(cut time.Time, space []netaddr.V4) Table3 {
	passive := netaddr.NewSet()
	for addr, t := range a.PassiveAddrs() {
		if !t.After(cut) {
			passive.Add(addr)
		}
	}
	active := netaddr.NewSet()
	scans := a.Active.Scans()
	if len(scans) > 0 {
		end := scans[0].Finished
		for addr, t := range a.ActiveAddrs() {
			if !t.After(end) {
				active.Add(addr)
			}
		}
	}
	var out Table3
	for _, addr := range space {
		p, ac := passive.Contains(addr), active.Contains(addr)
		switch {
		case p && ac:
			out.ActiveServer++
		case !p && ac:
			out.IdleServer++
		case p && !ac:
			out.FirewallOrBirth++
		default:
			out.NonServer++
		}
	}
	return out
}

// Trait4 is one row key of Table 4: presence in the four observation sets
// plus address transience.
type Trait4 struct {
	Passive12h, Active12h   bool // first half-day (first sweep)
	PassiveRest, ActiveRest bool // remainder of the dataset
	Transient               bool
}

// Label reproduces the paper's interpretation column for each combination
// (Table 4). Combinations the paper's table does not enumerate fall back to
// a systematic name.
func (t Trait4) Label() string {
	switch {
	case t.Passive12h && t.Active12h:
		switch {
		case t.PassiveRest && t.ActiveRest:
			return "active server address"
		case !t.PassiveRest && !t.ActiveRest:
			return "server death"
		case t.PassiveRest && !t.ActiveRest:
			return "intermittent"
		default:
			return "mostly idle"
		}
	case !t.Passive12h && t.Active12h:
		if t.Transient {
			return "idle/intermittent"
		}
		if t.PassiveRest {
			return "semi-idle"
		}
		return "idle"
	case t.Passive12h && !t.Active12h:
		if t.Transient {
			return "intermittent"
		}
		switch {
		case t.PassiveRest && t.ActiveRest:
			return "birth"
		case t.PassiveRest && !t.ActiveRest:
			return "possible firewall"
		case !t.PassiveRest && !t.ActiveRest:
			return "death"
		default:
			return "birth/mostly idle"
		}
	default: // nothing in the first half-day
		switch {
		case !t.PassiveRest && !t.ActiveRest:
			return "non-server address"
		case t.PassiveRest && t.ActiveRest:
			if t.Transient {
				return "intermittent/active"
			}
			return "birth"
		case !t.PassiveRest && t.ActiveRest:
			if t.Transient {
				return "intermittent/idle"
			}
			return "birth/idle"
		default:
			if t.Transient {
				return "possible firewall/intermittent"
			}
			return "possible firewall/birth"
		}
	}
}

// Table4Row pairs a trait combination with its address count.
type Table4Row struct {
	Trait Trait4
	Count int
}

// CategorizeLongitudinal computes Table 4: each probed address classified
// by first-12h and remainder observations plus transience. transient
// reports whether an address belongs to a transient block.
func (a *Analysis) CategorizeLongitudinal(cut time.Time, space []netaddr.V4, transient func(netaddr.V4) bool) []Table4Row {
	pFirst := a.PassiveAddrs()
	aFirst := a.ActiveAddrs()

	var firstScanEnd time.Time
	if scans := a.Active.Scans(); len(scans) > 0 {
		firstScanEnd = scans[0].Finished
	}

	// Active rest: any open outcome in scans after the first.
	aRest := netaddr.NewSet()
	for _, addr := range activeAddrList(aFirst) {
		for _, out := range a.Active.Outcomes(addr) {
			if out.ScanID != 0 && len(out.Open) > 0 {
				aRest.Add(addr)
				break
			}
		}
	}

	counts := make(map[Trait4]int)
	for _, addr := range space {
		var tr Trait4
		if t, ok := pFirst[addr]; ok && !t.After(cut) {
			tr.Passive12h = true
		}
		if t, ok := aFirst[addr]; ok && !firstScanEnd.IsZero() && !t.After(firstScanEnd) {
			tr.Active12h = true
		}
		// Passive-rest: any contact after the cut — either discovered
		// after the cut, or (for servers found early) still showing
		// activity in the remainder of the window.
		if t, ok := pFirst[addr]; ok && t.After(cut) {
			tr.PassiveRest = true
		} else if last, ok := a.Passive.LastActivity(addr); ok && last.After(cut) {
			tr.PassiveRest = true
		}
		tr.ActiveRest = aRest.Contains(addr)
		tr.Transient = transient != nil && transient(addr)
		counts[tr]++
	}

	rows := make([]Table4Row, 0, len(counts))
	for tr, c := range counts {
		rows = append(rows, Table4Row{Trait: tr, Count: c})
	}
	sortTable4(rows)
	return rows
}

func activeAddrList(m map[netaddr.V4]time.Time) []netaddr.V4 {
	out := make([]netaddr.V4, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	return out
}

func sortTable4(rows []Table4Row) {
	key := func(t Trait4) int {
		k := 0
		if t.Passive12h {
			k |= 16
		}
		if t.Active12h {
			k |= 8
		}
		if t.PassiveRest {
			k |= 4
		}
		if t.ActiveRest {
			k |= 2
		}
		if t.Transient {
			k |= 1
		}
		return -k
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && key(rows[j].Trait) < key(rows[j-1].Trait); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}
