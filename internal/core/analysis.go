package core

import (
	"sort"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/stats"
)

// Analysis joins a passive and an active inventory over one dataset and
// produces the evaluation artifacts. All address-level computations treat
// "server" as the paper does: an IP address with at least one discovered
// service.
type Analysis struct {
	Passive *PassiveDiscoverer
	Active  *ActiveDiscoverer
	// Keep restricts both inventories to services of interest (nil keeps
	// everything). Experiments use it to select the studied port set or a
	// single protocol.
	Keep func(ServiceKey) bool
}

// PassiveAddrs returns per-address first passive discovery times.
func (a *Analysis) PassiveAddrs() map[netaddr.V4]time.Time {
	return a.Passive.AddrFirstSeen(a.Keep)
}

// ActiveAddrs returns per-address first active discovery times.
func (a *Analysis) ActiveAddrs() map[netaddr.V4]time.Time {
	return a.Active.AddrFirstOpen(a.Keep)
}

// CompletenessRow is one column of Table 2: completeness of both methods
// against the union ground truth at a given observation budget.
type CompletenessRow struct {
	// PassiveCut bounds passive observation; ScanCut bounds the number of
	// sweeps considered (first N by start time).
	PassiveCut time.Time
	ScanCut    int

	// Union counts servers found by either method (the ground truth the
	// rest are measured against); Both / ActiveOnly / PassiveOnly split
	// the union, and Active / Passive are each method's totals.
	Union       int
	Both        int
	ActiveOnly  int
	PassiveOnly int
	Active      int
	Passive     int
}

// Completeness computes a row using passive evidence up to passiveCut and
// the first scanCut sweeps (scanCut <= 0 means all).
func (a *Analysis) Completeness(passiveCut time.Time, scanCut int) CompletenessRow {
	row := CompletenessRow{PassiveCut: passiveCut, ScanCut: scanCut}

	var scanEnd time.Time
	scans := a.Active.Scans()
	if scanCut <= 0 || scanCut > len(scans) {
		scanCut = len(scans)
	}
	if scanCut > 0 {
		scanEnd = scans[scanCut-1].Finished
	}

	passive := netaddr.NewSet()
	for addr, t := range a.PassiveAddrs() {
		if !t.After(passiveCut) {
			passive.Add(addr)
		}
	}
	active := netaddr.NewSet()
	for addr, t := range a.ActiveAddrs() {
		if scanCut > 0 && !t.After(scanEnd) {
			active.Add(addr)
		}
	}

	row.Passive = passive.Len()
	row.Active = active.Len()
	row.Both = passive.Intersect(active).Len()
	row.Union = passive.Union(active).Len()
	row.ActiveOnly = row.Active - row.Both
	row.PassiveOnly = row.Passive - row.Both
	return row
}

// DiscoverySeries returns cumulative unique server addresses discovered
// over time by one method. from/to bound the series; addrOK (may be nil)
// filters addresses (e.g. static-only, one address class).
func discoverySeries(name string, first map[netaddr.V4]time.Time, from, to time.Time, addrOK func(netaddr.V4) bool) *stats.Series {
	var events []time.Time
	for addr, t := range first {
		if addrOK != nil && !addrOK(addr) {
			continue
		}
		if t.Before(from) || t.After(to) {
			continue
		}
		events = append(events, t)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Before(events[j]) })
	s := stats.NewSeries(name)
	s.Add(from, 0)
	for i, t := range events {
		s.Add(t, float64(i+1))
	}
	return s
}

// PassiveSeries returns the cumulative passive discovery curve.
func (a *Analysis) PassiveSeries(from, to time.Time, addrOK func(netaddr.V4) bool) *stats.Series {
	return discoverySeries("passive", a.PassiveAddrs(), from, to, addrOK)
}

// ActiveSeries returns the cumulative active discovery curve.
func (a *Analysis) ActiveSeries(from, to time.Time, addrOK func(netaddr.V4) bool) *stats.Series {
	return discoverySeries("active", a.ActiveAddrs(), from, to, addrOK)
}

// PassiveSeriesExcludingScanners recomputes the passive curve with detected
// scanners' traffic removed (Figure 4).
func (a *Analysis) PassiveSeriesExcludingScanners(from, to time.Time, addrOK func(netaddr.V4) bool) *stats.Series {
	excluded := a.Passive.ScannerSet()
	first := a.Passive.AddrFirstSeenExcluding(excluded, a.Keep)
	return discoverySeries("passive-noscan", first, from, to, addrOK)
}

// WeightKind selects the completeness weighting of Section 4.1.2.
type WeightKind uint8

// Weighting modes.
const (
	// WeightNone counts servers.
	WeightNone WeightKind = iota
	// WeightFlows weights each server by its total observed flows.
	WeightFlows
	// WeightClients weights each server by its distinct client count.
	WeightClients
)

// String names the weighting.
func (w WeightKind) String() string {
	switch w {
	case WeightFlows:
		return "flow-weighted"
	case WeightClients:
		return "client-weighted"
	default:
		return "unweighted"
	}
}

// WeightedSeries returns a discovery curve as percent of the union's total
// weight. Weights come from passive observation over the full dataset, as
// in the paper ("we add the number of clients this IP address serves
// throughout the study"); servers never seen passively carry zero weight.
func (a *Analysis) WeightedSeries(first map[netaddr.V4]time.Time, kind WeightKind, from, to time.Time) *stats.Series {
	flows, clients := a.Passive.AddrWeights()
	weight := func(addr netaddr.V4) float64 {
		switch kind {
		case WeightFlows:
			return float64(flows[addr])
		case WeightClients:
			return float64(clients[addr])
		default:
			return 1
		}
	}
	// The union defines total weight.
	union := netaddr.NewSet()
	for addr := range a.PassiveAddrs() {
		union.Add(addr)
	}
	for addr := range a.ActiveAddrs() {
		union.Add(addr)
	}
	var total float64
	for _, addr := range union.Sorted() {
		total += weight(addr)
	}

	type ev struct {
		t time.Time
		w float64
	}
	var events []ev
	for addr, t := range first {
		if t.Before(from) || t.After(to) {
			continue
		}
		events = append(events, ev{t: t, w: weight(addr)})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t.Before(events[j].t) })

	s := stats.NewSeries(kind.String())
	s.Add(from, 0)
	cum := 0.0
	for _, e := range events {
		cum += e.w
		if total > 0 {
			s.Add(e.t, 100*cum/total)
		}
	}
	return s
}

// FirewallCandidates returns addresses seen passively but never actively —
// the paper's "possible firewall" population — with both confirmation
// signals evaluated (Section 4.2.4).
type FirewallFinding struct {
	Addr netaddr.V4
	// MixedResponse: in one sweep the host RST some ports and dropped
	// others (method 1).
	MixedResponse bool
	// ActiveDuringScan: passive activity was observed while a sweep that
	// got no answer from the host was running (method 2).
	ActiveDuringScan bool
}

// FirewallCandidates evaluates both confirmation methods for every
// passive-only address.
func (a *Analysis) FirewallCandidates() []FirewallFinding {
	activeAddrs := a.ActiveAddrs()
	var out []FirewallFinding
	for addr := range a.PassiveAddrs() {
		if _, found := activeAddrs[addr]; found {
			continue
		}
		f := FirewallFinding{Addr: addr}
		f.MixedResponse = a.Active.MixedResponse(addr)
		for _, scan := range a.Active.Scans() {
			if a.Passive.ActiveDuring(addr, scan.Started, scan.Finished) {
				f.ActiveDuringScan = true
				break
			}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// TimeTo returns how long after start the series first reached pct percent
// of its final value (Figure 1's "99% of flow-weighted servers in 5
// minutes").
func TimeTo(s *stats.Series, start time.Time, pct float64) (time.Duration, bool) {
	target := s.Last() * pct / 100
	if target <= 0 {
		return 0, false
	}
	at, ok := s.FirstReaching(target)
	if !ok {
		return 0, false
	}
	return at.Sub(start), true
}
