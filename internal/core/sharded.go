package core

import (
	"context"
	"sync"
	"time"

	"servdisc/internal/netaddr"
	"servdisc/internal/packet"
	"servdisc/internal/pipeline"
)

// ShardedPassive partitions passive discovery across N worker-owned
// PassiveDiscoverer shards, so ingest scales with cores while the merged
// result stays byte-for-byte identical to a single-threaded run.
//
// Every packet the discoverer cares about touches state keyed by exactly
// one address — the "owner":
//
//   - a SYN-ACK (or a server-sourced UDP datagram) updates the service
//     record of its campus source;
//   - an inbound SYN updates the scan tracker of its external source;
//   - an outbound RST updates the scan tracker of its external destination.
//
// Routing each packet to hash(owner) therefore confines all mutable state
// for any address to a single shard: shard maps are disjoint by
// construction and Merge is a plain union, no conflict resolution needed.
// The one piece of cross-shard state — the scan detector's tumbling-window
// origin, which a lone discoverer picks lazily from the first scan-relevant
// packet — is seeded identically into every shard by the dispatcher
// (shard-then-merge determinism).
//
// Lifecycle mirrors the pipeline runner: before Run, HandleBatch processes
// sub-batches inline on the caller's goroutine (deterministic, zero
// goroutines); after Run(ctx), sub-batches go to per-shard queues drained
// by worker goroutines that own their shard exclusively. Flush waits for
// the queues to drain; Close shuts the workers down. Merge and Snapshot
// flush first, so they always observe everything ingested before the call.
type ShardedPassive struct {
	campus netaddr.Prefix
	shards []*PassiveDiscoverer

	// scratch holds per-shard sub-batches during partitioning.
	scratch [][]packet.Packet

	// originSeeded flips once the first scan-relevant packet fixes every
	// shard's detection-window origin.
	originSeeded bool

	mu       sync.RWMutex
	running  bool
	closed   bool
	ctx      context.Context
	queues   []chan []packet.Packet
	workers  sync.WaitGroup
	inflight sync.WaitGroup

	// counters: In = packets offered, Out = packets dispatched to shards.
	counters pipeline.StageCounters
}

// NewShardedPassive builds a discoverer sharded n ways (n < 1 is treated
// as 1). campus and udpPorts are as in NewPassiveDiscoverer.
func NewShardedPassive(campus netaddr.Prefix, udpPorts []uint16, n int) *ShardedPassive {
	if n < 1 {
		n = 1
	}
	s := &ShardedPassive{
		campus:  campus,
		shards:  make([]*PassiveDiscoverer, n),
		scratch: make([][]packet.Packet, n),
	}
	for i := range s.shards {
		s.shards[i] = NewPassiveDiscoverer(campus, udpPorts)
	}
	return s
}

// NumShards returns the shard count.
func (s *ShardedPassive) NumShards() int { return len(s.shards) }

// Counters exposes ingest counters (safe for concurrent readers).
func (s *ShardedPassive) Counters() *pipeline.StageCounters { return &s.counters }

// ownerAddr returns the address whose state the packet would mutate; for
// packets the discoverer ignores it falls back to the source, which keeps
// routing deterministic without affecting results.
func (s *ShardedPassive) ownerAddr(p *packet.Packet) netaddr.V4 {
	// Mirrors the case order of PassiveDiscoverer.handleTCP exactly.
	if p.Has(packet.LayerTypeTCP) {
		fl := p.TCP.Flags
		switch {
		case fl.Has(packet.FlagSYN | packet.FlagACK):
			return p.IPv4.Src // service record of the campus source
		case fl.Has(packet.FlagSYN):
			return p.IPv4.Src // scan state of the external source
		case fl.Has(packet.FlagRST):
			return p.IPv4.Dst // scan state of the external destination
		}
	}
	return p.IPv4.Src // UDP service records key on the source too
}

// scanRelevant mirrors PassiveDiscoverer.handleTCP's tracker-touching
// cases: the first such packet in the stream fixes the detection-window
// origin.
func (s *ShardedPassive) scanRelevant(p *packet.Packet) bool {
	if !p.Has(packet.LayerTypeTCP) {
		return false
	}
	fl := p.TCP.Flags
	srcIn := s.campus.Contains(p.IPv4.Src)
	dstIn := s.campus.Contains(p.IPv4.Dst)
	switch {
	case fl.Has(packet.FlagSYN | packet.FlagACK):
		return false
	case fl.Has(packet.FlagSYN):
		return dstIn && !srcIn
	case fl.Has(packet.FlagRST):
		return srcIn && !dstIn
	}
	return false
}

// shardOf hashes the owner address to a shard.
func (s *ShardedPassive) shardOf(addr netaddr.V4) int {
	h := uint32(addr)
	h ^= h >> 16
	h *= 0x7FEB352D
	h ^= h >> 15
	h *= 0x846CA68B
	h ^= h >> 16
	return int(h % uint32(len(s.shards)))
}

// seedOrigins pins every shard's scan-window origin to t.
func (s *ShardedPassive) seedOrigins(t time.Time) {
	for _, d := range s.shards {
		d.seedScanOrigin(t)
	}
	s.originSeeded = true
}

// HandleBatch implements pipeline.BatchSink. Partitioning runs on the
// caller's goroutine; shard processing runs inline (before Run) or on the
// shard's worker (after Run). A single producer at a time.
func (s *ShardedPassive) HandleBatch(batch []packet.Packet) {
	if len(batch) == 0 {
		return
	}
	s.counters.AddIn(len(batch))
	for i := range s.scratch {
		s.scratch[i] = s.scratch[i][:0]
	}
	for i := range batch {
		p := &batch[i]
		if !s.originSeeded && s.scanRelevant(p) {
			s.seedOrigins(p.Timestamp)
		}
		idx := s.shardOf(s.ownerAddr(p))
		s.scratch[idx] = append(s.scratch[idx], *p)
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.counters.AddDropped(len(batch))
		return
	}
	for idx, sub := range s.scratch {
		if len(sub) == 0 {
			continue
		}
		s.counters.AddOut(len(sub))
		if !s.running {
			s.shards[idx].HandleBatch(sub)
			continue
		}
		cp := make([]packet.Packet, len(sub))
		copy(cp, sub)
		s.inflight.Add(1)
		s.queues[idx] <- cp
	}
}

// HandlePacket implements the legacy per-packet Sink contract.
func (s *ShardedPassive) HandlePacket(p *packet.Packet) {
	one := [1]packet.Packet{*p}
	s.HandleBatch(one[:])
}

// Run starts one worker goroutine per shard. The context is an abort
// lever, not a graceful stop: after cancellation, queued sub-batches are
// drained without being applied (so Flush and Close never deadlock), and
// because each worker observes cancellation independently the shard state
// no longer corresponds to any prefix of the input — treat the run as
// abandoned and discard its results. For a clean shutdown, stop producing
// and call Close. No-op when already running or closed.
func (s *ShardedPassive) Run(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running || s.closed {
		return
	}
	s.running = true
	s.ctx = ctx
	s.queues = make([]chan []packet.Packet, len(s.shards))
	for i := range s.shards {
		q := make(chan []packet.Packet, 64)
		s.queues[i] = q
		d := s.shards[i]
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for sub := range q {
				if s.ctx.Err() == nil {
					d.HandleBatch(sub)
				}
				s.inflight.Done()
			}
		}()
	}
}

// Flush blocks until every sub-batch enqueued before the call has been
// applied to its shard. Synchronous mode: no-op.
func (s *ShardedPassive) Flush() { s.inflight.Wait() }

// Close flushes and stops the workers; idempotent. After Close the
// discoverer is read-only: further HandleBatch calls are dropped.
func (s *ShardedPassive) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	running, queues := s.running, s.queues
	s.mu.Unlock()
	if running {
		for _, q := range queues {
			close(q)
		}
		s.workers.Wait()
	}
}

// Merge unions the shards into a single PassiveDiscoverer equivalent to
// one that consumed the whole stream sequentially. Shard state is keyed by
// owner address, so the union has no conflicts. The merged discoverer
// shares record structures with the shards — treat it as a view and do not
// feed more traffic into either side; for a stable result, use Snapshot.
// Merge flushes pending work first (callers should stop producing before
// merging).
func (s *ShardedPassive) Merge() *PassiveDiscoverer {
	s.Flush()
	m := NewPassiveDiscoverer(s.campus, nil)
	m.udpPorts = s.shards[0].udpPorts
	for _, d := range s.shards {
		m.Packets += d.Packets
		for k, rec := range d.services {
			m.services[k] = rec
		}
		for a, ts := range d.addrTimes {
			m.addrTimes[a] = ts
		}
		if d.track.started && !m.track.started {
			m.track.seed(d.track.origin)
		}
		for src, src2 := range d.track.sources {
			m.track.sources[src] = src2
		}
	}
	return m
}

// Snapshot flushes, merges, and freezes the inventory into a read-only
// form safe to hand across goroutines.
func (s *ShardedPassive) Snapshot() *Inventory {
	return NewInventory(s.Merge())
}

var (
	_ pipeline.BatchSink = (*ShardedPassive)(nil)
)
